// Model bundle I/O shared by the command-line tools: a trained CDLN is
// stored as <path>.cdlw (weights, see nn/serialize.h) plus <path>.meta
// (architecture name, admitted stage prefixes, training rule and delta),
// enough to reconstruct the network without re-running training.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cdl/conditional_network.h"

namespace cdl::tools {

/// How the checkpoint was produced: enough to re-run (or audit) the training
/// without the original shell history. Older .meta files simply lack these
/// keys; the loader leaves `ModelMeta::provenance` empty for them.
struct TrainProvenance {
  std::uint64_t seed = 0;
  std::size_t epochs = 0;      // baseline backprop epochs
  std::size_t lc_epochs = 0;   // stage-classifier epochs
  std::string git_describe;    // build stamp ("unknown" outside git)
  float final_loss = 0.0F;     // last baseline epoch's mean loss
  float val_accuracy = -1.0F;  // delta-selection accuracy; -1 = no val split
};

struct ModelMeta {
  std::string arch_name;               // "MNIST_2C" / "MNIST_3C"
  std::vector<std::size_t> stages;     // admitted prefixes, sorted
  LcTrainingRule rule = LcTrainingRule::kLms;
  float delta = 0.5F;
  std::optional<TrainProvenance> provenance;
  /// Per-boundary int8 calibration ranges (quant_amax / quant_vmin keys);
  /// empty when the checkpoint was saved without calibration. load_model
  /// installs them via ConditionalNetwork::set_quantization (precision
  /// stays fp32 until the caller opts in with set_stage_precision).
  std::optional<QuantCalibration> quant;
};

/// Writes <path>.cdlw and <path>.meta for a trained network. When
/// `provenance` is non-null its fields are appended to the meta file; when
/// `quant` is non-null its ranges are persisted as quant_amax / quant_vmin
/// (%.9g, so every float32 round-trips exactly).
void save_model(const std::string& path, ConditionalNetwork& net,
                const std::string& arch_name,
                const TrainProvenance* provenance = nullptr,
                const QuantCalibration* quant = nullptr);

/// Rebuilds the architecture from the meta file and loads the weights.
[[nodiscard]] ConditionalNetwork load_model(const std::string& path,
                                            ModelMeta* meta_out = nullptr);

}  // namespace cdl::tools
