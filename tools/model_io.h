// Model bundle I/O shared by the command-line tools: a trained CDLN is
// stored as <path>.cdlw (weights, see nn/serialize.h) plus <path>.meta
// (architecture name, admitted stage prefixes, training rule and delta),
// enough to reconstruct the network without re-running training.
#pragma once

#include <string>
#include <vector>

#include "cdl/conditional_network.h"

namespace cdl::tools {

struct ModelMeta {
  std::string arch_name;               // "MNIST_2C" / "MNIST_3C"
  std::vector<std::size_t> stages;     // admitted prefixes, sorted
  LcTrainingRule rule = LcTrainingRule::kLms;
  float delta = 0.5F;
};

/// Writes <path>.cdlw and <path>.meta for a trained network.
void save_model(const std::string& path, ConditionalNetwork& net,
                const std::string& arch_name);

/// Rebuilds the architecture from the meta file and loads the weights.
[[nodiscard]] ConditionalNetwork load_model(const std::string& path,
                                            ModelMeta* meta_out = nullptr);

}  // namespace cdl::tools
