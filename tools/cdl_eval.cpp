// cdl_eval: loads a model bundle produced by cdl_train and evaluates it —
// accuracy, ops/energy vs the unconditional baseline, exit distribution and
// per-stage exit profile, optional per-digit table, confusion matrix,
// exit-profile CSV and Chrome trace JSON (chrome://tracing / Perfetto).
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>

#include <sstream>

#include "core/thread_pool.h"
#include "data/synthetic_mnist.h"
#include "nn/conv2d.h"
#include "nn/qgemm.h"
#include "energy/energy_model.h"
#include "energy/report.h"
#include "eval/confusion.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "model_io.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "report_io.h"
#include "util/args.h"

namespace {

void write_file_or_throw(const std::string& path,
                         const std::function<void(std::ostream&)>& emit) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  emit(os);
  if (!os) throw std::runtime_error("write failure on " + path);
}

/// Applies --int8 ("all" or a comma list of stage indices; num_stages() is
/// the FC tail) to a loaded network. Throws with a re-train hint when the
/// checkpoint carries no calibration.
void apply_int8_selection(cdl::ConditionalNetwork& net,
                          const std::string& selection,
                          const std::string& model_path) {
  if (selection.empty()) return;
  if (!net.has_quantization()) {
    throw std::runtime_error(
        "--int8 requested but " + model_path +
        ".meta carries no quant_amax/quant_vmin calibration; re-train with "
        "cdl_train --calib-n > 0");
  }
  if (selection == "all") {
    net.set_cascade_precision(cdl::StagePrecision::kInt8);
    return;
  }
  std::istringstream is(selection);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    std::size_t pos = 0;
    const unsigned long stage = std::stoul(item, &pos);
    if (pos != item.size()) {
      throw std::runtime_error("--int8: bad stage index '" + item + "'");
    }
    net.set_stage_precision(static_cast<std::size_t>(stage),
                            cdl::StagePrecision::kInt8);
  }
}

int run(const cdl::ArgParser& args) {
  cdl::tools::ModelMeta meta;
  cdl::ConditionalNetwork net = cdl::tools::load_model(args.get("model"), &meta);
  if (args.get_double("delta") >= 0.0) {
    net.set_delta(static_cast<float>(args.get_double("delta")));
  }
  apply_int8_selection(net, args.get("int8"), args.get("model"));
  std::printf("model: %s, %zu stage(s), rule %s, delta %.2f\n",
              meta.arch_name.c_str(), net.num_stages(),
              to_string(meta.rule).c_str(),
              static_cast<double>(net.activation_module().delta()));
  // Active kernel dispatch: which code paths this process will actually run.
  std::printf("kernels: fp32 conv %s, int8 gemm %s\n",
              cdl::conv_dispatch_tier(), cdl::to_string(cdl::qgemm_tier()));
  std::printf("stage precision:");
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    std::printf(" %s=%s", net.stage_name(s).c_str(),
                cdl::to_string(net.stage_precision(s)));
  }
  std::printf("\n");
  if (meta.provenance) {
    const cdl::tools::TrainProvenance& prov = *meta.provenance;
    std::printf("trained: seed %llu, %zu epochs + %zu lc-epochs, "
                "final loss %.4f", static_cast<unsigned long long>(prov.seed),
                prov.epochs, prov.lc_epochs,
                static_cast<double>(prov.final_loss));
    if (prov.val_accuracy >= 0.0F) {
      std::printf(", val accuracy %.2f %%",
                  100.0 * static_cast<double>(prov.val_accuracy));
    }
    if (!prov.git_describe.empty()) {
      std::printf(" (build %s)", prov.git_describe.c_str());
    }
    std::printf("\n");
  }

  const cdl::tools::TraceSink trace_sink(args);

  const cdl::MnistPair data = cdl::load_mnist_or_synthetic(
      0, args.get_size("test-n"), args.get_size("seed"));

  std::optional<cdl::ThreadPool> pool_storage;
  cdl::ThreadPool* pool = nullptr;
  if (args.get_size("threads") != 1) {
    pool_storage.emplace(args.get_size("threads"));
    if (pool_storage->size() > 1) pool = &*pool_storage;
  }

  const std::string report_out = args.get("report");
  const std::string metrics_out = args.get("metrics-out");
  const bool want_perf = args.get_flag("perf");

  const cdl::EnergyModel energy;
  const cdl::Evaluation base =
      cdl::evaluate_baseline(net, data.test, energy, pool);

  // Measured region: the CDLN evaluation only, so the attribution rows sum
  // to exactly the cascade's exit-accounted OPS.
  cdl::obs::RunReport run_report;
  cdl::tools::MeasuredRegion region(!report_out.empty(), want_perf);
  region.start();
  const cdl::Evaluation cond = cdl::evaluate_cdl(net, data.test, energy, pool);
  region.finish(run_report);

  cdl::TextTable table({"metric", "baseline", "CDLN"});
  table.add_row({"accuracy", cdl::fmt_percent(base.accuracy()),
                 cdl::fmt_percent(cond.accuracy())});
  table.add_row({"avg ops/input", cdl::fmt(base.avg_ops(), 0),
                 cdl::fmt(cond.avg_ops(), 0)});
  table.add_row({"avg energy/input", cdl::format_energy(base.avg_energy_pj()),
                 cdl::format_energy(cond.avg_energy_pj())});
  table.add_row({"improvement", "1.00x",
                 cdl::fmt(base.avg_ops() / cond.avg_ops(), 2) + "x"});
  std::printf("%s", table.to_string().c_str());

  std::printf("exit distribution:");
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    std::printf("  %s %.1f %%", net.stage_name(s).c_str(),
                100.0 * cond.exit_fraction(s));
  }
  std::printf("\n\n%s", cond.profile.summary().c_str());

  if (args.get_flag("per-digit")) {
    cdl::TextTable digits({"digit", "accuracy", "OPS improvement", "FC exit"});
    for (std::size_t d = 0; d < cond.per_class.size(); ++d) {
      const cdl::ClassStats& c = cond.per_class[d];
      if (c.total == 0) continue;
      digits.add_row(
          {std::to_string(d), cdl::fmt_percent(c.accuracy()),
           cdl::fmt(base.per_class[d].avg_ops() / c.avg_ops(), 2) + "x",
           cdl::fmt_percent(static_cast<double>(c.exit_counts.back()) /
                            static_cast<double>(c.total))});
    }
    std::printf("\n%s", digits.to_string().c_str());
  }

  if (args.get_flag("confusion")) {
    cdl::ConfusionMatrix cm(10);
    for (std::size_t i = 0; i < data.test.size(); ++i) {
      cm.record(data.test.label(i), net.classify(data.test.image(i)).label);
    }
    std::printf("\n%s", cm.to_string().c_str());
  }

  const std::string profile_csv = args.get("profile-csv");
  if (!profile_csv.empty()) {
    write_file_or_throw(profile_csv,
                        [&](std::ostream& os) { cond.profile.write_csv(os); });
    std::printf("exit profile CSV written to %s\n", profile_csv.c_str());
  }

  if (want_perf) {
    std::printf("\n%s\n", run_report.perf.summary(run_report.perf_reason).c_str());
  }

  cdl::obs::Registry registry;
  if (!metrics_out.empty() || !report_out.empty()) {
    cond.profile.export_to_registry(registry);
    registry.gauge("cdl_accuracy", "CDLN accuracy over the test set")
        .set(cond.accuracy());
    registry
        .gauge("cdl_baseline_accuracy",
               "Unconditional baseline accuracy over the test set")
        .set(base.accuracy());
    registry.gauge("cdl_avg_ops", "Average OPS per input (CDLN)")
        .set(cond.avg_ops());
    registry.gauge("cdl_baseline_avg_ops", "Average OPS per input (baseline)")
        .set(base.avg_ops());
    registry
        .gauge("cdl_ops_improvement",
               "Baseline avg OPS / CDLN avg OPS (paper's efficiency factor)")
        .set(cond.avg_ops() == 0.0 ? 0.0 : base.avg_ops() / cond.avg_ops());
    registry.gauge("cdl_delta", "Confidence threshold in effect")
        .set(static_cast<double>(net.activation_module().delta()));
  }
  if (!metrics_out.empty()) {
    write_file_or_throw(metrics_out, [&](std::ostream& os) {
      registry.write_openmetrics(os);
    });
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }

  if (!report_out.empty()) {
    run_report.tool = "cdl_eval";
    run_report.network = meta.arch_name;
    run_report.threads = pool != nullptr ? pool->size() : 1;
    run_report.samples = data.test.size();
    run_report.seed = args.get_size("seed");
    // Exact whole-run OPS from the exit accounting; the attribution rows
    // must reproduce this bit-for-bit (bench_check.py --validate-report).
    std::uint64_t total_ops = 0;
    for (std::size_t s = 0; s <= net.num_stages(); ++s) {
      total_ops += static_cast<std::uint64_t>(cond.exit_counts[s]) *
                   net.exit_ops(s).total_compute();
    }
    run_report.total_ops = total_ops;
    run_report.exit_profile = cond.profile;
    run_report.registry = &registry;
    write_file_or_throw(report_out,
                        [&](std::ostream& os) { run_report.write_json(os); });
    std::printf("run report written to %s\n", report_out.c_str());
  }
  trace_sink.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cdl::ArgParser args;
  args.add_option("model", "cdl_model", "model path prefix from cdl_train");
  args.add_option("test-n", "2000", "test samples");
  args.add_option("seed", "42", "data seed (must differ from training data "
                                "only via the disjoint test split)");
  args.add_option("delta", "-1", "override confidence threshold (-1 = stored)");
  args.add_option("int8", "", "run stages quantized: \"all\" or a comma list "
                              "of stage indices (last index = the FC tail); "
                              "needs calibration in the .meta");
  args.add_option("threads", "1", "evaluation worker threads (0 = hardware "
                                  "concurrency); results are identical for "
                                  "any value");
  cdl::tools::add_trace_option(args);
  args.add_option("profile-csv", "", "write the exit profile as CSV here");
  args.add_flag("per-digit", "print the per-digit breakdown (paper Fig. 5)");
  args.add_flag("confusion", "print the confusion matrix");
  cdl::tools::add_report_options(args);

  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.help("cdl_eval").c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help("cdl_eval").c_str());
    return 0;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
