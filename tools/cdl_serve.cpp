// cdl_serve: serves one or more cdl_train model bundles through the
// ServingEngine — bounded request queue, dynamic batcher, SLO accounting —
// against a stream of test images, then reports per-model throughput, tail
// latency and SLO counters (text table, cdl-serve-report/1 JSON, OpenMetrics).
//
// This is the command-line face of src/serve/: the e2e suite drives it to
// validate the full queue -> batcher -> cascade -> metrics pipeline, and it
// doubles as a quick local load generator (--rate paces an open loop).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "data/synthetic_mnist.h"
#include "eval/table.h"
#include "model_io.h"
#include "obs/registry.h"
#include "report_io.h"
#include "serve/engine.h"
#include "util/args.h"

namespace {

void write_file_or_throw(const std::string& path,
                         const std::function<void(std::ostream&)>& emit) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  emit(os);
  if (!os) throw std::runtime_error("write failure on " + path);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Model name for reports/labels: the bundle's path stem ("runs/a/mnist_2c"
/// -> "mnist_2c"), qualified with its index on collision.
std::string bundle_name(const std::string& path, std::size_t index,
                        const cdl::serve::ModelRegistry& so_far) {
  const std::size_t slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  if (stem.empty()) stem = "model";
  if (so_far.find(stem).has_value()) stem += "#" + std::to_string(index);
  return stem;
}

void write_serve_report(std::ostream& os, const cdl::serve::ServingEngine& eng,
                        const std::vector<cdl::serve::SloSummary>& summaries,
                        std::size_t images, double wall_s, double accuracy,
                        std::uint64_t scored) {
  os << "{\n  \"schema\": \"cdl-serve-report/1\",\n";
  os << "  \"tool\": \"cdl_serve\",\n";
  os << "  \"images\": " << images << ",\n";
  os << "  \"workers\": " << eng.config().workers << ",\n";
  os << "  \"queue_capacity\": " << eng.config().queue_capacity << ",\n";
  os << "  \"max_batch\": " << eng.config().batcher.max_batch << ",\n";
  os << "  \"max_delay_us\": " << eng.config().batcher.max_delay_ns / 1000
     << ",\n";
  os << "  \"wall_s\": " << wall_s << ",\n";
  os << "  \"sustained_ips\": " << (wall_s > 0.0 ? static_cast<double>(images) / wall_s : 0.0)
     << ",\n";
  os << "  \"scored\": " << scored << ",\n";
  os << "  \"accuracy\": " << accuracy << ",\n";
  os << "  \"models\": [\n";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const cdl::serve::SloSummary& s = summaries[i];
    os << "    {\n";
    os << "      \"name\": \"" << s.model << "\",\n";
    os << "      \"submitted\": " << s.submitted << ",\n";
    os << "      \"accepted\": " << s.accepted << ",\n";
    os << "      \"completed\": " << s.completed << ",\n";
    os << "      \"rejected\": " << s.rejected << ",\n";
    os << "      \"expired\": " << s.expired << ",\n";
    os << "      \"shutdown\": " << s.shutdown << ",\n";
    os << "      \"slo_miss\": " << s.slo_miss << ",\n";
    os << "      \"batches\": " << s.batches << ",\n";
    os << "      \"mean_batch\": " << s.mean_batch << ",\n";
    os << "      \"latency_ms_p50\": " << s.p50_ms << ",\n";
    os << "      \"latency_ms_p95\": " << s.p95_ms << ",\n";
    os << "      \"latency_ms_p99\": " << s.p99_ms << ",\n";
    os << "      \"latency_ms_mean\": " << s.mean_ms << ",\n";
    os << "      \"latency_ms_max\": " << s.max_ms << ",\n";
    os << "      \"phase_ms\": {\n";
    os << "        \"queue_p50\": " << s.queue_p50_ms << ",\n";
    os << "        \"queue_p95\": " << s.queue_p95_ms << ",\n";
    os << "        \"queue_p99\": " << s.queue_p99_ms << ",\n";
    os << "        \"queue_mean\": " << s.queue_mean_ms << ",\n";
    os << "        \"batch_p50\": " << s.batch_p50_ms << ",\n";
    os << "        \"batch_p95\": " << s.batch_p95_ms << ",\n";
    os << "        \"batch_p99\": " << s.batch_p99_ms << ",\n";
    os << "        \"batch_mean\": " << s.batch_mean_ms << ",\n";
    os << "        \"compute_p50\": " << s.compute_p50_ms << ",\n";
    os << "        \"compute_p95\": " << s.compute_p95_ms << ",\n";
    os << "        \"compute_p99\": " << s.compute_p99_ms << ",\n";
    os << "        \"compute_mean\": " << s.compute_mean_ms << "\n";
    os << "      },\n";
    os << "      \"exits\": [";
    for (std::size_t e = 0; e < s.exits.size(); ++e) {
      os << (e == 0 ? "" : ", ") << s.exits[e];
    }
    os << "],\n";
    os << "      \"drift\": {\n";
    os << "        \"windows\": " << s.drift_windows << ",\n";
    os << "        \"events\": " << s.drift_events << ",\n";
    os << "        \"score\": " << s.drift_score << ",\n";
    os << "        \"max_score\": " << s.drift_max_score << ",\n";
    os << "        \"first_drift_window\": " << s.first_drift_window << "\n";
    os << "      }\n";
    os << "    }" << (i + 1 < summaries.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

int run(const cdl::ArgParser& args) {
  const cdl::tools::TraceSink trace_sink(args);
  const std::vector<std::string> bundles = split_list(args.get("model"));
  if (bundles.empty()) throw std::runtime_error("--model: no bundles given");

  cdl::serve::ModelRegistry models;
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    cdl::tools::ModelMeta meta;
    cdl::ConditionalNetwork net = cdl::tools::load_model(bundles[i], &meta);
    if (args.get_double("delta") >= 0.0) {
      net.set_delta(static_cast<float>(args.get_double("delta")));
    }
    if (args.get_flag("int8")) {
      if (!net.has_quantization()) {
        throw std::runtime_error("--int8 requested but " + bundles[i] +
                                 ".meta carries no calibration; re-train with "
                                 "cdl_train --calib-n > 0");
      }
      net.set_cascade_precision(cdl::StagePrecision::kInt8);
    }
    const std::string name = bundle_name(bundles[i], i, models);
    std::printf("model %zu: %s (%s, %zu stage(s), delta %.2f%s)\n", i,
                name.c_str(), meta.arch_name.c_str(), net.num_stages(),
                static_cast<double>(net.activation_module().delta()),
                args.get_flag("int8") ? ", int8" : "");
    models.add(name, std::move(net));
  }
  const std::size_t num_models = models.size();

  cdl::obs::Registry registry;
  cdl::serve::EngineConfig config;
  config.queue_capacity = args.get_size("queue-capacity");
  config.workers = args.get_size("workers");
  config.batcher.max_batch = args.get_size("max-batch");
  config.batcher.max_delay_ns = args.get_size("max-delay-us") * 1000;
  config.default_deadline_ns =
      static_cast<std::uint64_t>(args.get_double("deadline-ms") * 1e6);
  config.registry = &registry;
  config.drift.window = args.get_size("drift-window");
  config.drift.threshold = args.get_double("drift-threshold");
  config.telemetry.path = args.get("telemetry-out");
  config.telemetry.interval_ns = static_cast<std::uint64_t>(
      args.get_double("telemetry-interval-ms") * 1e6);
  config.telemetry.rotate_bytes = args.get_size("telemetry-rotate-kb") * 1024;
  cdl::serve::ServingEngine engine(std::move(models), config);

  const std::size_t images = args.get_size("images");
  const cdl::MnistPair data =
      cdl::load_mnist_or_synthetic(0, images, args.get_size("seed"));
  const double rate = args.get_double("rate");
  std::printf("serving %zu image(s) across %zu model(s): %zu worker(s), "
              "queue %zu, max batch %zu, max delay %zu us%s\n",
              data.test.size(), num_models, config.workers,
              config.queue_capacity, config.batcher.max_batch,
              config.batcher.max_delay_ns / 1000,
              rate > 0.0 ? (", " + std::to_string(rate) + " img/s").c_str()
                         : "");

  using steady = std::chrono::steady_clock;
  const steady::time_point start = steady::now();
  std::vector<std::future<cdl::serve::Response>> futures;
  futures.reserve(data.test.size());
  std::vector<std::size_t> future_model(data.test.size());
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    if (rate > 0.0) {
      // Open loop: arrival i is due at i/rate seconds after start,
      // independent of service progress.
      const auto due =
          start + std::chrono::nanoseconds(
                      static_cast<std::uint64_t>(1e9 * static_cast<double>(i) / rate));
      std::this_thread::sleep_until(due);
    }
    const std::size_t model = i % num_models;  // round-robin across bundles
    future_model[i] = model;
    cdl::serve::Submitted receipt =
        engine.submit(model, cdl::Tensor(data.test.image(i)));
    futures.push_back(std::move(receipt.response));
  }
  engine.shutdown();  // drain: every accepted request completes

  std::uint64_t scored = 0;
  std::uint64_t correct = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const cdl::serve::Response resp = futures[i].get();
    if (resp.status != cdl::serve::RequestStatus::kOk) continue;
    ++scored;
    if (resp.result.label == data.test.label(i)) ++correct;
  }
  const double wall_s =
      std::chrono::duration<double>(steady::now() - start).count();
  const double accuracy =
      scored == 0 ? 0.0
                  : static_cast<double>(correct) / static_cast<double>(scored);

  const std::vector<cdl::serve::SloSummary> summaries =
      engine.slo().summaries();
  cdl::TextTable table({"model", "accepted", "completed", "rejected",
                        "expired", "slo miss", "mean batch", "p50 ms",
                        "p95 ms", "p99 ms"});
  for (const cdl::serve::SloSummary& s : summaries) {
    table.add_row({s.model, std::to_string(s.accepted),
                   std::to_string(s.completed), std::to_string(s.rejected),
                   std::to_string(s.expired), std::to_string(s.slo_miss),
                   cdl::fmt(s.mean_batch, 2), cdl::fmt(s.p50_ms, 3),
                   cdl::fmt(s.p95_ms, 3), cdl::fmt(s.p99_ms, 3)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("served %llu/%zu ok, accuracy %.2f %%, %.3f s wall "
              "(%.1f img/s sustained)\n",
              static_cast<unsigned long long>(scored), futures.size(),
              100.0 * accuracy, wall_s,
              wall_s > 0.0 ? static_cast<double>(futures.size()) / wall_s : 0.0);

  const std::string report_out = args.get("report");
  if (!report_out.empty()) {
    write_file_or_throw(report_out, [&](std::ostream& os) {
      write_serve_report(os, engine, summaries, data.test.size(), wall_s,
                         accuracy, scored);
    });
    std::printf("serve report written to %s\n", report_out.c_str());
  }
  const std::string metrics_out = args.get("metrics-out");
  if (!metrics_out.empty()) {
    write_file_or_throw(metrics_out, [&](std::ostream& os) {
      registry.write_openmetrics(os);
    });
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (engine.telemetry() != nullptr) {
    std::printf("telemetry written to %s (%llu sample(s), %llu rotation(s))\n",
                config.telemetry.path.c_str(),
                static_cast<unsigned long long>(engine.telemetry()->samples()),
                static_cast<unsigned long long>(
                    engine.telemetry()->rotations()));
  }
  trace_sink.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cdl::ArgParser args;
  args.add_option("model", "cdl_model",
                  "model bundle prefix(es) from cdl_train; a comma list "
                  "serves several checkpoints concurrently");
  args.add_option("images", "200", "test images to serve");
  args.add_option("seed", "42", "data seed");
  args.add_option("workers", "1", "serving worker threads (0 = inline)");
  args.add_option("queue-capacity", "1024",
                  "bounded request queue size (full = reject)");
  args.add_option("max-batch", "16", "dynamic batcher size trigger");
  args.add_option("max-delay-us", "2000",
                  "dynamic batcher timeout trigger (microseconds)");
  args.add_option("deadline-ms", "0",
                  "per-request deadline in ms (0 = none); late or expired "
                  "requests count as SLO misses");
  args.add_option("rate", "0",
                  "offered load in img/s, open loop (0 = submit immediately)");
  args.add_option("delta", "-1", "override confidence threshold (-1 = stored)");
  args.add_flag("int8", "serve the full cascade quantized (needs calibration "
                        "in the .meta)");
  args.add_option("drift-window", "256",
                  "requests per exit-profile drift window");
  args.add_option("drift-threshold", "50",
                  "chi-square score at which a window raises a drift event");
  args.add_option("report", "", "write cdl-serve-report/1 JSON here");
  args.add_option("metrics-out", "", "write OpenMetrics exposition here");
  args.add_option("telemetry-out", "",
                  "stream cdl-serve-telemetry/1 JSONL samples here while "
                  "serving");
  args.add_option("telemetry-interval-ms", "1000",
                  "telemetry sampling interval");
  args.add_option("telemetry-rotate-kb", "0",
                  "rotate the telemetry file at this size (0 = never)");
  cdl::tools::add_trace_option(args);

  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.help("cdl_serve").c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help("cdl_serve").c_str());
    return 0;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
