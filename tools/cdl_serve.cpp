// cdl_serve: serves one or more cdl_train model bundles through the
// ServingEngine — bounded request queue, dynamic batcher, SLO accounting —
// against a stream of test images, then reports per-model throughput, tail
// latency and SLO counters (text table, cdl-serve-report/1 JSON, OpenMetrics).
//
// This is the command-line face of src/serve/: the e2e suite drives it to
// validate the full queue -> batcher -> cascade -> metrics pipeline, and it
// doubles as a quick local load generator (--rate paces an open loop).
//
// --observe-port starts the embedded HTTP observer (serve/observer.h):
// GET /metrics scrapes live OpenMetrics (energy families included),
// GET /healthz answers liveness, GET /report renders the live
// cdl-serve-report/1 JSON, and GET /quitquitquit ends the --observe-linger-ms
// window early.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "data/synthetic_mnist.h"
#include "eval/table.h"
#include "model_io.h"
#include "obs/registry.h"
#include "report_io.h"
#include "serve/engine.h"
#include "serve/observer.h"
#include "util/args.h"

namespace {

void write_file_or_throw(const std::string& path,
                         const std::function<void(std::ostream&)>& emit) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  emit(os);
  if (!os) throw std::runtime_error("write failure on " + path);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Model name for reports/labels: the bundle's path stem ("runs/a/mnist_2c"
/// -> "mnist_2c"), qualified with its index on collision.
std::string bundle_name(const std::string& path, std::size_t index,
                        const cdl::serve::ModelRegistry& so_far) {
  const std::size_t slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  if (stem.empty()) stem = "model";
  if (so_far.find(stem).has_value()) stem += "#" + std::to_string(index);
  return stem;
}

void write_serve_report(std::ostream& os, cdl::serve::ServingEngine& eng,
                        const std::vector<cdl::serve::SloSummary>& summaries,
                        std::size_t images, double wall_s, double accuracy,
                        std::uint64_t scored) {
  os << "{\n  \"schema\": \"cdl-serve-report/1\",\n";
  os << "  \"tool\": \"cdl_serve\",\n";
  os << "  \"images\": " << images << ",\n";
  os << "  \"workers\": " << eng.config().workers << ",\n";
  os << "  \"queue_capacity\": " << eng.config().queue_capacity << ",\n";
  os << "  \"max_batch\": " << eng.config().batcher.max_batch << ",\n";
  os << "  \"max_delay_us\": " << eng.config().batcher.max_delay_ns / 1000
     << ",\n";
  os << "  \"wall_s\": " << wall_s << ",\n";
  os << "  \"sustained_ips\": " << (wall_s > 0.0 ? static_cast<double>(images) / wall_s : 0.0)
     << ",\n";
  os << "  \"scored\": " << scored << ",\n";
  os << "  \"accuracy\": " << accuracy << ",\n";
  os << "  \"models\": [\n";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const cdl::serve::SloSummary& s = summaries[i];
    os << "    {\n";
    os << "      \"name\": \"" << s.model << "\",\n";
    os << "      \"submitted\": " << s.submitted << ",\n";
    os << "      \"accepted\": " << s.accepted << ",\n";
    os << "      \"completed\": " << s.completed << ",\n";
    os << "      \"rejected\": " << s.rejected << ",\n";
    os << "      \"expired\": " << s.expired << ",\n";
    os << "      \"shutdown\": " << s.shutdown << ",\n";
    os << "      \"slo_miss\": " << s.slo_miss << ",\n";
    os << "      \"batches\": " << s.batches << ",\n";
    os << "      \"mean_batch\": " << s.mean_batch << ",\n";
    os << "      \"latency_ms_p50\": " << s.p50_ms << ",\n";
    os << "      \"latency_ms_p95\": " << s.p95_ms << ",\n";
    os << "      \"latency_ms_p99\": " << s.p99_ms << ",\n";
    os << "      \"latency_ms_mean\": " << s.mean_ms << ",\n";
    os << "      \"latency_ms_max\": " << s.max_ms << ",\n";
    os << "      \"phase_ms\": {\n";
    os << "        \"queue_p50\": " << s.queue_p50_ms << ",\n";
    os << "        \"queue_p95\": " << s.queue_p95_ms << ",\n";
    os << "        \"queue_p99\": " << s.queue_p99_ms << ",\n";
    os << "        \"queue_mean\": " << s.queue_mean_ms << ",\n";
    os << "        \"batch_p50\": " << s.batch_p50_ms << ",\n";
    os << "        \"batch_p95\": " << s.batch_p95_ms << ",\n";
    os << "        \"batch_p99\": " << s.batch_p99_ms << ",\n";
    os << "        \"batch_mean\": " << s.batch_mean_ms << ",\n";
    os << "        \"compute_p50\": " << s.compute_p50_ms << ",\n";
    os << "        \"compute_p95\": " << s.compute_p95_ms << ",\n";
    os << "        \"compute_p99\": " << s.compute_p99_ms << ",\n";
    os << "        \"compute_mean\": " << s.compute_mean_ms << "\n";
    os << "      },\n";
    os << "      \"exits\": [";
    for (std::size_t e = 0; e < s.exits.size(); ++e) {
      os << (e == 0 ? "" : ", ") << s.exits[e];
    }
    os << "],\n";
    os << "      \"drift\": {\n";
    os << "        \"windows\": " << s.drift_windows << ",\n";
    os << "        \"events\": " << s.drift_events << ",\n";
    os << "        \"score\": " << s.drift_score << ",\n";
    os << "        \"max_score\": " << s.drift_max_score << ",\n";
    os << "        \"first_drift_window\": " << s.first_drift_window << "\n";
    os << "      },\n";
    os << "      \"energy\": {\n";
    os << "        \"pj_p50\": " << s.energy_p50_pj << ",\n";
    os << "        \"pj_p95\": " << s.energy_p95_pj << ",\n";
    os << "        \"pj_p99\": " << s.energy_p99_pj << ",\n";
    os << "        \"pj_mean\": " << s.energy_mean_pj << ",\n";
    os << "        \"pj_max\": " << s.energy_max_pj << ",\n";
    os << "        \"pj_total\": " << s.energy_total_pj << ",\n";
    os << "        \"mj_per_image\": " << s.energy_mean_pj * 1e-9 << ",\n";
    os << "        \"joules_total\": " << s.energy_total_pj * 1e-12 << "\n";
    os << "      }\n";
    os << "    }" << (i + 1 < summaries.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  cdl::serve::EnergyBudgetWatchdog& wd = eng.energy_watchdog();
  os << "  \"energy_budget\": {\n";
  os << "    \"enabled\": " << (wd.enabled() ? "true" : "false") << ",\n";
  os << "    \"budget_mj_per_s\": " << wd.config().budget_mj_per_s << ",\n";
  os << "    \"window_ms\": " << static_cast<double>(wd.config().window_ns) / 1e6
     << ",\n";
  os << "    \"windows\": " << wd.windows_scored() << ",\n";
  os << "    \"breaches\": " << wd.breaches() << ",\n";
  os << "    \"rate_mj_per_s\": " << wd.latest_rate_mj_per_s() << ",\n";
  os << "    \"max_rate_mj_per_s\": " << wd.max_rate_mj_per_s() << ",\n";
  os << "    \"first_breach_window\": " << wd.first_breach_window() << ",\n";
  os << "    \"total_energy_pj\": " << wd.total_energy_pj() << "\n";
  os << "  }\n}\n";
}

int run(const cdl::ArgParser& args) {
  const cdl::tools::TraceSink trace_sink(args);
  const std::vector<std::string> bundles = split_list(args.get("model"));
  if (bundles.empty()) throw std::runtime_error("--model: no bundles given");

  cdl::serve::ModelRegistry models;
  for (std::size_t i = 0; i < bundles.size(); ++i) {
    cdl::tools::ModelMeta meta;
    cdl::ConditionalNetwork net = cdl::tools::load_model(bundles[i], &meta);
    if (args.get_double("delta") >= 0.0) {
      net.set_delta(static_cast<float>(args.get_double("delta")));
    }
    if (args.get_flag("int8")) {
      if (!net.has_quantization()) {
        throw std::runtime_error("--int8 requested but " + bundles[i] +
                                 ".meta carries no calibration; re-train with "
                                 "cdl_train --calib-n > 0");
      }
      net.set_cascade_precision(cdl::StagePrecision::kInt8);
    }
    const std::string name = bundle_name(bundles[i], i, models);
    std::printf("model %zu: %s (%s, %zu stage(s), delta %.2f%s)\n", i,
                name.c_str(), meta.arch_name.c_str(), net.num_stages(),
                static_cast<double>(net.activation_module().delta()),
                args.get_flag("int8") ? ", int8" : "");
    models.add(name, std::move(net));
  }
  const std::size_t num_models = models.size();

  cdl::obs::Registry registry;
  cdl::serve::EngineConfig config;
  config.queue_capacity = args.get_size("queue-capacity");
  config.workers = args.get_size("workers");
  config.batcher.max_batch = args.get_size("max-batch");
  config.batcher.max_delay_ns = args.get_size("max-delay-us") * 1000;
  config.default_deadline_ns =
      static_cast<std::uint64_t>(args.get_double("deadline-ms") * 1e6);
  config.registry = &registry;
  config.drift.window = args.get_size("drift-window");
  config.drift.threshold = args.get_double("drift-threshold");
  config.telemetry.path = args.get("telemetry-out");
  config.telemetry.interval_ns = static_cast<std::uint64_t>(
      args.get_double("telemetry-interval-ms") * 1e6);
  config.telemetry.rotate_bytes = args.get_size("telemetry-rotate-kb") * 1024;
  config.energy_budget.budget_mj_per_s = args.get_double("energy-budget-mj-s");
  config.energy_budget.window_ns = static_cast<std::uint64_t>(
      args.get_double("energy-window-ms") * 1e6);
  cdl::serve::ServingEngine engine(std::move(models), config);

  // Live counters the observer's /report route reads while serving runs.
  std::atomic<std::uint64_t> scored_live{0};
  std::atomic<std::uint64_t> correct_live{0};
  const std::size_t planned_images = args.get_size("images");
  using steady = std::chrono::steady_clock;
  const steady::time_point start = steady::now();
  std::unique_ptr<cdl::serve::HttpObserver> observer;
  const double observe_port = args.get_double("observe-port");
  if (observe_port >= 0.0) {
    observer = std::make_unique<cdl::serve::HttpObserver>(
        static_cast<int>(observe_port),
        [&engine](std::ostream& os) { engine.slo().write_openmetrics(os); },
        [&](std::ostream& os) {
          const std::uint64_t sc = scored_live.load(std::memory_order_acquire);
          const std::uint64_t ok = correct_live.load(std::memory_order_acquire);
          const double elapsed =
              std::chrono::duration<double>(steady::now() - start).count();
          write_serve_report(os, engine, engine.slo().summaries(),
                             planned_images, elapsed,
                             sc == 0 ? 0.0
                                     : static_cast<double>(ok) /
                                           static_cast<double>(sc),
                             sc);
        });
    std::printf("observer listening on port %d\n", observer->port());
    std::fflush(stdout);
  }

  const std::size_t images = args.get_size("images");
  const cdl::MnistPair data =
      cdl::load_mnist_or_synthetic(0, images, args.get_size("seed"));
  const double rate = args.get_double("rate");
  std::printf("serving %zu image(s) across %zu model(s): %zu worker(s), "
              "queue %zu, max batch %zu, max delay %zu us%s\n",
              data.test.size(), num_models, config.workers,
              config.queue_capacity, config.batcher.max_batch,
              config.batcher.max_delay_ns / 1000,
              rate > 0.0 ? (", " + std::to_string(rate) + " img/s").c_str()
                         : "");

  std::vector<std::future<cdl::serve::Response>> futures;
  futures.reserve(data.test.size());
  std::vector<std::size_t> future_model(data.test.size());
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    if (rate > 0.0) {
      // Open loop: arrival i is due at i/rate seconds after start,
      // independent of service progress.
      const auto due =
          start + std::chrono::nanoseconds(
                      static_cast<std::uint64_t>(1e9 * static_cast<double>(i) / rate));
      std::this_thread::sleep_until(due);
    }
    const std::size_t model = i % num_models;  // round-robin across bundles
    future_model[i] = model;
    cdl::serve::Submitted receipt =
        engine.submit(model, cdl::Tensor(data.test.image(i)));
    futures.push_back(std::move(receipt.response));
  }
  engine.shutdown();  // drain: every accepted request completes

  std::uint64_t scored = 0;
  std::uint64_t correct = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const cdl::serve::Response resp = futures[i].get();
    if (resp.status != cdl::serve::RequestStatus::kOk) continue;
    ++scored;
    if (resp.result.label == data.test.label(i)) ++correct;
    scored_live.store(scored, std::memory_order_release);
    correct_live.store(correct, std::memory_order_release);
  }
  const double wall_s =
      std::chrono::duration<double>(steady::now() - start).count();
  const double accuracy =
      scored == 0 ? 0.0
                  : static_cast<double>(correct) / static_cast<double>(scored);

  const std::vector<cdl::serve::SloSummary> summaries =
      engine.slo().summaries();
  cdl::TextTable table({"model", "accepted", "completed", "rejected",
                        "expired", "slo miss", "mean batch", "p50 ms",
                        "p95 ms", "p99 ms", "mJ/img"});
  for (const cdl::serve::SloSummary& s : summaries) {
    table.add_row({s.model, std::to_string(s.accepted),
                   std::to_string(s.completed), std::to_string(s.rejected),
                   std::to_string(s.expired), std::to_string(s.slo_miss),
                   cdl::fmt(s.mean_batch, 2), cdl::fmt(s.p50_ms, 3),
                   cdl::fmt(s.p95_ms, 3), cdl::fmt(s.p99_ms, 3),
                   cdl::fmt(s.energy_mean_pj * 1e-9, 4)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("served %llu/%zu ok, accuracy %.2f %%, %.3f s wall "
              "(%.1f img/s sustained)\n",
              static_cast<unsigned long long>(scored), futures.size(),
              100.0 * accuracy, wall_s,
              wall_s > 0.0 ? static_cast<double>(futures.size()) / wall_s : 0.0);
  cdl::serve::EnergyBudgetWatchdog& watchdog = engine.energy_watchdog();
  std::printf("energy: %.3f mJ total attributed\n",
              watchdog.total_energy_pj() * 1e-9);
  if (watchdog.enabled()) {
    std::printf("energy budget: %.3f mJ/s over %llu window(s), %llu "
                "breach(es), max rate %.3f mJ/s\n",
                watchdog.config().budget_mj_per_s,
                static_cast<unsigned long long>(watchdog.windows_scored()),
                static_cast<unsigned long long>(watchdog.breaches()),
                watchdog.max_rate_mj_per_s());
  }

  const std::string report_out = args.get("report");
  if (!report_out.empty()) {
    write_file_or_throw(report_out, [&](std::ostream& os) {
      write_serve_report(os, engine, summaries, data.test.size(), wall_s,
                         accuracy, scored);
    });
    std::printf("serve report written to %s\n", report_out.c_str());
  }
  const std::string metrics_out = args.get("metrics-out");
  if (!metrics_out.empty()) {
    write_file_or_throw(metrics_out, [&](std::ostream& os) {
      registry.write_openmetrics(os);
    });
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (engine.telemetry() != nullptr) {
    std::printf("telemetry written to %s (%llu sample(s), %llu rotation(s))\n",
                config.telemetry.path.c_str(),
                static_cast<unsigned long long>(engine.telemetry()->samples()),
                static_cast<unsigned long long>(
                    engine.telemetry()->rotations()));
  }
  if (observer != nullptr) {
    // Keep the observer scrapeable over the final state until the linger
    // window expires or a client fetches /quitquitquit.
    const auto deadline =
        steady::now() +
        std::chrono::milliseconds(args.get_size("observe-linger-ms"));
    while (!observer->quit_requested() && steady::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::printf("observer served %llu request(s)\n",
                static_cast<unsigned long long>(observer->requests_served()));
    observer->stop();
  }
  trace_sink.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cdl::ArgParser args;
  args.add_option("model", "cdl_model",
                  "model bundle prefix(es) from cdl_train; a comma list "
                  "serves several checkpoints concurrently");
  args.add_option("images", "200", "test images to serve");
  args.add_option("seed", "42", "data seed");
  args.add_option("workers", "1", "serving worker threads (0 = inline)");
  args.add_option("queue-capacity", "1024",
                  "bounded request queue size (full = reject)");
  args.add_option("max-batch", "16", "dynamic batcher size trigger");
  args.add_option("max-delay-us", "2000",
                  "dynamic batcher timeout trigger (microseconds)");
  args.add_option("deadline-ms", "0",
                  "per-request deadline in ms (0 = none); late or expired "
                  "requests count as SLO misses");
  args.add_option("rate", "0",
                  "offered load in img/s, open loop (0 = submit immediately)");
  args.add_option("delta", "-1", "override confidence threshold (-1 = stored)");
  args.add_flag("int8", "serve the full cascade quantized (needs calibration "
                        "in the .meta)");
  args.add_option("drift-window", "256",
                  "requests per exit-profile drift window");
  args.add_option("drift-threshold", "50",
                  "chi-square score at which a window raises a drift event");
  args.add_option("report", "", "write cdl-serve-report/1 JSON here");
  args.add_option("metrics-out", "", "write OpenMetrics exposition here");
  args.add_option("telemetry-out", "",
                  "stream cdl-serve-telemetry/1 JSONL samples here while "
                  "serving");
  args.add_option("telemetry-interval-ms", "1000",
                  "telemetry sampling interval");
  args.add_option("telemetry-rotate-kb", "0",
                  "rotate the telemetry file at this size (0 = never)");
  args.add_option("energy-budget-mj-s", "0",
                  "energy-budget watchdog: breach when a window's attributed "
                  "energy rate exceeds this many mJ/s (0 = disabled)");
  args.add_option("energy-window-ms", "1000",
                  "energy-budget watchdog window length");
  args.add_option("observe-port", "-1",
                  "start the HTTP observer on this loopback port (0 = "
                  "ephemeral, -1 = disabled): GET /metrics, /healthz, "
                  "/report, /quitquitquit");
  args.add_option("observe-linger-ms", "0",
                  "keep the observer up this long after serving finishes "
                  "(GET /quitquitquit ends it early)");
  cdl::tools::add_trace_option(args);

  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.help("cdl_serve").c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help("cdl_serve").c_str());
    return 0;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
