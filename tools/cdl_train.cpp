// cdl_train: trains a CDLN end to end and saves a reloadable model bundle.
//
//   cdl_train --arch mnist_3c --train-n 6000 --out my_model
//   cdl_eval  --model my_model --test-n 2000
//
// With --train-log / --train-report the run also emits the training-telemetry
// surfaces (cdl-train-events/1 JSONL and cdl-train-report/1 JSON): loss
// curves with per-layer gradient/weight statistics, every Algorithm-1
// admission decision, and non-finite-loss diagnostics. Both are
// byte-deterministic for a given seed unless --train-timing is passed.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "cdl/delta_selection.h"
#include "core/thread_pool.h"
#include "data/synthetic_mnist.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "model_io.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/train_telemetry.h"
#include "report_io.h"
#include "util/args.h"

namespace {

int run(const cdl::ArgParser& args) {
  const cdl::tools::TraceSink trace_sink(args);

  const std::string arch_name = args.get("arch");
  const cdl::CdlArchitecture arch =
      arch_name == "mnist_2c" ? cdl::mnist_2c() : cdl::mnist_3c();
  const auto seed = static_cast<std::uint64_t>(args.get_size("seed"));
  const cdl::LcTrainingRule rule = args.get("rule") == "softmax"
                                       ? cdl::LcTrainingRule::kSoftmaxXent
                                       : cdl::LcTrainingRule::kLms;

  std::optional<cdl::ThreadPool> pool_storage;
  cdl::ThreadPool* pool = nullptr;
  if (args.get_size("threads") != 1) {
    pool_storage.emplace(args.get_size("threads"));
    if (pool_storage->size() > 1) pool = &*pool_storage;
  }

  // Training telemetry: one sink feeds both the streamed JSONL log and the
  // final report. Training itself is unchanged when neither is requested.
  const std::string train_log_out = args.get("train-log");
  const std::string train_report_out = args.get("train-report");
  std::optional<cdl::obs::TrainTelemetry> telemetry;
  std::ofstream train_log_os;
  if (!train_log_out.empty() || !train_report_out.empty()) {
    cdl::obs::TrainTelemetryConfig tcfg;
    tcfg.log_every_batches = args.get_size("log-batches");
    tcfg.wall_time = args.get_flag("train-timing");
    telemetry.emplace(tcfg);
    if (!train_log_out.empty()) {
      train_log_os.open(train_log_out);
      if (!train_log_os) {
        throw std::runtime_error("cannot write " + train_log_out);
      }
      telemetry->set_log(&train_log_os);
    }
  }
  cdl::obs::TrainTelemetry* tel = telemetry ? &*telemetry : nullptr;

  const auto write_train_report = [&] {
    if (train_report_out.empty() || tel == nullptr) return;
    cdl::obs::Registry train_registry;
    tel->export_to_registry(train_registry);
    std::ofstream os(train_report_out);
    if (!os) throw std::runtime_error("cannot write " + train_report_out);
    tel->write_report(os, &train_registry);
    if (!os) throw std::runtime_error("write failure on " + train_report_out);
    std::printf("train report written to %s\n", train_report_out.c_str());
  };

  std::printf("loading data (%zu train / %zu val, seed %llu)...\n",
              args.get_size("train-n"), args.get_size("val-n"),
              static_cast<unsigned long long>(seed));
  const cdl::MnistPair data = [&] {
    CDL_TRACE_SPAN(span, "load_data", -1);
    return cdl::load_mnist_or_synthetic(args.get_size("train-n"), 0, seed,
                                        args.get_size("val-n"));
  }();

  cdl::Rng rng(seed);
  cdl::Network baseline = arch.make_baseline();
  baseline.init(rng);
  std::printf("training %s baseline (%s)...\n", arch.name.c_str(),
              baseline.summary().c_str());
  cdl::BaselineTrainConfig bcfg;
  bcfg.epochs = args.get_size("epochs");
  bcfg.log_every = args.get_size("log-every");
  bcfg.telemetry = tel;

  if (tel != nullptr) {
    cdl::obs::TrainRunInfo info;
    info.tool = "cdl_train";
    info.arch = arch.name;
    info.rule = to_string(rule);
    info.git = cdl::tools::git_describe();
    info.seed = seed;
    info.train_n = data.train.size();
    info.val_n = data.validation.size();
    info.epochs = bcfg.epochs;
    info.lc_epochs = args.get_size("lc-epochs");
    info.batch_size = bcfg.batch_size;
    info.prune = args.get_flag("prune");
    tel->run_start(info);
  }

  float final_loss = 0.0F;
  cdl::CdlTrainReport report;
  std::optional<cdl::ConditionalNetwork> net_storage;
  try {
    {
      CDL_TRACE_SPAN(span, "train_baseline", -1);
      final_loss = cdl::train_baseline(baseline, data.train, bcfg, rng);
    }

    net_storage.emplace(std::move(baseline), arch.input_shape);
    cdl::ConditionalNetwork& net = *net_storage;
    const auto& candidates =
        args.get_flag("prune") ? arch.candidate_stages : arch.default_stages;
    for (std::size_t prefix : candidates) {
      net.attach_classifier(prefix, rule, rng);
    }

    std::printf("training stage classifiers (Algorithm 1%s)...\n",
                args.get_flag("prune") ? ", gain pruning on" : "");
    cdl::CdlTrainConfig cfg;
    cfg.lc_epochs = args.get_size("lc-epochs");
    cfg.prune_by_gain = args.get_flag("prune");
    cfg.log_every = args.get_size("log-every");
    cfg.telemetry = tel;
    {
      CDL_TRACE_SPAN(span, "train_cdl", -1);
      report = cdl::train_cdl(net, data.train, cfg, rng);
    }
  } catch (const cdl::TrainingDiverged& e) {
    // The matching "non_finite" event is already in the stream; still write
    // the report so the partial curves survive for post-mortem.
    write_train_report();
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  cdl::ConditionalNetwork& net = *net_storage;
  for (const auto& s : report.stages) {
    std::printf("  %s: reached %zu, classified %zu -> %s\n",
                s.stage_name.c_str(), s.reached, s.classified,
                s.admitted ? "admitted" : "rejected");
  }

  cdl::tools::TrainProvenance provenance;
  provenance.seed = seed;
  provenance.epochs = bcfg.epochs;
  provenance.lc_epochs = args.get_size("lc-epochs");
  provenance.git_describe = cdl::tools::git_describe();
  provenance.final_loss = final_loss;
  if (!data.validation.empty()) {
    CDL_TRACE_SPAN(span, "select_delta", -1);
    const cdl::DeltaSelection sel = cdl::select_delta(net, data.validation);
    std::printf("delta selected on validation: %.2f (accuracy %.2f %%)\n",
                static_cast<double>(sel.best.delta), 100.0 * sel.best.accuracy);
    provenance.val_accuracy = static_cast<float>(sel.best.accuracy);
    if (tel != nullptr) {
      tel->set_delta_selection(static_cast<double>(sel.best.delta),
                               sel.best.accuracy);
    }
  }

  // Int8 calibration: record per-boundary activation ranges over a slice of
  // the training split so the checkpoint can run quantized stages without
  // re-seeing data. Thread-count independent (max/min merges), so the meta
  // file stays byte-deterministic for a given seed.
  const std::size_t calib_n =
      std::min<std::size_t>(args.get_size("calib-n"), data.train.size());
  cdl::QuantCalibration quant_cal;
  if (calib_n > 0) {
    CDL_TRACE_SPAN(span, "calibrate_quant", -1);
    quant_cal = cdl::collect_quant_calibration(
        net.baseline(), arch.input_shape, data.train.images(), calib_n, pool);
    net.set_quantization(quant_cal);
    std::printf("int8 calibration over %zu samples (%zu boundaries)\n",
                calib_n, quant_cal.boundaries());
  }

  cdl::tools::save_model(args.get("out"), net, arch.name, &provenance,
                         quant_cal.empty() ? nullptr : &quant_cal);
  std::printf("model saved to %s.cdlw / %s.meta\n", args.get("out").c_str(),
              args.get("out").c_str());

  if (tel != nullptr) tel->run_end();
  write_train_report();

  const std::string report_out = args.get("report");
  const std::string metrics_out = args.get("metrics-out");
  const bool want_perf = args.get_flag("perf");
  if (!report_out.empty() || !metrics_out.empty() || want_perf) {
    // Measured region: one cascade evaluation of the freshly trained model
    // (validation split when present, else the training set).
    const cdl::Dataset& eval_data =
        data.validation.empty() ? data.train : data.validation;
    const cdl::EnergyModel energy;
    cdl::obs::RunReport run_report;
    cdl::tools::MeasuredRegion region(!report_out.empty(), want_perf);
    region.start();
    const cdl::Evaluation eval = cdl::evaluate_cdl(net, eval_data, energy, pool);
    region.finish(run_report);

    if (want_perf) {
      std::printf("%s\n",
                  run_report.perf.summary(run_report.perf_reason).c_str());
    }
    cdl::obs::Registry registry;
    eval.profile.export_to_registry(registry);
    registry.gauge("cdl_accuracy", "CDLN accuracy over the measured split")
        .set(eval.accuracy());
    registry.gauge("cdl_avg_ops", "Average OPS per input (CDLN)")
        .set(eval.avg_ops());
    registry.gauge("cdl_delta", "Confidence threshold in effect")
        .set(static_cast<double>(net.activation_module().delta()));
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      if (!os) throw std::runtime_error("cannot write " + metrics_out);
      registry.write_openmetrics(os);
      if (!os) throw std::runtime_error("write failure on " + metrics_out);
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
    if (!report_out.empty()) {
      run_report.tool = "cdl_train";
      run_report.network = arch.name;
      run_report.threads = pool != nullptr ? pool->size() : 1;
      run_report.samples = eval_data.size();
      run_report.seed = seed;
      std::uint64_t total_ops = 0;
      for (std::size_t s = 0; s <= net.num_stages(); ++s) {
        total_ops += static_cast<std::uint64_t>(eval.exit_counts[s]) *
                     net.exit_ops(s).total_compute();
      }
      run_report.total_ops = total_ops;
      run_report.exit_profile = eval.profile;
      run_report.registry = &registry;
      std::ofstream os(report_out);
      if (!os) throw std::runtime_error("cannot write " + report_out);
      run_report.write_json(os);
      if (!os) throw std::runtime_error("write failure on " + report_out);
      std::printf("run report written to %s\n", report_out.c_str());
    }
  }

  trace_sink.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cdl::ArgParser args;
  args.add_option("arch", "mnist_3c", "architecture: mnist_2c or mnist_3c");
  args.add_option("train-n", "6000", "training samples");
  args.add_option("val-n", "1500", "validation samples for delta selection");
  args.add_option("seed", "42", "experiment seed");
  args.add_option("epochs", "6", "baseline training epochs");
  args.add_option("lc-epochs", "12", "linear-classifier training epochs");
  args.add_option("rule", "lms", "stage classifier rule: lms or softmax");
  args.add_option("out", "cdl_model", "output path prefix (.cdlw/.meta)");
  args.add_option("calib-n", "512", "training samples for int8 activation "
                                    "calibration (0 disables; ranges are "
                                    "stored in the .meta file)");
  args.add_option("threads", "1", "evaluation worker threads for the "
                                  "measured region (0 = hardware "
                                  "concurrency); training is serial and "
                                  "results are identical for any value");
  cdl::tools::add_trace_option(args);
  args.add_flag("prune", "apply Algorithm 1's gain-based stage admission");
  cdl::tools::add_report_options(args);
  cdl::tools::add_train_report_options(args);

  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.help("cdl_train").c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help("cdl_train").c_str());
    return 0;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
