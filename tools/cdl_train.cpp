// cdl_train: trains a CDLN end to end and saves a reloadable model bundle.
//
//   cdl_train --arch mnist_3c --train-n 6000 --out my_model
//   cdl_eval  --model my_model --test-n 2000
#include <cstdio>
#include <fstream>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "cdl/delta_selection.h"
#include "data/synthetic_mnist.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "model_io.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "report_io.h"
#include "util/args.h"

namespace {

int run(const cdl::ArgParser& args) {
  const std::string trace_out = args.get("trace-out");
  cdl::obs::Tracer& tracer = cdl::obs::Tracer::instance();
  if (!trace_out.empty()) tracer.set_enabled(true);

  const std::string arch_name = args.get("arch");
  const cdl::CdlArchitecture arch =
      arch_name == "mnist_2c" ? cdl::mnist_2c() : cdl::mnist_3c();
  const auto seed = static_cast<std::uint64_t>(args.get_size("seed"));

  std::printf("loading data (%zu train / %zu val, seed %llu)...\n",
              args.get_size("train-n"), args.get_size("val-n"),
              static_cast<unsigned long long>(seed));
  const cdl::MnistPair data = [&] {
    CDL_TRACE_SPAN(span, "load_data", -1);
    return cdl::load_mnist_or_synthetic(args.get_size("train-n"), 0, seed,
                                        args.get_size("val-n"));
  }();

  cdl::Rng rng(seed);
  cdl::Network baseline = arch.make_baseline();
  baseline.init(rng);
  std::printf("training %s baseline (%s)...\n", arch.name.c_str(),
              baseline.summary().c_str());
  cdl::BaselineTrainConfig bcfg;
  bcfg.epochs = args.get_size("epochs");
  bcfg.log_every = 1;
  {
    CDL_TRACE_SPAN(span, "train_baseline", -1);
    cdl::train_baseline(baseline, data.train, bcfg, rng);
  }

  cdl::ConditionalNetwork net(std::move(baseline), arch.input_shape);
  const cdl::LcTrainingRule rule = args.get("rule") == "softmax"
                                       ? cdl::LcTrainingRule::kSoftmaxXent
                                       : cdl::LcTrainingRule::kLms;
  const auto& candidates =
      args.get_flag("prune") ? arch.candidate_stages : arch.default_stages;
  for (std::size_t prefix : candidates) {
    net.attach_classifier(prefix, rule, rng);
  }

  std::printf("training stage classifiers (Algorithm 1%s)...\n",
              args.get_flag("prune") ? ", gain pruning on" : "");
  cdl::CdlTrainConfig cfg;
  cfg.lc_epochs = args.get_size("lc-epochs");
  cfg.prune_by_gain = args.get_flag("prune");
  const cdl::CdlTrainReport report = [&] {
    CDL_TRACE_SPAN(span, "train_cdl", -1);
    return cdl::train_cdl(net, data.train, cfg, rng);
  }();
  for (const auto& s : report.stages) {
    std::printf("  %s: reached %zu, classified %zu -> %s\n",
                s.stage_name.c_str(), s.reached, s.classified,
                s.admitted ? "admitted" : "rejected");
  }

  if (!data.validation.empty()) {
    CDL_TRACE_SPAN(span, "select_delta", -1);
    const cdl::DeltaSelection sel = cdl::select_delta(net, data.validation);
    std::printf("delta selected on validation: %.2f (accuracy %.2f %%)\n",
                static_cast<double>(sel.best.delta), 100.0 * sel.best.accuracy);
  }

  cdl::tools::save_model(args.get("out"), net, arch.name);
  std::printf("model saved to %s.cdlw / %s.meta\n", args.get("out").c_str(),
              args.get("out").c_str());

  const std::string report_out = args.get("report");
  const std::string metrics_out = args.get("metrics-out");
  const bool want_perf = args.get_flag("perf");
  if (!report_out.empty() || !metrics_out.empty() || want_perf) {
    // Measured region: one cascade evaluation of the freshly trained model
    // (validation split when present, else the training set).
    const cdl::Dataset& eval_data =
        data.validation.empty() ? data.train : data.validation;
    const cdl::EnergyModel energy;
    cdl::obs::RunReport run_report;
    cdl::tools::MeasuredRegion region(!report_out.empty(), want_perf);
    region.start();
    const cdl::Evaluation eval = cdl::evaluate_cdl(net, eval_data, energy);
    region.finish(run_report);

    if (want_perf) {
      std::printf("%s\n",
                  run_report.perf.summary(run_report.perf_reason).c_str());
    }
    cdl::obs::Registry registry;
    eval.profile.export_to_registry(registry);
    registry.gauge("cdl_accuracy", "CDLN accuracy over the measured split")
        .set(eval.accuracy());
    registry.gauge("cdl_avg_ops", "Average OPS per input (CDLN)")
        .set(eval.avg_ops());
    registry.gauge("cdl_delta", "Confidence threshold in effect")
        .set(static_cast<double>(net.activation_module().delta()));
    if (!metrics_out.empty()) {
      std::ofstream os(metrics_out);
      if (!os) throw std::runtime_error("cannot write " + metrics_out);
      registry.write_openmetrics(os);
      if (!os) throw std::runtime_error("write failure on " + metrics_out);
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
    if (!report_out.empty()) {
      run_report.tool = "cdl_train";
      run_report.network = arch.name;
      run_report.threads = 1;
      run_report.samples = eval_data.size();
      run_report.seed = seed;
      std::uint64_t total_ops = 0;
      for (std::size_t s = 0; s <= net.num_stages(); ++s) {
        total_ops += static_cast<std::uint64_t>(eval.exit_counts[s]) *
                     net.exit_ops(s).total_compute();
      }
      run_report.total_ops = total_ops;
      run_report.exit_profile = eval.profile;
      run_report.registry = &registry;
      std::ofstream os(report_out);
      if (!os) throw std::runtime_error("cannot write " + report_out);
      run_report.write_json(os);
      if (!os) throw std::runtime_error("write failure on " + report_out);
      std::printf("run report written to %s\n", report_out.c_str());
    }
  }

  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    if (!os) throw std::runtime_error("cannot write " + trace_out);
    tracer.write_chrome_trace(os);
    if (!os) throw std::runtime_error("write failure on " + trace_out);
    std::printf("\n%strace written to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                tracer.summary().c_str(), trace_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cdl::ArgParser args;
  args.add_option("arch", "mnist_3c", "architecture: mnist_2c or mnist_3c");
  args.add_option("train-n", "6000", "training samples");
  args.add_option("val-n", "1500", "validation samples for delta selection");
  args.add_option("seed", "42", "experiment seed");
  args.add_option("epochs", "6", "baseline training epochs");
  args.add_option("lc-epochs", "12", "linear-classifier training epochs");
  args.add_option("rule", "lms", "stage classifier rule: lms or softmax");
  args.add_option("out", "cdl_model", "output path prefix (.cdlw/.meta)");
  args.add_option("trace-out", "", "write Chrome trace JSON here (enables "
                                   "tracing for the run)");
  args.add_flag("prune", "apply Algorithm 1's gain-based stage admission");
  cdl::tools::add_report_options(args);

  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.help("cdl_train").c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help("cdl_train").c_str());
    return 0;
  }
  try {
    return run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
