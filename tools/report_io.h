// Shared observability plumbing for the CLI tools: the --report /
// --metrics-out / --perf flags and the measured-region bracket that arms the
// layer profiler and hardware counters around one evaluation and collects
// the results into a RunReport (schema cdl-run-report/1).
#pragma once

#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>

#include "obs/layer_profile.h"
#include "obs/perf_counters.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "util/args.h"

namespace cdl::tools {

inline void add_report_options(ArgParser& args) {
  args.add_option("report", "", "write a cdl-run-report/1 JSON run report "
                                "here (enables per-layer attribution)");
  args.add_option("metrics-out", "", "write an OpenMetrics snapshot of the "
                                     "run's metrics here");
  args.add_flag("perf", "read hardware perf counters over the measured "
                        "region (degrades to wall clock when "
                        "perf_event_open is unavailable)");
}

/// Flags of the training-telemetry surface (tools that train). The logs'
/// default contract is byte-determinism: --train-timing opts into real
/// wall-clock stamps at the cost of that guarantee.
inline void add_train_report_options(ArgParser& args) {
  args.add_option("train-log", "", "stream a cdl-train-events/1 JSONL "
                                   "training event log here");
  args.add_option("train-report", "", "write a cdl-train-report/1 JSON "
                                      "training report here");
  args.add_option("log-every", "1", "print training loss every N epochs "
                                    "(baseline and stage classifiers; "
                                    "0 = silent)");
  args.add_option("log-batches", "0", "emit a train-log batch record every "
                                      "N optimizer steps (0 = epoch records "
                                      "only)");
  args.add_flag("train-timing", "stamp training events with real wall-clock "
                                "durations (trades away the train log's "
                                "byte-determinism)");
}

/// The shared --trace-out flag: cdl_train, cdl_eval and cdl_serve expose the
/// same Chrome-trace surface through this pair.
inline void add_trace_option(ArgParser& args) {
  args.add_option("trace-out", "", "write Chrome trace JSON here (enables "
                                   "tracing for the run)");
}

/// Arms the process tracer when --trace-out was given and writes the
/// collected trace (plus the aggregated span summary) at the end of the run.
class TraceSink {
 public:
  explicit TraceSink(const ArgParser& args) : path_(args.get("trace-out")) {
    if (!path_.empty()) obs::Tracer::instance().set_enabled(true);
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Call once after the traced work is done (no spans in flight).
  void write() const {
    if (path_.empty()) return;
    std::ofstream os(path_);
    if (!os) throw std::runtime_error("cannot write " + path_);
    obs::Tracer::instance().write_chrome_trace(os);
    if (!os) throw std::runtime_error("write failure on " + path_);
    std::printf("\n%strace written to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                obs::Tracer::instance().summary().c_str(), path_.c_str());
  }

 private:
  std::string path_;
};

/// Build provenance stamped into train logs and model metadata.
inline const char* git_describe() {
#ifdef CDL_GIT_DESCRIBE
  return CDL_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

/// Brackets one measured region. start() clears and enables the layer
/// profiler (when attribution was requested) and arms the perf counter
/// group; finish() stops both and fills the report's timing, attribution,
/// fork/join and perf sections. Everything else in the report (tool,
/// network, samples, totals, exit profile, registry) stays the caller's job.
class MeasuredRegion {
 public:
  MeasuredRegion(bool attribute, bool want_perf)
      : attribute_(attribute), want_perf_(want_perf) {}

  void start() {
    if (attribute_) {
      obs::LayerProfiler& profiler = obs::LayerProfiler::instance();
      profiler.clear();
      profiler.set_enabled(true);
    }
    if (want_perf_) {
      perf_.emplace();
      perf_->start();
    }
    t0_ = obs::now_ns();
  }

  void finish(obs::RunReport& report) {
    report.total_time_ns = obs::now_ns() - t0_;
    if (attribute_) {
      obs::LayerProfiler& profiler = obs::LayerProfiler::instance();
      profiler.set_enabled(false);
      report.layers = profiler.snapshot();
      report.parallel_for = profiler.parallel_for_stats();
    }
    report.perf_attempted = want_perf_;
    if (want_perf_) {
      report.perf = perf_->stop();
      report.perf_reason = perf_->unavailable_reason();
    } else {
      report.perf_reason = "not requested (pass --perf)";
    }
  }

 private:
  bool attribute_;
  bool want_perf_;
  std::optional<obs::PerfGroup> perf_;
  std::uint64_t t0_ = 0;
};

}  // namespace cdl::tools
