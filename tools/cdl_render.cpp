// cdl_render: inspects the synthetic MNIST generator — renders digits as
// terminal ASCII art and/or PGM files, with controllable difficulty, so the
// substitute dataset can be eyeballed.
#include <cstdio>
#include <filesystem>

#include "data/synthetic_mnist.h"
#include "eval/ascii_art.h"
#include "eval/pgm.h"
#include "util/args.h"

int main(int argc, char** argv) {
  cdl::ArgParser args;
  args.add_option("digit", "all", "digit 0-9 to render, or 'all'");
  args.add_option("count", "3", "samples per digit");
  args.add_option("seed", "1", "generator seed");
  args.add_option("out-dir", "", "write PGM files here (empty = skip)");
  args.add_flag("quiet", "suppress ASCII output");

  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.help("cdl_render").c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help("cdl_render").c_str());
    return 0;
  }

  cdl::SyntheticMnistConfig config;
  config.seed = static_cast<std::uint64_t>(args.get_size("seed"));
  const cdl::SyntheticMnist gen(config);

  std::size_t first = 0;
  std::size_t last = 9;
  if (args.get("digit") != "all") {
    first = last = args.get_size("digit");
    if (first > 9) {
      std::fprintf(stderr, "error: digit must be 0-9 or 'all'\n");
      return 1;
    }
  }

  const std::string out_dir = args.get("out-dir");
  if (!out_dir.empty()) std::filesystem::create_directories(out_dir);

  const std::size_t count = args.get_size("count");
  for (std::size_t d = first; d <= last; ++d) {
    std::vector<cdl::Tensor> images;
    std::vector<std::string> captions;
    for (std::uint64_t i = 0; i < count; ++i) {
      images.push_back(gen.render(d, i));
      char caption[64];
      std::snprintf(caption, sizeof(caption), "d=%zu #%llu (%.2f)", d,
                    static_cast<unsigned long long>(i),
                    static_cast<double>(gen.difficulty(d, i)));
      captions.emplace_back(caption);
      if (!out_dir.empty()) {
        char name[64];
        std::snprintf(name, sizeof(name), "digit%zu_%03llu.pgm", d,
                      static_cast<unsigned long long>(i));
        cdl::save_pgm(out_dir + "/" + name, images.back());
      }
    }
    if (!args.get_flag("quiet")) {
      std::printf("%s\n", cdl::render_ascii_row(images, captions).c_str());
    }
  }
  if (!out_dir.empty()) {
    std::printf("PGM files written to %s/\n", out_dir.c_str());
  }
  return 0;
}
