#include "model_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "cdl/architectures.h"

namespace cdl::tools {

namespace {

const CdlArchitecture& find_arch(const std::string& name) {
  static const std::vector<CdlArchitecture> archs = paper_architectures();
  for (const CdlArchitecture& arch : archs) {
    if (arch.name == name) return arch;
  }
  throw std::runtime_error("unknown architecture in model meta: " + name);
}

}  // namespace

namespace {

// Round-trippable float rendering for the meta file (%.9g recovers any
// float32 exactly).
std::string render_float(float value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", static_cast<double>(value));
  return buffer;
}

}  // namespace

void save_model(const std::string& path, ConditionalNetwork& net,
                const std::string& arch_name,
                const TrainProvenance* provenance,
                const QuantCalibration* quant) {
  net.save(path + ".cdlw");
  std::ofstream meta(path + ".meta");
  if (!meta) throw std::runtime_error("cannot open " + path + ".meta");
  meta << "arch " << arch_name << '\n';
  meta << "stages";
  for (std::size_t s = 0; s < net.num_stages(); ++s) {
    meta << ' ' << net.stage_prefix(s);
  }
  meta << '\n';
  meta << "rule "
       << (net.num_stages() > 0 ? to_string(net.classifier(0).rule()) : "lms")
       << '\n';
  meta << "delta " << net.activation_module().delta() << '\n';
  if (provenance != nullptr) {
    meta << "seed " << provenance->seed << '\n';
    meta << "epochs " << provenance->epochs << '\n';
    meta << "lc_epochs " << provenance->lc_epochs << '\n';
    if (!provenance->git_describe.empty()) {
      meta << "git " << provenance->git_describe << '\n';
    }
    meta << "final_loss " << render_float(provenance->final_loss) << '\n';
    meta << "val_accuracy " << render_float(provenance->val_accuracy) << '\n';
  }
  if (quant != nullptr && !quant->empty()) {
    meta << "quant_amax";
    for (const float v : quant->amax) meta << ' ' << render_float(v);
    meta << '\n';
    meta << "quant_vmin";
    for (const float v : quant->vmin) meta << ' ' << render_float(v);
    meta << '\n';
  }
}

ConditionalNetwork load_model(const std::string& path, ModelMeta* meta_out) {
  std::ifstream meta_file(path + ".meta");
  if (!meta_file) throw std::runtime_error("cannot open " + path + ".meta");

  ModelMeta meta;
  std::string line;
  while (std::getline(meta_file, line)) {
    std::istringstream is(line);
    std::string key;
    is >> key;
    if (key == "arch") {
      is >> meta.arch_name;
    } else if (key == "stages") {
      std::size_t prefix = 0;
      while (is >> prefix) meta.stages.push_back(prefix);
    } else if (key == "rule") {
      std::string rule;
      is >> rule;
      meta.rule = rule == "softmax_xent" ? LcTrainingRule::kSoftmaxXent
                                         : LcTrainingRule::kLms;
    } else if (key == "delta") {
      is >> meta.delta;
    } else if (key == "seed") {
      if (!meta.provenance) meta.provenance.emplace();
      is >> meta.provenance->seed;
    } else if (key == "epochs") {
      if (!meta.provenance) meta.provenance.emplace();
      is >> meta.provenance->epochs;
    } else if (key == "lc_epochs") {
      if (!meta.provenance) meta.provenance.emplace();
      is >> meta.provenance->lc_epochs;
    } else if (key == "git") {
      if (!meta.provenance) meta.provenance.emplace();
      is >> meta.provenance->git_describe;
    } else if (key == "final_loss") {
      if (!meta.provenance) meta.provenance.emplace();
      is >> meta.provenance->final_loss;
    } else if (key == "val_accuracy") {
      if (!meta.provenance) meta.provenance.emplace();
      is >> meta.provenance->val_accuracy;
    } else if (key == "quant_amax") {
      if (!meta.quant) meta.quant.emplace();
      float v = 0.0F;
      while (is >> v) meta.quant->amax.push_back(v);
    } else if (key == "quant_vmin") {
      if (!meta.quant) meta.quant.emplace();
      float v = 0.0F;
      while (is >> v) meta.quant->vmin.push_back(v);
    }
    // Unknown keys are skipped: newer meta files load in older tools.
  }

  const CdlArchitecture& arch = find_arch(meta.arch_name);
  Network baseline = arch.make_baseline();
  Rng rng(0);  // overwritten by load below
  baseline.init(rng);
  ConditionalNetwork net(std::move(baseline), arch.input_shape);
  for (std::size_t prefix : meta.stages) {
    net.attach_classifier(prefix, meta.rule, rng);
  }
  net.load(path + ".cdlw");
  net.set_delta(meta.delta);
  // Install calibration ranges when present and consistent with this
  // baseline (a truncated or foreign meta file degrades to fp32-only).
  if (meta.quant && meta.quant->amax.size() == meta.quant->vmin.size() &&
      meta.quant->boundaries() == net.baseline().size() + 1) {
    net.set_quantization(*meta.quant);
  }
  if (meta_out != nullptr) *meta_out = std::move(meta);
  return net;
}

}  // namespace cdl::tools
