// energy_report: prints the per-layer operation/energy breakdown of both
// paper architectures under the 45 nm op-level energy model, plus a
// what-if comparison against a compute-only (free memory) cost profile —
// useful for understanding where a CDLN's energy actually goes.
#include <cstdio>

#include "cdl/architectures.h"
#include "energy/report.h"
#include "eval/table.h"

int main() {
  const cdl::EnergyModel cmos45(cdl::EnergyCosts::cmos_45nm());
  const cdl::EnergyModel compute_only(cdl::EnergyCosts::compute_only());

  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    cdl::Network baseline = arch.make_baseline();
    std::printf("%s\n",
                cdl::format_profile(
                    cdl::profile_network(baseline, arch.input_shape, cmos45),
                    arch.name + " baseline, 45 nm CMOS model")
                    .c_str());

    // Where does the energy go? Compare against a model with free memory.
    const cdl::NetworkProfile full =
        cdl::profile_network(baseline, arch.input_shape, cmos45);
    const cdl::NetworkProfile compute =
        cdl::profile_network(baseline, arch.input_shape, compute_only);
    const double mem_fraction =
        1.0 - compute.total_energy_pj / full.total_energy_pj;
    std::printf("memory traffic accounts for %.1f %% of %s's inference "
                "energy\n\n",
                100.0 * mem_fraction, arch.name.c_str());

    // CDLN overhead inventory (worst case: every stage evaluated).
    cdl::Rng rng(1);
    cdl::ConditionalNetwork cdln(std::move(baseline), arch.input_shape);
    for (std::size_t prefix : arch.default_stages) {
      cdln.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
    }
    std::printf("%s\n",
                cdl::format_profile(cdl::profile_cdln(cdln, cmos45),
                                    arch.name + " CDLN, worst-case path")
                    .c_str());

    cdl::TextTable exits({"exit stage", "cumulative ops", "energy"});
    for (std::size_t s = 0; s <= cdln.num_stages(); ++s) {
      const cdl::OpCount ops = cdln.exit_ops(s);
      exits.add_row({cdln.stage_name(s),
                     std::to_string(ops.total_compute()),
                     cdl::format_energy(cmos45.energy_pj(ops))});
    }
    std::printf("cost of exiting at each stage:\n%s\n",
                exits.to_string().c_str());
  }
  return 0;
}
