// Quickstart: train the paper's 6-layer baseline (Table I), build its CDLN
// (MNIST_2C), and compare accuracy / operations / energy on the test set.
//
// Sample sizes honour CDL_TRAIN_N / CDL_TEST_N (defaults below); set
// CDL_MNIST_DIR to use real MNIST IDX files instead of the synthetic set.
#include <cstdio>
#include <cstdlib>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "cdl/conditional_network.h"
#include "data/synthetic_mnist.h"
#include "energy/report.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace {
std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                      : fallback;
}
}  // namespace

int main() {
  const std::size_t train_n = env_size("CDL_TRAIN_N", 4000);
  const std::size_t test_n = env_size("CDL_TEST_N", 1000);

  std::printf("Loading data (%zu train / %zu test)...\n", train_n, test_n);
  const cdl::MnistPair data = cdl::load_mnist_or_synthetic(train_n, test_n);
  std::printf("  source: %s MNIST\n", data.synthetic ? "synthetic" : "real");

  cdl::Rng rng(42);
  const cdl::CdlArchitecture arch = cdl::mnist_2c();
  cdl::Network baseline = arch.make_baseline();
  baseline.init(rng);
  std::printf("Baseline (%s): %s\n", arch.name.c_str(),
              baseline.summary().c_str());

  std::printf("Training baseline DLN...\n");
  cdl::BaselineTrainConfig base_cfg;
  base_cfg.log_every = 1;
  cdl::train_baseline(baseline, data.train, base_cfg, rng);

  cdl::ConditionalNetwork cdln(std::move(baseline), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    cdln.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
  }

  std::printf("Training CDLN linear classifiers (Algorithm 1)...\n");
  const cdl::CdlTrainReport report =
      cdl::train_cdl(cdln, data.train, cdl::CdlTrainConfig{}, rng);
  for (const auto& stage : report.stages) {
    std::printf("  %s: reached %zu, classified %zu, gain %.3g -> %s\n",
                stage.stage_name.c_str(), stage.reached, stage.classified,
                stage.gain, stage.admitted ? "admitted" : "rejected");
  }

  cdln.set_delta(0.5F);
  const cdl::EnergyModel energy;
  const cdl::Evaluation base_eval =
      cdl::evaluate_baseline(cdln, data.test, energy);
  const cdl::Evaluation cdl_eval = cdl::evaluate_cdl(cdln, data.test, energy);

  cdl::TextTable table({"metric", "baseline DLN", "CDLN (MNIST_2C)"});
  table.add_row({"accuracy", cdl::fmt_percent(base_eval.accuracy()),
                 cdl::fmt_percent(cdl_eval.accuracy())});
  table.add_row({"avg ops/input", cdl::fmt(base_eval.avg_ops(), 0),
                 cdl::fmt(cdl_eval.avg_ops(), 0)});
  table.add_row({"avg energy/input",
                 cdl::format_energy(base_eval.avg_energy_pj()),
                 cdl::format_energy(cdl_eval.avg_energy_pj())});
  table.add_row({"OPS improvement", "1.00x",
                 cdl::fmt(base_eval.avg_ops() / cdl_eval.avg_ops(), 2) + "x"});
  table.add_row({"energy improvement", "1.00x",
                 cdl::fmt(base_eval.avg_energy_pj() / cdl_eval.avg_energy_pj(), 2) + "x"});
  std::printf("\n%s", table.to_string().c_str());

  std::printf("\nExit-stage distribution (delta = %.2f):\n",
              static_cast<double>(cdln.activation_module().delta()));
  for (std::size_t s = 0; s <= cdln.num_stages(); ++s) {
    std::printf("  %s: %5.1f %%\n", cdln.stage_name(s).c_str(),
                100.0 * cdl_eval.exit_fraction(s));
  }
  return 0;
}
