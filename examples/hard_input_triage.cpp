// hard_input_triage: uses the CDLN's exit stage as a *difficulty oracle*.
//
// The paper's Table IV observes that the stage at which an input is
// classified tracks how hard it looks. This example turns that into a
// triage application: route each incoming image by exit stage, show the
// easiest and hardest test instances as ASCII art, and report how
// per-stage accuracy degrades with depth (deep-exiting inputs really are
// the hard ones).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "data/synthetic_mnist.h"
#include "eval/ascii_art.h"
#include "eval/table.h"

namespace {
std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                      : fallback;
}
}  // namespace

int main() {
  const std::size_t train_n = env_size("CDL_TRAIN_N", 4000);
  const std::size_t test_n = env_size("CDL_TEST_N", 1000);
  const cdl::MnistPair data = cdl::load_mnist_or_synthetic(train_n, test_n, 23);

  cdl::Rng rng(23);
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  cdl::Network baseline = arch.make_baseline();
  baseline.init(rng);
  std::printf("training MNIST_3C...\n");
  cdl::train_baseline(baseline, data.train, cdl::BaselineTrainConfig{}, rng);

  cdl::ConditionalNetwork net(std::move(baseline), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
  }
  cdl::train_cdl(net, data.train, cdl::CdlTrainConfig{}, rng);
  net.set_delta(0.5F);

  // Triage: bucket every test input by its exit stage.
  const std::size_t n_stages = net.num_stages() + 1;
  struct Bucket {
    std::size_t total = 0;
    std::size_t correct = 0;
    double confidence_sum = 0.0;
    std::vector<std::size_t> samples;  // indices, for display
  };
  std::vector<Bucket> buckets(n_stages);

  for (std::size_t i = 0; i < data.test.size(); ++i) {
    const cdl::ClassificationResult r = net.classify(data.test.image(i));
    Bucket& b = buckets[r.exit_stage];
    ++b.total;
    if (r.label == data.test.label(i)) ++b.correct;
    b.confidence_sum += r.confidence;
    if (b.samples.size() < 2) b.samples.push_back(i);
  }

  cdl::TextTable table(
      {"exit stage", "share of traffic", "accuracy in bucket", "avg confidence"});
  for (std::size_t s = 0; s < n_stages; ++s) {
    const Bucket& b = buckets[s];
    table.add_row(
        {net.stage_name(s),
         cdl::fmt_percent(static_cast<double>(b.total) /
                          static_cast<double>(data.test.size())),
         b.total == 0 ? "n/a"
                      : cdl::fmt_percent(static_cast<double>(b.correct) /
                                         static_cast<double>(b.total)),
         b.total == 0 ? "n/a"
                      : cdl::fmt(b.confidence_sum /
                                     static_cast<double>(b.total),
                                 2)});
  }
  std::printf("\n%s", table.to_string().c_str());

  std::printf("\nrepresentative inputs per exit stage (easy -> hard):\n\n");
  std::vector<cdl::Tensor> images;
  std::vector<std::string> captions;
  for (std::size_t s = 0; s < n_stages; ++s) {
    for (std::size_t idx : buckets[s].samples) {
      images.push_back(data.test.image(idx));
      captions.push_back(net.stage_name(s) + " (digit " +
                         std::to_string(data.test.label(idx)) + ")");
    }
  }
  std::printf("%s", cdl::render_ascii_row(images, captions).c_str());

  std::printf("\na downstream system can use the exit stage as a difficulty "
              "signal:\nearly exits are trusted, FC exits flagged for "
              "review.\n");
  return 0;
}
