// streaming_triage: energy-proportional classification of a simulated
// camera stream.
//
// The paper's promise is that computational effort tracks input difficulty
// *at runtime*. This example synthesizes a stream whose scene conditions
// drift (clean segment -> cluttered segment -> noisy segment) and runs the
// CDLN frame by frame, printing a rolling energy/exit profile per segment —
// the behaviour an always-on embedded classifier would exhibit.
#include <cstdio>
#include <cstdlib>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "data/synthetic_mnist.h"
#include "data/transforms.h"
#include "energy/energy_model.h"
#include "energy/report.h"
#include "eval/table.h"

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                      : fallback;
}

struct Segment {
  const char* name;
  float clutter;
  float noise;
  std::size_t frames;
};

}  // namespace

int main() {
  const std::size_t train_n = env_size("CDL_TRAIN_N", 4000);

  // Train once on a mixed distribution so the model has seen every regime.
  std::printf("training MNIST_3C on a mixed-condition set...\n");
  cdl::SyntheticMnistConfig mixed;
  mixed.seed = 5;
  mixed.clutter = 0.4F;
  const cdl::SyntheticMnist mixed_gen(mixed);
  const cdl::Dataset train = mixed_gen.generate(train_n, 0);

  cdl::Rng rng(5);
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  cdl::Network baseline = arch.make_baseline();
  baseline.init(rng);
  cdl::train_baseline(baseline, train, cdl::BaselineTrainConfig{}, rng);
  cdl::ConditionalNetwork net(std::move(baseline), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
  }
  cdl::CdlTrainConfig cfg;
  cfg.prune_by_gain = false;
  cdl::train_cdl(net, train, cfg, rng);
  net.set_delta(0.5F);

  const cdl::EnergyModel energy;
  const double full_pass_pj = energy.energy_pj(net.worst_case_ops());

  const Segment segments[] = {
      {"clean scene", 0.0F, 0.02F, 120},
      {"crowded scene", 1.0F, 0.15F, 120},
      {"low light (noisy)", 0.3F, 0.45F, 120},
      {"clean again", 0.0F, 0.02F, 120},
  };

  cdl::TextTable table({"segment", "accuracy", "avg energy/frame",
                        "vs worst case", "O1 exits", "FC exits"});
  std::uint64_t frame_index = 1U << 20;  // disjoint from training indices
  for (const Segment& seg : segments) {
    cdl::SyntheticMnistConfig scene;
    scene.seed = 5;
    scene.clutter = seg.clutter;
    scene.noise_stddev = seg.noise;
    const cdl::SyntheticMnist gen(scene);

    std::size_t correct = 0;
    std::size_t o1 = 0;
    std::size_t fc = 0;
    double pj = 0.0;
    for (std::size_t f = 0; f < seg.frames; ++f, ++frame_index) {
      const std::size_t digit = f % 10;
      const cdl::Tensor frame = gen.render(digit, frame_index);
      const cdl::ClassificationResult r = net.classify(frame);
      if (r.label == digit) ++correct;
      if (r.exit_stage == 0) ++o1;
      if (r.exit_stage == net.num_stages()) ++fc;
      pj += energy.energy_pj(r.ops);
    }
    const double frames = static_cast<double>(seg.frames);
    table.add_row({seg.name,
                   cdl::fmt_percent(static_cast<double>(correct) / frames),
                   cdl::format_energy(pj / frames),
                   cdl::fmt(pj / frames / full_pass_pj, 2) + "x",
                   cdl::fmt_percent(static_cast<double>(o1) / frames),
                   cdl::fmt_percent(static_cast<double>(fc) / frames)});
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf("\nthe energy per frame rises and falls with scene difficulty "
              "while the model and threshold stay fixed — computation is "
              "proportional to input difficulty, the paper's core promise\n");
  return 0;
}
