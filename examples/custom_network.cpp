// custom_network: applying the CDL methodology to an architecture of your
// own. The paper claims the approach "is systematic and hence can be applied
// to all image recognition applications" — this example builds a ReLU/avg-
// pool network that appears nowhere in the paper, attaches classifiers at
// every pooling boundary, and lets Algorithm 1's gain criterion decide which
// stages earn their keep.
#include <cstdio>
#include <cstdlib>

#include "cdl/cdl_trainer.h"
#include "cdl/conditional_network.h"
#include "cdl/delta_selection.h"
#include "data/synthetic_mnist.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool2d.h"

namespace {

/// A custom baseline: wider first stage, ReLU activations, average pooling.
cdl::Network make_custom_baseline() {
  cdl::Network net;
  net.emplace<cdl::Conv2D>(1, 8, 5);                        // 28 -> 24, 8 maps
  net.emplace<cdl::ReLU>();
  net.emplace<cdl::Pool2D>(2, cdl::PoolMode::kAverage);     // -> 12
  net.emplace<cdl::Conv2D>(8, 16, 5);                       // -> 8, 16 maps
  net.emplace<cdl::ReLU>();
  net.emplace<cdl::Pool2D>(2, cdl::PoolMode::kAverage);     // -> 4
  net.emplace<cdl::Dense>(16 * 4 * 4, 32);
  net.emplace<cdl::ReLU>();
  net.emplace<cdl::Dense>(32, 10);
  return net;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                      : fallback;
}

}  // namespace

int main() {
  const std::size_t train_n = env_size("CDL_TRAIN_N", 4000);
  const std::size_t test_n = env_size("CDL_TEST_N", 1000);
  const cdl::MnistPair data =
      cdl::load_mnist_or_synthetic(train_n, test_n, 11, 800);

  cdl::Rng rng(11);
  cdl::Network baseline = make_custom_baseline();
  baseline.init(rng);
  std::printf("custom baseline: %s\n", baseline.summary().c_str());

  std::printf("training baseline...\n");
  cdl::BaselineTrainConfig bcfg;
  bcfg.sgd.learning_rate = 0.05F;  // ReLU nets want a gentler step
  cdl::train_baseline(baseline, data.train, bcfg, rng);

  const cdl::Shape input{1, 28, 28};
  cdl::ConditionalNetwork net(std::move(baseline), input);
  // Candidate stages after each pooling layer (prefixes 3 and 6) and after
  // the hidden dense layer (prefix 8).
  for (std::size_t prefix : {3U, 6U, 8U}) {
    net.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
  }

  std::printf("running Algorithm 1 (gain-based stage admission)...\n");
  const cdl::CdlTrainReport report =
      cdl::train_cdl(net, data.train, cdl::CdlTrainConfig{}, rng);

  cdl::TextTable stages({"candidate", "prefix", "reached", "classified",
                         "gain", "verdict"});
  for (const auto& s : report.stages) {
    stages.add_row({s.stage_name, std::to_string(s.prefix_layers),
                    std::to_string(s.reached), std::to_string(s.classified),
                    cdl::fmt(s.gain, 0),
                    s.admitted ? "admitted" : "rejected"});
  }
  std::printf("%s", stages.to_string().c_str());

  (void)cdl::select_delta(net, data.validation);
  const cdl::EnergyModel energy;
  const cdl::Evaluation base = cdl::evaluate_baseline(net, data.test, energy);
  const cdl::Evaluation cond = cdl::evaluate_cdl(net, data.test, energy);
  std::printf("\nbaseline: %.2f %% accuracy, %.0f ops/input\n",
              100.0 * base.accuracy(), base.avg_ops());
  std::printf("CDLN:     %.2f %% accuracy, %.0f ops/input (%.2fx, delta %.2f, "
              "%zu admitted stages)\n",
              100.0 * cond.accuracy(), cond.avg_ops(),
              base.avg_ops() / cond.avg_ops(),
              static_cast<double>(net.activation_module().delta()),
              net.num_stages());
  return 0;
}
