// delta_tuning: demonstrates the paper's runtime knob (Section V-E).
//
// Trains the 8-layer CDLN once, then shows how the confidence threshold
// delta trades operations against accuracy at inference time — no
// retraining required — and how select_delta() picks an operating point on
// a validation split.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "cdl/delta_selection.h"
#include "data/synthetic_mnist.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace {
std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                      : fallback;
}
}  // namespace

int main() {
  const std::size_t train_n = env_size("CDL_TRAIN_N", 4000);
  const std::size_t test_n = env_size("CDL_TEST_N", 1000);

  std::printf("Preparing data and training MNIST_3C CDLN...\n");
  const cdl::MnistPair data =
      cdl::load_mnist_or_synthetic(train_n, test_n, 42, /*val_count=*/800);

  cdl::Rng rng(42);
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  cdl::Network baseline = arch.make_baseline();
  baseline.init(rng);
  cdl::train_baseline(baseline, data.train, cdl::BaselineTrainConfig{}, rng);

  cdl::ConditionalNetwork net(std::move(baseline), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
  }
  // Keep the paper's fixed MNIST_3C configuration (O1+O2): with gain
  // pruning, Algorithm 1 may legitimately drop O2 on this workload, and this
  // example is about the delta knob, not stage admission.
  cdl::CdlTrainConfig train_config;
  train_config.prune_by_gain = false;
  cdl::train_cdl(net, data.train, train_config, rng);

  const cdl::EnergyModel energy;
  const double base_ops =
      static_cast<double>(net.baseline_forward_ops().total_compute());

  std::printf("\nManual sweep over delta (test set):\n");
  std::vector<std::string> header{"delta", "accuracy", "normalized #OPS"};
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    header.push_back("exit @" + net.stage_name(s));
  }
  cdl::TextTable table(std::move(header));
  for (float delta : {0.2F, 0.35F, 0.5F, 0.65F, 0.8F}) {
    net.set_delta(delta);
    const cdl::Evaluation eval = cdl::evaluate_cdl(net, data.test, energy);
    std::vector<std::string> row{cdl::fmt(delta, 2),
                                 cdl::fmt_percent(eval.accuracy()),
                                 cdl::fmt(eval.avg_ops() / base_ops, 3)};
    for (std::size_t s = 0; s <= net.num_stages(); ++s) {
      row.push_back(cdl::fmt_percent(eval.exit_fraction(s)));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nAutomatic selection on the validation split:\n");
  const cdl::DeltaSelection sel = cdl::select_delta(net, data.validation);
  std::printf("  chosen delta = %.2f (validation accuracy %.2f %%, "
              "avg ops %.0f)\n",
              static_cast<double>(sel.best.delta), 100.0 * sel.best.accuracy,
              sel.best.avg_ops);

  const cdl::Evaluation final_eval = cdl::evaluate_cdl(net, data.test, energy);
  std::printf("  test accuracy at chosen delta: %.2f %% with %.2fx fewer ops "
              "than the baseline\n",
              100.0 * final_eval.accuracy(), base_ops / final_eval.avg_ops());
  return 0;
}
