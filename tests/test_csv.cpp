#include <gtest/gtest.h>

#include <fstream>

#include "eval/csv.h"
#include "test_util.h"

namespace cdl {
namespace {

TEST(CsvWriter, EmptyHeaderRejected) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(CsvWriter, RowWidthValidated) {
  CsvWriter csv({"a", "b"});
  EXPECT_NO_THROW(csv.add_row({"1", "2"}));
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
  EXPECT_EQ(csv.rows(), 1U);
}

TEST(CsvWriter, PlainFieldsRenderUnquoted) {
  CsvWriter csv({"digit", "ops"});
  csv.add_row({"1", "2.08"});
  EXPECT_EQ(csv.to_string(), "digit,ops\n1,2.08\n");
}

TEST(CsvWriter, SpecialFieldsQuotedAndEscaped) {
  CsvWriter csv({"name"});
  csv.add_row({"a,b"});
  csv.add_row({"say \"hi\""});
  csv.add_row({"two\nlines"});
  EXPECT_EQ(csv.to_string(),
            "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"two\nlines\"\n");
}

TEST(CsvWriter, WritesFile) {
  const test::TempDir tmp("cdl_csv_test");
  const std::string path = tmp.path("out.csv");
  CsvWriter csv({"x", "y"});
  csv.add_row({"1", "2"});
  csv.write(path);
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x,y\n1,2\n");
}

TEST(CsvWriter, BadPathThrows) {
  CsvWriter csv({"x"});
  EXPECT_THROW(csv.write("/nonexistent/dir/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace cdl
