#include <gtest/gtest.h>

#include "eval/table.h"

namespace cdl {
namespace {

TEST(TextTable, EmptyHeaderRejected) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RowWidthMustMatchHeader) {
  TextTable t({"a", "b"});
  EXPECT_NO_THROW(t.add_row({"1", "2"}));
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
  EXPECT_EQ(t.rows(), 1U);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "v"});
  t.add_row({"x", "1234"});
  const std::string s = t.to_string();
  // Header, separator rules and the row must all be present.
  EXPECT_NE(s.find("| name | v    |"), std::string::npos);
  EXPECT_NE(s.find("| x    | 1234 |"), std::string::npos);
  EXPECT_NE(s.find("+------+------+"), std::string::npos);
}

TEST(TextTable, ColumnWidthGrowsWithContent) {
  TextTable t({"c"});
  t.add_row({"looooong"});
  EXPECT_NE(t.to_string().find("| looooong |"), std::string::npos);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.23456), "1.235");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(FmtPercent, ScalesRatio) {
  EXPECT_EQ(fmt_percent(0.9755), "97.55 %");
  EXPECT_EQ(fmt_percent(1.0, 0), "100 %");
  EXPECT_EQ(fmt_percent(0.005, 1), "0.5 %");
}

}  // namespace
}  // namespace cdl
