// Bit-identity and accuracy properties of the nn/act_kernels activation
// kernels.
//
// The contract under test (see nn/act_kernels.h): the dispatched vector maps
// produce byte-identical output to the scalar reference (sigmoid_approx /
// tanh_approx) for every element, the fused dequant plane kernels match the
// scalar fusion, any split of a range across calls is bit-identical to one
// call, and the approximation error versus the double-precision
// 1/(1+exp(-x)) reference stays within the advertised bounds. The SIMD-vs-
// scalar comparison is meaningful on AVX2/AVX-512 hosts and degenerates to
// scalar-vs-scalar elsewhere (and under CDL_FORCE_SCALAR, which CI runs).
#include "nn/act_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "nn/activations.h"

namespace cdl {
namespace {

std::uint32_t bits_of(float x) {
  std::uint32_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

/// Inputs covering the interesting regions: dense sweep of the sigmoid's
/// useful range, the clamp boundaries, huge magnitudes, zeros, denormals,
/// and infinities. (NaN is excluded from the sweep; its bitwise propagation
/// is covered by the explicit NaN test below.)
std::vector<float> test_inputs() {
  std::vector<float> xs;
  for (float x = -30.0F; x <= 30.0F; x += 0.00731F) xs.push_back(x);
  for (float x = -120.0F; x <= 120.0F; x += 1.37F) xs.push_back(x);
  const float specials[] = {0.0F,
                            -0.0F,
                            1e-30F,
                            -1e-30F,
                            1e-38F,
                            -1e-38F,
                            1e-45F,  // denormal
                            -1e-45F,
                            86.9F,
                            -86.9F,
                            87.0F,
                            -87.0F,
                            88.0F,
                            -88.0F,
                            1e30F,
                            -1e30F,
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::lowest(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity()};
  xs.insert(xs.end(), std::begin(specials), std::end(specials));
  return xs;
}

TEST(ActKernels, SigmoidMapMatchesScalarBitwise) {
  const std::vector<float> xs = test_inputs();
  std::vector<float> out(xs.size());
  sigmoid_map(xs.data(), out.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(bits_of(out[i]), bits_of(sigmoid_approx(xs[i])))
        << "x = " << xs[i] << " (tier " << act_dispatch_tier() << ", i = "
        << i << ")";
  }
}

TEST(ActKernels, TanhMapMatchesScalarBitwise) {
  const std::vector<float> xs = test_inputs();
  std::vector<float> out(xs.size());
  tanh_map(xs.data(), out.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(bits_of(out[i]), bits_of(tanh_approx(xs[i])))
        << "x = " << xs[i] << " (tier " << act_dispatch_tier() << ")";
  }
}

TEST(ActKernels, ReluMapMatchesScalarBitwise) {
  const std::vector<float> xs = test_inputs();
  std::vector<float> out(xs.size());
  relu_map(xs.data(), out.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const float ref = xs[i] > 0.0F ? xs[i] : 0.0F;
    ASSERT_EQ(bits_of(out[i]), bits_of(ref)) << "x = " << xs[i];
  }
}

TEST(ActKernels, NanInputPropagatesBitwise) {
  // NaN must come out as NaN with the input's exact payload bits on every
  // tier (scalar ternary vs SIMD cmp-unordered + blend of the input): the
  // trainer's non-finite divergence guard depends on poisoned weights
  // surfacing as a non-finite loss, and bit-identity across tiers depends on
  // the payload not being rewritten by arithmetic.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  float out = 0.0F;
  sigmoid_map(&nan, &out, 1);
  EXPECT_EQ(bits_of(out), bits_of(nan));
  EXPECT_EQ(bits_of(sigmoid_approx(nan)), bits_of(nan));
  tanh_map(&nan, &out, 1);
  EXPECT_EQ(bits_of(out), bits_of(nan));
  EXPECT_EQ(bits_of(tanh_approx(nan)), bits_of(nan));
  // A full vector of NaNs exercises the wide lanes, not just the tail.
  std::vector<float> nans(16, nan);
  std::vector<float> wide(16, 0.0F);
  sigmoid_map(nans.data(), wide.data(), nans.size());
  for (const float v : wide) EXPECT_EQ(bits_of(v), bits_of(nan));
}

TEST(ActKernels, SplitInvariance) {
  // Mapping a whole array equals mapping arbitrary subranges: the executor
  // relies on this when tiles, threads and vector groups slice a batch.
  const std::vector<float> xs = test_inputs();
  std::vector<float> whole(xs.size());
  sigmoid_map(xs.data(), whole.data(), xs.size());
  const std::size_t cuts[] = {1, 3, 7, 8, 13, 16, 64};
  for (const std::size_t step : cuts) {
    std::vector<float> split(xs.size());
    for (std::size_t b = 0; b < xs.size(); b += step) {
      const std::size_t n = std::min(step, xs.size() - b);
      sigmoid_map(xs.data() + b, split.data() + b, n);
    }
    ASSERT_EQ(0, std::memcmp(whole.data(), split.data(),
                             xs.size() * sizeof(float)))
        << "split step " << step;
  }
}

TEST(ActKernels, InPlaceMap) {
  const std::vector<float> xs = test_inputs();
  std::vector<float> ref(xs.size());
  sigmoid_map(xs.data(), ref.data(), xs.size());
  std::vector<float> buf = xs;
  sigmoid_map(buf.data(), buf.data(), buf.size());
  EXPECT_EQ(0, std::memcmp(ref.data(), buf.data(), xs.size() * sizeof(float)));
}

TEST(ActKernels, SigmoidAccuracyVsExp) {
  // Dense sweep against the double-precision logistic; the bound must hold
  // everywhere, including at the clamp boundary (sigmoid(87) vs 1 differs by
  // ~e^-87, far below the bound).
  float max_err = 0.0F;
  for (float x = -90.0F; x <= 90.0F; x += 0.00173F) {
    const double ref = 1.0 / (1.0 + std::exp(-static_cast<double>(x)));
    const float err =
        std::fabs(static_cast<float>(static_cast<double>(sigmoid_approx(x)) -
                                     ref));
    max_err = std::max(max_err, err);
  }
  EXPECT_LE(max_err, kSigmoidMaxAbsError);
  // The bound is tight enough to be meaningful, not an order too loose.
  EXPECT_GE(max_err, kSigmoidMaxAbsError / 100.0F);
}

TEST(ActKernels, TanhAccuracyVsStdTanh) {
  float max_err = 0.0F;
  for (float x = -45.0F; x <= 45.0F; x += 0.00173F) {
    const double ref = std::tanh(static_cast<double>(x));
    const float err = std::fabs(
        static_cast<float>(static_cast<double>(tanh_approx(x)) - ref));
    max_err = std::max(max_err, err);
  }
  EXPECT_LE(max_err, kTanhMaxAbsError);
}

TEST(ActKernels, SigmoidExactAtZeroAndSaturation) {
  // sigmoid(0) must be exactly 0.5 (the polynomial gives e^0 == 1 exactly),
  // and the tails must saturate to the correct limits without overflow.
  EXPECT_EQ(bits_of(sigmoid_approx(0.0F)), bits_of(0.5F));
  EXPECT_EQ(bits_of(sigmoid_approx(-0.0F)), bits_of(0.5F));
  EXPECT_EQ(sigmoid_approx(200.0F), sigmoid_approx(87.0F));
  EXPECT_EQ(sigmoid_approx(-200.0F), sigmoid_approx(-87.0F));
  EXPECT_NEAR(sigmoid_approx(100.0F), 1.0F, 1e-6F);
  EXPECT_NEAR(sigmoid_approx(-100.0F), 0.0F, 1e-6F);
  EXPECT_TRUE(std::isfinite(
      sigmoid_approx(std::numeric_limits<float>::infinity())));
  EXPECT_TRUE(std::isfinite(
      sigmoid_approx(-std::numeric_limits<float>::infinity())));
}

TEST(ActKernels, SigmoidMonotoneOnSweep) {
  // The batched executor commutes the activation past max-pooling, which
  // requires monotonicity; verify it holds for the approximation (adjacent
  // outputs never decrease over a fine sweep).
  float prev = sigmoid_approx(-90.0F);
  for (float x = -90.0F; x <= 90.0F; x += 0.0137F) {
    const float y = sigmoid_approx(x);
    ASSERT_GE(y, prev) << "x = " << x;
    prev = y;
  }
}

TEST(ActKernels, DequantPlanesMatchScalarFusion) {
  // The fused s32 -> float -> activate plane kernels must agree with the
  // scalar composition for every element and activation.
  std::vector<std::int32_t> acc;
  for (std::int32_t v = -5000; v <= 5000; v += 7) acc.push_back(v * 101);
  acc.push_back(std::numeric_limits<std::int32_t>::max());
  acc.push_back(std::numeric_limits<std::int32_t>::min());
  const float mult = 3.17e-4F;
  const float bias = -0.23F;
  std::vector<float> out(acc.size());

  dequant_sigmoid_plane(acc.data(), acc.size(), mult, bias, out.data());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const float x = std::fmaf(static_cast<float>(acc[i]), mult, bias);
    ASSERT_EQ(bits_of(out[i]), bits_of(sigmoid_approx(x))) << "i = " << i;
  }
  dequant_tanh_plane(acc.data(), acc.size(), mult, bias, out.data());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const float x = std::fmaf(static_cast<float>(acc[i]), mult, bias);
    ASSERT_EQ(bits_of(out[i]), bits_of(tanh_approx(x))) << "i = " << i;
  }
  dequant_relu_plane(acc.data(), acc.size(), mult, bias, out.data());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const float x = std::fmaf(static_cast<float>(acc[i]), mult, bias);
    const float ref = x > 0.0F ? x : 0.0F;
    ASSERT_EQ(bits_of(out[i]), bits_of(ref)) << "i = " << i;
  }
}

TEST(ActKernels, TrainerForwardMatchesBulkMap) {
  // Sigmoid::forward (the trainer path, per-element apply()) and the
  // batched map() must agree bitwise — train/eval consistency.
  const std::vector<float> xs = test_inputs();
  Sigmoid sig;
  Tensor in(Shape{xs.size()});
  std::memcpy(in.data(), xs.data(), xs.size() * sizeof(float));
  const Tensor fwd = sig.forward(in);
  std::vector<float> mapped(xs.size());
  sig.map(xs.data(), mapped.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(bits_of(fwd[i]), bits_of(mapped[i])) << "x = " << xs[i];
    ASSERT_EQ(bits_of(fwd[i]), bits_of(sigmoid_approx(xs[i])));
  }

  Tanh th;
  const Tensor fwd_t = th.forward(in);
  th.map(xs.data(), mapped.data(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ASSERT_EQ(bits_of(fwd_t[i]), bits_of(mapped[i])) << "x = " << xs[i];
  }
}

TEST(ActKernels, DispatchTierIsKnown) {
  const std::string tier = act_dispatch_tier();
  EXPECT_TRUE(tier == "scalar" || tier == "avx2-fma" || tier == "avx512f")
      << tier;
}

}  // namespace
}  // namespace cdl
