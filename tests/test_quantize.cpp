#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/quantize.h"

namespace cdl {
namespace {

Tensor random_tensor(std::size_t n, Rng& rng) {
  Tensor t(Shape{n});
  for (float& v : t.values()) v = rng.uniform(-2.0F, 2.0F);
  return t;
}

TEST(Quantize, RejectsBadBitWidths) {
  Tensor t(Shape{4}, 1.0F);
  EXPECT_THROW((void)fake_quantize_tensor(t, 1), std::invalid_argument);
  EXPECT_THROW((void)fake_quantize_tensor(t, 33), std::invalid_argument);
}

TEST(Quantize, ZeroTensorUnchanged) {
  Tensor t(Shape{8});
  EXPECT_EQ(fake_quantize_tensor(t, 8), 0.0);
  for (float v : t.values()) EXPECT_EQ(v, 0.0F);
}

TEST(Quantize, MaxAbsValueIsPreservedExactly) {
  // The scale is anchored to max-abs, so the extreme value snaps to itself.
  Tensor t(Shape{3}, std::vector<float>{0.3F, -1.7F, 0.9F});
  (void)fake_quantize_tensor(t, 8);
  EXPECT_FLOAT_EQ(t[1], -1.7F);
}

TEST(Quantize, ErrorBoundedByHalfStep) {
  Rng rng(3);
  Tensor t = random_tensor(1000, rng);
  const float max_abs = 2.0F;  // upper bound on |values|
  const unsigned bits = 6;
  const float step = max_abs / static_cast<float>((1U << (bits - 1)) - 1);
  const double err = fake_quantize_tensor(t, bits);
  EXPECT_LE(err, step / 2.0F + 1e-6F);
  EXPECT_GT(err, 0.0);
}

TEST(Quantize, HighPrecisionIsNearIdentity) {
  Rng rng(5);
  Tensor t = random_tensor(100, rng);
  const Tensor original = t;
  (void)fake_quantize_tensor(t, 24);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(t[i], original[i], 1e-5F);
  }
}

TEST(Quantize, ErrorShrinksWithMoreBits) {
  Rng rng(7);
  const Tensor original = random_tensor(500, rng);
  double prev_err = 1e9;
  for (unsigned bits : {3U, 5U, 8U, 12U}) {
    Tensor t = original;
    const double err = fake_quantize_tensor(t, bits);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

TEST(Quantize, ValuesLandOnTheGrid) {
  Rng rng(9);
  Tensor t = random_tensor(200, rng);
  const unsigned bits = 4;
  float max_abs = 0.0F;
  for (float v : t.values()) max_abs = std::max(max_abs, std::abs(v));
  const float scale = max_abs / 7.0F;  // 2^(4-1) - 1
  (void)fake_quantize_tensor(t, bits);
  for (float v : t.values()) {
    const float q = v / scale;
    EXPECT_NEAR(q, std::round(q), 1e-4F);
    EXPECT_LE(std::abs(q), 7.0F + 1e-4F);
  }
}

TEST(Quantize, NetworkReportCountsEverything) {
  Network net;
  net.emplace<Dense>(4, 3);
  net.emplace<Sigmoid>();
  net.emplace<Dense>(3, 2);
  Rng rng(11);
  net.init(rng);
  const QuantizationReport report = fake_quantize_network(net, 8);
  EXPECT_EQ(report.bits, 8U);
  EXPECT_EQ(report.tensors, 4U);                     // 2x (W, b)
  EXPECT_EQ(report.values, 4U * 3 + 3 + 3 * 2 + 2);  // 23
}

TEST(Quantize, CdlnQuantizesBaselineAndClassifiers) {
  Network base;
  base.emplace<Dense>(4, 6);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(6, 3);
  Rng rng(13);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{4});
  net.attach_classifier(2, LcTrainingRule::kLms, rng);

  const QuantizationReport report = fake_quantize_cdln(net, 8);
  EXPECT_EQ(report.tensors, 6U);  // baseline 4 + classifier W/b

  // Classifier weights must actually be snapped.
  const Tensor& w = *net.classifier(0).parameters()[0];
  float max_abs = 0.0F;
  for (float v : w.values()) max_abs = std::max(max_abs, std::abs(v));
  const float scale = max_abs / 127.0F;
  for (float v : w.values()) {
    EXPECT_NEAR(v / scale, std::round(v / scale), 1e-3F);
  }
}

TEST(Quantize, IdempotentAtSameBitWidth) {
  Rng rng(15);
  Tensor t = random_tensor(100, rng);
  (void)fake_quantize_tensor(t, 6);
  const Tensor once = t;
  const double second_err = fake_quantize_tensor(t, 6);
  EXPECT_EQ(t, once);
  EXPECT_NEAR(second_err, 0.0, 1e-6);
}

}  // namespace
}  // namespace cdl
