#include <gtest/gtest.h>

#include "cdl/linear_classifier.h"
#include "core/rng.h"

namespace cdl {
namespace {

TEST(LinearClassifier, RejectsZeroSizes) {
  EXPECT_THROW(LinearClassifier(0, 10), std::invalid_argument);
  EXPECT_THROW(LinearClassifier(10, 0), std::invalid_argument);
}

TEST(LinearClassifier, ScoresAreAffine) {
  LinearClassifier lc(2, 2);
  *lc.parameters()[0] = Tensor(Shape{2, 2}, std::vector<float>{1, 0, 0, 2});
  *lc.parameters()[1] = Tensor(Shape{2}, std::vector<float>{0.5F, -0.5F});
  const Tensor s = lc.scores(Tensor(Shape{2}, std::vector<float>{3, 4}));
  EXPECT_FLOAT_EQ(s[0], 3.5F);
  EXPECT_FLOAT_EQ(s[1], 7.5F);
}

TEST(LinearClassifier, ScoresAcceptAnyShapeWithMatchingNumel) {
  LinearClassifier lc(6, 3);
  Rng rng(1);
  lc.init(rng);
  const Tensor flat(Shape{6}, 0.5F);
  const Tensor chw(Shape{1, 2, 3}, 0.5F);
  EXPECT_EQ(lc.scores(flat), lc.scores(chw));
  EXPECT_THROW((void)lc.scores(Tensor(Shape{5})), std::invalid_argument);
}

TEST(LinearClassifier, LmsProbabilitiesAreClampedScores) {
  LinearClassifier lc(1, 3, LcTrainingRule::kLms);
  *lc.parameters()[0] = Tensor(Shape{3, 1}, std::vector<float>{2.0F, -1.0F, 0.5F});
  lc.parameters()[1]->zero();
  const Tensor p = lc.probabilities(Tensor(Shape{1}, 1.0F));
  EXPECT_FLOAT_EQ(p[0], 1.0F);   // 2.0 clamped
  EXPECT_FLOAT_EQ(p[1], 0.0F);   // -1.0 clamped
  EXPECT_FLOAT_EQ(p[2], 0.5F);   // untouched
}

TEST(LinearClassifier, SoftmaxProbabilitiesAreSimplex) {
  LinearClassifier lc(4, 5, LcTrainingRule::kSoftmaxXent);
  Rng rng(7);
  lc.init(rng);
  const Tensor p = lc.probabilities(Tensor(Shape{4}, 0.3F));
  float total = 0.0F;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GE(p[i], 0.0F);
    total += p[i];
  }
  EXPECT_NEAR(total, 1.0F, 1e-5F);
}

TEST(LinearClassifier, TrainStepValidatesTarget) {
  LinearClassifier lc(3, 2);
  Rng rng(2);
  lc.init(rng);
  EXPECT_THROW((void)lc.train_step(Tensor(Shape{3}), 2, 0.5F),
               std::invalid_argument);
}

TEST(LinearClassifier, TrainStepReducesLossOnRepeatedSample) {
  LinearClassifier lc(4, 3, LcTrainingRule::kLms);
  Rng rng(3);
  lc.init(rng);
  const Tensor x(Shape{4}, std::vector<float>{0.4F, 0.9F, 0.1F, 0.7F});
  const float first = lc.train_step(x, 1, 0.8F);
  float last = first;
  for (int i = 0; i < 40; ++i) last = lc.train_step(x, 1, 0.8F);
  EXPECT_LT(last, first * 0.1F);
  EXPECT_EQ(lc.probabilities(x).argmax(), 1U);
}

TEST(LinearClassifier, NlmsStableOnHighDimensionalFeatures) {
  // Plain LMS at this step size would diverge on ~900-dim inputs; the
  // normalized update must stay bounded.
  LinearClassifier lc(864, 10, LcTrainingRule::kLms);
  Rng rng(4);
  lc.init(rng);
  Tensor x(Shape{864});
  for (float& v : x.values()) v = rng.uniform(0.0F, 1.0F);
  float loss = 0.0F;
  for (int i = 0; i < 50; ++i) loss = lc.train_step(x, 3, 0.8F);
  EXPECT_LT(loss, 0.01F);
  const Tensor probs = lc.probabilities(x);  // bind: avoid dangling span
  for (float v : probs.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(LinearClassifier, SoftmaxRuleAlsoLearns) {
  LinearClassifier lc(4, 3, LcTrainingRule::kSoftmaxXent);
  Rng rng(5);
  lc.init(rng);
  const Tensor x(Shape{4}, std::vector<float>{1.0F, 0.0F, 0.5F, 0.2F});
  for (int i = 0; i < 200; ++i) (void)lc.train_step(x, 2, 2.0F);
  EXPECT_EQ(lc.probabilities(x).argmax(), 2U);
  EXPECT_GT(lc.probabilities(x)[2], 0.8F);
}

TEST(LinearClassifier, LearnsLinearlySeparableTwoClassProblem) {
  LinearClassifier lc(2, 2, LcTrainingRule::kLms);
  Rng rng(6);
  lc.init(rng);
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (int i = 0; i < 20; ++i) {
      const auto cls = static_cast<std::size_t>(i % 2);
      Tensor x(Shape{2});
      x[0] = (cls == 0 ? 0.2F : 0.8F) + rng.uniform(-0.1F, 0.1F);
      x[1] = (cls == 0 ? 0.8F : 0.2F) + rng.uniform(-0.1F, 0.1F);
      (void)lc.train_step(x, cls, 0.8F);
    }
  }
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const auto cls = static_cast<std::size_t>(i % 2);
    Tensor x(Shape{2});
    x[0] = (cls == 0 ? 0.2F : 0.8F) + rng.uniform(-0.1F, 0.1F);
    x[1] = (cls == 0 ? 0.8F : 0.2F) + rng.uniform(-0.1F, 0.1F);
    if (lc.probabilities(x).argmax() == cls) ++correct;
  }
  EXPECT_GE(correct, 98);
}

TEST(LinearClassifier, ForwardOpsScaleWithDimensions) {
  const LinearClassifier small(150, 10);
  const LinearClassifier large(864, 10);
  EXPECT_EQ(small.forward_ops().macs, 1500U);
  EXPECT_EQ(large.forward_ops().macs, 8640U);
  EXPECT_GT(large.forward_ops().total_compute(),
            small.forward_ops().total_compute());
}

TEST(LinearClassifier, RuleNames) {
  EXPECT_EQ(to_string(LcTrainingRule::kLms), "lms");
  EXPECT_EQ(to_string(LcTrainingRule::kSoftmaxXent), "softmax_xent");
}

}  // namespace
}  // namespace cdl
