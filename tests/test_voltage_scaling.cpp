#include <gtest/gtest.h>

#include "hw/voltage_scaling.h"

namespace cdl {
namespace {

TEST(VoltageScaling, RejectsBadConfig) {
  VoltageScalingConfig bad;
  bad.min_logic_v = 1.2;
  EXPECT_THROW(VoltageScalingModel(EnergyCosts::cmos_45nm(), bad),
               std::invalid_argument);
  bad = {};
  bad.nominal_v = 0.0;
  EXPECT_THROW(VoltageScalingModel(EnergyCosts::cmos_45nm(), bad),
               std::invalid_argument);
  bad = {};
  bad.ber_at_nominal = 2.0;
  EXPECT_THROW(VoltageScalingModel(EnergyCosts::cmos_45nm(), bad),
               std::invalid_argument);
}

TEST(VoltageScaling, NominalVoltageReproducesNominalCosts) {
  const VoltageScalingModel model;
  const EnergyCosts c = model.costs_at(1.0);
  const EnergyCosts ref = EnergyCosts::cmos_45nm();
  EXPECT_DOUBLE_EQ(c.mac_pj, ref.mac_pj);
  EXPECT_DOUBLE_EQ(c.mem_read_pj, ref.mem_read_pj);
}

TEST(VoltageScaling, EnergyScalesQuadratically) {
  const VoltageScalingModel model;
  const EnergyCosts half = model.costs_at(0.5);
  const EnergyCosts ref = EnergyCosts::cmos_45nm();
  EXPECT_NEAR(half.mac_pj, 0.25 * ref.mac_pj, 1e-12);
  EXPECT_NEAR(half.divide_pj, 0.25 * ref.divide_pj, 1e-12);

  OpCount ops;
  ops.macs = 1000;
  EXPECT_NEAR(model.model_at(0.5).energy_pj(ops),
              0.25 * model.model_at(1.0).energy_pj(ops), 1e-9);
}

TEST(VoltageScaling, OutOfRangeVoltageRejected) {
  const VoltageScalingModel model;
  EXPECT_THROW((void)model.costs_at(0.3), std::invalid_argument);
  EXPECT_THROW((void)model.costs_at(1.2), std::invalid_argument);
}

TEST(VoltageScaling, BerGrowsMonotonicallyAsVoltageDrops) {
  const VoltageScalingModel model;
  double prev = -1.0;
  for (double v : {1.0, 0.9, 0.8, 0.7, 0.6, 0.5}) {
    const double ber = model.bit_error_rate_at(v);
    EXPECT_GT(ber, prev);
    EXPECT_GE(ber, 0.0);
    EXPECT_LE(ber, 1.0);
    prev = ber;
  }
  EXPECT_NEAR(model.bit_error_rate_at(1.0), 1e-9, 1e-12);
}

TEST(VoltageScaling, BerClampedAtExtremes) {
  const VoltageScalingModel model;
  EXPECT_EQ(model.bit_error_rate_at(0.0), 1.0);
  EXPECT_EQ(model.bit_error_rate_at(-1.0), 1.0);
}

}  // namespace
}  // namespace cdl
