#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/dense.h"

namespace cdl {
namespace {

TEST(Dense, RejectsZeroSizes) {
  EXPECT_THROW(Dense(0, 5), std::invalid_argument);
  EXPECT_THROW(Dense(5, 0), std::invalid_argument);
}

TEST(Dense, OutputShapeFlattensAnyInputRank) {
  const Dense dense(12, 4);
  EXPECT_EQ(dense.output_shape(Shape{12}), Shape{4});
  EXPECT_EQ(dense.output_shape(Shape{3, 4}), Shape{4});
  EXPECT_EQ(dense.output_shape(Shape{3, 2, 2}), Shape{4});
  EXPECT_THROW((void)dense.output_shape(Shape{11}), std::invalid_argument);
}

TEST(Dense, ForwardComputesAffineMap) {
  Dense dense(2, 2);
  // W = [[1, 2], [3, 4]], b = [10, 20].
  *dense.parameters()[0] = Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  *dense.parameters()[1] = Tensor(Shape{2}, std::vector<float>{10, 20});
  const Tensor y = dense.forward(Tensor(Shape{2}, std::vector<float>{5, 7}));
  EXPECT_FLOAT_EQ(y[0], 10 + 1 * 5 + 2 * 7);
  EXPECT_FLOAT_EQ(y[1], 20 + 3 * 5 + 4 * 7);
}

TEST(Dense, BackwardReturnsInputShapedGradient) {
  Dense dense(6, 3);
  Rng rng(7);
  dense.init(rng);
  const Tensor x(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  (void)dense.forward(x);
  const Tensor g = dense.backward(Tensor(Shape{3}, 1.0F));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Dense, BackwardComputesWeightGradAsOuterProduct) {
  Dense dense(2, 1);
  dense.parameters()[0]->zero();
  dense.parameters()[1]->zero();
  const Tensor x(Shape{2}, std::vector<float>{3, -4});
  (void)dense.forward(x);
  (void)dense.backward(Tensor(Shape{1}, 2.0F));
  const Tensor& gw = *dense.gradients()[0];
  const Tensor& gb = *dense.gradients()[1];
  EXPECT_FLOAT_EQ(gw[0], 6.0F);
  EXPECT_FLOAT_EQ(gw[1], -8.0F);
  EXPECT_FLOAT_EQ(gb[0], 2.0F);
}

TEST(Dense, BackwardBeforeForwardThrows) {
  Dense dense(2, 2);
  EXPECT_THROW((void)dense.backward(Tensor(Shape{2})), std::logic_error);
}

TEST(Dense, ForwardOpsExact) {
  const Dense dense(192, 10);
  const OpCount ops = dense.forward_ops(Shape{12, 4, 4});
  EXPECT_EQ(ops.macs, 1920U);
  EXPECT_EQ(ops.adds, 10U);
  EXPECT_EQ(ops.mem_writes, 10U);
}

class DenseLinearitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DenseLinearitySweep, ForwardIsLinearInInput) {
  const std::size_t n = GetParam();
  Rng rng(n);
  Dense dense(n, 5);
  dense.init(rng);
  dense.parameters()[1]->zero();  // remove bias so the map is linear

  Tensor a(Shape{n});
  Tensor b(Shape{n});
  for (float& v : a.values()) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b.values()) v = rng.uniform(-1.0F, 1.0F);
  Tensor sum = a;
  sum += b;

  const Tensor ya = dense.forward(a);
  const Tensor yb = dense.forward(b);
  const Tensor ysum = dense.forward(sum);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(ysum[i], ya[i] + yb[i], 1e-4F);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseLinearitySweep,
                         ::testing::Values(1, 8, 150, 507, 864));

}  // namespace
}  // namespace cdl
