// Verifies the encoded architectures against the paper's Tables I and II.
#include <gtest/gtest.h>

#include "cdl/architectures.h"
#include "core/rng.h"

namespace cdl {
namespace {

TEST(Architectures, Mnist2cLayerSizesMatchTableOne) {
  const Network net = make_mnist_2c_baseline();
  const Shape in{1, 28, 28};
  // I -> C1 -> P1 -> C2 -> P2 -> FC with the paper's map counts and extents.
  EXPECT_EQ(net.output_shape_after(in, 1), (Shape{6, 24, 24}));   // C1
  EXPECT_EQ(net.output_shape_after(in, 3), (Shape{6, 12, 12}));   // P1
  EXPECT_EQ(net.output_shape_after(in, 4), (Shape{12, 8, 8}));    // C2
  EXPECT_EQ(net.output_shape_after(in, 6), (Shape{12, 4, 4}));    // P2
  EXPECT_EQ(net.output_shape(in), Shape{10});                     // FC
}

TEST(Architectures, Mnist3cLayerSizesMatchTableTwo) {
  const Network net = make_mnist_3c_baseline();
  const Shape in{1, 28, 28};
  EXPECT_EQ(net.output_shape_after(in, 1), (Shape{3, 26, 26}));   // C1
  EXPECT_EQ(net.output_shape_after(in, 3), (Shape{3, 13, 13}));   // P1
  EXPECT_EQ(net.output_shape_after(in, 4), (Shape{6, 10, 10}));   // C2
  EXPECT_EQ(net.output_shape_after(in, 6), (Shape{6, 5, 5}));     // P2
  EXPECT_EQ(net.output_shape_after(in, 7), (Shape{9, 3, 3}));     // C3
  EXPECT_EQ(net.output_shape_after(in, 9), (Shape{9, 3, 3}));     // P3 keeps 3x3
  EXPECT_EQ(net.output_shape(in), Shape{10});                     // FC
}

TEST(Architectures, DescriptorsConsistentWithBaselines) {
  for (const CdlArchitecture& arch : paper_architectures()) {
    Network net = arch.make_baseline();
    EXPECT_EQ(net.output_shape(arch.input_shape), Shape{10}) << arch.name;
    // Every attach point must be a valid strict prefix.
    for (std::size_t prefix : arch.candidate_stages) {
      EXPECT_GT(prefix, 0U);
      EXPECT_LT(prefix, net.size());
      EXPECT_NO_THROW((void)net.output_shape_after(arch.input_shape, prefix));
    }
    // Defaults are a prefix-subset of candidates.
    for (std::size_t i = 0; i < arch.default_stages.size(); ++i) {
      EXPECT_EQ(arch.default_stages[i], arch.candidate_stages[i]);
    }
  }
}

TEST(Architectures, AttachPointsSitAfterPoolingLayers) {
  const CdlArchitecture arch3 = mnist_3c();
  Network net = arch3.make_baseline();
  // O1 attaches on the P1 feature map (paper: "the learnt feature vectors
  // from the pooling layers are used as training inputs").
  EXPECT_EQ(net.output_shape_after(arch3.input_shape, arch3.default_stages[0])
                .numel(),
            3U * 13 * 13);  // 507
  EXPECT_EQ(net.output_shape_after(arch3.input_shape, arch3.default_stages[1])
                .numel(),
            6U * 5 * 5);    // 150
}

TEST(Architectures, TwoCIsCostlierThanThreeC) {
  // The paper attributes MNIST_3C's higher benefit partly to MNIST_2C being
  // the larger network; verify our op model agrees.
  const Network net2 = make_mnist_2c_baseline();
  const Network net3 = make_mnist_3c_baseline();
  EXPECT_GT(net2.forward_ops(Shape{1, 28, 28}).total_compute(),
            net3.forward_ops(Shape{1, 28, 28}).total_compute());
}

TEST(Architectures, FreshBaselinesAreIndependentInstances) {
  const CdlArchitecture arch = mnist_2c();
  Network a = arch.make_baseline();
  Network b = arch.make_baseline();
  Rng rng(3);
  a.init(rng);
  // b untouched: parameters must not alias a's.
  EXPECT_NE(*a.parameters()[0], *b.parameters()[0]);
}

TEST(Architectures, PaperArchitectureNamesAndOrder) {
  const auto archs = paper_architectures();
  ASSERT_EQ(archs.size(), 2U);
  EXPECT_EQ(archs[0].name, "MNIST_2C");
  EXPECT_EQ(archs[1].name, "MNIST_3C");
}

}  // namespace
}  // namespace cdl
