// Finite-difference verification of every layer's backward pass, both for
// parameter gradients and input gradients, through full small networks.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/pool2d.h"

namespace cdl {
namespace {

constexpr float kEps = 1e-3F;
constexpr float kTol = 2e-2F;  // relative tolerance for float finite differences

/// Builds loss(net(x), target) as a function of the network parameters.
float loss_of(Network& net, const Loss& loss, const Tensor& x,
              std::size_t target) {
  return loss.value(net.forward(x), target);
}

void check_parameter_gradients(Network& net, const Tensor& x,
                               std::size_t target) {
  SoftmaxCrossEntropyLoss loss;

  net.zero_gradients();
  const Tensor out = net.forward(x);
  net.backward(loss.grad(out, target));

  const std::vector<Tensor*> params = net.parameters();
  const std::vector<Tensor*> grads = net.gradients();
  ASSERT_EQ(params.size(), grads.size());

  std::size_t checked = 0;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    const Tensor& g = *grads[pi];
    // Probe a spread of elements in each parameter tensor.
    const std::size_t stride = std::max<std::size_t>(1, p.numel() / 7);
    for (std::size_t k = 0; k < p.numel(); k += stride) {
      const float saved = p[k];
      p[k] = saved + kEps;
      const float up = loss_of(net, loss, x, target);
      p[k] = saved - kEps;
      const float down = loss_of(net, loss, x, target);
      p[k] = saved;

      const float numeric = (up - down) / (2.0F * kEps);
      const float analytic = g[k];
      const float scale = std::max({std::abs(numeric), std::abs(analytic), 0.1F});
      EXPECT_NEAR(analytic, numeric, kTol * scale)
          << "param tensor " << pi << " element " << k;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0U);
}

void check_input_gradients(Network& net, const Tensor& x, std::size_t target) {
  SoftmaxCrossEntropyLoss loss;

  net.zero_gradients();
  const Tensor out = net.forward(x);
  const Tensor grad_in = net.backward(loss.grad(out, target));
  ASSERT_EQ(grad_in.shape(), x.shape());

  Tensor probe = x;
  const std::size_t stride = std::max<std::size_t>(1, x.numel() / 11);
  for (std::size_t k = 0; k < x.numel(); k += stride) {
    const float saved = probe[k];
    probe[k] = saved + kEps;
    const float up = loss_of(net, loss, probe, target);
    probe[k] = saved - kEps;
    const float down = loss_of(net, loss, probe, target);
    probe[k] = saved;

    const float numeric = (up - down) / (2.0F * kEps);
    const float scale = std::max({std::abs(numeric), std::abs(grad_in[k]), 0.1F});
    EXPECT_NEAR(grad_in[k], numeric, kTol * scale) << "input element " << k;
  }
}

Tensor random_input(const Shape& shape, Rng& rng) {
  Tensor x(shape);
  for (float& v : x.values()) v = rng.uniform(0.0F, 1.0F);
  return x;
}

TEST(Gradients, DenseOnly) {
  Rng rng(7);
  Network net;
  net.emplace<Dense>(12, 5);
  net.init(rng);
  const Tensor x = random_input(Shape{12}, rng);
  check_parameter_gradients(net, x, 3);
  check_input_gradients(net, x, 3);
}

TEST(Gradients, DenseSigmoidDense) {
  Rng rng(11);
  Network net;
  net.emplace<Dense>(10, 8);
  net.emplace<Sigmoid>();
  net.emplace<Dense>(8, 4);
  net.init(rng);
  const Tensor x = random_input(Shape{10}, rng);
  check_parameter_gradients(net, x, 1);
  check_input_gradients(net, x, 1);
}

TEST(Gradients, ConvSigmoidPoolDense) {
  Rng rng(13);
  Network net;
  net.emplace<Conv2D>(1, 3, 3);  // 8x8 -> 6x6
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);        // -> 3x3
  net.emplace<Dense>(27, 4);
  net.init(rng);
  const Tensor x = random_input(Shape{1, 8, 8}, rng);
  check_parameter_gradients(net, x, 2);
  check_input_gradients(net, x, 2);
}

TEST(Gradients, TwoConvStagesLikePaperArchitecture) {
  Rng rng(17);
  Network net;
  net.emplace<Conv2D>(1, 2, 3);  // 10x10 -> 8x8
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);        // -> 4x4
  net.emplace<Conv2D>(2, 3, 3);  // -> 2x2
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);        // -> 1x1
  net.emplace<Dense>(3, 3);
  net.init(rng);
  const Tensor x = random_input(Shape{1, 10, 10}, rng);
  check_parameter_gradients(net, x, 0);
  check_input_gradients(net, x, 0);
}

TEST(Gradients, AveragePoolPath) {
  Rng rng(19);
  Network net;
  net.emplace<Conv2D>(1, 2, 3);  // 6x6 -> 4x4
  net.emplace<Tanh>();
  net.emplace<Pool2D>(2, PoolMode::kAverage);  // -> 2x2
  net.emplace<Dense>(8, 3);
  net.init(rng);
  const Tensor x = random_input(Shape{1, 6, 6}, rng);
  check_parameter_gradients(net, x, 1);
  check_input_gradients(net, x, 1);
}

TEST(Gradients, ReluPath) {
  Rng rng(23);
  Network net;
  net.emplace<Dense>(9, 6);
  net.emplace<ReLU>();
  net.emplace<Dense>(6, 3);
  net.init(rng);
  // Offset inputs away from relu kinks for a clean finite difference.
  Tensor x = random_input(Shape{9}, rng);
  for (float& v : x.values()) v += 0.05F;
  check_parameter_gradients(net, x, 2);
  check_input_gradients(net, x, 2);
}

TEST(Gradients, MseLossGradientMatchesFiniteDifference) {
  Rng rng(29);
  MseLoss loss;
  Tensor scores(Shape{6});
  for (float& v : scores.values()) v = rng.uniform(-1.0F, 1.0F);
  const Tensor g = loss.grad(scores, 4);
  for (std::size_t k = 0; k < scores.numel(); ++k) {
    Tensor probe = scores;
    probe[k] += kEps;
    const float up = loss.value(probe, 4);
    probe[k] -= 2.0F * kEps;
    const float down = loss.value(probe, 4);
    const float numeric = (up - down) / (2.0F * kEps);
    EXPECT_NEAR(g[k], numeric, 1e-3F);
  }
}

}  // namespace
}  // namespace cdl
