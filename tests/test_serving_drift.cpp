// ExitDriftMonitor: reference capture, out-of-order determinism, missing
// slots, threshold triggering, explicit references and input clamping — plus
// the engine-level covariate-shift scenario: digits -> letters under a
// ManualClock raises drift at the same window index for any worker count
// (the windows are keyed by submission sequence, not completion order).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cdl/cdl_trainer.h"
#include "data/synthetic_letters.h"
#include "data/synthetic_mnist.h"
#include "serve/drift.h"
#include "serve/engine.h"
#include "test_util.h"

namespace cdl::serve {
namespace {

using cdl::test::conv_cdln;

DriftConfig small_config(std::size_t window = 8, double threshold = 50.0) {
  DriftConfig config;
  config.window = window;
  config.threshold = threshold;
  return config;
}

TEST(ExitDriftMonitor, CtorValidatesConfig) {
  EXPECT_THROW(ExitDriftMonitor(0, small_config()), std::invalid_argument);
  EXPECT_THROW(ExitDriftMonitor(3, small_config(0)), std::invalid_argument);
  DriftConfig no_bins = small_config();
  no_bins.confidence_bins = 0;
  EXPECT_THROW(ExitDriftMonitor(3, no_bins), std::invalid_argument);
}

TEST(ExitDriftMonitor, FirstSampledWindowBecomesReference) {
  ExitDriftMonitor monitor(3, small_config(8));
  EXPECT_FALSE(monitor.has_reference());
  EXPECT_EQ(monitor.latest_score(), -1.0);
  EXPECT_EQ(monitor.max_score(), -1.0);
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    monitor.record(seq, seq % 2 == 0 ? 0 : 1, 0.9);
  }
  const std::vector<DriftWindowResult> scored = monitor.take_scored();
  ASSERT_EQ(scored.size(), 1U);
  EXPECT_EQ(scored[0].index, 0U);
  EXPECT_EQ(scored[0].samples, 8U);
  EXPECT_EQ(scored[0].missing, 0U);
  EXPECT_TRUE(scored[0].reference);
  EXPECT_FALSE(scored[0].drift);
  EXPECT_EQ(scored[0].score, 0.0);
  ASSERT_EQ(scored[0].exits.size(), 3U);
  EXPECT_EQ(scored[0].exits[0], 4U);
  EXPECT_EQ(scored[0].exits[1], 4U);
  EXPECT_EQ(scored[0].exits[2], 0U);
  EXPECT_TRUE(monitor.has_reference());
  const std::vector<double> ref = monitor.reference();
  ASSERT_EQ(ref.size(), 3U);
  EXPECT_DOUBLE_EQ(ref[0], 0.5);
  EXPECT_DOUBLE_EQ(ref[1], 0.5);
  EXPECT_DOUBLE_EQ(ref[2], 0.0);
  // take_scored drains: a second call is empty.
  EXPECT_TRUE(monitor.take_scored().empty());
}

TEST(ExitDriftMonitor, RecordingOrderDoesNotChangeScores) {
  // The same (seq, stage, confidence) set fed forwards and backwards (as a
  // worker race would reorder completions) scores bit-identically.
  const std::size_t n = 24;  // 3 windows of 8
  std::vector<std::uint64_t> stages(n);
  std::vector<double> confidence(n);
  for (std::size_t i = 0; i < n; ++i) {
    stages[i] = (i * 7 + 3) % 3;
    confidence[i] = static_cast<double>((i * 13) % 10) / 10.0;
  }
  ExitDriftMonitor forward(3, small_config(8, 1.0));
  ExitDriftMonitor backward(3, small_config(8, 1.0));
  for (std::size_t i = 0; i < n; ++i) {
    forward.record(i, stages[i], confidence[i]);
  }
  for (std::size_t i = n; i-- > 0;) {
    backward.record(i, stages[i], confidence[i]);
  }
  const std::vector<DriftWindowResult> a = forward.take_scored();
  const std::vector<DriftWindowResult> b = backward.take_scored();
  ASSERT_EQ(a.size(), 3U);
  ASSERT_EQ(b.size(), 3U);
  for (std::size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a[w].index, b[w].index);
    EXPECT_EQ(a[w].exits, b[w].exits);
    EXPECT_EQ(a[w].score, b[w].score) << "window " << w;
    EXPECT_EQ(a[w].drift, b[w].drift);
  }
  EXPECT_EQ(forward.latest_score(), backward.latest_score());
  EXPECT_EQ(forward.max_score(), backward.max_score());
  EXPECT_EQ(forward.first_drift_window(), backward.first_drift_window());
}

TEST(ExitDriftMonitor, AllMissingWindowScoresZeroAndKeepsCursorMoving) {
  ExitDriftMonitor monitor(2, small_config(4));
  for (std::uint64_t seq = 0; seq < 4; ++seq) monitor.record(seq, 0, 0.8);
  for (std::uint64_t seq = 4; seq < 8; ++seq) monitor.record_missing(seq);
  for (std::uint64_t seq = 8; seq < 12; ++seq) monitor.record(seq, 0, 0.8);
  const std::vector<DriftWindowResult> scored = monitor.take_scored();
  ASSERT_EQ(scored.size(), 3U);
  EXPECT_TRUE(scored[0].reference);
  EXPECT_EQ(scored[1].samples, 0U);
  EXPECT_EQ(scored[1].missing, 4U);
  EXPECT_EQ(scored[1].score, 0.0) << "no samples, nothing to compare";
  EXPECT_FALSE(scored[1].drift);
  EXPECT_EQ(scored[2].index, 2U) << "cursor advanced past the empty window";
  EXPECT_EQ(scored[2].samples, 4U);
}

TEST(ExitDriftMonitor, ShiftedWindowRaisesDriftEvent) {
  ExitDriftMonitor monitor(3, small_config(8, 5.0));
  // Reference: everything exits stage 0 with high confidence.
  for (std::uint64_t seq = 0; seq < 8; ++seq) monitor.record(seq, 0, 0.95);
  // Shift: everything falls through to the last stage with low confidence.
  for (std::uint64_t seq = 8; seq < 16; ++seq) monitor.record(seq, 2, 0.15);
  const std::vector<DriftWindowResult> scored = monitor.take_scored();
  ASSERT_EQ(scored.size(), 2U);
  EXPECT_FALSE(scored[0].drift);
  EXPECT_TRUE(scored[1].drift);
  EXPECT_GE(scored[1].score, 5.0);
  EXPECT_EQ(monitor.drift_events(), 1U);
  EXPECT_EQ(monitor.first_drift_window(), 1);
  EXPECT_EQ(monitor.windows_scored(), 2U);
  EXPECT_EQ(monitor.max_score(), scored[1].score);
}

TEST(ExitDriftMonitor, ExplicitReferenceValidatesAndScoresExitsOnly) {
  ExitDriftMonitor monitor(3, small_config(8, 5.0));
  EXPECT_THROW(monitor.set_reference({0.5, 0.5}), std::invalid_argument)
      << "wrong arity";
  EXPECT_THROW(monitor.set_reference({0.0, 0.0, 0.0}), std::invalid_argument)
      << "zero mass";
  monitor.set_reference({0.5, 0.5, 0.0});
  EXPECT_TRUE(monitor.has_reference());
  // A window matching the installed reference stays quiet even though its
  // confidences are arbitrary (confidence term is skipped with an explicit
  // reference), and it does NOT become the reference itself.
  for (std::uint64_t seq = 0; seq < 8; ++seq) {
    monitor.record(seq, seq % 2, static_cast<double>(seq) / 8.0);
  }
  // A shifted window drifts.
  for (std::uint64_t seq = 8; seq < 16; ++seq) monitor.record(seq, 2, 0.9);
  const std::vector<DriftWindowResult> scored = monitor.take_scored();
  ASSERT_EQ(scored.size(), 2U);
  EXPECT_FALSE(scored[0].reference);
  EXPECT_EQ(scored[0].score, 0.0);
  EXPECT_TRUE(scored[1].drift);
}

TEST(ExitDriftMonitor, ClampsStageAndConfidenceOutOfRange) {
  ExitDriftMonitor monitor(2, small_config(4, 1e9));
  monitor.record(0, 99, 2.0);   // stage and confidence both out of range
  monitor.record(1, 0, -0.5);
  monitor.record(2, 1, 1.0);
  monitor.record(3, 0, 0.0);
  const std::vector<DriftWindowResult> scored = monitor.take_scored();
  ASSERT_EQ(scored.size(), 1U);
  ASSERT_EQ(scored[0].exits.size(), 2U);
  EXPECT_EQ(scored[0].exits[0], 2U);
  EXPECT_EQ(scored[0].exits[1], 2U) << "stage 99 clamped into the last stage";
  EXPECT_EQ(scored[0].samples, 4U);
}

// ---------------------------------------------------------------------------
// Engine-level covariate shift: a random cascade serves synthetic digits
// (the reference workload), then the stream switches to synthetic letters.
// The exit/confidence profile moves, the chi-square crosses the threshold,
// and — because windows are keyed by submission sequence — the FIRST
// drifting window index and every score are bit-identical whether the
// engine runs inline (workers = 0) or with a real worker pool.
// ---------------------------------------------------------------------------

constexpr std::size_t kImageSize = 12;
constexpr std::size_t kWindow = 32;
constexpr std::size_t kDigitWindows = 3;   // reference + 2 quiet windows
constexpr std::size_t kLetterWindows = 3;  // shifted traffic
constexpr std::size_t kDigitClasses = 5;   // conv_cdln's head is 5-way

SyntheticMnist shift_digits() {
  SyntheticMnistConfig config;
  config.seed = 11;
  config.image_size = kImageSize;
  return SyntheticMnist(config);
}

/// The test cascade with its stage classifiers LMS-trained on the digit
/// distribution, so exits genuinely depend on the input: in-distribution
/// digits mostly exit at stage 0 with high confidence, letters fall through
/// with low confidence. Deterministic — every call builds the same network.
ConditionalNetwork trained_on_digits() {
  Rng rng(3);
  ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  const SyntheticMnist digits = shift_digits();
  Dataset train;
  for (std::size_t i = 0; i < 400; ++i) {
    train.add(digits.render(i % kDigitClasses, i), i % kDigitClasses);
  }
  CdlTrainConfig config;
  config.lc_epochs = 8;
  config.prune_by_gain = false;  // keep both stages; the test needs them
  Rng train_rng(5);
  (void)train_cdl(net, train, config, train_rng);
  net.set_delta(0.3F);
  return net;
}

std::vector<Tensor> shift_stream() {
  const SyntheticMnist digits = shift_digits();
  SyntheticLettersConfig letters_config;
  letters_config.seed = 11;
  letters_config.render.image_size = kImageSize;
  const SyntheticLetters letters(letters_config);

  std::vector<Tensor> stream;
  stream.reserve((kDigitWindows + kLetterWindows) * kWindow);
  for (std::size_t i = 0; i < kDigitWindows * kWindow; ++i) {
    // Held-out digit samples (training used indices < 400).
    stream.push_back(digits.render(i % kDigitClasses, 4000 + i));
  }
  for (std::size_t i = 0; i < kLetterWindows * kWindow; ++i) {
    stream.push_back(letters.render(i % SyntheticLetters::kNumClasses, i));
  }
  return stream;
}

struct DriftOutcome {
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  double latest = -1.0;
  double max = -1.0;
  std::int64_t first = -1;
};

DriftOutcome run_shift_stream(std::size_t workers, double threshold) {
  ModelRegistry models;
  models.add("cascade", trained_on_digits());

  ManualClock clock(0);
  EngineConfig config;
  config.workers = workers;
  config.clock = &clock;
  config.batcher.max_batch = 4;
  config.batcher.max_delay_ns = 1'000'000;
  config.drift.window = kWindow;
  config.drift.threshold = threshold;
  ServingEngine engine(std::move(models), config);

  std::vector<Submitted> pending;
  for (Tensor& image : shift_stream()) {
    Submitted s = engine.submit(0, std::move(image));
    EXPECT_EQ(s.status, SubmitStatus::kAccepted);
    pending.push_back(std::move(s));
    if (workers == 0) engine.run_once();
  }
  engine.shutdown();  // drains stragglers on any worker count
  for (Submitted& s : pending) {
    EXPECT_EQ(s.response.get().status, RequestStatus::kOk);
  }

  const ExitDriftMonitor& monitor = engine.drift_monitor(0);
  DriftOutcome out;
  out.windows = monitor.windows_scored();
  out.events = monitor.drift_events();
  out.latest = monitor.latest_score();
  out.max = monitor.max_score();
  out.first = monitor.first_drift_window();

  // The SLO mirror carries the same numbers into summaries/reports.
  const SloSummary summary = engine.slo().summary(0);
  EXPECT_EQ(summary.drift_windows, out.windows);
  EXPECT_EQ(summary.drift_events, out.events);
  EXPECT_EQ(summary.drift_score, out.latest);
  EXPECT_EQ(summary.drift_max_score, out.max);
  EXPECT_EQ(summary.first_drift_window, out.first);
  return out;
}

TEST(ServingDrift, CovariateShiftDriftsAtSameWindowAcrossWorkerCounts) {
  // Offline probe: served results are bit-identical to offline classify(), so
  // a standalone monitor fed by classify() over the same stream yields the
  // exact per-window scores the engine will compute. Calibrate the threshold
  // between the quiet digit windows and the strongest letter window.
  const ConditionalNetwork net = trained_on_digits();
  ExitDriftMonitor probe(net.num_stages() + 1, small_config(kWindow, 1e300));
  {
    std::uint64_t seq = 0;
    for (const Tensor& image : shift_stream()) {
      const ClassificationResult r = net.classify(image);
      probe.record(seq++, r.exit_stage, static_cast<double>(r.confidence));
    }
  }
  const std::vector<DriftWindowResult> windows = probe.take_scored();
  ASSERT_EQ(windows.size(), kDigitWindows + kLetterWindows);
  double quiet_max = 0.0;  // windows after the reference, before the shift
  for (std::size_t w = 1; w < kDigitWindows; ++w) {
    quiet_max = std::max(quiet_max, windows[w].score);
  }
  double shift_max = 0.0;
  for (std::size_t w = kDigitWindows; w < windows.size(); ++w) {
    shift_max = std::max(shift_max, windows[w].score);
  }
  ASSERT_GT(shift_max, 2.0 * quiet_max)
      << "digits -> letters must move the exit/confidence profile well "
         "clear of same-distribution noise";
  const double threshold = (quiet_max + shift_max) / 2.0;
  std::int64_t expected_first = -1;
  for (std::size_t w = kDigitWindows; w < windows.size(); ++w) {
    if (windows[w].score >= threshold) {
      expected_first = static_cast<std::int64_t>(w);
      break;
    }
  }
  ASSERT_GE(expected_first, static_cast<std::int64_t>(kDigitWindows));

  const DriftOutcome inline_run = run_shift_stream(0, threshold);
  const DriftOutcome threaded = run_shift_stream(2, threshold);
  const DriftOutcome threaded4 = run_shift_stream(4, threshold);

  EXPECT_EQ(inline_run.windows, kDigitWindows + kLetterWindows);
  EXPECT_GE(inline_run.events, 1U) << "letters must trigger drift";
  EXPECT_EQ(inline_run.first, expected_first)
      << "engine drifts exactly where the offline probe predicts";
  EXPECT_EQ(inline_run.max, shift_max);

  // Bit-identical outcomes for every worker count.
  EXPECT_EQ(threaded.windows, inline_run.windows);
  EXPECT_EQ(threaded.events, inline_run.events);
  EXPECT_EQ(threaded.first, inline_run.first);
  EXPECT_EQ(threaded.latest, inline_run.latest);
  EXPECT_EQ(threaded.max, inline_run.max);
  EXPECT_EQ(threaded4.events, inline_run.events);
  EXPECT_EQ(threaded4.first, inline_run.first);
  EXPECT_EQ(threaded4.max, inline_run.max);
}

}  // namespace
}  // namespace cdl::serve
