#include <gtest/gtest.h>

#include "nn/opcount.h"

namespace cdl {
namespace {

TEST(OpCount, DefaultIsZero) {
  const OpCount ops;
  EXPECT_EQ(ops.total_compute(), 0U);
  EXPECT_EQ(ops, OpCount{});
}

TEST(OpCount, TotalComputeWeighsMacsAsTwo) {
  OpCount ops;
  ops.macs = 10;
  ops.adds = 3;
  ops.compares = 2;
  ops.activations = 4;
  ops.divides = 1;
  EXPECT_EQ(ops.total_compute(), 2 * 10 + 3 + 2 + 4 + 1U);
}

TEST(OpCount, MemoryTrafficExcludedFromCompute) {
  OpCount ops;
  ops.mem_reads = 100;
  ops.mem_writes = 50;
  EXPECT_EQ(ops.total_compute(), 0U);
}

TEST(OpCount, AdditionIsFieldwise) {
  OpCount a;
  a.macs = 1;
  a.adds = 2;
  a.mem_reads = 3;
  OpCount b;
  b.macs = 10;
  b.compares = 5;
  const OpCount c = a + b;
  EXPECT_EQ(c.macs, 11U);
  EXPECT_EQ(c.adds, 2U);
  EXPECT_EQ(c.compares, 5U);
  EXPECT_EQ(c.mem_reads, 3U);
}

TEST(OpCount, ScalarMultiplyScalesAllFields) {
  OpCount a;
  a.macs = 2;
  a.divides = 3;
  a.mem_writes = 4;
  a *= 5;
  EXPECT_EQ(a.macs, 10U);
  EXPECT_EQ(a.divides, 15U);
  EXPECT_EQ(a.mem_writes, 20U);
}

TEST(OpCount, PlusEqualsMatchesPlus) {
  OpCount a;
  a.macs = 7;
  OpCount b;
  b.adds = 9;
  OpCount c = a;
  c += b;
  EXPECT_EQ(c, a + b);
}

TEST(OpCount, ToStringContainsFields) {
  OpCount a;
  a.macs = 42;
  const std::string s = a.to_string();
  EXPECT_NE(s.find("macs=42"), std::string::npos);
  EXPECT_NE(s.find("total_compute=84"), std::string::npos);
}

}  // namespace
}  // namespace cdl
