// Tests for the perf_event_open wrapper. Hardware counters are usually
// denied in containers and CI (perf_event_paranoid, seccomp, missing PMU),
// so these tests assert the graceful-degradation contract rather than any
// particular counter value: wall time is always measured, unavailable
// hardware fields are invalid and export as JSON null, and nothing throws.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/perf_counters.h"

namespace cdl::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

void burn_some_cycles() {
  volatile double acc = 0.0;
  for (int i = 0; i < 200000; ++i) acc = acc + static_cast<double>(i) * 1e-9;
}

TEST(PerfGroup, ConstructionNeverThrows) {
  PerfGroup group;
  if (!group.available()) {
    // The degraded path must explain itself.
    EXPECT_FALSE(group.unavailable_reason().empty());
  } else {
    EXPECT_TRUE(group.unavailable_reason().empty());
  }
}

TEST(PerfGroup, WallClockAlwaysMeasured) {
  PerfGroup group;
  group.start();
  burn_some_cycles();
  const PerfReading reading = group.stop();
  EXPECT_GT(reading.wall_ns, 0U);
}

TEST(PerfGroup, StopWithoutStartIsWallOnlyZeros) {
  PerfGroup group;
  const PerfReading reading = group.stop();
  EXPECT_EQ(reading.wall_ns, 0U);
  EXPECT_FALSE(reading.available);
}

TEST(PerfGroup, UnavailableReadingHasOnlyInvalidValues) {
  PerfGroup group;
  group.start();
  burn_some_cycles();
  const PerfReading reading = group.stop();
  if (reading.available) {
    // When the PMU exists at least one counter carries a value; spot-check
    // internal consistency rather than magnitudes.
    EXPECT_GT(reading.time_enabled_ns, 0U);
    if (reading.cycles.valid && reading.instructions.valid &&
        reading.cycles.value > 0) {
      EXPECT_GT(reading.ipc(), 0.0);
    }
  } else {
    EXPECT_FALSE(reading.cycles.valid);
    EXPECT_FALSE(reading.instructions.valid);
    EXPECT_FALSE(reading.cache_references.valid);
    EXPECT_FALSE(reading.cache_misses.valid);
    EXPECT_FALSE(reading.branch_misses.valid);
    EXPECT_DOUBLE_EQ(reading.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(reading.cache_miss_rate(), 0.0);
    EXPECT_DOUBLE_EQ(reading.multiplex_ratio(), 1.0);
  }
}

TEST(PerfReading, DefaultHelpersAreSafe) {
  const PerfReading reading;
  EXPECT_DOUBLE_EQ(reading.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(reading.cache_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(reading.multiplex_ratio(), 1.0);
  EXPECT_FALSE(reading.summary().empty());
}

TEST(PerfReading, SummaryMentionsReasonWhenDegraded) {
  const PerfReading reading;  // unavailable
  const std::string line = reading.summary("perf_event_open: denied");
  EXPECT_TRUE(contains(line, "unavailable"));
  EXPECT_TRUE(contains(line, "perf_event_open: denied"));
}

// The run-report schema promise: invalid fields are JSON null, never garbage
// numbers, and wall_ns is always a number.
TEST(PerfJson, DegradedShapeUsesNulls) {
  PerfReading reading;
  reading.wall_ns = 12345;
  std::ostringstream os;
  write_perf_json(os, reading);
  const std::string json = os.str();
  EXPECT_TRUE(contains(json, "\"available\": false"));
  EXPECT_TRUE(contains(json, "\"wall_ns\": 12345"));
  EXPECT_TRUE(contains(json, "\"cycles\": null"));
  EXPECT_TRUE(contains(json, "\"instructions\": null"));
  EXPECT_TRUE(contains(json, "\"cache_references\": null"));
  EXPECT_TRUE(contains(json, "\"cache_misses\": null"));
  EXPECT_TRUE(contains(json, "\"branch_misses\": null"));
}

TEST(PerfJson, ValidValuesAreNumbers) {
  PerfReading reading;
  reading.available = true;
  reading.wall_ns = 1;
  reading.cycles = {true, 987654321};
  std::ostringstream os;
  write_perf_json(os, reading);
  const std::string json = os.str();
  EXPECT_TRUE(contains(json, "\"available\": true"));
  EXPECT_TRUE(contains(json, "\"cycles\": 987654321"));
  EXPECT_TRUE(contains(json, "\"instructions\": null"));
}

TEST(PerfGroup, RestartableAcrossRegions) {
  PerfGroup group;
  group.start();
  burn_some_cycles();
  const PerfReading first = group.stop();
  group.start();
  burn_some_cycles();
  const PerfReading second = group.stop();
  EXPECT_GT(first.wall_ns, 0U);
  EXPECT_GT(second.wall_ns, 0U);
}

}  // namespace
}  // namespace cdl::obs
