#include <gtest/gtest.h>

#include "util/args.h"

namespace cdl {
namespace {

ArgParser standard_parser() {
  ArgParser p;
  p.add_option("name", "default", "a string");
  p.add_option("count", "5", "an integer");
  p.add_option("rate", "0.5", "a double");
  p.add_flag("verbose", "a flag");
  return p;
}

void parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, DefaultsApplyWithoutArguments) {
  ArgParser p = standard_parser();
  parse(p, {});
  EXPECT_EQ(p.get("name"), "default");
  EXPECT_EQ(p.get_size("count"), 5U);
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.5);
  EXPECT_FALSE(p.get_flag("verbose"));
  EXPECT_FALSE(p.help_requested());
}

TEST(ArgParser, SpaceSeparatedValues) {
  ArgParser p = standard_parser();
  parse(p, {"--name", "hello", "--count", "42"});
  EXPECT_EQ(p.get("name"), "hello");
  EXPECT_EQ(p.get_size("count"), 42U);
}

TEST(ArgParser, EqualsSyntax) {
  ArgParser p = standard_parser();
  parse(p, {"--rate=0.25", "--name=x"});
  EXPECT_DOUBLE_EQ(p.get_double("rate"), 0.25);
  EXPECT_EQ(p.get("name"), "x");
}

TEST(ArgParser, FlagsAreBoolean) {
  ArgParser p = standard_parser();
  parse(p, {"--verbose"});
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(ArgParser, FlagWithValueRejected) {
  ArgParser p = standard_parser();
  EXPECT_THROW(parse(p, {"--verbose=true"}), std::invalid_argument);
}

TEST(ArgParser, UnknownArgumentRejected) {
  ArgParser p = standard_parser();
  EXPECT_THROW(parse(p, {"--nope", "1"}), std::invalid_argument);
}

TEST(ArgParser, PositionalArgumentRejected) {
  ArgParser p = standard_parser();
  EXPECT_THROW(parse(p, {"stray"}), std::invalid_argument);
}

TEST(ArgParser, MissingValueRejected) {
  ArgParser p = standard_parser();
  EXPECT_THROW(parse(p, {"--name"}), std::invalid_argument);
}

TEST(ArgParser, MalformedNumbersRejected) {
  ArgParser p = standard_parser();
  parse(p, {"--count", "12x", "--rate", "abc"});
  EXPECT_THROW((void)p.get_size("count"), std::invalid_argument);
  EXPECT_THROW((void)p.get_double("rate"), std::invalid_argument);
}

TEST(ArgParser, UndeclaredAccessRejected) {
  ArgParser p = standard_parser();
  parse(p, {});
  EXPECT_THROW((void)p.get("missing"), std::invalid_argument);
  EXPECT_THROW((void)p.get_flag("missing"), std::invalid_argument);
}

TEST(ArgParser, HelpRequested) {
  ArgParser p = standard_parser();
  parse(p, {"--help"});
  EXPECT_TRUE(p.help_requested());
  const std::string h = p.help("prog");
  EXPECT_NE(h.find("--name"), std::string::npos);
  EXPECT_NE(h.find("--verbose"), std::string::npos);
  EXPECT_NE(h.find("a string"), std::string::npos);
}

}  // namespace
}  // namespace cdl
