#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.h"
#include "nn/conv2d.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::random_tensor;

/// Naive reference convolution written independently of the production loop
/// order, used to cross-check Conv2D::forward.
Tensor reference_conv(const Tensor& input, const Tensor& weights,
                      const Tensor& bias) {
  const std::size_t in_c = input.shape()[0];
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  const std::size_t out_c = weights.shape()[0];
  const std::size_t k = weights.shape()[2];
  Tensor out(Shape{out_c, h - k + 1, w - k + 1});
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t y = 0; y + k <= h; ++y) {
      for (std::size_t x = 0; x + k <= w; ++x) {
        double acc = bias.at(oc);
        for (std::size_t ic = 0; ic < in_c; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
              acc += static_cast<double>(input.at(ic, y + ky, x + kx)) *
                     weights.at(oc, ic, ky, kx);
            }
          }
        }
        out.at(oc, y, x) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

TEST(Conv2D, RejectsBadConstruction) {
  EXPECT_THROW(Conv2D(0, 1, 3), std::invalid_argument);
  EXPECT_THROW(Conv2D(1, 0, 3), std::invalid_argument);
  EXPECT_THROW(Conv2D(1, 1, 0), std::invalid_argument);
}

TEST(Conv2D, OutputShapeValidArithmetic) {
  const Conv2D conv(1, 6, 5);
  EXPECT_EQ(conv.output_shape(Shape{1, 28, 28}), (Shape{6, 24, 24}));
  EXPECT_THROW((void)conv.output_shape(Shape{2, 28, 28}), std::invalid_argument);
  EXPECT_THROW((void)conv.output_shape(Shape{1, 4, 4}), std::invalid_argument);
  EXPECT_THROW((void)conv.output_shape(Shape{28, 28}), std::invalid_argument);
}

TEST(Conv2D, IdentityKernelReproducesInput) {
  Conv2D conv(1, 1, 1);
  Rng rng(5);
  conv.init(rng);
  // Force identity: single 1x1 weight of 1.0, zero bias.
  conv.parameters()[0]->fill(1.0F);
  conv.parameters()[1]->zero();
  const Tensor x = random_tensor(Shape{1, 4, 4}, rng);
  EXPECT_EQ(conv.forward(x), x);
}

TEST(Conv2D, BiasPropagatesToAllOutputs) {
  Conv2D conv(1, 2, 3);
  conv.parameters()[0]->zero();
  (*conv.parameters()[1])[0] = 1.5F;
  (*conv.parameters()[1])[1] = -0.5F;
  const Tensor x(Shape{1, 5, 5});
  const Tensor y = conv.forward(x);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(y[i], 1.5F);       // map 0
    EXPECT_EQ(y[9 + i], -0.5F);  // map 1
  }
}

TEST(Conv2D, BackwardBeforeForwardThrows) {
  Conv2D conv(1, 1, 3);
  EXPECT_THROW((void)conv.backward(Tensor(Shape{1, 2, 2})), std::logic_error);
}

TEST(Conv2D, BackwardRejectsWrongGradShape) {
  Conv2D conv(1, 1, 3);
  Rng rng(3);
  conv.init(rng);
  (void)conv.forward(Tensor(Shape{1, 5, 5}));
  EXPECT_THROW((void)conv.backward(Tensor(Shape{1, 5, 5})),
               std::invalid_argument);
}

TEST(Conv2D, ForwardOpsCountsMacsExactly) {
  const Conv2D conv(6, 12, 5);
  const OpCount ops = conv.forward_ops(Shape{6, 12, 12});
  // 12 maps of 8x8 outputs, each 6*5*5 MACs.
  EXPECT_EQ(ops.macs, 12ULL * 8 * 8 * 6 * 5 * 5);
  EXPECT_EQ(ops.adds, 12ULL * 8 * 8);
  EXPECT_EQ(ops.mem_writes, 12ULL * 8 * 8);
}

using ConvCase = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>;

class ConvReferenceSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvReferenceSweep, MatchesNaiveReference) {
  const auto [in_c, out_c, k, size] = GetParam();
  Rng rng(101 + in_c * 7 + out_c * 11 + k * 13 + size);
  Conv2D conv(in_c, out_c, k);
  conv.init(rng);
  const Tensor x = random_tensor(Shape{in_c, size, size}, rng);
  const Tensor expected = reference_conv(x, conv.weights(), conv.bias());
  const Tensor actual = conv.forward(x);
  ASSERT_EQ(actual.shape(), expected.shape());
  for (std::size_t i = 0; i < actual.numel(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4F) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvReferenceSweep,
    ::testing::Values(ConvCase{1, 1, 1, 3}, ConvCase{1, 6, 5, 28},
                      ConvCase{1, 3, 3, 28}, ConvCase{3, 6, 4, 13},
                      ConvCase{6, 12, 5, 12}, ConvCase{6, 9, 3, 5},
                      ConvCase{2, 2, 2, 6}, ConvCase{4, 1, 3, 9}));

TEST(Conv2D, GradientAccumulatesAcrossBackwardCalls) {
  Conv2D conv(1, 1, 2);
  Rng rng(9);
  conv.init(rng);
  const Tensor x = random_tensor(Shape{1, 3, 3}, rng);
  const Tensor g(Shape{1, 2, 2}, 1.0F);
  (void)conv.forward(x);
  (void)conv.backward(g);
  const Tensor once = *conv.gradients()[0];
  (void)conv.forward(x);
  (void)conv.backward(g);
  const Tensor twice = *conv.gradients()[0];
  for (std::size_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(twice[i], 2.0F * once[i], 1e-5F);
  }
  conv.zero_gradients();
  EXPECT_EQ(conv.gradients()[0]->sum(), 0.0F);
}

}  // namespace
}  // namespace cdl
