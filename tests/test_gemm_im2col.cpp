// Tests for the GEMM kernel, the im2col lowering, and the equivalence of
// Conv2D's direct and im2col forward paths.
#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "nn/conv2d.h"
#include "nn/gemm.h"
#include "nn/im2col.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::random_tensor;

void reference_gemm(GemmDims d, const float* a, const float* b, float* c) {
  for (std::size_t i = 0; i < d.m; ++i) {
    for (std::size_t j = 0; j < d.n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < d.k; ++p) {
        acc += static_cast<double>(a[i * d.k + p]) * b[p * d.n + j];
      }
      c[i * d.n + j] = static_cast<float>(acc);
    }
  }
}

TEST(Gemm, IdentityTimesMatrix) {
  // A = I(3), B arbitrary -> C == B.
  std::vector<float> a = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<float> b = {1, 2, 3, 4, 5, 6};
  std::vector<float> c(6, -1.0F);
  sgemm({3, 3, 2}, a.data(), b.data(), c.data());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(c[i], b[i]);
}

TEST(Gemm, AccumulateAddsIntoC) {
  std::vector<float> a = {2};
  std::vector<float> b = {3};
  std::vector<float> c = {10};
  sgemm({1, 1, 1}, a.data(), b.data(), c.data(), /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 16.0F);
  sgemm({1, 1, 1}, a.data(), b.data(), c.data(), /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c[0], 6.0F);
}

using GemmCase = std::tuple<std::size_t, std::size_t, std::size_t>;

class GemmReferenceSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmReferenceSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 31 + k * 7 + n);
  const Tensor a = random_tensor(Shape{m, k}, rng);
  const Tensor b = random_tensor(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  Tensor expected(Shape{m, n});
  sgemm({m, k, n}, a.data(), b.data(), c.data());
  reference_gemm({m, k, n}, a.data(), b.data(), expected.data());
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4F) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmReferenceSweep,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{2, 3, 4}, GemmCase{7, 5, 9},
                      GemmCase{64, 64, 64}, GemmCase{65, 63, 70},
                      GemmCase{12, 150, 25}, GemmCase{128, 17, 3}));

// Exhaustive panel-edge sweep: every combination of dimensions around the
// kMr=4 / kNr=8 register-tile boundaries (1, 63, 64, 65, 130) must match the
// naive reference — this is where packing padding bugs hide.
constexpr std::size_t kPanelEdges[] = {1, 63, 64, 65, 130};

INSTANTIATE_TEST_SUITE_P(
    PanelEdges, GemmReferenceSweep,
    ::testing::Combine(::testing::ValuesIn(kPanelEdges),
                       ::testing::ValuesIn(kPanelEdges),
                       ::testing::ValuesIn(kPanelEdges)));

TEST(Gemm, AccumulateMatchesReferenceAtPanelEdges) {
  // beta=1 write-back path over a partially-filled accumulator tile.
  const GemmDims d{9, 31, 13};
  Rng rng(77);
  const Tensor a = random_tensor(Shape{d.m, d.k}, rng);
  const Tensor b = random_tensor(Shape{d.k, d.n}, rng);
  Tensor c = random_tensor(Shape{d.m, d.n}, rng);
  Tensor expected(Shape{d.m, d.n});
  reference_gemm(d, a.data(), b.data(), expected.data());
  for (std::size_t i = 0; i < expected.numel(); ++i) expected[i] += c[i];
  sgemm(d, a.data(), b.data(), c.data(), /*accumulate=*/true);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4F) << "element " << i;
  }
}

TEST(Gemm, BlockedReferenceAgreesWithPackedKernel) {
  // The retained seed kernel and the packed kernel are both valid GEMMs; they
  // must agree to float accumulation tolerance.
  const GemmDims d{65, 70, 33};
  Rng rng(123);
  const Tensor a = random_tensor(Shape{d.m, d.k}, rng);
  const Tensor b = random_tensor(Shape{d.k, d.n}, rng);
  Tensor packed(Shape{d.m, d.n});
  Tensor blocked(Shape{d.m, d.n});
  sgemm(d, a.data(), b.data(), packed.data());
  sgemm_blocked_reference(d, a.data(), b.data(), blocked.data());
  for (std::size_t i = 0; i < packed.numel(); ++i) {
    EXPECT_NEAR(packed[i], blocked[i], 1e-3F) << "element " << i;
  }
}

TEST(Gemm, ParallelBitIdenticalToSerial) {
  // sgemm_parallel must produce bit-identical output for any pool size: each
  // output row is accumulated in the same order regardless of the split.
  for (std::size_t workers : {1U, 2U, 3U, 4U, 7U}) {
    ThreadPool pool(workers);
    for (const GemmDims d : {GemmDims{1, 5, 3}, GemmDims{4, 8, 8},
                             GemmDims{65, 63, 70}, GemmDims{130, 17, 9}}) {
      Rng rng(d.m * 131 + d.k * 17 + d.n + workers);
      const Tensor a = random_tensor(Shape{d.m, d.k}, rng);
      const Tensor b = random_tensor(Shape{d.k, d.n}, rng);
      Tensor serial(Shape{d.m, d.n});
      Tensor parallel(Shape{d.m, d.n});
      sgemm(d, a.data(), b.data(), serial.data());
      sgemm_parallel(d, a.data(), b.data(), parallel.data(), pool);
      EXPECT_EQ(serial, parallel)
          << "m=" << d.m << " k=" << d.k << " n=" << d.n
          << " workers=" << workers;

      // Accumulate path too: start from identical non-zero C.
      Tensor serial_acc = random_tensor(Shape{d.m, d.n}, rng);
      Tensor parallel_acc = serial_acc;
      sgemm(d, a.data(), b.data(), serial_acc.data(), /*accumulate=*/true);
      sgemm_parallel(d, a.data(), b.data(), parallel_acc.data(), pool,
                     /*accumulate=*/true);
      EXPECT_EQ(serial_acc, parallel_acc);
    }
  }
}

TEST(Im2col, ValidatesInput) {
  EXPECT_THROW((void)im2col(Tensor(Shape{4, 4}), 2), std::invalid_argument);
  EXPECT_THROW((void)im2col(Tensor(Shape{1, 3, 3}), 4), std::invalid_argument);
  EXPECT_THROW((void)im2col(Tensor(Shape{1, 3, 3}), 0), std::invalid_argument);
}

TEST(Im2col, KernelOneIsFlattenPerChannel) {
  Rng rng(5);
  const Tensor x = random_tensor(Shape{2, 3, 3}, rng);
  const Tensor cols = im2col(x, 1);
  EXPECT_EQ(cols.shape(), (Shape{2, 9}));
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(cols[i], x[i]);
}

TEST(Im2col, ColumnsHoldConvolutionWindows) {
  // 1x3x3 input, 2x2 kernel: 4 output pixels, each column a 2x2 window.
  Tensor x(Shape{1, 3, 3}, std::vector<float>{0, 1, 2,
                                              3, 4, 5,
                                              6, 7, 8});
  const Tensor cols = im2col(x, 2);
  ASSERT_EQ(cols.shape(), (Shape{4, 4}));
  // Window at output (0,0) is {0,1,3,4}; column 0 holds it in kernel order.
  EXPECT_EQ(cols.at(0, 0), 0.0F);
  EXPECT_EQ(cols.at(1, 0), 1.0F);
  EXPECT_EQ(cols.at(2, 0), 3.0F);
  EXPECT_EQ(cols.at(3, 0), 4.0F);
  // Window at output (1,1) is {4,5,7,8}; last column.
  EXPECT_EQ(cols.at(0, 3), 4.0F);
  EXPECT_EQ(cols.at(3, 3), 8.0F);
}

using ConvCase = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>;

class ConvAlgoEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvAlgoEquivalence, DirectAndIm2colAgree) {
  const auto [in_c, out_c, k, size] = GetParam();
  Rng rng(in_c * 3 + out_c * 5 + k * 7 + size);
  Conv2D direct(in_c, out_c, k, ConvAlgo::kDirect);
  direct.init(rng);
  Conv2D lowered(in_c, out_c, k, ConvAlgo::kIm2col);
  *lowered.parameters()[0] = direct.weights();
  *lowered.parameters()[1] = direct.bias();

  const Tensor x = random_tensor(Shape{in_c, size, size}, rng);
  const Tensor a = direct.forward(x);
  const Tensor b = lowered.forward(x);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-4F) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvAlgoEquivalence,
    ::testing::Values(ConvCase{1, 6, 5, 28}, ConvCase{1, 3, 3, 28},
                      ConvCase{3, 6, 4, 13}, ConvCase{6, 12, 5, 12},
                      ConvCase{6, 9, 3, 5}, ConvCase{2, 2, 1, 4}));

TEST(ConvAlgo, BackwardStillWorksAfterIm2colForward) {
  // The im2col path caches the raw input, so backward (direct) must agree
  // with a direct-forward + backward pass.
  Rng rng(9);
  Conv2D a(1, 2, 3, ConvAlgo::kDirect);
  a.init(rng);
  Conv2D b(1, 2, 3, ConvAlgo::kIm2col);
  *b.parameters()[0] = a.weights();
  *b.parameters()[1] = a.bias();

  const Tensor x = random_tensor(Shape{1, 6, 6}, rng);
  const Tensor g = random_tensor(Shape{2, 4, 4}, rng);
  (void)a.forward(x);
  (void)b.forward(x);
  const Tensor ga = a.backward(g);
  const Tensor gb = b.backward(g);
  for (std::size_t i = 0; i < ga.numel(); ++i) {
    EXPECT_NEAR(ga[i], gb[i], 1e-5F);
  }
  EXPECT_EQ(*a.gradients()[0], *b.gradients()[0]);
}

TEST(ConvAlgo, SetAlgoSwitchesAtRuntime) {
  Rng rng(11);
  Conv2D conv(1, 2, 3);
  conv.init(rng);
  const Tensor x = random_tensor(Shape{1, 5, 5}, rng);
  const Tensor direct = conv.forward(x);
  conv.set_algo(ConvAlgo::kIm2col);
  EXPECT_EQ(conv.algo(), ConvAlgo::kIm2col);
  const Tensor lowered = conv.forward(x);
  for (std::size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct[i], lowered[i], 1e-4F);
  }
}

}  // namespace
}  // namespace cdl
