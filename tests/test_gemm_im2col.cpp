// Tests for the GEMM kernel, the im2col lowering, and the equivalence of
// Conv2D's direct and im2col forward paths.
#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "nn/conv2d.h"
#include "nn/gemm.h"
#include "nn/im2col.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::random_tensor;

void reference_gemm(GemmDims d, const float* a, const float* b, float* c) {
  for (std::size_t i = 0; i < d.m; ++i) {
    for (std::size_t j = 0; j < d.n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < d.k; ++p) {
        acc += static_cast<double>(a[i * d.k + p]) * b[p * d.n + j];
      }
      c[i * d.n + j] = static_cast<float>(acc);
    }
  }
}

TEST(Gemm, IdentityTimesMatrix) {
  // A = I(3), B arbitrary -> C == B.
  std::vector<float> a = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<float> b = {1, 2, 3, 4, 5, 6};
  std::vector<float> c(6, -1.0F);
  sgemm({3, 3, 2}, a.data(), b.data(), c.data());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(c[i], b[i]);
}

TEST(Gemm, AccumulateAddsIntoC) {
  std::vector<float> a = {2};
  std::vector<float> b = {3};
  std::vector<float> c = {10};
  sgemm({1, 1, 1}, a.data(), b.data(), c.data(), /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 16.0F);
  sgemm({1, 1, 1}, a.data(), b.data(), c.data(), /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c[0], 6.0F);
}

using GemmCase = std::tuple<std::size_t, std::size_t, std::size_t>;

class GemmReferenceSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmReferenceSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 31 + k * 7 + n);
  const Tensor a = random_tensor(Shape{m, k}, rng);
  const Tensor b = random_tensor(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  Tensor expected(Shape{m, n});
  sgemm({m, k, n}, a.data(), b.data(), c.data());
  reference_gemm({m, k, n}, a.data(), b.data(), expected.data());
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4F) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmReferenceSweep,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{2, 3, 4}, GemmCase{7, 5, 9},
                      GemmCase{64, 64, 64}, GemmCase{65, 63, 70},
                      GemmCase{12, 150, 25}, GemmCase{128, 17, 3}));

// Exhaustive panel-edge sweep: every combination of dimensions around the
// kMr=4 / kNr=8 register-tile boundaries (1, 63, 64, 65, 130) must match the
// naive reference — this is where packing padding bugs hide.
constexpr std::size_t kPanelEdges[] = {1, 63, 64, 65, 130};

INSTANTIATE_TEST_SUITE_P(
    PanelEdges, GemmReferenceSweep,
    ::testing::Combine(::testing::ValuesIn(kPanelEdges),
                       ::testing::ValuesIn(kPanelEdges),
                       ::testing::ValuesIn(kPanelEdges)));

TEST(Gemm, AccumulateMatchesReferenceAtPanelEdges) {
  // beta=1 write-back path over a partially-filled accumulator tile.
  const GemmDims d{9, 31, 13};
  Rng rng(77);
  const Tensor a = random_tensor(Shape{d.m, d.k}, rng);
  const Tensor b = random_tensor(Shape{d.k, d.n}, rng);
  Tensor c = random_tensor(Shape{d.m, d.n}, rng);
  Tensor expected(Shape{d.m, d.n});
  reference_gemm(d, a.data(), b.data(), expected.data());
  for (std::size_t i = 0; i < expected.numel(); ++i) expected[i] += c[i];
  sgemm(d, a.data(), b.data(), c.data(), /*accumulate=*/true);
  for (std::size_t i = 0; i < c.numel(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4F) << "element " << i;
  }
}

TEST(Gemm, BlockedReferenceAgreesWithPackedKernel) {
  // The retained seed kernel and the packed kernel are both valid GEMMs; they
  // must agree to float accumulation tolerance.
  const GemmDims d{65, 70, 33};
  Rng rng(123);
  const Tensor a = random_tensor(Shape{d.m, d.k}, rng);
  const Tensor b = random_tensor(Shape{d.k, d.n}, rng);
  Tensor packed(Shape{d.m, d.n});
  Tensor blocked(Shape{d.m, d.n});
  sgemm(d, a.data(), b.data(), packed.data());
  sgemm_blocked_reference(d, a.data(), b.data(), blocked.data());
  for (std::size_t i = 0; i < packed.numel(); ++i) {
    EXPECT_NEAR(packed[i], blocked[i], 1e-3F) << "element " << i;
  }
}

TEST(Gemm, ParallelBitIdenticalToSerial) {
  // sgemm_parallel must produce bit-identical output for any pool size: each
  // output row is accumulated in the same order regardless of the split.
  for (std::size_t workers : {1U, 2U, 3U, 4U, 7U}) {
    ThreadPool pool(workers);
    for (const GemmDims d : {GemmDims{1, 5, 3}, GemmDims{4, 8, 8},
                             GemmDims{65, 63, 70}, GemmDims{130, 17, 9}}) {
      Rng rng(d.m * 131 + d.k * 17 + d.n + workers);
      const Tensor a = random_tensor(Shape{d.m, d.k}, rng);
      const Tensor b = random_tensor(Shape{d.k, d.n}, rng);
      Tensor serial(Shape{d.m, d.n});
      Tensor parallel(Shape{d.m, d.n});
      sgemm(d, a.data(), b.data(), serial.data());
      sgemm_parallel(d, a.data(), b.data(), parallel.data(), pool);
      EXPECT_EQ(serial, parallel)
          << "m=" << d.m << " k=" << d.k << " n=" << d.n
          << " workers=" << workers;

      // Accumulate path too: start from identical non-zero C.
      Tensor serial_acc = random_tensor(Shape{d.m, d.n}, rng);
      Tensor parallel_acc = serial_acc;
      sgemm(d, a.data(), b.data(), serial_acc.data(), /*accumulate=*/true);
      sgemm_parallel(d, a.data(), b.data(), parallel_acc.data(), pool,
                     /*accumulate=*/true);
      EXPECT_EQ(serial_acc, parallel_acc);
    }
  }
}

TEST(Gemm, PackedEntryPointBitIdenticalToSgemm) {
  // The fully pre-packed entry point must agree bit-exactly with sgemm: both
  // run the same micro-kernel, so every output element accumulates in the
  // same k order.
  for (const GemmDims d : {GemmDims{1, 5, 3}, GemmDims{4, 8, 8},
                           GemmDims{6, 30, 144}, GemmDims{13, 17, 9}}) {
    Rng rng(d.m * 7 + d.k * 3 + d.n);
    const Tensor a = random_tensor(Shape{d.m, d.k}, rng);
    const Tensor b = random_tensor(Shape{d.k, d.n}, rng);
    std::vector<float> pa(gemm_packed_a_floats(d.m, d.k));
    std::vector<float> pb(gemm_packed_b_floats(d.k, d.n));
    gemm_pack_a(d.m, d.k, a.data(), pa.data());
    gemm_pack_b(d.k, d.n, b.data(), pb.data());
    Tensor expected(Shape{d.m, d.n});
    Tensor packed(Shape{d.m, d.n});
    sgemm(d, a.data(), b.data(), expected.data());
    sgemm_packed(d, pa.data(), pb.data(), packed.data(), nullptr, nullptr);
    EXPECT_EQ(expected, packed) << "m=" << d.m << " k=" << d.k << " n=" << d.n;

    // Column panels are the parallel axis; any split is bit-identical.
    for (std::size_t workers : {2U, 5U}) {
      ThreadPool pool(workers);
      Tensor pooled(Shape{d.m, d.n});
      sgemm_packed(d, pa.data(), pb.data(), pooled.data(), nullptr, &pool);
      EXPECT_EQ(expected, pooled) << "workers=" << workers;
    }
  }
}

TEST(Gemm, ColInitReproducesBiasFirstChain) {
  // col_init = bias must reproduce the scalar "acc = bias; acc += w*x" chain
  // bit-exactly — the init seeds the accumulator, it is not added after.
  const GemmDims d{3, 29, 10};  // count x in_features x classes
  Rng rng(77);
  const Tensor x = random_tensor(Shape{d.m, d.k}, rng);       // features
  const Tensor w = random_tensor(Shape{d.n, d.k}, rng);       // class-major
  const Tensor bias = random_tensor(Shape{d.n}, rng);
  std::vector<float> pa(gemm_packed_a_floats(d.m, d.k));
  std::vector<float> pb(gemm_packed_b_floats(d.k, d.n));
  gemm_pack_a(d.m, d.k, x.data(), pa.data());
  gemm_pack_b_transposed(d.k, d.n, w.data(), pb.data());
  Tensor out(Shape{d.m, d.n});
  sgemm_packed(d, pa.data(), pb.data(), out.data(), bias.data(), nullptr);

  // micro_kernel_4x8_init accumulates each element independently in k order,
  // exactly like this scalar chain (FMA contraction applies to both).
  for (std::size_t r = 0; r < d.m; ++r) {
    Tensor row(Shape{d.n});
    for (std::size_t c = 0; c < d.n; ++c) {
      float acc = bias[c];
      for (std::size_t i = 0; i < d.k; ++i) {
        acc += w.at(c, i) * x.at(r, i);
      }
      row[c] = acc;
    }
    // The chains only differ by FMA contraction inside the kernel clone, so
    // agreement is to the last-ulp scale of the accumulation, and the packed
    // result must also be reproducible (deterministic) across calls.
    for (std::size_t c = 0; c < d.n; ++c) {
      EXPECT_NEAR(out.at(r, c), row[c], 1e-5F) << "row " << r << " col " << c;
    }
  }
  Tensor again(Shape{d.m, d.n});
  sgemm_packed(d, pa.data(), pb.data(), again.data(), bias.data(), nullptr);
  EXPECT_EQ(out, again);
}

TEST(Im2col, PackPanelsMatchesPerImageLoweringPlusPack) {
  // im2col_pack_panels lowers a whole image block straight into packed-B
  // panels; the result must be byte-identical to concatenating per-image
  // im2col matrices and packing the concatenation.
  const std::size_t count = 3, c = 2, h = 7, w = 6, kernel = 3;
  const std::size_t pixels = (h - kernel + 1) * (w - kernel + 1);
  const std::size_t patch = c * kernel * kernel;
  Rng rng(99);
  std::vector<Tensor> images;
  for (std::size_t i = 0; i < count; ++i) {
    images.push_back(random_tensor(Shape{c, h, w}, rng));
  }
  // Contiguous image block.
  std::vector<float> block(count * c * h * w);
  for (std::size_t i = 0; i < count; ++i) {
    std::copy(images[i].data(), images[i].data() + images[i].numel(),
              block.begin() + static_cast<std::ptrdiff_t>(i * c * h * w));
  }
  // Reference: concatenated per-image im2col, then gemm_pack_b.
  std::vector<float> cols(patch * count * pixels);
  for (std::size_t i = 0; i < count; ++i) {
    const Tensor one = im2col(images[i], kernel);
    for (std::size_t p = 0; p < patch; ++p) {
      std::copy(one.data() + p * pixels, one.data() + (p + 1) * pixels,
                cols.begin() +
                    static_cast<std::ptrdiff_t>(p * count * pixels +
                                                i * pixels));
    }
  }
  std::vector<float> expected(gemm_packed_b_floats(patch, count * pixels));
  gemm_pack_b(patch, count * pixels, cols.data(), expected.data());

  std::vector<float> direct(expected.size(), -1.0F);
  const std::size_t panels = im2col_panel_count(h, w, kernel, count);
  im2col_pack_panels(block.data(), count, c, h, w, kernel, direct.data(), 0,
                     panels);
  EXPECT_EQ(expected, direct);

  // Disjoint panel ranges compose to the same packing (the parallel split).
  std::vector<float> split(expected.size(), -1.0F);
  const std::size_t mid = panels / 2;
  im2col_pack_panels(block.data(), count, c, h, w, kernel, split.data(), 0,
                     mid);
  im2col_pack_panels(block.data(), count, c, h, w, kernel, split.data(), mid,
                     panels);
  EXPECT_EQ(expected, split);
}

TEST(Im2col, PackPanelsValidatesGeometry) {
  std::vector<float> buf(64);
  EXPECT_THROW((void)im2col_panel_count(3, 3, 4, 1), std::invalid_argument);
  EXPECT_THROW(im2col_pack_panels(buf.data(), 1, 1, 3, 3, 0, buf.data(), 0, 1),
               std::invalid_argument);
}

TEST(Im2col, ValidatesInput) {
  EXPECT_THROW((void)im2col(Tensor(Shape{4, 4}), 2), std::invalid_argument);
  EXPECT_THROW((void)im2col(Tensor(Shape{1, 3, 3}), 4), std::invalid_argument);
  EXPECT_THROW((void)im2col(Tensor(Shape{1, 3, 3}), 0), std::invalid_argument);
}

TEST(Im2col, KernelOneIsFlattenPerChannel) {
  Rng rng(5);
  const Tensor x = random_tensor(Shape{2, 3, 3}, rng);
  const Tensor cols = im2col(x, 1);
  EXPECT_EQ(cols.shape(), (Shape{2, 9}));
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_EQ(cols[i], x[i]);
}

TEST(Im2col, ColumnsHoldConvolutionWindows) {
  // 1x3x3 input, 2x2 kernel: 4 output pixels, each column a 2x2 window.
  Tensor x(Shape{1, 3, 3}, std::vector<float>{0, 1, 2,
                                              3, 4, 5,
                                              6, 7, 8});
  const Tensor cols = im2col(x, 2);
  ASSERT_EQ(cols.shape(), (Shape{4, 4}));
  // Window at output (0,0) is {0,1,3,4}; column 0 holds it in kernel order.
  EXPECT_EQ(cols.at(0, 0), 0.0F);
  EXPECT_EQ(cols.at(1, 0), 1.0F);
  EXPECT_EQ(cols.at(2, 0), 3.0F);
  EXPECT_EQ(cols.at(3, 0), 4.0F);
  // Window at output (1,1) is {4,5,7,8}; last column.
  EXPECT_EQ(cols.at(0, 3), 4.0F);
  EXPECT_EQ(cols.at(3, 3), 8.0F);
}

using ConvCase = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>;

class ConvAlgoEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvAlgoEquivalence, DirectAndIm2colAgree) {
  const auto [in_c, out_c, k, size] = GetParam();
  Rng rng(in_c * 3 + out_c * 5 + k * 7 + size);
  Conv2D direct(in_c, out_c, k, ConvAlgo::kDirect);
  direct.init(rng);
  Conv2D lowered(in_c, out_c, k, ConvAlgo::kIm2col);
  *lowered.parameters()[0] = direct.weights();
  *lowered.parameters()[1] = direct.bias();

  const Tensor x = random_tensor(Shape{in_c, size, size}, rng);
  const Tensor a = direct.forward(x);
  const Tensor b = lowered.forward(x);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-4F) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvAlgoEquivalence,
    ::testing::Values(ConvCase{1, 6, 5, 28}, ConvCase{1, 3, 3, 28},
                      ConvCase{3, 6, 4, 13}, ConvCase{6, 12, 5, 12},
                      ConvCase{6, 9, 3, 5}, ConvCase{2, 2, 1, 4}));

TEST(ConvAlgo, BackwardStillWorksAfterIm2colForward) {
  // The im2col path caches the raw input, so backward (direct) must agree
  // with a direct-forward + backward pass.
  Rng rng(9);
  Conv2D a(1, 2, 3, ConvAlgo::kDirect);
  a.init(rng);
  Conv2D b(1, 2, 3, ConvAlgo::kIm2col);
  *b.parameters()[0] = a.weights();
  *b.parameters()[1] = a.bias();

  const Tensor x = random_tensor(Shape{1, 6, 6}, rng);
  const Tensor g = random_tensor(Shape{2, 4, 4}, rng);
  (void)a.forward(x);
  (void)b.forward(x);
  const Tensor ga = a.backward(g);
  const Tensor gb = b.backward(g);
  for (std::size_t i = 0; i < ga.numel(); ++i) {
    EXPECT_NEAR(ga[i], gb[i], 1e-5F);
  }
  EXPECT_EQ(*a.gradients()[0], *b.gradients()[0]);
}

TEST(ConvAlgo, SetAlgoSwitchesAtRuntime) {
  Rng rng(11);
  Conv2D conv(1, 2, 3);
  conv.init(rng);
  const Tensor x = random_tensor(Shape{1, 5, 5}, rng);
  const Tensor direct = conv.forward(x);
  conv.set_algo(ConvAlgo::kIm2col);
  EXPECT_EQ(conv.algo(), ConvAlgo::kIm2col);
  const Tensor lowered = conv.forward(x);
  for (std::size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct[i], lowered[i], 1e-4F);
  }
}

}  // namespace
}  // namespace cdl
