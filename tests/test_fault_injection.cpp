#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "hw/fault_injection.h"
#include "nn/activations.h"
#include "nn/dense.h"

namespace cdl {
namespace {

TEST(FaultInjection, RejectsBadConfig) {
  Tensor t(Shape{4}, 1.0F);
  Rng rng(1);
  FaultConfig bad;
  bad.bit_error_rate = -0.1;
  EXPECT_THROW((void)inject_faults(t, bad, rng), std::invalid_argument);
  bad.bit_error_rate = 1.5;
  EXPECT_THROW((void)inject_faults(t, bad, rng), std::invalid_argument);
  bad = {};
  bad.mantissa_bits_only = 24;
  EXPECT_THROW((void)inject_faults(t, bad, rng), std::invalid_argument);
}

TEST(FaultInjection, ZeroBerFlipsNothing) {
  Tensor t(Shape{100}, 0.5F);
  const Tensor original = t;
  Rng rng(2);
  const FaultReport r = inject_faults(t, FaultConfig{.bit_error_rate = 0.0}, rng);
  EXPECT_EQ(r.bits_flipped, 0U);
  EXPECT_EQ(r.bits_examined, 3200U);
  EXPECT_EQ(t, original);
}

TEST(FaultInjection, BerOneFlipsEveryBit) {
  Tensor t(Shape{10}, 1.0F);
  Rng rng(3);
  const FaultReport r = inject_faults(t, FaultConfig{.bit_error_rate = 1.0}, rng);
  EXPECT_EQ(r.bits_flipped, 320U);
  // 1.0f fully inverted is a finite negative value; all values changed.
  for (float v : t.values()) EXPECT_NE(v, 1.0F);
}

TEST(FaultInjection, FlipRateMatchesBerStatistically) {
  Tensor t(Shape{10000}, 0.5F);
  Rng rng(4);
  const double ber = 0.01;
  const FaultReport r = inject_faults(t, FaultConfig{.bit_error_rate = ber}, rng);
  const double observed = static_cast<double>(r.bits_flipped) /
                          static_cast<double>(r.bits_examined);
  EXPECT_NEAR(observed, ber, 0.002);
}

TEST(FaultInjection, NoNanOrInfEverSurvives) {
  Tensor t(Shape{5000});
  Rng rng(5);
  for (float& v : t.values()) v = rng.uniform(-10.0F, 10.0F);
  // High BER over all 32 bits produces many exponent-saturated patterns.
  (void)inject_faults(t, FaultConfig{.bit_error_rate = 0.2}, rng);
  for (float v : t.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(FaultInjection, MantissaOnlyFaultsAreSmall) {
  Tensor t(Shape{2000}, 1.5F);
  Rng rng(6);
  FaultConfig config;
  config.bit_error_rate = 0.05;
  config.mantissa_bits_only = 8;  // only the 8 lowest mantissa bits
  (void)inject_faults(t, config, rng);
  for (float v : t.values()) {
    // Low-mantissa flips of 1.5f change it by < 2^-15 relative.
    EXPECT_NEAR(v, 1.5F, 1e-3F);
  }
}

TEST(FaultInjection, ExaminesEveryParameterOfANetwork) {
  Network net;
  net.emplace<Dense>(4, 3);
  net.emplace<Sigmoid>();
  net.emplace<Dense>(3, 2);
  Rng rng(7);
  net.init(rng);
  const FaultReport r =
      inject_faults(net, FaultConfig{.bit_error_rate = 0.0}, rng);
  EXPECT_EQ(r.bits_examined, 32ULL * (4 * 3 + 3 + 3 * 2 + 2));
}

TEST(FaultInjection, CdlnCoversClassifiers) {
  Network base;
  base.emplace<Dense>(4, 6);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(6, 3);
  Rng rng(8);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{4});
  net.attach_classifier(2, LcTrainingRule::kLms, rng);
  const FaultReport r =
      inject_faults(net, FaultConfig{.bit_error_rate = 0.0}, rng);
  const std::uint64_t baseline_bits = 32ULL * (4 * 6 + 6 + 6 * 3 + 3);
  const std::uint64_t lc_bits = 32ULL * (6 * 3 + 3);
  EXPECT_EQ(r.bits_examined, baseline_bits + lc_bits);
}

class BerSweep : public ::testing::TestWithParam<double> {};

TEST_P(BerSweep, DamageGrowsWithBer) {
  // Mean squared parameter perturbation should grow with BER.
  Rng data_rng(9);
  Tensor original(Shape{4000});
  for (float& v : original.values()) v = data_rng.uniform(-1.0F, 1.0F);

  Tensor t = original;
  Rng rng(10);
  FaultConfig config;
  config.bit_error_rate = GetParam();
  config.mantissa_bits_only = 16;
  (void)inject_faults(t, config, rng);
  double mse = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double d = t[i] - original[i];
    mse += d * d;
  }
  if (GetParam() == 0.0) {
    EXPECT_EQ(mse, 0.0);
  } else {
    EXPECT_GT(mse, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, BerSweep,
                         ::testing::Values(0.0, 1e-4, 1e-3, 1e-2));

}  // namespace
}  // namespace cdl
