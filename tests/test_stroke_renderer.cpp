#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "data/stroke_renderer.h"

namespace cdl {
namespace {

constexpr float kPi = std::numbers::pi_v<float>;

std::vector<Stroke> box_glyph() {
  return {line_stroke({{0.3F, 0.3F}, {0.7F, 0.3F}, {0.7F, 0.7F},
                       {0.3F, 0.7F}, {0.3F, 0.3F}})};
}

TEST(StrokeHelpers, ArcEndpointsAndCount) {
  const Stroke s = arc_stroke(0.5F, 0.5F, 0.2F, 0.1F, 0.0F, kPi, 10);
  ASSERT_EQ(s.size(), 11U);
  EXPECT_NEAR(s.front().x, 0.7F, 1e-6F);  // angle 0: right
  EXPECT_NEAR(s.front().y, 0.5F, 1e-6F);
  EXPECT_NEAR(s.back().x, 0.3F, 1e-6F);   // angle pi: left
  EXPECT_NEAR(s.back().y, 0.5F, 1e-5F);
  // Midpoint (pi/2) is at the bottom in y-down coordinates.
  EXPECT_NEAR(s[5].y, 0.6F, 1e-6F);
}

TEST(StrokeHelpers, LineStrokeKeepsPoints) {
  const Stroke s = line_stroke({{0.1F, 0.2F}, {0.3F, 0.4F}});
  ASSERT_EQ(s.size(), 2U);
  EXPECT_EQ(s[0].x, 0.1F);
  EXPECT_EQ(s[1].y, 0.4F);
}

TEST(StrokeRenderer, RejectsBadConfig) {
  StrokeRenderConfig tiny;
  tiny.image_size = 4;
  EXPECT_THROW(StrokeRenderer{tiny}, std::invalid_argument);
  StrokeRenderConfig bad_scale;
  bad_scale.min_scale = 1.3F;
  bad_scale.max_scale = 0.9F;
  EXPECT_THROW(StrokeRenderer{bad_scale}, std::invalid_argument);
}

TEST(StrokeRenderer, DeterministicGivenSameRngState) {
  const StrokeRenderer renderer;
  const auto glyph = box_glyph();
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(renderer.render(glyph, 0.3F, a), renderer.render(glyph, 0.3F, b));
}

TEST(StrokeRenderer, OutputShapeAndRange) {
  StrokeRenderConfig config;
  config.image_size = 20;
  const StrokeRenderer renderer(config);
  Rng rng(7);
  const Tensor img = renderer.render(box_glyph(), 0.5F, rng);
  EXPECT_EQ(img.shape(), (Shape{1, 20, 20}));
  EXPECT_GE(img.min(), 0.0F);
  EXPECT_LE(img.max(), 1.0F);
  EXPECT_GT(img.sum(), 3.0F);  // the box is actually drawn
}

TEST(StrokeRenderer, DifficultyClampedOutOfRangeInputs) {
  const StrokeRenderer renderer;
  Rng a(3);
  Rng b(3);
  // difficulty > 1 behaves as 1; < 0 behaves as 0 (no crash, same draws).
  EXPECT_EQ(renderer.render(box_glyph(), 5.0F, a),
            renderer.render(box_glyph(), 1.0F, b));
  Rng c(4);
  Rng d(4);
  EXPECT_EQ(renderer.render(box_glyph(), -1.0F, c),
            renderer.render(box_glyph(), 0.0F, d));
}

TEST(StrokeRenderer, ZeroNoiseConfigGivesCleanBackground) {
  StrokeRenderConfig config;
  config.noise_stddev = 0.0F;
  const StrokeRenderer renderer(config);
  Rng rng(9);
  const Tensor img = renderer.render(box_glyph(), 0.1F, rng);
  // Corners far from the box must be exactly blank without noise.
  EXPECT_EQ(img.at(0, 0, 0), 0.0F);
  EXPECT_EQ(img.at(0, 27, 27), 0.0F);
}

TEST(StrokeRenderer, BackgroundDrawnBehindGlyph) {
  StrokeRenderConfig config;
  config.noise_stddev = 0.0F;
  config.point_jitter = 0.0F;
  config.max_rotation_rad = 0.0F;
  config.max_shear = 0.0F;
  config.min_scale = 1.0F;
  config.max_scale = 1.0F;
  config.max_translate = 0.0F;
  const StrokeRenderer renderer(config);

  const auto background = [](Rng&) {
    BackgroundLayer bg;
    bg.strokes = {line_stroke({{0.0F, 0.1F}, {1.0F, 0.1F}})};
    bg.ink = 0.4F;
    return bg;
  };
  Rng rng(11);
  const Tensor img = renderer.render(box_glyph(), 0.0F, rng, background);
  // The background line at y=0.1 leaves faint ink well away from the box.
  float bg_row_max = 0.0F;
  for (std::size_t x = 0; x < 28; ++x) {
    bg_row_max = std::max(bg_row_max, img.at(0, 2, x));
  }
  EXPECT_GT(bg_row_max, 0.2F);
  EXPECT_LT(bg_row_max, 0.6F);  // fainter than the glyph's own ink
}

TEST(StrokeRenderer, HigherDifficultyMeansMoreDeviation) {
  StrokeRenderConfig config;
  config.noise_stddev = 0.0F;
  const StrokeRenderer renderer(config);
  const auto glyph = box_glyph();

  // Canonical: difficulty 0 with the residual variation neutralized by
  // averaging many renders.
  const auto mean_distance = [&](float difficulty, std::uint64_t seed0) {
    Rng ref_rng(999);
    const Tensor reference = renderer.render(glyph, 0.0F, ref_rng);
    double acc = 0.0;
    const int n = 30;
    for (int i = 0; i < n; ++i) {
      Rng rng(seed0 + static_cast<std::uint64_t>(i));
      const Tensor img = renderer.render(glyph, difficulty, rng);
      double dist = 0.0;
      for (std::size_t p = 0; p < img.numel(); ++p) {
        const double diff = img[p] - reference[p];
        dist += diff * diff;
      }
      acc += dist;
    }
    return acc / n;
  };
  EXPECT_LT(mean_distance(0.05F, 100), mean_distance(0.95F, 100));
}

}  // namespace
}  // namespace cdl
