// Tests for the stage-major batched CDL path: classify_batch /
// classify_batch_into must be bit-identical to a serial per-image classify()
// for any batch size, thread count, δ and confidence policy, and the warm
// steady state must perform zero heap allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "nn/pool2d.h"
#include "test_util.h"

// ---------------------------------------------------------------------------
// Counting allocator hook: every global new/delete bumps a counter, so a test
// can assert that a warm steady-state call performs zero heap allocations.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cdl {
namespace {

using test::conv_cdln;
using test::random_image;

std::vector<Tensor> make_inputs(std::size_t n, std::uint64_t seed_base) {
  std::vector<Tensor> inputs;
  inputs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    inputs.push_back(random_image(Shape{1, 12, 12}, seed_base + i));
  }
  return inputs;
}

void expect_results_identical(const std::vector<ClassificationResult>& a,
                              const std::vector<ClassificationResult>& b,
                              const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << context << " sample " << i;
    EXPECT_EQ(a[i].exit_stage, b[i].exit_stage) << context << " sample " << i;
    EXPECT_EQ(a[i].confidence, b[i].confidence) << context << " sample " << i;
    EXPECT_EQ(a[i].probabilities, b[i].probabilities)
        << context << " sample " << i;
    EXPECT_EQ(a[i].ops, b[i].ops) << context << " sample " << i;
  }
}

std::vector<ClassificationResult> classify_serial(
    const ConditionalNetwork& net, const std::vector<Tensor>& inputs) {
  std::vector<ClassificationResult> out;
  out.reserve(inputs.size());
  for (const Tensor& x : inputs) out.push_back(net.classify(x));
  return out;
}

// The correctness bar: batched + compacted results bit-identical to serial
// per-image classify for any batch size, thread count and δ.
TEST(StagedBatch, BitIdenticalToSerialClassifyAcrossSizesThreadsAndDeltas) {
  Rng rng(23);
  ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  for (const float delta : {0.2F, 0.5F, 0.9F}) {
    net.set_delta(delta);
    for (const std::size_t size : {1U, 7U, 64U}) {
      const std::vector<Tensor> inputs = make_inputs(size, 1000 + size);
      const std::vector<ClassificationResult> serial =
          classify_serial(net, inputs);
      for (const std::size_t workers : {1U, 4U}) {
        ThreadPool pool(workers);
        const auto batched = net.classify_batch(inputs, &pool);
        expect_results_identical(serial, batched,
                                 "delta " + std::to_string(delta) + " size " +
                                     std::to_string(size) + " workers " +
                                     std::to_string(workers));
      }
      // Null pool (fully serial batched path).
      expect_results_identical(serial, net.classify_batch(inputs, nullptr),
                               "null pool size " + std::to_string(size));
    }
  }
}

// Batches larger than the workspace tile exercise the tile loop boundary.
TEST(StagedBatch, BatchLargerThanTileMatchesSerial) {
  Rng rng(29);
  const ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  const std::vector<Tensor> inputs =
      make_inputs(BatchWorkspace::kDefaultTile + 17, 4000);
  expect_results_identical(classify_serial(net, inputs),
                           net.classify_batch(inputs), "over-tile batch");
}

// Non-fusable networks (direct conv, average pool, strided conv) take the
// unfused per-layer block path and must stay bit-identical too.
TEST(StagedBatch, UnfusedVariantsMatchSerial) {
  {
    Rng rng(31);
    const ConditionalNetwork net = conv_cdln(ConvAlgo::kDirect, rng);
    const std::vector<Tensor> inputs = make_inputs(13, 5000);
    expect_results_identical(classify_serial(net, inputs),
                             net.classify_batch(inputs), "direct conv");
  }
  {
    // Average pool after a sigmoid: fusion requires max pool, so this runs
    // conv / act / pool as separate block steps.
    Rng rng(37);
    Network base;
    base.emplace<Conv2D>(1, 4, 3, ConvAlgo::kIm2col, ConvGeometry{1, 1});
    base.emplace<Sigmoid>();
    base.emplace<Pool2D>(2, PoolMode::kAverage);
    base.emplace<Dense>(4 * 6 * 6, 5);
    base.init(rng);
    ConditionalNetwork net(std::move(base), Shape{1, 12, 12});
    net.attach_classifier(3, LcTrainingRule::kLms, rng);
    net.set_delta(0.4F);
    const std::vector<Tensor> inputs = make_inputs(13, 6000);
    expect_results_identical(classify_serial(net, inputs),
                             net.classify_batch(inputs), "avg pool");
  }
  {
    // Strided conv is not im2col-lowerable: direct block path.
    Rng rng(41);
    Network base;
    base.emplace<Conv2D>(1, 4, 3, ConvAlgo::kIm2col, ConvGeometry{2, 1});
    base.emplace<Tanh>();
    base.emplace<Dense>(4 * 6 * 6, 5);
    base.init(rng);
    ConditionalNetwork net(std::move(base), Shape{1, 12, 12});
    net.attach_classifier(2, LcTrainingRule::kSoftmaxXent, rng);
    net.set_delta(0.4F);
    const std::vector<Tensor> inputs = make_inputs(13, 7000);
    expect_results_identical(classify_serial(net, inputs),
                             net.classify_batch(inputs), "strided conv");
  }
}

// Margin policy with δ = 0 terminates every input at stage 0: the batch
// drains in one stage and later stages see an empty survivor set.
TEST(StagedBatch, AllExitAtStageZero) {
  Rng rng(43);
  ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  net.set_policy(ConfidencePolicy::kMargin);
  net.set_delta(0.0F);
  const std::vector<Tensor> inputs = make_inputs(9, 8000);
  const auto batched = net.classify_batch(inputs);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].exit_stage, 0U) << "sample " << i;
  }
  expect_results_identical(classify_serial(net, inputs), batched, "all-exit");
}

// An unreachable δ sends every input through the full cascade to the FC
// stage: no compaction ever fires and the final segment sees the whole batch.
TEST(StagedBatch, NoneExitFallsThroughToFinalStage) {
  Rng rng(47);
  ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  net.set_policy(ConfidencePolicy::kMargin);
  net.set_delta(1.0e9F);
  const std::vector<Tensor> inputs = make_inputs(9, 9000);
  const auto batched = net.classify_batch(inputs);
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].exit_stage, net.num_stages()) << "sample " << i;
  }
  expect_results_identical(classify_serial(net, inputs), batched, "none-exit");
}

TEST(StagedBatch, SingleImageBatchMatchesClassify) {
  Rng rng(53);
  const ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  const std::vector<Tensor> inputs = make_inputs(1, 10000);
  expect_results_identical(classify_serial(net, inputs),
                           net.classify_batch(inputs), "single image");
}

TEST(StagedBatch, EmptyBatchYieldsEmptyResults) {
  Rng rng(59);
  const ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  EXPECT_TRUE(net.classify_batch({}).empty());
}

TEST(StagedBatch, WorkspaceReportsPlanAndReplansAcrossNetworks) {
  Rng rng(61);
  const ConditionalNetwork a = conv_cdln(ConvAlgo::kIm2col, rng);
  const ConditionalNetwork b = conv_cdln(ConvAlgo::kIm2col, rng);
  BatchWorkspace ws;
  EXPECT_FALSE(ws.matches(a, 1));
  ws.plan(a, 16, 2);
  EXPECT_TRUE(ws.matches(a, 1));
  EXPECT_TRUE(ws.matches(a, 2));
  EXPECT_FALSE(ws.matches(a, 4));  // more workers than planned
  EXPECT_FALSE(ws.matches(b, 1));  // different network object
  EXPECT_EQ(ws.tile(), 16U);
  EXPECT_GT(ws.capacity_floats(), 0U);

  // classify_batch_into replans automatically for the other network.
  const std::vector<Tensor> inputs = make_inputs(5, 11000);
  std::vector<ClassificationResult> results;
  b.classify_batch_into(inputs, results, ws);
  EXPECT_TRUE(ws.matches(b, 1));
  expect_results_identical(classify_serial(b, inputs), results, "replanned");
}

// The acceptance criterion behind the workspace planner: with a warm
// workspace and warm results vector, a repeat classify_batch_into performs
// zero heap allocations — serial and threaded.
TEST(StagedBatch, WarmSteadyStateAllocatesNothing) {
  Rng rng(67);
  const ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  const std::vector<Tensor> inputs = make_inputs(24, 12000);

  BatchWorkspace ws;
  std::vector<ClassificationResult> results;
  net.classify_batch_into(inputs, results, ws, nullptr);  // warm-up
  const auto expected = results;

  const std::uint64_t before = g_alloc_count.load();
  net.classify_batch_into(inputs, results, ws, nullptr);
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0U) << "serial steady state allocated";
  expect_results_identical(expected, results, "warm serial");

  ThreadPool pool(4);
  net.classify_batch_into(inputs, results, ws, &pool);  // warm-up (replan)
  const std::uint64_t pooled_before = g_alloc_count.load();
  net.classify_batch_into(inputs, results, ws, &pool);
  const std::uint64_t pooled_after = g_alloc_count.load();
  EXPECT_EQ(pooled_after - pooled_before, 0U) << "pooled steady state allocated";
  expect_results_identical(expected, results, "warm pooled");
}

// Int8 stages keep the same contract: quantized segments and classifiers
// carve their u8/s32 scratch out of the warm arena, so a steady-state int8
// batch performs zero heap allocations too.
TEST(StagedBatch, WarmInt8SteadyStateAllocatesNothing) {
  Rng rng(83);
  Network base;
  base.emplace<Conv2D>(1, 4, 3, ConvAlgo::kIm2col);
  base.emplace<Sigmoid>();
  base.emplace<Pool2D>(2);
  base.emplace<Dense>(4 * 5 * 5, 5);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{1, 12, 12});
  net.attach_classifier(3, LcTrainingRule::kLms, rng);
  net.set_delta(0.4F);
  const std::vector<Tensor> inputs = make_inputs(24, 15000);
  net.set_quantization(collect_quant_calibration(
      net.baseline(), net.input_shape(), inputs, inputs.size()));
  net.set_cascade_precision(StagePrecision::kInt8);

  BatchWorkspace ws;
  std::vector<ClassificationResult> results;
  net.classify_batch_into(inputs, results, ws, nullptr);  // warm-up
  const auto expected = results;
  const std::uint64_t before = g_alloc_count.load();
  net.classify_batch_into(inputs, results, ws, nullptr);
  EXPECT_EQ(g_alloc_count.load() - before, 0U)
      << "int8 serial steady state allocated";
  expect_results_identical(expected, results, "warm int8 serial");

  ThreadPool pool(4);
  net.classify_batch_into(inputs, results, ws, &pool);  // warm-up (replan)
  const std::uint64_t pooled_before = g_alloc_count.load();
  net.classify_batch_into(inputs, results, ws, &pool);
  EXPECT_EQ(g_alloc_count.load() - pooled_before, 0U)
      << "int8 pooled steady state allocated";
  expect_results_identical(expected, results, "warm int8 pooled");
}

// Same guarantee for the plain Network batch executor: a planned block range
// driven over a warm scratch buffer never touches the allocator.
TEST(StagedBatch, NetworkBlockRangeIsAllocationFreeWhenWarm) {
  Rng rng(71);
  const Network net = test::conv_net(ConvAlgo::kIm2col, rng);
  const Shape in_shape{1, 12, 12};
  const std::size_t count = 8;
  const BlockPlan plan = net.plan_block_range(in_shape, 0, net.size(), count, 1);
  std::vector<float> scratch(plan.scratch_floats());
  std::vector<float> in(count * plan.in_floats);
  std::vector<float> out(count * plan.out_floats);
  for (std::size_t i = 0; i < count; ++i) {
    const Tensor img = random_image(in_shape, 13000 + i);
    std::copy(img.data(), img.data() + plan.in_floats,
              in.begin() + static_cast<std::ptrdiff_t>(i * plan.in_floats));
  }
  net.infer_block_range(plan, in.data(), out.data(), count, scratch.data(),
                        nullptr);  // warm-up
  const std::uint64_t before = g_alloc_count.load();
  net.infer_block_range(plan, in.data(), out.data(), count, scratch.data(),
                        nullptr);
  EXPECT_EQ(g_alloc_count.load() - before, 0U);
}

TEST(StagedBatch, RejectsTileBeyondPlanCapacity) {
  Rng rng(73);
  const Network net = test::conv_net(ConvAlgo::kIm2col, rng);
  const Shape in_shape{1, 12, 12};
  const BlockPlan plan = net.plan_block_range(in_shape, 0, net.size(), 4, 1);
  std::vector<float> scratch(plan.scratch_floats());
  std::vector<float> buf(8 * plan.in_floats, 0.0F);
  std::vector<float> out(8 * plan.out_floats);
  EXPECT_THROW(net.infer_block_range(plan, buf.data(), out.data(), 8,
                                     scratch.data(), nullptr),
               std::invalid_argument);
}

TEST(StagedBatch, RejectsMismatchedInputShape) {
  Rng rng(79);
  const ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  std::vector<Tensor> inputs = make_inputs(3, 14000);
  inputs[1] = random_image(Shape{1, 6, 6}, 99);
  BatchWorkspace ws;
  std::vector<ClassificationResult> results;
  EXPECT_THROW(net.classify_batch_into(inputs, results, ws),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdl
