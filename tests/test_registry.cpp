// Tests for the metrics registry: instrument semantics, deterministic
// OpenMetrics/JSON exposition, histogram edge-case round-trips and the
// ExitProfile export used by `cdl_eval --metrics-out`.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "obs/exit_profile.h"
#include "obs/registry.h"

namespace cdl::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Counter, AccumulatesAndRejectsBadDeltas) {
  Counter c;
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.inc(-1.0), std::invalid_argument);
  EXPECT_THROW(c.inc(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(c.inc(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);  // failed incs leave the value untouched
}

TEST(Registry, InstrumentReferencesAreStableAndKeyedByLabels) {
  Registry reg;
  Counter& a = reg.counter("requests", "help", {{"stage", "O1"}});
  Counter& b = reg.counter("requests", "help", {{"stage", "O2"}});
  Counter& a_again = reg.counter("requests", "help", {{"stage", "O1"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a_again);
  a.inc(5.0);
  EXPECT_DOUBLE_EQ(a_again.value(), 5.0);
  EXPECT_EQ(reg.num_families(), 1U);
  EXPECT_EQ(reg.num_samples(), 2U);
}

TEST(Registry, LabelOrderDoesNotSplitSamples) {
  Registry reg;
  Gauge& a = reg.gauge("g", "", {{"x", "1"}, {"y", "2"}});
  Gauge& b = reg.gauge("g", "", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, NameReuseWithDifferentTypeThrows) {
  Registry reg;
  reg.counter("metric");
  EXPECT_THROW(reg.gauge("metric"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("metric", "", 0.0, 1.0, 4),
               std::invalid_argument);
}

TEST(Registry, HistogramLayoutMismatchThrows) {
  Registry reg;
  reg.histogram("h", "", 0.0, 1.0, 4);
  EXPECT_THROW(reg.histogram("h", "", 0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", "", 0.0, 1.0, 8), std::invalid_argument);
  EXPECT_NO_THROW(reg.histogram("h", "", 0.0, 1.0, 4));
}

TEST(Registry, InvalidNamesRejected) {
  Registry reg;
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("1leading_digit"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
}

// The determinism acceptance criterion: two registries fed the same values
// in different registration orders render byte-identical text.
TEST(Registry, ExpositionIsOrderIndependent) {
  Registry forward;
  forward.counter("alpha_total_ops", "ops").inc(42.0);
  forward.gauge("beta_ratio", "ratio", {{"stage", "O1"}}).set(0.5);
  forward.gauge("beta_ratio", "ratio", {{"stage", "FC"}}).set(0.25);
  forward.histogram("gamma_conf", "conf", 0.0, 1.0, 4).record(0.3);

  Registry reverse;
  reverse.histogram("gamma_conf", "conf", 0.0, 1.0, 4).record(0.3);
  reverse.gauge("beta_ratio", "ratio", {{"stage", "FC"}}).set(0.25);
  reverse.gauge("beta_ratio", "ratio", {{"stage", "O1"}}).set(0.5);
  reverse.counter("alpha_total_ops", "ops").inc(42.0);

  EXPECT_EQ(forward.openmetrics(), reverse.openmetrics());
  EXPECT_EQ(forward.json(), reverse.json());
}

TEST(Registry, OpenMetricsShape) {
  Registry reg;
  reg.counter("cdl_samples", "inputs classified").inc(100.0);
  reg.gauge("cdl_accuracy", "fraction correct").set(0.75);
  const std::string text = reg.openmetrics();
  EXPECT_TRUE(contains(text, "# HELP cdl_samples inputs classified"));
  EXPECT_TRUE(contains(text, "# TYPE cdl_samples counter"));
  EXPECT_TRUE(contains(text, "cdl_samples_total 100"));  // counter suffix
  EXPECT_TRUE(contains(text, "# TYPE cdl_accuracy gauge"));
  EXPECT_TRUE(contains(text, "cdl_accuracy 0.75"));
  // OpenMetrics text must end with the EOF marker.
  EXPECT_TRUE(text.size() >= 6 && text.substr(text.size() - 6) == "# EOF\n");
}

// NaN / underflow / overflow survive the trip into exposition: the registry
// promises explicit auxiliary series instead of folding or dropping them.
TEST(Registry, HistogramEdgeCountsRoundTripThroughExposition) {
  Registry reg;
  Histogram& h = reg.histogram("conf", "confidence", 0.0, 1.0, 4);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(-2.0);  // underflow
  h.record(0.1);
  h.record(9.0);  // overflow
  h.record(9.0);  // overflow

  const std::string text = reg.openmetrics();
  EXPECT_TRUE(contains(text, "conf_underflow 1"));
  EXPECT_TRUE(contains(text, "conf_overflow 2"));
  EXPECT_TRUE(contains(text, "conf_nan 1"));
  // count covers every non-NaN recording, including the out-of-range ones.
  EXPECT_TRUE(contains(text, "conf_count 4"));
  // The +Inf cumulative bucket agrees with count.
  EXPECT_TRUE(contains(text, "le=\"+Inf\"} 4"));

  const std::string json = reg.json();
  EXPECT_TRUE(contains(json, "\"underflow\": 1"));
  EXPECT_TRUE(contains(json, "\"overflow\": 2"));
  EXPECT_TRUE(contains(json, "\"nan\": 1"));
}

TEST(Registry, NonFiniteGaugeBecomesJsonNull) {
  Registry reg;
  reg.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(contains(reg.json(), "null"));
}

TEST(Registry, ClearEmptiesEverything) {
  Registry reg;
  reg.counter("c").inc();
  reg.clear();
  EXPECT_EQ(reg.num_families(), 0U);
  EXPECT_EQ(reg.num_samples(), 0U);
}

TEST(RenderValue, IntegersWithoutDecimalPoint) {
  EXPECT_EQ(render_value(42.0), "42");
  EXPECT_EQ(render_value(0.0), "0");
  EXPECT_EQ(render_value(0.5), "0.5");
}

TEST(RenderLabels, CanonicalSortedForm) {
  EXPECT_EQ(render_labels({}), "");
  EXPECT_EQ(render_labels({{"b", "2"}, {"a", "1"}}),
            render_labels({{"a", "1"}, {"b", "2"}}));
}

// --- ExitProfile export (cdl_eval --metrics-out surface) -------------------

ExitProfile make_profile() {
  ExitProfile profile({"O1", "FC"});
  profile.record(0, 0.9, 100.0, true);
  profile.record(0, 0.8, 100.0, false);
  profile.record(1, 0.6, 300.0, true);
  return profile;
}

TEST(ExitProfileExport, CountersGaugesAndHistogramsLand) {
  Registry reg;
  make_profile().export_to_registry(reg);
  const std::string text = reg.openmetrics();
  EXPECT_TRUE(contains(text, "cdl_samples_total 3"));
  EXPECT_TRUE(contains(text, "cdl_ops_total 500"));
  EXPECT_TRUE(contains(text, "cdl_stage_exits_total{stage=\"O1\"} 2"));
  EXPECT_TRUE(contains(text, "cdl_stage_exits_total{stage=\"FC\"} 1"));
  EXPECT_TRUE(contains(text, "cdl_stage_correct_total{stage=\"O1\"} 1"));
  EXPECT_TRUE(contains(text, "cdl_stage_accuracy{stage=\"O1\"} 0.5"));
  EXPECT_TRUE(contains(text, "cdl_stage_exit_fraction{stage=\"FC\"}"));
  EXPECT_TRUE(contains(text, "cdl_stage_confidence_count{stage=\"O1\"} 2"));
}

TEST(ExitProfileExport, DeterministicAcrossIdenticalRuns) {
  Registry a;
  Registry b;
  make_profile().export_to_registry(a);
  make_profile().export_to_registry(b);
  EXPECT_EQ(a.openmetrics(), b.openmetrics());
  EXPECT_EQ(a.json(), b.json());
}

TEST(ExitProfileExport, ReExportAccumulates) {
  Registry reg;
  const ExitProfile profile = make_profile();
  profile.export_to_registry(reg);
  profile.export_to_registry(reg);
  EXPECT_TRUE(contains(reg.openmetrics(), "cdl_samples_total 6"));
}

TEST(ExitProfileExport, CustomPrefix) {
  Registry reg;
  make_profile().export_to_registry(reg, "run7");
  EXPECT_TRUE(contains(reg.openmetrics(), "run7_samples_total 3"));
}

}  // namespace
}  // namespace cdl::obs
