#include <gtest/gtest.h>

#include "core/tensor.h"

namespace cdl {
namespace {

TEST(Tensor, ZeroInitializedOnConstruction) {
  const Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6U);
  for (float v : t.values()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, FillValueConstruction) {
  const Tensor t(Shape{4}, 2.5F);
  for (float v : t.values()) EXPECT_EQ(v, 2.5F);
}

TEST(Tensor, AdoptDataValidatesSize) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(Tensor, MultiDimensionalAccessIsRowMajor) {
  Tensor t(Shape{2, 3});
  t.at(1, 2) = 7.0F;
  EXPECT_EQ(t[5], 7.0F);

  Tensor u(Shape{2, 3, 4});
  u.at(1, 2, 3) = 9.0F;
  EXPECT_EQ(u[(1 * 3 + 2) * 4 + 3], 9.0F);

  Tensor v(Shape{2, 2, 2, 2});
  v.at(1, 0, 1, 0) = 3.0F;
  EXPECT_EQ(v[10], 3.0F);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{6});
  EXPECT_EQ(r.shape(), Shape{6});
  EXPECT_EQ(r.at(4), 5.0F);
  EXPECT_THROW((void)t.reshaped(Shape{7}), std::invalid_argument);
}

TEST(Tensor, ElementwiseAddSubtract) {
  Tensor a(Shape{3}, std::vector<float>{1, 2, 3});
  const Tensor b(Shape{3}, std::vector<float>{10, 20, 30});
  a += b;
  EXPECT_EQ(a[1], 22.0F);
  a -= b;
  EXPECT_EQ(a[1], 2.0F);
  const Tensor wrong(Shape{4});
  EXPECT_THROW(a += wrong, std::invalid_argument);
  EXPECT_THROW(a -= wrong, std::invalid_argument);
}

TEST(Tensor, ScalarMultiply) {
  Tensor a(Shape{2}, std::vector<float>{3, -4});
  a *= -2.0F;
  EXPECT_EQ(a[0], -6.0F);
  EXPECT_EQ(a[1], 8.0F);
}

TEST(Tensor, Reductions) {
  const Tensor t(Shape{4}, std::vector<float>{1, -5, 3, 3});
  EXPECT_FLOAT_EQ(t.sum(), 2.0F);
  EXPECT_EQ(t.min(), -5.0F);
  EXPECT_EQ(t.max(), 3.0F);
  EXPECT_EQ(t.argmax(), 2U);  // first of the tied maxima
}

TEST(Tensor, EmptyTensorReductionsThrow) {
  const Tensor t;
  EXPECT_THROW((void)t.min(), std::logic_error);
  EXPECT_THROW((void)t.max(), std::logic_error);
  EXPECT_THROW((void)t.argmax(), std::logic_error);
}

TEST(Tensor, CopyIsDeep) {
  Tensor a(Shape{2}, std::vector<float>{1, 2});
  Tensor b = a;
  b[0] = 99.0F;
  EXPECT_EQ(a[0], 1.0F);
}

TEST(Tensor, EqualityComparesShapeAndData) {
  const Tensor a(Shape{2}, std::vector<float>{1, 2});
  const Tensor b(Shape{2}, std::vector<float>{1, 2});
  const Tensor c(Shape{1, 2}, std::vector<float>{1, 2});
  const Tensor d(Shape{2}, std::vector<float>{1, 3});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

class TensorFillSweep : public ::testing::TestWithParam<float> {};

TEST_P(TensorFillSweep, FillThenZero) {
  Tensor t(Shape{3, 3});
  t.fill(GetParam());
  EXPECT_FLOAT_EQ(t.sum(), 9.0F * GetParam());
  t.zero();
  EXPECT_EQ(t.sum(), 0.0F);
}

INSTANTIATE_TEST_SUITE_P(Values, TensorFillSweep,
                         ::testing::Values(-3.5F, 0.0F, 1.0F, 123.25F));

}  // namespace
}  // namespace cdl
