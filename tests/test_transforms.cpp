#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_mnist.h"
#include "data/transforms.h"

namespace cdl {
namespace {

Dataset tiny_dataset() {
  Dataset d;
  d.add(Tensor(Shape{1, 2, 2}, std::vector<float>{0, 1, 0, 1}), 0);
  d.add(Tensor(Shape{1, 2, 2}, std::vector<float>{1, 1, 0, 0}), 1);
  return d;
}

TEST(Transforms, PixelStatsOfKnownData) {
  const PixelStats stats = compute_pixel_stats(tiny_dataset());
  EXPECT_FLOAT_EQ(stats.mean, 0.5F);
  EXPECT_FLOAT_EQ(stats.stddev, 0.5F);
}

TEST(Transforms, PixelStatsEmptyThrows) {
  EXPECT_THROW((void)compute_pixel_stats(Dataset{}), std::invalid_argument);
}

TEST(Transforms, ConstantDataGetsUnitStddev) {
  Dataset d;
  d.add(Tensor(Shape{1, 2, 2}, 0.7F), 0);
  const PixelStats stats = compute_pixel_stats(d);
  EXPECT_FLOAT_EQ(stats.stddev, 1.0F);  // avoids divide-by-zero downstream
}

TEST(Transforms, NormalizeProducesZeroMeanUnitVariance) {
  const SyntheticMnist gen;
  const Dataset raw = gen.generate(50);
  const Dataset norm = normalize(raw, compute_pixel_stats(raw));
  const PixelStats after = compute_pixel_stats(norm);
  EXPECT_NEAR(after.mean, 0.0F, 1e-4F);
  EXPECT_NEAR(after.stddev, 1.0F, 1e-3F);
  // Labels untouched.
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(raw.label(i), norm.label(i));
  }
}

TEST(Transforms, WithNoisePerturbsButClamps) {
  const SyntheticMnist gen;
  const Dataset raw = gen.generate(10);
  Rng rng(3);
  const Dataset noisy = with_noise(raw, 0.3F, rng);
  ASSERT_EQ(noisy.size(), raw.size());
  bool changed = false;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_GE(noisy.image(i).min(), 0.0F);
    EXPECT_LE(noisy.image(i).max(), 1.0F);
    if (noisy.image(i) != raw.image(i)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Transforms, ZeroNoiseKeepsValuesClamped) {
  Dataset d;
  d.add(Tensor(Shape{1, 1, 2}, std::vector<float>{0.3F, 0.9F}), 0);
  Rng rng(1);
  const Dataset out = with_noise(d, 0.0F, rng);
  EXPECT_EQ(out.image(0), d.image(0));
}

TEST(Transforms, TranslateShiftsContent) {
  Tensor img(Shape{1, 3, 3});
  img.at(0, 1, 1) = 1.0F;
  const Tensor right = translate_image(img, 1, 0);
  EXPECT_EQ(right.at(0, 1, 2), 1.0F);
  EXPECT_EQ(right.at(0, 1, 1), 0.0F);
  const Tensor down = translate_image(img, 0, 1);
  EXPECT_EQ(down.at(0, 2, 1), 1.0F);
  const Tensor up_left = translate_image(img, -1, -1);
  EXPECT_EQ(up_left.at(0, 0, 0), 1.0F);
}

TEST(Transforms, TranslateOutOfFrameDropsPixels) {
  Tensor img(Shape{1, 2, 2}, 1.0F);
  const Tensor far = translate_image(img, 5, 0);
  EXPECT_EQ(far.sum(), 0.0F);
}

TEST(Transforms, TranslateRequiresChw) {
  EXPECT_THROW((void)translate_image(Tensor(Shape{4}), 1, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdl
