#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "data/idx_loader.h"
#include "test_util.h"

namespace cdl {
namespace {

namespace fs = std::filesystem;

void write_be32(std::ofstream& os, std::uint32_t v) {
  const unsigned char b[4] = {
      static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
      static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
  os.write(reinterpret_cast<const char*>(b), 4);
}

/// Writes a miniature idx3/idx1 pair: `n` images of rows x cols with pixel
/// value = (image index * 10 + flat pixel index) % 256, labels = index % 10.
void write_idx_pair(const fs::path& img_path, const fs::path& lbl_path,
                    std::uint32_t n, std::uint32_t rows, std::uint32_t cols) {
  std::ofstream img(img_path, std::ios::binary);
  write_be32(img, 0x803);
  write_be32(img, n);
  write_be32(img, rows);
  write_be32(img, cols);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t p = 0; p < rows * cols; ++p) {
      const auto pixel = static_cast<unsigned char>((i * 10 + p) % 256);
      img.write(reinterpret_cast<const char*>(&pixel), 1);
    }
  }
  std::ofstream lbl(lbl_path, std::ios::binary);
  write_be32(lbl, 0x801);
  write_be32(lbl, n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto label = static_cast<unsigned char>(i % 10);
    lbl.write(reinterpret_cast<const char*>(&label), 1);
  }
}

class IdxLoaderTest : public ::testing::Test {
 protected:
  test::TempDir tmp_{"cdl_idx_test"};
  fs::path dir_ = tmp_.dir();
};

TEST_F(IdxLoaderTest, RoundTripSmallFile) {
  write_idx_pair(dir_ / "img", dir_ / "lbl", 12, 4, 5);
  const Dataset d = load_idx((dir_ / "img").string(), (dir_ / "lbl").string());
  ASSERT_EQ(d.size(), 12U);
  EXPECT_EQ(d.image_shape(), (Shape{1, 4, 5}));
  EXPECT_EQ(d.label(11), 1U);
  // Pixel scaling: raw value 13 -> 13/255.
  EXPECT_NEAR(d.image(1)[3], 13.0F / 255.0F, 1e-6F);
}

TEST_F(IdxLoaderTest, MissingFilesThrow) {
  EXPECT_THROW((void)load_idx((dir_ / "absent").string(),
                              (dir_ / "absent2").string()),
               std::runtime_error);
}

TEST_F(IdxLoaderTest, BadMagicRejected) {
  std::ofstream bad(dir_ / "bad", std::ios::binary);
  write_be32(bad, 0xDEADBEEF);
  write_be32(bad, 1);
  write_be32(bad, 2);
  write_be32(bad, 2);
  bad.close();
  write_idx_pair(dir_ / "img", dir_ / "lbl", 1, 2, 2);
  EXPECT_THROW(
      (void)load_idx((dir_ / "bad").string(), (dir_ / "lbl").string()),
      std::runtime_error);
}

TEST_F(IdxLoaderTest, CountMismatchRejected) {
  write_idx_pair(dir_ / "img", dir_ / "lbl", 3, 2, 2);
  write_idx_pair(dir_ / "img2", dir_ / "lbl2", 4, 2, 2);
  EXPECT_THROW(
      (void)load_idx((dir_ / "img").string(), (dir_ / "lbl2").string()),
      std::runtime_error);
}

TEST_F(IdxLoaderTest, TruncatedImageDataRejected) {
  write_idx_pair(dir_ / "img", dir_ / "lbl", 2, 3, 3);
  fs::resize_file(dir_ / "img", 16 + 9);  // header + one image only
  EXPECT_THROW(
      (void)load_idx((dir_ / "img").string(), (dir_ / "lbl").string()),
      std::runtime_error);
}

TEST_F(IdxLoaderTest, MnistSplitUsesCanonicalNames) {
  write_idx_pair(dir_ / "train-images-idx3-ubyte",
                 dir_ / "train-labels-idx1-ubyte", 5, 3, 3);
  write_idx_pair(dir_ / "t10k-images-idx3-ubyte",
                 dir_ / "t10k-labels-idx1-ubyte", 2, 3, 3);
  EXPECT_EQ(load_mnist_split(dir_.string(), MnistSplit::kTrain).size(), 5U);
  EXPECT_EQ(load_mnist_split(dir_.string(), MnistSplit::kTest).size(), 2U);
}

TEST_F(IdxLoaderTest, EnvDirDetection) {
  // Without the canonical files the env var must be ignored.
  setenv("CDL_MNIST_DIR", dir_.string().c_str(), 1);
  EXPECT_FALSE(mnist_dir_from_env().has_value());

  write_idx_pair(dir_ / "train-images-idx3-ubyte",
                 dir_ / "train-labels-idx1-ubyte", 1, 2, 2);
  write_idx_pair(dir_ / "t10k-images-idx3-ubyte",
                 dir_ / "t10k-labels-idx1-ubyte", 1, 2, 2);
  ASSERT_TRUE(mnist_dir_from_env().has_value());
  EXPECT_EQ(*mnist_dir_from_env(), dir_.string());
  unsetenv("CDL_MNIST_DIR");
}

TEST(IdxLoaderEnv, UnsetReturnsNullopt) {
  unsetenv("CDL_MNIST_DIR");
  EXPECT_FALSE(mnist_dir_from_env().has_value());
}

}  // namespace
}  // namespace cdl
