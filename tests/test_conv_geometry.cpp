// Tests for Conv2D's stride/padding geometry: reference-checked forward,
// finite-difference backward, and shape/op arithmetic.
#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::random_tensor;

/// Reference convolution with explicit zero padding and stride, written
/// independently of the production loops.
Tensor reference_conv(const Tensor& input, const Tensor& weights,
                      const Tensor& bias, std::size_t stride,
                      std::size_t padding) {
  const std::size_t in_c = input.shape()[0];
  const std::size_t h = input.shape()[1];
  const std::size_t w = input.shape()[2];
  const std::size_t out_c = weights.shape()[0];
  const std::size_t k = weights.shape()[2];
  const std::size_t oh = (h + 2 * padding - k) / stride + 1;
  const std::size_t ow = (w + 2 * padding - k) / stride + 1;

  const auto at_padded = [&](std::size_t c, long y, long x) -> float {
    const long yy = y - static_cast<long>(padding);
    const long xx = x - static_cast<long>(padding);
    if (yy < 0 || xx < 0 || yy >= static_cast<long>(h) ||
        xx >= static_cast<long>(w)) {
      return 0.0F;
    }
    return input.at(c, static_cast<std::size_t>(yy),
                    static_cast<std::size_t>(xx));
  };

  Tensor out(Shape{out_c, oh, ow});
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < ow; ++x) {
        double acc = bias.at(oc);
        for (std::size_t ic = 0; ic < in_c; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx) {
              acc += static_cast<double>(at_padded(
                         ic, static_cast<long>(y * stride + ky),
                         static_cast<long>(x * stride + kx))) *
                     weights.at(oc, ic, ky, kx);
            }
          }
        }
        out.at(oc, y, x) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

TEST(ConvGeometry, RejectsBadGeometry) {
  EXPECT_THROW(Conv2D(1, 1, 3, ConvAlgo::kDirect, {.stride = 0}),
               std::invalid_argument);
  EXPECT_THROW(Conv2D(1, 1, 3, ConvAlgo::kDirect, {.stride = 1, .padding = 3}),
               std::invalid_argument);
}

TEST(ConvGeometry, OutputShapeArithmetic) {
  // 28x28, k=3, p=1, s=1 -> same 28x28 ("same" padding).
  const Conv2D same(1, 4, 3, ConvAlgo::kDirect, {.stride = 1, .padding = 1});
  EXPECT_EQ(same.output_shape(Shape{1, 28, 28}), (Shape{4, 28, 28}));
  // 28x28, k=3, p=1, s=2 -> 14x14.
  const Conv2D strided(1, 4, 3, ConvAlgo::kDirect, {.stride = 2, .padding = 1});
  EXPECT_EQ(strided.output_shape(Shape{1, 28, 28}), (Shape{4, 14, 14}));
  // Floor behaviour: 7x7, k=3, s=3 -> floor(4/3)+1 = 2.
  const Conv2D floor_case(1, 1, 3, ConvAlgo::kDirect, {.stride = 3});
  EXPECT_EQ(floor_case.output_shape(Shape{1, 7, 7}), (Shape{1, 2, 2}));
}

TEST(ConvGeometry, PaddingLetsTinyInputsThrough) {
  const Conv2D conv(1, 2, 3, ConvAlgo::kDirect, {.stride = 1, .padding = 1});
  EXPECT_NO_THROW((void)conv.output_shape(Shape{1, 2, 2}));
  const Conv2D no_pad(1, 2, 3);
  EXPECT_THROW((void)no_pad.output_shape(Shape{1, 2, 2}),
               std::invalid_argument);
}

using GeoCase = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                           std::size_t, std::size_t>;
// (in_c, out_c, kernel, size, stride, padding)

class ConvGeometrySweep : public ::testing::TestWithParam<GeoCase> {};

TEST_P(ConvGeometrySweep, ForwardMatchesPaddedStridedReference) {
  const auto [in_c, out_c, k, size, stride, padding] = GetParam();
  Rng rng(in_c + out_c * 3 + k * 5 + size * 7 + stride * 11 + padding * 13);
  Conv2D conv(in_c, out_c, k, ConvAlgo::kDirect,
              {.stride = stride, .padding = padding});
  conv.init(rng);
  const Tensor x = random_tensor(Shape{in_c, size, size}, rng);
  const Tensor expected =
      reference_conv(x, conv.weights(), conv.bias(), stride, padding);
  const Tensor actual = conv.forward(x);
  ASSERT_EQ(actual.shape(), expected.shape());
  for (std::size_t i = 0; i < actual.numel(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4F) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(GeoCase{1, 2, 3, 8, 1, 1}, GeoCase{2, 3, 3, 9, 2, 0},
                      GeoCase{1, 4, 5, 12, 2, 2}, GeoCase{3, 2, 2, 6, 2, 1},
                      GeoCase{1, 1, 3, 7, 3, 0}, GeoCase{2, 2, 4, 10, 1, 3}));

TEST(ConvGeometry, Im2colPathHonoursPadding) {
  Rng rng(5);
  Conv2D direct(1, 3, 3, ConvAlgo::kDirect, {.stride = 1, .padding = 1});
  direct.init(rng);
  Conv2D lowered(1, 3, 3, ConvAlgo::kIm2col, {.stride = 1, .padding = 1});
  *lowered.parameters()[0] = direct.weights();
  *lowered.parameters()[1] = direct.bias();
  const Tensor x = random_tensor(Shape{1, 9, 9}, rng);
  const Tensor a = direct.forward(x);
  const Tensor b = lowered.forward(x);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(a[i], b[i], 1e-4F);
}

TEST(ConvGeometry, StridedIm2colFallsBackToDirect) {
  Rng rng(6);
  Conv2D conv(1, 2, 3, ConvAlgo::kIm2col, {.stride = 2});
  conv.init(rng);
  const Tensor x = random_tensor(Shape{1, 9, 9}, rng);
  const Tensor expected =
      reference_conv(x, conv.weights(), conv.bias(), 2, 0);
  const Tensor actual = conv.forward(x);
  for (std::size_t i = 0; i < actual.numel(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-4F);
  }
}

TEST(ConvGeometry, GradientsMatchFiniteDifferenceWithGeometry) {
  Rng rng(7);
  Network net;
  net.add(std::make_unique<Conv2D>(1, 2, 3, ConvAlgo::kDirect,
                                   ConvGeometry{.stride = 2, .padding = 1}));
  net.emplace<Dense>(2 * 4 * 4, 3);  // 8x8, k3 p1 s2 -> 4x4
  net.init(rng);
  const Tensor x = random_tensor(Shape{1, 8, 8}, rng);
  SoftmaxCrossEntropyLoss loss;

  net.zero_gradients();
  const Tensor out = net.forward(x);
  const Tensor grad_in = net.backward(loss.grad(out, 1));
  ASSERT_EQ(grad_in.shape(), x.shape());

  // Parameter gradients.
  const auto params = net.parameters();
  const auto grads = net.gradients();
  const float eps = 1e-3F;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    const std::size_t step = std::max<std::size_t>(1, p.numel() / 5);
    for (std::size_t kparam = 0; kparam < p.numel(); kparam += step) {
      const float saved = p[kparam];
      p[kparam] = saved + eps;
      const float up = loss.value(net.forward(x), 1);
      p[kparam] = saved - eps;
      const float down = loss.value(net.forward(x), 1);
      p[kparam] = saved;
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR((*grads[pi])[kparam], numeric, 2e-2F)
          << "param " << pi << " elem " << kparam;
    }
  }

  // Input gradient.
  Tensor probe = x;
  for (std::size_t i = 0; i < x.numel(); i += 7) {
    const float saved = probe[i];
    probe[i] = saved + eps;
    const float up = loss.value(net.forward(probe), 1);
    probe[i] = saved - eps;
    const float down = loss.value(net.forward(probe), 1);
    probe[i] = saved;
    EXPECT_NEAR(grad_in[i], (up - down) / (2 * eps), 2e-2F) << "input " << i;
  }
}

TEST(ConvGeometry, OpsScaleWithOutputPixels) {
  const Conv2D dense_geo(1, 4, 3, ConvAlgo::kDirect, {.stride = 1, .padding = 1});
  const Conv2D strided(1, 4, 3, ConvAlgo::kDirect, {.stride = 2, .padding = 1});
  const Shape in{1, 28, 28};
  // Stride 2 quarters the output pixels, so MACs drop 4x.
  EXPECT_EQ(dense_geo.forward_ops(in).macs, 4 * strided.forward_ops(in).macs);
}

TEST(ConvGeometry, NameEncodesGeometry) {
  EXPECT_EQ(Conv2D(1, 4, 3).name(), "conv3x3x4");
  EXPECT_EQ(
      Conv2D(1, 4, 3, ConvAlgo::kDirect, {.stride = 2, .padding = 1}).name(),
      "conv3x3x4s2p1");
}

}  // namespace
}  // namespace cdl
