// Tests for the per-layer attribution profiler and the run-report JSON it
// feeds. The load-bearing invariant: with the profiler enabled, the sum of
// the snapshot's ops column reproduces a run's exit-accounted OPS total
// bit-exactly, for any thread count and for both inference drivers.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "nn/conv2d.h"
#include "obs/layer_profile.h"
#include "obs/run_report.h"
#include "test_util.h"

namespace cdl {
namespace {

using obs::LayerProfiler;
using obs::LayerProfileRow;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// An op bundle whose total_compute() is exactly `n` (adds count 1:1).
OpCount adds(std::uint64_t n) {
  OpCount c;
  c.adds = n;
  return c;
}

/// RAII: enables a cleared profiler, disables and clears on exit so the
/// global singleton never leaks state into other tests.
class ScopedProfiler {
 public:
  ScopedProfiler() {
    LayerProfiler::instance().clear();
    LayerProfiler::instance().set_enabled(true);
  }
  ~ScopedProfiler() {
    LayerProfiler::instance().set_enabled(false);
    LayerProfiler::instance().clear();
  }
};

std::uint64_t sum_ops(const std::vector<LayerProfileRow>& rows) {
  std::uint64_t total = 0;
  for (const auto& row : rows) total += row.ops;
  return total;
}

TEST(LayerProfiler, DisabledByDefault) {
  EXPECT_FALSE(LayerProfiler::enabled());
}

TEST(LayerProfiler, RecordAccumulatesByKey) {
  ScopedProfiler scoped;
  LayerProfiler& p = LayerProfiler::instance();
  p.record(0, 0, "conv1", 1, 10, adds(1000), 50);
  p.record(0, 0, "conv1", 1, 5, adds(500), 25);
  p.record(0, 1, "relu", 1, 10, adds(10), 1);
  const auto rows = p.snapshot();
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_EQ(rows[0].name, "conv1");
  EXPECT_EQ(rows[0].calls, 2U);
  EXPECT_EQ(rows[0].samples, 15U);
  EXPECT_EQ(rows[0].ops, 1500U);
  EXPECT_EQ(rows[0].time_ns, 75U);
}

TEST(LayerProfiler, StageLevelRowsSortAfterLayerRows) {
  ScopedProfiler scoped;
  LayerProfiler& p = LayerProfiler::instance();
  p.record(0, obs::kStageLevel, "classifier+gate", 1, 1, adds(10), 1);
  p.record(0, 2, "pool", 1, 1, adds(5), 1);
  p.record(1, 0, "conv", 1, 1, adds(7), 1);
  p.record(obs::kNoStage, obs::kStageLevel, "softmax", 1, 1, adds(3), 1);
  const auto rows = p.snapshot();
  ASSERT_EQ(rows.size(), 4U);
  // kNoStage (-1) sorts first, then stage 0's layers before its stage-level
  // row, then stage 1.
  EXPECT_EQ(rows[0].stage, obs::kNoStage);
  EXPECT_EQ(rows[1].name, "pool");
  EXPECT_EQ(rows[2].name, "classifier+gate");
  EXPECT_EQ(rows[2].layer, obs::kStageLevel);
  EXPECT_EQ(rows[3].stage, 1);
}

TEST(LayerProfiler, ClearDropsRows) {
  ScopedProfiler scoped;
  LayerProfiler& p = LayerProfiler::instance();
  p.record(0, 0, "x", 1, 1, adds(1), 1);
  p.clear();
  EXPECT_TRUE(p.snapshot().empty());
  EXPECT_EQ(p.parallel_for_stats().invocations, 0U);
}

TEST(LayerProfiler, MergesAcrossThreads) {
  ScopedProfiler scoped;
  LayerProfiler& p = LayerProfiler::instance();
  p.record(0, 0, "conv", 1, 1, adds(100), 10);
  std::thread worker([&p] { p.record(0, 0, "conv", 1, 2, adds(200), 20); });
  worker.join();  // happens-before the snapshot below
  const auto rows = p.snapshot();
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_EQ(rows[0].samples, 3U);
  EXPECT_EQ(rows[0].ops, 300U);
  EXPECT_EQ(rows[0].time_ns, 30U);
}

TEST(LayerProfiler, StageScopeNests) {
  EXPECT_EQ(LayerProfiler::current_stage(), obs::kNoStage);
  {
    LayerProfiler::StageScope outer(2);
    EXPECT_EQ(LayerProfiler::current_stage(), 2);
    {
      LayerProfiler::StageScope inner(5);
      EXPECT_EQ(LayerProfiler::current_stage(), 5);
    }
    EXPECT_EQ(LayerProfiler::current_stage(), 2);
  }
  EXPECT_EQ(LayerProfiler::current_stage(), obs::kNoStage);
}

TEST(LayerProfiler, ParallelForStatsAccumulate) {
  ScopedProfiler scoped;
  LayerProfiler& p = LayerProfiler::instance();
  p.record_parallel_for(64, 1000);
  p.record_parallel_for(32, 500);
  const auto stats = p.parallel_for_stats();
  EXPECT_EQ(stats.invocations, 2U);
  EXPECT_EQ(stats.items, 96U);
  EXPECT_EQ(stats.time_ns, 1500U);
}

// --- the attribution invariant over real inference -------------------------

std::uint64_t exit_accounted_ops(const std::vector<ClassificationResult>& rs) {
  std::uint64_t total = 0;
  for (const auto& r : rs) total += r.ops.total_compute();
  return total;
}

/// Runs classify_batch over `inputs` with the profiler on; returns the
/// snapshot rows.
std::vector<LayerProfileRow> profile_batch(const ConditionalNetwork& net,
                                           const std::vector<Tensor>& inputs,
                                           ThreadPool* pool,
                                           std::uint64_t* result_ops) {
  ScopedProfiler scoped;
  const auto results = net.classify_batch(inputs, pool);
  *result_ops = exit_accounted_ops(results);
  return LayerProfiler::instance().snapshot();
}

TEST(LayerProfilerIntegration, BatchedOpsSumBitExactAnyThreadCount) {
  Rng rng(42);
  const ConditionalNetwork net = test::conv_cdln(ConvAlgo::kIm2col, rng);
  std::vector<Tensor> inputs;
  // Enough rows that stage 0 crosses the serial floor and genuinely uses the
  // pool on the threaded run.
  for (std::uint64_t i = 0; i < 48; ++i) {
    inputs.push_back(test::random_image(Shape{1, 12, 12}, 2000 + i));
  }

  std::uint64_t serial_result_ops = 0;
  const auto serial =
      profile_batch(net, inputs, nullptr, &serial_result_ops);
  EXPECT_EQ(sum_ops(serial), serial_result_ops)
      << "serial attribution must reproduce the exit-accounted OPS exactly";

  ThreadPool pool(4);
  std::uint64_t parallel_result_ops = 0;
  const auto parallel =
      profile_batch(net, inputs, &pool, &parallel_result_ops);
  EXPECT_EQ(sum_ops(parallel), parallel_result_ops);
  EXPECT_EQ(sum_ops(serial), sum_ops(parallel))
      << "attributed OPS must be thread-count invariant";

  // The merged rows themselves (not just the total) must agree: same keys,
  // same per-row samples and ops. Time differs, so compare the exact fields.
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].stage, parallel[i].stage) << "row " << i;
    EXPECT_EQ(serial[i].name, parallel[i].name) << "row " << i;
    EXPECT_EQ(serial[i].samples, parallel[i].samples) << "row " << i;
    EXPECT_EQ(serial[i].ops, parallel[i].ops) << "row " << i;
  }
}

TEST(LayerProfilerIntegration, PerImageDriverMatchesBatchedAttribution) {
  Rng rng(7);
  const ConditionalNetwork net = test::conv_cdln(ConvAlgo::kIm2col, rng);
  std::vector<Tensor> inputs;
  for (std::uint64_t i = 0; i < 16; ++i) {
    inputs.push_back(test::random_image(Shape{1, 12, 12}, 3000 + i));
  }

  std::uint64_t batched_ops = 0;
  const auto batched = profile_batch(net, inputs, nullptr, &batched_ops);

  std::uint64_t per_image_ops = 0;
  std::vector<LayerProfileRow> per_image;
  {
    ScopedProfiler scoped;
    for (const Tensor& x : inputs) {
      per_image_ops += net.classify(x).ops.total_compute();
    }
    per_image = LayerProfiler::instance().snapshot();
  }

  EXPECT_EQ(per_image_ops, batched_ops);
  EXPECT_EQ(sum_ops(per_image), per_image_ops);
  EXPECT_EQ(sum_ops(batched), sum_ops(per_image))
      << "both drivers must attribute the same OPS total";
}

TEST(LayerProfilerIntegration, DisabledProfilerRecordsNothing) {
  Rng rng(11);
  const ConditionalNetwork net = test::conv_cdln(ConvAlgo::kIm2col, rng);
  LayerProfiler::instance().clear();
  ASSERT_FALSE(LayerProfiler::enabled());
  (void)net.classify(test::random_image(Shape{1, 12, 12}, 1));
  EXPECT_TRUE(LayerProfiler::instance().snapshot().empty());
}

// --- run-report JSON --------------------------------------------------------

TEST(RunReport, JsonCarriesSchemaTotalsAndRows) {
  obs::RunReport report;
  report.tool = "cdl_eval";
  report.network = "mnist_3c";
  report.threads = 4;
  report.samples = 100;
  report.seed = 42;
  report.total_time_ns = 5000;
  report.total_ops = 300;
  report.layers.push_back({0, 0, "conv1", 1, 2, 100, 200, adds(200), 1500});
  report.layers.push_back({0, obs::kStageLevel, "classifier+gate", 1, 2, 100,
                           100, adds(100), 500});
  report.parallel_for = {3, 96, 1200};

  EXPECT_EQ(report.attributed_ops(), 300U);
  EXPECT_EQ(report.attributed_time_ns(), 2000U);

  const std::string json = report.json();
  EXPECT_TRUE(contains(json, "\"schema\": \"cdl-run-report/1\""));
  EXPECT_TRUE(contains(json, "\"tool\": \"cdl_eval\""));
  EXPECT_TRUE(contains(json, "\"threads\": 4"));
  EXPECT_TRUE(contains(json, "\"total_ops\": 300"));
  EXPECT_TRUE(contains(json, "\"attributed_ops\": 300"));
  EXPECT_TRUE(contains(json, "\"attributed_time_ns\": 2000"));
  EXPECT_TRUE(contains(json, "\"name\": \"classifier+gate\""));
  EXPECT_TRUE(contains(json, "\"invocations\": 3"));
  // No exit profile or registry attached: both must be explicit nulls.
  EXPECT_TRUE(contains(json, "\"exit_profile\": null"));
  EXPECT_TRUE(contains(json, "\"metrics\": null"));
  // Perf defaults to the degraded shape.
  EXPECT_TRUE(contains(json, "\"attempted\": false"));
  EXPECT_TRUE(contains(json, "\"cycles\": null"));
}

TEST(RunReport, JsonEscapesStrings) {
  obs::RunReport report;
  report.tool = "cdl\"eval\\x";
  report.network = "net\nline";
  const std::string json = report.json();
  EXPECT_TRUE(contains(json, "cdl\\\"eval\\\\x"));
  EXPECT_TRUE(contains(json, "net\\nline"));
}

TEST(JsonEscape, ControlCharactersEscaped) {
  EXPECT_EQ(obs::json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(obs::json_escape("plain"), "plain");
}

}  // namespace
}  // namespace cdl
