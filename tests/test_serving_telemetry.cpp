// TelemetrySnapshotter: header/interval/rotation semantics under a
// ManualClock, the engine's live JSONL samples and forced final snapshot,
// and (when tracing is compiled in) the full six-phase request-lifecycle
// span chain with phase durations summing exactly to end-to-end.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/telemetry.h"
#include "test_util.h"

namespace cdl::serve {
namespace {

using cdl::test::conv_cdln;
using cdl::test::random_image;

const Shape kImageShape{1, 12, 12};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TelemetryConfig file_config(const std::string& path,
                            std::uint64_t interval_ns = 1'000'000'000) {
  TelemetryConfig config;
  config.path = path;
  config.interval_ns = interval_ns;
  return config;
}

TEST(TelemetrySnapshotter, CtorValidatesPathAndClock) {
  ManualClock clock(0);
  EXPECT_THROW(TelemetrySnapshotter(TelemetryConfig{}, &clock),
               std::invalid_argument)
      << "empty path means disabled; constructing is a caller bug";
  cdl::test::TempDir tmp("cdl_telemetry_ctor_test");
  EXPECT_THROW(
      TelemetrySnapshotter(file_config(tmp.path("t.jsonl")), nullptr),
      std::invalid_argument);
}

TEST(TelemetrySnapshotter, WritesHeaderLineOnOpen) {
  cdl::test::TempDir tmp("cdl_telemetry_header_test");
  ManualClock clock(500);
  const TelemetrySnapshotter snap(file_config(tmp.path("t.jsonl")), &clock,
                                  ",\"models\":[\"m\"]");
  const std::vector<std::string> lines = read_lines(tmp.path("t.jsonl"));
  ASSERT_EQ(lines.size(), 1U);
  EXPECT_TRUE(contains(lines[0], "\"schema\":\"cdl-serve-telemetry/1\""))
      << lines[0];
  EXPECT_TRUE(contains(lines[0], "\"event\":\"start\""));
  EXPECT_TRUE(contains(lines[0], "\"t_ns\":500"));
  EXPECT_TRUE(contains(lines[0], "\"interval_ns\":1000000000"));
  EXPECT_TRUE(contains(lines[0], "\"models\":[\"m\"]"));
  EXPECT_EQ(snap.samples(), 0U);
}

TEST(TelemetrySnapshotter, IntervalGatesSamplesOnManualClock) {
  cdl::test::TempDir tmp("cdl_telemetry_interval_test");
  ManualClock clock(0);
  TelemetrySnapshotter snap(file_config(tmp.path("t.jsonl"), 1'000'000),
                            &clock);
  const auto body = [](std::ostream& os) { os << ",\"x\":1"; };
  EXPECT_FALSE(snap.due()) << "first sample is due one interval after start";
  EXPECT_FALSE(snap.sample(body));
  clock.advance(999'999);
  EXPECT_FALSE(snap.sample(body));
  clock.advance(1);  // exactly one interval
  EXPECT_TRUE(snap.due());
  EXPECT_TRUE(snap.sample(body));
  EXPECT_EQ(snap.samples(), 1U);
  EXPECT_EQ(snap.next_due_ns(), 2'000'000U);
  EXPECT_FALSE(snap.sample(body)) << "interval re-arms after each sample";

  const std::vector<std::string> lines = read_lines(tmp.path("t.jsonl"));
  ASSERT_EQ(lines.size(), 2U);
  EXPECT_TRUE(contains(lines[1], "\"event\":\"sample\""));
  EXPECT_TRUE(contains(lines[1], "\"t_ns\":1000000"));
  EXPECT_TRUE(contains(lines[1], ",\"x\":1"));
  EXPECT_EQ(lines[1].back(), '}') << "body is spliced inside the object";
}

TEST(TelemetrySnapshotter, ForceBypassesTheInterval) {
  cdl::test::TempDir tmp("cdl_telemetry_force_test");
  ManualClock clock(0);
  TelemetrySnapshotter snap(file_config(tmp.path("t.jsonl")), &clock);
  const auto body = [](std::ostream& os) { os << ",\"x\":2"; };
  EXPECT_TRUE(snap.sample(body, /*force=*/true));
  EXPECT_TRUE(snap.sample(body, /*force=*/true)) << "force always samples";
  EXPECT_EQ(snap.samples(), 2U);
  EXPECT_EQ(read_lines(tmp.path("t.jsonl")).size(), 3U);
}

TEST(TelemetrySnapshotter, RotatesBySizeAndRewritesHeader) {
  cdl::test::TempDir tmp("cdl_telemetry_rotate_test");
  ManualClock clock(0);
  TelemetryConfig config = file_config(tmp.path("t.jsonl"));
  config.rotate_bytes = 600;  // room for the header plus a few samples
  TelemetrySnapshotter snap(config, &clock);
  const auto body = [](std::ostream& os) {
    os << ",\"pad\":\"" << std::string(100, 'x') << "\"";
  };
  while (snap.rotations() == 0) {
    ASSERT_TRUE(snap.sample(body, /*force=*/true));
    ASSERT_LT(snap.samples(), 64U) << "rotation must kick in";
  }
  EXPECT_TRUE(std::filesystem::exists(tmp.path("t.jsonl.1")));
  const std::vector<std::string> fresh = read_lines(tmp.path("t.jsonl"));
  ASSERT_FALSE(fresh.empty());
  EXPECT_TRUE(contains(fresh[0], "\"event\":\"start\""))
      << "rotated file re-announces the stream";
  const std::vector<std::string> old = read_lines(tmp.path("t.jsonl.1"));
  ASSERT_FALSE(old.empty());
  EXPECT_TRUE(contains(old[0], "\"event\":\"start\""));
  EXPECT_GT(old.size(), 1U) << "rotation happens only after real samples";
}

ModelRegistry one_model() {
  Rng rng(7);
  ModelRegistry models;
  models.add("cascade", conv_cdln(ConvAlgo::kIm2col, rng));
  return models;
}

TEST(ServingTelemetry, EngineEmitsSamplesAndForcedFinalSnapshot) {
  cdl::test::TempDir tmp("cdl_serving_telemetry_test");
  const std::string path = tmp.path("telemetry.jsonl");
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 2;
  config.telemetry = file_config(path, 1'000'000'000);
  ServingEngine engine(one_model(), config);
  ASSERT_NE(engine.telemetry(), nullptr);

  std::vector<Submitted> pending;
  for (std::uint64_t i = 0; i < 4; ++i) {
    pending.push_back(engine.submit(0, random_image(kImageShape, 10 + i)));
    ASSERT_EQ(pending.back().status, SubmitStatus::kAccepted);
    engine.run_once();
  }
  EXPECT_EQ(engine.telemetry()->samples(), 0U)
      << "nothing due inside the first interval";
  clock.advance(1'000'000'000);
  engine.run_once();  // the pump runs on every turn of the engine
  EXPECT_EQ(engine.telemetry()->samples(), 1U);
  engine.shutdown();  // forced final snapshot regardless of the interval
  EXPECT_EQ(engine.telemetry()->samples(), 2U);
  for (Submitted& s : pending) {
    EXPECT_EQ(s.response.get().status, RequestStatus::kOk);
  }

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3U);
  EXPECT_TRUE(contains(lines[0], "\"event\":\"start\""));
  EXPECT_TRUE(contains(lines[0], "\"models\":[\"cascade\"]"));
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_TRUE(contains(lines[i], "\"event\":\"sample\"")) << lines[i];
    EXPECT_TRUE(contains(lines[i], "\"queue_depth\":"));
    EXPECT_TRUE(contains(lines[i], "\"in_flight\":"));
    EXPECT_TRUE(contains(lines[i], "\"model\":\"cascade\""));
    EXPECT_TRUE(contains(lines[i], "\"phase_ms\":"));
    EXPECT_TRUE(contains(lines[i], "\"drift\":"));
  }
  // The final snapshot carries the fully drained counters.
  EXPECT_TRUE(contains(lines.back(), "\"submitted\":4"));
  EXPECT_TRUE(contains(lines.back(), "\"completed\":4"));
  EXPECT_TRUE(contains(lines.back(), "\"queue_depth\":0"));
  EXPECT_TRUE(contains(lines.back(), "\"in_flight\":0"));
}

#ifndef CDL_TRACE_DISABLED

/// Enables the process-wide tracer for one test and restores the disabled,
/// empty state however the test exits.
struct TracerGuard {
  TracerGuard() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  ~TracerGuard() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

TEST(ServingTelemetry, TracesSixPhaseLifecycleChainPerRequest) {
  TracerGuard guard;
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 2;
  ServingEngine engine(one_model(), config);
  Submitted a = engine.submit(0, random_image(kImageShape, 21));
  Submitted b = engine.submit(0, random_image(kImageShape, 22));
  ASSERT_EQ(a.status, SubmitStatus::kAccepted);
  ASSERT_EQ(b.status, SubmitStatus::kAccepted);
  EXPECT_EQ(engine.run_once(), 2U);
  engine.shutdown();
  ASSERT_EQ(a.response.get().status, RequestStatus::kOk);
  ASSERT_EQ(b.response.get().status, RequestStatus::kOk);

  const std::vector<obs::Tracer::TaggedEvent> events =
      obs::Tracer::instance().collect();
  const auto count = [&](const std::string& name) {
    std::size_t n = 0;
    for (const obs::Tracer::TaggedEvent& e : events) {
      if (name == e.event.name) ++n;
    }
    return n;
  };
  EXPECT_EQ(count("serve/enqueue"), 2U);
  EXPECT_EQ(count("serve/queue_wait"), 2U);
  EXPECT_EQ(count("serve/batch_wait"), 2U);
  EXPECT_EQ(count("serve/batch_form"), 1U) << "one batch of two";
  EXPECT_EQ(count("serve/execute"), 2U);
  EXPECT_EQ(count("serve/respond"), 2U);

  // Per request (ids 1 and 2): the three spans chain back-to-back — each
  // starts where the previous ended — so their durations sum exactly to
  // enqueue -> execute-end. That is the "phases sum to end-to-end" contract
  // in trace form.
  for (std::int32_t id = 1; id <= 2; ++id) {
    const obs::TraceEvent* queue_wait = nullptr;
    const obs::TraceEvent* batch_wait = nullptr;
    const obs::TraceEvent* execute = nullptr;
    for (const obs::Tracer::TaggedEvent& e : events) {
      if (e.event.id != id) continue;
      const std::string name = e.event.name;
      if (name == "serve/queue_wait") queue_wait = &e.event;
      if (name == "serve/batch_wait") batch_wait = &e.event;
      if (name == "serve/execute") execute = &e.event;
    }
    ASSERT_NE(queue_wait, nullptr) << "request " << id;
    ASSERT_NE(batch_wait, nullptr) << "request " << id;
    ASSERT_NE(execute, nullptr) << "request " << id;
    EXPECT_EQ(queue_wait->start_ns + queue_wait->dur_ns,
              batch_wait->start_ns);
    EXPECT_EQ(batch_wait->start_ns + batch_wait->dur_ns, execute->start_ns);
    EXPECT_EQ(queue_wait->dur_ns + batch_wait->dur_ns + execute->dur_ns,
              execute->start_ns + execute->dur_ns - queue_wait->start_ns);
  }
  const obs::TraceEvent* batch_form = nullptr;
  for (const obs::Tracer::TaggedEvent& e : events) {
    if (std::string("serve/batch_form") == e.event.name) {
      batch_form = &e.event;
    }
  }
  ASSERT_NE(batch_form, nullptr);
  EXPECT_EQ(batch_form->id, 2) << "instant id carries the batch size";
}

#endif  // CDL_TRACE_DISABLED

}  // namespace
}  // namespace cdl::serve
