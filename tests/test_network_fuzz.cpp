// Randomized architecture fuzzing: builds random (but valid) layer stacks
// and checks structural invariants — shape chaining, forward/backward shape
// agreement, op accounting consistency, serialization round-trips, and
// finite outputs — across many seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "core/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/pool2d.h"
#include "nn/serialize.h"

namespace cdl {
namespace {

/// Builds a random conv stack on a `size`x`size` single-channel input:
/// alternating conv/activation/pool blocks while space remains, finished by
/// a dense head. Always valid by construction.
Network random_network(std::uint64_t seed, std::size_t input_size,
                       std::size_t num_classes) {
  Rng rng(seed);
  Network net;
  std::size_t channels = 1;
  std::size_t extent = input_size;

  const std::size_t blocks = 1 + rng.index(3);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t kernel = 2 + rng.index(3);  // 2..4
    if (extent < kernel + 1) break;
    const std::size_t maps = 2 + rng.index(6);
    net.emplace<Conv2D>(channels, maps, kernel,
                        rng.coin(0.5F) ? ConvAlgo::kDirect : ConvAlgo::kIm2col);
    channels = maps;
    extent = extent - kernel + 1;

    switch (rng.index(3)) {
      case 0:
        net.emplace<Sigmoid>();
        break;
      case 1:
        net.emplace<Tanh>();
        break;
      default:
        net.emplace<ReLU>();
        break;
    }

    if (extent % 2 == 0 && extent >= 4 && rng.coin(0.8F)) {
      net.emplace<Pool2D>(2, rng.coin(0.5F) ? PoolMode::kMax
                                            : PoolMode::kAverage);
      extent /= 2;
    }
  }
  net.emplace<Dense>(channels * extent * extent, num_classes);
  Rng init_rng(seed ^ 0xABCDEF);
  net.init(init_rng);
  return net;
}

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, StructuralInvariantsHold) {
  const std::uint64_t seed = GetParam();
  const std::size_t input_size = 12 + (seed % 3) * 4;  // 12, 16, 20
  const std::size_t classes = 3 + seed % 5;
  Network net = random_network(seed, input_size, classes);
  const Shape in{1, input_size, input_size};

  // Shape chain is consistent with actual execution.
  Rng data_rng(seed + 1);
  Tensor x(in);
  for (float& v : x.values()) v = data_rng.uniform(0.0F, 1.0F);
  const Tensor out = net.forward(x);
  EXPECT_EQ(out.shape(), net.output_shape(in));
  EXPECT_EQ(out.numel(), classes);
  for (float v : out.values()) EXPECT_TRUE(std::isfinite(v));

  // Backward produces an input-shaped, finite gradient.
  SoftmaxCrossEntropyLoss loss;
  const Tensor grad_in = net.backward(loss.grad(out, seed % classes));
  EXPECT_EQ(grad_in.shape(), in);
  for (float v : grad_in.values()) EXPECT_TRUE(std::isfinite(v));

  // Layer-wise op accounting sums to the network total and is non-zero.
  OpCount sum;
  for (const OpCount& ops : net.layer_ops(in)) sum += ops;
  EXPECT_EQ(sum, net.forward_ops(in));
  EXPECT_GT(sum.macs, 0U);

  // Serialization round-trips to identical predictions.
  std::stringstream buf;
  save_parameters(buf, net.parameters());
  Network copy = random_network(seed, input_size, classes);
  load_parameters(buf, copy.parameters());
  EXPECT_EQ(copy.forward(x), net.forward(x));

  // One SGD step changes parameters but keeps outputs finite.
  net.zero_gradients();
  const Tensor out2 = net.forward(x);
  net.backward(loss.grad(out2, (seed + 1) % classes));
  SgdOptimizer opt({.learning_rate = 0.05F});
  opt.step(net);
  // Bind the result: iterating `forward(x).values()` directly would walk a
  // span into a destroyed temporary (range-for does not extend the inner
  // temporary's lifetime before C++23).
  const Tensor stepped = net.forward(x);
  for (float v : stepped.values()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz,
                         ::testing::Range<std::uint64_t>(0, 24));

TEST(NetworkFuzz, DistinctSeedsProduceDistinctArchitectures) {
  std::set<std::string> summaries;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    summaries.insert(random_network(seed, 16, 4).summary());
  }
  EXPECT_GT(summaries.size(), 8U);
}

}  // namespace
}  // namespace cdl
