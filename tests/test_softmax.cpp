#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/softmax.h"

namespace cdl {
namespace {

TEST(Softmax, UniformLogitsGiveUniformDistribution) {
  const Tensor p = softmax(Tensor(Shape{4}, 3.0F));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(p[i], 0.25F, 1e-6F);
}

TEST(Softmax, EmptyInputThrows) {
  EXPECT_THROW((void)softmax(Tensor{}), std::invalid_argument);
}

TEST(Softmax, ShiftInvariance) {
  const Tensor a(Shape{3}, std::vector<float>{1.0F, 2.0F, 3.0F});
  Tensor b = a;
  for (float& v : b.values()) v += 100.0F;
  const Tensor pa = softmax(a);
  const Tensor pb = softmax(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(pa[i], pb[i], 1e-6F);
}

TEST(Softmax, NumericallyStableAtExtremes) {
  const Tensor p =
      softmax(Tensor(Shape{3}, std::vector<float>{1000.0F, -1000.0F, 0.0F}));
  EXPECT_NEAR(p[0], 1.0F, 1e-6F);
  EXPECT_NEAR(p[1], 0.0F, 1e-6F);
  EXPECT_FALSE(std::isnan(p[2]));
}

TEST(Softmax, PreservesArgmaxOrder) {
  Rng rng(5);
  Tensor logits(Shape{10});
  for (float& v : logits.values()) v = rng.uniform(-4.0F, 4.0F);
  const Tensor p = softmax(logits);
  EXPECT_EQ(p.argmax(), logits.argmax());
}

class SoftmaxSimplexSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SoftmaxSimplexSweep, OutputIsProbabilitySimplex) {
  Rng rng(100 + GetParam());
  Tensor logits(Shape{GetParam()});
  for (float& v : logits.values()) v = rng.uniform(-10.0F, 10.0F);
  const Tensor p = softmax(logits);
  float total = 0.0F;
  for (std::size_t i = 0; i < p.numel(); ++i) {
    EXPECT_GE(p[i], 0.0F);
    EXPECT_LE(p[i], 1.0F);
    total += p[i];
  }
  EXPECT_NEAR(total, 1.0F, 1e-5F);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SoftmaxSimplexSweep,
                         ::testing::Values(1, 2, 10, 100));

TEST(Confidence, MaxProbability) {
  const Tensor p(Shape{3}, std::vector<float>{0.2F, 0.7F, 0.1F});
  EXPECT_FLOAT_EQ(max_probability(p), 0.7F);
}

TEST(Confidence, MarginIsTopTwoDifference) {
  const Tensor p(Shape{4}, std::vector<float>{0.1F, 0.6F, 0.25F, 0.05F});
  EXPECT_NEAR(probability_margin(p), 0.35F, 1e-6F);
}

TEST(Confidence, MarginSingleClass) {
  const Tensor p(Shape{1}, std::vector<float>{0.9F});
  EXPECT_FLOAT_EQ(probability_margin(p), 0.9F);
}

TEST(Confidence, EntropyOneHotIsOne) {
  const Tensor p(Shape{4}, std::vector<float>{0.0F, 1.0F, 0.0F, 0.0F});
  EXPECT_NEAR(entropy_confidence(p), 1.0F, 1e-5F);
}

TEST(Confidence, EntropyUniformIsZero) {
  const Tensor p(Shape{4}, 0.25F);
  EXPECT_NEAR(entropy_confidence(p), 0.0F, 1e-5F);
}

TEST(Confidence, EntropyHandlesUnnormalizedScores) {
  // LMS stages emit clamped scores; entropy must normalize internally.
  const Tensor sharp(Shape{3}, std::vector<float>{0.9F, 0.01F, 0.01F});
  const Tensor flat(Shape{3}, std::vector<float>{0.4F, 0.4F, 0.4F});
  EXPECT_GT(entropy_confidence(sharp), entropy_confidence(flat));
  EXPECT_NEAR(entropy_confidence(flat), 0.0F, 1e-5F);
}

TEST(Confidence, EntropyAllZeroScoresIsZero) {
  EXPECT_EQ(entropy_confidence(Tensor(Shape{3})), 0.0F);
}

TEST(Softmax, OpsAccountForEveryPhase) {
  const OpCount ops = softmax_ops(10);
  EXPECT_EQ(ops.activations, 10U);  // exponentials
  EXPECT_EQ(ops.divides, 10U);
  EXPECT_EQ(ops.compares, 9U);
  EXPECT_GT(ops.total_compute(), 0U);
}

}  // namespace
}  // namespace cdl
