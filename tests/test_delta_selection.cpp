#include <gtest/gtest.h>

#include "cdl/delta_selection.h"
#include "core/rng.h"
#include "nn/activations.h"
#include "nn/dense.h"

namespace cdl {
namespace {

ConditionalNetwork tiny_cdln(Rng& rng) {
  Network base;
  base.emplace<Dense>(3, 5);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(5, 2);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{3});
  net.attach_classifier(2, LcTrainingRule::kLms, rng);
  return net;
}

Dataset two_blob_data(std::size_t n, Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = i % 2;
    Tensor x(Shape{3});
    x[0] = (cls == 0 ? 0.2F : 0.8F) + rng.uniform(-0.05F, 0.05F);
    x[1] = (cls == 0 ? 0.8F : 0.2F) + rng.uniform(-0.05F, 0.05F);
    x[2] = 0.5F;
    d.add(std::move(x), cls);
  }
  return d;
}

TEST(DeltaSelection, RejectsEmptyInputs) {
  Rng rng(1);
  ConditionalNetwork net = tiny_cdln(rng);
  EXPECT_THROW((void)select_delta(net, Dataset{}), std::invalid_argument);
  const Dataset data = two_blob_data(4, rng);
  EXPECT_THROW((void)select_delta(net, data, std::span<const float>{}),
               std::invalid_argument);
}

TEST(DeltaSelection, SweepCoversAllCandidatesInOrder) {
  Rng rng(2);
  ConditionalNetwork net = tiny_cdln(rng);
  const Dataset data = two_blob_data(20, rng);
  const std::vector<float> grid{0.2F, 0.5F, 0.8F};
  const DeltaSelection sel = select_delta(net, data, grid);
  ASSERT_EQ(sel.sweep.size(), 3U);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(sel.sweep[i].delta, grid[i]);
    EXPECT_GE(sel.sweep[i].accuracy, 0.0);
    EXPECT_LE(sel.sweep[i].accuracy, 1.0);
    EXPECT_GT(sel.sweep[i].avg_ops, 0.0);
  }
}

TEST(DeltaSelection, BestIsMostAccurateCandidate) {
  Rng rng(3);
  ConditionalNetwork net = tiny_cdln(rng);
  // Train the stage classifier so accuracy genuinely varies with delta.
  const Dataset train = two_blob_data(200, rng);
  for (int e = 0; e < 20; ++e) {
    for (std::size_t i = 0; i < train.size(); ++i) {
      const Tensor f = net.stage_features(train.image(i), 0);
      (void)net.classifier(0).train_step(f, train.label(i), 0.8F);
    }
  }
  const Dataset val = two_blob_data(80, rng);
  const DeltaSelection sel = select_delta(net, val);
  for (const DeltaCandidate& c : sel.sweep) {
    EXPECT_LE(c.accuracy, sel.best.accuracy);
  }
  // The network is left configured at the winning delta.
  EXPECT_FLOAT_EQ(net.activation_module().delta(), sel.best.delta);
}

TEST(DeltaSelection, TieBreaksTowardFewerOps) {
  Rng rng(4);
  ConditionalNetwork net = tiny_cdln(rng);
  // A rigged always-confident classifier: accuracy identical at every delta
  // below 1, so op cost must decide.
  net.classifier(0).parameters()[0]->zero();
  net.classifier(0).parameters()[1]->zero();
  (*net.classifier(0).parameters()[1])[0] = 1.0F;

  Dataset data;
  for (int i = 0; i < 10; ++i) data.add(Tensor(Shape{3}, 0.5F), 0);

  const std::vector<float> grid{0.5F, 2.0F};  // exit-at-O1 vs always-FC
  const DeltaSelection sel = select_delta(net, data, grid);
  EXPECT_FLOAT_EQ(sel.best.delta, 0.5F);  // same accuracy, cheaper
  ASSERT_EQ(sel.sweep.size(), 2U);
  EXPECT_EQ(sel.sweep[0].accuracy, sel.sweep[1].accuracy);
  EXPECT_LT(sel.sweep[0].avg_ops, sel.sweep[1].avg_ops);
}

TEST(StageDeltaSelection, RequiresAtLeastOneStage) {
  Rng rng(5);
  Network base;
  base.emplace<Dense>(3, 2);
  ConditionalNetwork net(std::move(base), Shape{3});
  const Dataset data = two_blob_data(4, rng);
  EXPECT_THROW((void)select_stage_deltas(net, data), std::invalid_argument);
}

TEST(StageDeltaSelection, NeverWorseThanGlobalSelection) {
  Rng rng(6);
  ConditionalNetwork net = tiny_cdln(rng);
  const Dataset train = two_blob_data(150, rng);
  for (int e = 0; e < 15; ++e) {
    for (std::size_t i = 0; i < train.size(); ++i) {
      const Tensor f = net.stage_features(train.image(i), 0);
      (void)net.classifier(0).train_step(f, train.label(i), 0.8F);
    }
  }
  const Dataset val = two_blob_data(60, rng);
  const DeltaSelection global = select_delta(net, val);
  const StageDeltaSelection staged = select_stage_deltas(net, val);
  // Coordinate descent starts from the global optimum, so on the
  // validation set it can only match or improve it.
  EXPECT_GE(staged.accuracy, global.best.accuracy);
  ASSERT_EQ(staged.stage_deltas.size(), 1U);
  // The network is left configured with the chosen override.
  EXPECT_FLOAT_EQ(net.stage_delta(0), staged.stage_deltas[0]);
}

TEST(DeltaSelection, DefaultGridIsSortedAndInRange) {
  const std::vector<float> grid = default_delta_grid();
  ASSERT_GE(grid.size(), 5U);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_LT(grid[i - 1], grid[i]);
  }
  EXPECT_GT(grid.front(), 0.0F);
  EXPECT_LT(grid.back(), 1.0F);
}

}  // namespace
}  // namespace cdl
