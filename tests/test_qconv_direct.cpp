// nn/qconv_direct: the direct (im2col-free) u8 x s8 convolution must equal
// both its scalar reference and the byte-im2col + packed-GEMM route bit for
// bit — all-integer arithmetic, so "close" is not a thing. Shapes cover the
// supported envelope (c * k^2 <= 32 taps, ow >= 8) including odd kernels
// (zero-paired last tap), ow == 8 (tail block == first block) and ow % 8 != 0
// (overlapped tail). Inputs are allocated with kQconvSlackBytes of readable
// slack, as the kernel contract requires.
#include "nn/qconv_direct.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "nn/qgemm.h"

namespace cdl {
namespace {

/// Deterministic LCG so failures reproduce; values span the full u8 range
/// and the full legal weight range [-kQgemmWeightMax, kQgemmWeightMax].
struct Lcg {
  std::uint64_t state = 0x2545F4914F6CDD1DULL;
  std::uint32_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(state >> 33);
  }
};

struct Case {
  std::size_t c, h, w, kernel, out_c;
};

void run_case(const Case& cs) {
  const std::size_t oh = cs.h - cs.kernel + 1;
  const std::size_t ow = cs.w - cs.kernel + 1;
  ASSERT_TRUE(qconv_direct_supported(cs.c, cs.kernel, ow))
      << cs.c << "x" << cs.h << "x" << cs.w << " k" << cs.kernel;
  const std::size_t wsz = cs.c * cs.kernel * cs.kernel;

  Lcg rng;
  std::vector<std::uint8_t> image(cs.c * cs.h * cs.w + kQconvSlackBytes);
  for (auto& v : image) v = static_cast<std::uint8_t>(rng.next());
  std::vector<std::int8_t> weights(cs.out_c * wsz);
  for (auto& v : weights) {
    v = static_cast<std::int8_t>(
        static_cast<std::int32_t>(rng.next() % 127U) - kQgemmWeightMax);
  }

  const std::size_t out_elems = cs.out_c * oh * ow;
  std::vector<std::int32_t> got(out_elems, -1);
  std::vector<std::int32_t> ref(out_elems, -2);
  qconv_direct(image.data(), cs.c, cs.h, cs.w, cs.kernel, weights.data(),
               cs.out_c, got.data());
  qconv_direct_reference(image.data(), cs.c, cs.h, cs.w, cs.kernel,
                         weights.data(), cs.out_c, ref.data());
  ASSERT_EQ(0,
            std::memcmp(got.data(), ref.data(),
                        out_elems * sizeof(std::int32_t)))
      << "direct vs reference, " << cs.c << "x" << cs.h << "x" << cs.w << " k"
      << cs.kernel << " oc" << cs.out_c << " (tier " << qconv_dispatch_tier()
      << ")";

  // Cross-check against the im2col + packed-GEMM route the cascade used
  // before: same integers in, so the s32 accumulators must be identical.
  const std::size_t pixels = oh * ow;
  std::vector<std::int8_t> packed_a(qgemm_packed_a_bytes(cs.out_c, wsz));
  qgemm_pack_a(cs.out_c, wsz, weights.data(), packed_a.data());
  std::vector<std::uint8_t> packed_b(qgemm_packed_b_bytes(wsz, pixels));
  const std::size_t panels = (pixels + kQgemmNr - 1) / kQgemmNr;
  qgemm_pack_b_im2col(image.data(), 1, cs.c, cs.h, cs.w, cs.kernel,
                      packed_b.data(), 0, panels);
  std::vector<std::int32_t> gemm_out(out_elems, -3);
  qgemm_packed({cs.out_c, wsz, pixels}, packed_a.data(), packed_b.data(),
               gemm_out.data(), nullptr);
  ASSERT_EQ(0,
            std::memcmp(got.data(), gemm_out.data(),
                        out_elems * sizeof(std::int32_t)))
      << "direct vs im2col+GEMM, " << cs.c << "x" << cs.h << "x" << cs.w
      << " k" << cs.kernel << " oc" << cs.out_c;
}

TEST(QconvDirect, MatchesReferenceAndGemmAcrossShapes) {
  const Case cases[] = {
      {1, 28, 28, 5, 6},   // MNIST stage-0 geometry
      {1, 32, 32, 5, 6},   // CIFAR-sized plane
      {1, 12, 12, 5, 12},  // small plane, ow == 8 exactly
      {1, 16, 16, 3, 7},   // odd tap count per row, ow % 8 != 0
      {1, 9, 9, 2, 4},     // even kernel, ow == 8
      {1, 15, 31, 1, 3},   // 1x1 kernel, non-square
      {2, 14, 14, 3, 5},   // two input channels (18 taps)
      {2, 11, 19, 2, 8},   // two channels, even kernel
      {32, 4, 11, 1, 2},   // tap budget boundary: 32 * 1 * 1 == 32 taps
  };
  for (const Case& cs : cases) run_case(cs);
}

TEST(QconvDirect, SupportedGate) {
  // Tap budget: c * k^2 <= 32.
  EXPECT_TRUE(qconv_direct_supported(1, 5, 24));   // 25 taps
  EXPECT_FALSE(qconv_direct_supported(2, 5, 24));  // 50 taps
  EXPECT_TRUE(qconv_direct_supported(3, 3, 24));   // 27 taps
  EXPECT_FALSE(qconv_direct_supported(4, 3, 24));  // 36 taps
  // Row width: at least one full 8-pixel block.
  EXPECT_TRUE(qconv_direct_supported(1, 5, 8));
  EXPECT_FALSE(qconv_direct_supported(1, 5, 7));
  // Degenerate geometry.
  EXPECT_FALSE(qconv_direct_supported(0, 5, 24));
  EXPECT_FALSE(qconv_direct_supported(1, 0, 24));
}

TEST(QconvDirect, ProfitabilityGateTracksGemmTier) {
  // Pure dispatch policy (both routes are bit-identical), but it must be
  // deterministic per host: direct always wins against non-VNNI GEMMs (same
  // maddubs arithmetic, no pack step); on VNNI hosts the packed GEMM's
  // doubled MAC rate wins back everything but tiny tap sets.
  if (qgemm_tier() == QgemmTier::kAvx512Vnni) {
    EXPECT_TRUE(qconv_direct_profitable(9));    // 3x3 c=1 still wins
    EXPECT_FALSE(qconv_direct_profitable(25));  // 5x5 c=1 loses to vpdpbusd
  } else {
    EXPECT_TRUE(qconv_direct_profitable(9));
    EXPECT_TRUE(qconv_direct_profitable(25));
  }
}

TEST(QconvDirect, DispatchTierIsKnown) {
  const std::string tier = qconv_dispatch_tier();
  EXPECT_TRUE(tier == "scalar" || tier == "avx2-maddubs") << tier;
}

TEST(QconvDirect, ExtremeWeightsDoNotSaturate) {
  // All-ones image at 255 with all weights at +/-kQgemmWeightMax maximizes
  // the s16 pair sums the AVX2 tier forms; the result must still equal the
  // plain s32 reference (the saturation-safety argument in the header).
  const Case cs{1, 12, 20, 5, 2};
  const std::size_t oh = cs.h - cs.kernel + 1;
  const std::size_t ow = cs.w - cs.kernel + 1;
  const std::size_t wsz = cs.kernel * cs.kernel;
  std::vector<std::uint8_t> image(cs.h * cs.w + kQconvSlackBytes, 255);
  std::vector<std::int8_t> weights(cs.out_c * wsz);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] =
        static_cast<std::int8_t>(i % 2 == 0 ? kQgemmWeightMax
                                            : -kQgemmWeightMax);
  }
  std::vector<std::int32_t> got(cs.out_c * oh * ow);
  std::vector<std::int32_t> ref(cs.out_c * oh * ow);
  qconv_direct(image.data(), cs.c, cs.h, cs.w, cs.kernel, weights.data(),
               cs.out_c, got.data());
  qconv_direct_reference(image.data(), cs.c, cs.h, cs.w, cs.kernel,
                         weights.data(), cs.out_c, ref.data());
  EXPECT_EQ(0, std::memcmp(got.data(), ref.data(),
                           got.size() * sizeof(std::int32_t)));
}

}  // namespace
}  // namespace cdl
