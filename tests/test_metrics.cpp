#include <gtest/gtest.h>

#include "cdl/cdl_trainer.h"
#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "data/synthetic_mnist.h"
#include "eval/metrics.h"
#include "nn/activations.h"
#include "nn/dense.h"

namespace cdl {
namespace {

/// Tiny CDLN over 4-feature inputs for metric bookkeeping tests.
ConditionalNetwork tiny_cdln(Rng& rng) {
  Network base;
  base.emplace<Dense>(4, 6);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(6, 3);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{4});
  net.attach_classifier(2, LcTrainingRule::kLms, rng);
  return net;
}

Dataset tiny_data(std::size_t n, Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    Tensor x(Shape{4});
    for (float& v : x.values()) v = rng.uniform(0.0F, 1.0F);
    d.add(std::move(x), i % 3);
  }
  return d;
}

TEST(Metrics, EmptyDatasetThrows) {
  Rng rng(1);
  ConditionalNetwork net = tiny_cdln(rng);
  const EnergyModel model;
  EXPECT_THROW((void)evaluate_cdl(net, Dataset{}, model), std::invalid_argument);
}

TEST(Metrics, TotalsAndExitCountsConsistent) {
  Rng rng(2);
  ConditionalNetwork net = tiny_cdln(rng);
  net.set_delta(0.5F);
  const Dataset data = tiny_data(60, rng);
  const EnergyModel model;
  const Evaluation e = evaluate_cdl(net, data, model);

  EXPECT_EQ(e.total, 60U);
  ASSERT_EQ(e.exit_counts.size(), 2U);  // O1 + FC
  EXPECT_EQ(e.exit_counts[0] + e.exit_counts[1], 60U);
  EXPECT_NEAR(e.exit_fraction(0) + e.exit_fraction(1), 1.0, 1e-12);
  EXPECT_THROW((void)e.exit_fraction(2), std::out_of_range);

  // Per-class tallies must sum to the global ones.
  std::size_t total = 0;
  std::size_t correct = 0;
  double ops = 0.0;
  for (const ClassStats& c : e.per_class) {
    total += c.total;
    correct += c.correct;
    ops += c.sum_ops;
  }
  EXPECT_EQ(total, e.total);
  EXPECT_EQ(correct, e.correct);
  EXPECT_DOUBLE_EQ(ops, e.sum_ops);
}

TEST(Metrics, BaselineEvaluationAlwaysExitsAtFc) {
  Rng rng(3);
  ConditionalNetwork net = tiny_cdln(rng);
  const Dataset data = tiny_data(20, rng);
  const EnergyModel model;
  const Evaluation e = evaluate_baseline(net, data, model);
  EXPECT_EQ(e.exit_counts.back(), 20U);
  EXPECT_EQ(e.exit_counts.front(), 0U);
}

TEST(Metrics, BaselineOpsConstantPerInput) {
  Rng rng(4);
  ConditionalNetwork net = tiny_cdln(rng);
  const Dataset data = tiny_data(10, rng);
  const EnergyModel model;
  const Evaluation e = evaluate_baseline(net, data, model);
  // Every input costs the same unconditional forward pass.
  const double expected = e.sum_ops / static_cast<double>(e.total);
  for (const ClassStats& c : e.per_class) {
    if (c.total > 0) {
      EXPECT_DOUBLE_EQ(c.avg_ops(), expected);
    }
  }
}

TEST(Metrics, CdlNeverCostsMoreThanWorstCase) {
  Rng rng(5);
  ConditionalNetwork net = tiny_cdln(rng);
  net.set_delta(0.3F);
  const Dataset data = tiny_data(50, rng);
  const EnergyModel model;
  const Evaluation e = evaluate_cdl(net, data, model);
  const double worst =
      static_cast<double>(net.worst_case_ops().total_compute());
  EXPECT_LE(e.avg_ops(), worst + 1e-9);
}

TEST(Metrics, AccuracyHelpersHandleEmptyClasses) {
  const ClassStats empty;
  EXPECT_EQ(empty.accuracy(), 0.0);
  EXPECT_EQ(empty.avg_ops(), 0.0);
  EXPECT_EQ(empty.avg_energy_pj(), 0.0);
}

TEST(Metrics, EnergyUsesProvidedModel) {
  Rng rng(6);
  ConditionalNetwork net = tiny_cdln(rng);
  net.set_delta(2.0F);  // all inputs take the same (full) path
  const Dataset data = tiny_data(10, rng);
  const Evaluation cheap = evaluate_cdl(net, data, EnergyModel(EnergyCosts::compute_only()));
  const Evaluation full = evaluate_cdl(net, data, EnergyModel{});
  EXPECT_LT(cheap.avg_energy_pj(), full.avg_energy_pj());
  EXPECT_DOUBLE_EQ(cheap.avg_ops(), full.avg_ops());
}

TEST(Metrics, PerfectClassifierScoresFullAccuracy) {
  // Rig the stage classifier to always answer the true class of a
  // single-class dataset.
  Rng rng(7);
  ConditionalNetwork net = tiny_cdln(rng);
  net.set_delta(0.4F);
  net.classifier(0).parameters()[0]->zero();
  net.classifier(0).parameters()[1]->zero();
  (*net.classifier(0).parameters()[1])[1] = 1.0F;

  Dataset data;
  for (int i = 0; i < 8; ++i) data.add(Tensor(Shape{4}, 0.5F), 1);
  const Evaluation e = evaluate_cdl(net, data, EnergyModel{});
  EXPECT_EQ(e.correct, 8U);
  EXPECT_DOUBLE_EQ(e.accuracy(), 1.0);
  EXPECT_EQ(e.exit_counts[0], 8U);
}

}  // namespace
}  // namespace cdl
