// Tests for the serving energy-budget watchdog (serve/energy_budget.h).
//
// Windowing runs on the injected engine clock, so a ManualClock drives every
// lifecycle deterministically. The pinned-down semantics: a window closes
// exactly when a record's timestamp reaches its end (energy at the closing
// instant belongs to the next window), idle windows score zero so indices
// stay wall-clock aligned, and a window's rate is its pJ sum divided by the
// window length (pJ/ns == mJ/s, no conversion factors).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "serve/clock.h"
#include "serve/energy_budget.h"

namespace cdl::serve {
namespace {

constexpr std::uint64_t kWindow = 1000;  // ns; rates are pJ / 1000

EnergyBudgetConfig budget(double mj_per_s) {
  EnergyBudgetConfig config;
  config.budget_mj_per_s = mj_per_s;
  config.window_ns = kWindow;
  return config;
}

TEST(EnergyBudget, InvalidConfigThrows) {
  EnergyBudgetConfig zero_window;
  zero_window.window_ns = 0;
  EXPECT_THROW(EnergyBudgetWatchdog{zero_window}, std::invalid_argument);
  EnergyBudgetConfig negative;
  negative.budget_mj_per_s = -1.0;
  EXPECT_THROW(EnergyBudgetWatchdog{negative}, std::invalid_argument);
}

TEST(EnergyBudget, DisabledAccumulatesTotalsButScoresNothing) {
  EnergyBudgetWatchdog wd(budget(0.0));
  EXPECT_FALSE(wd.enabled());
  wd.record(0, 100.0);
  wd.record(5 * kWindow, 200.0);
  wd.flush(10 * kWindow);
  EXPECT_EQ(wd.windows_scored(), 0U);
  EXPECT_TRUE(wd.take_scored().empty());
  EXPECT_EQ(wd.total_energy_pj(), 300.0);
  EXPECT_EQ(wd.latest_rate_mj_per_s(), -1.0);
  EXPECT_EQ(wd.first_breach_window(), -1);
}

TEST(EnergyBudget, BreachAtExactWindowBoundaryInstant) {
  // Driven off a ManualClock exactly as the engine drives it: record() takes
  // the clock's current now_ns.
  ManualClock clock(100);
  EnergyBudgetWatchdog wd(budget(1.0));  // 1 mJ/s == 1000 pJ per window

  // Anchor: window 0 = [100, 1100).
  wd.record(clock.now_ns(), 600.0);
  EXPECT_EQ(wd.windows_scored(), 0U);

  // The exact closing instant: energy recorded at now == window end belongs
  // to the NEXT window, so window 0 scores 600 pJ -> 0.6 mJ/s, no breach.
  clock.advance(kWindow);  // now 1100
  wd.record(clock.now_ns(), 900.0);
  ASSERT_EQ(wd.windows_scored(), 1U);
  EXPECT_EQ(wd.breaches(), 0U);
  EXPECT_EQ(wd.latest_rate_mj_per_s(), 0.6);

  // Window 1 accumulates 900 + 600 = 1500 pJ -> 1.5 mJ/s > 1.0: breach,
  // scored the instant the clock reaches its end.
  clock.advance(kWindow - 1);  // now 2099, still inside window 1
  wd.record(clock.now_ns(), 600.0);
  EXPECT_EQ(wd.windows_scored(), 1U);
  clock.advance(1);  // now 2100 == window 1 end
  wd.record(clock.now_ns(), 0.0);
  ASSERT_EQ(wd.windows_scored(), 2U);
  EXPECT_EQ(wd.breaches(), 1U);
  EXPECT_EQ(wd.first_breach_window(), 1);
  EXPECT_EQ(wd.latest_rate_mj_per_s(), 1.5);
  EXPECT_EQ(wd.max_rate_mj_per_s(), 1.5);

  const std::vector<EnergyWindowResult> scored = wd.take_scored();
  ASSERT_EQ(scored.size(), 2U);
  EXPECT_EQ(scored[0].index, 0U);
  EXPECT_EQ(scored[0].energy_pj, 600.0);
  EXPECT_FALSE(scored[0].breach);
  EXPECT_EQ(scored[1].index, 1U);
  EXPECT_EQ(scored[1].energy_pj, 1500.0);
  EXPECT_TRUE(scored[1].breach);
  EXPECT_TRUE(wd.take_scored().empty()) << "take_scored drains";
}

TEST(EnergyBudget, RateExactlyAtBudgetIsNotABreach) {
  EnergyBudgetWatchdog wd(budget(1.0));
  wd.record(0, 1000.0);  // exactly 1.0 mJ/s over the window
  wd.record(kWindow, 0.0);
  ASSERT_EQ(wd.windows_scored(), 1U);
  EXPECT_EQ(wd.breaches(), 0U) << "breach is strict: rate > budget";
  EXPECT_EQ(wd.latest_rate_mj_per_s(), 1.0);
}

TEST(EnergyBudget, IdleWindowsScoreZeroKeepingIndicesAligned) {
  EnergyBudgetWatchdog wd(budget(0.1));
  wd.record(0, 500.0);
  // Jump over two whole idle windows into window 3.
  wd.record(3 * kWindow + 500, 200.0);
  ASSERT_EQ(wd.windows_scored(), 3U);
  const auto scored = wd.take_scored();
  ASSERT_EQ(scored.size(), 3U);
  EXPECT_EQ(scored[0].energy_pj, 500.0);
  EXPECT_TRUE(scored[0].breach);  // 0.5 > 0.1
  EXPECT_EQ(scored[1].index, 1U);
  EXPECT_EQ(scored[1].energy_pj, 0.0);
  EXPECT_FALSE(scored[1].breach);
  EXPECT_EQ(scored[2].energy_pj, 0.0);
  EXPECT_EQ(wd.first_breach_window(), 0);
}

TEST(EnergyBudget, FlushScoresThePartialWindow) {
  EnergyBudgetWatchdog wd(budget(1.0));
  wd.record(0, 700.0);
  wd.flush(400);  // mid-window shutdown: the open window still gets scored
  ASSERT_EQ(wd.windows_scored(), 1U);
  const auto scored = wd.take_scored();
  ASSERT_EQ(scored.size(), 1U);
  EXPECT_EQ(scored[0].energy_pj, 700.0);
  // The partial window is rated over the full window length (conservative:
  // a shutdown flush never inflates the rate).
  EXPECT_EQ(scored[0].rate_mj_per_s, 0.7);
  // Idempotent until the next record.
  wd.flush(500);
  EXPECT_EQ(wd.windows_scored(), 1U);
  EXPECT_EQ(wd.total_energy_pj(), 700.0);
}

TEST(EnergyBudget, FlushBeforeAnyRecordIsANoOp) {
  EnergyBudgetWatchdog wd(budget(1.0));
  wd.flush(5000);
  EXPECT_EQ(wd.windows_scored(), 0U);
  EXPECT_TRUE(wd.take_scored().empty());
}

}  // namespace
}  // namespace cdl::serve
