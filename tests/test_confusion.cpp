#include <gtest/gtest.h>

#include "eval/confusion.h"

namespace cdl {
namespace {

TEST(ConfusionMatrix, RejectsZeroClasses) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrix, RecordAndCount) {
  ConfusionMatrix m(3);
  m.record(0, 0);
  m.record(0, 1);
  m.record(2, 2);
  EXPECT_EQ(m.count(0, 0), 1U);
  EXPECT_EQ(m.count(0, 1), 1U);
  EXPECT_EQ(m.count(2, 2), 1U);
  EXPECT_EQ(m.count(1, 1), 0U);
  EXPECT_EQ(m.total(), 3U);
}

TEST(ConfusionMatrix, OutOfRangeClassesThrow) {
  ConfusionMatrix m(2);
  EXPECT_THROW(m.record(2, 0), std::out_of_range);
  EXPECT_THROW(m.record(0, 2), std::out_of_range);
  EXPECT_THROW((void)m.count(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.precision(2), std::out_of_range);
  EXPECT_THROW((void)m.recall(2), std::out_of_range);
}

TEST(ConfusionMatrix, AccuracyIsDiagonalFraction) {
  ConfusionMatrix m(2);
  EXPECT_EQ(m.accuracy(), 0.0);  // empty
  m.record(0, 0);
  m.record(0, 0);
  m.record(1, 0);
  m.record(1, 1);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
}

TEST(ConfusionMatrix, PrecisionAndRecall) {
  ConfusionMatrix m(2);
  // Truth 0 predicted 0 twice; truth 1 predicted 0 once; truth 1 predicted 1 once.
  m.record(0, 0);
  m.record(0, 0);
  m.record(1, 0);
  m.record(1, 1);
  EXPECT_DOUBLE_EQ(m.precision(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall(0), 1.0);
  EXPECT_DOUBLE_EQ(m.precision(1), 1.0);
  EXPECT_DOUBLE_EQ(m.recall(1), 0.5);
}

TEST(ConfusionMatrix, EmptyClassMetricsAreZeroNotNan) {
  ConfusionMatrix m(3);
  m.record(0, 0);
  EXPECT_EQ(m.precision(1), 0.0);
  EXPECT_EQ(m.recall(1), 0.0);
}

TEST(ConfusionMatrix, ToStringRendersGrid) {
  ConfusionMatrix m(2);
  m.record(0, 1);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("truth\\pred"), std::string::npos);
  EXPECT_NE(s.find("recall"), std::string::npos);
}

}  // namespace
}  // namespace cdl
