// Corruption-robustness tests for the CDLW weight format, anchored on a
// committed golden file (tests/data/golden_two_layer.cdlw: two_layer_net
// initialised with Rng(7)). Every malformed input must fail with a clean
// std::runtime_error -- never a crash, hang, or huge allocation.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/rng.h"
#include "nn/network.h"
#include "nn/serialize.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::two_layer_net;

// CDLW layout of the golden file: magic(4) version(4) count(8), then per
// tensor rank(4) + dims(8 each) + float32 data. First tensor header starts
// at byte 16, its first dimension at byte 20.
constexpr std::size_t kVersionOffset = 4;
constexpr std::size_t kCountOffset = 8;
constexpr std::size_t kFirstRankOffset = 16;
constexpr std::size_t kFirstDimOffset = 20;

std::string golden_path() {
  return std::string(CDL_TEST_DATA_DIR) + "/golden_two_layer.cdlw";
}

std::string golden_bytes() {
  std::ifstream is(golden_path(), std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing " << golden_path();
  std::string bytes((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void load_bytes(const std::string& bytes) {
  Network net = two_layer_net();
  std::istringstream is(bytes);
  load_parameters(is, net.parameters());
}

/// Returns the golden bytes with `count` bytes at `offset` overwritten by
/// the little-endian value.
std::string patched(std::string bytes, std::size_t offset, std::uint64_t value,
                    std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    bytes[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  return bytes;
}

TEST(SerializeCorruption, GoldenFileLoads) {
  Network net = two_layer_net();
  EXPECT_NO_THROW(load_network(golden_path(), net));
}

TEST(SerializeCorruption, GoldenFileMatchesSeededInit) {
  Network golden = two_layer_net();
  load_network(golden_path(), golden);

  Network fresh = two_layer_net();
  Rng rng(7);
  fresh.init(rng);

  const auto pa = golden.parameters();
  const auto pb = fresh.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(*pa[i], *pb[i]);
}

TEST(SerializeCorruption, FormatIsByteStable) {
  // The writer must keep producing exactly the committed bytes; any change
  // to the on-disk format needs a version bump and a new golden file.
  Network net = two_layer_net();
  Rng rng(7);
  net.init(rng);
  std::ostringstream os;
  save_parameters(os, net.parameters());
  EXPECT_EQ(os.str(), golden_bytes());
}

TEST(SerializeCorruption, EveryTruncationFailsCleanly) {
  const std::string full = golden_bytes();
  ASSERT_GT(full.size(), 16U);
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_THROW(load_bytes(full.substr(0, len)), std::runtime_error)
        << "prefix of " << len << " bytes was accepted";
  }
  EXPECT_NO_THROW(load_bytes(full));
}

TEST(SerializeCorruption, BadMagicRejected) {
  std::string bytes = golden_bytes();
  bytes[0] = 'X';
  try {
    load_bytes(bytes);
    FAIL() << "bad magic accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(SerializeCorruption, UnsupportedVersionRejected) {
  try {
    load_bytes(patched(golden_bytes(), kVersionOffset, 999, 4));
    FAIL() << "future version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(SerializeCorruption, ImplausibleTensorCountRejected) {
  // A corrupted count must hit the sanity bound, not attempt 2^40 reads.
  try {
    load_bytes(patched(golden_bytes(), kCountOffset, 1ULL << 40, 8));
    FAIL() << "absurd tensor count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos);
  }
}

TEST(SerializeCorruption, WrongTensorCountRejected) {
  EXPECT_THROW(load_bytes(patched(golden_bytes(), kCountOffset, 3, 8)),
               std::runtime_error);
}

TEST(SerializeCorruption, ZeroRankRejected) {
  EXPECT_THROW(load_bytes(patched(golden_bytes(), kFirstRankOffset, 0, 4)),
               std::runtime_error);
}

TEST(SerializeCorruption, HugeRankRejected) {
  // rank 2 -> 200 would imply reading 200 dimension words; the bound check
  // must fire first.
  try {
    load_bytes(patched(golden_bytes(), kFirstRankOffset, 200, 4));
    FAIL() << "absurd rank accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rank"), std::string::npos);
  }
}

TEST(SerializeCorruption, ZeroDimensionRejected) {
  EXPECT_THROW(load_bytes(patched(golden_bytes(), kFirstDimOffset, 0, 8)),
               std::runtime_error);
}

TEST(SerializeCorruption, HugeDimensionRejected) {
  // A multi-terabyte dimension must be refused before any allocation.
  try {
    load_bytes(patched(golden_bytes(), kFirstDimOffset, 1ULL << 44, 8));
    FAIL() << "absurd dimension accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("dimensions"), std::string::npos);
  }
}

TEST(SerializeCorruption, OverflowingDimProductRejected) {
  // Each dimension individually plausible, product overflows the element
  // bound: the guarded multiply must catch it.
  std::string bytes = patched(golden_bytes(), kFirstDimOffset, 1ULL << 30, 8);
  bytes = patched(std::move(bytes), kFirstDimOffset + 8, 1ULL << 30, 8);
  EXPECT_THROW(load_bytes(bytes), std::runtime_error);
}

TEST(SerializeCorruption, WrongShapeHeaderRejected) {
  // Plausible but mismatching shape (first dim 3 -> 5) must be reported as
  // a shape mismatch, not read as data.
  try {
    load_bytes(patched(golden_bytes(), kFirstDimOffset, 5, 8));
    FAIL() << "wrong shape accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shape mismatch"), std::string::npos);
  }
}

}  // namespace
}  // namespace cdl
