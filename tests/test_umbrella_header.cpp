// Compile-level test: the umbrella header must expose the full public
// surface, self-contained. A small end-to-end flow using only <cdl.h>
// confirms it.
#include <gtest/gtest.h>

#include "cdl.h"

namespace {

TEST(UmbrellaHeader, EndToEndFlowCompilesAndRuns) {
  cdl::Rng rng(1);
  const cdl::SyntheticMnist gen;
  const cdl::Dataset train = gen.generate(50);

  cdl::Network base = cdl::make_mnist_3c_baseline();
  base.init(rng);
  cdl::ConditionalNetwork net(std::move(base), cdl::Shape{1, 28, 28});
  net.attach_classifier(3, cdl::LcTrainingRule::kLms, rng);
  net.set_delta(0.5F);

  const cdl::ClassificationResult r = net.classify(train.image(0));
  EXPECT_LT(r.label, 10U);

  const cdl::EnergyModel energy;
  EXPECT_GT(energy.energy_pj(r.ops), 0.0);

  const cdl::AcceleratorModel accel;
  EXPECT_GT(accel.latency(r.ops).cycles, 0U);
}

}  // namespace
