#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_mnist.h"

namespace cdl {
namespace {

TEST(SyntheticMnist, RejectsBadConfig) {
  SyntheticMnistConfig tiny;
  tiny.image_size = 4;
  EXPECT_THROW(SyntheticMnist{tiny}, std::invalid_argument);

  SyntheticMnistConfig bad_scale;
  bad_scale.min_scale = 1.2F;
  bad_scale.max_scale = 0.8F;
  EXPECT_THROW(SyntheticMnist{bad_scale}, std::invalid_argument);
}

TEST(SyntheticMnist, GlyphsExistForAllDigits) {
  for (std::size_t d = 0; d < 10; ++d) {
    const auto& strokes = SyntheticMnist::glyph(d);
    EXPECT_FALSE(strokes.empty()) << "digit " << d;
    for (const Stroke& s : strokes) {
      EXPECT_GE(s.size(), 2U);
      for (const Point& p : s) {
        EXPECT_GE(p.x, 0.0F);
        EXPECT_LE(p.x, 1.0F);
        EXPECT_GE(p.y, 0.0F);
        EXPECT_LE(p.y, 1.0F);
      }
    }
  }
  EXPECT_THROW((void)SyntheticMnist::glyph(10), std::invalid_argument);
}

TEST(SyntheticMnist, RenderIsDeterministicPerSeedDigitIndex) {
  const SyntheticMnist gen(SyntheticMnistConfig{.seed = 9});
  EXPECT_EQ(gen.render(3, 17), gen.render(3, 17));
  EXPECT_NE(gen.render(3, 17), gen.render(3, 18));
  EXPECT_NE(gen.render(3, 17), gen.render(4, 17));

  const SyntheticMnist other(SyntheticMnistConfig{.seed = 10});
  EXPECT_NE(gen.render(3, 17), other.render(3, 17));
}

TEST(SyntheticMnist, PixelsInUnitRangeWithInk) {
  const SyntheticMnist gen;
  for (std::size_t d = 0; d < 10; ++d) {
    const Tensor img = gen.render(d, 0);
    EXPECT_EQ(img.shape(), (Shape{1, 28, 28}));
    EXPECT_GE(img.min(), 0.0F);
    EXPECT_LE(img.max(), 1.0F);
    // A digit must actually be drawn: enough bright pixels...
    std::size_t bright = 0;
    for (float v : img.values()) bright += v > 0.5F ? 1 : 0;
    EXPECT_GT(bright, 20U) << "digit " << d;
    // ...but far from a filled canvas.
    EXPECT_LT(bright, 400U) << "digit " << d;
  }
}

TEST(SyntheticMnist, DifficultyMatchesRenderDraw) {
  const SyntheticMnist gen(SyntheticMnistConfig{.seed = 4});
  // difficulty() must replay the same first draw render() consumes; verify
  // determinism and range.
  for (std::uint64_t i = 0; i < 50; ++i) {
    const float d1 = gen.difficulty(5, i);
    const float d2 = gen.difficulty(5, i);
    EXPECT_EQ(d1, d2);
    EXPECT_GE(d1, 0.0F);
    EXPECT_LE(d1, 1.0F);
  }
}

TEST(SyntheticMnist, DifficultyDistributionMostlyEasy) {
  const SyntheticMnist gen;
  std::size_t easy = 0;
  const std::size_t n = 1000;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (gen.difficulty(0, i) < 0.5F) ++easy;
  }
  // The paper's premise: a large majority of inputs are easy.
  EXPECT_GT(easy, n * 6 / 10);
}

TEST(SyntheticMnist, ClassDifficultyOrdersDigitOneEasiest) {
  const SyntheticMnist gen;
  double sum1 = 0.0;
  double sum5 = 0.0;
  const std::size_t n = 500;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum1 += gen.difficulty(1, i);
    sum5 += gen.difficulty(5, i);
  }
  EXPECT_LT(sum1 / n, 0.6 * sum5 / n);
}

TEST(SyntheticMnist, HardSamplesDifferMoreFromCanonical) {
  SyntheticMnistConfig config;
  config.seed = 21;
  const SyntheticMnist gen(config);

  // Find a notably easy and a notably hard sample of the same digit and
  // compare their distance to the canonical (difficulty ~ 0) rendering.
  config.difficulty_exponent = 1000.0F;  // difficulty ~ 0 for all draws
  const SyntheticMnist canonical_gen(config);
  const Tensor canonical = canonical_gen.render(0, 1);

  std::uint64_t easy_idx = 0;
  std::uint64_t hard_idx = 0;
  float easiest = 2.0F;
  float hardest = -1.0F;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const float d = gen.difficulty(0, i);
    if (d < easiest) {
      easiest = d;
      easy_idx = i;
    }
    if (d > hardest) {
      hardest = d;
      hard_idx = i;
    }
  }
  ASSERT_LT(easiest, 0.1F);
  ASSERT_GT(hardest, 0.7F);

  const auto distance = [&](const Tensor& img) {
    double acc = 0.0;
    for (std::size_t p = 0; p < img.numel(); ++p) {
      const double diff = img[p] - canonical[p];
      acc += diff * diff;
    }
    return acc;
  };
  EXPECT_LT(distance(gen.render(0, easy_idx)),
            distance(gen.render(0, hard_idx)));
}

TEST(SyntheticMnist, GenerateBalancedClasses) {
  const SyntheticMnist gen;
  const Dataset d = gen.generate(100);
  EXPECT_EQ(d.size(), 100U);
  for (std::size_t count : d.class_counts()) EXPECT_EQ(count, 10U);
}

TEST(SyntheticMnist, GenerateDigitSingleClass) {
  const SyntheticMnist gen;
  const Dataset d = gen.generate_digit(7, 25);
  EXPECT_EQ(d.size(), 25U);
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_EQ(d.label(i), 7U);
}

TEST(SyntheticMnist, IndexBaseYieldsDisjointSamples) {
  const SyntheticMnist gen;
  const Dataset a = gen.generate(20, 0);
  const Dataset b = gen.generate(20, 1000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a.image(i), b.image(i));
  }
}

TEST(LoadMnistOrSynthetic, SplitsAreSizedAndDisjoint) {
  unsetenv("CDL_MNIST_DIR");
  const MnistPair pair = load_mnist_or_synthetic(40, 20, 3, 10);
  EXPECT_TRUE(pair.synthetic);
  EXPECT_EQ(pair.train.size(), 40U);
  EXPECT_EQ(pair.test.size(), 20U);
  EXPECT_EQ(pair.validation.size(), 10U);
  EXPECT_NE(pair.train.image(0), pair.test.image(0));
  EXPECT_NE(pair.train.image(0), pair.validation.image(0));
}

TEST(LoadMnistOrSynthetic, ZeroValCountGivesEmptyValidation) {
  unsetenv("CDL_MNIST_DIR");
  const MnistPair pair = load_mnist_or_synthetic(10, 10, 3);
  EXPECT_TRUE(pair.validation.empty());
}

TEST(SyntheticMnist, ClutterAddsBackgroundInk) {
  SyntheticMnistConfig clean_cfg;
  clean_cfg.seed = 31;
  clean_cfg.noise_stddev = 0.0F;  // isolate the clutter contribution
  SyntheticMnistConfig clutter_cfg = clean_cfg;
  clutter_cfg.clutter = 1.0F;

  const SyntheticMnist clean(clean_cfg);
  const SyntheticMnist cluttered(clutter_cfg);
  double clean_ink = 0.0;
  double clutter_ink = 0.0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    clean_ink += clean.render(4, i).sum();
    clutter_ink += cluttered.render(4, i).sum();
  }
  EXPECT_GT(clutter_ink, 1.1 * clean_ink);
}

TEST(SyntheticMnist, ClutterIsDeterministicAndBounded) {
  SyntheticMnistConfig cfg;
  cfg.seed = 33;
  cfg.clutter = 0.8F;
  const SyntheticMnist gen(cfg);
  EXPECT_EQ(gen.render(2, 5), gen.render(2, 5));
  const Tensor img = gen.render(2, 5);
  EXPECT_GE(img.min(), 0.0F);
  EXPECT_LE(img.max(), 1.0F);
}

class RenderAllDigitsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RenderAllDigitsSweep, ManySamplesStayWellFormed) {
  const SyntheticMnist gen(SyntheticMnistConfig{.seed = 77});
  const std::size_t digit = GetParam();
  for (std::uint64_t i = 0; i < 30; ++i) {
    const Tensor img = gen.render(digit, i);
    EXPECT_GE(img.min(), 0.0F);
    EXPECT_LE(img.max(), 1.0F);
    EXPECT_GT(img.sum(), 5.0F);  // never blank
  }
}

INSTANTIATE_TEST_SUITE_P(Digits, RenderAllDigitsSweep,
                         ::testing::Range<std::size_t>(0, 10));

}  // namespace
}  // namespace cdl
