#include <gtest/gtest.h>

#include "core/shape.h"

namespace cdl {
namespace {

TEST(Shape, DefaultIsScalarLike) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0U);
  EXPECT_EQ(s.numel(), 1U);
}

TEST(Shape, InitializerListConstruction) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3U);
  EXPECT_EQ(s.dim(0), 2U);
  EXPECT_EQ(s.dim(1), 3U);
  EXPECT_EQ(s.dim(2), 4U);
  EXPECT_EQ(s.numel(), 24U);
}

TEST(Shape, VectorConstruction) {
  const Shape s(std::vector<std::size_t>{5, 7});
  EXPECT_EQ(s.rank(), 2U);
  EXPECT_EQ(s.numel(), 35U);
}

TEST(Shape, ZeroExtentRejected) {
  EXPECT_THROW(Shape({2, 0, 3}), std::invalid_argument);
  EXPECT_THROW(Shape({0}), std::invalid_argument);
}

TEST(Shape, EqualityAndInequality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
  EXPECT_EQ(Shape{}, Shape{});
}

TEST(Shape, OutOfRangeDimAccessThrows) {
  const Shape s{2, 3};
  EXPECT_THROW((void)s.dim(2), std::out_of_range);
  EXPECT_THROW((void)s[5], std::out_of_range);
}

TEST(Shape, ToStringFormatsDims) {
  EXPECT_EQ(Shape({1, 28, 28}).to_string(), "[1, 28, 28]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

class ShapeNumelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShapeNumelSweep, RankOneNumelMatchesExtent) {
  const std::size_t n = GetParam();
  EXPECT_EQ(Shape({n}).numel(), n);
  EXPECT_EQ(Shape({n, 1}).numel(), n);
  EXPECT_EQ(Shape({1, n, 1}).numel(), n);
}

INSTANTIATE_TEST_SUITE_P(Extents, ShapeNumelSweep,
                         ::testing::Values(1, 2, 7, 28, 784, 1000000));

}  // namespace
}  // namespace cdl
