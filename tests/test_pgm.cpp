#include <gtest/gtest.h>

#include <fstream>

#include "data/synthetic_mnist.h"
#include "eval/pgm.h"
#include "test_util.h"

namespace cdl {
namespace {

class PgmTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) { return tmp_.path(name); }
  test::TempDir tmp_{"cdl_pgm_test"};
};

TEST_F(PgmTest, RoundTripWithinQuantization) {
  const SyntheticMnist gen;
  const Tensor original = gen.render(3, 0);
  save_pgm(path("digit.pgm"), original);
  const Tensor loaded = load_pgm(path("digit.pgm"));
  ASSERT_EQ(loaded.shape(), original.shape());
  for (std::size_t i = 0; i < original.numel(); ++i) {
    EXPECT_NEAR(loaded[i], original[i], 1.0F / 255.0F + 1e-6F);
  }
}

TEST_F(PgmTest, SaveValidatesShape) {
  EXPECT_THROW(save_pgm(path("x.pgm"), Tensor(Shape{3, 4, 4})),
               std::invalid_argument);
  EXPECT_THROW(save_pgm(path("x.pgm"), Tensor(Shape{4, 4})),
               std::invalid_argument);
}

TEST_F(PgmTest, SaveClampsOutOfRangeValues) {
  Tensor img(Shape{1, 1, 2});
  img[0] = -3.0F;
  img[1] = 7.0F;
  save_pgm(path("clamp.pgm"), img);
  const Tensor loaded = load_pgm(path("clamp.pgm"));
  EXPECT_EQ(loaded[0], 0.0F);
  EXPECT_EQ(loaded[1], 1.0F);
}

TEST_F(PgmTest, NonSquareImagesPreserved) {
  Tensor img(Shape{1, 2, 5});
  for (std::size_t i = 0; i < img.numel(); ++i) {
    img[i] = static_cast<float>(i) / 10.0F;
  }
  save_pgm(path("rect.pgm"), img);
  EXPECT_EQ(load_pgm(path("rect.pgm")).shape(), (Shape{1, 2, 5}));
}

TEST_F(PgmTest, LoadRejectsMissingFile) {
  EXPECT_THROW((void)load_pgm(path("absent.pgm")), std::runtime_error);
}

TEST_F(PgmTest, LoadRejectsWrongMagic) {
  std::ofstream os(path("bad.pgm"), std::ios::binary);
  os << "P2\n2 2\n255\n0 0 0 0\n";  // ASCII PGM, not supported
  os.close();
  EXPECT_THROW((void)load_pgm(path("bad.pgm")), std::runtime_error);
}

TEST_F(PgmTest, LoadRejectsTruncatedData) {
  std::ofstream os(path("trunc.pgm"), std::ios::binary);
  os << "P5\n4 4\n255\n";
  os.write("\x10\x20", 2);  // 2 of 16 bytes
  os.close();
  EXPECT_THROW((void)load_pgm(path("trunc.pgm")), std::runtime_error);
}

}  // namespace
}  // namespace cdl
