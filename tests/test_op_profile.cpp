#include <gtest/gtest.h>

#include "cdl/architectures.h"
#include "core/rng.h"
#include "energy/op_profile.h"
#include "energy/report.h"

namespace cdl {
namespace {

TEST(OpProfile, NetworkProfileCoversEveryLayer) {
  const Network net = make_mnist_2c_baseline();
  const EnergyModel model;
  const NetworkProfile p = profile_network(net, Shape{1, 28, 28}, model);
  ASSERT_EQ(p.layers.size(), net.size());
  EXPECT_EQ(p.layers.front().name, "conv5x5x6");
  EXPECT_EQ(p.layers.front().output_shape, (Shape{6, 24, 24}));
  EXPECT_EQ(p.layers.back().output_shape, Shape{10});
}

TEST(OpProfile, TotalsAreSumOfLayers) {
  const Network net = make_mnist_3c_baseline();
  const EnergyModel model;
  const NetworkProfile p = profile_network(net, Shape{1, 28, 28}, model);
  OpCount ops;
  double energy = 0.0;
  for (const LayerProfile& l : p.layers) {
    ops += l.ops;
    energy += l.energy_pj;
  }
  EXPECT_EQ(ops, p.total_ops);
  EXPECT_DOUBLE_EQ(energy, p.total_energy_pj);
  EXPECT_EQ(p.total_ops, net.forward_ops(Shape{1, 28, 28}));
}

TEST(OpProfile, CdlnProfileInsertsClassifierRows) {
  const CdlArchitecture arch = mnist_3c();
  Network base = arch.make_baseline();
  Rng rng(3);
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  const EnergyModel model;
  const NetworkProfile p = profile_cdln(net, model);
  ASSERT_EQ(p.layers.size(), net.baseline().size() + 2);
  // O1 sits right after the prefix-3 layers, O2 after prefix 6 (+1 shift).
  EXPECT_EQ(p.layers[3].name, "O1 (linear classifier)");
  EXPECT_EQ(p.layers[7].name, "O2 (linear classifier)");
  // CDLN worst case exceeds the bare baseline total.
  const NetworkProfile base_p =
      profile_network(net.baseline(), arch.input_shape, model);
  EXPECT_GT(p.total_energy_pj, base_p.total_energy_pj);
}

TEST(OpProfile, EnergyPerLayerUsesModel) {
  const Network net = make_mnist_2c_baseline();
  const EnergyModel model;
  const NetworkProfile p = profile_network(net, Shape{1, 28, 28}, model);
  for (const LayerProfile& l : p.layers) {
    EXPECT_DOUBLE_EQ(l.energy_pj, model.energy_pj(l.ops));
  }
}

TEST(Report, FormatEnergyPicksUnits) {
  EXPECT_EQ(format_energy(12.0), "12.00 pJ");
  EXPECT_EQ(format_energy(4600.0), "4.60 nJ");
  EXPECT_EQ(format_energy(2.5e6), "2.50 uJ");
}

TEST(Report, FormatProfileContainsLayersAndTotal) {
  const Network net = make_mnist_2c_baseline();
  const EnergyModel model;
  const std::string text =
      format_profile(profile_network(net, Shape{1, 28, 28}, model), "title");
  EXPECT_NE(text.find("title"), std::string::npos);
  EXPECT_NE(text.find("conv5x5x6"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

}  // namespace
}  // namespace cdl
