#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "nn/pool2d.h"

namespace cdl {
namespace {

Network small_net() {
  Network net;
  net.emplace<Conv2D>(1, 2, 3);  // 8x8 -> 6x6
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);        // -> 3x3
  net.emplace<Dense>(18, 4);
  return net;
}

TEST(Network, AddRejectsNull) {
  Network net;
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(Network, SizeAndLayerAccess) {
  Network net = small_net();
  EXPECT_EQ(net.size(), 4U);
  EXPECT_EQ(net.layer(0).name(), "conv3x3x2");
  EXPECT_THROW((void)net.layer(4), std::out_of_range);
}

TEST(Network, OutputShapeChainsLayers) {
  const Network net = small_net();
  EXPECT_EQ(net.output_shape(Shape{1, 8, 8}), Shape{4});
  EXPECT_EQ(net.output_shape_after(Shape{1, 8, 8}, 3), (Shape{2, 3, 3}));
  EXPECT_EQ(net.output_shape_after(Shape{1, 8, 8}, 0), (Shape{1, 8, 8}));
}

TEST(Network, ForwardRangeComposesToFullForward) {
  Network net = small_net();
  Rng rng(3);
  net.init(rng);
  Tensor x(Shape{1, 8, 8});
  for (float& v : x.values()) v = rng.uniform(0.0F, 1.0F);

  const Tensor full = net.forward(x);
  const Tensor mid = net.forward_range(x, 0, 2);
  const Tensor rest = net.forward_range(mid, 2, 4);
  EXPECT_EQ(full, rest);
}

TEST(Network, ForwardRangeValidatesBounds) {
  Network net = small_net();
  const Tensor x(Shape{1, 8, 8});
  EXPECT_THROW((void)net.forward_range(x, 3, 2), std::out_of_range);
  EXPECT_THROW((void)net.forward_range(x, 0, 5), std::out_of_range);
}

TEST(Network, EmptyRangeIsIdentity) {
  Network net = small_net();
  Tensor x(Shape{1, 8, 8}, 0.3F);
  EXPECT_EQ(net.forward_range(x, 2, 2), x);
}

TEST(Network, ParametersAndGradientsPairUp) {
  Network net = small_net();
  const auto params = net.parameters();
  const auto grads = net.gradients();
  ASSERT_EQ(params.size(), grads.size());
  ASSERT_EQ(params.size(), 4U);  // conv W/b + dense W/b
  for (std::size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->shape(), grads[i]->shape());
  }
}

TEST(Network, ZeroGradientsClearsAll) {
  Network net = small_net();
  Rng rng(5);
  net.init(rng);
  Tensor x(Shape{1, 8, 8}, 0.5F);
  (void)net.forward(x);
  (void)net.backward(Tensor(Shape{4}, 1.0F));
  net.zero_gradients();
  for (Tensor* g : net.gradients()) EXPECT_EQ(g->sum(), 0.0F);
}

TEST(Network, InitIsDeterministicPerSeed) {
  Network a = small_net();
  Network b = small_net();
  Rng ra(9);
  Rng rb(9);
  a.init(ra);
  b.init(rb);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(*pa[i], *pb[i]);
}

TEST(Network, LayerOpsSumEqualsForwardOps) {
  const Network net = small_net();
  const Shape in{1, 8, 8};
  OpCount total;
  for (const OpCount& ops : net.layer_ops(in)) total += ops;
  EXPECT_EQ(total, net.forward_ops(in));
}

TEST(Network, SummaryListsLayersInOrder) {
  EXPECT_EQ(small_net().summary(),
            "conv3x3x2 -> sigmoid -> maxpool2x2 -> dense18x4");
}

TEST(Network, MoveTransfersLayers) {
  Network a = small_net();
  Network b = std::move(a);
  EXPECT_EQ(b.size(), 4U);
}

}  // namespace
}  // namespace cdl
