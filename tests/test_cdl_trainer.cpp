#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "data/synthetic_mnist.h"

namespace cdl {
namespace {

/// Small synthetic workload shared by the trainer tests (kept tiny so the
/// whole file runs in seconds).
struct Workload {
  Workload() {
    SyntheticMnistConfig config;
    config.seed = 5;
    const SyntheticMnist gen(config);
    train = gen.generate(600);
    test = gen.generate(200, 1ULL << 20);
  }
  Dataset train;
  Dataset test;
};

const Workload& workload() {
  static const Workload w;
  return w;
}

TEST(TrainBaseline, EmptyDatasetThrows) {
  Network net = make_mnist_2c_baseline();
  Rng rng(1);
  EXPECT_THROW((void)train_baseline(net, Dataset{}, {}, rng),
               std::invalid_argument);
}

TEST(TrainBaseline, LossDecreasesAndBeatsChance) {
  Network net = make_mnist_3c_baseline();
  Rng rng(7);
  net.init(rng);
  BaselineTrainConfig config;
  // The 600-sample workload needs many sustained-lr passes to escape the
  // initial sigmoid plateau (see DESIGN.md notes on small-set training).
  config.epochs = 40;
  config.sgd.lr_decay = 0.97F;
  const float final_loss = train_baseline(net, workload().train, config, rng);
  EXPECT_LT(final_loss, 1.0F);  // well below ln(10) ~ 2.3

  std::size_t correct = 0;
  const Dataset& test = workload().test;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (net.forward(test.image(i)).argmax() == test.label(i)) ++correct;
  }
  EXPECT_GT(correct, test.size() / 2);
}

ConditionalNetwork trained_small_cdln(const CdlTrainConfig& cfg,
                                      CdlTrainReport* report,
                                      std::size_t extra_stage = 0) {
  const CdlArchitecture arch = mnist_3c();
  Network base = arch.make_baseline();
  Rng rng(11);
  base.init(rng);
  BaselineTrainConfig bcfg;
  bcfg.epochs = 30;
  bcfg.sgd.lr_decay = 0.97F;  // sustained lr to escape the small-set plateau
  (void)train_baseline(base, workload().train, bcfg, rng);

  ConditionalNetwork net(std::move(base), arch.input_shape);
  std::vector<std::size_t> stages = arch.default_stages;
  if (extra_stage != 0) stages.push_back(extra_stage);
  for (std::size_t prefix : stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  CdlTrainReport r = train_cdl(net, workload().train, cfg, rng);
  if (report != nullptr) *report = std::move(r);
  return net;
}

TEST(TrainCdl, EmptyDatasetThrows) {
  const CdlArchitecture arch = mnist_3c();
  Network base = arch.make_baseline();
  Rng rng(2);
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  CdlTrainConfig cfg;
  EXPECT_THROW((void)train_cdl(net, Dataset{}, cfg, rng), std::invalid_argument);
}

TEST(TrainCdl, ReportCoversEveryCandidateStage) {
  CdlTrainReport report;
  (void)trained_small_cdln(CdlTrainConfig{}, &report);
  ASSERT_EQ(report.stages.size(), 2U);
  EXPECT_EQ(report.stages[0].stage_name, "O1");
  EXPECT_EQ(report.stages[1].stage_name, "O2");
  EXPECT_EQ(report.stages[0].prefix_layers, 3U);
  EXPECT_EQ(report.stages[1].prefix_layers, 6U);
}

TEST(TrainCdl, InstanceFlowConserved) {
  CdlTrainReport report;
  (void)trained_small_cdln(CdlTrainConfig{}, &report);
  // Every instance reaches stage 1; later stages see exactly the leftovers.
  EXPECT_EQ(report.stages[0].reached, workload().train.size());
  ASSERT_TRUE(report.stages[0].admitted);
  EXPECT_EQ(report.stages[1].reached,
            report.stages[0].reached - report.stages[0].classified);
  const double expected_fc =
      static_cast<double>(report.stages[1].reached -
                          (report.stages[1].admitted
                               ? report.stages[1].classified
                               : 0)) /
      static_cast<double>(workload().train.size());
  EXPECT_NEAR(report.fc_fraction, expected_fc, 1e-9);
}

TEST(TrainCdl, FirstStageAlwaysAdmitted) {
  CdlTrainConfig cfg;
  cfg.prune_by_gain = true;
  cfg.epsilon_gain = 1e18;  // impossible bar for every later stage
  CdlTrainReport report;
  const ConditionalNetwork net = trained_small_cdln(cfg, &report);
  EXPECT_TRUE(report.stages[0].admitted);
  EXPECT_FALSE(report.stages[1].admitted);
  EXPECT_EQ(net.num_stages(), 1U);
}

TEST(TrainCdl, PruningDisabledKeepsAllStages) {
  CdlTrainConfig cfg;
  cfg.prune_by_gain = false;
  cfg.epsilon_gain = 1e18;
  const ConditionalNetwork net = trained_small_cdln(cfg, nullptr);
  EXPECT_EQ(net.num_stages(), 2U);
}

TEST(TrainCdl, GainFormulaMatchesAlgorithmOne) {
  CdlTrainReport report;
  ConditionalNetwork net = trained_small_cdln(CdlTrainConfig{}, &report);
  // Recompute G_1 = (gamma_base - gamma_1) * Cl_1 - gamma_1 * (I_1 - Cl_1)
  // from the final network's op tables (stage 0 was admitted so exit_ops(0)
  // reflects the same cost used during training).
  const auto& s = report.stages[0];
  const double gamma_base =
      static_cast<double>(net.baseline_forward_ops().total_compute());
  const double gamma_1 = static_cast<double>(net.exit_ops(0).total_compute());
  const double expected =
      (gamma_base - gamma_1) * static_cast<double>(s.classified) -
      gamma_1 * static_cast<double>(s.reached - s.classified);
  EXPECT_NEAR(s.gain, expected, std::abs(expected) * 1e-9);
}

TEST(TrainCdl, GammaFieldsReproduceTheRecordedGain) {
  // The admission audit invariant: every stage's G_i must reproduce from the
  // gamma_base / gamma_i / reached / classified recorded alongside it.
  CdlTrainReport report;
  ConditionalNetwork net = trained_small_cdln(CdlTrainConfig{}, &report);
  EXPECT_GT(report.stages[0].gamma_base, 0.0);
  for (const StageTrainReport& s : report.stages) {
    EXPECT_GT(s.gamma_i, 0.0);
    EXPECT_DOUBLE_EQ(s.gamma_base, report.stages[0].gamma_base);
    const double expected =
        (s.gamma_base - s.gamma_i) * static_cast<double>(s.classified) -
        s.gamma_i * static_cast<double>(s.reached - s.classified);
    EXPECT_DOUBLE_EQ(s.gain, expected) << s.stage_name;
  }
  // gamma_base is the full baseline cost the trainer measured against.
  EXPECT_DOUBLE_EQ(
      report.stages[0].gamma_base,
      static_cast<double>(net.baseline_forward_ops().total_compute()));
}

TEST(TrainBaseline, NonFiniteLossAbortsTheEpochLoop) {
  Network net = make_mnist_2c_baseline();
  Rng rng(19);
  net.init(rng);
  (*net.parameters()[0])[0] = std::numeric_limits<float>::quiet_NaN();
  BaselineTrainConfig config;
  config.epochs = 3;
  try {
    (void)train_baseline(net, workload().train, config, rng);
    FAIL() << "NaN weights must abort training";
  } catch (const TrainingDiverged& e) {
    EXPECT_EQ(e.phase, "baseline");
    EXPECT_EQ(e.epoch, 1U);
    EXPECT_GE(e.step, 1U);
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }
}

TEST(TrainBaseline, NonFiniteGuardCanBeDisabled) {
  Network net = make_mnist_2c_baseline();
  Rng rng(19);
  net.init(rng);
  (*net.parameters()[0])[0] = std::numeric_limits<float>::quiet_NaN();
  BaselineTrainConfig config;
  config.epochs = 1;
  config.abort_on_non_finite = false;
  EXPECT_NO_THROW((void)train_baseline(net, workload().train, config, rng));
}

TEST(TrainCdl, TrainedCascadeBeatsChanceAndSavesOps) {
  ConditionalNetwork net = trained_small_cdln(CdlTrainConfig{}, nullptr);
  net.set_delta(0.5F);
  const Dataset& test = workload().test;
  std::size_t correct = 0;
  double avg_ops = 0.0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const ClassificationResult r = net.classify(test.image(i));
    if (r.label == test.label(i)) ++correct;
    avg_ops += static_cast<double>(r.ops.total_compute());
  }
  avg_ops /= static_cast<double>(test.size());
  EXPECT_GT(correct, test.size() * 6 / 10);
  EXPECT_LT(avg_ops,
            static_cast<double>(net.baseline_forward_ops().total_compute()));
}

TEST(TrainCdl, LaterStagesTrainOnFewerInstances) {
  CdlTrainReport report;
  (void)trained_small_cdln(CdlTrainConfig{}, &report);
  // The paper: "the fraction of input instances passed to the next stage
  // decreases as we go deeper" (training-set flow).
  EXPECT_LT(report.stages[1].reached, report.stages[0].reached);
}

}  // namespace
}  // namespace cdl
