// Property and fuzz tests for the ActivationModule delta-decision rule.
//
// The invariants under test (Section II of the paper, hardened for hostile
// inputs): the cascade terminates iff exactly one class clears delta; the
// returned label is always in range, even for NaN/Inf-polluted probability
// vectors; and a max-probability termination always points at a class that
// actually cleared the threshold.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cdl/activation_module.h"
#include "core/rng.h"
#include "core/tensor.h"

namespace cdl {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

Tensor probs(std::initializer_list<float> values) {
  Tensor t(Shape{values.size()});
  std::size_t i = 0;
  for (float v : values) t[i++] = v;
  return t;
}

TEST(ActivationFuzz, ExactTieAtDeltaTerminates) {
  // >= delta counts as clearing the threshold, so a value exactly at delta
  // with everything else below it terminates with that label.
  const ActivationModule am(0.5F);
  const ActivationDecision d = am.evaluate(probs({0.2F, 0.5F, 0.3F}));
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.label, 1U);
}

TEST(ActivationFuzz, TwoClassesAtDeltaIsAmbiguous) {
  const ActivationModule am(0.5F);
  EXPECT_FALSE(am.evaluate(probs({0.5F, 0.5F, 0.0F})).terminate);
  EXPECT_FALSE(am.evaluate(probs({0.9F, 0.6F, 0.0F})).terminate);
}

TEST(ActivationFuzz, NoClassAtDeltaPassesOn) {
  const ActivationModule am(0.5F);
  EXPECT_FALSE(am.evaluate(probs({0.4F, 0.3F, 0.3F})).terminate);
}

TEST(ActivationFuzz, DeltaZeroNeverTerminatesMultiClass) {
  // At delta = 0 every class clears the threshold, so the "exactly one"
  // rule can only fire for a single-class vector.
  const ActivationModule am(0.0F);
  EXPECT_FALSE(am.evaluate(probs({0.9F, 0.1F})).terminate);
  EXPECT_FALSE(am.evaluate(probs({1.0F, 0.0F, 0.0F})).terminate);
  EXPECT_TRUE(am.evaluate(probs({1.0F})).terminate);
}

TEST(ActivationFuzz, DeltaOneTerminatesOnlyOnOneHot) {
  const ActivationModule am(1.0F);
  const ActivationDecision one_hot = am.evaluate(probs({0.0F, 1.0F, 0.0F}));
  EXPECT_TRUE(one_hot.terminate);
  EXPECT_EQ(one_hot.label, 1U);
  EXPECT_FALSE(am.evaluate(probs({0.5F, 0.5F, 0.0F})).terminate);
  EXPECT_FALSE(am.evaluate(probs({0.99F, 0.01F, 0.0F})).terminate);
}

TEST(ActivationFuzz, NanNeverClearsTheThreshold) {
  const ActivationModule am(0.5F);
  // NaN in a slot must not count as "above delta"; the one real confident
  // class still terminates, and with its own index.
  const ActivationDecision d = am.evaluate(probs({kNan, 0.8F, 0.1F}));
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.label, 1U);
  // All-NaN: nothing clears delta, never terminate.
  EXPECT_FALSE(am.evaluate(probs({kNan, kNan})).terminate);
}

TEST(ActivationFuzz, InfiniteValuesStayInRange) {
  const ActivationModule am(0.5F);
  const ActivationDecision d = am.evaluate(probs({-kInf, kInf, 0.1F}));
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.label, 1U);
}

TEST(ActivationFuzz, RejectsEmptyVectorAndNegativeDelta) {
  const ActivationModule am(0.5F);
  EXPECT_THROW((void)am.evaluate(Tensor{}), std::invalid_argument);
  EXPECT_THROW(ActivationModule(-0.1F), std::invalid_argument);
}

TEST(ActivationFuzz, RandomVectorsKeepEveryPolicyInRange) {
  // Fuzz all three confidence policies with vectors containing ordinary,
  // negative, huge, NaN and Inf entries. Hard invariants: evaluate() never
  // throws on non-empty input, the label is always < n, and a terminating
  // max-probability decision points at a class that cleared delta.
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = 1 + rng.index(9);
    Tensor p(Shape{n});
    for (std::size_t i = 0; i < n; ++i) {
      switch (rng.index(8)) {
        case 0: p[i] = kNan; break;
        case 1: p[i] = kInf; break;
        case 2: p[i] = -kInf; break;
        case 3: p[i] = rng.uniform(-2.0F, 2.0F); break;
        default: p[i] = rng.uniform(0.0F, 1.0F); break;
      }
    }
    const float delta = rng.uniform(0.0F, 1.0F);
    for (ConfidencePolicy policy :
         {ConfidencePolicy::kMaxProbability, ConfidencePolicy::kMargin,
          ConfidencePolicy::kEntropy}) {
      const ActivationModule am(delta, policy);
      const ActivationDecision d = am.evaluate(p);
      ASSERT_LT(d.label, n) << to_string(policy) << " iter " << iter;
      if (d.terminate && policy == ConfidencePolicy::kMaxProbability) {
        ASSERT_GE(p[d.label], delta) << "iter " << iter;
      }
    }
  }
}

TEST(ActivationFuzz, CleanDistributionsBehaveIdenticallyAcrossRuns) {
  // Determinism: the same vector always yields the same decision.
  Rng rng(5);
  const ActivationModule am(0.6F);
  for (int iter = 0; iter < 200; ++iter) {
    Tensor p(Shape{4});
    float sum = 0.0F;
    for (std::size_t i = 0; i < 4; ++i) {
      p[i] = rng.uniform(0.0F, 1.0F);
      sum += p[i];
    }
    for (std::size_t i = 0; i < 4; ++i) p[i] /= sum;
    const ActivationDecision a = am.evaluate(p);
    const ActivationDecision b = am.evaluate(p);
    EXPECT_EQ(a.terminate, b.terminate);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.confidence, b.confidence);
  }
}

}  // namespace
}  // namespace cdl
