// Tests for the joint-training extension (stage losses backpropagated
// through the shared trunk).
#include <gtest/gtest.h>

#include <cmath>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "data/synthetic_mnist.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/softmax.h"

namespace cdl {
namespace {

ConditionalNetwork tiny_joint_net(Rng& rng) {
  Network base;
  base.emplace<Dense>(4, 8);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(8, 3);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{4});
  net.attach_classifier(2, LcTrainingRule::kSoftmaxXent, rng);
  return net;
}

Dataset blob_data(std::size_t n, Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const auto cls = static_cast<std::size_t>(i % 3);
    Tensor x(Shape{4});
    x[cls] = 0.9F + rng.uniform(-0.05F, 0.05F);
    x[3] = 0.2F;
    d.add(std::move(x), cls);
  }
  return d;
}

TEST(JointTraining, EmptyDatasetThrows) {
  Rng rng(1);
  ConditionalNetwork net = tiny_joint_net(rng);
  EXPECT_THROW((void)train_cdl_joint(net, Dataset{}, JointTrainConfig{}, rng),
               std::invalid_argument);
}

TEST(JointTraining, JointLossDecreases) {
  Rng rng(2);
  ConditionalNetwork net = tiny_joint_net(rng);
  const Dataset train = blob_data(150, rng);

  JointTrainConfig one_epoch;
  one_epoch.epochs = 1;
  const float first = train_cdl_joint(net, train, one_epoch, rng);
  JointTrainConfig more;
  more.epochs = 20;
  const float later = train_cdl_joint(net, train, more, rng);
  EXPECT_LT(later, first);
  EXPECT_TRUE(std::isfinite(later));
}

TEST(JointTraining, BothExitsLearnTheTask) {
  Rng rng(3);
  ConditionalNetwork net = tiny_joint_net(rng);
  const Dataset train = blob_data(300, rng);
  JointTrainConfig cfg;
  cfg.epochs = 25;
  (void)train_cdl_joint(net, train, cfg, rng);

  const Dataset test = blob_data(90, rng);
  std::size_t fc_correct = 0;
  std::size_t lc_correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const Tensor logits = net.baseline().forward(test.image(i));
    if (logits.argmax() == test.label(i)) ++fc_correct;
    const Tensor feats = net.stage_features(test.image(i), 0);
    if (net.classifier(0).probabilities(feats).argmax() == test.label(i)) {
      ++lc_correct;
    }
  }
  EXPECT_GT(fc_correct, test.size() * 8 / 10);
  EXPECT_GT(lc_correct, test.size() * 8 / 10);
}

TEST(JointTraining, StageGradientActuallyShapesTrunk) {
  // With stage weight 0 the trunk must evolve exactly as plain baseline
  // training; with a positive weight it must diverge from that trajectory.
  const Dataset train = [] {
    Rng data_rng(4);
    return blob_data(60, data_rng);
  }();

  const auto run = [&](float weight) {
    Rng rng(5);
    ConditionalNetwork net = tiny_joint_net(rng);
    JointTrainConfig cfg;
    cfg.epochs = 3;
    cfg.stage_loss_weight = weight;
    Rng train_rng(6);
    (void)train_cdl_joint(net, train, cfg, train_rng);
    return net.baseline().parameters()[0]->at(0, 0);
  };

  const float w0_a = run(0.0F);
  const float w0_b = run(0.0F);
  EXPECT_EQ(w0_a, w0_b);  // deterministic given seeds
  const float w_joint = run(0.5F);
  EXPECT_NE(w0_a, w_joint);
}

TEST(JointTraining, JointStepGradientMatchesFiniteDifference) {
  Rng rng(7);
  LinearClassifier lc(5, 3, LcTrainingRule::kSoftmaxXent);
  lc.init(rng);
  Tensor x(Shape{5});
  for (float& v : x.values()) v = rng.uniform(0.0F, 1.0F);
  const std::size_t target = 1;
  const float weight = 0.7F;

  // Loss as a function of the features, at fixed (pre-update) weights.
  const auto loss_of = [&](const Tensor& feats) {
    const Tensor p = softmax(lc.scores(feats));
    return -weight * std::log(std::max(p[target], 1e-12F));
  };

  // Capture the analytic gradient; use lr=0 so weights stay fixed.
  const Tensor g = lc.joint_train_step(x, target, 0.0F, weight);
  const float eps = 1e-3F;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    Tensor hi = x;
    Tensor lo = x;
    hi[i] += eps;
    lo[i] -= eps;
    const float numeric = (loss_of(hi) - loss_of(lo)) / (2 * eps);
    EXPECT_NEAR(g[i], numeric, 5e-3F) << "feature " << i;
  }
}

TEST(JointTraining, WorksOnPaperArchitecture) {
  SyntheticMnistConfig gen_cfg;
  gen_cfg.seed = 9;
  const SyntheticMnist gen(gen_cfg);
  const Dataset train = gen.generate(300);

  Rng rng(10);
  const CdlArchitecture arch = mnist_3c();
  Network base = arch.make_baseline();
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kSoftmaxXent, rng);
  }
  JointTrainConfig cfg;
  cfg.epochs = 2;
  const float loss = train_cdl_joint(net, train, cfg, rng);
  EXPECT_TRUE(std::isfinite(loss));
  // Inference still functions end to end.
  net.set_delta(0.5F);
  const ClassificationResult r = net.classify(train.image(0));
  EXPECT_LT(r.label, 10U);
}

}  // namespace
}  // namespace cdl
