#include <gtest/gtest.h>

#include <fstream>

#include "cdl/architectures.h"
#include "core/rng.h"
#include "model_io.h"
#include "test_util.h"

namespace cdl {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) { return tmp_.path(name); }
  test::TempDir tmp_{"cdl_model_io_test"};
};

ConditionalNetwork make_net(const CdlArchitecture& arch, Rng& rng,
                            LcTrainingRule rule = LcTrainingRule::kLms) {
  Network base = arch.make_baseline();
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, rule, rng);
  }
  return net;
}

TEST_F(ModelIoTest, RoundTripPreservesEverything) {
  const CdlArchitecture arch = mnist_3c();
  Rng rng(5);
  ConditionalNetwork original = make_net(arch, rng);
  original.set_delta(0.65F);
  tools::save_model(path("m"), original, arch.name);

  tools::ModelMeta meta;
  ConditionalNetwork restored = tools::load_model(path("m"), &meta);
  EXPECT_EQ(meta.arch_name, "MNIST_3C");
  EXPECT_EQ(meta.stages, arch.default_stages);
  EXPECT_EQ(meta.rule, LcTrainingRule::kLms);
  EXPECT_NEAR(meta.delta, 0.65F, 1e-6F);
  EXPECT_EQ(restored.num_stages(), original.num_stages());
  EXPECT_NEAR(restored.activation_module().delta(), 0.65F, 1e-6F);

  // Same predictions on a probe input.
  Tensor x(arch.input_shape, 0.4F);
  EXPECT_EQ(restored.classify(x).label, original.classify(x).label);
  EXPECT_EQ(restored.classify(x).exit_stage, original.classify(x).exit_stage);
}

TEST_F(ModelIoTest, SoftmaxRuleSurvivesRoundTrip) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(7);
  ConditionalNetwork original =
      make_net(arch, rng, LcTrainingRule::kSoftmaxXent);
  tools::save_model(path("sm"), original, arch.name);

  tools::ModelMeta meta;
  const ConditionalNetwork restored = tools::load_model(path("sm"), &meta);
  EXPECT_EQ(meta.rule, LcTrainingRule::kSoftmaxXent);
  EXPECT_EQ(restored.classifier(0).rule(), LcTrainingRule::kSoftmaxXent);
}

TEST_F(ModelIoTest, ProvenanceRoundTrips) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(23);
  ConditionalNetwork net = make_net(arch, rng);
  tools::TrainProvenance prov;
  prov.seed = 77;
  prov.epochs = 9;
  prov.lc_epochs = 4;
  prov.git_describe = "abc1234-dirty";
  prov.final_loss = 1.25F;
  prov.val_accuracy = 0.8675F;
  tools::save_model(path("prov"), net, arch.name, &prov);

  tools::ModelMeta meta;
  (void)tools::load_model(path("prov"), &meta);
  ASSERT_TRUE(meta.provenance.has_value());
  EXPECT_EQ(meta.provenance->seed, 77U);
  EXPECT_EQ(meta.provenance->epochs, 9U);
  EXPECT_EQ(meta.provenance->lc_epochs, 4U);
  EXPECT_EQ(meta.provenance->git_describe, "abc1234-dirty");
  // %.9g round-trips any float32 exactly.
  EXPECT_EQ(meta.provenance->final_loss, 1.25F);
  EXPECT_EQ(meta.provenance->val_accuracy, 0.8675F);
}

TEST_F(ModelIoTest, ProvenanceAbsentForLegacyBundles) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(23);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("legacy"), net, arch.name);
  tools::ModelMeta meta;
  (void)tools::load_model(path("legacy"), &meta);
  EXPECT_FALSE(meta.provenance.has_value());
}

TEST_F(ModelIoTest, UnknownMetaKeysAreSkipped) {
  // Forward compatibility: a meta file from a newer tool must still load.
  const CdlArchitecture arch = mnist_2c();
  Rng rng(23);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("fwd"), net, arch.name);
  std::ofstream meta(path("fwd") + ".meta", std::ios::app);
  meta << "future_key some value\n";
  meta.close();
  EXPECT_NO_THROW((void)tools::load_model(path("fwd")));
}

TEST_F(ModelIoTest, MissingMetaRejected) {
  EXPECT_THROW((void)tools::load_model(path("absent")), std::runtime_error);
}

TEST_F(ModelIoTest, UnknownArchitectureRejected) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(9);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("bad"), net, "NOT_AN_ARCH");
  EXPECT_THROW((void)tools::load_model(path("bad")), std::runtime_error);
}

TEST_F(ModelIoTest, MissingWeightsFileRejected) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(13);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("orphan"), net, arch.name);
  std::filesystem::remove(path("orphan") + ".cdlw");
  EXPECT_THROW((void)tools::load_model(path("orphan")), std::runtime_error);
}

TEST_F(ModelIoTest, TruncatedWeightsRejected) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(13);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("cut"), net, arch.name);

  const std::string cdlw = path("cut") + ".cdlw";
  const auto full = std::filesystem::file_size(cdlw);
  std::filesystem::resize_file(cdlw, full / 2);
  EXPECT_THROW((void)tools::load_model(path("cut")), std::runtime_error);
}

TEST_F(ModelIoTest, GarbageMetaRejected) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(13);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("g"), net, arch.name);
  std::ofstream meta(path("g") + ".meta");
  meta << "this is not a model meta file\n";
  meta.close();
  EXPECT_THROW((void)tools::load_model(path("g")), std::runtime_error);
}

TEST_F(ModelIoTest, BadStagePrefixInMetaRejected) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(13);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("s"), net, arch.name);
  std::ofstream meta(path("s") + ".meta");
  meta << "arch " << arch.name << "\nstages 999\nrule lms\ndelta 0.5\n";
  meta.close();
  EXPECT_ANY_THROW((void)tools::load_model(path("s")));
}

TEST_F(ModelIoTest, MetaWeightsArchMismatchRejected) {
  // Weights saved for one architecture, meta claiming another: the tensor
  // list no longer matches and the CDLW loader must refuse it.
  const CdlArchitecture arch3 = mnist_3c();
  Rng rng(13);
  ConditionalNetwork net = make_net(arch3, rng);
  tools::save_model(path("mix"), net, arch3.name);
  std::ofstream meta(path("mix") + ".meta");
  meta << "arch " << mnist_2c().name << "\nstages "
       << mnist_2c().default_stages[0] << "\nrule lms\ndelta 0.5\n";
  meta.close();
  EXPECT_THROW((void)tools::load_model(path("mix")), std::runtime_error);
}

TEST_F(ModelIoTest, QuantCalibrationRoundTripsExactly) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(31);
  ConditionalNetwork net = make_net(arch, rng);
  QuantCalibration cal;
  const std::size_t boundaries = net.baseline().size() + 1;
  for (std::size_t b = 0; b < boundaries; ++b) {
    cal.amax.push_back(0.125F + 0.33F * static_cast<float>(b));
    cal.vmin.push_back(b == boundaries - 1 ? -1.71875F : 0.0F);
  }
  net.set_quantization(cal);
  tools::save_model(path("q"), net, arch.name, nullptr, &cal);

  tools::ModelMeta meta;
  const ConditionalNetwork restored = tools::load_model(path("q"), &meta);
  ASSERT_TRUE(meta.quant.has_value());
  ASSERT_TRUE(restored.has_quantization());
  ASSERT_EQ(restored.quantization().boundaries(), boundaries);
  for (std::size_t b = 0; b < boundaries; ++b) {
    // %.9g round-trips any float32 exactly.
    EXPECT_EQ(restored.quantization().amax[b], cal.amax[b]) << b;
    EXPECT_EQ(restored.quantization().vmin[b], cal.vmin[b]) << b;
  }
  // Precision always starts at fp32; int8 is an explicit opt-in after load.
  for (std::size_t s = 0; s <= restored.num_stages(); ++s) {
    EXPECT_EQ(restored.stage_precision(s), StagePrecision::kFp32) << s;
  }
}

TEST_F(ModelIoTest, ForeignQuantCalibrationDegradesToFp32) {
  // A calibration whose boundary count does not match the architecture
  // (e.g. a meta file edited by hand or written for another net) must not
  // install; the model still loads and runs fp32.
  const CdlArchitecture arch = mnist_2c();
  Rng rng(31);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("fq"), net, arch.name);
  std::ofstream meta(path("fq") + ".meta", std::ios::app);
  meta << "quant_amax 1 2 3\nquant_vmin 0 0 0\n";
  meta.close();
  const ConditionalNetwork restored = tools::load_model(path("fq"));
  EXPECT_FALSE(restored.has_quantization());
}

TEST_F(ModelIoTest, QuantKeysCoexistWithUnknownKeys) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(37);
  ConditionalNetwork net = make_net(arch, rng);
  QuantCalibration cal;
  cal.amax.assign(net.baseline().size() + 1, 2.0F);
  cal.vmin.assign(net.baseline().size() + 1, 0.0F);
  tools::save_model(path("qf"), net, arch.name, nullptr, &cal);
  std::ofstream meta(path("qf") + ".meta", std::ios::app);
  meta << "future_key some value\n";
  meta.close();
  const ConditionalNetwork restored = tools::load_model(path("qf"));
  EXPECT_TRUE(restored.has_quantization());
}

TEST_F(ModelIoTest, PrunedStageSetRoundTrips) {
  const CdlArchitecture arch = mnist_3c();
  Rng rng(11);
  ConditionalNetwork net = make_net(arch, rng);
  net.detach_classifier(1);  // as if Algorithm 1 rejected O2
  tools::save_model(path("pruned"), net, arch.name);

  tools::ModelMeta meta;
  const ConditionalNetwork restored = tools::load_model(path("pruned"), &meta);
  EXPECT_EQ(restored.num_stages(), 1U);
  ASSERT_EQ(meta.stages.size(), 1U);
  EXPECT_EQ(meta.stages[0], arch.default_stages[0]);
}

}  // namespace
}  // namespace cdl
