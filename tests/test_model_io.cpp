#include <gtest/gtest.h>

#include <filesystem>

#include "cdl/architectures.h"
#include "core/rng.h"
#include "model_io.h"

namespace cdl {
namespace {

namespace fs = std::filesystem;

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "cdl_model_io_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  fs::path dir_;
};

ConditionalNetwork make_net(const CdlArchitecture& arch, Rng& rng,
                            LcTrainingRule rule = LcTrainingRule::kLms) {
  Network base = arch.make_baseline();
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, rule, rng);
  }
  return net;
}

TEST_F(ModelIoTest, RoundTripPreservesEverything) {
  const CdlArchitecture arch = mnist_3c();
  Rng rng(5);
  ConditionalNetwork original = make_net(arch, rng);
  original.set_delta(0.65F);
  tools::save_model(path("m"), original, arch.name);

  tools::ModelMeta meta;
  ConditionalNetwork restored = tools::load_model(path("m"), &meta);
  EXPECT_EQ(meta.arch_name, "MNIST_3C");
  EXPECT_EQ(meta.stages, arch.default_stages);
  EXPECT_EQ(meta.rule, LcTrainingRule::kLms);
  EXPECT_NEAR(meta.delta, 0.65F, 1e-6F);
  EXPECT_EQ(restored.num_stages(), original.num_stages());
  EXPECT_NEAR(restored.activation_module().delta(), 0.65F, 1e-6F);

  // Same predictions on a probe input.
  Tensor x(arch.input_shape, 0.4F);
  EXPECT_EQ(restored.classify(x).label, original.classify(x).label);
  EXPECT_EQ(restored.classify(x).exit_stage, original.classify(x).exit_stage);
}

TEST_F(ModelIoTest, SoftmaxRuleSurvivesRoundTrip) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(7);
  ConditionalNetwork original =
      make_net(arch, rng, LcTrainingRule::kSoftmaxXent);
  tools::save_model(path("sm"), original, arch.name);

  tools::ModelMeta meta;
  const ConditionalNetwork restored = tools::load_model(path("sm"), &meta);
  EXPECT_EQ(meta.rule, LcTrainingRule::kSoftmaxXent);
  EXPECT_EQ(restored.classifier(0).rule(), LcTrainingRule::kSoftmaxXent);
}

TEST_F(ModelIoTest, MissingMetaRejected) {
  EXPECT_THROW((void)tools::load_model(path("absent")), std::runtime_error);
}

TEST_F(ModelIoTest, UnknownArchitectureRejected) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(9);
  ConditionalNetwork net = make_net(arch, rng);
  tools::save_model(path("bad"), net, "NOT_AN_ARCH");
  EXPECT_THROW((void)tools::load_model(path("bad")), std::runtime_error);
}

TEST_F(ModelIoTest, PrunedStageSetRoundTrips) {
  const CdlArchitecture arch = mnist_3c();
  Rng rng(11);
  ConditionalNetwork net = make_net(arch, rng);
  net.detach_classifier(1);  // as if Algorithm 1 rejected O2
  tools::save_model(path("pruned"), net, arch.name);

  tools::ModelMeta meta;
  const ConditionalNetwork restored = tools::load_model(path("pruned"), &meta);
  EXPECT_EQ(restored.num_stages(), 1U);
  ASSERT_EQ(meta.stages.size(), 1U);
  EXPECT_EQ(meta.stages[0], arch.default_stages[0]);
}

}  // namespace
}  // namespace cdl
