#include <gtest/gtest.h>

#include "data/synthetic_mnist.h"
#include "eval/ascii_art.h"

namespace cdl {
namespace {

TEST(AsciiArt, RequiresSingleChannelImage) {
  EXPECT_THROW((void)render_ascii(Tensor(Shape{2, 4, 4})), std::invalid_argument);
  EXPECT_THROW((void)render_ascii(Tensor(Shape{4, 4})), std::invalid_argument);
}

TEST(AsciiArt, DimensionsMatchImage) {
  const std::string s = render_ascii(Tensor(Shape{1, 3, 5}));
  // 3 lines of 5 glyphs + newline each.
  EXPECT_EQ(s.size(), 3U * 6);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
}

TEST(AsciiArt, ZeroIsBlankOneIsSolid) {
  Tensor img(Shape{1, 1, 2});
  img[0] = 0.0F;
  img[1] = 1.0F;
  const std::string s = render_ascii(img);
  EXPECT_EQ(s[0], ' ');
  EXPECT_EQ(s[1], '@');
}

TEST(AsciiArt, OutOfRangeValuesClamped) {
  Tensor img(Shape{1, 1, 2});
  img[0] = -5.0F;
  img[1] = 42.0F;
  const std::string s = render_ascii(img);
  EXPECT_EQ(s[0], ' ');
  EXPECT_EQ(s[1], '@');
}

TEST(AsciiArt, IntermediateDensityMonotone) {
  Tensor img(Shape{1, 1, 3});
  img[0] = 0.1F;
  img[1] = 0.5F;
  img[2] = 0.9F;
  const std::string ramp = " .:-=+*#%@";
  const std::string s = render_ascii(img);
  EXPECT_LT(ramp.find(s[0]), ramp.find(s[1]));
  EXPECT_LT(ramp.find(s[1]), ramp.find(s[2]));
}

TEST(AsciiArt, RowLayoutPlacesImagesSideBySide) {
  const Tensor a(Shape{1, 2, 3}, 1.0F);
  const Tensor b(Shape{1, 2, 2}, 0.0F);
  const std::string s = render_ascii_row({a, b}, {"left", "rt"}, 2);
  std::istringstream is(s);
  std::string caption_line;
  std::getline(is, caption_line);
  EXPECT_EQ(caption_line, "lef  rt");  // captions truncated/padded to width
  std::string row;
  std::getline(is, row);
  EXPECT_EQ(row, "@@@    ");
}

TEST(AsciiArt, RowValidatesCaptionCount) {
  const Tensor a(Shape{1, 2, 2});
  EXPECT_THROW((void)render_ascii_row({a}, {"x", "y"}), std::invalid_argument);
}

TEST(AsciiArt, EmptyRowGivesEmptyString) {
  EXPECT_EQ(render_ascii_row({}, {}), "");
}

TEST(AsciiArt, SyntheticDigitHasInkGlyphs) {
  const SyntheticMnist gen;
  const std::string s = render_ascii(gen.render(8, 0));
  // A rendered digit must contain both blanks and dense glyphs.
  EXPECT_NE(s.find(' '), std::string::npos);
  EXPECT_TRUE(s.find('@') != std::string::npos ||
              s.find('%') != std::string::npos);
}

}  // namespace
}  // namespace cdl
