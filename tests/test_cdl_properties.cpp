// Property-style sweeps of CDLN invariants across both paper architectures
// and the delta grid. These complement test_integration (single trained
// pipeline) by checking structural properties that must hold for ANY
// weights, trained or not.
#include <gtest/gtest.h>

#include <tuple>

#include "cdl/architectures.h"
#include "cdl/conditional_network.h"
#include "data/synthetic_mnist.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"

namespace cdl {
namespace {

ConditionalNetwork make_cdln(const CdlArchitecture& arch, std::uint64_t seed) {
  Rng rng(seed);
  Network base = arch.make_baseline();
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  return net;
}

Dataset small_data(std::size_t n) {
  SyntheticMnistConfig config;
  config.seed = 3;
  return SyntheticMnist(config).generate(n);
}

using ArchCase = std::tuple<std::size_t /*arch idx*/, float /*delta*/>;

class CdlnPropertySweep : public ::testing::TestWithParam<ArchCase> {};

TEST_P(CdlnPropertySweep, EvaluationBookkeepingConsistent) {
  const auto [arch_idx, delta] = GetParam();
  const CdlArchitecture arch = paper_architectures()[arch_idx];
  ConditionalNetwork net = make_cdln(arch, 17 + arch_idx);
  net.set_delta(delta);
  const Dataset data = small_data(80);
  const EnergyModel energy;
  const Evaluation eval = evaluate_cdl(net, data, energy);

  // Exit counts partition the dataset; correct counts never exceed them.
  std::size_t exits = 0;
  std::size_t correct = 0;
  for (std::size_t s = 0; s < eval.exit_counts.size(); ++s) {
    exits += eval.exit_counts[s];
    correct += eval.exit_correct[s];
    EXPECT_LE(eval.exit_correct[s], eval.exit_counts[s]);
    EXPECT_GE(eval.stage_accuracy(s), 0.0);
    EXPECT_LE(eval.stage_accuracy(s), 1.0);
  }
  EXPECT_EQ(exits, data.size());
  EXPECT_EQ(correct, eval.correct);

  // Error shares sum to the overall error rate.
  double error_share = 0.0;
  for (std::size_t s = 0; s < eval.exit_counts.size(); ++s) {
    error_share += eval.stage_error_share(s);
  }
  EXPECT_NEAR(error_share, 1.0 - eval.accuracy(), 1e-12);

  // Average ops equal the exit-distribution expectation exactly.
  double expected_ops = 0.0;
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    expected_ops += static_cast<double>(eval.exit_counts[s]) *
                    static_cast<double>(net.exit_ops(s).total_compute());
  }
  EXPECT_NEAR(eval.avg_ops(),
              expected_ops / static_cast<double>(eval.total), 1e-9);

  // Per-input cost is bracketed by the cheapest and the worst-case exit.
  EXPECT_GE(eval.avg_ops(),
            static_cast<double>(net.exit_ops(0).total_compute()) - 1e-9);
  EXPECT_LE(eval.avg_ops(),
            static_cast<double>(net.worst_case_ops().total_compute()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    ArchsAndDeltas, CdlnPropertySweep,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(0.2F, 0.5F, 0.8F, 2.0F)));

class ArchSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ArchSweep, OpsCacheMatchesFreshComputation) {
  // The cached exit-cost tables must equal a from-scratch profile walk.
  const CdlArchitecture arch = paper_architectures()[GetParam()];
  ConditionalNetwork net = make_cdln(arch, 23);
  const std::vector<OpCount> per_layer =
      net.baseline().layer_ops(arch.input_shape);

  OpCount running;
  std::size_t layer = 0;
  for (std::size_t s = 0; s < net.num_stages(); ++s) {
    for (; layer < net.stage_prefix(s); ++layer) running += per_layer[layer];
    OpCount expected = running;
    expected += net.classifier(s).forward_ops();
    expected += net.activation_module().decision_ops(10);
    // exit_ops(s) additionally includes earlier stages' classifier costs.
    OpCount cumulative = expected;
    for (std::size_t e = 0; e < s; ++e) {
      cumulative += net.classifier(e).forward_ops();
      cumulative += net.activation_module().decision_ops(10);
    }
    EXPECT_EQ(net.exit_ops(s), cumulative) << "stage " << s;
  }
}

TEST_P(ArchSweep, AttachDetachKeepsOpsTablesCoherent) {
  const CdlArchitecture arch = paper_architectures()[GetParam()];
  ConditionalNetwork net = make_cdln(arch, 29);
  const OpCount before = net.worst_case_ops();

  // Detaching every stage leaves only baseline + softmax + argmax.
  while (net.num_stages() > 0) net.detach_classifier(0);
  const OpCount bare = net.worst_case_ops();
  EXPECT_LT(bare.total_compute(), before.total_compute());
  EXPECT_GT(bare.total_compute(),
            net.baseline_forward_ops().total_compute());

  // Re-attaching restores the original cost table.
  Rng rng(31);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  EXPECT_EQ(net.worst_case_ops(), before);
}

INSTANTIATE_TEST_SUITE_P(Archs, ArchSweep, ::testing::Values(0, 1));

}  // namespace
}  // namespace cdl
