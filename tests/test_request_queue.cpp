// MpmcQueue + Clock: FIFO/backpressure/close semantics on a single thread,
// deterministic timed waits on a ManualClock, and a multi-producer/multi-
// consumer stress run asserting the exactly-once invariant (every item pushed
// successfully is popped exactly once — nothing lost, nothing double-served).
// No test sleeps: threads block on virtual-clock or queue events only.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/clock.h"
#include "serve/request_queue.h"

namespace cdl::serve {
namespace {

TEST(MpmcQueue, RejectsZeroCapacity) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueue, FifoOrderSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    int v = i;
    EXPECT_EQ(q.try_push(std::move(v)), PushResult::kOk);
  }
  EXPECT_EQ(q.size(), 5U);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    EXPECT_EQ(q.try_pop(out), PopResult::kItem);
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(q.size(), 0U);
}

TEST(MpmcQueue, TryPopEmptyIsTimeoutNotClosed) {
  MpmcQueue<int> q(2);
  int out = 0;
  EXPECT_EQ(q.try_pop(out), PopResult::kTimeout);
}

TEST(MpmcQueue, BackpressureFullThenRecovers) {
  MpmcQueue<int> q(2);
  int a = 1;
  int b = 2;
  int c = 3;
  EXPECT_EQ(q.try_push(std::move(a)), PushResult::kOk);
  EXPECT_EQ(q.try_push(std::move(b)), PushResult::kOk);
  EXPECT_EQ(q.try_push(std::move(c)), PushResult::kFull);  // bounded: reject
  int out = 0;
  EXPECT_EQ(q.try_pop(out), PopResult::kItem);
  EXPECT_EQ(out, 1);
  int d = 4;
  EXPECT_EQ(q.try_push(std::move(d)), PushResult::kOk);  // space freed
}

TEST(MpmcQueue, CloseDrainsThenReportsClosed) {
  MpmcQueue<int> q(4);
  int a = 7;
  int b = 8;
  EXPECT_EQ(q.try_push(std::move(a)), PushResult::kOk);
  EXPECT_EQ(q.try_push(std::move(b)), PushResult::kOk);
  q.close();
  EXPECT_TRUE(q.closed());
  int rejected = 9;
  EXPECT_EQ(q.try_push(std::move(rejected)), PushResult::kClosed);
  // Items queued before close stay poppable (drain-on-shutdown contract).
  int out = 0;
  EXPECT_EQ(q.try_pop(out), PopResult::kItem);
  EXPECT_EQ(out, 7);
  EXPECT_EQ(q.try_pop(out), PopResult::kItem);
  EXPECT_EQ(out, 8);
  EXPECT_EQ(q.try_pop(out), PopResult::kClosed);
}

TEST(MpmcQueue, PopUntilPastDeadlineReturnsImmediately) {
  ManualClock clock(500);
  MpmcQueue<int> q(2);
  int out = 0;
  // Deadline already reached: no wait, no wakeup needed.
  EXPECT_EQ(q.pop_until(out, clock, 500), PopResult::kTimeout);
  EXPECT_EQ(q.pop_until(out, clock, 100), PopResult::kTimeout);
}

TEST(MpmcQueue, PopUntilWakesOnManualAdvance) {
  ManualClock clock(0);
  MpmcQueue<int> q(2);
  PopResult result = PopResult::kItem;
  std::thread waiter([&] {
    int out = 0;
    result = q.pop_until(out, clock, 1000);
  });
  clock.advance(1000);  // virtual time reaches the deadline -> kTimeout
  waiter.join();
  EXPECT_EQ(result, PopResult::kTimeout);
}

TEST(MpmcQueue, PopWakesOnPush) {
  ManualClock clock(0);
  MpmcQueue<int> q(2);
  int out = 0;
  PopResult result = PopResult::kTimeout;
  std::thread waiter([&] { result = q.pop(out, clock); });
  int v = 42;
  ASSERT_EQ(q.try_push(std::move(v)), PushResult::kOk);
  waiter.join();
  EXPECT_EQ(result, PopResult::kItem);
  EXPECT_EQ(out, 42);
}

TEST(MpmcQueue, PopWakesOnClose) {
  ManualClock clock(0);
  MpmcQueue<int> q(2);
  PopResult result = PopResult::kItem;
  std::thread waiter([&] {
    int out = 0;
    result = q.pop(out, clock);
  });
  q.close();
  waiter.join();
  EXPECT_EQ(result, PopResult::kClosed);
}

TEST(MpmcQueue, PushUntilBlocksUntilSpace) {
  ManualClock clock(0);
  MpmcQueue<int> q(1);
  int a = 1;
  ASSERT_EQ(q.try_push(std::move(a)), PushResult::kOk);
  PushResult result = PushResult::kFull;
  std::thread producer([&] {
    int b = 2;
    result = q.push_until(std::move(b), clock, Clock::kNever);
  });
  int out = 0;
  ASSERT_EQ(q.try_pop(out), PopResult::kItem);  // frees the slot
  producer.join();
  EXPECT_EQ(result, PushResult::kOk);
  ASSERT_EQ(q.try_pop(out), PopResult::kItem);
  EXPECT_EQ(out, 2);
}

TEST(ManualClock, AdvanceAndSet) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now_ns(), 100U);
  clock.advance(50);
  EXPECT_EQ(clock.now_ns(), 150U);
  clock.set_ns(400);
  EXPECT_EQ(clock.now_ns(), 400U);
  EXPECT_THROW(clock.set_ns(399), std::invalid_argument);  // time is monotonic
}

TEST(ManualClock, WaitUntilPredicateAlreadyTrue) {
  ManualClock clock(0);
  std::mutex m;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(m);
  EXPECT_TRUE(clock.wait_until(cv, lk, Clock::kNever, [] { return true; }));
}

TEST(ManualClock, WaitUntilDeadlinePassedReturnsPredicate) {
  ManualClock clock(10);
  std::mutex m;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lk(m);
  EXPECT_FALSE(clock.wait_until(cv, lk, 5, [] { return false; }));
}

TEST(RealClock, MonotoneAndSharedInstance) {
  RealClock& clock = RealClock::instance();
  const std::uint64_t a = clock.now_ns();
  const std::uint64_t b = clock.now_ns();
  EXPECT_LE(a, b);
  EXPECT_EQ(&clock, &RealClock::instance());
}

TEST(ResultStrings, Roundtrip) {
  EXPECT_STREQ(to_string(PushResult::kOk), "ok");
  EXPECT_STREQ(to_string(PushResult::kFull), "full");
  EXPECT_STREQ(to_string(PushResult::kClosed), "closed");
  EXPECT_STREQ(to_string(PopResult::kItem), "item");
  EXPECT_STREQ(to_string(PopResult::kTimeout), "timeout");
  EXPECT_STREQ(to_string(PopResult::kClosed), "closed");
}

/// Stress: P producers each blocking-push M unique ids through a queue far
/// smaller than P*M, C consumers blocking-pop until the queue closes. The
/// union of consumed ids must equal the union of produced ids exactly —
/// no request lost, none double-served. Runs under TSan in CI.
TEST(MpmcQueueStress, ExactlyOnceUnderContention) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 3;
  constexpr std::size_t kPerProducer = 500;
  RealClock& clock = RealClock::instance();
  MpmcQueue<std::uint64_t> q(8);  // small: forces full/empty transitions

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t id = p * kPerProducer + i;
        ASSERT_EQ(q.push_until(std::move(id), clock, Clock::kNever),
                  PushResult::kOk);
      }
    });
  }

  std::vector<std::vector<std::uint64_t>> consumed(kConsumers);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::uint64_t id = 0;
      while (q.pop(id, clock) == PopResult::kItem) consumed[c].push_back(id);
    });
  }

  for (std::thread& t : producers) t.join();
  q.close();
  for (std::thread& t : consumers) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& ids : consumed) all.insert(all.end(), ids.begin(), ids.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), kProducers * kPerProducer);
  for (std::uint64_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i);  // sorted unique range 0..N-1 <=> exactly once
  }
}

/// Stress with shutdown racing the producers: close() lands mid-stream, so
/// producers see kClosed on some pushes. The invariant tightens to "consumed
/// == successfully pushed", still exactly once.
TEST(MpmcQueueStress, InterleavedShutdownLosesNothingAccepted) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 2;
  constexpr std::size_t kPerProducer = 400;
  constexpr std::uint64_t kCloseAfter = 300;  // consumer-observed items
  RealClock& clock = RealClock::instance();
  MpmcQueue<std::uint64_t> q(4);

  std::vector<std::vector<std::uint64_t>> pushed(kProducers);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t id = p * kPerProducer + i;
        if (q.push_until(std::move(id), clock, Clock::kNever) ==
            PushResult::kOk) {
          pushed[p].push_back(p * kPerProducer + i);
        } else {
          break;  // closed mid-stream: stop producing
        }
      }
    });
  }

  std::atomic<std::uint64_t> seen{0};
  std::vector<std::vector<std::uint64_t>> consumed(kConsumers);
  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::uint64_t id = 0;
      while (q.pop(id, clock) == PopResult::kItem) {
        consumed[c].push_back(id);
        if (seen.fetch_add(1) + 1 == kCloseAfter) q.close();  // mid-stream
      }
    });
  }

  for (std::thread& t : producers) t.join();
  q.close();  // in case kCloseAfter was never reached
  for (std::thread& t : consumers) t.join();

  std::vector<std::uint64_t> want;
  for (const auto& ids : pushed) want.insert(want.end(), ids.begin(), ids.end());
  std::vector<std::uint64_t> got;
  for (const auto& ids : consumed) got.insert(got.end(), ids.begin(), ids.end());
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);  // every accepted item served exactly once
}

}  // namespace
}  // namespace cdl::serve
