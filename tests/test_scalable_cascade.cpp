#include <gtest/gtest.h>

#include "data/synthetic_mnist.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "scalable/scalable_cascade.h"

namespace cdl {
namespace {

Network linear_stage(std::size_t in, std::size_t classes, Rng& rng) {
  Network net;
  net.emplace<Dense>(in, classes);
  net.init(rng);
  return net;
}

Network mlp_stage(std::size_t in, std::size_t hidden, std::size_t classes,
                  Rng& rng) {
  Network net;
  net.emplace<Dense>(in, hidden);
  net.emplace<Sigmoid>();
  net.emplace<Dense>(hidden, classes);
  net.init(rng);
  return net;
}

TEST(ScalableCascade, StageValidation) {
  ScalableCascade cascade(Shape{4});
  Rng rng(1);
  EXPECT_THROW((void)cascade.classify(Tensor(Shape{4})), std::logic_error);

  cascade.add_stage(linear_stage(4, 3, rng));
  EXPECT_EQ(cascade.num_stages(), 1U);
  // A stage with a different class count is rejected.
  EXPECT_THROW((void)cascade.add_stage(linear_stage(4, 5, rng)),
               std::invalid_argument);
  // A stage that cannot consume the input shape is rejected.
  EXPECT_THROW((void)cascade.add_stage(linear_stage(7, 3, rng)),
               std::invalid_argument);
  EXPECT_THROW((void)cascade.stage(1), std::out_of_range);
}

TEST(ScalableCascade, FinalStageAlwaysDecides) {
  ScalableCascade cascade(Shape{4});
  Rng rng(2);
  cascade.add_stage(linear_stage(4, 3, rng));
  cascade.add_stage(mlp_stage(4, 6, 3, rng));
  cascade.set_delta(2.0F);  // nothing can clear this threshold
  const ClassificationResult r = cascade.classify(Tensor(Shape{4}, 0.3F));
  EXPECT_EQ(r.exit_stage, 1U);  // final stage decided anyway
  EXPECT_LT(r.label, 3U);
}

TEST(ScalableCascade, ConfidentFirstStageTerminatesEarly) {
  ScalableCascade cascade(Shape{4});
  Rng rng(3);
  cascade.add_stage(linear_stage(4, 3, rng));
  cascade.add_stage(mlp_stage(4, 6, 3, rng));
  // Rig stage 0 to a huge logit for class 2: softmax -> ~1.0.
  auto params = cascade.stage(0).parameters();
  params[0]->zero();
  params[1]->zero();
  (*params[1])[2] = 50.0F;
  cascade.set_delta(0.9F);
  const ClassificationResult r = cascade.classify(Tensor(Shape{4}, 0.1F));
  EXPECT_EQ(r.exit_stage, 0U);
  EXPECT_EQ(r.label, 2U);
}

TEST(ScalableCascade, ExitOpsAccumulateFullStageCosts) {
  ScalableCascade cascade(Shape{4});
  Rng rng(4);
  cascade.add_stage(linear_stage(4, 3, rng));
  cascade.add_stage(mlp_stage(4, 6, 3, rng));
  const OpCount first = cascade.exit_ops(0);
  const OpCount both = cascade.exit_ops(1);
  // No sharing: exiting at stage 1 pays stage 0's cost in full again.
  EXPECT_GT(both.macs, first.macs + 4 * 6);  // at least the MLP's first layer
  EXPECT_EQ(cascade.worst_case_ops(), both);
  EXPECT_THROW((void)cascade.exit_ops(2), std::out_of_range);
}

TEST(ScalableCascade, OpsMatchExitTableDuringClassify) {
  ScalableCascade cascade(Shape{4});
  Rng rng(5);
  cascade.add_stage(linear_stage(4, 3, rng));
  cascade.add_stage(mlp_stage(4, 6, 3, rng));
  cascade.set_delta(2.0F);
  const ClassificationResult r = cascade.classify(Tensor(Shape{4}, 0.5F));
  EXPECT_EQ(r.ops, cascade.exit_ops(1));
}

TEST(ScalableCascade, TrainingRoutesInstancesLikeAlgorithmOne) {
  SyntheticMnistConfig config;
  config.seed = 17;
  const SyntheticMnist gen(config);
  const Dataset train = gen.generate(300);

  ScalableCascade cascade(Shape{1, 28, 28});
  Rng rng(6);
  cascade.add_stage(linear_stage(28 * 28, 10, rng));
  cascade.add_stage(mlp_stage(28 * 28, 24, 10, rng));

  ScalableTrainConfig cfg;
  cfg.epochs_per_stage = {6, 6};
  const ScalableTrainReport report =
      train_scalable_cascade(cascade, train, cfg, rng);

  ASSERT_EQ(report.reached.size(), 2U);
  EXPECT_EQ(report.reached[0], train.size());
  EXPECT_EQ(report.reached[1], report.reached[0] - report.classified[0]);
  // The raw-pixel linear stage should confidently take a decent share.
  EXPECT_GT(report.classified[0], train.size() / 4);
}

TEST(ScalableCascade, TrainedCascadeBeatsChance) {
  SyntheticMnistConfig config;
  config.seed = 19;
  const SyntheticMnist gen(config);
  const Dataset train = gen.generate(400);
  const Dataset test = gen.generate(150, 1ULL << 20);

  ScalableCascade cascade(Shape{1, 28, 28});
  Rng rng(7);
  cascade.add_stage(linear_stage(28 * 28, 10, rng));
  ScalableTrainConfig cfg;
  cfg.epochs_per_stage = {10};
  (void)train_scalable_cascade(cascade, train, cfg, rng);
  cascade.set_delta(0.5F);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (cascade.classify(test.image(i)).label == test.label(i)) ++correct;
  }
  EXPECT_GT(correct, test.size() / 2);
}

TEST(ScalableCascade, TrainValidation) {
  ScalableCascade empty(Shape{4});
  Rng rng(8);
  ScalableTrainConfig cfg;
  Dataset data;
  data.add(Tensor(Shape{4}), 0);
  EXPECT_THROW((void)train_scalable_cascade(empty, data, cfg, rng),
               std::invalid_argument);

  ScalableCascade cascade(Shape{4});
  cascade.add_stage(linear_stage(4, 3, rng));
  EXPECT_THROW((void)train_scalable_cascade(cascade, Dataset{}, cfg, rng),
               std::invalid_argument);
  cfg.epochs_per_stage.clear();
  EXPECT_THROW((void)train_scalable_cascade(cascade, data, cfg, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace cdl
