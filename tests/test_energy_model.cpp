#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace cdl {
namespace {

TEST(EnergyModel, ZeroOpsZeroEnergy) {
  const EnergyModel model;
  EXPECT_EQ(model.energy_pj(OpCount{}), 0.0);
}

TEST(EnergyModel, ChargesEachCategoryAtItsRate) {
  const EnergyModel model;
  const EnergyCosts& c = model.costs();
  OpCount ops;
  ops.macs = 2;
  EXPECT_DOUBLE_EQ(model.energy_pj(ops), 2 * c.mac_pj);
  ops = OpCount{};
  ops.mem_reads = 3;
  EXPECT_DOUBLE_EQ(model.energy_pj(ops), 3 * c.mem_read_pj);
  ops = OpCount{};
  ops.divides = 5;
  EXPECT_DOUBLE_EQ(model.energy_pj(ops), 5 * c.divide_pj);
}

TEST(EnergyModel, EnergyIsAdditive) {
  const EnergyModel model;
  OpCount a;
  a.macs = 10;
  a.adds = 5;
  OpCount b;
  b.compares = 7;
  b.mem_writes = 2;
  EXPECT_DOUBLE_EQ(model.energy_pj(a + b),
                   model.energy_pj(a) + model.energy_pj(b));
}

TEST(EnergyModel, MonotoneInOpCounts) {
  const EnergyModel model;
  OpCount small;
  small.macs = 100;
  small.mem_reads = 200;
  OpCount large = small;
  large.macs += 1;
  EXPECT_GT(model.energy_pj(large), model.energy_pj(small));
}

TEST(EnergyModel, DefaultCostsMatch45nmRegime) {
  const EnergyCosts c = EnergyCosts::cmos_45nm();
  // A MAC must cost more than a bare add, and SRAM traffic must be the same
  // order as a MAC — the relations the 45 nm literature establishes.
  EXPECT_GT(c.mac_pj, c.add_pj);
  EXPECT_GT(c.mem_read_pj, c.add_pj);
  EXPECT_LT(c.mac_pj / c.mem_read_pj, 10.0);
  EXPECT_GT(c.mac_pj / c.mem_read_pj, 0.1);
}

TEST(EnergyModel, ComputeOnlyProfileZeroesMemory) {
  const EnergyModel model(EnergyCosts::compute_only());
  OpCount ops;
  ops.mem_reads = 1000;
  ops.mem_writes = 1000;
  EXPECT_EQ(model.energy_pj(ops), 0.0);
  ops.macs = 1;
  EXPECT_GT(model.energy_pj(ops), 0.0);
}

TEST(EnergyModel, NegativeCostsRejected) {
  EnergyCosts costs;
  costs.mac_pj = -1.0;
  EXPECT_THROW(EnergyModel{costs}, std::invalid_argument);
}

class EnergyScalingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnergyScalingSweep, EnergyScalesLinearlyWithOpMultiplier) {
  const EnergyModel model;
  OpCount unit;
  unit.macs = 3;
  unit.adds = 2;
  unit.compares = 1;
  unit.activations = 4;
  unit.mem_reads = 7;
  OpCount scaled = unit;
  scaled *= GetParam();
  EXPECT_DOUBLE_EQ(model.energy_pj(scaled),
                   static_cast<double>(GetParam()) * model.energy_pj(unit));
}

INSTANTIATE_TEST_SUITE_P(Multipliers, EnergyScalingSweep,
                         ::testing::Values(0, 1, 10, 1000, 1000000));

}  // namespace
}  // namespace cdl
