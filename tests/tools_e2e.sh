#!/bin/sh
# End-to-end exercise of the command-line tools: train a tiny model, save
# the bundle, reload and evaluate it, override delta, and render digits to
# PGM. Any non-zero exit or missing artifact fails the test.
set -eu

TOOLS_DIR="$1"
# CMake passes the CDL_TRACE option value; with tracing compiled out
# (-DCDL_TRACE=OFF) the trace file is still valid JSON but carries no spans.
TRACING="${2:-ON}"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$TOOLS_DIR/cdl_train" --arch mnist_3c --train-n 400 --val-n 100 \
    --epochs 2 --lc-epochs 4 --seed 3 --out "$WORK_DIR/model" > "$WORK_DIR/train.log"
test -f "$WORK_DIR/model.cdlw"
test -f "$WORK_DIR/model.meta"
grep -q "model saved" "$WORK_DIR/train.log"

"$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/model" --test-n 100 --seed 3 \
    --per-digit --confusion --trace-out "$WORK_DIR/trace.json" \
    --profile-csv "$WORK_DIR/profile.csv" > "$WORK_DIR/eval.log"
grep -q "accuracy" "$WORK_DIR/eval.log"
grep -q "exit distribution" "$WORK_DIR/eval.log"
grep -q "exit profile" "$WORK_DIR/eval.log"
grep -q "obs summary" "$WORK_DIR/eval.log"
grep -q "truth" "$WORK_DIR/eval.log"

# The trace must be valid Chrome trace-event JSON and the profile CSV must
# carry the expected header. (python3 is present on CI; skip quietly where
# it is not.)
test -s "$WORK_DIR/trace.json"
if command -v python3 >/dev/null 2>&1; then
  if [ "$TRACING" = "OFF" ]; then
    python3 -c "import json, sys; \
d = json.load(open(sys.argv[1])); \
assert isinstance(d['traceEvents'], list), 'bad traceEvents'" \
        "$WORK_DIR/trace.json"
  else
    python3 -c "import json, sys; \
d = json.load(open(sys.argv[1])); \
assert isinstance(d['traceEvents'], list) and d['traceEvents'], 'no events'" \
        "$WORK_DIR/trace.json"
  fi
fi
head -n 1 "$WORK_DIR/profile.csv" | grep -q "^stage,exits,share"

# Observability surface: --report must emit a valid cdl-run-report/1 whose
# attribution rows sum bit-exactly to the whole-run OPS (validated by
# bench_check.py --validate-report, which also checks the perf-degradation
# null shape), and --metrics-out must be EOF-terminated OpenMetrics text.
"$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/model" --test-n 100 --seed 3 \
    --threads 2 --perf --report "$WORK_DIR/report.json" \
    --metrics-out "$WORK_DIR/metrics.txt" > "$WORK_DIR/report.log"
grep -q "run report written" "$WORK_DIR/report.log"
grep -q "perf:" "$WORK_DIR/report.log"
grep -q "cdl_samples_total" "$WORK_DIR/metrics.txt"
grep -q "cdl_stage_confidence_bucket" "$WORK_DIR/metrics.txt"
tail -n 1 "$WORK_DIR/metrics.txt" | grep -q "^# EOF"
SCRIPTS_DIR="$(dirname "$0")/../scripts"
if command -v python3 >/dev/null 2>&1; then
  python3 "$SCRIPTS_DIR/bench_check.py" \
      --validate-report "$WORK_DIR/report.json" --tolerance 0.5
fi

# cdl_train's post-training measured region emits the same artifacts.
"$TOOLS_DIR/cdl_train" --arch mnist_2c --train-n 200 --val-n 50 \
    --epochs 1 --lc-epochs 2 --seed 5 --out "$WORK_DIR/model2" \
    --report "$WORK_DIR/train_report.json" > "$WORK_DIR/train2.log"
grep -q "run report written" "$WORK_DIR/train2.log"
if command -v python3 >/dev/null 2>&1; then
  python3 "$SCRIPTS_DIR/bench_check.py" \
      --validate-report "$WORK_DIR/train_report.json" --tolerance 0.5
fi

# Training telemetry: --train-log / --train-report must emit the
# cdl-train-events/1 JSONL stream and cdl-train-report/1 JSON, both
# byte-identical across thread counts (training aggregates serially; the
# determinism contract covers every emitted byte), with every Algorithm-1
# admission gain recomputable from its own recorded inputs.
"$TOOLS_DIR/cdl_train" --arch mnist_2c --train-n 200 --val-n 50 \
    --epochs 2 --lc-epochs 2 --seed 5 --prune --log-batches 50 \
    --train-log "$WORK_DIR/events1.jsonl" \
    --train-report "$WORK_DIR/train_telemetry1.json" \
    --out "$WORK_DIR/model3" > "$WORK_DIR/train3.log"
grep -q "train report written" "$WORK_DIR/train3.log"
"$TOOLS_DIR/cdl_train" --arch mnist_2c --train-n 200 --val-n 50 \
    --epochs 2 --lc-epochs 2 --seed 5 --prune --log-batches 50 \
    --threads 2 \
    --train-log "$WORK_DIR/events2.jsonl" \
    --train-report "$WORK_DIR/train_telemetry2.json" \
    --out "$WORK_DIR/model3b" > /dev/null
cmp "$WORK_DIR/events1.jsonl" "$WORK_DIR/events2.jsonl"
cmp "$WORK_DIR/train_telemetry1.json" "$WORK_DIR/train_telemetry2.json"
if command -v python3 >/dev/null 2>&1; then
  python3 "$SCRIPTS_DIR/bench_check.py" \
      --validate-train-report "$WORK_DIR/train_telemetry1.json" \
      --train-log "$WORK_DIR/events1.jsonl"
fi
# Provenance must round-trip through the model bundle into cdl_eval.
grep -q "^seed 5$" "$WORK_DIR/model3.meta"
"$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/model3" --test-n 50 --seed 5 \
    | grep -q "trained: seed 5, 2 epochs"

# Delta override must be reflected in the report header.
"$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/model" --test-n 50 --seed 3 \
    --delta 0.75 | grep -q "delta 0.75"

# Serving: cdl_serve pushes the bundle through the full queue -> dynamic
# batcher -> cascade pipeline. With drain-on-shutdown every submitted
# request must complete ("served N/N ok"), the SLO counters (including the
# per-phase latency decomposition and exit/drift families) must land in the
# OpenMetrics exposition, the cdl-serve-report/1 JSON must pass
# bench_check.py's accounting/percentile validation, the live telemetry
# JSONL must pass --validate-telemetry, and --trace-out must capture the
# request-lifecycle spans. Serving two checkpoints at once exercises
# per-model routing.
"$TOOLS_DIR/cdl_serve" --model "$WORK_DIR/model,$WORK_DIR/model2" \
    --images 80 --seed 3 --workers 2 --max-batch 8 --max-delay-us 500 \
    --deadline-ms 5000 --drift-window 16 \
    --report "$WORK_DIR/serve_report.json" \
    --metrics-out "$WORK_DIR/serve_metrics.txt" \
    --telemetry-out "$WORK_DIR/serve_telemetry.jsonl" \
    --telemetry-interval-ms 10 \
    --trace-out "$WORK_DIR/serve_trace.json" > "$WORK_DIR/serve.log"
grep -q "served 80/80 ok" "$WORK_DIR/serve.log"
grep -q "serve report written" "$WORK_DIR/serve.log"
grep -q "telemetry" "$WORK_DIR/serve.log"
grep -q "cdl_serve_requests_total" "$WORK_DIR/serve_metrics.txt"
grep -q "cdl_serve_latency_ms" "$WORK_DIR/serve_metrics.txt"
grep -q "cdl_serve_phase_queue_ms" "$WORK_DIR/serve_metrics.txt"
grep -q "cdl_serve_phase_compute_ms" "$WORK_DIR/serve_metrics.txt"
grep -q "cdl_serve_exits_total" "$WORK_DIR/serve_metrics.txt"
grep -q "cdl_serve_drift_score" "$WORK_DIR/serve_metrics.txt"
grep -q 'model="model2"' "$WORK_DIR/serve_metrics.txt"
tail -n 1 "$WORK_DIR/serve_metrics.txt" | grep -q "^# EOF"
test -s "$WORK_DIR/serve_telemetry.jsonl"
head -n 1 "$WORK_DIR/serve_telemetry.jsonl" | grep -q "cdl-serve-telemetry/1"
test -s "$WORK_DIR/serve_trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 "$SCRIPTS_DIR/bench_check.py" \
      --validate-serving "$WORK_DIR/serve_report.json" \
      --validate-telemetry "$WORK_DIR/serve_telemetry.jsonl"
  if [ "$TRACING" != "OFF" ]; then
    python3 -c "import json, sys; \
d = json.load(open(sys.argv[1])); \
names = {e.get('name') for e in d['traceEvents']}; \
assert 'serve/execute' in names and 'serve/respond' in names, names" \
        "$WORK_DIR/serve_trace.json"
  fi
fi
# The quantized cascade serves through the same engine (the default
# cdl_train calibration rides in the bundle's .meta).
"$TOOLS_DIR/cdl_serve" --model "$WORK_DIR/model2" --int8 --images 20 \
    --seed 3 --workers 0 | grep -q "int8"

# Live HTTP observer: cdl_serve binds an ephemeral loopback port
# (--observe-port 0), we scrape /healthz, /metrics, and /report while the
# process lingers over its final state, then GET /quitquitquit ends the
# linger window early. The scrape must be valid OpenMetrics carrying the
# cdl_serve_energy_* families; the near-zero budget guarantees the watchdog
# scores at least one breached window so the lazily registered rate gauge
# and breach counter are present too.
if command -v python3 >/dev/null 2>&1; then
  "$TOOLS_DIR/cdl_serve" --model "$WORK_DIR/model" --images 40 --seed 3 \
      --workers 1 --max-batch 4 --max-delay-us 500 --deadline-ms 5000 \
      --energy-budget-mj-s 0.000001 --energy-window-ms 50 \
      --observe-port 0 --observe-linger-ms 20000 \
      --report "$WORK_DIR/observe_report.json" \
      > "$WORK_DIR/observe.log" &
  OBSERVE_PID=$!
  OBSERVE_PORT=""
  for _ in $(seq 1 100); do
    OBSERVE_PORT=$(sed -n \
        's/^observer listening on port \([0-9][0-9]*\)$/\1/p' \
        "$WORK_DIR/observe.log")
    [ -n "$OBSERVE_PORT" ] && break
    sleep 0.1
  done
  test -n "$OBSERVE_PORT"
  python3 - "$OBSERVE_PORT" "$WORK_DIR/scrape_metrics.txt" <<'PYEOF'
import sys
import urllib.request

port, out_path = sys.argv[1], sys.argv[2]


def get(target):
    url = "http://127.0.0.1:%s%s" % (port, target)
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), \
            resp.read().decode()


status, _, body = get("/healthz")
assert status == 200 and body.strip() == "ok", (status, body)

status, ctype, body = get("/metrics")
assert status == 200, status
assert ctype.startswith("application/openmetrics-text"), ctype
assert body.rstrip().endswith("# EOF"), "missing OpenMetrics EOF terminator"
for family in ("cdl_serve_requests_total", "cdl_serve_energy_pj",
               "cdl_serve_energy_total_joules",
               "cdl_serve_energy_rate_mj_per_s",
               "cdl_serve_energy_budget_breaches_total"):
    assert family in body, "missing OpenMetrics family %s" % family
with open(out_path, "w") as fh:
    fh.write(body)

status, _, body = get("/report")
assert status == 200 and '"cdl-serve-report/1"' in body, body[:200]

status, _, _ = get("/quitquitquit")
assert status == 200
PYEOF
  wait "$OBSERVE_PID"
  grep -q "served 40/40 ok" "$WORK_DIR/observe.log"
  grep -q "observer served" "$WORK_DIR/observe.log"
  python3 "$SCRIPTS_DIR/bench_check.py" \
      --validate-serving "$WORK_DIR/observe_report.json"
fi

"$TOOLS_DIR/cdl_render" --digit 7 --count 2 --quiet \
    --out-dir "$WORK_DIR/pgms"
test -f "$WORK_DIR/pgms/digit7_000.pgm"
test -f "$WORK_DIR/pgms/digit7_001.pgm"

# Bad usage must fail loudly.
if "$TOOLS_DIR/cdl_train" --no-such-flag 2>/dev/null; then
  echo "cdl_train accepted an unknown flag" >&2
  exit 1
fi
if "$TOOLS_DIR/cdl_eval" --no-such-flag 2>/dev/null; then
  echo "cdl_eval accepted an unknown flag" >&2
  exit 1
fi
if "$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/does_not_exist" 2>/dev/null; then
  echo "cdl_eval accepted a missing model" >&2
  exit 1
fi
if "$TOOLS_DIR/cdl_serve" --model "$WORK_DIR/does_not_exist" 2>/dev/null; then
  echo "cdl_serve accepted a missing model" >&2
  exit 1
fi
if "$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/model" --test-n 50 --seed 3 \
    --trace-out "$WORK_DIR/no_such_dir/t.json" 2>/dev/null; then
  echo "cdl_eval accepted an unwritable trace path" >&2
  exit 1
fi

echo "tools end-to-end: OK"
