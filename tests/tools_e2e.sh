#!/bin/sh
# End-to-end exercise of the command-line tools: train a tiny model, save
# the bundle, reload and evaluate it, override delta, and render digits to
# PGM. Any non-zero exit or missing artifact fails the test.
set -eu

TOOLS_DIR="$1"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$TOOLS_DIR/cdl_train" --arch mnist_3c --train-n 400 --val-n 100 \
    --epochs 2 --lc-epochs 4 --seed 3 --out "$WORK_DIR/model" > "$WORK_DIR/train.log"
test -f "$WORK_DIR/model.cdlw"
test -f "$WORK_DIR/model.meta"
grep -q "model saved" "$WORK_DIR/train.log"

"$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/model" --test-n 100 --seed 3 \
    --per-digit --confusion --trace-out "$WORK_DIR/trace.json" \
    --profile-csv "$WORK_DIR/profile.csv" > "$WORK_DIR/eval.log"
grep -q "accuracy" "$WORK_DIR/eval.log"
grep -q "exit distribution" "$WORK_DIR/eval.log"
grep -q "exit profile" "$WORK_DIR/eval.log"
grep -q "obs summary" "$WORK_DIR/eval.log"
grep -q "truth" "$WORK_DIR/eval.log"

# The trace must be valid Chrome trace-event JSON and the profile CSV must
# carry the expected header. (python3 is present on CI; skip quietly where
# it is not.)
test -s "$WORK_DIR/trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json, sys; \
d = json.load(open(sys.argv[1])); \
assert isinstance(d['traceEvents'], list) and d['traceEvents'], 'no events'" \
      "$WORK_DIR/trace.json"
fi
head -n 1 "$WORK_DIR/profile.csv" | grep -q "^stage,exits,share"

# Delta override must be reflected in the report header.
"$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/model" --test-n 50 --seed 3 \
    --delta 0.75 | grep -q "delta 0.75"

"$TOOLS_DIR/cdl_render" --digit 7 --count 2 --quiet \
    --out-dir "$WORK_DIR/pgms"
test -f "$WORK_DIR/pgms/digit7_000.pgm"
test -f "$WORK_DIR/pgms/digit7_001.pgm"

# Bad usage must fail loudly.
if "$TOOLS_DIR/cdl_train" --no-such-flag 2>/dev/null; then
  echo "cdl_train accepted an unknown flag" >&2
  exit 1
fi
if "$TOOLS_DIR/cdl_eval" --no-such-flag 2>/dev/null; then
  echo "cdl_eval accepted an unknown flag" >&2
  exit 1
fi
if "$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/does_not_exist" 2>/dev/null; then
  echo "cdl_eval accepted a missing model" >&2
  exit 1
fi
if "$TOOLS_DIR/cdl_eval" --model "$WORK_DIR/model" --test-n 50 --seed 3 \
    --trace-out "$WORK_DIR/no_such_dir/t.json" 2>/dev/null; then
  echo "cdl_eval accepted an unwritable trace path" >&2
  exit 1
fi

echo "tools end-to-end: OK"
