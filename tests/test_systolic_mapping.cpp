#include <gtest/gtest.h>

#include "cdl/architectures.h"
#include "core/rng.h"
#include "hw/systolic_mapping.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool2d.h"

namespace cdl {
namespace {

TEST(SystolicMapper, RejectsBadConfig) {
  SystolicConfig c;
  c.rows = 0;
  EXPECT_THROW(SystolicMapper{c}, std::invalid_argument);
  c = {};
  c.frequency_mhz = 0.0;
  EXPECT_THROW(SystolicMapper{c}, std::invalid_argument);
}

TEST(SystolicMapper, SingleTileConvCycleFormula) {
  // Conv 1->8 maps, 3x3 kernel, 10x10 input -> 8x8 output = 64 pixels.
  // On an 8x64 array: 1 tile, cycles = reduction(9) + rows(8) + cols(64).
  Network net;
  net.emplace<Conv2D>(1, 8, 3);
  SystolicConfig c;
  c.rows = 8;
  c.cols = 64;
  const MappingReport r =
      SystolicMapper(c).map_network(net, Shape{1, 10, 10});
  ASSERT_EQ(r.layers.size(), 1U);
  EXPECT_EQ(r.layers[0].tiles, 1U);
  EXPECT_EQ(r.layers[0].cycles, 9U + 8U + 64U);
  EXPECT_EQ(r.layers[0].macs, 8ULL * 64 * 9);
}

TEST(SystolicMapper, TileCountUsesCeilDivision) {
  Network net;
  net.emplace<Conv2D>(1, 9, 3);  // 9 maps on 8 rows -> 2 row tiles
  SystolicConfig c;
  c.rows = 8;
  c.cols = 8;  // 64 pixels on 8 cols -> 8 col tiles
  const MappingReport r =
      SystolicMapper(c).map_network(net, Shape{1, 10, 10});
  EXPECT_EQ(r.layers[0].tiles, 2U * 8U);
}

TEST(SystolicMapper, UtilizationBoundedAndPositiveForMacLayers) {
  const Network net = make_mnist_2c_baseline();
  const MappingReport r =
      SystolicMapper().map_network(net, Shape{1, 28, 28});
  for (const LayerMapping& m : r.layers) {
    EXPECT_GE(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0);
    if (m.macs > 0) {
      EXPECT_GT(m.utilization, 0.0);
    }
  }
  EXPECT_GT(r.mac_utilization, 0.0);
  EXPECT_LE(r.mac_utilization, 1.0);
}

TEST(SystolicMapper, DenseBatchOneUnderutilizesWideArrays) {
  Network net;
  net.emplace<Dense>(192, 10);
  SystolicConfig wide;
  wide.rows = 8;
  wide.cols = 32;
  const MappingReport r = SystolicMapper(wide).map_network(net, Shape{192});
  // Only one column of the 32 carries work.
  EXPECT_LT(r.layers[0].utilization, 1.0 / 16.0);
}

TEST(SystolicMapper, PoolingAndActivationsUseVectorUnit) {
  Network net;
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);
  SystolicConfig c;
  c.vector_lanes = 8;
  const MappingReport r = SystolicMapper(c).map_network(net, Shape{4, 8, 8});
  EXPECT_EQ(r.layers[0].cycles, 4U * 8 * 8 / 8);  // 8 lanes
  EXPECT_EQ(r.layers[1].cycles, 4U * 4 * 4 / 8);  // output elements / lanes
  EXPECT_EQ(r.layers[0].macs, 0U);

  // A single-lane unit processes one element per cycle.
  c.vector_lanes = 1;
  const MappingReport slow = SystolicMapper(c).map_network(net, Shape{4, 8, 8});
  EXPECT_EQ(slow.layers[0].cycles, 4U * 8 * 8);
}

TEST(SystolicMapper, TotalsAreLayerSums) {
  const Network net = make_mnist_3c_baseline();
  const MappingReport r =
      SystolicMapper().map_network(net, Shape{1, 28, 28});
  std::uint64_t sum = 0;
  for (const LayerMapping& m : r.layers) sum += m.cycles;
  EXPECT_EQ(r.total_cycles, sum);
  EXPECT_NEAR(r.microseconds,
              static_cast<double>(sum) / SystolicConfig{}.frequency_mhz, 1e-9);
}

TEST(SystolicMapper, ExitCyclesIncreaseWithStage) {
  Rng rng(3);
  const CdlArchitecture arch = mnist_3c();
  Network base = arch.make_baseline();
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  const SystolicMapper mapper;
  std::uint64_t prev = 0;
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    const std::uint64_t cycles = mapper.exit_cycles(net, s);
    EXPECT_GT(cycles, prev);
    prev = cycles;
  }
  // Full CDLN exit must cost at least the bare baseline mapping.
  EXPECT_GE(prev,
            mapper.map_network(net.baseline(), arch.input_shape).total_cycles);
}

class ArraySizeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(ArraySizeSweep, UtilizationValidAcrossGeometries) {
  const auto [rows, cols] = GetParam();
  SystolicConfig c;
  c.rows = rows;
  c.cols = cols;
  const Network net = make_mnist_2c_baseline();
  const MappingReport r = SystolicMapper(c).map_network(net, Shape{1, 28, 28});
  EXPECT_GT(r.total_cycles, 0U);
  EXPECT_GT(r.mac_utilization, 0.0);
  EXPECT_LE(r.mac_utilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ArraySizeSweep,
    ::testing::Values(std::tuple{1, 1}, std::tuple{4, 4}, std::tuple{8, 16},
                      std::tuple{32, 32}, std::tuple{128, 8}));

}  // namespace
}  // namespace cdl
