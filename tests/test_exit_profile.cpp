// Tests for ExitProfile, including the acceptance invariant: the profile an
// Evaluation carries is bit-exactly consistent with the Evaluation's own
// aggregates for any thread count.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/thread_pool.h"
#include "data/dataset.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "obs/exit_profile.h"
#include "test_util.h"

namespace cdl::obs {
namespace {

ExitProfile three_stage_profile() {
  return ExitProfile({"O1", "O2", "FC"});
}

TEST(ExitProfile, RejectsEmptyStageList) {
  EXPECT_THROW(ExitProfile(std::vector<std::string>{}), std::invalid_argument);
}

TEST(ExitProfile, StartsEmpty) {
  const ExitProfile p = three_stage_profile();
  EXPECT_EQ(p.num_stages(), 3U);
  EXPECT_EQ(p.total(), 0U);
  EXPECT_DOUBLE_EQ(p.sum_ops(), 0.0);
  EXPECT_EQ(p.exit_counts(), (std::vector<std::size_t>{0, 0, 0}));
}

TEST(ExitProfile, RecordRejectsOutOfRangeStage) {
  ExitProfile p = three_stage_profile();
  EXPECT_THROW(p.record(3, 0.5, 10.0, true), std::out_of_range);
}

TEST(ExitProfile, RecordAccumulatesPerStage) {
  ExitProfile p = three_stage_profile();
  p.record(0, 0.9, 100.0, true);
  p.record(0, 0.8, 100.0, false);
  p.record(2, 0.6, 300.0, true);
  EXPECT_EQ(p.total(), 3U);
  EXPECT_DOUBLE_EQ(p.sum_ops(), 500.0);
  EXPECT_EQ(p.exit_counts(), (std::vector<std::size_t>{2, 0, 1}));
  EXPECT_EQ(p.stage(0).exits, 2U);
  EXPECT_EQ(p.stage(0).correct, 1U);
  EXPECT_DOUBLE_EQ(p.stage(0).accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(p.stage(0).avg_ops(), 100.0);
  EXPECT_EQ(p.stage(0).confidence.count(), 2U);
  EXPECT_DOUBLE_EQ(p.stage(1).accuracy(), 0.0);  // no exits -> 0
}

TEST(ExitProfile, ExitFraction) {
  ExitProfile p = three_stage_profile();
  EXPECT_DOUBLE_EQ(p.exit_fraction(0), 0.0);  // empty profile
  p.record(0, 0.9, 1.0, true);
  p.record(1, 0.9, 1.0, true);
  p.record(1, 0.9, 1.0, true);
  p.record(2, 0.9, 1.0, true);
  EXPECT_DOUBLE_EQ(p.exit_fraction(1), 0.5);
  EXPECT_THROW((void)p.exit_fraction(3), std::out_of_range);
}

TEST(ExitProfile, EnteringAndSurvivingFractions) {
  ExitProfile p = three_stage_profile();
  EXPECT_DOUBLE_EQ(p.entering_fraction(0), 0.0);  // empty profile
  EXPECT_DOUBLE_EQ(p.surviving_fraction(0), 0.0);
  // 4 samples: 1 exits at O1, 2 at O2, 1 falls through to FC.
  p.record(0, 0.9, 1.0, true);
  p.record(1, 0.9, 1.0, true);
  p.record(1, 0.9, 1.0, true);
  p.record(2, 0.9, 1.0, true);
  EXPECT_DOUBLE_EQ(p.entering_fraction(0), 1.0);
  EXPECT_DOUBLE_EQ(p.surviving_fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(p.entering_fraction(1), 0.75);
  EXPECT_DOUBLE_EQ(p.surviving_fraction(1), 0.25);
  EXPECT_DOUBLE_EQ(p.entering_fraction(2), 0.25);
  EXPECT_DOUBLE_EQ(p.surviving_fraction(2), 0.0);  // last stage drains
  EXPECT_THROW((void)p.entering_fraction(3), std::out_of_range);
}

TEST(ExitProfile, StageAccessorBoundsChecked) {
  const ExitProfile p = three_stage_profile();
  EXPECT_THROW((void)p.stage(3), std::out_of_range);
}

TEST(ExitProfile, SummaryListsEveryStage) {
  ExitProfile p = three_stage_profile();
  p.record(0, 0.9, 100.0, true);
  const std::string s = p.summary();
  EXPECT_EQ(s.rfind("exit profile", 0), 0U);  // first line marker
  EXPECT_NE(s.find("O1"), std::string::npos);
  EXPECT_NE(s.find("O2"), std::string::npos);
  EXPECT_NE(s.find("FC"), std::string::npos);
}

TEST(ExitProfile, CsvHasHeaderAndOneRowPerStage) {
  ExitProfile p = three_stage_profile();
  p.record(1, 0.7, 50.0, true);
  std::ostringstream os;
  p.write_csv(os);
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line,
            "stage,exits,share,correct,accuracy,avg_ops,conf_mean,conf_p50,"
            "conf_p95,entering,surviving,avg_energy_pj,energy_share");
  std::size_t rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, 3U);
}

TEST(ExitProfile, EqualityComparesContents) {
  ExitProfile a = three_stage_profile();
  ExitProfile b = three_stage_profile();
  EXPECT_EQ(a, b);
  a.record(0, 0.9, 1.0, true);
  EXPECT_NE(a, b);
  b.record(0, 0.9, 1.0, true);
  EXPECT_EQ(a, b);
}

// The acceptance invariant: the profile inside an Evaluation must agree
// bit-exactly with the Evaluation's aggregates, for any thread count, and
// the profile itself must be identical across thread counts.
TEST(ExitProfile, BitExactlyConsistentWithEvaluationForAnyThreadCount) {
  Rng rng(17);
  const ConditionalNetwork net = test::conv_cdln(ConvAlgo::kIm2col, rng);
  Dataset data;
  for (std::size_t i = 0; i < 60; ++i) {
    data.add(test::random_image(Shape{1, 12, 12}, 500 + i), i % 5);
  }
  const EnergyModel energy;

  const Evaluation serial = evaluate_cdl(net, data, energy);
  EXPECT_EQ(serial.profile.exit_counts(), serial.exit_counts);
  EXPECT_EQ(serial.profile.sum_ops(), serial.sum_ops);  // bitwise, no tolerance
  EXPECT_EQ(serial.profile.total(), serial.total);

  for (std::size_t threads : {2U, 3U, 5U}) {
    ThreadPool pool(threads);
    const Evaluation pooled = evaluate_cdl(net, data, energy, &pool);
    EXPECT_EQ(pooled.profile, serial.profile) << threads << " threads";
    EXPECT_EQ(pooled.profile.exit_counts(), pooled.exit_counts);
    EXPECT_EQ(pooled.profile.sum_ops(), pooled.sum_ops);
  }
}

}  // namespace
}  // namespace cdl::obs
