// Training-telemetry subsystem: byte-determinism of the JSONL event stream
// and the cdl-train-report/1 document, the Algorithm-1 admission audit, the
// batch-record cadence and the non-finite-loss guard.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "data/synthetic_mnist.h"
#include "obs/registry.h"
#include "obs/train_telemetry.h"

namespace cdl {
namespace {

const Dataset& small_train() {
  static const Dataset data = [] {
    SyntheticMnistConfig config;
    config.seed = 9;
    return SyntheticMnist(config).generate(120);
  }();
  return data;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

struct TelemetryRun {
  std::string log;
  std::string report;
  CdlTrainReport cdl;
  std::vector<obs::TrainEpochRecord> epochs;
  std::vector<obs::TrainStageRecord> stages;
};

/// One full baseline + Algorithm-1 training pass with telemetry attached.
TelemetryRun run_once(std::size_t log_batches) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(17);
  Network base = arch.make_baseline();
  base.init(rng);

  obs::TrainTelemetryConfig tcfg;
  tcfg.log_every_batches = log_batches;
  obs::TrainTelemetry tel(tcfg);
  std::ostringstream log;
  tel.set_log(&log);

  obs::TrainRunInfo info;
  info.tool = "test_train_telemetry";
  info.arch = arch.name;
  info.rule = "lms";
  info.seed = 17;
  info.train_n = small_train().size();
  info.epochs = 2;
  info.lc_epochs = 2;
  info.prune = true;
  tel.run_start(info);

  BaselineTrainConfig bcfg;
  bcfg.epochs = 2;
  bcfg.telemetry = &tel;
  (void)train_baseline(base, small_train(), bcfg, rng);

  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.candidate_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  CdlTrainConfig cfg;
  cfg.lc_epochs = 2;
  cfg.prune_by_gain = true;
  cfg.telemetry = &tel;

  TelemetryRun out;
  out.cdl = train_cdl(net, small_train(), cfg, rng);
  tel.run_end();

  obs::Registry registry;
  tel.export_to_registry(registry);
  out.report = tel.report_json(&registry);
  out.log = log.str();
  out.epochs = tel.baseline_epochs();
  out.stages = tel.stages();
  return out;
}

TEST(TrainTelemetry, RepeatedRunsAreByteIdentical) {
  const TelemetryRun a = run_once(30);
  const TelemetryRun b = run_once(30);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.report, b.report);
}

TEST(TrainTelemetry, StreamBracketsTheRun) {
  const TelemetryRun run = run_once(0);
  EXPECT_EQ(run.log.rfind("{\"schema\": \"cdl-train-events/1\", "
                          "\"event\": \"run_start\"", 0), 0U);
  EXPECT_NE(run.log.find("\"event\": \"run_end\""), std::string::npos);
  EXPECT_EQ(count_occurrences(run.log, "\"event\": \"epoch\""), 2U);
  EXPECT_EQ(count_occurrences(run.log, "\"event\": \"lc_epoch\""),
            2U * mnist_2c().candidate_stages.size());
}

TEST(TrainTelemetry, BatchCadenceHonored) {
  // 120 samples, batch size 1 => 120 steps/epoch: cadence 30 fires at steps
  // 30/60/90/120 in each of the 2 epochs; cadence 0 never fires.
  EXPECT_EQ(count_occurrences(run_once(0).log, "\"event\": \"batch\""), 0U);
  EXPECT_EQ(count_occurrences(run_once(30).log, "\"event\": \"batch\""), 8U);
}

TEST(TrainTelemetry, EpochRecordsCarryFiniteStatsAndZeroWallTime) {
  const TelemetryRun run = run_once(0);
  ASSERT_EQ(run.epochs.size(), 2U);
  for (std::size_t i = 0; i < run.epochs.size(); ++i) {
    const obs::TrainEpochRecord& e = run.epochs[i];
    EXPECT_EQ(e.epoch, i + 1);
    EXPECT_TRUE(std::isfinite(e.loss));
    EXPECT_GE(e.accuracy, 0.0);
    EXPECT_LE(e.accuracy, 1.0);
    // Determinism contract: wall time renders as 0 unless opted in.
    EXPECT_EQ(e.wall_ns, 0U);
    ASSERT_FALSE(e.params.empty());
    for (const obs::TrainParamStat& p : e.params) {
      EXPECT_FALSE(p.layer_name.empty());
      EXPECT_TRUE(p.stats.finite()) << p.layer_name << "." << p.param_name;
      EXPECT_GT(p.stats.weight_l2, 0.0);
    }
  }
}

TEST(TrainTelemetry, AdmissionRecordsMirrorTrainerReport) {
  const TelemetryRun run = run_once(0);
  ASSERT_EQ(run.stages.size(), run.cdl.stages.size());
  for (std::size_t i = 0; i < run.stages.size(); ++i) {
    const StageTrainReport& truth = run.cdl.stages[i];
    ASSERT_TRUE(run.stages[i].admission.has_value()) << truth.stage_name;
    const obs::AdmissionRecord& adm = *run.stages[i].admission;
    EXPECT_EQ(adm.stage, truth.stage_name);
    EXPECT_EQ(adm.prefix_layers, truth.prefix_layers);
    EXPECT_EQ(adm.reached, truth.reached);
    EXPECT_EQ(adm.classified, truth.classified);
    EXPECT_EQ(adm.admitted, truth.admitted);
    EXPECT_DOUBLE_EQ(adm.gamma_base, truth.gamma_base);
    EXPECT_DOUBLE_EQ(adm.gamma_i, truth.gamma_i);
    EXPECT_DOUBLE_EQ(adm.gain, truth.gain);
    // The audit invariant: G_i reproduces from the record's own inputs.
    const double expected =
        (adm.gamma_base - adm.gamma_i) * static_cast<double>(adm.classified) -
        adm.gamma_i * static_cast<double>(adm.reached - adm.classified);
    EXPECT_DOUBLE_EQ(adm.gain, expected);
  }
}

TEST(TrainTelemetry, ReportDocumentHasTheContractFields) {
  const TelemetryRun run = run_once(0);
  EXPECT_NE(run.report.find("\"schema\": \"cdl-train-report/1\""),
            std::string::npos);
  EXPECT_NE(run.report.find("\"baseline\""), std::string::npos);
  EXPECT_NE(run.report.find("\"admission\""), std::string::npos);
  EXPECT_NE(run.report.find("\"fc_fraction\""), std::string::npos);
  EXPECT_NE(run.report.find("\"non_finite\": null"), std::string::npos);
  EXPECT_NE(run.report.find("\"cdl_train_stage_gain\""), std::string::npos);
}

TEST(TrainTelemetry, BaselineNonFiniteGuardAbortsWithDiagnostic) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(3);
  Network base = arch.make_baseline();
  base.init(rng);
  (*base.parameters()[0])[0] = std::numeric_limits<float>::quiet_NaN();

  obs::TrainTelemetry tel;
  std::ostringstream log;
  tel.set_log(&log);
  BaselineTrainConfig bcfg;
  bcfg.epochs = 1;
  bcfg.telemetry = &tel;
  try {
    (void)train_baseline(base, small_train(), bcfg, rng);
    FAIL() << "poisoned weights must abort the epoch loop";
  } catch (const TrainingDiverged& e) {
    EXPECT_EQ(e.phase, "baseline");
    EXPECT_EQ(e.epoch, 1U);
    EXPECT_GE(e.step, 1U);
  }
  ASSERT_TRUE(tel.non_finite().has_value());
  const obs::NonFiniteRecord& diag = *tel.non_finite();
  EXPECT_EQ(diag.phase, "baseline");
  // The first poisoned tensor is the conv weight the test wrote NaN into.
  EXPECT_FALSE(diag.layer_name.empty());
  EXPECT_EQ(diag.stat, "weight");
  EXPECT_NE(log.str().find("\"event\": \"non_finite\""), std::string::npos);
}

TEST(TrainTelemetry, LcNonFiniteGuardAbortsWithStageDiagnostic) {
  const CdlArchitecture arch = mnist_2c();
  Rng rng(3);
  Network base = arch.make_baseline();
  base.init(rng);
  BaselineTrainConfig bcfg;
  bcfg.epochs = 1;
  (void)train_baseline(base, small_train(), bcfg, rng);

  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.candidate_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  // NaN in the trunk poisons the stage activations, so the first LC epoch's
  // mean loss goes non-finite.
  (*net.baseline().parameters()[0])[0] =
      std::numeric_limits<float>::quiet_NaN();

  obs::TrainTelemetry tel;
  std::ostringstream log;
  tel.set_log(&log);
  CdlTrainConfig cfg;
  cfg.lc_epochs = 2;
  cfg.telemetry = &tel;
  try {
    (void)train_cdl(net, small_train(), cfg, rng);
    FAIL() << "poisoned activations must abort LC training";
  } catch (const TrainingDiverged& e) {
    EXPECT_EQ(e.phase, "lc");
    EXPECT_EQ(e.epoch, 1U);
  }
  ASSERT_TRUE(tel.non_finite().has_value());
  EXPECT_EQ(tel.non_finite()->phase, "lc");
  EXPECT_FALSE(tel.non_finite()->stage.empty());
  EXPECT_NE(log.str().find("\"event\": \"non_finite\""), std::string::npos);
}

}  // namespace
}  // namespace cdl
