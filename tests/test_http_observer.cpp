// Tests for the embedded HTTP observer (serve/observer.h): route dispatch,
// the OpenMetrics content type, ephemeral-port binding, the quit flag, and
// clean shutdown. The client side is a plain blocking loopback socket — the
// same thing a scraper does — so these tests exercise the real syscalls.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "serve/observer.h"

namespace cdl::serve {
namespace {

/// Minimal HTTP/1.1 GET over a loopback socket; returns the full response
/// (head + body). The observer closes the connection after one response, so
/// reading to EOF delimits it.
std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to observer port " << port;
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[1024];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

HttpObserver::Handler text_handler(const std::string& payload) {
  return [payload](std::ostream& os) { os << payload; };
}

TEST(HttpObserver, BindsEphemeralPortAndReportsIt) {
  HttpObserver obs(0, text_handler("m"), text_handler("r"));
  EXPECT_GT(obs.port(), 0);
  EXPECT_LE(obs.port(), 65535);
}

TEST(HttpObserver, MetricsRouteServesOpenMetricsContentType) {
  const std::string exposition =
      "# TYPE cdl_serve_energy_total_joules counter\n"
      "cdl_serve_energy_total_joules{model=\"0\"} 0.5\n"
      "# EOF\n";
  HttpObserver obs(0, text_handler(exposition), text_handler("{}"));
  const std::string response = http_get(obs.port(), "/metrics");
  EXPECT_TRUE(contains(response, "HTTP/1.1 200 OK")) << response;
  EXPECT_TRUE(contains(
      response,
      "Content-Type: application/openmetrics-text; version=1.0.0; "
      "charset=utf-8"))
      << response;
  EXPECT_TRUE(contains(response, "cdl_serve_energy_total_joules"));
  EXPECT_TRUE(contains(response, "# EOF"));
}

TEST(HttpObserver, HealthzAnswersOk) {
  HttpObserver obs(0, text_handler(""), text_handler(""));
  const std::string response = http_get(obs.port(), "/healthz");
  EXPECT_TRUE(contains(response, "200 OK"));
  EXPECT_TRUE(contains(response, "ok\n"));
}

TEST(HttpObserver, ReportRouteServesTheJsonHandler) {
  HttpObserver obs(0, text_handler(""),
                   text_handler("{\"schema\": \"cdl-serve-report/1\"}"));
  const std::string response = http_get(obs.port(), "/report");
  EXPECT_TRUE(contains(response, "200 OK"));
  EXPECT_TRUE(contains(response, "Content-Type: application/json"));
  EXPECT_TRUE(contains(response, "cdl-serve-report/1"));
}

TEST(HttpObserver, UnknownTargetIs404) {
  HttpObserver obs(0, text_handler(""), text_handler(""));
  const std::string response = http_get(obs.port(), "/nope");
  EXPECT_TRUE(contains(response, "404 Not Found"));
}

TEST(HttpObserver, QuitRouteRaisesTheQuitFlag) {
  HttpObserver obs(0, text_handler(""), text_handler(""));
  EXPECT_FALSE(obs.quit_requested());
  const std::string response = http_get(obs.port(), "/quitquitquit");
  EXPECT_TRUE(contains(response, "bye"));
  EXPECT_TRUE(obs.quit_requested());
}

TEST(HttpObserver, CountsRequestsAcrossRoutes) {
  HttpObserver obs(0, text_handler("m"), text_handler("r"));
  EXPECT_EQ(obs.requests_served(), 0U);
  (void)http_get(obs.port(), "/metrics");
  (void)http_get(obs.port(), "/healthz");
  (void)http_get(obs.port(), "/missing");
  EXPECT_EQ(obs.requests_served(), 3U);
}

TEST(HttpObserver, HandlersSeeLiveStateAtScrapeTime) {
  // The observer holds callbacks, not snapshots: each scrape re-renders.
  int scrapes = 0;
  HttpObserver obs(
      0, [&scrapes](std::ostream& os) { os << "scrape " << ++scrapes << "\n"; },
      text_handler(""));
  EXPECT_TRUE(contains(http_get(obs.port(), "/metrics"), "scrape 1"));
  EXPECT_TRUE(contains(http_get(obs.port(), "/metrics"), "scrape 2"));
}

TEST(HttpObserver, StopIsIdempotentAndReleasesThePort) {
  int port = 0;
  {
    HttpObserver obs(0, text_handler(""), text_handler(""));
    port = obs.port();
    obs.stop();
    obs.stop();  // second stop must be a no-op
  }
  // The port is free again: a new observer can bind it explicitly.
  HttpObserver again(port, text_handler(""), text_handler(""));
  EXPECT_EQ(again.port(), port);
  EXPECT_TRUE(contains(http_get(port, "/healthz"), "ok"));
}

TEST(HttpObserver, BindFailureThrows) {
  HttpObserver first(0, text_handler(""), text_handler(""));
  EXPECT_THROW(
      HttpObserver(first.port(), text_handler(""), text_handler("")),
      std::runtime_error);
}

}  // namespace
}  // namespace cdl::serve
