// Tests for WorkspacePlanner / Workspace: the planned bump arena behind the
// zero-allocation batched inference hot path. The planner's accounting
// (persistent vs frame regions, frame reuse, alignment) must match what
// Workspace::data() later resolves, or buffers would silently alias.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/workspace.h"

namespace cdl {
namespace {

TEST(WorkspacePlanner, AlignFloatsRoundsUpToCacheLine) {
  EXPECT_EQ(align_floats(0), 0U);
  EXPECT_EQ(align_floats(1), kWorkspaceAlignFloats);
  EXPECT_EQ(align_floats(kWorkspaceAlignFloats), kWorkspaceAlignFloats);
  EXPECT_EQ(align_floats(kWorkspaceAlignFloats + 1), 2 * kWorkspaceAlignFloats);
}

TEST(WorkspacePlanner, StartsEmpty) {
  const WorkspacePlanner plan;
  EXPECT_EQ(plan.persistent_floats(), 0U);
  EXPECT_EQ(plan.frame_floats(), 0U);
  EXPECT_EQ(plan.capacity_floats(), 0U);
  EXPECT_FALSE(plan.frame_open());
}

TEST(WorkspacePlanner, PersistentBuffersStack) {
  WorkspacePlanner plan;
  const BufferRef a = plan.reserve_persistent(3);
  const BufferRef b = plan.reserve_persistent(20);
  EXPECT_TRUE(a.valid);
  EXPECT_TRUE(a.persistent);
  EXPECT_EQ(a.offset, 0U);
  EXPECT_EQ(a.floats, 3U);
  EXPECT_EQ(b.offset, align_floats(3));
  EXPECT_EQ(b.floats, 20U);
  EXPECT_EQ(plan.persistent_floats(), align_floats(3) + align_floats(20));
}

TEST(WorkspacePlanner, FramesShareStorage) {
  WorkspacePlanner plan;
  plan.begin_frame();
  const BufferRef a = plan.reserve(100);
  plan.end_frame();
  plan.begin_frame();
  const BufferRef b = plan.reserve(10);
  const BufferRef c = plan.reserve(10);
  plan.end_frame();
  // Both frames start at offset 0 in the shared frame region.
  EXPECT_EQ(a.offset, 0U);
  EXPECT_EQ(b.offset, 0U);
  EXPECT_EQ(c.offset, align_floats(10));
  EXPECT_FALSE(a.persistent);
  // Region is the max frame, not the sum.
  EXPECT_EQ(plan.frame_floats(), align_floats(100));
  EXPECT_EQ(plan.capacity_floats(), align_floats(100));
}

TEST(WorkspacePlanner, ReserveOutsideFrameThrows) {
  WorkspacePlanner plan;
  EXPECT_THROW((void)plan.reserve(4), std::logic_error);
  plan.begin_frame();
  EXPECT_NO_THROW((void)plan.reserve(4));
  plan.end_frame();
  EXPECT_THROW((void)plan.reserve(4), std::logic_error);
}

TEST(WorkspacePlanner, MixedPersistentAndFrames) {
  WorkspacePlanner plan;
  const BufferRef p = plan.reserve_persistent(5);
  plan.begin_frame();
  const BufferRef f = plan.reserve(7);
  plan.end_frame();
  EXPECT_TRUE(p.persistent);
  EXPECT_FALSE(f.persistent);
  EXPECT_EQ(plan.capacity_floats(), align_floats(5) + align_floats(7));
}

TEST(Workspace, ResolvesDistinctNonOverlappingSlices) {
  WorkspacePlanner plan;
  const BufferRef p0 = plan.reserve_persistent(8);
  const BufferRef p1 = plan.reserve_persistent(8);
  plan.begin_frame();
  const BufferRef f0 = plan.reserve(8);
  const BufferRef f1 = plan.reserve(8);
  plan.end_frame();

  Workspace ws;
  ws.allocate(plan);
  EXPECT_TRUE(ws.allocated());
  EXPECT_EQ(ws.capacity_floats(), plan.capacity_floats());

  float* a = ws.data(p0);
  float* b = ws.data(p1);
  float* c = ws.data(f0);
  float* d = ws.data(f1);
  // Same-lifetime buffers never overlap (each is 8 floats).
  EXPECT_GE(b, a + 8);
  EXPECT_GE(d, c + 8);
  // Frame region sits beyond every persistent buffer.
  EXPECT_GE(c, b + 8);

  // Writing one buffer must not disturb its neighbours.
  for (std::size_t i = 0; i < 8; ++i) a[i] = 1.0F;
  for (std::size_t i = 0; i < 8; ++i) b[i] = 2.0F;
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(a[i], 1.0F);
}

TEST(Workspace, FrameBuffersFromDifferentFramesAlias) {
  WorkspacePlanner plan;
  plan.begin_frame();
  const BufferRef f0 = plan.reserve(16);
  plan.end_frame();
  plan.begin_frame();
  const BufferRef f1 = plan.reserve(16);
  plan.end_frame();
  Workspace ws;
  ws.allocate(plan);
  EXPECT_EQ(ws.data(f0), ws.data(f1));  // by design: frames run sequentially
}

TEST(Workspace, AllocateWithOpenFrameThrows) {
  WorkspacePlanner plan;
  plan.begin_frame();
  (void)plan.reserve(4);
  Workspace ws;
  EXPECT_THROW(ws.allocate(plan), std::logic_error);
}

TEST(Workspace, ReallocateReusesWhenCapacitySuffices) {
  WorkspacePlanner big;
  big.begin_frame();
  (void)big.reserve(1024);
  big.end_frame();
  Workspace ws;
  ws.allocate(big);
  const std::size_t cap = ws.capacity_floats();

  WorkspacePlanner small;
  small.begin_frame();
  const BufferRef f = small.reserve(16);
  small.end_frame();
  ws.allocate(small);
  EXPECT_GE(ws.capacity_floats(), align_floats(16));
  EXPECT_LE(ws.capacity_floats(), cap);
  float* data = ws.data(f);
  for (std::size_t i = 0; i < 16; ++i) data[i] = 3.0F;
  EXPECT_EQ(data[15], 3.0F);
}

TEST(Workspace, EmptyPlanAllocatesNothingButIsAllocated) {
  const WorkspacePlanner plan;
  Workspace ws;
  ws.allocate(plan);
  EXPECT_TRUE(ws.allocated());
  EXPECT_EQ(ws.capacity_floats(), 0U);
}

}  // namespace
}  // namespace cdl
