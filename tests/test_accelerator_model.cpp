#include <gtest/gtest.h>

#include "cdl/architectures.h"
#include "core/rng.h"
#include "energy/energy_model.h"
#include "hw/accelerator_model.h"

namespace cdl {
namespace {

TEST(AcceleratorModel, RejectsBadConfig) {
  AcceleratorConfig c;
  c.num_macs = 0;
  EXPECT_THROW(AcceleratorModel{c}, std::invalid_argument);
  c = {};
  c.bytes_per_cycle = 0;
  EXPECT_THROW(AcceleratorModel{c}, std::invalid_argument);
  c = {};
  c.frequency_mhz = 0.0;
  EXPECT_THROW(AcceleratorModel{c}, std::invalid_argument);
}

TEST(AcceleratorModel, ZeroOpsZeroLatency) {
  const AcceleratorModel model;
  const LatencyEstimate est = model.latency(OpCount{});
  EXPECT_EQ(est.cycles, 0U);
  EXPECT_EQ(est.microseconds, 0.0);
}

TEST(AcceleratorModel, MacCyclesDividedAcrossUnits) {
  AcceleratorConfig c;
  c.num_macs = 8;
  c.bytes_per_cycle = 1U << 20;  // memory effectively free
  const AcceleratorModel model(c);
  OpCount ops;
  ops.macs = 80;
  EXPECT_EQ(model.latency(ops).compute_cycles, 10U);
  ops.macs = 81;  // ceil
  EXPECT_EQ(model.latency(ops).compute_cycles, 11U);
}

TEST(AcceleratorModel, RooflineTakesTheMax) {
  AcceleratorConfig c;
  c.num_macs = 1000;
  c.bytes_per_cycle = 4;  // 1 word per cycle
  const AcceleratorModel model(c);
  OpCount ops;
  ops.macs = 10;        // 1 compute cycle
  ops.mem_reads = 100;  // 100 memory cycles
  const LatencyEstimate est = model.latency(ops);
  EXPECT_TRUE(est.memory_bound());
  EXPECT_EQ(est.cycles, est.memory_cycles);
  EXPECT_EQ(est.cycles, 100U);
}

TEST(AcceleratorModel, MicrosecondsScaleWithFrequency) {
  AcceleratorConfig slow;
  slow.frequency_mhz = 100.0;
  AcceleratorConfig fast = slow;
  fast.frequency_mhz = 1000.0;
  OpCount ops;
  ops.macs = 10000;
  const double t_slow = AcceleratorModel(slow).latency(ops).microseconds;
  const double t_fast = AcceleratorModel(fast).latency(ops).microseconds;
  EXPECT_NEAR(t_slow / t_fast, 10.0, 1e-9);
}

TEST(AcceleratorModel, MoreMacsNeverSlower) {
  OpCount ops;
  ops.macs = 12345;
  ops.adds = 678;
  ops.mem_reads = 2000;
  std::uint64_t prev = UINT64_MAX;
  for (std::size_t macs : {1U, 4U, 16U, 64U}) {
    AcceleratorConfig c;
    c.num_macs = macs;
    const std::uint64_t cycles = AcceleratorModel(c).latency(ops).cycles;
    EXPECT_LE(cycles, prev);
    prev = cycles;
  }
}

TEST(AcceleratorModel, ExitLatencyIncreasesWithStageDepth) {
  Rng rng(3);
  const CdlArchitecture arch = mnist_3c();
  Network base = arch.make_baseline();
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  const AcceleratorModel model;
  std::uint64_t prev = 0;
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    const LatencyEstimate est = model.exit_latency(net, s);
    EXPECT_GT(est.cycles, prev);
    prev = est.cycles;
  }
}

TEST(AcceleratorModel, NetworkProfileLatencyIsSumOfLayers) {
  const Network net = make_mnist_2c_baseline();
  const EnergyModel energy;
  const NetworkProfile profile =
      profile_network(net, Shape{1, 28, 28}, energy);
  const AcceleratorModel model;
  std::uint64_t sum = 0;
  for (const LayerProfile& l : profile.layers) {
    sum += model.latency(l.ops).cycles;
  }
  EXPECT_EQ(model.latency(profile).cycles, sum);
}

}  // namespace
}  // namespace cdl
