// SloTracker edge cases and the per-phase latency decomposition: zero and
// single samples, all-expired runs, percentile ordering under ManualClock
// virtual time, exact phase-sum accounting (queue + batch_wait + compute ==
// latency), exit counting and the drift mirror.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.h"
#include "serve/engine.h"
#include "serve/slo.h"
#include "test_util.h"

namespace cdl::serve {
namespace {

using cdl::test::conv_cdln;
using cdl::test::random_image;

const Shape kImageShape{1, 12, 12};

ModelRegistry one_model(std::uint64_t seed = 7) {
  Rng rng(seed);
  ModelRegistry models;
  models.add("cascade", conv_cdln(ConvAlgo::kIm2col, rng));
  return models;
}

TEST(SloTracker, ZeroSamplesSummaryIsAllZero) {
  SloTracker slo;
  const SloSummary s = slo.summary(0);  // never-touched model index
  EXPECT_EQ(s.submitted, 0U);
  EXPECT_EQ(s.completed, 0U);
  EXPECT_EQ(s.p50_ms, 0.0);
  EXPECT_EQ(s.p99_ms, 0.0);
  EXPECT_EQ(s.queue_mean_ms, 0.0);
  EXPECT_EQ(s.compute_p99_ms, 0.0);
  EXPECT_TRUE(s.exits.empty());
  EXPECT_EQ(s.drift_windows, 0U);
  EXPECT_EQ(s.drift_score, -1.0);
  EXPECT_EQ(s.drift_max_score, -1.0);
  EXPECT_EQ(s.first_drift_window, -1);
}

TEST(SloTracker, SingleSampleCollapsesAllPercentiles) {
  SloTracker slo;
  slo.record_accepted(0);
  // 5 ms total: 1 ms queue + 1.5 ms batch wait + 2.5 ms compute.
  slo.record_completed(0, 5'000'000, 1'000'000, 1'500'000, 2'500'000,
                       /*slo_miss=*/false);
  const SloSummary s = slo.summary(0);
  EXPECT_EQ(s.completed, 1U);
  EXPECT_DOUBLE_EQ(s.p50_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.p99_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.queue_p50_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.queue_p99_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.batch_p50_ms, 1.5);
  EXPECT_DOUBLE_EQ(s.compute_p50_ms, 2.5);
  EXPECT_DOUBLE_EQ(s.queue_mean_ms + s.batch_mean_ms + s.compute_mean_ms,
                   s.mean_ms);
}

TEST(SloTracker, AllExpiredLeavesLatencyEmptyButCountsMisses) {
  SloTracker slo;
  for (int i = 0; i < 4; ++i) {
    slo.record_accepted(0);
    slo.record_expired(0, 10'000'000);
  }
  const SloSummary s = slo.summary(0);
  EXPECT_EQ(s.accepted, 4U);
  EXPECT_EQ(s.expired, 4U);
  EXPECT_EQ(s.completed, 0U);
  EXPECT_EQ(s.slo_miss, 4U) << "every expired request is an SLO miss";
  EXPECT_EQ(s.p50_ms, 0.0) << "no completed latencies to rank";
  EXPECT_EQ(s.queue_mean_ms, 0.0);
}

TEST(SloTracker, PhaseMeansSumToLatencyMeanAcrossManySamples) {
  SloTracker slo;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    const std::uint64_t queue = 100'000 * i;
    const std::uint64_t batch = 50'000 * (i % 7);
    const std::uint64_t compute = 1'000'000 + 10'000 * i;
    slo.record_accepted(0);
    slo.record_completed(0, queue + batch + compute, queue, batch, compute,
                         false);
  }
  const SloSummary s = slo.summary(0);
  EXPECT_EQ(s.completed, 100U);
  EXPECT_NEAR(s.queue_mean_ms + s.batch_mean_ms + s.compute_mean_ms,
              s.mean_ms, 1e-9);
  EXPECT_LE(s.p50_ms, s.p95_ms);
  EXPECT_LE(s.p95_ms, s.p99_ms);
  EXPECT_LE(s.queue_p50_ms, s.queue_p95_ms);
  EXPECT_LE(s.queue_p95_ms, s.queue_p99_ms);
  EXPECT_LE(s.batch_p50_ms, s.batch_p99_ms);
  EXPECT_LE(s.compute_p50_ms, s.compute_p99_ms);
}

TEST(SloTracker, ExitCountsAndRegistryFractions) {
  obs::Registry registry;
  SloTracker slo(&registry);
  slo.name_model(0, "m");
  slo.record_exit(0, 0);
  slo.record_exit(0, 0);
  slo.record_exit(0, 2);
  const SloSummary s = slo.summary(0);
  ASSERT_EQ(s.exits.size(), 3U);
  EXPECT_EQ(s.exits[0], 2U);
  EXPECT_EQ(s.exits[1], 0U);
  EXPECT_EQ(s.exits[2], 1U);
  std::ostringstream os;
  registry.write_openmetrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("cdl_serve_exits_total"), std::string::npos);
  EXPECT_NE(text.find("cdl_serve_exit_fraction"), std::string::npos);
}

TEST(SloTracker, DriftMirrorTracksLatestMaxAndFirstEvent) {
  obs::Registry registry;
  SloTracker slo(&registry);
  slo.name_model(0, "m");
  slo.record_drift(0, 0, 0.0, false);   // reference window
  slo.record_drift(0, 1, 12.5, false);
  slo.record_drift(0, 2, 80.0, true);   // first event
  slo.record_drift(0, 3, 60.0, true);
  const SloSummary s = slo.summary(0);
  EXPECT_EQ(s.drift_windows, 4U);
  EXPECT_EQ(s.drift_events, 2U);
  EXPECT_DOUBLE_EQ(s.drift_score, 60.0) << "latest scored window";
  EXPECT_DOUBLE_EQ(s.drift_max_score, 80.0);
  EXPECT_EQ(s.first_drift_window, 2);
  std::ostringstream os;
  registry.write_openmetrics(os);
  EXPECT_NE(os.str().find("cdl_serve_drift_score"), std::string::npos);
  EXPECT_NE(os.str().find("cdl_serve_drift_events_total"), std::string::npos);
}

TEST(SloTracker, EnergyPercentilesTotalsAndRegistryFamilies) {
  obs::Registry registry;
  SloTracker slo(&registry);
  slo.name_model(0, "m");
  for (int i = 1; i <= 4; ++i) {
    slo.record_accepted(0);
    slo.record_completed(0, 1'000'000, 0, 0, 1'000'000, false,
                         /*energy_pj=*/1000.0 * i);
  }
  const SloSummary s = slo.summary(0);
  EXPECT_EQ(s.energy_total_pj, 10000.0);
  EXPECT_DOUBLE_EQ(s.energy_mean_pj, 2500.0);
  EXPECT_EQ(s.energy_max_pj, 4000.0);
  EXPECT_LE(s.energy_p50_pj, s.energy_p95_pj);
  EXPECT_LE(s.energy_p95_pj, s.energy_p99_pj);
  EXPECT_LE(s.energy_p99_pj, s.energy_max_pj);

  std::ostringstream os;
  slo.write_openmetrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("cdl_serve_energy_pj"), std::string::npos);
  EXPECT_NE(text.find("cdl_serve_energy_total_joules"), std::string::npos);
}

TEST(SloTracker, EnergyWindowMirrorExportsRateAndBreaches) {
  obs::Registry registry;
  SloTracker slo(&registry);
  slo.record_energy_window(0, 0.5, false);
  slo.record_energy_window(1, 2.0, true);
  std::ostringstream os;
  registry.write_openmetrics(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("cdl_serve_energy_rate_mj_per_s"), std::string::npos);
  EXPECT_NE(text.find("cdl_serve_energy_budget_breaches_total"),
            std::string::npos);
}

TEST(SloTracker, WriteOpenmetricsWithoutRegistryWritesNothing) {
  SloTracker slo;  // no registry attached
  slo.record_accepted(0);
  slo.record_completed(0, 1'000'000, 0, 0, 1'000'000, false, 42.0);
  std::ostringstream os;
  slo.write_openmetrics(os);
  EXPECT_TRUE(os.str().empty());
}

// Engine-level: responses carry the exit-energy-table stamp (a pure function
// of the exit stage, hence worker-count invariant), and the tracker's total
// is exactly their sum.
TEST(SloTracker, EngineStampsExitTableEnergyOnResponses) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 2;
  ServingEngine engine(one_model(), config);
  const std::vector<double>& table = engine.exit_energy_table(0);
  ASSERT_FALSE(table.empty());

  Submitted a = engine.submit(0, random_image(kImageShape, 1));
  Submitted b = engine.submit(0, random_image(kImageShape, 2));
  EXPECT_EQ(engine.run_once(), 2U);
  const Response ra = a.response.get();
  const Response rb = b.response.get();
  ASSERT_EQ(ra.status, RequestStatus::kOk);
  ASSERT_EQ(rb.status, RequestStatus::kOk);
  EXPECT_EQ(ra.energy_pj, table[ra.result.exit_stage]);
  EXPECT_EQ(rb.energy_pj, table[rb.result.exit_stage]);
  EXPECT_GT(ra.energy_pj, 0.0);

  engine.shutdown();
  const SloSummary s = engine.slo().summary(0);
  EXPECT_EQ(s.energy_total_pj, ra.energy_pj + rb.energy_pj);
}

// Engine-level: under a ManualClock the decomposition is exact in virtual
// time — staged clock advances land in the queue phase (before run_once
// integrates) and the batch-wait phase (between integration and dispatch).
TEST(SloTracker, EnginePhaseDecompositionIsExactOnManualClock) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 2;
  config.batcher.max_delay_ns = 50'000'000;
  ServingEngine engine(one_model(), config);

  Submitted a = engine.submit(0, random_image(kImageShape, 1));
  ASSERT_EQ(a.status, SubmitStatus::kAccepted);
  clock.advance(3'000'000);  // 3 ms sitting in the MPMC queue
  Submitted b = engine.submit(0, random_image(kImageShape, 2));
  ASSERT_EQ(b.status, SubmitStatus::kAccepted);
  EXPECT_EQ(engine.run_once(), 2U);  // size trigger at max_batch = 2

  const Response ra = a.response.get();
  const Response rb = b.response.get();
  ASSERT_EQ(ra.status, RequestStatus::kOk);
  ASSERT_EQ(rb.status, RequestStatus::kOk);
  // Request a queued for 3 ms; b was submitted at dispatch time.
  EXPECT_EQ(ra.queue_ns, 3'000'000U);
  EXPECT_EQ(rb.queue_ns, 0U);
  EXPECT_EQ(ra.queue_ns + ra.batch_wait_ns + ra.compute_ns, ra.latency_ns);
  EXPECT_EQ(rb.queue_ns + rb.batch_wait_ns + rb.compute_ns, rb.latency_ns);

  engine.shutdown();
  const SloSummary s = engine.slo().summary(0);
  EXPECT_EQ(s.completed, 2U);
  EXPECT_NEAR(s.queue_mean_ms + s.batch_mean_ms + s.compute_mean_ms,
              s.mean_ms, 1e-9);
  // Both requests carried an exit stage.
  std::uint64_t exits = 0;
  for (const std::uint64_t e : s.exits) exits += e;
  EXPECT_EQ(exits, 2U);
}

}  // namespace
}  // namespace cdl::serve
