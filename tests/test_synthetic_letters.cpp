#include <gtest/gtest.h>

#include "data/synthetic_letters.h"
#include "data/synthetic_mnist.h"

namespace cdl {
namespace {

SyntheticLettersConfig letters_config(std::uint64_t seed) {
  SyntheticLettersConfig config;
  config.seed = seed;
  return config;
}

TEST(SyntheticLetters, ClassNamesAndGlyphsForAllLabels) {
  const std::string expected = "ACEFHJLPTU";
  for (std::size_t l = 0; l < SyntheticLetters::kNumClasses; ++l) {
    EXPECT_EQ(SyntheticLetters::class_name(l), std::string(1, expected[l]));
    const auto& strokes = SyntheticLetters::glyph(l);
    EXPECT_FALSE(strokes.empty());
    for (const Stroke& s : strokes) {
      EXPECT_GE(s.size(), 2U);
      for (const Point& p : s) {
        EXPECT_GE(p.x, 0.0F);
        EXPECT_LE(p.x, 1.0F);
        EXPECT_GE(p.y, 0.0F);
        EXPECT_LE(p.y, 1.0F);
      }
    }
  }
  EXPECT_THROW((void)SyntheticLetters::class_name(10), std::invalid_argument);
  EXPECT_THROW((void)SyntheticLetters::glyph(10), std::invalid_argument);
}

TEST(SyntheticLetters, DeterministicAndDistinctStreams) {
  const SyntheticLetters gen(letters_config(5));
  EXPECT_EQ(gen.render(2, 7), gen.render(2, 7));
  EXPECT_NE(gen.render(2, 7), gen.render(2, 8));
  EXPECT_NE(gen.render(2, 7), gen.render(3, 7));
  const SyntheticLetters other(letters_config(6));
  EXPECT_NE(gen.render(2, 7), other.render(2, 7));
}

TEST(SyntheticLetters, RenderedLettersHaveInkInRange) {
  const SyntheticLetters gen;
  for (std::size_t l = 0; l < SyntheticLetters::kNumClasses; ++l) {
    const Tensor img = gen.render(l, 0);
    EXPECT_EQ(img.shape(), (Shape{1, 28, 28}));
    EXPECT_GE(img.min(), 0.0F);
    EXPECT_LE(img.max(), 1.0F);
    std::size_t bright = 0;
    for (float v : img.values()) bright += v > 0.5F ? 1 : 0;
    EXPECT_GT(bright, 15U) << "letter " << SyntheticLetters::class_name(l);
    EXPECT_LT(bright, 450U) << "letter " << SyntheticLetters::class_name(l);
  }
}

TEST(SyntheticLetters, GenerateBalanced) {
  const SyntheticLetters gen;
  const Dataset d = gen.generate(120);
  EXPECT_EQ(d.size(), 120U);
  EXPECT_EQ(d.num_classes(), 10U);
  for (std::size_t count : d.class_counts()) EXPECT_EQ(count, 12U);
}

TEST(SyntheticLetters, DifficultyMostlyEasy) {
  const SyntheticLetters gen;
  std::size_t easy = 0;
  for (std::uint64_t i = 0; i < 500; ++i) {
    if (gen.difficulty(0, i) < 0.5F) ++easy;
  }
  EXPECT_GT(easy, 300U);
}

TEST(SyntheticLetters, UncorrelatedWithDigitsAtEqualSeed) {
  const SyntheticLetters letters(letters_config(1));
  // Same (seed, label, index) must not reproduce the digit stream: compare
  // difficulties, which are the first draw of each stream.
  std::size_t equal = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    SyntheticMnistConfig digit_cfg;
    digit_cfg.seed = 1;
    // (Constructed outside the loop in spirit; cheap enough here.)
    if (letters.difficulty(3, i) ==
        SyntheticMnist(digit_cfg).difficulty(3, i)) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3U);
}

class LettersRenderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LettersRenderSweep, ManySamplesWellFormed) {
  const SyntheticLetters gen(letters_config(13));
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Tensor img = gen.render(GetParam(), i);
    EXPECT_GE(img.min(), 0.0F);
    EXPECT_LE(img.max(), 1.0F);
    EXPECT_GT(img.sum(), 5.0F);
  }
}

INSTANTIATE_TEST_SUITE_P(Letters, LettersRenderSweep,
                         ::testing::Range<std::size_t>(0, 10));

}  // namespace
}  // namespace cdl
