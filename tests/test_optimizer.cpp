#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"

namespace cdl {
namespace {

TEST(SgdOptimizer, RejectsBadConfig) {
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.0F}), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = -1.0F}), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.1F, .momentum = 1.0F}),
               std::invalid_argument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.1F, .momentum = -0.1F}),
               std::invalid_argument);
  EXPECT_THROW(
      SgdOptimizer({.learning_rate = 0.1F, .momentum = 0.0F, .lr_decay = 0.0F}),
      std::invalid_argument);
  EXPECT_THROW(
      SgdOptimizer({.learning_rate = 0.1F, .momentum = 0.0F, .lr_decay = 1.5F}),
      std::invalid_argument);
}

TEST(SgdOptimizer, PlainSgdStepIsLrTimesGrad) {
  Network net;
  net.emplace<Dense>(1, 1);
  net.parameters()[0]->fill(2.0F);
  net.parameters()[1]->fill(0.0F);
  net.gradients()[0]->fill(0.5F);
  net.gradients()[1]->fill(1.0F);

  SgdOptimizer opt({.learning_rate = 0.1F});
  opt.step(net);
  EXPECT_NEAR((*net.parameters()[0])[0], 2.0F - 0.1F * 0.5F, 1e-6F);
  EXPECT_NEAR((*net.parameters()[1])[0], -0.1F, 1e-6F);
}

TEST(SgdOptimizer, StepZeroesGradients) {
  Network net;
  net.emplace<Dense>(2, 2);
  net.gradients()[0]->fill(1.0F);
  SgdOptimizer opt({.learning_rate = 0.1F});
  opt.step(net);
  EXPECT_EQ(net.gradients()[0]->sum(), 0.0F);
}

TEST(SgdOptimizer, MomentumAccumulatesVelocity) {
  Network net;
  net.emplace<Dense>(1, 1);
  net.parameters()[0]->fill(0.0F);
  net.parameters()[1]->fill(0.0F);

  SgdOptimizer opt({.learning_rate = 1.0F, .momentum = 0.5F});
  net.gradients()[0]->fill(1.0F);
  opt.step(net);  // v = -1, p = -1
  net.gradients()[0]->fill(1.0F);
  opt.step(net);  // v = -1.5, p = -2.5
  EXPECT_NEAR((*net.parameters()[0])[0], -2.5F, 1e-6F);
}

TEST(SgdOptimizer, LrDecayAppliedPerEpoch) {
  SgdOptimizer opt(
      {.learning_rate = 1.0F, .momentum = 0.0F, .lr_decay = 0.5F});
  EXPECT_FLOAT_EQ(opt.learning_rate(), 1.0F);
  opt.end_epoch();
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5F);
  opt.end_epoch();
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.25F);
}

TEST(SgdOptimizer, SteppingDifferentNetworkThrows) {
  Network a;
  a.emplace<Dense>(2, 2);
  Network b;
  b.emplace<Dense>(2, 2);
  b.emplace<Dense>(2, 2);
  SgdOptimizer opt({.learning_rate = 0.1F});
  opt.step(a);
  EXPECT_THROW(opt.step(b), std::logic_error);
}

TEST(SgdOptimizer, ConvergesOnLinearlySeparableToyProblem) {
  // Two Gaussian blobs in 2-D; a single dense layer should reach 100 %.
  Rng rng(33);
  Network net;
  net.emplace<Dense>(2, 2);
  net.init(rng);

  SoftmaxCrossEntropyLoss loss;
  SgdOptimizer opt({.learning_rate = 0.1F, .momentum = 0.3F});
  for (int epoch = 0; epoch < 60; ++epoch) {
    for (int i = 0; i < 40; ++i) {
      const auto cls = static_cast<std::size_t>(i % 2);
      Tensor x(Shape{2});
      const float cx = cls == 0 ? -1.0F : 1.0F;
      x[0] = cx + rng.normal(0.0F, 0.3F);
      x[1] = -cx + rng.normal(0.0F, 0.3F);
      const Tensor out = net.forward(x);
      net.backward(loss.grad(out, cls));
      opt.step(net);
    }
  }

  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const auto cls = static_cast<std::size_t>(i % 2);
    Tensor x(Shape{2});
    const float cx = cls == 0 ? -1.0F : 1.0F;
    x[0] = cx + rng.normal(0.0F, 0.3F);
    x[1] = -cx + rng.normal(0.0F, 0.3F);
    if (net.forward(x).argmax() == cls) ++correct;
  }
  EXPECT_GE(correct, 98);
}

}  // namespace
}  // namespace cdl
