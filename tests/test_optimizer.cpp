#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"

namespace cdl {
namespace {

TEST(SgdOptimizer, RejectsBadConfig) {
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.0F}), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = -1.0F}), std::invalid_argument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.1F, .momentum = 1.0F}),
               std::invalid_argument);
  EXPECT_THROW(SgdOptimizer({.learning_rate = 0.1F, .momentum = -0.1F}),
               std::invalid_argument);
  EXPECT_THROW(
      SgdOptimizer({.learning_rate = 0.1F, .momentum = 0.0F, .lr_decay = 0.0F}),
      std::invalid_argument);
  EXPECT_THROW(
      SgdOptimizer({.learning_rate = 0.1F, .momentum = 0.0F, .lr_decay = 1.5F}),
      std::invalid_argument);
}

TEST(SgdOptimizer, PlainSgdStepIsLrTimesGrad) {
  Network net;
  net.emplace<Dense>(1, 1);
  net.parameters()[0]->fill(2.0F);
  net.parameters()[1]->fill(0.0F);
  net.gradients()[0]->fill(0.5F);
  net.gradients()[1]->fill(1.0F);

  SgdOptimizer opt({.learning_rate = 0.1F});
  opt.step(net);
  EXPECT_NEAR((*net.parameters()[0])[0], 2.0F - 0.1F * 0.5F, 1e-6F);
  EXPECT_NEAR((*net.parameters()[1])[0], -0.1F, 1e-6F);
}

TEST(SgdOptimizer, StepZeroesGradients) {
  Network net;
  net.emplace<Dense>(2, 2);
  net.gradients()[0]->fill(1.0F);
  SgdOptimizer opt({.learning_rate = 0.1F});
  opt.step(net);
  EXPECT_EQ(net.gradients()[0]->sum(), 0.0F);
}

TEST(SgdOptimizer, MomentumAccumulatesVelocity) {
  Network net;
  net.emplace<Dense>(1, 1);
  net.parameters()[0]->fill(0.0F);
  net.parameters()[1]->fill(0.0F);

  SgdOptimizer opt({.learning_rate = 1.0F, .momentum = 0.5F});
  net.gradients()[0]->fill(1.0F);
  opt.step(net);  // v = -1, p = -1
  net.gradients()[0]->fill(1.0F);
  opt.step(net);  // v = -1.5, p = -2.5
  EXPECT_NEAR((*net.parameters()[0])[0], -2.5F, 1e-6F);
}

TEST(SgdOptimizer, LrDecayAppliedPerEpoch) {
  SgdOptimizer opt(
      {.learning_rate = 1.0F, .momentum = 0.0F, .lr_decay = 0.5F});
  EXPECT_FLOAT_EQ(opt.learning_rate(), 1.0F);
  opt.end_epoch();
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.5F);
  opt.end_epoch();
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.25F);
}

TEST(SgdOptimizer, LrDecaySequenceExactOverManyEpochs) {
  // The telemetry log records the lr each epoch ran at; the decay sequence
  // must be the exact float recurrence lr *= decay, not a pow() rederivation.
  SgdOptimizer opt(
      {.learning_rate = 0.1F, .momentum = 0.0F, .lr_decay = 0.9F});
  float expected = 0.1F;
  for (int epoch = 0; epoch < 20; ++epoch) {
    EXPECT_EQ(opt.learning_rate(), expected) << "epoch " << epoch;
    opt.end_epoch();
    expected *= 0.9F;
  }
}

TEST(SgdOptimizer, LrDecayOfOneIsExactlyConstant) {
  SgdOptimizer opt(
      {.learning_rate = 0.05F, .momentum = 0.2F, .lr_decay = 1.0F});
  for (int epoch = 0; epoch < 50; ++epoch) {
    opt.end_epoch();
    EXPECT_EQ(opt.learning_rate(), 0.05F);
  }
}

struct RecordingSink final : GradStatsSink {
  void on_param_step(const ParamStepStats& stats) override {
    got.push_back(stats);
  }
  [[nodiscard]] bool wants_stats() const override { return armed; }
  std::vector<ParamStepStats> got;
  bool armed = true;
};

TEST(GradStatsSink, ReceivesExactNormsPerParameter) {
  Network net;
  net.emplace<Dense>(2, 2);  // params: w (4 elements), b (2 elements)
  net.parameters()[0]->fill(2.0F);
  net.parameters()[1]->fill(0.0F);
  net.gradients()[0]->fill(0.5F);
  net.gradients()[1]->fill(1.0F);

  SgdOptimizer opt({.learning_rate = 0.1F});
  RecordingSink sink;
  opt.set_stats_sink(&sink);
  opt.step(net);

  ASSERT_EQ(sink.got.size(), 2U);
  const ParamStepStats& w = sink.got[0];
  EXPECT_EQ(w.param, 0U);
  EXPECT_NEAR(w.grad_l2, std::sqrt(4.0 * 0.25), 1e-12);
  EXPECT_NEAR(w.grad_max_abs, 0.5, 1e-12);
  EXPECT_NEAR(w.update_l2, std::sqrt(4.0 * 0.05 * 0.05), 1e-7);
  EXPECT_NEAR(w.update_max_abs, 0.05, 1e-7);
  EXPECT_NEAR(w.weight_l2, std::sqrt(4.0 * 1.95 * 1.95), 1e-6);
  EXPECT_NEAR(w.weight_max_abs, 1.95, 1e-6);
  EXPECT_TRUE(w.finite());

  const ParamStepStats& b = sink.got[1];
  EXPECT_EQ(b.param, 1U);
  EXPECT_NEAR(b.grad_l2, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(b.update_l2, std::sqrt(2.0 * 0.01), 1e-7);
  EXPECT_NEAR(b.weight_max_abs, 0.1, 1e-7);
}

TEST(GradStatsSink, WantsStatsFalseSkipsCollection) {
  Network net;
  net.emplace<Dense>(2, 2);
  net.gradients()[0]->fill(1.0F);
  SgdOptimizer opt({.learning_rate = 0.1F});
  RecordingSink sink;
  sink.armed = false;
  opt.set_stats_sink(&sink);
  opt.step(net);
  EXPECT_TRUE(sink.got.empty());
  EXPECT_EQ(net.gradients()[0]->sum(), 0.0F);  // step still ran
}

TEST(GradStatsSink, RecordedStepMatchesFastPathBitExactly) {
  // The stats branch must apply the identical update arithmetic as the
  // sink-free fast path — telemetry must never perturb training.
  Rng rng(21);
  Network plain;
  plain.emplace<Dense>(4, 3);
  plain.init(rng);
  Network recorded;
  recorded.emplace<Dense>(4, 3);
  for (std::size_t p = 0; p < plain.parameters().size(); ++p) {
    *recorded.parameters()[p] = *plain.parameters()[p];
    plain.gradients()[p]->fill(0.25F + static_cast<float>(p));
    *recorded.gradients()[p] = *plain.gradients()[p];
  }

  SgdOptimizer opt_plain({.learning_rate = 0.1F, .momentum = 0.5F});
  SgdOptimizer opt_recorded({.learning_rate = 0.1F, .momentum = 0.5F});
  RecordingSink sink;
  opt_recorded.set_stats_sink(&sink);
  for (int step = 0; step < 3; ++step) {
    opt_plain.step(plain);
    opt_recorded.step(recorded);
    for (std::size_t p = 0; p < plain.parameters().size(); ++p) {
      plain.gradients()[p]->fill(0.125F);
      recorded.gradients()[p]->fill(0.125F);
    }
  }
  for (std::size_t p = 0; p < plain.parameters().size(); ++p) {
    const Tensor& a = *plain.parameters()[p];
    const Tensor& b = *recorded.parameters()[p];
    for (std::size_t i = 0; i < a.numel(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "param " << p << " element " << i;
    }
  }
}

TEST(GradStatsSink, FiniteDetectsPoisonedStats) {
  ParamStepStats stats;
  EXPECT_TRUE(stats.finite());
  stats.grad_l2 = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(stats.finite());
  stats.grad_l2 = 0.0;
  stats.weight_max_abs = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(stats.finite());
}

TEST(SgdOptimizer, SteppingDifferentNetworkThrows) {
  Network a;
  a.emplace<Dense>(2, 2);
  Network b;
  b.emplace<Dense>(2, 2);
  b.emplace<Dense>(2, 2);
  SgdOptimizer opt({.learning_rate = 0.1F});
  opt.step(a);
  EXPECT_THROW(opt.step(b), std::logic_error);
}

TEST(SgdOptimizer, ConvergesOnLinearlySeparableToyProblem) {
  // Two Gaussian blobs in 2-D; a single dense layer should reach 100 %.
  Rng rng(33);
  Network net;
  net.emplace<Dense>(2, 2);
  net.init(rng);

  SoftmaxCrossEntropyLoss loss;
  SgdOptimizer opt({.learning_rate = 0.1F, .momentum = 0.3F});
  for (int epoch = 0; epoch < 60; ++epoch) {
    for (int i = 0; i < 40; ++i) {
      const auto cls = static_cast<std::size_t>(i % 2);
      Tensor x(Shape{2});
      const float cx = cls == 0 ? -1.0F : 1.0F;
      x[0] = cx + rng.normal(0.0F, 0.3F);
      x[1] = -cx + rng.normal(0.0F, 0.3F);
      const Tensor out = net.forward(x);
      net.backward(loss.grad(out, cls));
      opt.step(net);
    }
  }

  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    const auto cls = static_cast<std::size_t>(i % 2);
    Tensor x(Shape{2});
    const float cx = cls == 0 ? -1.0F : 1.0F;
    x[0] = cx + rng.normal(0.0F, 0.3F);
    x[1] = -cx + rng.normal(0.0F, 0.3F);
    if (net.forward(x).argmax() == cls) ++correct;
  }
  EXPECT_GE(correct, 98);
}

}  // namespace
}  // namespace cdl
