// End-to-end integration tests: the full train -> build CDLN -> evaluate
// pipeline on the synthetic workload, checking the paper's headline
// invariants (early exits save ops, accuracy stays competitive, delta knob
// behaves) plus failure-injection robustness.
#include <gtest/gtest.h>

#include <filesystem>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "cdl/delta_selection.h"
#include "data/synthetic_mnist.h"
#include "data/transforms.h"
#include "energy/energy_model.h"
#include "eval/confusion.h"
#include "eval/metrics.h"

namespace cdl {
namespace {

/// One shared trained CDLN (MNIST_3C on a small synthetic workload) reused
/// by every test in this file; training it once keeps the suite fast.
struct Pipeline {
  Pipeline() : data(load_mnist_or_synthetic(1200, 400, 7, 200)) {
    const CdlArchitecture arch = mnist_3c();
    Network base = arch.make_baseline();
    Rng rng(7);
    base.init(rng);
    BaselineTrainConfig bcfg;
    bcfg.epochs = 26;
    bcfg.sgd.lr_decay = 0.97F;  // sustained lr to escape the small-set plateau
    (void)train_baseline(base, data.train, bcfg, rng);

    net.emplace(ConditionalNetwork(std::move(base), arch.input_shape));
    for (std::size_t prefix : arch.default_stages) {
      net->attach_classifier(prefix, LcTrainingRule::kLms, rng);
    }
    report = train_cdl(*net, data.train, CdlTrainConfig{}, rng);
    net->set_delta(0.5F);
  }

  MnistPair data;
  std::optional<ConditionalNetwork> net;
  CdlTrainReport report;
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

TEST(Integration, BaselineIsGenuinelyTrained) {
  // Guards the rest of this file against vacuous passes: if the baseline
  // never escaped its initial plateau, "competitive with baseline" would
  // mean nothing.
  auto& p = pipeline();
  const Evaluation base = evaluate_baseline(*p.net, p.data.test, EnergyModel{});
  EXPECT_GT(base.accuracy(), 0.7);
}

TEST(Integration, CdlSavesOperationsVsBaseline) {
  auto& p = pipeline();
  const EnergyModel model;
  const Evaluation base = evaluate_baseline(*p.net, p.data.test, model);
  const Evaluation cond = evaluate_cdl(*p.net, p.data.test, model);
  EXPECT_LT(cond.avg_ops(), 0.8 * base.avg_ops());
  EXPECT_LT(cond.avg_energy_pj(), 0.8 * base.avg_energy_pj());
}

TEST(Integration, CdlAccuracyCompetitiveWithBaseline) {
  auto& p = pipeline();
  const EnergyModel model;
  const Evaluation base = evaluate_baseline(*p.net, p.data.test, model);
  const Evaluation cond = evaluate_cdl(*p.net, p.data.test, model);
  // The paper reports CDLN > baseline; on a small workload allow slack.
  EXPECT_GT(cond.accuracy(), base.accuracy() - 0.02);
  EXPECT_GT(cond.accuracy(), 0.8);
}

TEST(Integration, MajorityOfInputsExitEarly) {
  auto& p = pipeline();
  const Evaluation cond = evaluate_cdl(*p.net, p.data.test, EnergyModel{});
  EXPECT_GT(cond.exit_fraction(0), 0.5);  // the paper's easy majority
  EXPECT_LT(cond.exit_fraction(p.net->num_stages()), 0.5);
}

TEST(Integration, AverageOpsMatchesExitDistributionExactly) {
  auto& p = pipeline();
  const Evaluation cond = evaluate_cdl(*p.net, p.data.test, EnergyModel{});
  // avg ops must equal sum over stages of exit_count * exit_ops(stage).
  double expected = 0.0;
  for (std::size_t s = 0; s <= p.net->num_stages(); ++s) {
    expected += static_cast<double>(cond.exit_counts[s]) *
                static_cast<double>(p.net->exit_ops(s).total_compute());
  }
  expected /= static_cast<double>(cond.total);
  EXPECT_NEAR(cond.avg_ops(), expected, 1e-6);
}

TEST(Integration, ImpossibleDeltaReproducesBaselinePredictions) {
  auto& p = pipeline();
  p.net->set_delta(2.0F);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto cond = p.net->classify(p.data.test.image(i));
    const auto base = p.net->classify_baseline(p.data.test.image(i));
    EXPECT_EQ(cond.label, base.label) << "sample " << i;
    EXPECT_EQ(cond.exit_stage, p.net->num_stages());
  }
  p.net->set_delta(0.5F);
}

TEST(Integration, DeltaKnobTradesOpsAgainstExitFraction) {
  auto& p = pipeline();
  const EnergyModel model;
  p.net->set_delta(0.45F);
  const Evaluation mid = evaluate_cdl(*p.net, p.data.test, model);
  p.net->set_delta(2.0F);
  const Evaluation never = evaluate_cdl(*p.net, p.data.test, model);
  EXPECT_LT(mid.avg_ops(), never.avg_ops());
  EXPECT_EQ(never.exit_fraction(p.net->num_stages()), 1.0);
  p.net->set_delta(0.5F);
}

TEST(Integration, SelectDeltaPicksReasonableOperatingPoint) {
  auto& p = pipeline();
  const DeltaSelection sel = select_delta(*p.net, p.data.validation);
  EXPECT_GT(sel.best.accuracy, 0.8);
  EXPECT_LT(sel.best.avg_ops,
            static_cast<double>(p.net->baseline_forward_ops().total_compute()));
  p.net->set_delta(0.5F);
}

TEST(Integration, ConfusionMatrixAgreesWithEvaluationAccuracy) {
  auto& p = pipeline();
  ConfusionMatrix cm(10);
  for (std::size_t i = 0; i < p.data.test.size(); ++i) {
    cm.record(p.data.test.label(i),
              p.net->classify(p.data.test.image(i)).label);
  }
  const Evaluation cond = evaluate_cdl(*p.net, p.data.test, EnergyModel{});
  EXPECT_NEAR(cm.accuracy(), cond.accuracy(), 1e-12);
}

TEST(Integration, FailureInjectionNoisyInputsDegradeGracefully) {
  auto& p = pipeline();
  Rng rng(99);
  const Dataset noisy = with_noise(p.data.test, 0.35F, rng);
  const Evaluation clean = evaluate_cdl(*p.net, p.data.test, EnergyModel{});
  const Evaluation corrupted = evaluate_cdl(*p.net, noisy, EnergyModel{});
  // Heavy noise must not crash, must reduce accuracy, and should push more
  // inputs toward the deeper stages (they became harder).
  EXPECT_LT(corrupted.accuracy(), clean.accuracy());
  EXPECT_GE(corrupted.exit_fraction(p.net->num_stages()),
            clean.exit_fraction(p.net->num_stages()));
}

TEST(Integration, FailureInjectionConstantInputStillClassifies) {
  auto& p = pipeline();
  for (float level : {0.0F, 0.5F, 1.0F}) {
    const auto r = p.net->classify(Tensor(Shape{1, 28, 28}, level));
    EXPECT_LT(r.label, 10U);
    EXPECT_GT(r.ops.total_compute(), 0U);
  }
}

TEST(Integration, SaveLoadPreservesEndToEndBehaviour) {
  auto& p = pipeline();
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdl_integration.cdlw").string();
  p.net->save(path);

  const CdlArchitecture arch = mnist_3c();
  Network fresh_base = arch.make_baseline();
  Rng rng(12345);
  fresh_base.init(rng);
  ConditionalNetwork restored(std::move(fresh_base), arch.input_shape);
  // Attach exactly the stages Algorithm 1 admitted in the trained network
  // (the gain test may have rejected some candidates).
  for (std::size_t s = 0; s < p.net->num_stages(); ++s) {
    restored.attach_classifier(p.net->stage_prefix(s), LcTrainingRule::kLms,
                               rng);
  }
  restored.load(path);
  restored.set_delta(p.net->activation_module().delta());

  for (std::size_t i = 0; i < 30; ++i) {
    const auto a = p.net->classify(p.data.test.image(i));
    const auto b = restored.classify(p.data.test.image(i));
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.exit_stage, b.exit_stage);
  }
  std::filesystem::remove(path);
}

TEST(Integration, TranslationInvarianceWithinPoolingWindow) {
  // Max pooling gives tolerance to 1-pixel shifts; predictions should agree
  // for the overwhelming majority of easy inputs.
  auto& p = pipeline();
  std::size_t agree = 0;
  const std::size_t n = 100;
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor shifted = translate_image(p.data.test.image(i), 1, 0);
    if (p.net->classify(p.data.test.image(i)).label ==
        p.net->classify(shifted).label) {
      ++agree;
    }
  }
  EXPECT_GT(agree, 80U);
}

}  // namespace
}  // namespace cdl
