// Tests for the live energy attribution plane (obs/energy_meter.h).
//
// The load-bearing invariants:
//   * the meter's exit-energy tables reproduce bench/fig6_energy's offline
//     running sums bit-identically (fp32 and the int8-datapath extension),
//     for the paper architectures, and
//   * folding a LayerProfiler snapshot of real inference through the meter
//     yields per-stage and total energies that are bit-identical for any
//     thread count and agree bit-exactly with ConditionalNetwork's
//     exit-energy table (the figure the serving engine stamps per request).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "cdl/architectures.h"
#include "cdl/conditional_network.h"
#include "cdl/quantized_cascade.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "energy/energy_model.h"
#include "obs/energy_meter.h"
#include "obs/layer_profile.h"
#include "test_util.h"

namespace cdl {
namespace {

using obs::EnergyMeter;
using obs::LayerProfiler;
using obs::PrecisionOps;
using obs::StageEnergyRow;

/// A paper CDLN with classifiers at the default attach points, untrained
/// (energy accounting is a pure function of the architecture).
ConditionalNetwork paper_cdln(const CdlArchitecture& arch, std::uint64_t seed) {
  Network base = arch.make_baseline();
  Rng rng(seed);
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (const std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  return net;
}

/// fig6_energy's incremental stage cost: stage s for s < num_stages(), the
/// final FC stage otherwise.
OpCount fig6_stage_ops(const ConditionalNetwork& net, std::size_t s) {
  return s < net.num_stages() ? net.stage_ops(s) : net.final_stage_ops();
}

std::vector<Tensor> calibration_images(const Shape& shape, std::size_t n) {
  std::vector<Tensor> images;
  images.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    images.push_back(test::random_image(shape, 9000 + i));
  }
  return images;
}

TEST(EnergyMeter, Int8RowSuffixDetection) {
  EXPECT_TRUE(EnergyMeter::is_int8_row("conv1[int8]"));
  EXPECT_TRUE(EnergyMeter::is_int8_row("classifier+gate[int8]"));
  EXPECT_FALSE(EnergyMeter::is_int8_row("conv1"));
  EXPECT_FALSE(EnergyMeter::is_int8_row("[int8]suffix-not-at-end"));
  EXPECT_FALSE(EnergyMeter::is_int8_row(""));
}

TEST(EnergyMeter, ExitWeightedAverage) {
  const std::vector<double> table{1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts{2, 1, 1};
  EXPECT_EQ(EnergyMeter::exit_weighted_pj(table, counts), 2.0);
  EXPECT_EQ(EnergyMeter::exit_weighted_pj(table, {0, 0, 0}), 0.0);
  EXPECT_THROW((void)EnergyMeter::exit_weighted_pj(table, {1, 2}),
               std::invalid_argument);
}

// --- fig6_energy golden equivalence (offline accounting) --------------------

TEST(EnergyMeterGolden, Fp32ExitTableMatchesFig6RunningSums) {
  const EnergyMeter meter;
  const EnergyModel energy;  // EnergyCosts::cmos_45nm(), as fig6_energy uses
  for (const CdlArchitecture& arch : paper_architectures()) {
    const ConditionalNetwork net = paper_cdln(arch, 42);
    // fig6_energy's fp32_cum loop, verbatim arithmetic.
    std::vector<double> golden;
    double run = 0.0;
    for (std::size_t s = 0; s <= net.num_stages(); ++s) {
      run += energy.energy_pj(fig6_stage_ops(net, s));
      golden.push_back(run);
    }
    const std::vector<double> table = net.exit_energy_table(meter);
    ASSERT_EQ(table.size(), golden.size()) << arch.name;
    for (std::size_t s = 0; s < golden.size(); ++s) {
      EXPECT_EQ(table[s], golden[s])
          << arch.name << " exit " << s << " must be bit-identical to the "
          << "offline fig6 accounting";
    }
  }
}

TEST(EnergyMeterGolden, Int8MixMatchesFig6DatapathSums) {
  const EnergyMeter meter;
  const EnergyModel fp32_energy;
  const EnergyModel int8_energy(EnergyCosts::cmos_45nm_int8());
  for (const CdlArchitecture& arch : paper_architectures()) {
    ConditionalNetwork net = paper_cdln(arch, 7);
    net.set_quantization(collect_quant_calibration(
        net.baseline(), net.input_shape(),
        calibration_images(net.input_shape(), 32), 32));

    // fig6_energy's int8_cum loop: whole quantizable stages priced at the
    // int8 datapath costs, unquantizable stages keep their fp32 cost.
    std::vector<double> golden;
    std::vector<PrecisionOps> mix;
    double run = 0.0;
    for (std::size_t s = 0; s <= net.num_stages(); ++s) {
      const OpCount ops = fig6_stage_ops(net, s);
      const bool q = net.stage_quantizable(s);
      run += q ? int8_energy.energy_pj(ops) : fp32_energy.energy_pj(ops);
      golden.push_back(run);
      PrecisionOps po;
      (q ? po.int8 : po.fp32) = ops;
      mix.push_back(po);
    }
    const std::vector<double> table = meter.exit_energy_table(mix);
    ASSERT_EQ(table.size(), golden.size()) << arch.name;
    for (std::size_t s = 0; s < golden.size(); ++s) {
      EXPECT_EQ(table[s], golden[s]) << arch.name << " exit " << s;
    }
  }
}

// --- profiler-fold equivalence over real inference --------------------------

/// RAII profiler enable (the singleton must not leak into other tests).
class ScopedProfiler {
 public:
  ScopedProfiler() {
    LayerProfiler::instance().clear();
    LayerProfiler::instance().set_enabled(true);
  }
  ~ScopedProfiler() {
    LayerProfiler::instance().set_enabled(false);
    LayerProfiler::instance().clear();
  }
};

std::vector<StageEnergyRow> profile_and_attribute(
    const ConditionalNetwork& net, const std::vector<Tensor>& inputs,
    ThreadPool* pool, const EnergyMeter& meter) {
  ScopedProfiler scoped;
  const auto results = net.classify_batch(inputs, pool);
  EXPECT_EQ(results.size(), inputs.size());
  return meter.attribute(LayerProfiler::instance().snapshot());
}

/// Shared assertion body: rows folded from a profiler snapshot must agree
/// bit-exactly with the network's op cache and exit-energy table.
void check_fold_against_exit_table(const ConditionalNetwork& net,
                                   const EnergyMeter& meter,
                                   const std::vector<StageEnergyRow>& rows) {
  const std::vector<double> table = net.exit_energy_table(meter);
  double run = 0.0;
  std::size_t next_stage = 0;
  for (const StageEnergyRow& row : rows) {
    ASSERT_GE(row.stage, 0);
    const auto s = static_cast<std::size_t>(row.stage);
    // Stages are visited in cascade order with no gaps: a row for stage s
    // implies samples entered every earlier stage.
    ASSERT_EQ(s, next_stage++);
    ASSERT_GT(row.samples, 0U);
    // The merged bundle is exactly `samples` copies of the per-stage cost.
    const OpCount expected =
        fig6_stage_ops(net, s) * static_cast<std::uint64_t>(row.samples);
    EXPECT_EQ(row.fp32_ops + row.int8_ops, expected) << "stage " << s;
    // Accumulating the per-image stage energies in cascade order reproduces
    // the exit-energy table bit-exactly — the identity that makes the
    // serving engine's per-request stamps equal the offline accounting.
    run += row.per_image_pj;
    EXPECT_EQ(run, table[s]) << "cumulative energy at stage " << s;
  }
}

TEST(EnergyMeterFold, Fp32FoldBitExactAcrossThreadCounts) {
  const EnergyMeter meter;
  for (const CdlArchitecture& arch : paper_architectures()) {
    ConditionalNetwork net = paper_cdln(arch, 42);
    net.set_delta(0.9F);  // untrained: most rows reach deep stages
    std::vector<Tensor> inputs;
    for (std::uint64_t i = 0; i < 16; ++i) {
      inputs.push_back(test::random_image(net.input_shape(), 500 + i));
    }

    const auto serial = profile_and_attribute(net, inputs, nullptr, meter);
    check_fold_against_exit_table(net, meter, serial);

    for (const std::size_t workers : {2U, 4U}) {
      ThreadPool pool(workers);
      const auto parallel = profile_and_attribute(net, inputs, &pool, meter);
      ASSERT_EQ(parallel.size(), serial.size()) << arch.name;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].stage, serial[i].stage);
        EXPECT_EQ(parallel[i].samples, serial[i].samples);
        EXPECT_TRUE(parallel[i].fp32_ops == serial[i].fp32_ops);
        EXPECT_TRUE(parallel[i].int8_ops == serial[i].int8_ops);
        EXPECT_EQ(parallel[i].energy_pj, serial[i].energy_pj)
            << arch.name << " stage " << serial[i].stage << " at " << workers
            << " workers must attribute bit-identical energy";
        EXPECT_EQ(parallel[i].per_image_pj, serial[i].per_image_pj);
      }
      EXPECT_EQ(meter.total_pj(parallel), meter.total_pj(serial));
    }
  }
}

TEST(EnergyMeterFold, Int8FoldMatchesLiveExitTable) {
  const EnergyMeter meter;
  ConditionalNetwork net = paper_cdln(mnist_2c(), 7);
  net.set_delta(0.9F);
  net.set_quantization(collect_quant_calibration(
      net.baseline(), net.input_shape(),
      calibration_images(net.input_shape(), 32), 32));
  std::size_t quantized = 0;
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    if (net.stage_quantizable(s)) {
      net.set_stage_precision(s, StagePrecision::kInt8);
      ++quantized;
    }
  }
  ASSERT_GT(quantized, 0U) << "MNIST_2C must have quantizable stages";

  std::vector<Tensor> inputs;
  for (std::uint64_t i = 0; i < 16; ++i) {
    inputs.push_back(test::random_image(net.input_shape(), 700 + i));
  }
  const auto serial = profile_and_attribute(net, inputs, nullptr, meter);
  check_fold_against_exit_table(net, meter, serial);

  // The quantized stages' bundles must actually land in the int8 column
  // (priced via cmos_45nm_int8), not silently fold as fp32.
  bool saw_int8 = false;
  for (const StageEnergyRow& row : serial) {
    if (row.int8_ops.total_compute() > 0) saw_int8 = true;
  }
  EXPECT_TRUE(saw_int8);

  ThreadPool pool(4);
  const auto parallel = profile_and_attribute(net, inputs, &pool, meter);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].energy_pj, serial[i].energy_pj);
    EXPECT_EQ(parallel[i].per_image_pj, serial[i].per_image_pj);
  }
}

TEST(EnergyMeterFold, PerImageDriverMatchesBatchedAttribution) {
  const EnergyMeter meter;
  ConditionalNetwork net = paper_cdln(mnist_2c(), 11);
  net.set_delta(0.9F);
  std::vector<Tensor> inputs;
  for (std::uint64_t i = 0; i < 8; ++i) {
    inputs.push_back(test::random_image(net.input_shape(), 800 + i));
  }
  const auto batched = profile_and_attribute(net, inputs, nullptr, meter);

  std::vector<StageEnergyRow> per_image;
  {
    ScopedProfiler scoped;
    for (const Tensor& x : inputs) (void)net.classify(x);
    per_image = meter.attribute(LayerProfiler::instance().snapshot());
  }
  ASSERT_EQ(per_image.size(), batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(per_image[i].samples, batched[i].samples);
    EXPECT_EQ(per_image[i].energy_pj, batched[i].energy_pj)
        << "both drivers must attribute identical energy at stage "
        << batched[i].stage;
  }
  EXPECT_EQ(meter.total_pj(per_image), meter.total_pj(batched));
}

}  // namespace
}  // namespace cdl
