// Determinism tests for the batched inference paths: Layer::infer vs
// forward, Network::forward_batch, ConditionalNetwork::classify_batch and
// the pooled evaluators must all be bit-identical to their serial
// counterparts for every thread count.
#include <gtest/gtest.h>

#include <vector>

#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/dataset.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "nn/conv2d.h"
#include "nn/network.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::conv_cdln;
using test::conv_net;
using test::random_image;

TEST(BatchInference, InferMatchesForwardForBothConvAlgos) {
  for (ConvAlgo algo : {ConvAlgo::kDirect, ConvAlgo::kIm2col}) {
    Rng rng(3);
    Network net = conv_net(algo, rng);
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const Tensor x = random_image(Shape{1, 12, 12}, seed);
      const Tensor inferred = net.infer(x);
      const Tensor trained = net.forward(x);
      EXPECT_EQ(inferred, trained) << "seed " << seed;
    }
  }
}

TEST(BatchInference, Conv2DInferSurvivesAlternatingShapes) {
  // The infer path reuses thread-local scratch across calls; alternating
  // input sizes must not leak stale padding or column data.
  Rng rng(5);
  Conv2D conv(2, 3, 3, ConvAlgo::kIm2col, ConvGeometry{1, 1});
  conv.init(rng);
  for (std::size_t round = 0; round < 3; ++round) {
    for (std::size_t size : {9U, 13U, 9U, 6U}) {
      const Tensor x = random_image(Shape{2, size, size}, round * 10 + size);
      EXPECT_EQ(conv.infer(x), conv.forward(x)) << "size " << size;
    }
  }
}

TEST(BatchInference, ForwardBatchBitIdenticalAcrossPoolSizes) {
  Rng rng(7);
  const Network net = conv_net(ConvAlgo::kIm2col, rng);
  std::vector<Tensor> inputs;
  for (std::uint64_t i = 0; i < 11; ++i) {
    inputs.push_back(random_image(Shape{1, 12, 12}, 100 + i));
  }

  const std::vector<Tensor> serial = net.forward_batch(inputs, nullptr);
  ASSERT_EQ(serial.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(serial[i], net.infer(inputs[i])) << "sample " << i;
  }

  for (std::size_t workers : {1U, 2U, 4U, 8U}) {
    ThreadPool pool(workers);
    const std::vector<Tensor> pooled = net.forward_batch(inputs, &pool);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(pooled[i], serial[i])
          << "sample " << i << " workers " << workers;
    }
  }
}

TEST(BatchInference, ClassifyBatchMatchesSerialClassify) {
  Rng rng(11);
  const ConditionalNetwork net = conv_cdln(ConvAlgo::kIm2col, rng);
  std::vector<Tensor> inputs;
  for (std::uint64_t i = 0; i < 17; ++i) {
    inputs.push_back(random_image(Shape{1, 12, 12}, 200 + i));
  }

  std::vector<ClassificationResult> serial;
  for (const Tensor& x : inputs) serial.push_back(net.classify(x));

  for (std::size_t workers : {1U, 3U, 4U}) {
    ThreadPool pool(workers);
    const auto batch = net.classify_batch(inputs, &pool);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batch[i].label, serial[i].label) << "sample " << i;
      EXPECT_EQ(batch[i].exit_stage, serial[i].exit_stage) << "sample " << i;
      EXPECT_EQ(batch[i].confidence, serial[i].confidence) << "sample " << i;
      EXPECT_EQ(batch[i].probabilities, serial[i].probabilities)
          << "sample " << i;
      EXPECT_EQ(batch[i].ops, serial[i].ops) << "sample " << i;
    }
  }
}

TEST(BatchInference, EvaluationsIdenticalSerialAndPooled) {
  Rng rng(13);
  const ConditionalNetwork net = conv_cdln(ConvAlgo::kDirect, rng);
  Dataset data;
  for (std::uint64_t i = 0; i < 30; ++i) {
    data.add(random_image(Shape{1, 12, 12}, 300 + i), i % 5);
  }
  const EnergyModel energy;
  ThreadPool pool(4);

  for (const bool conditional : {true, false}) {
    const Evaluation serial = conditional
                                  ? evaluate_cdl(net, data, energy)
                                  : evaluate_baseline(net, data, energy);
    const Evaluation pooled = conditional
                                  ? evaluate_cdl(net, data, energy, &pool)
                                  : evaluate_baseline(net, data, energy, &pool);
    EXPECT_EQ(pooled.total, serial.total);
    EXPECT_EQ(pooled.correct, serial.correct);
    // Aggregation is serial in sample order either way, so sums are exact.
    EXPECT_EQ(pooled.sum_ops, serial.sum_ops);
    EXPECT_EQ(pooled.sum_energy_pj, serial.sum_energy_pj);
    EXPECT_EQ(pooled.exit_counts, serial.exit_counts);
    EXPECT_EQ(pooled.exit_correct, serial.exit_correct);
    ASSERT_EQ(pooled.per_class.size(), serial.per_class.size());
    for (std::size_t c = 0; c < serial.per_class.size(); ++c) {
      EXPECT_EQ(pooled.per_class[c].total, serial.per_class[c].total);
      EXPECT_EQ(pooled.per_class[c].correct, serial.per_class[c].correct);
      EXPECT_EQ(pooled.per_class[c].sum_ops, serial.per_class[c].sum_ops);
      EXPECT_EQ(pooled.per_class[c].exit_counts,
                serial.per_class[c].exit_counts);
    }
  }
}

}  // namespace
}  // namespace cdl
