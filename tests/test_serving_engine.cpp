// ServingEngine end to end: inline-mode behaviors replayed on a ManualClock
// (batching, deadlines, backpressure, shutdown drain/abort) and the serving
// determinism property — every served response is bit-identical to an offline
// classify() of the same image, for any arrival order, max_batch and worker
// count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <numeric>
#include <string>
#include <vector>

#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "obs/registry.h"
#include "serve/engine.h"
#include "test_util.h"

namespace cdl::serve {
namespace {

using cdl::test::conv_cdln;
using cdl::test::random_image;

const Shape kImageShape{1, 12, 12};

ModelRegistry one_model(std::uint64_t seed = 7) {
  Rng rng(seed);
  ModelRegistry models;
  models.add("cascade", conv_cdln(ConvAlgo::kIm2col, rng));
  return models;
}

std::vector<Tensor> make_inputs(std::size_t count, std::uint64_t seed) {
  std::vector<Tensor> inputs;
  inputs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    inputs.push_back(random_image(kImageShape, seed + i));
  }
  return inputs;
}

void expect_identical(const ClassificationResult& got,
                      const ClassificationResult& want,
                      const std::string& context) {
  EXPECT_EQ(got.label, want.label) << context;
  EXPECT_EQ(got.exit_stage, want.exit_stage) << context;
  EXPECT_EQ(got.confidence, want.confidence) << context;
  EXPECT_EQ(got.probabilities, want.probabilities) << context;
  EXPECT_EQ(got.ops, want.ops) << context;
}

TEST(ServingEngine, RejectsEmptyRegistry) {
  EngineConfig config;
  config.workers = 0;
  EXPECT_THROW(ServingEngine(ModelRegistry{}, config), std::invalid_argument);
}

TEST(ServingEngine, SizeTriggerServesWithoutTimeAdvancing) {
  ManualClock clock(1000);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 3;
  config.batcher.max_delay_ns = 1'000'000;
  ServingEngine engine(one_model(), config);

  const std::vector<Tensor> inputs = make_inputs(3, 100);
  std::vector<Submitted> receipts;
  for (const Tensor& x : inputs) {
    receipts.push_back(engine.submit(0, Tensor(x)));
    ASSERT_EQ(receipts.back().status, SubmitStatus::kAccepted);
  }
  EXPECT_EQ(engine.in_flight(), 3U);
  EXPECT_EQ(engine.run_once(), 3U);  // full batch: no clock advance needed
  EXPECT_EQ(engine.in_flight(), 0U);
  for (std::size_t i = 0; i < receipts.size(); ++i) {
    Response resp = receipts[i].response.get();
    EXPECT_EQ(resp.status, RequestStatus::kOk);
    EXPECT_EQ(resp.batch_size, 3U);
    expect_identical(resp.result, engine.models().net(0).classify(inputs[i]),
                     "request " + std::to_string(i));
  }
}

TEST(ServingEngine, TimeoutTriggerServesPartialBatchAtVirtualDeadline) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 64;
  config.batcher.max_delay_ns = 2'000'000;
  ServingEngine engine(one_model(), config);

  Submitted receipt = engine.submit(0, random_image(kImageShape, 5));
  ASSERT_EQ(receipt.status, SubmitStatus::kAccepted);
  EXPECT_EQ(engine.run_once(), 0U) << "fresh request: batcher must wait";
  clock.advance(1'999'999);
  EXPECT_EQ(engine.run_once(), 0U) << "one tick before max_delay";
  clock.advance(1);
  EXPECT_EQ(engine.run_once(), 1U) << "timeout trigger at exact virtual time";
  Response resp = receipt.response.get();
  EXPECT_EQ(resp.status, RequestStatus::kOk);
  EXPECT_EQ(resp.batch_size, 1U);
  EXPECT_EQ(resp.latency_ns, 2'000'000U);  // exact on the manual clock
}

TEST(ServingEngine, BackpressureRejectsWhenQueueFull) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;  // nobody drains the queue between submits
  config.clock = &clock;
  config.queue_capacity = 2;
  ServingEngine engine(one_model(), config);

  Submitted a = engine.submit(0, random_image(kImageShape, 1));
  Submitted b = engine.submit(0, random_image(kImageShape, 2));
  Submitted c = engine.submit(0, random_image(kImageShape, 3));
  EXPECT_EQ(a.status, SubmitStatus::kAccepted);
  EXPECT_EQ(b.status, SubmitStatus::kAccepted);
  EXPECT_EQ(c.status, SubmitStatus::kQueueFull);
  Response rejected = c.response.get();  // already fulfilled: never blocks
  EXPECT_EQ(rejected.status, RequestStatus::kRejected);

  const SloSummary slo = engine.slo().summary(0);
  EXPECT_EQ(slo.submitted, 3U);
  EXPECT_EQ(slo.accepted, 2U);
  EXPECT_EQ(slo.rejected, 1U);
  engine.shutdown();  // drains a and b
  EXPECT_EQ(a.response.get().status, RequestStatus::kOk);
  EXPECT_EQ(b.response.get().status, RequestStatus::kOk);
}

TEST(ServingEngine, UnknownModelRejectsImmediately) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  ServingEngine engine(one_model(), config);

  Submitted by_index = engine.submit(99, random_image(kImageShape, 1));
  EXPECT_EQ(by_index.status, SubmitStatus::kUnknownModel);
  EXPECT_EQ(by_index.response.get().status, RequestStatus::kRejected);
  Submitted by_name = engine.submit("nope", random_image(kImageShape, 1));
  EXPECT_EQ(by_name.status, SubmitStatus::kUnknownModel);
  EXPECT_EQ(by_name.response.get().status, RequestStatus::kRejected);
}

TEST(ServingEngine, DeadlineExpiresBeforeDispatch) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 64;
  config.batcher.max_delay_ns = 10'000'000;
  ServingEngine engine(one_model(), config);

  Submitted doomed =
      engine.submit(0, random_image(kImageShape, 1), /*deadline_ns=*/500'000);
  Submitted healthy = engine.submit(0, random_image(kImageShape, 2));
  ASSERT_EQ(doomed.status, SubmitStatus::kAccepted);
  clock.advance(500'000);  // exactly the deadline instant: dead
  EXPECT_EQ(engine.run_once(), 1U);
  Response resp = doomed.response.get();
  EXPECT_EQ(resp.status, RequestStatus::kExpired);
  EXPECT_TRUE(resp.slo_miss);
  EXPECT_EQ(resp.latency_ns, 500'000U);

  const SloSummary slo = engine.slo().summary(0);
  EXPECT_EQ(slo.expired, 1U);
  EXPECT_EQ(slo.slo_miss, 1U);
  EXPECT_EQ(slo.completed, 0U) << "no inference ran for the expired request";
  engine.shutdown();
  EXPECT_EQ(healthy.response.get().status, RequestStatus::kOk);
}

TEST(ServingEngine, DefaultDeadlineAppliesToSubmits) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_delay_ns = 10'000'000;
  config.default_deadline_ns = 1'000;
  ServingEngine engine(one_model(), config);
  Submitted receipt = engine.submit(0, random_image(kImageShape, 1));
  clock.advance(1'000);
  EXPECT_EQ(engine.run_once(), 1U);
  EXPECT_EQ(receipt.response.get().status, RequestStatus::kExpired);
}

TEST(ServingEngine, ShutdownDrainsEveryAcceptedRequest) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 64;
  config.batcher.max_delay_ns = 10'000'000;
  ServingEngine engine(one_model(), config);

  const std::vector<Tensor> inputs = make_inputs(5, 300);
  std::vector<Submitted> receipts;
  for (const Tensor& x : inputs) receipts.push_back(engine.submit(0, Tensor(x)));
  engine.shutdown();  // no clock advance: drain must not wait for timeouts
  for (std::size_t i = 0; i < receipts.size(); ++i) {
    Response resp = receipts[i].response.get();
    ASSERT_EQ(resp.status, RequestStatus::kOk) << "request " << i;
    expect_identical(resp.result, engine.models().net(0).classify(inputs[i]),
                     "drained request " + std::to_string(i));
  }
  // Post-shutdown submits are turned away, not queued forever.
  Submitted late = engine.submit(0, random_image(kImageShape, 9));
  EXPECT_EQ(late.status, SubmitStatus::kShutdown);
  EXPECT_EQ(late.response.get().status, RequestStatus::kRejected);
}

TEST(ServingEngine, AbortShutdownFailsPendingWithShutdownStatus) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_delay_ns = 10'000'000;
  ServingEngine engine(one_model(), config);

  Submitted a = engine.submit(0, random_image(kImageShape, 1));
  Submitted b = engine.submit(0, random_image(kImageShape, 2));
  engine.shutdown(/*drain=*/false);
  EXPECT_EQ(a.response.get().status, RequestStatus::kShutdown);
  EXPECT_EQ(b.response.get().status, RequestStatus::kShutdown);
  const SloSummary slo = engine.slo().summary(0);
  EXPECT_EQ(slo.shutdown, 2U);
  EXPECT_EQ(slo.completed, 0U);
}

TEST(ServingEngine, ExportsOpenMetricsFamilies) {
  obs::Registry registry;
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.registry = &registry;
  config.batcher.max_batch = 2;
  ServingEngine engine(one_model(), config);

  Submitted a = engine.submit(0, random_image(kImageShape, 1));
  Submitted b = engine.submit(0, random_image(kImageShape, 2));
  EXPECT_EQ(engine.run_once(), 2U);
  (void)a.response.get();
  (void)b.response.get();
  const std::string text = registry.openmetrics();
  EXPECT_NE(text.find("cdl_serve_requests_total"), std::string::npos);
  EXPECT_NE(text.find("model=\"cascade\""), std::string::npos);
  EXPECT_NE(text.find("cdl_serve_latency_ms"), std::string::npos);
  EXPECT_NE(text.find("cdl_serve_batches_total"), std::string::npos);
  EXPECT_NE(text.find("cdl_serve_queue_depth"), std::string::npos);
}

TEST(ServingEngine, MultiModelRoutesByNameAndAccountsSeparately) {
  ManualClock clock(0);
  Rng rng_a(11);
  Rng rng_b(22);
  ModelRegistry models;
  models.add("alpha", conv_cdln(ConvAlgo::kIm2col, rng_a));
  models.add("beta", conv_cdln(ConvAlgo::kIm2col, rng_b));
  EngineConfig config;
  config.workers = 0;
  config.clock = &clock;
  config.batcher.max_batch = 1;  // dispatch per request
  ServingEngine engine(std::move(models), config);

  const Tensor image = random_image(kImageShape, 77);
  Submitted to_a = engine.submit("alpha", Tensor(image));
  Submitted to_b = engine.submit("beta", Tensor(image));
  EXPECT_EQ(engine.run_once(), 2U);
  expect_identical(to_a.response.get().result,
                   engine.models().net(0).classify(image), "alpha");
  expect_identical(to_b.response.get().result,
                   engine.models().net(1).classify(image), "beta");
  EXPECT_EQ(engine.slo().summary(0).completed, 1U);
  EXPECT_EQ(engine.slo().summary(1).completed, 1U);
  EXPECT_EQ(engine.slo().summary(0).model, "alpha");
  EXPECT_EQ(engine.slo().summary(1).model, "beta");
}

/// The serving determinism property (the PR's acceptance criterion): for any
/// arrival order, any max_batch (hence any dynamic batch composition) and
/// any worker count, every served response is bit-identical to an offline
/// classify() of the same image.
TEST(ServingEngine, ServedResultsBitIdenticalToOfflineForAnyBatching) {
  constexpr std::size_t kImages = 24;
  Rng net_rng(7);
  const ConditionalNetwork reference_net = conv_cdln(ConvAlgo::kIm2col, net_rng);
  const std::vector<Tensor> inputs = make_inputs(kImages, 9000);
  std::vector<ClassificationResult> reference;
  reference.reserve(kImages);
  for (const Tensor& x : inputs) reference.push_back(reference_net.classify(x));

  std::vector<std::vector<std::size_t>> orders;
  std::vector<std::size_t> forward(kImages);
  std::iota(forward.begin(), forward.end(), 0U);
  orders.push_back(forward);
  std::vector<std::size_t> reversed = forward;
  std::reverse(reversed.begin(), reversed.end());
  orders.push_back(reversed);
  std::vector<std::size_t> shuffled = forward;
  Rng order_rng(123);
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[order_rng.index(i)]);
  }
  orders.push_back(shuffled);

  for (const std::size_t max_batch : {1U, 3U, 16U}) {
    for (const std::size_t workers : {0U, 2U}) {
      for (std::size_t o = 0; o < orders.size(); ++o) {
        Rng engine_rng(7);  // fresh but identical network per engine
        ModelRegistry models;
        models.add("cascade", conv_cdln(ConvAlgo::kIm2col, engine_rng));
        ManualClock clock(0);
        EngineConfig config;
        config.workers = workers;
        config.queue_capacity = kImages;
        config.batcher.max_batch = max_batch;
        config.batcher.max_delay_ns = 50'000;
        if (workers == 0) config.clock = &clock;  // inline: fully virtual
        ServingEngine engine(std::move(models), config);

        std::vector<std::future<Response>> futures(kImages);
        for (const std::size_t index : orders[o]) {
          Submitted receipt = engine.submit(0, Tensor(inputs[index]));
          ASSERT_EQ(receipt.status, SubmitStatus::kAccepted);
          futures[index] = std::move(receipt.response);
        }
        engine.shutdown();  // drains everything regardless of triggers
        for (std::size_t i = 0; i < kImages; ++i) {
          Response resp = futures[i].get();
          ASSERT_EQ(resp.status, RequestStatus::kOk);
          expect_identical(resp.result, reference[i],
                           "image " + std::to_string(i) + " order " +
                               std::to_string(o) + " max_batch " +
                               std::to_string(max_batch) + " workers " +
                               std::to_string(workers));
        }
      }
    }
  }
}

/// Worker threads parked on a ManualClock wake on virtual-time advances: the
/// full threaded pipeline runs deterministically with no real sleeps.
TEST(ServingEngine, ThreadedWorkersServeOnManualClock) {
  ManualClock clock(0);
  EngineConfig config;
  config.workers = 1;
  config.clock = &clock;
  config.batcher.max_batch = 64;  // only the timeout trigger can dispatch
  config.batcher.max_delay_ns = 1'000'000;
  ServingEngine engine(one_model(), config);

  const Tensor image = random_image(kImageShape, 42);
  Submitted receipt = engine.submit(0, Tensor(image));
  ASSERT_EQ(receipt.status, SubmitStatus::kAccepted);
  clock.advance(1'000'000);  // reach the timeout trigger in virtual time
  Response resp = receipt.response.get();  // event wait, not a sleep
  EXPECT_EQ(resp.status, RequestStatus::kOk);
  expect_identical(resp.result, engine.models().net(0).classify(image),
                   "threaded manual clock");
  engine.shutdown();
}

}  // namespace
}  // namespace cdl::serve
