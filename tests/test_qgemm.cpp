// Exact-arithmetic tests for the quantized u8 x s8 GEMM: every tier must
// reproduce the naive int32 product bit-for-bit (within the packed-A weight
// bound), including the saturation-prone edges of the AVX2 vpmaddubsw tier,
// plus packing-layout equivalences and the real quantize/dequantize helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cfenv>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "nn/qgemm.h"
#include "nn/quantize.h"

namespace cdl {
namespace {

void naive_qgemm(QgemmDims d, const std::int8_t* a, const std::uint8_t* b,
                 std::int32_t* c) {
  for (std::size_t i = 0; i < d.m; ++i) {
    for (std::size_t j = 0; j < d.n; ++j) {
      std::int32_t acc = 0;
      for (std::size_t p = 0; p < d.k; ++p) {
        acc += static_cast<std::int32_t>(a[i * d.k + p]) *
               static_cast<std::int32_t>(b[p * d.n + j]);
      }
      c[i * d.n + j] = acc;
    }
  }
}

std::vector<std::int8_t> random_weights(std::size_t n, Rng& rng) {
  std::vector<std::int8_t> w(n);
  for (std::int8_t& v : w) {
    v = static_cast<std::int8_t>(
        static_cast<std::int32_t>(rng.index(2 * kQgemmWeightMax + 1)) -
        kQgemmWeightMax);
  }
  return w;
}

std::vector<std::uint8_t> random_activations(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> a(n);
  for (std::uint8_t& v : a) v = static_cast<std::uint8_t>(rng.index(256));
  return a;
}

using QgemmCase = std::tuple<std::size_t, std::size_t, std::size_t>;

class QgemmSweep : public ::testing::TestWithParam<QgemmCase> {};

TEST_P(QgemmSweep, DispatchedMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 131 + k * 17 + n);
  const auto a = random_weights(m * k, rng);
  const auto b = random_activations(k * n, rng);
  std::vector<std::int32_t> expected(m * n, -1);
  naive_qgemm({m, k, n}, a.data(), b.data(), expected.data());

  std::vector<std::int32_t> c(m * n, -1);
  qgemm({m, k, n}, a.data(), b.data(), c.data());
  EXPECT_EQ(c, expected);
}

TEST_P(QgemmSweep, ReferenceMatchesDispatchOnPackedOperands) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 911 + n);
  const auto a = random_weights(m * k, rng);
  const auto b = random_activations(k * n, rng);
  std::vector<std::int8_t> pa(qgemm_packed_a_bytes(m, k));
  std::vector<std::uint8_t> pb(qgemm_packed_b_bytes(k, n));
  qgemm_pack_a(m, k, a.data(), pa.data());
  qgemm_pack_b(k, n, b.data(), pb.data());

  std::vector<std::int32_t> ref(m * n, -1);
  std::vector<std::int32_t> got(m * n, -2);
  qgemm_packed_reference({m, k, n}, pa.data(), pb.data(), ref.data());
  qgemm_packed({m, k, n}, pa.data(), pb.data(), got.data());
  EXPECT_EQ(got, ref) << "dispatch tier " << to_string(qgemm_tier());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QgemmSweep,
    ::testing::Values(QgemmCase{1, 1, 1}, QgemmCase{4, 4, 8},
                      QgemmCase{3, 5, 7}, QgemmCase{6, 25, 144},
                      QgemmCase{12, 150, 100}, QgemmCase{10, 192, 33},
                      QgemmCase{9, 54, 36}, QgemmCase{17, 31, 63}));

TEST(Qgemm, SaturationEdgeCases) {
  // Worst case for the AVX2 tier: |a| = kQgemmWeightMax against b = 255.
  // Adjacent-pair sums reach +/-2*255*63 = +/-32130, just inside s16; any
  // saturation bug shows up as a mismatch vs the naive product. Sweep the
  // sign patterns that maximize and alternate the pair sums.
  const std::size_t k = 64;
  const std::int8_t w = static_cast<std::int8_t>(kQgemmWeightMax);
  const std::int8_t patterns[4][2] = {
      {w, w},
      {static_cast<std::int8_t>(-w), static_cast<std::int8_t>(-w)},
      {w, static_cast<std::int8_t>(-w)},
      {static_cast<std::int8_t>(-w), w}};
  for (const auto& pat : patterns) {
    std::vector<std::int8_t> a(k);
    for (std::size_t p = 0; p < k; ++p) a[p] = pat[p % 2];
    std::vector<std::uint8_t> b(k, 255);
    std::int32_t expected = 0;
    naive_qgemm({1, k, 1}, a.data(), b.data(), &expected);
    std::int32_t got = -1;
    qgemm({1, k, 1}, a.data(), b.data(), &got);
    EXPECT_EQ(got, expected);
  }
}

TEST(Qgemm, ZeroPaddedTailsDoNotContaminate) {
  // k = 5 forces 3 bytes of k-group padding; m/n force row/column padding.
  // Use extreme values so any stray padded term would visibly shift C.
  const std::size_t m = 5, k = 5, n = 9;
  std::vector<std::int8_t> a(m * k, static_cast<std::int8_t>(-63));
  std::vector<std::uint8_t> b(k * n, 255);
  std::vector<std::int32_t> expected(m * n);
  naive_qgemm({m, k, n}, a.data(), b.data(), expected.data());
  std::vector<std::int32_t> c(m * n);
  qgemm({m, k, n}, a.data(), b.data(), c.data());
  EXPECT_EQ(c, expected);
}

TEST(Qgemm, ParallelIsBitIdenticalToSerial) {
  const QgemmDims dims{6, 150, 531};
  Rng rng(99);
  const auto a = random_weights(dims.m * dims.k, rng);
  const auto b = random_activations(dims.k * dims.n, rng);
  std::vector<std::int8_t> pa(qgemm_packed_a_bytes(dims.m, dims.k));
  std::vector<std::uint8_t> pb(qgemm_packed_b_bytes(dims.k, dims.n));
  qgemm_pack_a(dims.m, dims.k, a.data(), pa.data());
  qgemm_pack_b(dims.k, dims.n, b.data(), pb.data());

  std::vector<std::int32_t> serial(dims.m * dims.n);
  qgemm_packed(dims, pa.data(), pb.data(), serial.data());
  for (std::size_t workers : {2U, 3U, 7U}) {
    ThreadPool pool(workers);
    std::vector<std::int32_t> parallel(dims.m * dims.n, -1);
    qgemm_packed(dims, pa.data(), pb.data(), parallel.data(), &pool);
    EXPECT_EQ(parallel, serial) << workers << " workers";
  }
}

TEST(Qgemm, PackBTransposedMatchesPackB) {
  const std::size_t k = 37, n = 10;
  Rng rng(7);
  const auto xt = random_activations(n * k, rng);  // row-major (n, k)
  std::vector<std::uint8_t> b(k * n);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) b[p * n + j] = xt[j * k + p];
  }
  std::vector<std::uint8_t> pb_direct(qgemm_packed_b_bytes(k, n), 0xAA);
  std::vector<std::uint8_t> pb_trans(qgemm_packed_b_bytes(k, n), 0x55);
  qgemm_pack_b(k, n, b.data(), pb_direct.data());
  qgemm_pack_b_transposed(k, n, xt.data(), pb_trans.data());
  EXPECT_EQ(pb_trans, pb_direct);
}

TEST(Qgemm, Im2colPackMatchesNaiveLowering) {
  // 2 images, 3 channels, 6x5 input, 3x3 kernel -> k = 27 (padded to 28),
  // n = 2 * 4 * 3 = 24 columns = 3 panels.
  const std::size_t count = 2, c = 3, h = 6, w = 5, kernel = 3;
  const std::size_t oh = h - kernel + 1, ow = w - kernel + 1;
  const std::size_t pixels = oh * ow;
  const std::size_t k = c * kernel * kernel;
  const std::size_t n = count * pixels;
  Rng rng(21);
  const auto images = random_activations(count * c * h * w, rng);

  std::vector<std::uint8_t> lowered(k * n);
  for (std::size_t img = 0; img < count; ++img) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        const std::size_t col = img * pixels + oy * ow + ox;
        std::size_t p = 0;
        for (std::size_t ic = 0; ic < c; ++ic) {
          for (std::size_t ky = 0; ky < kernel; ++ky) {
            for (std::size_t kx = 0; kx < kernel; ++kx, ++p) {
              lowered[p * n + col] =
                  images[img * c * h * w + ic * h * w + (oy + ky) * w +
                         (ox + kx)];
            }
          }
        }
      }
    }
  }
  std::vector<std::uint8_t> expected(qgemm_packed_b_bytes(k, n));
  qgemm_pack_b(k, n, lowered.data(), expected.data());

  const std::size_t panels = (n + kQgemmNr - 1) / kQgemmNr;
  std::vector<std::uint8_t> got(qgemm_packed_b_bytes(k, n), 0xCC);
  // Pack in two disjoint ranges to exercise the parallel-split contract.
  qgemm_pack_b_im2col(images.data(), count, c, h, w, kernel, got.data(), 0, 2);
  qgemm_pack_b_im2col(images.data(), count, c, h, w, kernel, got.data(), 2,
                      panels);
  EXPECT_EQ(got, expected);
}

TEST(Qgemm, TrivialDims) {
  std::vector<std::int32_t> c(6, 42);
  qgemm({0, 3, 2}, nullptr, nullptr, c.data());
  EXPECT_EQ(c[0], 42);  // m == 0: untouched
  qgemm({2, 0, 3}, nullptr, nullptr, c.data());
  for (std::int32_t v : c) EXPECT_EQ(v, 0);  // k == 0: overwritten with zeros
}

TEST(QuantizeU8, RoundsToNearestEvenAndClamps) {
  ASSERT_EQ(std::fegetround(), FE_TONEAREST);
  const float in[] = {0.5F, 1.5F, 2.5F, -3.0F, 254.49F, 255.5F, 400.0F};
  std::uint8_t out[7];
  quantize_activations_u8(in, 7, 1.0F, out);
  EXPECT_EQ(out[0], 0);    // ties to even
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(out[3], 0);    // clamped below
  EXPECT_EQ(out[4], 254);
  EXPECT_EQ(out[5], 255);  // 255.5 ties to 256, clamped
  EXPECT_EQ(out[6], 255);  // clamped above
}

TEST(QuantizeU8, RoundTripErrorBoundedByHalfStep) {
  Rng rng(3);
  const float amax = 1.7F;
  const float scale = activation_quant_scale(amax);
  const float inv_scale = 1.0F / scale;
  for (int i = 0; i < 2000; ++i) {
    const float v = rng.uniform(0.0F, amax);
    std::uint8_t q = 0;
    quantize_activations_u8(&v, 1, inv_scale, &q);
    const float back = static_cast<float>(q) * scale;
    EXPECT_NEAR(back, v, 0.5F * scale + 1e-6F);
  }
}

// The cascade's bit-determinism contract hinges on the AVX2 lane of
// quantize_activations_u8 matching the scalar rule byte-for-byte. Feed it
// adversarial values (round-to-nearest-even ties, negatives, values far past
// the u8 range) at lengths that cover the 32-wide vector body and every
// ragged-tail size, and compare against the rule computed inline.
TEST(QuantizeU8, VectorLaneMatchesScalarRuleOnAdversarialInputs) {
  ASSERT_EQ(std::fegetround(), FE_TONEAREST);
  std::vector<float> in(300);
  for (std::size_t i = 0; i < in.size(); ++i) {
    switch (i % 6) {
      case 0: in[i] = static_cast<float>(i) + 0.5F; break;   // RNE ties
      case 1: in[i] = -static_cast<float>(i); break;         // clamp below
      case 2: in[i] = 300.0F + static_cast<float>(i); break; // clamp above
      case 3: in[i] = 1e30F; break;   // overflows the s32 convert
      case 4: in[i] = -1e30F; break;
      default: in[i] = 0.137F * static_cast<float>(i); break;
    }
  }
  for (const std::size_t n :
       {std::size_t{300}, std::size_t{64}, std::size_t{37}, std::size_t{33},
        std::size_t{32}, std::size_t{31}, std::size_t{1}, std::size_t{0}}) {
    for (const float inv_scale : {1.0F, 0.37F, 254.9F}) {
      std::vector<std::uint8_t> got(n + 1, 0xCD);
      quantize_activations_u8(in.data(), n, inv_scale, got.data());
      for (std::size_t i = 0; i < n; ++i) {
        const float q = std::nearbyintf(in[i] * inv_scale);
        const float c = std::clamp(q, 0.0F,
                                   static_cast<float>(kActQuantLevels));
        ASSERT_EQ(got[i], static_cast<std::uint8_t>(c))
            << "n=" << n << " inv=" << inv_scale << " i=" << i;
      }
      EXPECT_EQ(got[n], 0xCD);  // no write past the end
    }
  }
}

TEST(QuantizeS8, PerChannelWeightsBoundedAndTight) {
  Rng rng(11);
  const std::size_t oc = 5, k = 40;
  std::vector<float> w(oc * k);
  for (float& v : w) v = rng.uniform(-2.0F, 2.0F);
  for (std::size_t p = 0; p < k; ++p) w[2 * k + p] = 0.0F;  // zero channel

  std::vector<std::int8_t> q(oc * k, 99);
  const std::vector<float> scales = quantize_weights_s8(w.data(), oc, k,
                                                        q.data());
  ASSERT_EQ(scales.size(), oc);
  EXPECT_EQ(scales[2], 1.0F);
  for (std::size_t c = 0; c < oc; ++c) {
    float max_abs = 0.0F;
    for (std::size_t p = 0; p < k; ++p) {
      const std::int32_t qv = q[c * k + p];
      EXPECT_LE(qv, kQgemmWeightMax);
      EXPECT_GE(qv, -kQgemmWeightMax);
      max_abs = std::max(max_abs, std::abs(w[c * k + p]));
      // Round trip within half a step of the channel grid.
      EXPECT_NEAR(static_cast<float>(qv) * scales[c], w[c * k + p],
                  0.5F * scales[c] + 1e-6F);
    }
    if (max_abs > 0.0F) {
      // The channel max must land exactly on the top level.
      EXPECT_FLOAT_EQ(scales[c] * static_cast<float>(kQgemmWeightMax),
                      max_abs);
    }
  }
}

TEST(Qgemm, TierNameIsKnown) {
  const char* name = to_string(qgemm_tier());
  EXPECT_TRUE(name == std::string("scalar") || name == std::string("avx2") ||
              name == std::string("avx512-vnni"));
}

}  // namespace
}  // namespace cdl
