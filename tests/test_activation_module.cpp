#include <gtest/gtest.h>

#include "cdl/activation_module.h"

namespace cdl {
namespace {

Tensor probs(std::vector<float> v) {
  const std::size_t n = v.size();
  return Tensor(Shape{n}, std::move(v));
}

TEST(ActivationModule, RejectsNegativeDelta) {
  EXPECT_THROW(ActivationModule(-0.1F), std::invalid_argument);
  ActivationModule m(0.5F);
  EXPECT_THROW(m.set_delta(-1.0F), std::invalid_argument);
}

TEST(ActivationModule, EmptyProbabilitiesThrow) {
  const ActivationModule m(0.5F);
  EXPECT_THROW((void)m.evaluate(Tensor{}), std::invalid_argument);
}

TEST(ActivationModule, TerminatesWithExactlyOneConfidentLabel) {
  const ActivationModule m(0.5F);
  const ActivationDecision d = m.evaluate(probs({0.9F, 0.1F, 0.2F}));
  EXPECT_TRUE(d.terminate);
  EXPECT_EQ(d.label, 0U);
  EXPECT_FLOAT_EQ(d.confidence, 0.9F);
}

TEST(ActivationModule, PassesWhenNoLabelConfident) {
  const ActivationModule m(0.5F);
  const ActivationDecision d = m.evaluate(probs({0.4F, 0.3F, 0.3F}));
  EXPECT_FALSE(d.terminate);
  EXPECT_EQ(d.label, 0U);  // argmax still reported
}

TEST(ActivationModule, PassesWhenMultipleLabelsConfident) {
  // The paper's ambiguity rule: two labels above delta -> hard input.
  const ActivationModule m(0.5F);
  const ActivationDecision d = m.evaluate(probs({0.8F, 0.7F, 0.0F}));
  EXPECT_FALSE(d.terminate);
}

TEST(ActivationModule, DeltaZeroAlwaysAmbiguousForMultiClass) {
  // Every class >= 0, so more than one label qualifies and nothing exits.
  const ActivationModule m(0.0F);
  EXPECT_FALSE(m.evaluate(probs({0.9F, 0.05F, 0.05F})).terminate);
}

TEST(ActivationModule, HighDeltaNeverTerminates) {
  const ActivationModule m(1.01F);
  EXPECT_FALSE(m.evaluate(probs({1.0F, 0.0F})).terminate);
}

TEST(ActivationModule, BoundaryDeltaEqualsProbabilityTerminates) {
  const ActivationModule m(0.7F);
  EXPECT_TRUE(m.evaluate(probs({0.7F, 0.1F})).terminate);
}

TEST(ActivationModule, MarginPolicyUsesTopTwoGap) {
  const ActivationModule m(0.3F, ConfidencePolicy::kMargin);
  EXPECT_TRUE(m.evaluate(probs({0.6F, 0.2F, 0.2F})).terminate);   // margin 0.4
  EXPECT_FALSE(m.evaluate(probs({0.45F, 0.35F, 0.2F})).terminate); // margin 0.1
}

TEST(ActivationModule, EntropyPolicyTerminatesOnSharpDistributions) {
  const ActivationModule m(0.5F, ConfidencePolicy::kEntropy);
  EXPECT_TRUE(m.evaluate(probs({0.97F, 0.01F, 0.01F, 0.01F})).terminate);
  EXPECT_FALSE(m.evaluate(probs({0.25F, 0.25F, 0.25F, 0.25F})).terminate);
}

TEST(ActivationModule, LabelIsArgmaxUnderEveryPolicy) {
  for (auto policy : {ConfidencePolicy::kMaxProbability,
                      ConfidencePolicy::kMargin, ConfidencePolicy::kEntropy}) {
    const ActivationModule m(0.5F, policy);
    EXPECT_EQ(m.evaluate(probs({0.1F, 0.2F, 0.65F, 0.05F})).label, 2U);
  }
}

TEST(ActivationModule, DecisionOpsNonZeroForAllPolicies) {
  for (auto policy : {ConfidencePolicy::kMaxProbability,
                      ConfidencePolicy::kMargin, ConfidencePolicy::kEntropy}) {
    const ActivationModule m(0.5F, policy);
    EXPECT_GT(m.decision_ops(10).total_compute(), 0U);
    EXPECT_GT(m.decision_ops(10).mem_reads, 0U);
  }
}

TEST(ActivationModule, PolicyNames) {
  EXPECT_EQ(to_string(ConfidencePolicy::kMaxProbability), "max_probability");
  EXPECT_EQ(to_string(ConfidencePolicy::kMargin), "margin");
  EXPECT_EQ(to_string(ConfidencePolicy::kEntropy), "entropy");
}

class DeltaMonotonicitySweep : public ::testing::TestWithParam<float> {};

TEST_P(DeltaMonotonicitySweep, UnambiguousDistributionTerminatesIffMaxAboveDelta) {
  const float delta = GetParam();
  const ActivationModule m(delta);
  // One dominant class, all others far below any sensible delta.
  const Tensor p = probs({0.65F, 0.05F, 0.05F, 0.05F});
  EXPECT_EQ(m.evaluate(p).terminate, 0.65F >= delta && delta > 0.05F);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaMonotonicitySweep,
                         ::testing::Values(0.2F, 0.4F, 0.6F, 0.66F, 0.8F));

}  // namespace
}  // namespace cdl
