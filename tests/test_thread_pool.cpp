// Tests for the ThreadPool: deterministic static chunking, exactly-once
// coverage, exception propagation, reuse across submits, and the inline
// single-worker path.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.h"

namespace cdl {
namespace {

TEST(ThreadPool, ChunksPartitionTheRangeContiguously) {
  for (std::size_t workers : {1U, 2U, 3U, 4U, 8U}) {
    ThreadPool pool(workers);
    for (std::size_t begin : {0U, 5U}) {
      for (std::size_t total : {0U, 1U, 3U, 7U, 8U, 9U, 100U}) {
        const std::size_t end = begin + total;
        std::size_t cursor = begin;
        for (std::size_t w = 0; w < pool.size(); ++w) {
          const auto [b, e] = pool.chunk(w, begin, end);
          EXPECT_EQ(b, cursor) << "workers=" << workers << " total=" << total
                               << " w=" << w;
          EXPECT_LE(e - b, total / pool.size() + 1);
          cursor = e;
        }
        EXPECT_EQ(cursor, end) << "workers=" << workers << " total=" << total;
      }
    }
  }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnRangeAndSize) {
  ThreadPool a(4);
  ThreadPool b(4);
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(a.chunk(w, 3, 103), b.chunk(w, 3, 103));
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(997);
  pool.parallel_for(0, visits.size(), [&](std::size_t, std::size_t begin,
                                          std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WorkerReceivesItsOwnChunk) {
  ThreadPool pool(3);
  std::vector<std::pair<std::size_t, std::size_t>> seen(pool.size());
  pool.parallel_for(10, 40, [&](std::size_t worker, std::size_t begin,
                                std::size_t end) {
    seen[worker] = {begin, end};
  });
  for (std::size_t w = 0; w < pool.size(); ++w) {
    EXPECT_EQ(seen[w], pool.chunk(w, 10, 40));
  }
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, MoreWorkersThanItemsLeavesTrailingChunksEmpty) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(0, 3, [&](std::size_t, std::size_t begin,
                              std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      sum.fetch_add(static_cast<int>(i) + 1);
    }
  });
  EXPECT_EQ(sum.load(), 6);  // 1 + 2 + 3: each of the 3 items exactly once
}

TEST(ThreadPool, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.parallel_for(0, 10, [&](std::size_t worker, std::size_t begin,
                               std::size_t end) {
    EXPECT_EQ(worker, 0U);
    EXPECT_EQ(begin, 0U);
    EXPECT_EQ(end, 10U);
    executed = std::this_thread::get_id();
  });
  EXPECT_EQ(executed, caller);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t, std::size_t begin, std::size_t) {
                          if (begin == 0) throw std::runtime_error("chunk 0");
                        }),
      std::runtime_error);

  // The pool must accept and complete new jobs after a failed one.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t, std::size_t begin,
                                std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReusableAcrossManySubmits) {
  ThreadPool pool(4);
  std::vector<long> values(256);
  std::iota(values.begin(), values.end(), 1);
  const long expected = std::accumulate(values.begin(), values.end(), 0L);
  for (int round = 0; round < 200; ++round) {
    std::vector<long> partial(pool.size(), 0);
    pool.parallel_for(0, values.size(), [&](std::size_t worker,
                                            std::size_t begin,
                                            std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) partial[worker] += values[i];
    });
    const long total = std::accumulate(partial.begin(), partial.end(), 0L);
    ASSERT_EQ(total, expected) << "round " << round;
  }
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1U);
}

}  // namespace
}  // namespace cdl
