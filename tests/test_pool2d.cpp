#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/pool2d.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::random_tensor;

TEST(Pool2D, RejectsZeroWindow) {
  EXPECT_THROW(Pool2D(0), std::invalid_argument);
}

TEST(Pool2D, OutputShapeDividesExtents) {
  const Pool2D pool(2);
  EXPECT_EQ(pool.output_shape(Shape{6, 24, 24}), (Shape{6, 12, 12}));
  EXPECT_THROW((void)pool.output_shape(Shape{6, 25, 24}), std::invalid_argument);
  EXPECT_THROW((void)pool.output_shape(Shape{24, 24}), std::invalid_argument);
}

TEST(Pool2D, WindowOneIsIdentityForBothModes) {
  Rng rng(3);
  const Tensor x = random_tensor(Shape{2, 3, 3}, rng);
  Pool2D max_pool(1, PoolMode::kMax);
  Pool2D avg_pool(1, PoolMode::kAverage);
  EXPECT_EQ(max_pool.forward(x), x);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(avg_pool.forward(x)[i], x[i], 1e-6F);
  }
}

TEST(Pool2D, MaxPicksWindowMaximum) {
  Tensor x(Shape{1, 2, 4}, std::vector<float>{1, 5, -3, 2,
                                              4, 0, 7, -1});
  Pool2D pool(2, PoolMode::kMax);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2}));
  EXPECT_EQ(y[0], 5.0F);
  EXPECT_EQ(y[1], 7.0F);
}

TEST(Pool2D, AverageComputesWindowMean) {
  Tensor x(Shape{1, 2, 2}, std::vector<float>{1, 2, 3, 6});
  Pool2D pool(2, PoolMode::kAverage);
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 3.0F);
}

TEST(Pool2D, MaxBackwardRoutesGradientToArgmaxOnly) {
  Tensor x(Shape{1, 2, 2}, std::vector<float>{1, 9, 3, 4});
  Pool2D pool(2, PoolMode::kMax);
  (void)pool.forward(x);
  const Tensor g = pool.backward(Tensor(Shape{1, 1, 1}, 2.5F));
  EXPECT_EQ(g[0], 0.0F);
  EXPECT_EQ(g[1], 2.5F);  // position of the max
  EXPECT_EQ(g[2], 0.0F);
  EXPECT_EQ(g[3], 0.0F);
}

TEST(Pool2D, AverageBackwardSpreadsGradientUniformly) {
  Pool2D pool(2, PoolMode::kAverage);
  (void)pool.forward(Tensor(Shape{1, 2, 2}, 1.0F));
  const Tensor g = pool.backward(Tensor(Shape{1, 1, 1}, 4.0F));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 1.0F);
}

TEST(Pool2D, BackwardBeforeForwardThrows) {
  Pool2D pool(2);
  EXPECT_THROW((void)pool.backward(Tensor(Shape{1, 1, 1})), std::logic_error);
}

TEST(Pool2D, ForwardOpsMaxUsesCompares) {
  const Pool2D pool(2, PoolMode::kMax);
  const OpCount ops = pool.forward_ops(Shape{6, 24, 24});
  EXPECT_EQ(ops.compares, 6ULL * 12 * 12 * 3);
  EXPECT_EQ(ops.adds, 0U);
  EXPECT_EQ(ops.macs, 0U);
}

TEST(Pool2D, ForwardOpsAverageUsesAddsAndDivides) {
  const Pool2D pool(2, PoolMode::kAverage);
  const OpCount ops = pool.forward_ops(Shape{6, 24, 24});
  EXPECT_EQ(ops.adds, 6ULL * 12 * 12 * 3);
  EXPECT_EQ(ops.divides, 6ULL * 12 * 12);
  EXPECT_EQ(ops.compares, 0U);
}

class PoolInvariantSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, PoolMode>> {};

TEST_P(PoolInvariantSweep, OutputBoundedByInputRange) {
  const auto [window, mode] = GetParam();
  Rng rng(41 + window);
  Pool2D pool(window, mode);
  const Tensor x = random_tensor(Shape{3, window * 4, window * 4}, rng);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 4, 4}));
  EXPECT_GE(y.max(), x.min());
  EXPECT_LE(y.max(), x.max() + 1e-6F);
  EXPECT_GE(y.min(), x.min() - 1e-6F);
  if (mode == PoolMode::kMax) {
    // Max-pooling never decreases the per-channel maximum.
    EXPECT_NEAR(y.max(), x.max(), 1e-6F);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndModes, PoolInvariantSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(PoolMode::kMax, PoolMode::kAverage)));

TEST(Pool2D, NameReflectsModeAndWindow) {
  EXPECT_EQ(Pool2D(2, PoolMode::kMax).name(), "maxpool2x2");
  EXPECT_EQ(Pool2D(3, PoolMode::kAverage).name(), "avgpool3x3");
}

}  // namespace
}  // namespace cdl
