#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/activations.h"

namespace cdl {
namespace {

TEST(Sigmoid, KnownValues) {
  Sigmoid act;
  const Tensor y =
      act.forward(Tensor(Shape{3}, std::vector<float>{0.0F, 100.0F, -100.0F}));
  EXPECT_FLOAT_EQ(y[0], 0.5F);
  EXPECT_NEAR(y[1], 1.0F, 1e-6F);
  EXPECT_NEAR(y[2], 0.0F, 1e-6F);
}

TEST(Tanh, KnownValues) {
  Tanh act;
  const Tensor y =
      act.forward(Tensor(Shape{2}, std::vector<float>{0.0F, 20.0F}));
  EXPECT_FLOAT_EQ(y[0], 0.0F);
  EXPECT_NEAR(y[1], 1.0F, 1e-6F);
}

TEST(ReLU, ClampsNegatives) {
  ReLU act;
  const Tensor y =
      act.forward(Tensor(Shape{3}, std::vector<float>{-2.0F, 0.0F, 3.0F}));
  EXPECT_EQ(y[0], 0.0F);
  EXPECT_EQ(y[1], 0.0F);
  EXPECT_EQ(y[2], 3.0F);
}

TEST(Activations, OutputShapeIsInputShape) {
  Sigmoid act;
  EXPECT_EQ(act.output_shape(Shape{3, 4, 5}), (Shape{3, 4, 5}));
}

TEST(Activations, BackwardBeforeForwardThrows) {
  Sigmoid act;
  EXPECT_THROW((void)act.backward(Tensor(Shape{2})), std::logic_error);
}

TEST(Activations, BackwardShapeMismatchThrows) {
  ReLU act;
  (void)act.forward(Tensor(Shape{2}));
  EXPECT_THROW((void)act.backward(Tensor(Shape{3})), std::invalid_argument);
}

TEST(Activations, SigmoidDerivativePeaksAtZero) {
  Sigmoid act;
  (void)act.forward(Tensor(Shape{1}, std::vector<float>{0.0F}));
  const Tensor g = act.backward(Tensor(Shape{1}, 1.0F));
  EXPECT_FLOAT_EQ(g[0], 0.25F);  // sigma'(0) = 0.25
}

TEST(Activations, ForwardOpsCountOnePerElement) {
  const Tanh act;
  const OpCount ops = act.forward_ops(Shape{3, 5, 5});
  EXPECT_EQ(ops.activations, 75U);
  EXPECT_EQ(ops.macs, 0U);
}

struct ActCase {
  const char* name;
  float lo;
  float hi;
};

class ActivationRangeSweep : public ::testing::TestWithParam<ActCase> {};

TEST_P(ActivationRangeSweep, OutputStaysInRangeAndDerivativeMatchesNumeric) {
  const ActCase c = GetParam();
  std::unique_ptr<ElementwiseActivation> act;
  if (std::string(c.name) == "sigmoid") act = std::make_unique<Sigmoid>();
  if (std::string(c.name) == "tanh") act = std::make_unique<Tanh>();
  if (std::string(c.name) == "relu") act = std::make_unique<ReLU>();
  ASSERT_NE(act, nullptr);

  Rng rng(77);
  Tensor x(Shape{64});
  for (float& v : x.values()) v = rng.uniform(-3.0F, 3.0F);

  const Tensor y = act->forward(x);
  EXPECT_GE(y.min(), c.lo);
  EXPECT_LE(y.max(), c.hi);

  // Numeric derivative check at every element (away from relu's kink).
  const Tensor g = act->backward(Tensor(Shape{64}, 1.0F));
  const float eps = 1e-3F;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (std::string(c.name) == "relu" && std::abs(x[i]) < 2 * eps) continue;
    Tensor lo_in = x;
    Tensor hi_in = x;
    lo_in[i] -= eps;
    hi_in[i] += eps;
    const float numeric =
        (act->forward(hi_in)[i] - act->forward(lo_in)[i]) / (2 * eps);
    EXPECT_NEAR(g[i], numeric, 5e-3F) << c.name << " at x=" << x[i];
  }
}

INSTANTIATE_TEST_SUITE_P(All, ActivationRangeSweep,
                         ::testing::Values(ActCase{"sigmoid", 0.0F, 1.0F},
                                           ActCase{"tanh", -1.0F, 1.0F},
                                           ActCase{"relu", 0.0F, 3.0F}));

}  // namespace
}  // namespace cdl
