#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/dataset.h"

namespace cdl {
namespace {

Dataset make_dataset(std::size_t n) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    Tensor img(Shape{1, 2, 2}, static_cast<float>(i));
    d.add(std::move(img), i % 3);
  }
  return d;
}

TEST(Dataset, AddAndAccess) {
  Dataset d = make_dataset(5);
  EXPECT_EQ(d.size(), 5U);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.label(4), 1U);
  EXPECT_EQ(d.image(3)[0], 3.0F);
}

TEST(Dataset, RejectsInconsistentShapes) {
  Dataset d;
  d.add(Tensor(Shape{1, 2, 2}), 0);
  EXPECT_THROW(d.add(Tensor(Shape{1, 3, 3}), 0), std::invalid_argument);
}

TEST(Dataset, ImageShapeRequiresData) {
  Dataset d;
  EXPECT_THROW((void)d.image_shape(), std::logic_error);
  d.add(Tensor(Shape{1, 4, 4}), 2);
  EXPECT_EQ(d.image_shape(), (Shape{1, 4, 4}));
}

TEST(Dataset, NumClassesIsMaxLabelPlusOne) {
  EXPECT_EQ(Dataset{}.num_classes(), 0U);
  Dataset d;
  d.add(Tensor(Shape{1}), 7);
  EXPECT_EQ(d.num_classes(), 8U);
}

TEST(Dataset, ClassCounts) {
  const Dataset d = make_dataset(7);  // labels 0,1,2,0,1,2,0
  const auto counts = d.class_counts();
  ASSERT_EQ(counts.size(), 3U);
  EXPECT_EQ(counts[0], 3U);
  EXPECT_EQ(counts[1], 2U);
  EXPECT_EQ(counts[2], 2U);
}

TEST(Dataset, ShufflePreservesPairsAndMultiset) {
  Dataset d = make_dataset(50);
  Rng rng(5);
  d.shuffle(rng);
  EXPECT_EQ(d.size(), 50U);
  std::vector<bool> seen(50, false);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto original = static_cast<std::size_t>(d.image(i)[0]);
    EXPECT_FALSE(seen[original]);
    seen[original] = true;
    // Label must still match the image it was added with.
    EXPECT_EQ(d.label(i), original % 3);
  }
}

TEST(Dataset, ShuffleActuallyPermutes) {
  Dataset d = make_dataset(100);
  Rng rng(9);
  d.shuffle(rng);
  int moved = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (static_cast<std::size_t>(d.image(i)[0]) != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(Dataset, SliceCopiesRange) {
  const Dataset d = make_dataset(10);
  const Dataset s = d.slice(2, 5);
  EXPECT_EQ(s.size(), 3U);
  EXPECT_EQ(s.image(0)[0], 2.0F);
  EXPECT_THROW((void)d.slice(5, 2), std::out_of_range);
  EXPECT_THROW((void)d.slice(0, 11), std::out_of_range);
}

TEST(Dataset, FilterLabelSelectsOneClass) {
  const Dataset d = make_dataset(9);
  const Dataset ones = d.filter_label(1);
  EXPECT_EQ(ones.size(), 3U);
  for (std::size_t i = 0; i < ones.size(); ++i) EXPECT_EQ(ones.label(i), 1U);
}

TEST(Dataset, AppendMovesSamples) {
  Dataset a = make_dataset(3);
  Dataset b = make_dataset(2);
  a.append(std::move(b));
  EXPECT_EQ(a.size(), 5U);
  EXPECT_EQ(a.image(3)[0], 0.0F);
}

}  // namespace
}  // namespace cdl
