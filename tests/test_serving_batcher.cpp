// DynamicBatcher under a ManualClock: every dispatch decision is replayed at
// exact virtual times — batch-size trigger, timeout trigger, deadline expiry
// ordering, wake-time computation, drain — with zero sleep-based waits.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "serve/batcher.h"
#include "serve/clock.h"
#include "serve/request.h"

namespace cdl::serve {
namespace {

Request make_request(std::uint64_t id, std::uint64_t arrival_ns,
                     std::uint64_t deadline_ns = 0) {
  Request r;
  r.id = id;
  r.arrival_ns = arrival_ns;
  r.deadline_ns = deadline_ns;
  return r;
}

std::vector<std::uint64_t> ids(const std::vector<Request>& requests) {
  std::vector<std::uint64_t> out;
  out.reserve(requests.size());
  for (const Request& r : requests) out.push_back(r.id);
  return out;
}

TEST(DynamicBatcher, RejectsBadConfig) {
  ManualClock clock;
  EXPECT_THROW(DynamicBatcher({/*max_batch=*/0, 1000}, &clock),
               std::invalid_argument);
  EXPECT_THROW(DynamicBatcher({4, 1000}, nullptr), std::invalid_argument);
}

TEST(DynamicBatcher, EmptyIsIdle) {
  ManualClock clock(1000);
  DynamicBatcher b({4, 1000}, &clock);
  EXPECT_EQ(b.pending(), 0U);
  EXPECT_FALSE(b.ready());
  EXPECT_EQ(b.next_wake_ns(), Clock::kNever);
  EXPECT_TRUE(b.take_expired().empty());
  EXPECT_TRUE(b.drain().empty());
}

TEST(DynamicBatcher, SizeTriggerDispatchesFullBatchInArrivalOrder) {
  ManualClock clock(1000);
  DynamicBatcher b({4, 1'000'000}, &clock);
  for (std::uint64_t i = 0; i < 3; ++i) {
    b.add(make_request(i, clock.now_ns()));
    EXPECT_FALSE(b.ready()) << "below max_batch with fresh arrivals";
  }
  b.add(make_request(3, clock.now_ns()));
  EXPECT_TRUE(b.ready());  // size trigger: no waiting once full
  EXPECT_EQ(b.next_wake_ns(), Clock::kNever);  // dispatch now, not later
  std::vector<Request> batch = b.take();
  EXPECT_EQ(ids(batch), (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(b.pending(), 0U);
  EXPECT_FALSE(b.ready());
}

TEST(DynamicBatcher, TakeCapsAtMaxBatchLeavingRemainder) {
  ManualClock clock(1000);
  DynamicBatcher b({4, 1'000'000}, &clock);
  for (std::uint64_t i = 0; i < 6; ++i) b.add(make_request(i, clock.now_ns()));
  ASSERT_TRUE(b.ready());
  EXPECT_EQ(ids(b.take()), (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(b.pending(), 2U);
  EXPECT_FALSE(b.ready());  // remainder is fresh: waits for size or timeout
}

TEST(DynamicBatcher, TimeoutTriggerFiresAtExactVirtualTime) {
  ManualClock clock(1000);
  DynamicBatcher b({64, /*max_delay_ns=*/500}, &clock);
  b.add(make_request(1, clock.now_ns()));
  EXPECT_FALSE(b.ready());
  EXPECT_EQ(b.next_wake_ns(), 1500U);  // oldest arrival + max_delay
  clock.advance(499);
  EXPECT_FALSE(b.ready()) << "one tick early must not dispatch";
  clock.advance(1);
  EXPECT_TRUE(b.ready()) << "deadline tick dispatches a partial batch";
  EXPECT_EQ(ids(b.take()), (std::vector<std::uint64_t>{1}));
}

TEST(DynamicBatcher, TimeoutTracksOldestPendingRequest) {
  ManualClock clock(1000);
  DynamicBatcher b({64, 500}, &clock);
  b.add(make_request(1, clock.now_ns()));
  clock.advance(300);
  b.add(make_request(2, clock.now_ns()));  // newer arrival must not reset
  EXPECT_EQ(b.next_wake_ns(), 1500U);
  clock.advance(200);
  ASSERT_TRUE(b.ready());
  EXPECT_EQ(ids(b.take()), (std::vector<std::uint64_t>{1, 2}));
}

TEST(DynamicBatcher, NextWakeIncludesEarliestDeadline) {
  ManualClock clock(1000);
  DynamicBatcher b({64, 500}, &clock);
  // Deadline (1200) earlier than the timeout trigger (1500): the engine must
  // wake in time to expire the request, not just to dispatch it.
  b.add(make_request(1, clock.now_ns(), /*deadline_ns=*/1200));
  EXPECT_EQ(b.next_wake_ns(), 1200U);
  // A later deadline does not shadow the timeout trigger.
  b.add(make_request(2, clock.now_ns(), /*deadline_ns=*/9000));
  EXPECT_EQ(b.next_wake_ns(), 1200U);
}

TEST(DynamicBatcher, ExpiredRequestsLeaveInArrivalOrder) {
  ManualClock clock(1000);
  DynamicBatcher b({64, 10'000}, &clock);
  b.add(make_request(1, clock.now_ns(), /*deadline_ns=*/1200));
  b.add(make_request(2, clock.now_ns()));  // no deadline: never expires
  b.add(make_request(3, clock.now_ns(), /*deadline_ns=*/1100));
  b.add(make_request(4, clock.now_ns(), /*deadline_ns=*/5000));
  clock.set_ns(1300);  // past 1 and 3, before 4
  EXPECT_EQ(ids(b.take_expired()), (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(b.pending(), 2U);
  EXPECT_TRUE(b.take_expired().empty()) << "expiry must be one-shot";
  clock.set_ns(5000);
  EXPECT_EQ(ids(b.take_expired()), (std::vector<std::uint64_t>{4}));
  EXPECT_EQ(b.pending(), 1U);  // the deadline-free request survives
}

TEST(DynamicBatcher, RequestDiesExactlyAtItsDeadlineInstant) {
  ManualClock clock(1000);
  DynamicBatcher b({64, 10'000}, &clock);
  b.add(make_request(1, clock.now_ns(), /*deadline_ns=*/1200));
  clock.set_ns(1199);
  EXPECT_TRUE(b.take_expired().empty()) << "one tick early must not expire";
  clock.advance(1);  // deadline instant: waking exactly here finds the corpse
  EXPECT_EQ(ids(b.take_expired()), (std::vector<std::uint64_t>{1}));
}

TEST(DynamicBatcher, ExpiryDoesNotResetTimeoutTrigger) {
  ManualClock clock(1000);
  DynamicBatcher b({64, 500}, &clock);
  b.add(make_request(1, clock.now_ns(), /*deadline_ns=*/1100));
  clock.advance(300);
  b.add(make_request(2, clock.now_ns()));  // arrival 1300
  clock.advance(200);                      // now 1500: 1 expired; 2 fresh
  EXPECT_EQ(ids(b.take_expired()), (std::vector<std::uint64_t>{1}));
  // Oldest surviving request arrived at 1300: timeout fires at 1800.
  EXPECT_FALSE(b.ready());
  EXPECT_EQ(b.next_wake_ns(), 1800U);
  clock.set_ns(1800);
  EXPECT_TRUE(b.ready());
}

TEST(DynamicBatcher, DrainReturnsEverythingInArrivalOrder) {
  ManualClock clock(1000);
  DynamicBatcher b({4, 1'000'000}, &clock);
  for (std::uint64_t i = 0; i < 7; ++i) b.add(make_request(i, clock.now_ns()));
  EXPECT_EQ(ids(b.drain()),
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(b.pending(), 0U);
  EXPECT_EQ(b.next_wake_ns(), Clock::kNever);
}

TEST(DynamicBatcher, MaxBatchOneDispatchesImmediately) {
  ManualClock clock(1000);
  DynamicBatcher b({1, 1'000'000}, &clock);
  b.add(make_request(42, clock.now_ns()));
  EXPECT_TRUE(b.ready());
  EXPECT_EQ(ids(b.take()), (std::vector<std::uint64_t>{42}));
}

}  // namespace
}  // namespace cdl::serve
