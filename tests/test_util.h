// Shared helpers for the test suite: deterministic random tensors, the small
// reference networks that many suites build, tensor comparison, and an RAII
// temp directory. Keep additions here dependency-light (core + nn + cdl only)
// so every test target can include it.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "nn/pool2d.h"

namespace cdl::test {

/// Creates <system tmp>/<name> and removes it (recursively) on destruction.
/// Use a per-binary unique name: ctest runs test binaries in parallel.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;  // best-effort cleanup; never throw from a dtor
    std::filesystem::remove_all(dir_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

/// Tensor with iid uniform values in [-1, 1), the conventional test input.
inline Tensor random_tensor(const Shape& shape, Rng& rng) {
  Tensor t(shape);
  for (float& v : t.values()) v = rng.uniform(-1.0F, 1.0F);
  return t;
}

/// Rank-1 variant (weights/signal vectors).
inline Tensor random_tensor(std::size_t n, Rng& rng) {
  return random_tensor(Shape{n}, rng);
}

/// Image-like tensor with values in [0, 1), seeded independently so call
/// sites can vary inputs without threading an Rng through.
inline Tensor random_image(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor x(shape);
  for (float& v : x.values()) v = rng.uniform(0.0F, 1.0F);
  return x;
}

/// Element-wise EXPECT_NEAR over two same-shaped tensors.
inline void expect_tensor_near(const Tensor& a, const Tensor& b, float tol) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], tol) << "at flat index " << i;
  }
}

/// Smallest serializable MLP: Dense(4,3) -> Sigmoid -> Dense(3,2). Weights
/// are left uninitialised; call init(rng) when values matter.
inline Network two_layer_net() {
  Network net;
  net.emplace<Dense>(4, 3);
  net.emplace<Sigmoid>();
  net.emplace<Dense>(3, 2);
  return net;
}

/// Small dense CDLN on rank-1 inputs: Dense(4,6) -> Sigmoid -> Dense(6,3)
/// with one stage classifier after the hidden activation.
inline ConditionalNetwork small_cdln(Rng& rng, float delta = 0.5F) {
  Network base;
  base.emplace<Dense>(4, 6);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(6, 3);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{4});
  net.attach_classifier(2, LcTrainingRule::kLms, rng);
  net.set_delta(delta);
  return net;
}

/// Small LeNet-style network on 1x12x12 inputs: padded conv, pool, valid
/// conv, dense head. Exercises both conv scratch buffers and the flattening
/// dense path.
inline Network conv_net(ConvAlgo algo, Rng& rng) {
  Network net;
  net.emplace<Conv2D>(1, 4, 3, algo, ConvGeometry{1, 1});
  net.emplace<ReLU>();
  net.emplace<Pool2D>(2);
  net.emplace<Conv2D>(4, 6, 3, algo);
  net.emplace<Tanh>();
  net.emplace<Dense>(6 * 4 * 4, 5);
  net.init(rng);
  return net;
}

/// conv_net wrapped as a two-stage CDLN (classifiers after the pool and the
/// second activation) at delta 0.4.
inline ConditionalNetwork conv_cdln(ConvAlgo algo, Rng& rng) {
  ConditionalNetwork net(conv_net(algo, rng), Shape{1, 12, 12});
  net.attach_classifier(3, LcTrainingRule::kLms, rng);
  net.attach_classifier(5, LcTrainingRule::kLms, rng);
  net.set_delta(0.4F);
  return net;
}

}  // namespace cdl::test
