// Tests for the tracing subsystem: ring semantics, the process-wide Tracer
// (a singleton -- every test starts from set_enabled(false) + clear()),
// span/instant capture, and the exporters.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace cdl::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TraceEvent make_event(const char* name, std::uint64_t start,
                      std::int32_t id = -1) {
  TraceEvent e;
  e.name = name;
  e.start_ns = start;
  e.dur_ns = 1;
  e.id = id;
  return e;
}

TEST_F(TraceTest, NowNsIsMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

TEST_F(TraceTest, RingStartsEmpty) {
  const TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8U);
  EXPECT_EQ(ring.size(), 0U);
  EXPECT_EQ(ring.recorded(), 0U);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST_F(TraceTest, RingHoldsUpToCapacity) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 3; ++i) ring.push(make_event("e", i));
  EXPECT_EQ(ring.size(), 3U);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3U);
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(events[i].start_ns, i);
}

TEST_F(TraceTest, RingOverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(make_event("e", i));
  EXPECT_EQ(ring.size(), 4U);
  EXPECT_EQ(ring.recorded(), 10U);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4U);
  // Oldest-first: 6, 7, 8, 9 survive.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].start_ns, 6U + i);
  }
}

TEST_F(TraceTest, RingClearForgetsEventsButKeepsCapacity) {
  TraceRing ring(4);
  ring.push(make_event("e", 1));
  ring.clear();
  EXPECT_EQ(ring.size(), 0U);
  EXPECT_EQ(ring.capacity(), 4U);
}

TEST_F(TraceTest, ZeroCapacityClampedToOne) {
  TraceRing ring(0);
  EXPECT_EQ(ring.capacity(), 1U);
  ring.push(make_event("e", 1));
  EXPECT_EQ(ring.size(), 1U);
}

TEST_F(TraceTest, SpanNotRecordedWhileDisabled) {
  {
    CDL_TRACE_SPAN(span, "disabled_span", 1);
  }
  CDL_TRACE_INSTANT("disabled_instant", 2);
  EXPECT_TRUE(Tracer::instance().collect().empty());
}

TEST_F(TraceTest, SpanRecordedWhileEnabled) {
  Tracer::instance().set_enabled(true);
  {
    CDL_TRACE_SPAN(span, "my_span", 7);
  }
  Tracer::instance().set_enabled(false);
  const auto events = Tracer::instance().collect();
#ifdef CDL_TRACE_DISABLED
  // -DCDL_TRACE=OFF compiles the macro out; nothing may be recorded even
  // with the tracer enabled.
  EXPECT_TRUE(events.empty());
#else
  ASSERT_EQ(events.size(), 1U);
  EXPECT_STREQ(events[0].event.name, "my_span");
  EXPECT_EQ(events[0].event.id, 7);
  EXPECT_EQ(events[0].event.kind, EventKind::kSpan);
#endif
}

TEST_F(TraceTest, SpanEnabledCheckHappensAtConstruction) {
  // A span opened while disabled must not record even if tracing turns on
  // before it closes (the start timestamp was never taken).
  {
    TraceSpan span("late_enable", 1);
    Tracer::instance().set_enabled(true);
  }
  Tracer::instance().set_enabled(false);
  EXPECT_TRUE(Tracer::instance().collect().empty());
}

TEST_F(TraceTest, SetIdUpdatesPayload) {
  Tracer::instance().set_enabled(true);
  {
    TraceSpan span("span_with_late_id", -1);
    span.set_id(42);
  }
  Tracer::instance().set_enabled(false);
  const auto events = Tracer::instance().collect();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].event.id, 42);
}

TEST_F(TraceTest, InstantRecordedWhileEnabled) {
  Tracer::instance().set_enabled(true);
  trace_instant("tick", 3);
  Tracer::instance().set_enabled(false);
  const auto events = Tracer::instance().collect();
  ASSERT_EQ(events.size(), 1U);
  EXPECT_EQ(events[0].event.kind, EventKind::kInstant);
  EXPECT_EQ(events[0].event.dur_ns, 0U);
}

TEST_F(TraceTest, CollectSortsByStartTime) {
  Tracer& tracer = Tracer::instance();
  tracer.record(make_event("b", 20));
  tracer.record(make_event("a", 10));
  tracer.record(make_event("c", 30));
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 3U);
  EXPECT_STREQ(events[0].event.name, "a");
  EXPECT_STREQ(events[1].event.name, "b");
  EXPECT_STREQ(events[2].event.name, "c");
}

TEST_F(TraceTest, CollectSeesEventsFromManyThreads) {
  Tracer& tracer = Tracer::instance();
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      tracer.set_thread_name("test-worker-" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        CDL_TRACE_SPAN(span, "worker_span", t);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  tracer.set_enabled(false);
#ifdef CDL_TRACE_DISABLED
  EXPECT_TRUE(tracer.collect().empty());  // spans compiled out
#else
  EXPECT_EQ(tracer.collect().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
#endif
}

TEST_F(TraceTest, DroppedCountsRingOverwrites) {
  Tracer& tracer = Tracer::instance();
  const std::size_t old_capacity = tracer.ring_capacity();
  tracer.set_ring_capacity(8);
  // A fresh thread picks up the small capacity (the main thread's ring was
  // already allocated at the old one).
  std::thread worker([&tracer] {
    for (std::uint64_t i = 0; i < 20; ++i) tracer.record(make_event("x", i));
  });
  worker.join();
  EXPECT_EQ(tracer.dropped(), 12U);
  tracer.set_ring_capacity(old_capacity);
}

TEST_F(TraceTest, ChromeTraceIsWellFormed) {
  Tracer& tracer = Tracer::instance();
  tracer.set_enabled(true);
  tracer.set_thread_name("main-test-thread");
  {
    CDL_TRACE_SPAN(span, "stage", 2);
  }
  trace_instant("exit", 1);
  tracer.set_enabled(false);

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
#ifndef CDL_TRACE_DISABLED
  // The macro-recorded span only exists when tracing is compiled in; the
  // direct trace_instant() call below records either way.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);   // complete span
  EXPECT_NE(json.find("\"args\":{\"id\":2}"), std::string::npos);
#endif
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);   // instant
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);   // thread name
  EXPECT_NE(json.find("main-test-thread"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, CsvExportHasHeaderAndRows) {
  Tracer& tracer = Tracer::instance();
  tracer.record(make_event("alpha", 5, 1));
  std::ostringstream os;
  tracer.write_csv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("thread,tid,kind,name,id,start_ns,dur_ns\n", 0), 0U);
  EXPECT_NE(csv.find("alpha"), std::string::npos);
}

TEST_F(TraceTest, SummaryAggregatesByNameAndId) {
  Tracer& tracer = Tracer::instance();
  tracer.record(make_event("stage", 1, 0));
  tracer.record(make_event("stage", 2, 0));
  tracer.record(make_event("stage", 3, 1));
  const std::string summary = tracer.summary();
  EXPECT_NE(summary.find("stage#0"), std::string::npos);
  EXPECT_NE(summary.find("stage#1"), std::string::npos);
  EXPECT_NE(summary.find("2 spans"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEverything) {
  Tracer& tracer = Tracer::instance();
  tracer.record(make_event("x", 1));
  tracer.clear();
  EXPECT_TRUE(tracer.collect().empty());
  EXPECT_EQ(tracer.dropped(), 0U);
}

}  // namespace
}  // namespace cdl::obs
