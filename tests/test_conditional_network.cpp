#include <gtest/gtest.h>

#include <filesystem>

#include "cdl/architectures.h"
#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::small_cdln;

TEST(ConditionalNetwork, RequiresRankOneOutput) {
  Network base;
  base.emplace<Sigmoid>();
  EXPECT_THROW(ConditionalNetwork(std::move(base), Shape{1, 4, 4}),
               std::invalid_argument);
}

TEST(ConditionalNetwork, EmptyBaselineRejected) {
  EXPECT_THROW(ConditionalNetwork(Network{}, Shape{4}), std::invalid_argument);
}

TEST(ConditionalNetwork, AttachValidatesPrefix) {
  Rng rng(1);
  ConditionalNetwork net = small_cdln(rng);
  EXPECT_THROW((void)net.attach_classifier(0, LcTrainingRule::kLms, rng),
               std::invalid_argument);
  EXPECT_THROW((void)net.attach_classifier(3, LcTrainingRule::kLms, rng),
               std::invalid_argument);  // == baseline size
  EXPECT_THROW((void)net.attach_classifier(2, LcTrainingRule::kLms, rng),
               std::invalid_argument);  // duplicate
}

TEST(ConditionalNetwork, StagesKeptSortedByPrefix) {
  Rng rng(2);
  Network base;
  base.emplace<Dense>(4, 6);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(6, 5);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(5, 3);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{4});
  net.attach_classifier(4, LcTrainingRule::kLms, rng);
  net.attach_classifier(2, LcTrainingRule::kLms, rng);
  EXPECT_EQ(net.num_stages(), 2U);
  EXPECT_EQ(net.stage_prefix(0), 2U);
  EXPECT_EQ(net.stage_prefix(1), 4U);
  EXPECT_EQ(net.stage_name(0), "O1");
  EXPECT_EQ(net.stage_name(1), "O2");
  EXPECT_EQ(net.stage_name(2), "FC");
}

TEST(ConditionalNetwork, ClassifierFeatureSizeMatchesAttachPoint) {
  Rng rng(3);
  ConditionalNetwork net = small_cdln(rng);
  EXPECT_EQ(net.classifier(0).in_features(), 6U);
  EXPECT_EQ(net.classifier(0).num_classes(), 3U);
}

TEST(ConditionalNetwork, DetachRemovesStage) {
  Rng rng(4);
  ConditionalNetwork net = small_cdln(rng);
  net.detach_classifier(0);
  EXPECT_EQ(net.num_stages(), 0U);
  EXPECT_THROW(net.detach_classifier(0), std::out_of_range);
}

TEST(ConditionalNetwork, ClassifyValidatesInputShape) {
  Rng rng(5);
  ConditionalNetwork net = small_cdln(rng);
  EXPECT_THROW((void)net.classify(Tensor(Shape{5})), std::invalid_argument);
}

TEST(ConditionalNetwork, ImpossibleDeltaAlwaysReachesFc) {
  Rng rng(6);
  ConditionalNetwork net = small_cdln(rng, /*delta=*/2.0F);
  const Tensor x(Shape{4}, 0.5F);
  const ClassificationResult r = net.classify(x);
  EXPECT_EQ(r.exit_stage, net.num_stages());
  // Conditional inference that runs everything must agree with the baseline.
  EXPECT_EQ(r.label, net.classify_baseline(x).label);
}

TEST(ConditionalNetwork, ConfidentStageTerminatesEarly) {
  Rng rng(7);
  ConditionalNetwork net = small_cdln(rng, 0.4F);
  // Force the linear classifier to be supremely confident in class 1.
  net.classifier(0).parameters()[0]->zero();
  net.classifier(0).parameters()[1]->zero();
  (*net.classifier(0).parameters()[1])[1] = 1.0F;
  const ClassificationResult r = net.classify(Tensor(Shape{4}, 0.2F));
  EXPECT_TRUE(r.exit_stage == 0);
  EXPECT_EQ(r.label, 1U);
  EXPECT_GE(r.confidence, 0.4F);
}

TEST(ConditionalNetwork, EarlyExitUsesFewerOpsThanFullPath) {
  Rng rng(8);
  ConditionalNetwork net = small_cdln(rng, 0.4F);
  net.classifier(0).parameters()[0]->zero();
  net.classifier(0).parameters()[1]->zero();
  (*net.classifier(0).parameters()[1])[0] = 1.0F;
  const auto early = net.classify(Tensor(Shape{4}, 0.1F));
  net.set_delta(2.0F);
  const auto full = net.classify(Tensor(Shape{4}, 0.1F));
  EXPECT_LT(early.ops.total_compute(), full.ops.total_compute());
}

TEST(ConditionalNetwork, OpsAccountingMatchesExitTable) {
  Rng rng(9);
  ConditionalNetwork net = small_cdln(rng, 2.0F);
  const auto full = net.classify(Tensor(Shape{4}, 0.3F));
  EXPECT_EQ(full.ops, net.exit_ops(net.num_stages()));
  EXPECT_EQ(full.ops, net.worst_case_ops());

  net.set_delta(0.01F);
  net.classifier(0).parameters()[0]->zero();
  net.classifier(0).parameters()[1]->zero();
  (*net.classifier(0).parameters()[1])[2] = 0.9F;
  const auto early = net.classify(Tensor(Shape{4}, 0.3F));
  ASSERT_EQ(early.exit_stage, 0U);
  EXPECT_EQ(early.ops, net.exit_ops(0));
}

TEST(ConditionalNetwork, WorstCaseExceedsBaselineByClassifierOverhead) {
  Rng rng(10);
  ConditionalNetwork net = small_cdln(rng);
  EXPECT_GT(net.worst_case_ops().total_compute(),
            net.baseline_forward_ops().total_compute());
}

TEST(ConditionalNetwork, ExitOpsMonotonicallyIncreaseWithStage) {
  Rng rng(11);
  const CdlArchitecture arch = mnist_3c();
  Network base = arch.make_baseline();
  base.init(rng);
  ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.candidate_stages) {
    net.attach_classifier(prefix, LcTrainingRule::kLms, rng);
  }
  for (std::size_t s = 0; s + 1 <= net.num_stages(); ++s) {
    EXPECT_LT(net.exit_ops(s).total_compute(),
              net.exit_ops(s + 1).total_compute());
  }
  EXPECT_THROW((void)net.exit_ops(net.num_stages() + 1), std::out_of_range);
}

TEST(ConditionalNetwork, StageFeaturesMatchManualPrefixForward) {
  Rng rng(12);
  ConditionalNetwork net = small_cdln(rng);
  const Tensor x(Shape{4}, 0.7F);
  const Tensor feats = net.stage_features(x, 0);
  const Tensor manual = net.baseline().forward_range(x, 0, 2);
  EXPECT_EQ(feats, manual);
}

TEST(ConditionalNetwork, ProbabilitiesReturnedWithResult) {
  Rng rng(13);
  ConditionalNetwork net = small_cdln(rng, 2.0F);
  const auto r = net.classify(Tensor(Shape{4}, 0.2F));
  ASSERT_EQ(r.probabilities.numel(), 3U);
  float total = 0.0F;
  for (std::size_t i = 0; i < 3; ++i) total += r.probabilities[i];
  EXPECT_NEAR(total, 1.0F, 1e-5F);  // final stage emits softmax
}

TEST(ConditionalNetwork, SaveLoadRoundTripsBaselineAndClassifiers) {
  Rng rng(14);
  ConditionalNetwork a = small_cdln(rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cdl_cdln_test.cdlw").string();
  a.save(path);

  Rng rng2(99);  // different init; load must overwrite it
  ConditionalNetwork b = small_cdln(rng2);
  b.load(path);
  const Tensor x(Shape{4}, 0.4F);
  EXPECT_EQ(a.classify(x).label, b.classify(x).label);
  EXPECT_EQ(a.classifier(0).scores(Tensor(Shape{6}, 0.5F)),
            b.classifier(0).scores(Tensor(Shape{6}, 0.5F)));
  std::filesystem::remove(path);
}

TEST(ConditionalNetwork, StageDeltaOverridesGlobal) {
  Rng rng(16);
  ConditionalNetwork net = small_cdln(rng, 0.5F);
  EXPECT_FLOAT_EQ(net.stage_delta(0), 0.5F);  // inherits global
  net.set_stage_delta(0, 0.9F);
  EXPECT_FLOAT_EQ(net.stage_delta(0), 0.9F);
  EXPECT_FLOAT_EQ(net.activation_module().delta(), 0.5F);  // global untouched
  EXPECT_THROW(net.set_stage_delta(1, 0.5F), std::out_of_range);
  EXPECT_THROW(net.set_stage_delta(0, -0.1F), std::invalid_argument);
}

TEST(ConditionalNetwork, SetDeltaClearsStageOverrides) {
  Rng rng(17);
  ConditionalNetwork net = small_cdln(rng, 0.5F);
  net.set_stage_delta(0, 0.9F);
  net.set_delta(0.3F);
  EXPECT_FLOAT_EQ(net.stage_delta(0), 0.3F);
}

TEST(ConditionalNetwork, StageDeltaChangesExitBehaviour) {
  Rng rng(18);
  ConditionalNetwork net = small_cdln(rng, 0.4F);
  // Rig the stage classifier to emit confidence exactly 0.6 for class 1.
  net.classifier(0).parameters()[0]->zero();
  net.classifier(0).parameters()[1]->zero();
  (*net.classifier(0).parameters()[1])[1] = 0.6F;
  const Tensor x(Shape{4}, 0.5F);
  EXPECT_EQ(net.classify(x).exit_stage, 0U);  // 0.6 >= global 0.4
  net.set_stage_delta(0, 0.7F);
  EXPECT_EQ(net.classify(x).exit_stage, net.num_stages());  // 0.6 < 0.7
}

TEST(ConditionalNetwork, SetPolicyPreservesDelta) {
  Rng rng(15);
  ConditionalNetwork net = small_cdln(rng, 0.66F);
  net.set_policy(ConfidencePolicy::kMargin);
  EXPECT_EQ(net.activation_module().policy(), ConfidencePolicy::kMargin);
  EXPECT_FLOAT_EQ(net.activation_module().delta(), 0.66F);
}

}  // namespace
}  // namespace cdl
