#include <gtest/gtest.h>

#include <sstream>

#include "core/rng.h"
#include "nn/network.h"
#include "nn/serialize.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::two_layer_net;

TEST(Serialize, StreamRoundTripIsBitExact) {
  Network a = two_layer_net();
  Rng rng(7);
  a.init(rng);

  std::stringstream buf;
  save_parameters(buf, a.parameters());

  Network b = two_layer_net();
  load_parameters(buf, b.parameters());

  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(*pa[i], *pb[i]);
}

TEST(Serialize, FileRoundTrip) {
  const test::TempDir tmp("cdl_serialize_test");
  const std::string path = tmp.path("net.cdlw");
  Network a = two_layer_net();
  Rng rng(11);
  a.init(rng);
  save_network(path, a);

  Network b = two_layer_net();
  load_network(path, b);
  EXPECT_EQ(*a.parameters()[0], *b.parameters()[0]);
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buf("not a cdlw file at all");
  Network net = two_layer_net();
  EXPECT_THROW(load_parameters(buf, net.parameters()), std::runtime_error);
}

TEST(Serialize, TensorCountMismatchRejected) {
  Network a = two_layer_net();
  std::stringstream buf;
  save_parameters(buf, a.parameters());

  Network b;
  b.emplace<Dense>(4, 3);
  EXPECT_THROW(load_parameters(buf, b.parameters()), std::runtime_error);
}

TEST(Serialize, ShapeMismatchRejected) {
  Network a = two_layer_net();
  std::stringstream buf;
  save_parameters(buf, a.parameters());

  Network b;
  b.emplace<Dense>(4, 3);
  b.emplace<Dense>(3, 3);  // wrong second layer
  EXPECT_THROW(load_parameters(buf, b.parameters()), std::runtime_error);
}

TEST(Serialize, TruncatedStreamRejected) {
  Network a = two_layer_net();
  std::stringstream buf;
  save_parameters(buf, a.parameters());
  const std::string full = buf.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  Network b = two_layer_net();
  EXPECT_THROW(load_parameters(truncated, b.parameters()), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  Network net = two_layer_net();
  EXPECT_THROW(load_network("/nonexistent/path/x.cdlw", net),
               std::runtime_error);
  EXPECT_THROW(save_network("/nonexistent/path/x.cdlw", net),
               std::runtime_error);
}

TEST(Serialize, EmptyParameterListRoundTrips) {
  std::stringstream buf;
  save_parameters(buf, {});
  EXPECT_NO_THROW(load_parameters(buf, {}));
}

}  // namespace
}  // namespace cdl
