#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/loss.h"
#include "nn/softmax.h"

namespace cdl {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogN) {
  SoftmaxCrossEntropyLoss loss;
  EXPECT_NEAR(loss.value(Tensor(Shape{10}), 3), std::log(10.0F), 1e-5F);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropyLoss loss;
  Tensor logits(Shape{3}, std::vector<float>{20.0F, 0.0F, 0.0F});
  EXPECT_NEAR(loss.value(logits, 0), 0.0F, 1e-4F);
}

TEST(SoftmaxCrossEntropy, ConfidentWrongIsLargeButFinite) {
  SoftmaxCrossEntropyLoss loss;
  Tensor logits(Shape{3}, std::vector<float>{100.0F, 0.0F, 0.0F});
  const float v = loss.value(logits, 1);
  EXPECT_GT(v, 10.0F);
  EXPECT_TRUE(std::isfinite(v));
}

TEST(SoftmaxCrossEntropy, GradIsSoftmaxMinusOneHot) {
  SoftmaxCrossEntropyLoss loss;
  Tensor logits(Shape{3}, std::vector<float>{1.0F, 2.0F, 0.5F});
  const Tensor p = softmax(logits);
  const Tensor g = loss.grad(logits, 1);
  EXPECT_NEAR(g[0], p[0], 1e-6F);
  EXPECT_NEAR(g[1], p[1] - 1.0F, 1e-6F);
  EXPECT_NEAR(g[2], p[2], 1e-6F);
}

TEST(SoftmaxCrossEntropy, GradSumsToZero) {
  SoftmaxCrossEntropyLoss loss;
  Rng rng(3);
  Tensor logits(Shape{10});
  for (float& v : logits.values()) v = rng.uniform(-3.0F, 3.0F);
  EXPECT_NEAR(loss.grad(logits, 7).sum(), 0.0F, 1e-5F);
}

TEST(MseLoss, PerfectOneHotIsZero) {
  MseLoss loss;
  Tensor scores(Shape{4}, std::vector<float>{0.0F, 1.0F, 0.0F, 0.0F});
  EXPECT_FLOAT_EQ(loss.value(scores, 1), 0.0F);
}

TEST(MseLoss, ValueIsMeanSquaredError) {
  MseLoss loss;
  Tensor scores(Shape{2}, std::vector<float>{0.5F, 0.5F});
  // Target class 0: errors are (0.5-1)^2 + (0.5-0)^2 = 0.5; mean = 0.25.
  EXPECT_FLOAT_EQ(loss.value(scores, 0), 0.25F);
}

TEST(MseLoss, GradPointsTowardTarget) {
  MseLoss loss;
  Tensor scores(Shape{3});
  const Tensor g = loss.grad(scores, 2);
  EXPECT_EQ(g[0], 0.0F);
  EXPECT_EQ(g[1], 0.0F);
  EXPECT_LT(g[2], 0.0F);  // moving down the gradient raises score 2
}

class LossContractSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LossContractSweep, BothLossesNonNegativeAndRejectBadTargets) {
  const std::size_t n = GetParam();
  Rng rng(50 + n);
  Tensor scores(Shape{n});
  for (float& v : scores.values()) v = rng.uniform(-2.0F, 2.0F);

  SoftmaxCrossEntropyLoss xent;
  MseLoss mse;
  for (std::size_t t = 0; t < n; ++t) {
    EXPECT_GE(xent.value(scores, t), 0.0F);
    EXPECT_GE(mse.value(scores, t), 0.0F);
  }
  EXPECT_THROW((void)xent.value(scores, n), std::invalid_argument);
  EXPECT_THROW((void)mse.value(scores, n), std::invalid_argument);
  EXPECT_THROW((void)xent.grad(scores, n), std::invalid_argument);
  EXPECT_THROW((void)mse.grad(scores, n), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LossContractSweep, ::testing::Values(2, 5, 10));

TEST(Loss, Rank2ScoresRejected) {
  SoftmaxCrossEntropyLoss loss;
  EXPECT_THROW((void)loss.value(Tensor(Shape{2, 5}), 1), std::invalid_argument);
}

}  // namespace
}  // namespace cdl
