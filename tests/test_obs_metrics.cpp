// Tests for the observability metric types: fixed-bin histograms and the
// exact percentile helper.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.h"
#include "obs/metrics.h"

namespace cdl::obs {
namespace {

TEST(Histogram, RejectsBadLayout) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsCoverTheRangeUniformly) {
  const Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.num_bins(), 4U);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.75);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
}

TEST(Histogram, RecordsIntoCorrectBins) {
  Histogram h(0.0, 1.0, 4);
  h.record(0.1);   // bin 0
  h.record(0.3);   // bin 1
  h.record(0.55);  // bin 2
  h.record(0.9);   // bin 3
  EXPECT_EQ(h.bins(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(h.count(), 4U);
}

TEST(Histogram, UpperEdgeLandsInLastBin) {
  Histogram h(0.0, 1.0, 4);
  h.record(1.0);  // == hi: meaningful (confidence 1.0), not overflow
  EXPECT_EQ(h.bins().back(), 1U);
  EXPECT_EQ(h.overflow(), 0U);
}

TEST(Histogram, UnderflowAndOverflowCounted) {
  Histogram h(0.0, 1.0, 4);
  h.record(-0.5);
  h.record(1.5);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
  EXPECT_EQ(h.count(), 2U);  // both still count as recorded values
}

TEST(Histogram, NanExcludedFromStatistics) {
  Histogram h(0.0, 1.0, 4);
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(0.5);
  EXPECT_EQ(h.nan_count(), 1U);
  EXPECT_EQ(h.count(), 1U);
  EXPECT_DOUBLE_EQ(h.mean(), 0.5);
}

TEST(Histogram, MeanIsExact) {
  Histogram h(0.0, 10.0, 5);
  h.record(1.0);
  h.record(2.0);
  h.record(6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 2).mean(), 0.0);  // empty -> 0
}

TEST(Histogram, WeightedRecord) {
  Histogram h(0.0, 1.0, 2);
  h.record(0.25, 3);
  EXPECT_EQ(h.count(), 3U);
  EXPECT_EQ(h.bins()[0], 3U);
  EXPECT_DOUBLE_EQ(h.mean(), 0.25);
}

TEST(Histogram, QuantileIsMonotoneAndBounded) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i % 10) / 10.0);
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 2).quantile(0.5), 0.0);  // empty -> 0
}

TEST(Histogram, SumIsExact) {
  Histogram h(0.0, 10.0, 5);
  h.record(1.5);
  h.record(2.5, 2);          // weighted
  h.record(-3.0);            // underflow still contributes to the sum
  h.record(std::numeric_limits<double>::quiet_NaN());  // excluded
  EXPECT_DOUBLE_EQ(h.sum(), 1.5 + 2.5 * 2 - 3.0);
  EXPECT_DOUBLE_EQ(Histogram(0.0, 1.0, 2).sum(), 0.0);
}

// Property test: for arbitrary seeded data (including out-of-range values
// feeding the underflow/overflow counters), quantile() must be monotone
// non-decreasing in q and bounded by [lo, hi].
TEST(Histogram, QuantileMonotonicityProperty) {
  cdl::Rng rng(20260805);
  for (int trial = 0; trial < 50; ++trial) {
    const double lo = static_cast<double>(rng.uniform(-5.0F, 0.0F));
    const double hi = lo + static_cast<double>(rng.uniform(0.5F, 5.0F));
    const std::size_t bins = 1 + rng.index(32);
    Histogram h(lo, hi, bins);
    const int n = 1 + static_cast<int>(rng.index(200));
    for (int i = 0; i < n; ++i) {
      // 20% of values land outside [lo, hi] to exercise the edge counters.
      const double spread = (hi - lo) * 1.5;
      h.record(lo - 0.25 * spread +
               static_cast<double>(rng.uniform(0.0F, 1.0F)) * spread);
    }
    double prev = h.quantile(0.0);
    for (int step = 0; step <= 100; ++step) {
      const double q = static_cast<double>(step) / 100.0;
      const double v = h.quantile(q);
      EXPECT_GE(v, prev) << "trial " << trial << " q " << q;
      EXPECT_GE(v, lo) << "trial " << trial << " q " << q;
      EXPECT_LE(v, hi) << "trial " << trial << " q " << q;
      prev = v;
    }
  }
}

TEST(Histogram, QuantileInterpolatesWithinBin) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 10; ++i) h.record(0.25);  // all mass in bin [0, 0.5)
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 0.0);
  EXPECT_LE(median, 0.5);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.record(0.1);
  b.record(0.1);
  b.record(0.9);
  b.record(std::numeric_limits<double>::quiet_NaN());
  a.merge(b);
  EXPECT_EQ(a.count(), 3U);
  EXPECT_EQ(a.bins()[0], 2U);
  EXPECT_EQ(a.bins()[3], 1U);
  EXPECT_EQ(a.nan_count(), 1U);
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(0.0, 1.0, 4);
  EXPECT_THROW(a.merge(Histogram(0.0, 1.0, 8)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 2.0, 4)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(-1.0, 1.0, 4)), std::invalid_argument);
}

TEST(Histogram, MergePreservesSumAndEdgeCounts) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.record(0.5);
  b.record(-1.0);
  b.record(2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.sum(), 0.5 - 1.0 + 2.0);
  EXPECT_EQ(a.underflow(), 1U);
  EXPECT_EQ(a.overflow(), 1U);
}

TEST(Histogram, EqualityComparesContents) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  EXPECT_EQ(a, b);
  a.record(0.5);
  EXPECT_NE(a, b);
  b.record(0.5);
  EXPECT_EQ(a, b);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(percentile({3.5}, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(percentile({3.5}, 0.5), 3.5);
  EXPECT_DOUBLE_EQ(percentile({3.5}, 1.0), 3.5);
}

TEST(Percentile, LinearInterpolationBetweenOrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, InputOrderIrrelevant) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0, 2.0, 4.0}, 0.5), 3.0);
}

}  // namespace
}  // namespace cdl::obs
