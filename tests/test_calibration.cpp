#include <gtest/gtest.h>

#include "cdl/calibration.h"
#include "core/rng.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace cdl {
namespace {

ConditionalNetwork tiny_cdln(Rng& rng) {
  Network base;
  base.emplace<Dense>(3, 5);
  base.emplace<Sigmoid>();
  base.emplace<Dense>(5, 2);
  base.init(rng);
  ConditionalNetwork net(std::move(base), Shape{3});
  net.attach_classifier(2, LcTrainingRule::kLms, rng);
  return net;
}

Dataset blob_data(std::size_t n, Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = i % 2;
    Tensor x(Shape{3});
    x[0] = (cls == 0 ? 0.2F : 0.8F) + rng.uniform(-0.1F, 0.1F);
    x[1] = (cls == 0 ? 0.8F : 0.2F) + rng.uniform(-0.1F, 0.1F);
    x[2] = 0.5F;
    d.add(std::move(x), cls);
  }
  return d;
}

TEST(Calibration, RejectsBadInputs) {
  Rng rng(1);
  ConditionalNetwork net = tiny_cdln(rng);
  const Dataset data = blob_data(4, rng);
  EXPECT_THROW((void)measure_calibration(net, Dataset{}), std::invalid_argument);
  EXPECT_THROW((void)measure_calibration(net, data, 0), std::invalid_argument);
  EXPECT_THROW((void)baseline_nll(net, data, 0.0F), std::invalid_argument);
  EXPECT_THROW((void)fit_temperature(net, data, 2.0F, 1.0F),
               std::invalid_argument);
}

TEST(Calibration, PerfectConfidentClassifierHasZeroEce) {
  // Stage classifier rigged to answer class 0 with confidence 1.0 on a
  // dataset that is entirely class 0 -> every bin matches perfectly.
  Rng rng(2);
  ConditionalNetwork net = tiny_cdln(rng);
  net.set_delta(0.5F);
  net.classifier(0).parameters()[0]->zero();
  net.classifier(0).parameters()[1]->zero();
  (*net.classifier(0).parameters()[1])[0] = 1.0F;

  Dataset data;
  for (int i = 0; i < 20; ++i) data.add(Tensor(Shape{3}, 0.5F), 0);
  const CalibrationReport report = measure_calibration(net, data);
  EXPECT_NEAR(report.ece, 0.0, 1e-6);
  EXPECT_NEAR(report.accuracy, 1.0, 1e-12);
  EXPECT_NEAR(report.mean_confidence, 1.0, 1e-6);
}

TEST(Calibration, ConfidentlyWrongClassifierHasHighEce) {
  Rng rng(3);
  ConditionalNetwork net = tiny_cdln(rng);
  net.set_delta(0.5F);
  net.classifier(0).parameters()[0]->zero();
  net.classifier(0).parameters()[1]->zero();
  (*net.classifier(0).parameters()[1])[0] = 1.0F;  // always predicts class 0

  Dataset data;
  for (int i = 0; i < 20; ++i) data.add(Tensor(Shape{3}, 0.5F), 1);  // truth: 1
  const CalibrationReport report = measure_calibration(net, data);
  EXPECT_GT(report.ece, 0.9);
  EXPECT_EQ(report.accuracy, 0.0);
}

TEST(Calibration, BinsPartitionAllSamples) {
  Rng rng(4);
  ConditionalNetwork net = tiny_cdln(rng);
  net.set_delta(0.5F);
  const Dataset data = blob_data(50, rng);
  const CalibrationReport report = measure_calibration(net, data, 7);
  std::size_t total = 0;
  for (const CalibrationBin& b : report.bins) total += b.count;
  EXPECT_EQ(total, 50U);
  EXPECT_EQ(report.bins.size(), 7U);
}

TEST(Calibration, NllFiniteAndTemperatureSensitive) {
  Rng rng(5);
  ConditionalNetwork net = tiny_cdln(rng);
  const Dataset data = blob_data(30, rng);
  const double nll1 = baseline_nll(net, data, 1.0F);
  const double nll_hot = baseline_nll(net, data, 100.0F);
  EXPECT_TRUE(std::isfinite(nll1));
  // At very high temperature the distribution is uniform: NLL -> log(2).
  EXPECT_NEAR(nll_hot, std::log(2.0), 1e-3);
}

TEST(Calibration, FitTemperatureFindsNllMinimum) {
  Rng rng(6);
  ConditionalNetwork net = tiny_cdln(rng);
  // Train the baseline a little so logits carry signal.
  const Dataset train = blob_data(200, rng);
  SgdOptimizer opt({.learning_rate = 0.1F, .momentum = 0.3F});
  SoftmaxCrossEntropyLoss loss;
  for (int e = 0; e < 30; ++e) {
    for (std::size_t i = 0; i < train.size(); ++i) {
      const Tensor out = net.baseline().forward(train.image(i));
      net.baseline().backward(loss.grad(out, train.label(i)));
      opt.step(net.baseline());
    }
  }
  const Dataset val = blob_data(80, rng);
  const float t = fit_temperature(net, val);
  EXPECT_GT(t, 0.25F);
  EXPECT_LT(t, 8.0F);
  // The fitted temperature must not be worse than the endpoints.
  const double fitted = baseline_nll(net, val, t);
  EXPECT_LE(fitted, baseline_nll(net, val, 0.3F) + 1e-6);
  EXPECT_LE(fitted, baseline_nll(net, val, 7.5F) + 1e-6);
}

}  // namespace
}  // namespace cdl
