#include <gtest/gtest.h>

#include "core/rng.h"

namespace cdl {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0.0F, 1.0F), b.uniform(0.0F, 1.0F));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0F, 1.0F) == b.uniform(0.0F, 1.0F)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0F, 3.0F);
    EXPECT_GE(v, -2.0F);
    EXPECT_LT(v, 3.0F);
  }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const float v = rng.normal(2.0F, 3.0F);
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, IndexCoversRangeAndRejectsZero) {
  Rng rng(13);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.index(5)];
  for (int count : seen) EXPECT_GT(count, 100);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, CoinRespectsProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.coin(0.25F) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.coin(0.0F));
    EXPECT_TRUE(rng.coin(1.0F));
  }
}

}  // namespace
}  // namespace cdl
