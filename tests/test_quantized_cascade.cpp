// Tests for the int8 cascade: calibration determinism, quantized segment /
// classifier fidelity against fp32, batch == per-image bit-identity for any
// (tile, thread count), precision API error handling, and checkpoint resets.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "cdl/conditional_network.h"
#include "cdl/quantized_cascade.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "nn/pool2d.h"
#include "test_util.h"

namespace cdl {
namespace {

using test::random_image;

constexpr std::size_t kSide = 14;
const Shape kInShape{1, kSide, kSide};

/// Paper-shaped (sigmoid, valid conv, max pool) network on 1x14x14 inputs:
/// every boundary carries nonnegative values, so the whole cascade is
/// quantizable. Layout: conv(1,4,3) sig pool2 conv(4,6,3) sig pool2 dense.
Network quantizable_net(Rng& rng) {
  Network net;
  net.emplace<Conv2D>(1, 4, 3, ConvAlgo::kIm2col);  // 14 -> 12
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);  // 12 -> 6
  net.emplace<Conv2D>(4, 6, 3, ConvAlgo::kIm2col);  // 6 -> 4
  net.emplace<Sigmoid>();
  net.emplace<Pool2D>(2);  // 4 -> 2
  net.emplace<Dense>(6 * 2 * 2, 5);
  net.init(rng);
  return net;
}

ConditionalNetwork quantizable_cdln(Rng& rng, float delta = 0.4F) {
  ConditionalNetwork net(quantizable_net(rng), kInShape);
  net.attach_classifier(3, LcTrainingRule::kLms, rng);
  net.attach_classifier(6, LcTrainingRule::kSoftmaxXent, rng);
  net.set_delta(delta);
  return net;
}

std::vector<Tensor> make_images(std::size_t n, std::uint64_t seed_base) {
  std::vector<Tensor> images;
  images.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    images.push_back(random_image(kInShape, seed_base + i));
  }
  return images;
}

QuantCalibration calibrate(const ConditionalNetwork& net,
                           const std::vector<Tensor>& images,
                           ThreadPool* pool = nullptr) {
  return collect_quant_calibration(net.baseline(), net.input_shape(), images,
                                   images.size(), pool);
}

void expect_results_identical(const std::vector<ClassificationResult>& a,
                              const std::vector<ClassificationResult>& b,
                              const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << context << " sample " << i;
    EXPECT_EQ(a[i].exit_stage, b[i].exit_stage) << context << " sample " << i;
    EXPECT_EQ(a[i].confidence, b[i].confidence) << context << " sample " << i;
    EXPECT_EQ(a[i].probabilities, b[i].probabilities)
        << context << " sample " << i;
    EXPECT_EQ(a[i].ops, b[i].ops) << context << " sample " << i;
  }
}

std::vector<ClassificationResult> classify_serial(
    const ConditionalNetwork& net, const std::vector<Tensor>& inputs) {
  std::vector<ClassificationResult> out;
  out.reserve(inputs.size());
  for (const Tensor& x : inputs) out.push_back(net.classify(x));
  return out;
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

TEST(QuantCalibrationTest, BoundariesCoverEveryLayerAndRangesAreSane) {
  Rng rng(101);
  const ConditionalNetwork net = quantizable_cdln(rng);
  const QuantCalibration cal = calibrate(net, make_images(16, 500));
  ASSERT_EQ(cal.boundaries(), net.baseline().size() + 1);
  ASSERT_EQ(cal.vmin.size(), cal.amax.size());
  for (std::size_t b = 0; b < cal.boundaries(); ++b) {
    EXPECT_TRUE(std::isfinite(cal.amax[b])) << "boundary " << b;
    EXPECT_GT(cal.amax[b], 0.0F) << "boundary " << b;
    EXPECT_LE(cal.vmin[b], cal.amax[b]) << "boundary " << b;
  }
  // Segment-input boundaries (image, post-sigmoid-pool features) carry only
  // nonnegative values; interior pre-activation boundaries and the logits
  // boundary may be negative and are never quantized as inputs.
  for (const std::size_t b : {0U, 3U, 6U}) {
    EXPECT_GE(cal.vmin[b], 0.0F) << "boundary " << b;
  }
}

// Per-worker accumulators merge with max/min, so the result must be bitwise
// identical for any pool size (the calibration determinism contract).
TEST(QuantCalibrationTest, IdenticalAcrossThreadCounts) {
  Rng rng(103);
  const ConditionalNetwork net = quantizable_cdln(rng);
  const std::vector<Tensor> images = make_images(24, 900);
  const QuantCalibration serial = calibrate(net, images, nullptr);
  for (const std::size_t workers : {2U, 3U, 7U}) {
    ThreadPool pool(workers);
    const QuantCalibration pooled = calibrate(net, images, &pool);
    ASSERT_EQ(pooled.boundaries(), serial.boundaries()) << workers;
    for (std::size_t b = 0; b < serial.boundaries(); ++b) {
      EXPECT_EQ(pooled.amax[b], serial.amax[b])
          << "workers " << workers << " boundary " << b;
      EXPECT_EQ(pooled.vmin[b], serial.vmin[b])
          << "workers " << workers << " boundary " << b;
    }
  }
}

// ---------------------------------------------------------------------------
// QuantizedSegment
// ---------------------------------------------------------------------------

TEST(QuantizedSegmentTest, BuildsPaperShapedSegmentsAndRejectsUnsupported) {
  Rng rng(107);
  const ConditionalNetwork net = quantizable_cdln(rng);
  const QuantCalibration cal = calibrate(net, make_images(8, 1500));
  const Network& base = net.baseline();
  // Conv triples and the dense tail all build.
  EXPECT_NE(QuantizedSegment::build(base, kInShape, 0, 3, cal), nullptr);
  const Shape mid = base.output_shape_after(kInShape, 3);
  EXPECT_NE(QuantizedSegment::build(base, mid, 3, 6, cal), nullptr);
  const Shape tail = base.output_shape_after(kInShape, 6);
  EXPECT_NE(QuantizedSegment::build(base, tail, 6, 7, cal), nullptr);

  // Tanh produces negative boundary values. A trailing tanh triple still
  // builds (the segment dequantizes its output to fp32), but a segment that
  // would feed the negative boundary into a quantized dense input does not.
  Rng rng2(109);
  Network neg;
  neg.emplace<Conv2D>(1, 4, 3, ConvAlgo::kIm2col);
  neg.emplace<Tanh>();
  neg.emplace<Pool2D>(2);
  neg.emplace<Dense>(4 * 6 * 6, 5);
  neg.init(rng2);
  Tensor probe = random_image(kInShape, 77);
  const QuantCalibration neg_cal =
      collect_quant_calibration(neg, kInShape, {probe}, 1);
  EXPECT_NE(QuantizedSegment::build(neg, kInShape, 0, 3, neg_cal), nullptr);
  EXPECT_EQ(QuantizedSegment::build(neg, kInShape, 0, 4, neg_cal), nullptr);

  // Padded conv is not byte-im2col lowerable -> rejected.
  Rng rng3(113);
  Network padded;
  padded.emplace<Conv2D>(1, 4, 3, ConvAlgo::kIm2col, ConvGeometry{1, 1});
  padded.emplace<Sigmoid>();
  padded.emplace<Pool2D>(2);
  padded.emplace<Dense>(4 * 7 * 7, 5);
  padded.init(rng3);
  const QuantCalibration pad_cal =
      collect_quant_calibration(padded, kInShape, {probe}, 1);
  EXPECT_EQ(QuantizedSegment::build(padded, kInShape, 0, 3, pad_cal), nullptr);
}

TEST(QuantizedSegmentTest, OutputTracksFp32WithinQuantizationError) {
  Rng rng(127);
  const ConditionalNetwork net = quantizable_cdln(rng);
  const QuantCalibration cal = calibrate(net, make_images(16, 2500));
  const auto seg =
      QuantizedSegment::build(net.baseline(), kInShape, 0, 3, cal);
  ASSERT_NE(seg, nullptr);
  const Tensor x = random_image(kInShape, 3000);
  const Tensor ref = net.baseline().infer_range(x, 0, 3);
  ASSERT_EQ(ref.numel(), seg->out_floats());
  std::vector<float> scratch(seg->scratch_floats(1));
  std::vector<float> out(seg->out_floats());
  seg->infer_block(x.data(), out.data(), 1, scratch.data(), nullptr);
  for (std::size_t i = 0; i < out.size(); ++i) {
    // Sigmoid outputs live in [0,1]; int8 conv inputs and +/-63 weights keep
    // the error well under this loose bound.
    EXPECT_NEAR(out[i], ref[i], 0.05F) << "at " << i;
    EXPECT_GE(out[i], 0.0F);
    EXPECT_LE(out[i], 1.0F);
  }
}

// The determinism contract: batched inference is bit-identical to one-by-one
// inference for any count and thread pool.
TEST(QuantizedSegmentTest, BatchBitIdenticalAcrossCountAndThreads) {
  Rng rng(131);
  const ConditionalNetwork net = quantizable_cdln(rng);
  const QuantCalibration cal = calibrate(net, make_images(8, 4000));
  const auto seg =
      QuantizedSegment::build(net.baseline(), kInShape, 0, 3, cal);
  ASSERT_NE(seg, nullptr);
  const std::size_t count = 9;
  const std::vector<Tensor> images = make_images(count, 4500);
  const std::size_t in_floats = seg->in_floats();
  const std::size_t out_floats = seg->out_floats();

  // Reference: per-image serial runs.
  std::vector<float> expected(count * out_floats);
  std::vector<float> scratch1(seg->scratch_floats(1));
  for (std::size_t i = 0; i < count; ++i) {
    seg->infer_block(images[i].data(), expected.data() + i * out_floats, 1,
                     scratch1.data(), nullptr);
  }

  std::vector<float> in(count * in_floats);
  for (std::size_t i = 0; i < count; ++i) {
    std::copy(images[i].data(), images[i].data() + in_floats,
              in.begin() + static_cast<std::ptrdiff_t>(i * in_floats));
  }
  std::vector<float> scratch(seg->scratch_floats(count));
  std::vector<float> out(count * out_floats);
  seg->infer_block(in.data(), out.data(), count, scratch.data(), nullptr);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], expected[i]) << "serial batch at " << i;
  }
  for (const std::size_t workers : {2U, 5U}) {
    ThreadPool pool(workers);
    std::vector<float> pooled(count * out_floats, -1.0F);
    seg->infer_block(in.data(), pooled.data(), count, scratch.data(), &pool);
    for (std::size_t i = 0; i < pooled.size(); ++i) {
      ASSERT_EQ(pooled[i], expected[i])
          << "workers " << workers << " at " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// QuantizedClassifier
// ---------------------------------------------------------------------------

TEST(QuantizedClassifierTest, ProbabilitiesTrackFp32AndRespectRule) {
  Rng rng(137);
  const ConditionalNetwork net = quantizable_cdln(rng);
  const QuantCalibration cal = calibrate(net, make_images(16, 5000));
  for (std::size_t s = 0; s < net.num_stages(); ++s) {
    const std::size_t boundary = net.stage_prefix(s);
    const auto qlc = QuantizedClassifier::build(
        net.classifier(s), cal.amax[boundary], cal.vmin[boundary]);
    ASSERT_NE(qlc, nullptr) << "stage " << s;
    const Tensor x = random_image(kInShape, 5100 + s);
    const Tensor feat = net.stage_features(x, s);
    const Tensor ref = net.classifier(s).probabilities(feat);
    std::vector<float> scratch(qlc->scratch_floats(1));
    std::vector<float> probs(qlc->num_classes());
    qlc->probabilities_block(feat.data(), 1, probs.data(), scratch.data(),
                             nullptr);
    for (std::size_t c = 0; c < probs.size(); ++c) {
      EXPECT_NEAR(probs[c], ref[c], 0.05F) << "stage " << s << " class " << c;
      EXPECT_GE(probs[c], 0.0F);
      EXPECT_LE(probs[c], 1.0F);
    }
  }
}

TEST(QuantizedClassifierTest, RejectsNegativeFeatureRanges) {
  Rng rng(139);
  LinearClassifier lc(8, 3, LcTrainingRule::kLms);
  lc.init(rng);
  EXPECT_EQ(QuantizedClassifier::build(lc, 1.0F, -0.5F), nullptr);
  EXPECT_EQ(QuantizedClassifier::build(lc, 0.0F, 0.0F), nullptr);
  EXPECT_NE(QuantizedClassifier::build(lc, 1.0F, 0.0F), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end int8 cascade through ConditionalNetwork
// ---------------------------------------------------------------------------

TEST(Int8CascadeTest, BatchBitIdenticalToSerialAcrossSizesThreadsAndTiles) {
  Rng rng(149);
  ConditionalNetwork net = quantizable_cdln(rng);
  net.set_quantization(calibrate(net, make_images(16, 6000)));
  net.set_cascade_precision(StagePrecision::kInt8);
  for (const float delta : {0.2F, 0.6F}) {
    net.set_delta(delta);
    for (const std::size_t size : {1U, 7U, 40U}) {
      const std::vector<Tensor> inputs = make_images(size, 7000 + size);
      const std::vector<ClassificationResult> serial =
          classify_serial(net, inputs);
      for (const std::size_t workers : {1U, 4U}) {
        ThreadPool pool(workers);
        expect_results_identical(
            serial, net.classify_batch(inputs, &pool),
            "delta " + std::to_string(delta) + " size " +
                std::to_string(size) + " workers " + std::to_string(workers));
      }
      // Explicit small tile exercises the tile-loop boundary.
      BatchWorkspace ws;
      ws.plan(net, 8, 1);
      std::vector<ClassificationResult> tiled;
      net.classify_batch_into(inputs, tiled, ws, nullptr);
      expect_results_identical(serial, tiled,
                               "tile 8 size " + std::to_string(size));
    }
  }
}

TEST(Int8CascadeTest, MixedPrecisionStagesMatchSerial) {
  Rng rng(151);
  ConditionalNetwork net = quantizable_cdln(rng);
  net.set_quantization(calibrate(net, make_images(16, 8000)));
  // Quantize only the first stage; stage 1 and the FC tail stay fp32.
  net.set_stage_precision(0, StagePrecision::kInt8);
  EXPECT_EQ(net.stage_precision(0), StagePrecision::kInt8);
  EXPECT_EQ(net.stage_precision(1), StagePrecision::kFp32);
  const std::vector<Tensor> inputs = make_images(11, 8500);
  expect_results_identical(classify_serial(net, inputs),
                           net.classify_batch(inputs), "stage0 int8");
  // Flip back to fp32: results must match a never-quantized network exactly.
  net.set_stage_precision(0, StagePrecision::kFp32);
  Rng rng2(151);
  const ConditionalNetwork fresh = quantizable_cdln(rng2);
  expect_results_identical(classify_serial(fresh, inputs),
                           net.classify_batch(inputs), "back to fp32");
}

TEST(Int8CascadeTest, ExitStageDistributionStaysCloseToFp32) {
  Rng rng(157);
  ConditionalNetwork net = quantizable_cdln(rng, 0.5F);
  const std::vector<Tensor> inputs = make_images(60, 9000);
  const auto fp32 = net.classify_batch(inputs);
  net.set_quantization(calibrate(net, make_images(16, 9500)));
  net.set_cascade_precision(StagePrecision::kInt8);
  const auto int8 = net.classify_batch(inputs);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (fp32[i].exit_stage == int8[i].exit_stage) ++agree;
  }
  // Quantization may flip a handful of near-threshold gate decisions but
  // must not rewrite the exit profile wholesale.
  EXPECT_GE(agree * 10, inputs.size() * 8)
      << agree << "/" << inputs.size() << " exit stages agree";
}

TEST(Int8CascadeTest, PrecisionApiValidatesArguments) {
  Rng rng(163);
  ConditionalNetwork net = quantizable_cdln(rng);
  // No calibration installed yet.
  EXPECT_FALSE(net.has_quantization());
  EXPECT_FALSE(net.stage_quantizable(0));
  EXPECT_THROW(net.set_stage_precision(0, StagePrecision::kInt8),
               std::logic_error);
  EXPECT_THROW((void)net.stage_precision(net.num_stages() + 1),
               std::out_of_range);
  EXPECT_THROW(net.set_stage_precision(net.num_stages() + 1,
                                       StagePrecision::kFp32),
               std::out_of_range);
  // Wrong boundary count.
  QuantCalibration bad;
  bad.amax.assign(2, 1.0F);
  bad.vmin.assign(2, 0.0F);
  EXPECT_THROW(net.set_quantization(bad), std::invalid_argument);

  net.set_quantization(calibrate(net, make_images(8, 10000)));
  EXPECT_TRUE(net.has_quantization());
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    EXPECT_TRUE(net.stage_quantizable(s)) << "stage " << s;
    EXPECT_EQ(net.stage_precision(s), StagePrecision::kFp32);
    EXPECT_EQ(net.quantized_segment(s), nullptr);
  }
  net.set_stage_precision(1, StagePrecision::kInt8);
  EXPECT_NE(net.quantized_segment(1), nullptr);
  EXPECT_NE(net.quantized_classifier(1), nullptr);
  EXPECT_EQ(net.quantized_segment(0), nullptr);

  EXPECT_STREQ(to_string(StagePrecision::kFp32), "fp32");
  EXPECT_STREQ(to_string(StagePrecision::kInt8), "int8");
}

TEST(Int8CascadeTest, UnquantizableNetworkRejectsInt8) {
  // conv_cdln uses a padded first conv and a tanh boundary: nothing builds.
  Rng rng(167);
  ConditionalNetwork net = test::conv_cdln(ConvAlgo::kIm2col, rng);
  std::vector<Tensor> images;
  for (std::uint64_t i = 0; i < 4; ++i) {
    images.push_back(random_image(Shape{1, 12, 12}, 11000 + i));
  }
  net.set_quantization(collect_quant_calibration(
      net.baseline(), net.input_shape(), images, images.size()));
  EXPECT_FALSE(net.stage_quantizable(0));
  EXPECT_THROW(net.set_stage_precision(0, StagePrecision::kInt8),
               std::invalid_argument);
  EXPECT_EQ(net.stage_precision(0), StagePrecision::kFp32);
}

TEST(Int8CascadeTest, WorkspaceReplansOnPrecisionFlip) {
  Rng rng(173);
  ConditionalNetwork net = quantizable_cdln(rng);
  net.set_quantization(calibrate(net, make_images(8, 12000)));
  BatchWorkspace ws;
  ws.plan(net, 16, 1);
  EXPECT_TRUE(ws.matches(net, 1));
  net.set_stage_precision(0, StagePrecision::kInt8);
  EXPECT_FALSE(ws.matches(net, 1));
  const std::vector<Tensor> inputs = make_images(5, 12500);
  std::vector<ClassificationResult> results;
  net.classify_batch_into(inputs, results, ws);  // auto-replans
  EXPECT_TRUE(ws.matches(net, 1));
  expect_results_identical(classify_serial(net, inputs), results, "replanned");
}

TEST(Int8CascadeTest, LoadingParametersResetsPrecisionState) {
  test::TempDir tmp("cdl_test_quantized_cascade");
  Rng rng(179);
  ConditionalNetwork net = quantizable_cdln(rng);
  net.set_quantization(calibrate(net, make_images(8, 13000)));
  net.set_cascade_precision(StagePrecision::kInt8);
  net.save(tmp.path("net.bin"));
  net.load(tmp.path("net.bin"));
  // Packed int8 parameters derive from the weights, so a load drops them;
  // the calibration itself survives and precision can be re-enabled.
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    EXPECT_EQ(net.stage_precision(s), StagePrecision::kFp32) << s;
    EXPECT_EQ(net.quantized_segment(s), nullptr) << s;
  }
  EXPECT_TRUE(net.has_quantization());
  net.set_cascade_precision(StagePrecision::kInt8);
  EXPECT_NE(net.quantized_segment(0), nullptr);
}

}  // namespace
}  // namespace cdl
