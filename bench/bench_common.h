// Shared infrastructure for the experiment harnesses: environment-driven
// workload sizes, dataset construction, and a trained-model cache so the
// baseline DLNs and CDLNs are trained once and reused by every bench binary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdl/architectures.h"
#include "cdl/cdl_trainer.h"
#include "cdl/conditional_network.h"
#include "cdl/delta_selection.h"
#include "core/thread_pool.h"
#include "eval/table.h"
#include "data/synthetic_mnist.h"

namespace cdl::bench {

struct BenchConfig {
  std::size_t train_n = 6000;   ///< CDL_TRAIN_N
  std::size_t test_n = 2000;    ///< CDL_TEST_N
  std::size_t val_n = 1500;     ///< CDL_VAL_N (delta-selection split)
  std::uint64_t seed = 42;      ///< CDL_SEED
  std::size_t threads = 1;      ///< CDL_THREADS (batch-inference workers)
  std::string cache_dir = ".cdl_cache";  ///< CDL_CACHE_DIR
};

/// Reads the shared config from the environment.
[[nodiscard]] BenchConfig bench_config();

/// Shared inference pool sized by config.threads, created on first use.
/// Returns nullptr when config.threads <= 1 (serial evaluation) — callers
/// pass the result straight to evaluate_cdl / classify_batch, whose results
/// are bit-identical either way.
[[nodiscard]] ThreadPool* bench_pool(const BenchConfig& config);

/// Train/test data for the shared config (real MNIST if CDL_MNIST_DIR set).
[[nodiscard]] MnistPair bench_data(const BenchConfig& config);

struct TrainedCdln {
  ConditionalNetwork net;
  CdlTrainReport report;
  bool from_cache = false;
};

/// Builds a CDLN for `arch` with linear classifiers at `candidate_stages`,
/// trained per Algorithm 1 (`prune` controls gain-based admission). Results
/// are cached under config.cache_dir keyed by every input that affects the
/// outcome; the baseline weights are cached separately so stage variants of
/// one architecture share a single baseline training run.
///
/// `prune` defaults to false because the paper's tables and figures are
/// defined over its *fixed* CDLN configurations (MNIST_2C = O1, MNIST_3C =
/// O1+O2). On this repo's synthetic workload the first stage classifies more
/// traffic than in the paper, so Algorithm 1's gain test (exercised by the
/// fig9 harness and the custom_network example) legitimately rejects O2 —
/// faithful to the algorithm, but not the configuration the paper measures.
[[nodiscard]] TrainedCdln trained_cdln(const CdlArchitecture& arch,
                                       const std::vector<std::size_t>& candidate_stages,
                                       const Dataset& train,
                                       const BenchConfig& config,
                                       bool prune = false,
                                       LcTrainingRule rule = LcTrainingRule::kLms);

/// Prints a standard harness banner (workload provenance and sizes).
void print_banner(const std::string& title, const BenchConfig& config,
                  const MnistPair& data);

/// Picks the operating delta on the validation split (paper Section V-E) and
/// prints the choice. Leaves `net` configured at the selected delta.
float select_operating_delta(ConditionalNetwork& net, const MnistPair& data);

/// When $CDL_CSV_DIR is set, writes `table` to <dir>/<name>.csv so plotting
/// scripts can consume bench output without parsing ASCII tables. No-op
/// otherwise.
void maybe_export_csv(const std::string& name, const TextTable& table);

}  // namespace cdl::bench
