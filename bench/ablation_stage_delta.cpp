// Ablation: one global confidence threshold (the paper's design) vs an
// independently tuned threshold per stage (the refinement later early-exit
// systems adopted). Both are selected on the validation split and compared
// on the held-out test set.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Ablation: global delta vs per-stage delta (MNIST_3C)", config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  const double base_ops = static_cast<double>(
      trained.net.baseline_forward_ops().total_compute());

  cdl::TextTable table({"configuration", "thresholds", "normalized #OPS",
                        "test accuracy"});

  {
    const cdl::DeltaSelection sel =
        cdl::select_delta(trained.net, data.validation);
    const cdl::Evaluation eval =
        cdl::evaluate_cdl(trained.net, data.test, energy);
    table.add_row({"global delta (paper)",
                   "all = " + cdl::fmt(sel.best.delta, 2),
                   cdl::fmt(eval.avg_ops() / base_ops, 3),
                   cdl::fmt_percent(eval.accuracy())});
  }

  {
    const cdl::StageDeltaSelection sel =
        cdl::select_stage_deltas(trained.net, data.validation);
    const cdl::Evaluation eval =
        cdl::evaluate_cdl(trained.net, data.test, energy);
    std::string thresholds;
    for (std::size_t s = 0; s < sel.stage_deltas.size(); ++s) {
      if (s != 0) thresholds += ", ";
      thresholds +=
          trained.net.stage_name(s) + "=" + cdl::fmt(sel.stage_deltas[s], 2);
    }
    table.add_row({"per-stage delta (extension)", thresholds,
                   cdl::fmt(eval.avg_ops() / base_ops, 3),
                   cdl::fmt_percent(eval.accuracy())});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: per-stage tuning matches or improves the "
              "global-delta operating point (it strictly generalizes it)\n");
  return 0;
}
