// Ablation: what the linear classifiers actually buy from the shared
// convolutional features. The paper's premise is that CNN-layer features are
// strong enough for a *linear* model to classify most inputs; this harness
// trains identical LMS classifiers on raw pixels and on each conv stage's
// pooled features, comparing accuracy and early-exit power at delta 0.5.
#include <cstdio>

#include "bench_common.h"
#include "cdl/activation_module.h"
#include "cdl/linear_classifier.h"
#include "eval/table.h"

namespace {

struct FeatureSource {
  std::string name;
  std::size_t prefix_layers;  // 0 = raw pixels
};

}  // namespace

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Ablation: linear classifiers on raw pixels vs conv features (MNIST_3C)",
      config, data);

  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  cdl::Network& baseline = trained.net.baseline();

  const std::vector<FeatureSource> sources = {
      {"raw pixels", 0},
      {"P1 features (O1)", 3},
      {"P2 features (O2)", 6},
      {"P3 features (O3)", 9},
  };

  cdl::TextTable table({"feature source", "dims", "LC accuracy",
                        "confident-exit share", "accuracy on exits"});
  const cdl::ActivationModule gate(0.5F);
  cdl::Rng rng(77);

  for (const FeatureSource& src : sources) {
    const cdl::Shape feat_shape =
        baseline.output_shape_after(arch.input_shape, src.prefix_layers);
    cdl::LinearClassifier lc(feat_shape.numel(), 10);
    lc.init(rng);

    // Same NLMS schedule the CDLN trainer uses.
    float lr = 0.8F;
    for (std::size_t epoch = 0; epoch < 12; ++epoch) {
      for (std::size_t i = 0; i < data.train.size(); ++i) {
        const cdl::Tensor f = baseline.forward_range(data.train.image(i), 0,
                                                     src.prefix_layers);
        (void)lc.train_step(f, data.train.label(i), lr);
      }
      lr *= 0.9F;
    }

    std::size_t correct = 0;
    std::size_t exits = 0;
    std::size_t exit_correct = 0;
    for (std::size_t i = 0; i < data.test.size(); ++i) {
      const cdl::Tensor f =
          baseline.forward_range(data.test.image(i), 0, src.prefix_layers);
      const cdl::Tensor probs = lc.probabilities(f);
      const cdl::ActivationDecision d = gate.evaluate(probs);
      const bool ok = d.label == data.test.label(i);
      correct += ok ? 1 : 0;
      if (d.terminate) {
        ++exits;
        exit_correct += ok ? 1 : 0;
      }
    }
    const double n = static_cast<double>(data.test.size());
    table.add_row({src.name, std::to_string(feat_shape.numel()),
                   cdl::fmt_percent(static_cast<double>(correct) / n),
                   cdl::fmt_percent(static_cast<double>(exits) / n),
                   exits == 0 ? "n/a"
                              : cdl::fmt_percent(
                                    static_cast<double>(exit_correct) /
                                    static_cast<double>(exits))});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: conv features beat raw pixels for a linear "
              "model, and deeper features are stronger per dimension — the "
              "generic-to-specific transition the paper builds on\n");
  return 0;
}
