// Comparison baseline: CDL vs the scalable-effort classifier cascade it
// builds on (the paper's reference [1], Venkataramani et al. DAC 2015).
//
// Scalable-effort chains independent models — here a raw-pixel linear
// classifier, a small MLP, and the full MNIST_3C CNN — each re-processing
// the input from scratch. CDL instead taps the single CNN's intermediate
// features. Both are evaluated at the same confidence rule and delta; the
// question is how much of the conditional saving survives when stages must
// pay for their own feature extraction.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "energy/report.h"
#include "eval/table.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "cdl/delta_selection.h"
#include "scalable/scalable_cascade.h"

namespace {

cdl::Network raw_linear_stage(cdl::Rng& rng) {
  cdl::Network net;
  net.emplace<cdl::Dense>(28 * 28, 10);
  net.init(rng);
  return net;
}

cdl::Network small_mlp_stage(cdl::Rng& rng) {
  cdl::Network net;
  net.emplace<cdl::Dense>(28 * 28, 32);
  net.emplace<cdl::Sigmoid>();
  net.emplace<cdl::Dense>(32, 10);
  net.init(rng);
  return net;
}

}  // namespace

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Baseline comparison: CDL vs scalable-effort cascade (DAC'15 [1])",
      config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();

  // --- CDL (shared features), delta picked on validation --------------------
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  cdl::bench::select_operating_delta(trained.net, data);
  const cdl::Evaluation uncond =
      cdl::evaluate_baseline(trained.net, data.test, energy);
  const cdl::Evaluation cdl_eval =
      cdl::evaluate_cdl(trained.net, data.test, energy);

  // --- Scalable-effort (independent models) ---------------------------------
  cdl::Rng rng(config.seed + 7);
  cdl::ScalableCascade cascade(arch.input_shape);
  cascade.add_stage(raw_linear_stage(rng));
  cascade.add_stage(small_mlp_stage(rng));
  {
    // Final stage: the DAC'15 "reference classifier" — the full CNN trained
    // on ALL data up front (routing leaves it too few instances otherwise).
    cdl::Network cnn = arch.make_baseline();
    cnn.init(rng);
    cdl::train_baseline(cnn, data.train, cdl::BaselineTrainConfig{}, rng);
    cascade.add_stage(std::move(cnn));
  }
  std::printf("[bench] training scalable-effort gate stages...\n");
  cdl::ScalableTrainConfig scfg;
  scfg.epochs_per_stage = {8, 8, 0};  // reference stage stays as trained
  const cdl::ScalableTrainReport sreport =
      cdl::train_scalable_cascade(cascade, data.train, scfg, rng);

  // Same protocol as CDL: pick the cascade's delta on the validation split.
  const double n = static_cast<double>(data.test.size());
  {
    float best_delta = 0.5F;
    double best_acc = -1.0;
    for (float delta : cdl::default_delta_grid()) {
      cascade.set_delta(delta);
      std::size_t correct = 0;
      for (std::size_t i = 0; i < data.validation.size(); ++i) {
        if (cascade.classify(data.validation.image(i)).label ==
            data.validation.label(i)) {
          ++correct;
        }
      }
      const double acc = static_cast<double>(correct) /
                         static_cast<double>(data.validation.size());
      if (acc > best_acc) {
        best_acc = acc;
        best_delta = delta;
      }
    }
    cascade.set_delta(best_delta);
    std::printf("[bench] scalable-effort delta selected on validation: %.2f\n",
                static_cast<double>(best_delta));
  }

  std::size_t sc_correct = 0;
  double sc_ops = 0.0;
  double sc_energy = 0.0;
  std::vector<std::size_t> sc_exits(cascade.num_stages(), 0);
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    const cdl::ClassificationResult r = cascade.classify(data.test.image(i));
    if (r.label == data.test.label(i)) ++sc_correct;
    sc_ops += static_cast<double>(r.ops.total_compute());
    sc_energy += energy.energy_pj(r.ops);
    ++sc_exits[r.exit_stage];
  }

  cdl::TextTable table({"scheme", "accuracy", "avg ops", "vs unconditional",
                        "avg energy"});
  table.add_row({"unconditional CNN", cdl::fmt_percent(uncond.accuracy()),
                 cdl::fmt(uncond.avg_ops(), 0), "1.00x",
                 cdl::format_energy(uncond.avg_energy_pj())});
  table.add_row({"scalable-effort [1]",
                 cdl::fmt_percent(static_cast<double>(sc_correct) / n),
                 cdl::fmt(sc_ops / n, 0),
                 cdl::fmt(uncond.avg_ops() / (sc_ops / n), 2) + "x",
                 cdl::format_energy(sc_energy / n)});
  table.add_row({"CDL (this paper)", cdl::fmt_percent(cdl_eval.accuracy()),
                 cdl::fmt(cdl_eval.avg_ops(), 0),
                 cdl::fmt(uncond.avg_ops() / cdl_eval.avg_ops(), 2) + "x",
                 cdl::format_energy(cdl_eval.avg_energy_pj())});
  std::printf("%s", table.to_string().c_str());

  std::printf("\nscalable-effort training flow (instances per stage):");
  for (std::size_t s = 0; s < sreport.reached.size(); ++s) {
    std::printf("  S%zu %zu->%zu", s + 1, sreport.reached[s],
                sreport.reached[s] - sreport.classified[s]);
  }
  std::printf("\nscalable-effort test exits:");
  for (std::size_t s = 0; s < sc_exits.size(); ++s) {
    std::printf("  S%zu %.1f %%", s + 1,
                100.0 * static_cast<double>(sc_exits[s]) / n);
  }
  std::printf("\n\nexpected shape: both cascades beat the unconditional CNN. "
              "On this workload they land on different Pareto points: the "
              "raw-pixel gate is cheap, so scalable-effort saves more ops, "
              "but its stages cannot exceed their own model capacity — CDL's "
              "feature-sharing stages reach the highest accuracy while still "
              "halving the ops (on harder datasets, where raw-pixel linear "
              "models collapse, CDL's advantage widens into the strict win "
              "the paper claims)\n");
  return 0;
}
