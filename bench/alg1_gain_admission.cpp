// Algorithm 1's gain-based stage admission, reported explicitly.
//
// For each architecture, every candidate attach point (including the deep O3
// of MNIST_3C) is trained and its gain G_i = (gamma_base - gamma_i)*Cl_i -
// gamma_i*(I_i - Cl_i) evaluated at the training confidence level. Stages
// with G_i <= epsilon are removed. On this repo's synthetic workload the
// first stage gates more traffic than in the paper, so deeper candidates are
// usually rejected — the same break-even economics the paper's Fig. 9
// illustrates.
#include <cstdio>

#include "bench_common.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Algorithm 1: gain-based stage admission", config,
                           data);

  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    auto trained = cdl::bench::trained_cdln(arch, arch.candidate_stages,
                                            data.train, config,
                                            /*prune=*/true);
    cdl::TextTable table({"candidate", "prefix", "I_i (reached)",
                          "Cl_i (classified)", "gain G_i", "verdict"});
    for (const cdl::StageTrainReport& s : trained.report.stages) {
      table.add_row({s.stage_name, std::to_string(s.prefix_layers),
                     std::to_string(s.reached), std::to_string(s.classified),
                     cdl::fmt(s.gain, 0),
                     s.admitted ? "admitted" : "rejected"});
    }
    std::printf("%s (candidates at every pooling boundary):\n%s",
                arch.name.c_str(), table.to_string().c_str());
    std::printf("admitted stages: %zu; training-set fraction reaching FC: "
                "%.2f %%\n\n",
                trained.net.num_stages(), 100.0 * trained.report.fc_fraction);
  }
  std::printf("paper: the admission loop stops once an extra output layer no "
              "longer improves the overall gain beyond epsilon (Sec. III-A, "
              "Fig. 9's break-even)\n");
  return 0;
}
