// Hardware latency analysis (extension): roofline latency of the CDLN on a
// small MAC-array accelerator. Conditional execution shortens *average*
// latency the same way it shortens average ops; this harness reports
// per-exit-stage latency, the conditional average, and a sweep over
// accelerator sizes showing when the design turns memory-bound.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "hw/accelerator_model.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Hardware latency: CDLN on a roofline MAC-array model (MNIST_3C)",
      config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  trained.net.set_delta(0.5F);
  const cdl::Evaluation eval = cdl::evaluate_cdl(trained.net, data.test, energy);

  const cdl::AcceleratorModel accel(cdl::AcceleratorConfig::embedded_45nm());
  cdl::TextTable exits({"exit stage", "cycles", "latency", "bound"});
  double avg_us = 0.0;
  for (std::size_t s = 0; s <= trained.net.num_stages(); ++s) {
    const cdl::LatencyEstimate est = accel.exit_latency(trained.net, s);
    exits.add_row({trained.net.stage_name(s), std::to_string(est.cycles),
                   cdl::fmt(est.microseconds, 2) + " us",
                   est.memory_bound() ? "memory" : "compute"});
    avg_us += eval.exit_fraction(s) * est.microseconds;
  }
  std::printf("%s", exits.to_string().c_str());

  const cdl::LatencyEstimate full =
      accel.exit_latency(trained.net, trained.net.num_stages());
  const cdl::LatencyEstimate baseline_only = accel.latency(
      cdl::profile_network(trained.net.baseline(), arch.input_shape, energy));
  std::printf("\nunconditional baseline latency: %.2f us\n",
              baseline_only.microseconds);
  std::printf("CDLN average latency (delta 0.5): %.2f us  -> %.2fx speedup\n",
              avg_us, baseline_only.microseconds / avg_us);
  std::printf("CDLN worst-case latency: %.2f us (%.1f %% over baseline)\n",
              full.microseconds,
              100.0 * (full.microseconds / baseline_only.microseconds - 1.0));

  std::printf("\naccelerator size sweep (average CDLN latency):\n");
  cdl::TextTable sweep({"MAC units", "SRAM B/cycle", "avg latency", "bound at FC"});
  for (const std::size_t macs : {4U, 16U, 64U, 256U}) {
    for (const std::size_t bw : {8U, 32U}) {
      cdl::AcceleratorConfig c;
      c.num_macs = macs;
      c.bytes_per_cycle = bw;
      const cdl::AcceleratorModel m(c);
      double avg = 0.0;
      for (std::size_t s = 0; s <= trained.net.num_stages(); ++s) {
        avg += eval.exit_fraction(s) * m.exit_latency(trained.net, s).microseconds;
      }
      const bool mem_bound =
          m.exit_latency(trained.net, trained.net.num_stages()).memory_bound();
      sweep.add_row({std::to_string(macs), std::to_string(bw),
                     cdl::fmt(avg, 2) + " us",
                     mem_bound ? "memory" : "compute"});
    }
  }
  std::printf("%s", sweep.to_string().c_str());
  std::printf("\nexpected shape: average latency tracks the OPS savings; "
              "scaling MACs without SRAM bandwidth turns the design "
              "memory-bound (roofline)\n");
  return 0;
}
