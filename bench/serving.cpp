// Serving harness: drives the ServingEngine with an open-loop Poisson
// arrival process (seeded exponential inter-arrival times, arrivals never
// wait for service) and reports sustained img/s, tail latency and SLO
// counters per (network, precision) row. Each row re-checks the serving
// determinism contract: every completed response must be bit-identical to an
// offline classify_batch_into of the same image.
//
// Results merge into the throughput harness's JSON file as a final
// "serving" top-level section (default BENCH_throughput.json), so one file
// carries both offline and serving numbers for bench_check.py.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cdl/conditional_network.h"
#include "cdl/quantized_cascade.h"
#include "eval/table.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "util/args.h"

namespace {

using WallClock = std::chrono::steady_clock;

struct ServingRow {
  std::string network;
  std::string precision;
  double offered_rate_ips = 0.0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t expired = 0;
  std::uint64_t slo_miss = 0;
  double sustained_ips = 0.0;  ///< completions / wall time
  double mean_batch = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  /// Mean per-phase latency decomposition: these three sum to mean_ms (the
  /// engine's stamps partition each request's latency exactly).
  double queue_mean_ms = 0.0;
  double batch_mean_ms = 0.0;
  double compute_mean_ms = 0.0;
  /// Attributed energy over completed requests (the engine's exit-energy
  /// stamps folded by the SLO tracker).
  double energy_mean_pj = 0.0;
  double energy_total_pj = 0.0;
  bool identical_to_offline = false;
};

/// Serves `inputs` through a fresh engine at `rate` img/s (Poisson arrivals
/// from `seed`) and fills a row. `reference` is the offline result per input.
ServingRow serve_row(const std::string& network, const std::string& precision,
                     cdl::ConditionalNetwork net,
                     const std::vector<cdl::Tensor>& inputs,
                     const std::vector<cdl::ClassificationResult>& reference,
                     double rate, std::uint64_t seed,
                     const cdl::serve::EngineConfig& engine_config) {
  cdl::serve::ModelRegistry models;
  models.add(network, std::move(net));  // the engine owns its networks
  cdl::serve::ServingEngine engine(std::move(models), engine_config);

  // Pre-draw the arrival schedule so the submit loop does no RNG work.
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> inter_arrival(rate);
  std::vector<double> arrival_s(inputs.size());
  double t = 0.0;
  for (double& a : arrival_s) {
    t += inter_arrival(rng);
    a = t;
  }

  std::vector<std::future<cdl::serve::Response>> futures;
  futures.reserve(inputs.size());
  const WallClock::time_point start = WallClock::now();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    // Open loop: arrival i fires at its scheduled offset regardless of how
    // far service has fallen behind (that is what makes overload visible).
    const auto due = start + std::chrono::nanoseconds(
                                 static_cast<std::uint64_t>(1e9 * arrival_s[i]));
    std::this_thread::sleep_until(due);
    futures.push_back(engine.submit(0, cdl::Tensor(inputs[i])).response);
  }
  engine.shutdown();  // drain everything accepted
  const double wall_s =
      std::chrono::duration<double>(WallClock::now() - start).count();

  ServingRow row;
  row.network = network;
  row.precision = precision;
  row.offered_rate_ips = rate;
  row.identical_to_offline = true;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const cdl::serve::Response resp = futures[i].get();
    if (resp.status != cdl::serve::RequestStatus::kOk) continue;
    const cdl::ClassificationResult& want = reference[i];
    const cdl::ClassificationResult& got = resp.result;
    if (got.label != want.label || got.exit_stage != want.exit_stage ||
        got.confidence != want.confidence ||
        got.probabilities != want.probabilities || !(got.ops == want.ops)) {
      row.identical_to_offline = false;
    }
  }
  const cdl::serve::SloSummary slo = engine.slo().summary(0);
  row.submitted = slo.submitted;
  row.completed = slo.completed;
  row.rejected = slo.rejected;
  row.expired = slo.expired;
  row.slo_miss = slo.slo_miss;
  row.mean_batch = slo.mean_batch;
  row.p50_ms = slo.p50_ms;
  row.p95_ms = slo.p95_ms;
  row.p99_ms = slo.p99_ms;
  row.mean_ms = slo.mean_ms;
  row.queue_mean_ms = slo.queue_mean_ms;
  row.batch_mean_ms = slo.batch_mean_ms;
  row.compute_mean_ms = slo.compute_mean_ms;
  row.energy_mean_pj = slo.energy_mean_pj;
  row.energy_total_pj = slo.energy_total_pj;
  row.sustained_ips =
      wall_s > 0.0 ? static_cast<double>(slo.completed) / wall_s : 0.0;
  return row;
}

/// Splices the "serving" section into `path` as the LAST top-level key: an
/// existing serving section is truncated away, otherwise the final "}" is
/// reopened. The file need not exist (a fresh object is written).
void merge_serving_section(const std::string& path,
                           const std::string& serving_json) {
  std::string existing;
  {
    std::ifstream is(path);
    if (is) {
      std::ostringstream buf;
      buf << is.rdbuf();
      existing = buf.str();
    }
  }
  const std::string marker = ",\n  \"serving\":";
  std::string head;
  const std::size_t at = existing.find(marker);
  if (at != std::string::npos) {
    head = existing.substr(0, at);  // replace the previous serving section
  } else {
    const std::size_t close = existing.rfind("\n}");
    if (close != std::string::npos) {
      head = existing.substr(0, close);  // reopen the object
    }
  }
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write " + path);
  if (head.empty()) {
    os << "{\n  \"serving\": " << serving_json << "\n}\n";
  } else {
    os << head << marker << " " << serving_json << "\n}\n";
  }
  if (!os) throw std::runtime_error("write failure on " + path);
}

}  // namespace

int main(int argc, char** argv) {
  cdl::ArgParser args;
  args.add_option("out", "BENCH_throughput.json",
                  "JSON file to merge the serving section into");
  args.add_option("images", "600", "Poisson arrivals per row");
  args.add_option("seed", "42", "workload seed (fixed, as in throughput)");
  args.add_option("rate", "0",
                  "offered load in img/s (0 = 70% of the row's measured "
                  "offline serial throughput)");
  args.add_option("workers", "1", "serving worker threads");
  args.add_option("queue-capacity", "256", "bounded request queue size");
  args.add_option("max-batch", "32", "dynamic batcher size trigger");
  args.add_option("max-delay-us", "2000", "dynamic batcher timeout trigger");
  args.add_option("deadline-ms", "100",
                  "per-request SLO deadline in ms (0 = none)");
  args.add_flag("smoke", "tiny run (few arrivals) for CI wiring checks");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.help("serving").c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help("serving").c_str());
    return 0;
  }

  auto config = cdl::bench::bench_config();
  config.seed = args.get_size("seed");  // fixed workload, as in throughput
  const bool smoke = args.get_flag("smoke");
  const std::size_t images =
      smoke ? std::min<std::size_t>(96, args.get_size("images"))
            : args.get_size("images");
  if (smoke) {
    config.train_n = std::min<std::size_t>(config.train_n, 1000);
    config.test_n = std::min<std::size_t>(config.test_n, 400);
    config.val_n = std::min<std::size_t>(config.val_n, 300);
  }

  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Serving: Poisson open-loop load vs the engine",
                           config, data);

  cdl::serve::EngineConfig engine_config;
  engine_config.queue_capacity = args.get_size("queue-capacity");
  engine_config.workers = std::max<std::size_t>(1, args.get_size("workers"));
  engine_config.batcher.max_batch = args.get_size("max-batch");
  engine_config.batcher.max_delay_ns = args.get_size("max-delay-us") * 1000;
  engine_config.default_deadline_ns =
      static_cast<std::uint64_t>(args.get_double("deadline-ms") * 1e6);

  std::vector<cdl::Tensor> pool_inputs;
  pool_inputs.reserve(data.test.size());
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    pool_inputs.push_back(data.test.image(i));
  }
  // Arrivals cycle through the test set when images > test_n.
  std::vector<cdl::Tensor> inputs;
  inputs.reserve(images);
  for (std::size_t i = 0; i < images; ++i) {
    inputs.push_back(pool_inputs[i % pool_inputs.size()]);
  }

  std::vector<ServingRow> rows;
  cdl::TextTable table({"network", "precision", "offered img/s",
                        "sustained img/s", "completed", "rejected", "expired",
                        "slo miss", "mean batch", "p50 ms", "p95 ms",
                        "p99 ms", "mJ/img"});
  bool all_identical = true;
  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    for (const cdl::StagePrecision prec :
         {cdl::StagePrecision::kFp32, cdl::StagePrecision::kInt8}) {
      // ConditionalNetwork is move-only and the engine takes ownership, so
      // each row re-fetches the trained net (disk cache hit after the first).
      auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                              data.train, config);
      cdl::bench::select_operating_delta(trained.net, data);
      if (prec == cdl::StagePrecision::kInt8) {
        trained.net.set_quantization(cdl::collect_quant_calibration(
            trained.net.baseline(), trained.net.input_shape(),
            data.train.images(), std::min<std::size_t>(512, data.train.size()),
            nullptr));
        trained.net.set_cascade_precision(prec);
      }

      // Offline reference pass: determinism oracle AND the rate calibration
      // (the serving engine cannot beat the raw batch path it wraps).
      const WallClock::time_point t0 = WallClock::now();
      const std::vector<cdl::ClassificationResult> reference =
          trained.net.classify_batch(inputs, nullptr);
      const double offline_s =
          std::chrono::duration<double>(WallClock::now() - t0).count();
      const double offline_ips =
          offline_s > 0.0 ? static_cast<double>(inputs.size()) / offline_s
                          : 1000.0;
      double rate = args.get_double("rate");
      if (rate <= 0.0) rate = 0.70 * offline_ips;

      ServingRow row = serve_row(arch.name, cdl::to_string(prec),
                                 std::move(trained.net), inputs, reference,
                                 rate, config.seed, engine_config);
      all_identical = all_identical && row.identical_to_offline;
      table.add_row({row.network, row.precision,
                     cdl::fmt(row.offered_rate_ips, 1),
                     cdl::fmt(row.sustained_ips, 1),
                     std::to_string(row.completed),
                     std::to_string(row.rejected),
                     std::to_string(row.expired),
                     std::to_string(row.slo_miss),
                     cdl::fmt(row.mean_batch, 2), cdl::fmt(row.p50_ms, 3),
                     cdl::fmt(row.p95_ms, 3), cdl::fmt(row.p99_ms, 3),
                     cdl::fmt(row.energy_mean_pj * 1e-9, 4)});
      rows.push_back(std::move(row));
    }
  }
  std::printf("Serving engine under Poisson load (%zu arrivals/row, "
              "%zu worker(s), max batch %zu, max delay %llu us, deadline "
              "%.1f ms):\n%s",
              images, engine_config.workers, engine_config.batcher.max_batch,
              static_cast<unsigned long long>(
                  engine_config.batcher.max_delay_ns / 1000),
              args.get_double("deadline-ms"), table.to_string().c_str());
  if (!all_identical) {
    std::fprintf(stderr, "\nerror: served results differ from offline "
                         "classify_batch_into -- serving determinism "
                         "contract broken\n");
    return 1;
  }
  std::printf("\nserved results bit-identical to offline inference: yes\n");

  std::ostringstream js;
  js << "{\n    \"images\": " << images
     << ",\n    \"workers\": " << engine_config.workers
     << ",\n    \"queue_capacity\": " << engine_config.queue_capacity
     << ",\n    \"max_batch\": " << engine_config.batcher.max_batch
     << ",\n    \"max_delay_us\": " << engine_config.batcher.max_delay_ns / 1000
     << ",\n    \"deadline_ms\": " << args.get_double("deadline-ms")
     << ",\n    \"seed\": " << config.seed
     << ",\n    \"smoke\": " << (smoke ? "true" : "false")
     << ",\n    \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServingRow& r = rows[i];
    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "      {\"network\": \"%s\", \"precision\": \"%s\", "
        "\"offered_rate_ips\": %.2f, \"submitted\": %llu, "
        "\"completed\": %llu, \"rejected\": %llu, \"expired\": %llu, "
        "\"slo_miss\": %llu, \"sustained_ips\": %.2f, \"mean_batch\": %.3f, "
        "\"latency_ms_p50\": %.3f, \"latency_ms_p95\": %.3f, "
        "\"latency_ms_p99\": %.3f, \"latency_ms_mean\": %.4f, "
        "\"phase_ms_queue_mean\": %.4f, \"phase_ms_batch_mean\": %.4f, "
        "\"phase_ms_compute_mean\": %.4f, "
        "\"energy_pj_mean\": %.6g, \"energy_pj_total\": %.6g, "
        "\"mj_per_image\": %.6g, "
        "\"identical_to_offline\": %s}%s\n",
        r.network.c_str(), r.precision.c_str(), r.offered_rate_ips,
        static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.expired),
        static_cast<unsigned long long>(r.slo_miss), r.sustained_ips,
        r.mean_batch, r.p50_ms, r.p95_ms, r.p99_ms, r.mean_ms,
        r.queue_mean_ms, r.batch_mean_ms, r.compute_mean_ms,
        r.energy_mean_pj, r.energy_total_pj, r.energy_mean_pj * 1e-9,
        r.identical_to_offline ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
    js << buf;
  }
  js << "    ],\n    \"energy\": [\n";
  // Per-network fp32-vs-int8 served energy (rows come in fp32/int8 pairs).
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const ServingRow& f = rows[i];
    const ServingRow& q = rows[i + 1];
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "      {\"network\": \"%s\", \"fp32_mj_per_image\": %.6g, "
        "\"int8_mj_per_image\": %.6g, \"int8_vs_fp32\": %.4f}%s\n",
        f.network.c_str(), f.energy_mean_pj * 1e-9, q.energy_mean_pj * 1e-9,
        f.energy_mean_pj > 0.0 ? q.energy_mean_pj / f.energy_mean_pj : 0.0,
        i + 2 < rows.size() ? "," : "");
    js << buf;
  }
  js << "    ]\n  }";

  const std::string out_path = args.get("out");
  try {
    merge_serving_section(out_path, js.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("[bench] serving numbers merged into %s\n", out_path.c_str());
  return 0;
}
