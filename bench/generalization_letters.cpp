// Generalization experiment (extension): the full CDL pipeline on a second
// task — ten capital letters rendered by the same stroke engine. The paper
// claims the methodology "can be applied to all image recognition
// applications"; here nothing about the pipeline changes except the data.
#include <cstdio>

#include "bench_common.h"
#include "cdl/cdl_trainer.h"
#include "cdl/delta_selection.h"
#include "data/synthetic_letters.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

namespace {
cdl::SyntheticLettersConfig letters_config(std::uint64_t seed) {
  cdl::SyntheticLettersConfig config;
  config.seed = seed;
  return config;
}
}  // namespace


int main() {
  const auto config = cdl::bench::bench_config();
  std::printf("=== Generalization: CDL on synthetic letters (A C E F H J L P T U) ===\n");
  std::printf("workload: %zu train / %zu val / %zu test, seed %llu\n\n",
              config.train_n, config.val_n, config.test_n,
              static_cast<unsigned long long>(config.seed));

  const cdl::SyntheticLetters gen(
      letters_config(config.seed));
  const cdl::Dataset train = gen.generate(config.train_n, 0);
  const cdl::Dataset val = gen.generate(config.val_n, 1ULL << 33);
  const cdl::Dataset test = gen.generate(config.test_n, 1ULL << 32);

  // Same architecture and training recipe as the digit experiments.
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  cdl::Rng rng(config.seed);
  cdl::Network baseline = arch.make_baseline();
  baseline.init(rng);
  std::printf("[bench] training %s baseline on letters...\n", arch.name.c_str());
  cdl::train_baseline(baseline, train, cdl::BaselineTrainConfig{}, rng);

  cdl::ConditionalNetwork net(std::move(baseline), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
  }
  cdl::CdlTrainConfig cfg;
  cfg.prune_by_gain = false;
  cdl::train_cdl(net, train, cfg, rng);
  const cdl::DeltaSelection sel = cdl::select_delta(net, val);
  std::printf("[bench] delta selected on validation: %.2f\n",
              static_cast<double>(sel.best.delta));

  const cdl::EnergyModel energy;
  const cdl::Evaluation base = cdl::evaluate_baseline(net, test, energy);
  const cdl::Evaluation cond = cdl::evaluate_cdl(net, test, energy);

  cdl::TextTable table({"metric", "baseline DLN", "CDLN"});
  table.add_row({"accuracy", cdl::fmt_percent(base.accuracy()),
                 cdl::fmt_percent(cond.accuracy())});
  table.add_row({"avg ops/input", cdl::fmt(base.avg_ops(), 0),
                 cdl::fmt(cond.avg_ops(), 0)});
  table.add_row({"OPS improvement", "1.00x",
                 cdl::fmt(base.avg_ops() / cond.avg_ops(), 2) + "x"});
  std::printf("%s", table.to_string().c_str());

  cdl::TextTable per_class({"letter", "accuracy", "FC exit"});
  for (std::size_t l = 0; l < cdl::SyntheticLetters::kNumClasses; ++l) {
    const cdl::ClassStats& c = cond.per_class[l];
    per_class.add_row(
        {cdl::SyntheticLetters::class_name(l), cdl::fmt_percent(c.accuracy()),
         c.total == 0 ? "n/a"
                      : cdl::fmt_percent(
                            static_cast<double>(c.exit_counts.back()) /
                            static_cast<double>(c.total))});
  }
  std::printf("\n%s", per_class.to_string().c_str());
  std::printf("\nexpected shape: the unchanged pipeline delivers the same "
              "~2x conditional savings with accuracy at or above the "
              "baseline on a different recognition task\n");
  return 0;
}
