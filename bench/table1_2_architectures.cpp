// Tables I & II: the two baseline DLN architectures and their CDL variants,
// with the per-layer operation/energy inventory the paper's energy analysis
// builds on. Op counts are structural, so no training is needed here.
#include <cstdio>

#include "bench_common.h"
#include "energy/report.h"

int main() {
  const cdl::EnergyModel energy;

  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    cdl::Network baseline = arch.make_baseline();
    const cdl::NetworkProfile base_profile =
        cdl::profile_network(baseline, arch.input_shape, energy);
    std::printf("%s\n", cdl::format_profile(
                            base_profile, "Baseline DLN (" + arch.name + "): " +
                                              baseline.summary())
                            .c_str());

    cdl::Rng rng(1);
    cdl::ConditionalNetwork cdln(std::move(baseline), arch.input_shape);
    for (std::size_t prefix : arch.default_stages) {
      cdln.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
    }
    const cdl::NetworkProfile cdl_profile = cdl::profile_cdln(cdln, energy);
    std::printf("%s\n",
                cdl::format_profile(cdl_profile,
                                    "CDLN (" + arch.name +
                                        "), worst case with all stages active")
                    .c_str());

    const double overhead =
        static_cast<double>(cdl_profile.total_ops.total_compute()) /
            static_cast<double>(base_profile.total_ops.total_compute()) -
        1.0;
    std::printf("linear-classifier overhead on the hardest input: +%.1f %%\n\n",
                100.0 * overhead);
  }
  return 0;
}
