// google-benchmark micro-benchmarks of the compute kernels underlying the
// CDLN: convolution, pooling, dense layers, linear-classifier inference and
// full staged classification.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "cdl/architectures.h"
#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/synthetic_mnist.h"
#include "nn/act_kernels.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/gemm.h"
#include "nn/pool2d.h"
#include "nn/qconv_direct.h"
#include "nn/qgemm.h"

namespace {

cdl::Tensor random_image(const cdl::Shape& shape, std::uint64_t seed) {
  cdl::Rng rng(seed);
  cdl::Tensor x(shape);
  for (float& v : x.values()) v = rng.uniform(0.0F, 1.0F);
  return x;
}

std::vector<float> random_matrix(std::size_t numel, std::uint64_t seed) {
  cdl::Rng rng(seed);
  std::vector<float> m(numel);
  for (float& v : m) v = rng.uniform(-1.0F, 1.0F);
  return m;
}

/// MACs processed per iteration for a square GEMM benchmark.
std::int64_t gemm_items(const benchmark::State& state, std::size_t n) {
  return static_cast<std::int64_t>(state.iterations()) *
         static_cast<std::int64_t>(n * n * n);
}

void BM_SgemmSeedBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cdl::GemmDims dims{n, n, n};
  const std::vector<float> a = random_matrix(n * n, 1);
  const std::vector<float> b = random_matrix(n * n, 2);
  std::vector<float> c(n * n, 0.0F);
  for (auto _ : state) {
    cdl::sgemm_blocked_reference(dims, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(gemm_items(state, n));
}
BENCHMARK(BM_SgemmSeedBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_SgemmPacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cdl::GemmDims dims{n, n, n};
  const std::vector<float> a = random_matrix(n * n, 1);
  const std::vector<float> b = random_matrix(n * n, 2);
  std::vector<float> c(n * n, 0.0F);
  for (auto _ : state) {
    cdl::sgemm(dims, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(gemm_items(state, n));
}
BENCHMARK(BM_SgemmPacked)->Arg(64)->Arg(128)->Arg(256);

void BM_SgemmPackedParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  cdl::ThreadPool pool(workers);
  const cdl::GemmDims dims{n, n, n};
  const std::vector<float> a = random_matrix(n * n, 1);
  const std::vector<float> b = random_matrix(n * n, 2);
  std::vector<float> c(n * n, 0.0F);
  for (auto _ : state) {
    cdl::sgemm_parallel(dims, a.data(), b.data(), c.data(), pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(gemm_items(state, n));
}
BENCHMARK(BM_SgemmPackedParallel)->Args({256, 2})->Args({256, 4});

std::vector<std::int8_t> random_weights_s8(std::size_t numel,
                                           std::uint64_t seed) {
  cdl::Rng rng(seed);
  std::vector<std::int8_t> w(numel);
  const std::size_t span = 2 * static_cast<std::size_t>(cdl::kQgemmWeightMax);
  for (std::int8_t& v : w) {
    v = static_cast<std::int8_t>(static_cast<std::int32_t>(rng.index(span + 1)) -
                                 cdl::kQgemmWeightMax);
  }
  return w;
}

std::vector<std::uint8_t> random_activations_u8(std::size_t numel,
                                                std::uint64_t seed) {
  cdl::Rng rng(seed);
  std::vector<std::uint8_t> b(numel);
  for (std::uint8_t& v : b) v = static_cast<std::uint8_t>(rng.index(256));
  return b;
}

/// Int8 packed GEMM over pre-packed operands — directly comparable with
/// BM_SgemmPacked rows (same MACs/iteration), so the items/sec ratio is the
/// int8-vs-fp32 kernel speedup the acceptance criterion tracks.
void BM_QgemmPacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cdl::QgemmDims dims{n, n, n};
  const std::vector<std::int8_t> a = random_weights_s8(n * n, 1);
  const std::vector<std::uint8_t> b = random_activations_u8(n * n, 2);
  std::vector<std::int8_t> pa(cdl::qgemm_packed_a_bytes(n, n));
  std::vector<std::uint8_t> pb(cdl::qgemm_packed_b_bytes(n, n));
  cdl::qgemm_pack_a(n, n, a.data(), pa.data());
  cdl::qgemm_pack_b(n, n, b.data(), pb.data());
  std::vector<std::int32_t> c(n * n, 0);
  for (auto _ : state) {
    cdl::qgemm_packed(dims, pa.data(), pb.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(cdl::to_string(cdl::qgemm_tier()));
  state.SetItemsProcessed(gemm_items(state, n));
}
BENCHMARK(BM_QgemmPacked)->Arg(64)->Arg(128)->Arg(256);

void BM_QgemmPackedReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const cdl::QgemmDims dims{n, n, n};
  const std::vector<std::int8_t> a = random_weights_s8(n * n, 1);
  const std::vector<std::uint8_t> b = random_activations_u8(n * n, 2);
  std::vector<std::int8_t> pa(cdl::qgemm_packed_a_bytes(n, n));
  std::vector<std::uint8_t> pb(cdl::qgemm_packed_b_bytes(n, n));
  cdl::qgemm_pack_a(n, n, a.data(), pa.data());
  cdl::qgemm_pack_b(n, n, b.data(), pb.data());
  std::vector<std::int32_t> c(n * n, 0);
  for (auto _ : state) {
    cdl::qgemm_packed_reference(dims, pa.data(), pb.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(gemm_items(state, n));
}
BENCHMARK(BM_QgemmPackedReference)->Arg(256);

void BM_QgemmPackedParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  cdl::ThreadPool pool(workers);
  const cdl::QgemmDims dims{n, n, n};
  const std::vector<std::int8_t> a = random_weights_s8(n * n, 1);
  const std::vector<std::uint8_t> b = random_activations_u8(n * n, 2);
  std::vector<std::int8_t> pa(cdl::qgemm_packed_a_bytes(n, n));
  std::vector<std::uint8_t> pb(cdl::qgemm_packed_b_bytes(n, n));
  cdl::qgemm_pack_a(n, n, a.data(), pa.data());
  cdl::qgemm_pack_b(n, n, b.data(), pb.data());
  std::vector<std::int32_t> c(n * n, 0);
  for (auto _ : state) {
    cdl::qgemm_packed(dims, pa.data(), pb.data(), c.data(), &pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(gemm_items(state, n));
}
BENCHMARK(BM_QgemmPackedParallel)->Args({256, 2})->Args({256, 4});

/// Int8 conv lowering (byte im2col + qgemm), the fused-triple front half —
/// comparable with the BM_Conv2DForward* rows at the same shape.
void BM_QConv2DForward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto maps = static_cast<std::size_t>(state.range(1));
  const auto kernel = static_cast<std::size_t>(state.range(2));
  const std::size_t h = 28, w = 28;
  const std::size_t oh = h - kernel + 1, ow = w - kernel + 1;
  const std::size_t pixels = oh * ow;
  const std::size_t k = channels * kernel * kernel;
  const std::vector<std::int8_t> weights = random_weights_s8(maps * k, 1);
  std::vector<std::int8_t> pa(cdl::qgemm_packed_a_bytes(maps, k));
  cdl::qgemm_pack_a(maps, k, weights.data(), pa.data());
  const std::vector<std::uint8_t> image =
      random_activations_u8(channels * h * w, 2);
  std::vector<std::uint8_t> pb(cdl::qgemm_packed_b_bytes(k, pixels));
  const std::size_t panels = (pixels + cdl::kQgemmNr - 1) / cdl::kQgemmNr;
  std::vector<std::int32_t> c(maps * pixels, 0);
  const cdl::QgemmDims dims{maps, k, pixels};
  for (auto _ : state) {
    cdl::qgemm_pack_b_im2col(image.data(), 1, channels, h, w, kernel,
                             pb.data(), 0, panels);
    cdl::qgemm_packed(dims, pa.data(), pb.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(maps * k * pixels));
}
BENCHMARK(BM_QConv2DForward)->Args({1, 6, 5})->Args({1, 3, 3})->Args({6, 12, 5});

void BM_Conv2DForward(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto maps = static_cast<std::size_t>(state.range(1));
  const auto kernel = static_cast<std::size_t>(state.range(2));
  cdl::Rng rng(1);
  cdl::Conv2D conv(channels, maps, kernel);
  conv.init(rng);
  const cdl::Tensor x = random_image(cdl::Shape{channels, 28, 28}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(conv.forward_ops(x.shape()).macs));
}
BENCHMARK(BM_Conv2DForward)->Args({1, 6, 5})->Args({1, 3, 3})->Args({6, 12, 5});

void BM_Conv2DForwardIm2col(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto maps = static_cast<std::size_t>(state.range(1));
  const auto kernel = static_cast<std::size_t>(state.range(2));
  cdl::Rng rng(1);
  cdl::Conv2D conv(channels, maps, kernel, cdl::ConvAlgo::kIm2col);
  conv.init(rng);
  const cdl::Tensor x = random_image(cdl::Shape{channels, 28, 28}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(conv.forward_ops(x.shape()).macs));
}
BENCHMARK(BM_Conv2DForwardIm2col)
    ->Args({1, 6, 5})
    ->Args({1, 3, 3})
    ->Args({6, 12, 5});

/// Direct (im2col-free) int8 conv — same shapes as BM_QConv2DForward, so the
/// items/sec ratio is the stage-0 lowering speedup the direct kernel buys.
void BM_QConvDirect(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  const auto maps = static_cast<std::size_t>(state.range(1));
  const auto kernel = static_cast<std::size_t>(state.range(2));
  const std::size_t h = 28, w = 28;
  const std::size_t oh = h - kernel + 1, ow = w - kernel + 1;
  const std::size_t k = channels * kernel * kernel;
  const std::vector<std::int8_t> weights = random_weights_s8(maps * k, 1);
  std::vector<std::uint8_t> image =
      random_activations_u8(channels * h * w, 2);
  image.resize(image.size() + cdl::kQconvSlackBytes);  // kernel read slack
  std::vector<std::int32_t> c(maps * oh * ow, 0);
  for (auto _ : state) {
    cdl::qconv_direct(image.data(), channels, h, w, kernel, weights.data(),
                      maps, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(cdl::qconv_dispatch_tier());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(maps * k * oh * ow));
}
BENCHMARK(BM_QConvDirect)->Args({1, 6, 5})->Args({1, 3, 3})->Args({2, 12, 3});

/// Vectorized activation maps (items = elements mapped per second).
void BM_ActivationSigmoidMap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> in(n);
  cdl::Rng rng(12);
  for (float& v : in) v = rng.uniform(-8.0F, 8.0F);
  std::vector<float> out(n);
  for (auto _ : state) {
    cdl::sigmoid_map(in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(cdl::act_dispatch_tier());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ActivationSigmoidMap)->Arg(4096)->Arg(65536);

void BM_ActivationTanhMap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> in(n);
  cdl::Rng rng(13);
  for (float& v : in) v = rng.uniform(-8.0F, 8.0F);
  std::vector<float> out(n);
  for (auto _ : state) {
    cdl::tanh_map(in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(cdl::act_dispatch_tier());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ActivationTanhMap)->Arg(65536);

/// The std::exp sigmoid the approximation replaced — the items/sec ratio
/// against BM_ActivationSigmoidMap is the activation-kernel speedup.
void BM_ActivationSigmoidExpReference(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> in(n);
  cdl::Rng rng(14);
  for (float& v : in) v = rng.uniform(-8.0F, 8.0F);
  std::vector<float> out(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = 1.0F / (1.0F + std::exp(-in[i]));
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ActivationSigmoidExpReference)->Arg(65536);

/// Fused int8 dequantize + sigmoid plane epilogue.
void BM_DequantSigmoidPlane(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> in(n);
  cdl::Rng rng(15);
  for (std::int32_t& v : in) {
    v = static_cast<std::int32_t>(rng.index(200000)) - 100000;
  }
  std::vector<float> out(n);
  for (auto _ : state) {
    cdl::dequant_sigmoid_plane(in.data(), n, 1.27e-4F, -0.31F, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(cdl::act_dispatch_tier());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DequantSigmoidPlane)->Arg(4096);

void BM_MaxPoolForward(benchmark::State& state) {
  cdl::Pool2D pool(2);
  const cdl::Tensor x = random_image(cdl::Shape{6, 24, 24}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.forward(x));
  }
}
BENCHMARK(BM_MaxPoolForward);

void BM_DenseForward(benchmark::State& state) {
  const auto in = static_cast<std::size_t>(state.range(0));
  cdl::Rng rng(4);
  cdl::Dense dense(in, 10);
  dense.init(rng);
  const cdl::Tensor x = random_image(cdl::Shape{in}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.forward(x));
  }
}
BENCHMARK(BM_DenseForward)->Arg(192)->Arg(507)->Arg(864);

void BM_LinearClassifierInference(benchmark::State& state) {
  const auto in = static_cast<std::size_t>(state.range(0));
  cdl::Rng rng(6);
  cdl::LinearClassifier lc(in, 10);
  lc.init(rng);
  const cdl::Tensor x = random_image(cdl::Shape{in}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lc.probabilities(x));
  }
}
BENCHMARK(BM_LinearClassifierInference)->Arg(507)->Arg(150);

void BM_BaselineForward(benchmark::State& state) {
  const cdl::CdlArchitecture arch =
      state.range(0) == 0 ? cdl::mnist_2c() : cdl::mnist_3c();
  cdl::Rng rng(8);
  cdl::Network net = arch.make_baseline();
  net.init(rng);
  const cdl::Tensor x = random_image(arch.input_shape, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
}
BENCHMARK(BM_BaselineForward)->Arg(0)->Arg(1);

void BM_CdlnClassify(benchmark::State& state) {
  const cdl::CdlArchitecture arch =
      state.range(0) == 0 ? cdl::mnist_2c() : cdl::mnist_3c();
  cdl::Rng rng(10);
  cdl::Network base = arch.make_baseline();
  base.init(rng);
  cdl::ConditionalNetwork net(std::move(base), arch.input_shape);
  for (std::size_t prefix : arch.default_stages) {
    net.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
  }
  net.set_delta(0.5F);
  const cdl::Tensor x = random_image(arch.input_shape, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.classify(x));
  }
}
BENCHMARK(BM_CdlnClassify)->Arg(0)->Arg(1);

void BM_SyntheticRender(benchmark::State& state) {
  cdl::SyntheticMnist gen;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.render(i % 10, i));
    ++i;
  }
}
BENCHMARK(BM_SyntheticRender);

}  // namespace
