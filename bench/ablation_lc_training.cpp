// Ablation: linear-classifier training rule. The paper trains stage
// classifiers with the least-mean-square rule; this bench compares LMS
// against softmax-cross-entropy stages at matched delta.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Ablation: LMS vs softmax-cross-entropy stage classifiers (MNIST_3C)",
      config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();

  cdl::TextTable table(
      {"rule", "delta", "normalized #OPS", "accuracy", "FC exit"});
  for (const cdl::LcTrainingRule rule :
       {cdl::LcTrainingRule::kLms, cdl::LcTrainingRule::kSoftmaxXent}) {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config,
                                            /*prune=*/false, rule);
    const double base_ops = static_cast<double>(
        trained.net.baseline_forward_ops().total_compute());
    for (float delta : {0.4F, 0.5F, 0.6F}) {
      trained.net.set_delta(delta);
      const cdl::Evaluation eval =
          cdl::evaluate_cdl(trained.net, data.test, energy);
      table.add_row({cdl::to_string(rule), cdl::fmt(delta, 2),
                     cdl::fmt(eval.avg_ops() / base_ops, 3),
                     cdl::fmt_percent(eval.accuracy()),
                     cdl::fmt_percent(
                         eval.exit_fraction(trained.net.num_stages()))});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: both rules produce working cascades; LMS "
              "stages emit per-label confidences (the paper's design), "
              "softmax stages emit a normalized distribution so the same "
              "delta terminates less often\n");
  return 0;
}
