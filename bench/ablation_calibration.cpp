// Ablation: confidence calibration of the CDLN (extension). Measures the
// expected calibration error (ECE) of the decisions the cascade actually
// emits, per delta, and fits a softmax temperature for the FC stage on the
// validation split — quantifying how trustworthy the activation module's
// confidences are as a difficulty signal.
#include <cstdio>

#include "bench_common.h"
#include "cdl/calibration.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Ablation: confidence calibration (MNIST_3C)",
                           config, data);

  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);

  cdl::TextTable table(
      {"delta", "accuracy", "mean confidence", "ECE (10 bins)"});
  for (float delta : {0.3F, 0.5F, 0.7F}) {
    trained.net.set_delta(delta);
    const cdl::CalibrationReport report =
        cdl::measure_calibration(trained.net, data.test);
    table.add_row({cdl::fmt(delta, 2), cdl::fmt_percent(report.accuracy),
                   cdl::fmt(report.mean_confidence, 3),
                   cdl::fmt(report.ece, 4)});
  }
  std::printf("%s", table.to_string().c_str());

  const float t = cdl::fit_temperature(trained.net, data.validation);
  const double nll_raw = cdl::baseline_nll(trained.net, data.test, 1.0F);
  const double nll_cal = cdl::baseline_nll(trained.net, data.test, t);
  std::printf("\nFC temperature fitted on validation: T = %.3f\n",
              static_cast<double>(t));
  std::printf("FC test NLL: %.4f raw -> %.4f calibrated\n", nll_raw, nll_cal);
  std::printf("\nexpected shape: ECE stays small at the operating delta "
              "(confidences are usable as a difficulty oracle); temperature "
              "fitting does not hurt NLL\n");
  return 0;
}
