// Voltage scaling study (extension): supply voltage is the other classic
// energy lever next to conditional execution, and the two interact — energy
// falls as V^2 but SRAM weight cells start flipping near Vmin, corrupting
// the very confidences the CDLN routes on. This harness sweeps the supply,
// injects the voltage-appropriate bit-error rate into the weights, and
// reports energy per inference and accuracy — locating the minimum-energy
// operating point under an accuracy constraint.
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "hw/fault_injection.h"
#include "energy/report.h"
#include "hw/voltage_scaling.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Voltage scaling: energy vs SRAM reliability (MNIST_3C CDLN)", config,
      data);

  const cdl::VoltageScalingModel vscale;
  cdl::TextTable table({"supply", "BER", "CDLN accuracy", "energy/inference",
                        "vs nominal"});

  double nominal_energy = 0.0;
  double best_energy = 1e300;
  double best_v = 1.0;
  const double accuracy_floor = 0.95;

  for (double v : {1.00, 0.90, 0.80, 0.70, 0.65, 0.60, 0.55}) {
    // Fresh trained weights per row, then voltage-appropriate corruption.
    const cdl::CdlArchitecture arch = cdl::mnist_3c();
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    trained.net.set_delta(0.5F);

    const double ber = vscale.bit_error_rate_at(v);
    cdl::Rng fault_rng(config.seed + 1234);
    cdl::inject_faults(trained.net, cdl::FaultConfig{.bit_error_rate = ber},
                       fault_rng);

    const cdl::EnergyModel energy = vscale.model_at(v);
    const cdl::Evaluation eval =
        cdl::evaluate_cdl(trained.net, data.test, energy);
    if (v == 1.00) nominal_energy = eval.avg_energy_pj();
    if (eval.accuracy() >= accuracy_floor &&
        eval.avg_energy_pj() < best_energy) {
      best_energy = eval.avg_energy_pj();
      best_v = v;
    }

    char ber_label[32];
    std::snprintf(ber_label, sizeof(ber_label), "%.1e", ber);
    table.add_row({cdl::fmt(v, 2) + " V", ber_label,
                   cdl::fmt_percent(eval.accuracy()),
                   cdl::format_energy(eval.avg_energy_pj()),
                   cdl::fmt(eval.avg_energy_pj() / nominal_energy, 2) + "x"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nminimum-energy point with accuracy >= %.0f %%: %.2f V "
              "(%.2fx of nominal energy)\n",
              100.0 * accuracy_floor, best_v, best_energy / nominal_energy);
  std::printf("expected shape: energy falls ~V^2 until rising BER collapses "
              "accuracy; conditional execution and voltage scaling compose — "
              "their savings multiply up to the reliability knee\n");
  return 0;
}
