// Systolic-array mapping analysis (extension): maps both paper architectures
// onto an output-stationary MAC array, reporting per-layer tiles/cycles/
// utilization and the CDLN's average-exit latency across array geometries —
// the accelerator-design view of conditional execution.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "hw/systolic_mapping.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Systolic mapping: CDLN on an output-stationary MAC array", config,
      data);

  // Per-layer mapping of both baselines on the default 8x8 array.
  const cdl::SystolicMapper mapper;
  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    const cdl::Network baseline = arch.make_baseline();
    const cdl::MappingReport report =
        mapper.map_network(baseline, arch.input_shape);
    cdl::TextTable table({"layer", "tiles", "cycles", "utilization"});
    for (const cdl::LayerMapping& m : report.layers) {
      table.add_row({m.layer, std::to_string(m.tiles),
                     std::to_string(m.cycles),
                     m.macs == 0 ? "-" : cdl::fmt_percent(m.utilization)});
    }
    std::printf("%s on 8x8 array: %llu cycles (%.1f us), MAC utilization %s\n%s\n",
                arch.name.c_str(),
                static_cast<unsigned long long>(report.total_cycles),
                report.microseconds,
                cdl::fmt_percent(report.mac_utilization).c_str(),
                table.to_string().c_str());
  }

  // CDLN average-exit latency vs array geometry (MNIST_3C).
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  trained.net.set_delta(0.5F);
  const cdl::Evaluation eval =
      cdl::evaluate_cdl(trained.net, data.test, cdl::EnergyModel{});

  cdl::TextTable sweep({"array", "baseline cycles", "CDLN avg cycles",
                        "speedup", "MAC utilization"});
  for (const auto& [rows, cols] :
       {std::pair<std::size_t, std::size_t>{4, 4}, {8, 8}, {16, 16}, {8, 32}}) {
    cdl::SystolicConfig c;
    c.rows = rows;
    c.cols = cols;
    const cdl::SystolicMapper m(c);
    const cdl::MappingReport base =
        m.map_network(trained.net.baseline(), arch.input_shape);
    double avg = 0.0;
    for (std::size_t s = 0; s <= trained.net.num_stages(); ++s) {
      avg += eval.exit_fraction(s) *
             static_cast<double>(m.exit_cycles(trained.net, s));
    }
    sweep.add_row({std::to_string(rows) + "x" + std::to_string(cols),
                   std::to_string(base.total_cycles), cdl::fmt(avg, 0),
                   cdl::fmt(static_cast<double>(base.total_cycles) / avg, 2) + "x",
                   cdl::fmt_percent(base.mac_utilization)});
  }
  std::printf("%s", sweep.to_string().c_str());
  std::printf("\nexpected shape: cycle savings shrink as the array widens — "
              "and can invert on wide geometries: the linear classifiers are "
              "batch-1 dense layers (fill/drain-dominated, single active "
              "column) while the convolutions they skip parallelize well. "
              "CDL's op/energy savings are substrate-independent, but its "
              "*latency* benefit requires compute-bound early stages — an "
              "accelerator-design caveat the paper's op-count analysis "
              "doesn't surface\n");
  return 0;
}
