// Table III: classification accuracy of the baseline DLNs vs their CDLNs
// (MNIST_2C and MNIST_3C) over the test set.
//
// Paper reference: 6-layer 98.04 % -> 99.05 % (MNIST_2C); 8-layer 97.55 %
// -> 98.92 % (MNIST_3C). The reproduction claim is the *shape*: CDLN
// accuracy >= baseline accuracy for both architectures.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Table III: accuracy, baseline vs CDLN", config, data);

  const cdl::EnergyModel energy;
  cdl::ThreadPool* pool = cdl::bench::bench_pool(config);
  cdl::TextTable table({"network", "baseline", "CDLN", "improvement"});

  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    cdl::bench::select_operating_delta(trained.net, data);

    const cdl::Evaluation base =
        cdl::evaluate_baseline(trained.net, data.test, energy, pool);
    const cdl::Evaluation cond =
        cdl::evaluate_cdl(trained.net, data.test, energy, pool);

    const std::string label =
        (arch.name == "MNIST_2C" ? "6-layer" : "8-layer") + std::string(" (") +
        arch.name + ")";
    table.add_row({label, cdl::fmt_percent(base.accuracy()),
                   cdl::fmt_percent(cond.accuracy()),
                   (cond.accuracy() >= base.accuracy() ? "+" : "") +
                       cdl::fmt(100.0 * (cond.accuracy() - base.accuracy()), 2) +
                       " pp"});
  }
  std::printf("%s", table.to_string().c_str());
  cdl::bench::maybe_export_csv("table3_accuracy", table);
  std::printf("\npaper: 6-layer 98.04 %% -> 99.05 %%; 8-layer 97.55 %% -> 98.92 %%\n");
  return 0;
}
