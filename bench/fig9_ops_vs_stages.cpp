// Fig. 9: normalized #OPS of the 8-layer CDLN as output stages are added one
// at a time, with the fraction of inputs passed to the final FC layer.
//
// Paper reference: the fraction reaching FC drops 42 % -> 5 % with two
// stages but only to 3 % with a third; #OPS is U-shaped with the break-even
// (lowest #OPS, ~0.45 of baseline) at two stages — the reason Algorithm 1's
// gain test rejects O3.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Fig. 9: normalized #OPS vs number of stages (MNIST_3C)",
                           config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();

  cdl::TextTable table({"configuration", "normalized #OPS", "reaching FC"});
  table.add_row({"baseline (FC only)", "1.000", "100.00 %"});

  // Fixed operating delta chosen on the default CDLN (see fig7 harness).
  float delta = 0.5F;
  {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    delta = cdl::bench::select_operating_delta(trained.net, data);
  }

  double best_ops = 1.0;
  std::string best_label = "baseline";
  for (std::size_t count = 1; count <= arch.candidate_stages.size(); ++count) {
    const std::vector<std::size_t> stages(arch.candidate_stages.begin(),
                                          arch.candidate_stages.begin() +
                                              static_cast<std::ptrdiff_t>(count));
    auto trained = cdl::bench::trained_cdln(arch, stages, data.train, config,
                                            /*prune=*/false);
    trained.net.set_delta(delta);
    const cdl::Evaluation eval = cdl::evaluate_cdl(
        trained.net, data.test, energy, cdl::bench::bench_pool(config));
    const double base_ops = static_cast<double>(
        trained.net.baseline_forward_ops().total_compute());
    const double norm_ops = eval.avg_ops() / base_ops;

    std::string label;
    for (std::size_t s = 0; s < count; ++s) {
      label += "O" + std::to_string(s + 1) + "-";
    }
    label += "FC";
    if (norm_ops < best_ops) {
      best_ops = norm_ops;
      best_label = label;
    }
    table.add_row({label, cdl::fmt(norm_ops, 3),
                   cdl::fmt_percent(eval.exit_fraction(trained.net.num_stages()))});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nbreak-even configuration: %s (%.3f of baseline #OPS)\n",
              best_label.c_str(), best_ops);
  std::printf("paper: FC fraction 42 %% -> 5 %% -> 3 %%; break-even ~0.45 at "
              "O1-O2-FC, #OPS rises again with O3\n");
  return 0;
}
