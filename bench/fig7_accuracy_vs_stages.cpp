// Fig. 7: accuracy of the 8-layer CDLN as output layers are added one at a
// time (O1-FC, O1-O2-FC, O1-O2-O3-FC), relative to the baseline.
//
// Paper reference: baseline 97.55 %; +O1 97.65 %; all three classifiers
// 98.92 % — accuracy improves monotonically with the number of stages, and
// the fraction of inputs misclassified by the final layer decreases.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Fig. 7: accuracy vs number of output stages (MNIST_3C)",
                           config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();

  cdl::TextTable table({"configuration", "accuracy", "normalized accuracy",
                        "FC exit fraction", "FC error share"});

  // The operating delta is chosen once, on the paper's default CDLN, and
  // held fixed across all stage-count variants so they are comparable.
  float delta = 0.5F;
  double base_accuracy = 0.0;
  {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    delta = cdl::bench::select_operating_delta(trained.net, data);
    const cdl::Evaluation base =
        cdl::evaluate_baseline(trained.net, data.test, energy);
    base_accuracy = base.accuracy();
    table.add_row({"baseline (FC only)", cdl::fmt_percent(base_accuracy),
                   "1.000", "100.00 %",
                   cdl::fmt_percent(1.0 - base_accuracy)});
  }

  // Grow the stage set one classifier at a time: O1, then O1+O2, then all.
  for (std::size_t count = 1; count <= arch.candidate_stages.size(); ++count) {
    const std::vector<std::size_t> stages(arch.candidate_stages.begin(),
                                          arch.candidate_stages.begin() +
                                              static_cast<std::ptrdiff_t>(count));
    auto trained = cdl::bench::trained_cdln(arch, stages, data.train, config,
                                            /*prune=*/false);
    trained.net.set_delta(delta);
    const cdl::Evaluation eval = cdl::evaluate_cdl(trained.net, data.test, energy);

    std::string label;
    for (std::size_t s = 0; s < count; ++s) {
      label += "O" + std::to_string(s + 1) + "-";
    }
    label += "FC";
    // The paper's corroborating observation: the share of all inputs that
    // the final layer misclassifies shrinks as stages are added.
    table.add_row({label, cdl::fmt_percent(eval.accuracy()),
                   cdl::fmt(eval.accuracy() / base_accuracy, 3),
                   cdl::fmt_percent(eval.exit_fraction(trained.net.num_stages())),
                   cdl::fmt_percent(
                       eval.stage_error_share(trained.net.num_stages()))});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\npaper: 97.55 %% baseline -> 97.65 %% (O1-FC) -> 98.92 %% "
              "(O1-O2-O3-FC); FC misclassification fraction decreases\n");
  return 0;
}
