// Fig. 6: normalized energy benefit of the CDLNs with respect to the
// baseline, per digit, under the 45 nm op-level energy model.
//
// Paper reference: average 1.71x (MNIST_2C) and 1.84x (MNIST_3C); energy
// benefits track the OPS benefits of Fig. 5 slightly compressed.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "cdl/quantized_cascade.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Fig. 6: normalized energy benefit per digit",
                           config, data);

  const cdl::EnergyModel energy;
  cdl::TextTable table({"digit", "MNIST_2C", "MNIST_3C"});
  std::vector<std::vector<double>> ratios(2);

  std::vector<cdl::Evaluation> cdl_evals;
  std::vector<cdl::Evaluation> base_evals;
  std::vector<cdl::ConditionalNetwork> nets;
  std::vector<std::string> arch_names;
  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    cdl::bench::select_operating_delta(trained.net, data);
    base_evals.push_back(cdl::evaluate_baseline(trained.net, data.test, energy));
    cdl_evals.push_back(cdl::evaluate_cdl(trained.net, data.test, energy));
    nets.push_back(std::move(trained.net));
    arch_names.emplace_back(arch.name);
  }

  for (std::size_t digit = 0; digit < 10; ++digit) {
    std::vector<std::string> row{std::to_string(digit)};
    for (std::size_t a = 0; a < cdl_evals.size(); ++a) {
      const double ratio = base_evals[a].per_class[digit].avg_energy_pj() /
                           cdl_evals[a].per_class[digit].avg_energy_pj();
      ratios[a].push_back(ratio);
      row.push_back(cdl::fmt(ratio, 2) + "x");
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg_row{"average"};
  for (const auto& r : ratios) {
    double sum = 0.0;
    for (double v : r) sum += v;
    avg_row.push_back(cdl::fmt(sum / static_cast<double>(r.size()), 2) + "x");
  }
  table.add_row(std::move(avg_row));

  std::printf("%s", table.to_string().c_str());
  cdl::bench::maybe_export_csv("fig6_energy", table);
  std::printf("\npaper: average energy benefit 1.71x (MNIST_2C), 1.84x (MNIST_3C)\n");

  // -------------------------------------------------------------------------
  // Int8 extension: the same op-level model with the 8-bit datapath costs
  // (Horowitz ISSCC 2014) on every stage the calibrated cascade can actually
  // run in int8, versus fp32. Stages keep their fp32 cost when they are not
  // quantizable. The cascade average weights each exit's cumulative energy
  // by the fp32 path's exit profile, so the comparison isolates the datapath.
  // -------------------------------------------------------------------------
  const cdl::EnergyModel int8_energy(cdl::EnergyCosts::cmos_45nm_int8());
  const std::size_t calib_n = std::min<std::size_t>(512, data.train.size());
  std::printf("\nper-stage energy, fp32 vs int8 datapath (45 nm op model):\n");
  for (std::size_t a = 0; a < nets.size(); ++a) {
    cdl::ConditionalNetwork& net = nets[a];
    net.set_quantization(cdl::collect_quant_calibration(
        net.baseline(), net.input_shape(), data.train.images(), calib_n));

    cdl::TextTable stages({"stage", "precision", "fp32 nJ", "int8 nJ",
                           "benefit"});
    const std::size_t n_stages = net.num_stages();
    std::vector<double> fp32_cum(n_stages + 1, 0.0);
    std::vector<double> int8_cum(n_stages + 1, 0.0);
    double fp32_run = 0.0;
    double int8_run = 0.0;
    for (std::size_t s = 0; s <= n_stages; ++s) {
      const cdl::OpCount ops =
          s < n_stages ? net.stage_ops(s) : net.final_stage_ops();
      const bool q = net.stage_quantizable(s);
      const double e_fp32 = energy.energy_pj(ops);
      const double e_int8 = q ? int8_energy.energy_pj(ops) : e_fp32;
      fp32_run += e_fp32;
      int8_run += e_int8;
      fp32_cum[s] = fp32_run;
      int8_cum[s] = int8_run;
      const std::string name =
          s < n_stages ? "O" + std::to_string(s + 1) : "FC";
      stages.add_row({name, q ? "int8" : "fp32 (not quantizable)",
                      cdl::fmt(e_fp32 * 1e-3, 2), cdl::fmt(e_int8 * 1e-3, 2),
                      cdl::fmt(e_fp32 / e_int8, 2) + "x"});
    }
    double fp32_avg = 0.0;
    double int8_avg = 0.0;
    for (std::size_t s = 0; s <= n_stages; ++s) {
      const double frac = cdl_evals[a].exit_fraction(s);
      fp32_avg += frac * fp32_cum[s];
      int8_avg += frac * int8_cum[s];
    }
    stages.add_row({"cascade avg (exit-weighted)", "",
                    cdl::fmt(fp32_avg * 1e-3, 2), cdl::fmt(int8_avg * 1e-3, 2),
                    cdl::fmt(fp32_avg / int8_avg, 2) + "x"});
    std::printf("%s:\n%s", arch_names[a].c_str(),
                stages.to_string().c_str());
    cdl::bench::maybe_export_csv("fig6_energy_int8_" + arch_names[a], stages);
  }
  std::printf("\nthe int8 datapath benefit composes with the conditional-exit "
              "benefit above: quantized stages cut MAC energy ~20x, so the "
              "cascade average is dominated by memory traffic and the "
              "fp32-only steps\n");
  return 0;
}
