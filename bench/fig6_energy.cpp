// Fig. 6: normalized energy benefit of the CDLNs with respect to the
// baseline, per digit, under the 45 nm op-level energy model.
//
// Paper reference: average 1.71x (MNIST_2C) and 1.84x (MNIST_3C); energy
// benefits track the OPS benefits of Fig. 5 slightly compressed.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Fig. 6: normalized energy benefit per digit",
                           config, data);

  const cdl::EnergyModel energy;
  cdl::TextTable table({"digit", "MNIST_2C", "MNIST_3C"});
  std::vector<std::vector<double>> ratios(2);

  std::vector<cdl::Evaluation> cdl_evals;
  std::vector<cdl::Evaluation> base_evals;
  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    cdl::bench::select_operating_delta(trained.net, data);
    base_evals.push_back(cdl::evaluate_baseline(trained.net, data.test, energy));
    cdl_evals.push_back(cdl::evaluate_cdl(trained.net, data.test, energy));
  }

  for (std::size_t digit = 0; digit < 10; ++digit) {
    std::vector<std::string> row{std::to_string(digit)};
    for (std::size_t a = 0; a < cdl_evals.size(); ++a) {
      const double ratio = base_evals[a].per_class[digit].avg_energy_pj() /
                           cdl_evals[a].per_class[digit].avg_energy_pj();
      ratios[a].push_back(ratio);
      row.push_back(cdl::fmt(ratio, 2) + "x");
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg_row{"average"};
  for (const auto& r : ratios) {
    double sum = 0.0;
    for (double v : r) sum += v;
    avg_row.push_back(cdl::fmt(sum / static_cast<double>(r.size()), 2) + "x");
  }
  table.add_row(std::move(avg_row));

  std::printf("%s", table.to_string().c_str());
  cdl::bench::maybe_export_csv("fig6_energy", table);
  std::printf("\npaper: average energy benefit 1.71x (MNIST_2C), 1.84x (MNIST_3C)\n");
  return 0;
}
