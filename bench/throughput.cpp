// Throughput harness: measures the packed SGEMM kernel against the seed
// blocked kernel (GFLOP/s, single- and multi-thread) and end-to-end batch
// inference (images/sec, batch-latency percentiles, tracing overhead) for
// both paper CDLNs, serial vs thread-pool, then writes the numbers to a JSON
// file (default BENCH_throughput.json). --trace-out captures one traced
// parallel batch per network as Chrome trace JSON.
//
// The parallel batch path is required to be bit-identical to the serial one;
// this harness re-checks that on the measured batches and fails loudly if the
// guarantee is ever violated.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "cdl/conditional_network.h"
#include "cdl/quantized_cascade.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "eval/table.h"
#include "nn/act_kernels.h"
#include "nn/gemm.h"
#include "nn/qconv_direct.h"
#include "nn/qgemm.h"
#include "obs/energy_meter.h"
#include "obs/exit_profile.h"
#include "obs/layer_profile.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "util/args.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Seconds per call, after one warmup call (which also populates the
/// per-thread packing scratch). Repeats until ~min_seconds accumulate.
double time_per_call(const std::function<void()>& fn, double min_seconds) {
  fn();
  auto start = Clock::now();
  fn();
  double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  if (elapsed >= min_seconds) return elapsed;
  const auto reps =
      static_cast<std::size_t>(min_seconds / std::max(elapsed, 1e-9)) + 1;
  start = Clock::now();
  for (std::size_t i = 0; i < reps; ++i) fn();
  elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  return elapsed / static_cast<double>(reps);
}

std::vector<float> random_matrix(std::size_t numel, std::uint64_t seed) {
  cdl::Rng rng(seed);
  std::vector<float> m(numel);
  for (float& v : m) v = rng.uniform(-1.0F, 1.0F);
  return m;
}

struct GemmRow {
  std::string kernel;
  double gflops = 0.0;
  double ms_per_call = 0.0;
};

/// One attributed (profiled) pass over the batch: per-layer rows, fork/join
/// stats and wall time. OPS totals are exact, so serial.ops == parallel.ops
/// is a structural determinism invariant bench_check.py re-checks.
struct Attribution {
  std::uint64_t time_ns = 0;
  std::vector<cdl::obs::LayerProfileRow> rows;
  cdl::obs::LayerProfiler::ParallelForStats parallel_for;
  /// Energy fold of `rows` (per-stage, precision-aware) and its total; the
  /// integer op bundles merge identically for any thread count, so
  /// serial.energy_pj == parallel.energy_pj bit-exactly — checked below.
  std::vector<cdl::obs::StageEnergyRow> energy_rows;
  double energy_pj = 0.0;

  [[nodiscard]] std::uint64_t total_ops() const {
    std::uint64_t total = 0;
    for (const auto& row : rows) total += row.ops;
    return total;
  }
};

struct BatchRow {
  std::string network;
  std::string precision;  ///< "fp32" or "int8" (whole-cascade quantized)
  double accuracy = 0.0;  ///< serial-pass accuracy on the measured batch
  std::size_t images = 0;
  double serial_ips = 0.0;
  double parallel_ips = 0.0;
  double p50_ms = 0.0;  ///< parallel per-batch latency percentiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double trace_off_delta_pct = 0.0;  ///< repeat measurement, hooks disabled
  double trace_on_delta_pct = 0.0;   ///< hooks enabled vs disabled
  bool identical = false;
  Attribution serial_attr;
  Attribution parallel_attr;
  bool perf_attempted = false;
  std::string perf_reason;
  cdl::obs::PerfReading perf;  ///< parallel attributed pass
  /// Cumulative exit-energy table (pJ at each exit stage) and the serial
  /// pass's exit counts; the exit-weighted average is the offline analogue
  /// of the serving engine's per-request attribution.
  std::vector<double> exit_energy_pj;
  std::vector<std::uint64_t> exit_counts;
  double exit_weighted_pj = 0.0;
};

void write_attribution_json(std::FILE* out, const char* key,
                            const Attribution& attr, const char* indent) {
  std::fprintf(out, "%s\"%s\": {\"time_ns\": %llu, \"ops\": %llu,\n", indent,
               key, static_cast<unsigned long long>(attr.time_ns),
               static_cast<unsigned long long>(attr.total_ops()));
  std::fprintf(out,
               "%s  \"parallel_for\": {\"invocations\": %llu, \"items\": "
               "%llu, \"time_ns\": %llu},\n",
               indent,
               static_cast<unsigned long long>(attr.parallel_for.invocations),
               static_cast<unsigned long long>(attr.parallel_for.items),
               static_cast<unsigned long long>(attr.parallel_for.time_ns));
  std::fprintf(out, "%s  \"rows\": [", indent);
  for (std::size_t i = 0; i < attr.rows.size(); ++i) {
    const cdl::obs::LayerProfileRow& row = attr.rows[i];
    std::fprintf(out,
                 "%s\n%s    {\"stage\": %d, \"layer\": %d, \"name\": "
                 "\"%s\", \"span\": %llu, \"samples\": %llu, \"ops\": %llu, "
                 "\"time_ns\": %llu}",
                 i == 0 ? "" : ",", indent, row.stage, row.layer,
                 cdl::obs::json_escape(row.name).c_str(),
                 static_cast<unsigned long long>(row.span),
                 static_cast<unsigned long long>(row.samples),
                 static_cast<unsigned long long>(row.ops),
                 static_cast<unsigned long long>(row.time_ns));
  }
  if (attr.rows.empty()) {
    std::fprintf(out, "]}");
  } else {
    std::fprintf(out, "\n%s  ]}", indent);
  }
}

bool same_results(const std::vector<cdl::ClassificationResult>& a,
                  const std::vector<cdl::ClassificationResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].exit_stage != b[i].exit_stage ||
        a[i].confidence != b[i].confidence ||
        a[i].probabilities != b[i].probabilities || !(a[i].ops == b[i].ops)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  cdl::ArgParser args;
  args.add_option("threads", "0",
                  "pool workers for the parallel columns (0 = CDL_THREADS, "
                  "else hardware concurrency, min 2)");
  args.add_option("out", "BENCH_throughput.json", "output JSON path");
  args.add_option("seed", "42",
                  "workload seed; fixed here (NOT read from CDL_SEED) so "
                  "repeated runs measure the identical batch composition and "
                  "bench_check.py diffs are not input-mix noise");
  args.add_option("gemm-size", "256", "square GEMM dimension m = k = n");
  args.add_option("min-time", "0.2", "min seconds accumulated per measurement");
  args.add_option("lat-reps", "20", "batch calls sampled for the latency "
                                    "percentiles");
  args.add_option("trace-out", "", "write a Chrome trace JSON of one traced "
                                   "parallel batch per network");
  args.add_flag("perf", "read hardware perf counters over the parallel "
                        "attributed pass (degrades to wall clock when "
                        "perf_event_open is unavailable)");
  try {
    args.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 args.help("throughput").c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help("throughput").c_str());
    return 0;
  }

  std::size_t threads = 0;
  std::size_t gemm_size = 0;
  double min_time = 0.0;
  std::size_t lat_reps = 0;
  std::uint64_t seed = 0;
  try {
    threads = args.get_size("threads");
    gemm_size = args.get_size("gemm-size");
    min_time = args.get_double("min-time");
    lat_reps = std::max<std::size_t>(2, args.get_size("lat-reps"));
    seed = args.get_size("seed");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: invalid option value (%s)\n%s", e.what(),
                 args.help("throughput").c_str());
    return 1;
  }
  auto config = cdl::bench::bench_config();
  // Deterministic workload: this harness feeds bench_check.py regression
  // diffs, so the dataset seed (and with it the batch composition and the
  // trained weights) must not drift with the CDL_SEED environment.
  config.seed = seed;
  if (threads == 0) threads = config.threads;
  if (threads <= 1) {
    threads = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  }
  // The pool clamps oversubscribed requests to the hardware thread count;
  // record the *effective* worker count everywhere downstream (tables, JSON)
  // so speedup columns describe threads that actually ran.
  cdl::ThreadPool pool(threads);
  threads = pool.size();
  config.threads = threads;

  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Throughput: packed SGEMM + batch inference",
                           config, data);

  // --- GEMM GFLOP/s ---------------------------------------------------------
  const cdl::GemmDims dims{gemm_size, gemm_size, gemm_size};
  const std::vector<float> a = random_matrix(dims.m * dims.k, 1);
  const std::vector<float> b = random_matrix(dims.k * dims.n, 2);
  std::vector<float> c(dims.m * dims.n, 0.0F);
  const double flops =
      2.0 * static_cast<double>(dims.m * dims.k) * static_cast<double>(dims.n);

  std::vector<GemmRow> gemm_rows;
  const std::vector<
      std::pair<std::string, std::function<void()>>> gemm_kernels = {
      {"seed_blocked",
       [&] { cdl::sgemm_blocked_reference(dims, a.data(), b.data(), c.data()); }},
      {"packed",
       [&] { cdl::sgemm(dims, a.data(), b.data(), c.data()); }},
      {"packed_parallel",
       [&] { cdl::sgemm_parallel(dims, a.data(), b.data(), c.data(), pool); }},
  };
  cdl::TextTable gemm_table({"kernel", "GFLOP/s", "ms/call"});
  for (const auto& [name, fn] : gemm_kernels) {
    const double sec = time_per_call(fn, min_time);
    GemmRow row{name, flops / sec / 1e9, sec * 1e3};
    gemm_table.add_row({row.kernel, cdl::fmt(row.gflops, 2),
                        cdl::fmt(row.ms_per_call, 3)});
    gemm_rows.push_back(std::move(row));
  }
  std::printf("GEMM %zux%zux%zu (single precision):\n%s", gemm_size, gemm_size,
              gemm_size, gemm_table.to_string().c_str());
  std::printf("packed vs seed_blocked: %.2fx; parallel (%zu threads) vs "
              "packed: %.2fx\n\n",
              gemm_rows[1].gflops / gemm_rows[0].gflops, threads,
              gemm_rows[2].gflops / gemm_rows[1].gflops);

  // --- int8 GEMM GOPS -------------------------------------------------------
  // Same dimensions as the fp32 rows so the int8-vs-fp32 ratio is apples to
  // apples. The "gflops" slot holds GOPS (one multiply-add = 2 ops, as for
  // fp32). Operands respect the qgemm contract: u8 activations, s8 weights
  // bounded to +/-kQgemmWeightMax.
  std::vector<std::int8_t> qa(dims.m * dims.k);
  std::vector<std::uint8_t> qb(dims.k * dims.n);
  {
    cdl::Rng qrng(3);
    const std::size_t wspan =
        2 * static_cast<std::size_t>(cdl::kQgemmWeightMax);
    for (std::int8_t& v : qa) {
      v = static_cast<std::int8_t>(static_cast<std::int64_t>(
              qrng.index(wspan + 1)) - cdl::kQgemmWeightMax);
    }
    for (std::uint8_t& v : qb) {
      v = static_cast<std::uint8_t>(qrng.index(256));
    }
  }
  std::vector<std::int32_t> qc(dims.m * dims.n, 0);
  const cdl::QgemmDims qdims{dims.m, dims.k, dims.n};
  std::vector<std::int8_t> qpa(cdl::qgemm_packed_a_bytes(dims.m, dims.k));
  std::vector<std::uint8_t> qpb(cdl::qgemm_packed_b_bytes(dims.k, dims.n));
  cdl::qgemm_pack_a(dims.m, dims.k, qa.data(), qpa.data());
  cdl::qgemm_pack_b(dims.k, dims.n, qb.data(), qpb.data());
  std::vector<GemmRow> qgemm_rows;
  const std::vector<
      std::pair<std::string, std::function<void()>>> qgemm_kernels = {
      {"int8_pack_and_multiply",
       [&] { cdl::qgemm(qdims, qa.data(), qb.data(), qc.data()); }},
      {"int8_packed",
       [&] { cdl::qgemm_packed(qdims, qpa.data(), qpb.data(), qc.data()); }},
      {"int8_packed_parallel",
       [&] {
         cdl::qgemm_packed(qdims, qpa.data(), qpb.data(), qc.data(), &pool);
       }},
  };
  cdl::TextTable qgemm_table({"kernel", "GOPS", "ms/call"});
  for (const auto& [name, fn] : qgemm_kernels) {
    const double sec = time_per_call(fn, min_time);
    GemmRow row{name, flops / sec / 1e9, sec * 1e3};
    qgemm_table.add_row({row.kernel, cdl::fmt(row.gflops, 2),
                         cdl::fmt(row.ms_per_call, 3)});
    qgemm_rows.push_back(std::move(row));
  }
  const double int8_vs_fp32_gemm =
      qgemm_rows[1].gflops / gemm_rows[1].gflops;
  std::printf("int8 GEMM %zux%zux%zu (tier %s):\n%s", gemm_size, gemm_size,
              gemm_size, cdl::to_string(cdl::qgemm_tier()),
              qgemm_table.to_string().c_str());
  std::printf("int8_packed vs fp32 packed: %.2fx (target >= 2x)\n\n",
              int8_vs_fp32_gemm);

  // --- activation kernels ---------------------------------------------------
  // The vectorized maps behind every conv/dense epilogue, with their measured
  // max error against the double-precision references (the bounds bench_check
  // enforces are kSigmoidMaxAbsError / kTanhMaxAbsError / exact ReLU).
  struct ActRow {
    std::string kernel;
    double melem_per_sec;
    double max_abs_error;
  };
  std::vector<ActRow> act_rows;
  {
    constexpr std::size_t kActN = std::size_t{1} << 14;
    std::vector<float> act_in(kActN);
    cdl::Rng arng(7);
    for (float& v : act_in) v = arng.uniform(-8.0F, 8.0F);
    std::vector<float> act_out(kActN);
    double sig_err = 0.0;
    double tanh_err = 0.0;
    for (float x = -90.0F; x <= 90.0F; x += 0.00173F) {
      const double logistic = 1.0 / (1.0 + std::exp(-static_cast<double>(x)));
      sig_err = std::max(
          sig_err,
          std::fabs(static_cast<double>(cdl::sigmoid_approx(x)) - logistic));
      tanh_err = std::max(
          tanh_err, std::fabs(static_cast<double>(cdl::tanh_approx(x)) -
                              std::tanh(static_cast<double>(x))));
    }
    const std::vector<std::tuple<std::string, std::function<void()>, double>>
        act_kernels = {
            {"sigmoid",
             [&] { cdl::sigmoid_map(act_in.data(), act_out.data(), kActN); },
             sig_err},
            {"tanh",
             [&] { cdl::tanh_map(act_in.data(), act_out.data(), kActN); },
             tanh_err},
            {"relu",
             [&] { cdl::relu_map(act_in.data(), act_out.data(), kActN); },
             0.0},
        };
    cdl::TextTable act_table({"kernel", "Melem/s", "max |err| vs exp"});
    for (const auto& [name, fn, err] : act_kernels) {
      const double sec = time_per_call(fn, min_time);
      char err_str[32];
      std::snprintf(err_str, sizeof err_str, "%.2e", err);
      act_rows.push_back({name, static_cast<double>(kActN) / sec / 1e6, err});
      act_table.add_row(
          {name, cdl::fmt(act_rows.back().melem_per_sec, 1), err_str});
    }
    std::printf("activation maps (%zu elems/call, tier %s):\n%s\n",
                kActN, cdl::act_dispatch_tier(), act_table.to_string().c_str());
  }

  // --- direct first-layer conv ----------------------------------------------
  // Direct (im2col-free) int8 conv versus the pack_b_im2col + packed-GEMM
  // route it replaces for small-c_in stage-0 layers; the two routes are
  // all-integer, so their outputs are verified identical before timing is
  // trusted.
  struct DirectConvRow {
    std::string shape;
    double direct_ns;
    double im2col_ns;
    double speedup;
    bool routed_direct;
  };
  std::vector<DirectConvRow> dconv_rows;
  {
    struct ConvShape {
      std::size_t c, h, w, kernel, out_c;
    };
    // The two 25-tap paper stage-0 shapes plus MNIST_3C's 9-tap stage-0:
    // on VNNI hosts the gate keeps only the 9-tap shape on the direct walk
    // (the "routed" column records the host's decision next to the timings
    // that justify it).
    const ConvShape shapes[] = {
        {1, 28, 28, 5, 6}, {1, 32, 32, 5, 6}, {1, 28, 28, 3, 3}};
    for (const ConvShape& s : shapes) {
      const std::size_t oh = s.h - s.kernel + 1;
      const std::size_t ow = s.w - s.kernel + 1;
      const std::size_t k = s.c * s.kernel * s.kernel;
      const std::size_t pixels = oh * ow;
      cdl::Rng drng(9);
      std::vector<std::uint8_t> img(s.c * s.h * s.w + cdl::kQconvSlackBytes);
      for (std::uint8_t& v : img) {
        v = static_cast<std::uint8_t>(drng.index(256));
      }
      std::vector<std::int8_t> w8(s.out_c * k);
      for (std::int8_t& v : w8) {
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(drng.index(
                2 * static_cast<std::size_t>(cdl::kQgemmWeightMax) + 1)) -
            cdl::kQgemmWeightMax);
      }
      std::vector<std::int32_t> direct_out(s.out_c * pixels, 0);
      const double direct_sec = time_per_call(
          [&] {
            cdl::qconv_direct(img.data(), s.c, s.h, s.w, s.kernel, w8.data(),
                              s.out_c, direct_out.data());
          },
          min_time);
      std::vector<std::int8_t> pa(cdl::qgemm_packed_a_bytes(s.out_c, k));
      cdl::qgemm_pack_a(s.out_c, k, w8.data(), pa.data());
      std::vector<std::uint8_t> pb(cdl::qgemm_packed_b_bytes(k, pixels));
      const std::size_t panels =
          (pixels + cdl::kQgemmNr - 1) / cdl::kQgemmNr;
      std::vector<std::int32_t> gemm_out(s.out_c * pixels, 0);
      const double gemm_sec = time_per_call(
          [&] {
            cdl::qgemm_pack_b_im2col(img.data(), 1, s.c, s.h, s.w, s.kernel,
                                     pb.data(), 0, panels);
            cdl::qgemm_packed({s.out_c, k, pixels}, pa.data(), pb.data(),
                              gemm_out.data(), nullptr);
          },
          min_time);
      if (std::memcmp(direct_out.data(), gemm_out.data(),
                      direct_out.size() * sizeof(std::int32_t)) != 0) {
        std::fprintf(stderr,
                     "error: direct conv disagrees with im2col+GEMM -- "
                     "integer kernel equivalence broken\n");
        return 1;
      }
      char shape_name[64];
      std::snprintf(shape_name, sizeof shape_name, "%zux%zux%zuk%zuoc%zu",
                    s.c, s.h, s.w, s.kernel, s.out_c);
      dconv_rows.push_back({shape_name, direct_sec * 1e9, gemm_sec * 1e9,
                            gemm_sec / direct_sec,
                            cdl::qconv_direct_profitable(k)});
    }
    cdl::TextTable dconv_table(
        {"shape", "direct ns", "im2col+GEMM ns", "speedup", "routed"});
    for (const DirectConvRow& r : dconv_rows) {
      dconv_table.add_row({r.shape, cdl::fmt(r.direct_ns, 0),
                           cdl::fmt(r.im2col_ns, 0),
                           cdl::fmt(r.speedup, 2) + "x",
                           r.routed_direct ? "direct" : "im2col+gemm"});
    }
    std::printf("direct conv vs im2col+GEMM (tier %s, outputs verified "
                "identical):\n%s\n",
                cdl::qconv_dispatch_tier(), dconv_table.to_string().c_str());
  }

  // --- batch inference images/sec ------------------------------------------
  cdl::obs::Tracer& tracer = cdl::obs::Tracer::instance();
  const std::string trace_out = args.get("trace-out");
  const bool trace_was_enabled = cdl::obs::Tracer::enabled();
  tracer.set_enabled(false);  // hooks must be quiet while we measure

  std::vector<BatchRow> batch_rows;
  std::vector<std::string> profile_summaries;
  cdl::TextTable batch_table({"network", "precision", "accuracy", "images",
                              "serial img/s",
                              std::to_string(threads) + "-thread img/s",
                              "speedup"});
  cdl::TextTable lat_table({"network", "p50 ms", "p95 ms", "p99 ms",
                            "trace-off delta", "trace-on delta"});
  bool all_identical = true;
  std::vector<cdl::Tensor> inputs;
  inputs.reserve(data.test.size());
  for (std::size_t i = 0; i < data.test.size(); ++i) {
    inputs.push_back(data.test.image(i));
  }
  std::vector<cdl::ConditionalNetwork> kept_nets;  // for the traced capture
  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    cdl::bench::select_operating_delta(trained.net, data);
    // Both paper nets (sigmoid, valid stride-1 convs, max pool) quantize;
    // calibrate once per arch and measure each precision as its own row.
    trained.net.set_quantization(cdl::collect_quant_calibration(
        trained.net.baseline(), trained.net.input_shape(),
        data.train.images(), std::min<std::size_t>(512, data.train.size()),
        &pool));
    for (const cdl::StagePrecision prec :
         {cdl::StagePrecision::kFp32, cdl::StagePrecision::kInt8}) {
    trained.net.set_cascade_precision(prec);
    const cdl::ConditionalNetwork& net = trained.net;

    const auto serial = net.classify_batch(inputs, nullptr);
    const auto parallel = net.classify_batch(inputs, &pool);
    BatchRow row;
    row.network = arch.name;
    row.precision = cdl::to_string(prec);
    row.images = inputs.size();
    std::size_t correct = 0;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      if (serial[i].label == data.test.label(i)) ++correct;
    }
    row.accuracy =
        static_cast<double>(correct) / static_cast<double>(serial.size());
    row.identical = same_results(serial, parallel);
    all_identical = all_identical && row.identical;

    // Timed loops reuse warm workspaces and a warm results vector so the
    // measured steady state is the zero-allocation classify_batch_into path
    // (one workspace per pool configuration; sharing one would replan on
    // every serial<->parallel switch).
    cdl::BatchWorkspace ws_serial;
    cdl::BatchWorkspace ws_parallel;
    std::vector<cdl::ClassificationResult> timed;
    const double serial_sec = time_per_call(
        [&] { net.classify_batch_into(inputs, timed, ws_serial, nullptr); },
        min_time);
    const double parallel_sec = time_per_call(
        [&] { net.classify_batch_into(inputs, timed, ws_parallel, &pool); },
        min_time);
    row.serial_ips = static_cast<double>(row.images) / serial_sec;
    row.parallel_ips = static_cast<double>(row.images) / parallel_sec;

    // Per-call latency distribution of the parallel path.
    std::vector<double> lat_ms;
    lat_ms.reserve(lat_reps);
    for (std::size_t i = 0; i < lat_reps; ++i) {
      const auto start = Clock::now();
      net.classify_batch_into(inputs, timed, ws_parallel, &pool);
      lat_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count());
    }
    row.p50_ms = cdl::obs::percentile(lat_ms, 0.50);
    row.p95_ms = cdl::obs::percentile(lat_ms, 0.95);
    row.p99_ms = cdl::obs::percentile(lat_ms, 0.99);

    // Tracing cost: a repeat run with the hooks still disabled bounds the
    // measurement noise (the <2 % disabled-overhead budget), then a run with
    // the hooks live shows the price of actually recording.
    const double repeat_sec = time_per_call(
        [&] { net.classify_batch_into(inputs, timed, ws_parallel, &pool); },
        min_time);
    row.trace_off_delta_pct = 100.0 * (repeat_sec - parallel_sec) / parallel_sec;
    tracer.set_enabled(true);
    const double traced_sec = time_per_call(
        [&] { net.classify_batch_into(inputs, timed, ws_parallel, &pool); },
        min_time);
    tracer.set_enabled(false);
    row.trace_on_delta_pct = 100.0 * (traced_sec - parallel_sec) / parallel_sec;
    tracer.clear();  // drop the measurement runs' events

    // Attributed passes (profiler on): one serial, one parallel, after the
    // timed loops so the attribution overhead never skews the img/s numbers.
    // The exact per-row OPS make serial vs parallel attribution a structural
    // determinism check on top of the per-result one above.
    cdl::obs::LayerProfiler& profiler = cdl::obs::LayerProfiler::instance();
    const cdl::obs::EnergyMeter meter;
    const auto attribute_pass = [&](cdl::ThreadPool* p,
                                    cdl::BatchWorkspace& ws) {
      profiler.clear();
      profiler.set_enabled(true);
      const std::uint64_t t0 = cdl::obs::now_ns();
      net.classify_batch_into(inputs, timed, ws, p);
      Attribution attr;
      attr.time_ns = cdl::obs::now_ns() - t0;
      profiler.set_enabled(false);
      attr.rows = profiler.snapshot();
      attr.parallel_for = profiler.parallel_for_stats();
      attr.energy_rows = meter.attribute(attr.rows);
      attr.energy_pj = meter.total_pj(attr.energy_rows);
      return attr;
    };
    row.serial_attr = attribute_pass(nullptr, ws_serial);
    row.perf_attempted = args.get_flag("perf");
    if (row.perf_attempted) {
      cdl::obs::PerfGroup perf_group;
      row.perf_reason = perf_group.unavailable_reason();
      perf_group.start();
      row.parallel_attr = attribute_pass(&pool, ws_parallel);
      row.perf = perf_group.stop();
    } else {
      row.parallel_attr = attribute_pass(&pool, ws_parallel);
    }

    // Exit profile of the serial (reference) results, with each result's
    // energy attributed through the same cumulative exit-energy table the
    // serving engine stamps responses from.
    row.exit_energy_pj = net.exit_energy_table(meter);
    std::vector<std::string> stage_names;
    stage_names.reserve(net.num_stages() + 1);
    for (std::size_t s = 0; s <= net.num_stages(); ++s) {
      stage_names.push_back(net.stage_name(s));
    }
    cdl::obs::ExitProfile profile(std::move(stage_names));
    row.exit_counts.assign(net.num_stages() + 1, 0);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ++row.exit_counts[serial[i].exit_stage];
      profile.record(serial[i].exit_stage,
                     static_cast<double>(serial[i].confidence),
                     static_cast<double>(serial[i].ops.total_compute()),
                     serial[i].label == data.test.label(i),
                     row.exit_energy_pj[serial[i].exit_stage]);
    }
    row.exit_weighted_pj =
        cdl::obs::EnergyMeter::exit_weighted_pj(row.exit_energy_pj,
                                                row.exit_counts);
    profile_summaries.push_back(arch.name + "/" + row.precision + " " +
                                profile.summary());

    batch_table.add_row({row.network, row.precision,
                         cdl::fmt_percent(row.accuracy),
                         std::to_string(row.images),
                         cdl::fmt(row.serial_ips, 1),
                         cdl::fmt(row.parallel_ips, 1),
                         cdl::fmt(row.parallel_ips / row.serial_ips, 2) + "x"});
    lat_table.add_row({row.network + "/" + row.precision,
                       cdl::fmt(row.p50_ms, 2),
                       cdl::fmt(row.p95_ms, 2), cdl::fmt(row.p99_ms, 2),
                       cdl::fmt(row.trace_off_delta_pct, 2) + " %",
                       cdl::fmt(row.trace_on_delta_pct, 2) + " %"});
    batch_rows.push_back(std::move(row));
    }  // precision loop
    if (!trace_out.empty()) {
      // Traced capture stays on the fp32 path, as before the int8 rows.
      trained.net.set_cascade_precision(cdl::StagePrecision::kFp32);
      kept_nets.push_back(std::move(trained.net));
    }
  }
  std::printf("CDLN batch inference (Algorithm 2, whole test set per call):\n%s",
              batch_table.to_string().c_str());
  // The quantized-vs-fp32 acceptance numbers (rows come in fp32/int8 pairs).
  for (std::size_t i = 0; i + 1 < batch_rows.size(); i += 2) {
    const BatchRow& f = batch_rows[i];
    const BatchRow& q = batch_rows[i + 1];
    std::printf("%s int8 vs fp32: %.2fx serial img/s, %.2fx %zu-thread "
                "img/s, accuracy %+.2f pp (targets >= 1.5x, >= -0.5 pp)\n",
                f.network.c_str(), q.serial_ips / f.serial_ips,
                q.parallel_ips / f.parallel_ips, threads,
                100.0 * (q.accuracy - f.accuracy));
  }
  std::printf("\nparallel batch latency (%zu samples; trace deltas vs the "
              "first hooks-disabled run):\n%s",
              lat_reps, lat_table.to_string().c_str());
  for (const std::string& s : profile_summaries) {
    std::printf("\n%s", s.c_str());
  }

  // Per-layer attribution of the parallel pass (where did the time go?).
  for (const BatchRow& r : batch_rows) {
    cdl::TextTable attr_table(
        {"stage", "step", "samples", "MOPS", "ms", "GFLOP/s"});
    for (const cdl::obs::LayerProfileRow& lrow : r.parallel_attr.rows) {
      attr_table.add_row(
          {lrow.stage == cdl::obs::kNoStage ? "-" : std::to_string(lrow.stage),
           lrow.name, std::to_string(lrow.samples),
           cdl::fmt(static_cast<double>(lrow.ops) / 1e6, 1),
           cdl::fmt(static_cast<double>(lrow.time_ns) / 1e6, 2),
           cdl::fmt(lrow.gops(), 2)});
    }
    const double serial_ms =
        static_cast<double>(r.serial_attr.time_ns) / 1e6;
    const double parallel_ms =
        static_cast<double>(r.parallel_attr.time_ns) / 1e6;
    const auto& pf = r.parallel_attr.parallel_for;
    std::printf("\n%s parallel-pass attribution (serial pass %.2f ms, "
                "parallel pass %.2f ms, %llu fork/join dispatches, "
                "%.2f ms inside parallel_for):\n%s",
                r.network.c_str(), serial_ms, parallel_ms,
                static_cast<unsigned long long>(pf.invocations),
                static_cast<double>(pf.time_ns) / 1e6,
                attr_table.to_string().c_str());
    if (r.perf_attempted) {
      std::printf("%s\n", r.perf.summary(r.perf_reason).c_str());
    }
    if (r.serial_attr.total_ops() != r.parallel_attr.total_ops()) {
      std::fprintf(stderr,
                   "\nerror: attributed OPS differ serial vs parallel "
                   "(%llu vs %llu) -- attribution determinism broken\n",
                   static_cast<unsigned long long>(r.serial_attr.total_ops()),
                   static_cast<unsigned long long>(
                       r.parallel_attr.total_ops()));
      return 1;
    }
    // The energy fold prices merged integer op bundles, so it must be
    // bit-identical across thread counts, not merely close.
    if (r.serial_attr.energy_pj != r.parallel_attr.energy_pj) {
      std::fprintf(stderr,
                   "\nerror: attributed energy differs serial vs parallel "
                   "(%.17g vs %.17g pJ) -- energy attribution determinism "
                   "broken\n",
                   r.serial_attr.energy_pj, r.parallel_attr.energy_pj);
      return 1;
    }
    std::printf("%s/%s energy: %.0f pJ attributed (%.3f pJ/image "
                "exit-weighted)\n",
                r.network.c_str(), r.precision.c_str(),
                r.parallel_attr.energy_pj, r.exit_weighted_pj);
  }
  if (!all_identical) {
    std::fprintf(stderr, "\nerror: parallel batch results differ from serial "
                         "classification -- determinism guarantee broken\n");
    return 1;
  }
  std::printf("\nserial and %zu-thread results bit-identical: yes\n", threads);

  if (!trace_out.empty()) {
    tracer.clear();
    tracer.set_enabled(true);
    for (const cdl::ConditionalNetwork& net : kept_nets) {
      (void)net.classify_batch(inputs, &pool);
    }
    tracer.set_enabled(trace_was_enabled);
    std::ofstream os(trace_out);
    if (!os) {
      std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
      return 1;
    }
    tracer.write_chrome_trace(os);
    std::printf("\n%s[bench] trace written to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                tracer.summary().c_str(), trace_out.c_str());
  } else {
    tracer.set_enabled(trace_was_enabled);
  }

  // --- JSON export ----------------------------------------------------------
  const std::string out_path = args.get("out");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n  \"threads\": %zu,\n  \"gemm_size\": %zu,\n"
               "  \"seed\": %llu,\n",
               threads, gemm_size, static_cast<unsigned long long>(seed));
  std::fprintf(out, "  \"gemm\": [\n");
  for (std::size_t i = 0; i < gemm_rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"gflops\": %.3f, "
                 "\"ms_per_call\": %.4f}%s\n",
                 gemm_rows[i].kernel.c_str(), gemm_rows[i].gflops,
                 gemm_rows[i].ms_per_call,
                 i + 1 < gemm_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"packed_vs_seed_speedup\": %.3f,\n",
               gemm_rows[1].gflops / gemm_rows[0].gflops);
  std::fprintf(out, "  \"qgemm_tier\": \"%s\",\n",
               cdl::to_string(cdl::qgemm_tier()));
  std::fprintf(out, "  \"qgemm\": [\n");
  for (std::size_t i = 0; i < qgemm_rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"gops\": %.3f, "
                 "\"ms_per_call\": %.4f}%s\n",
                 qgemm_rows[i].kernel.c_str(), qgemm_rows[i].gflops,
                 qgemm_rows[i].ms_per_call,
                 i + 1 < qgemm_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"int8_vs_fp32_gemm_speedup\": %.3f,\n",
               int8_vs_fp32_gemm);
  std::fprintf(out, "  \"activation\": {\"tier\": \"%s\", \"rows\": [\n",
               cdl::act_dispatch_tier());
  for (std::size_t i = 0; i < act_rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"melem_per_sec\": %.2f, "
                 "\"max_abs_error\": %.3e}%s\n",
                 act_rows[i].kernel.c_str(), act_rows[i].melem_per_sec,
                 act_rows[i].max_abs_error,
                 i + 1 < act_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out, "  \"direct_conv\": {\"tier\": \"%s\", \"rows\": [\n",
               cdl::qconv_dispatch_tier());
  for (std::size_t i = 0; i < dconv_rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"shape\": \"%s\", \"direct_ns\": %.1f, "
                 "\"im2col_gemm_ns\": %.1f, \"speedup\": %.3f, "
                 "\"routed\": \"%s\"}%s\n",
                 dconv_rows[i].shape.c_str(), dconv_rows[i].direct_ns,
                 dconv_rows[i].im2col_ns, dconv_rows[i].speedup,
                 dconv_rows[i].routed_direct ? "direct" : "im2col+gemm",
                 i + 1 < dconv_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]},\n");
  std::fprintf(out, "  \"batch_inference\": [\n");
  for (std::size_t i = 0; i < batch_rows.size(); ++i) {
    const BatchRow& r = batch_rows[i];
    std::fprintf(out,
                 "    {\"network\": \"%s\", \"precision\": \"%s\", "
                 "\"accuracy\": %.4f, \"images\": %zu, "
                 "\"serial_images_per_sec\": %.2f, "
                 "\"parallel_images_per_sec\": %.2f, \"speedup\": %.3f, "
                 "\"latency_ms_p50\": %.3f, \"latency_ms_p95\": %.3f, "
                 "\"latency_ms_p99\": %.3f, "
                 "\"trace_disabled_delta_pct\": %.3f, "
                 "\"trace_enabled_delta_pct\": %.3f, "
                 "\"results_identical\": %s,\n",
                 r.network.c_str(), r.precision.c_str(), r.accuracy, r.images,
                 r.serial_ips, r.parallel_ips,
                 r.parallel_ips / r.serial_ips, r.p50_ms, r.p95_ms, r.p99_ms,
                 r.trace_off_delta_pct, r.trace_on_delta_pct,
                 r.identical ? "true" : "false");
    std::fprintf(out, "     \"attribution\": {\n");
    write_attribution_json(out, "serial", r.serial_attr, "      ");
    std::fprintf(out, ",\n");
    write_attribution_json(out, "parallel", r.parallel_attr, "      ");
    std::fprintf(out, "},\n");
    // Energy block: per-stage attributed energy (parallel pass; bit-equal to
    // serial per the check above), the cumulative exit-energy table with the
    // serial exit counts, and the exit-weighted pJ/image they produce.
    // bench_check.py re-derives total_pj and exit_weighted_pj_per_image from
    // these stages and requires exact agreement.
    std::fprintf(out,
                 "     \"energy\": {\"total_pj\": %.17g, "
                 "\"exit_weighted_pj_per_image\": %.17g,\n"
                 "      \"stages\": [",
                 r.parallel_attr.energy_pj, r.exit_weighted_pj);
    for (std::size_t s = 0; s < r.parallel_attr.energy_rows.size(); ++s) {
      const cdl::obs::StageEnergyRow& er = r.parallel_attr.energy_rows[s];
      std::fprintf(out,
                   "%s\n        {\"stage\": %d, \"samples\": %llu, "
                   "\"energy_pj\": %.17g, \"per_image_pj\": %.17g}",
                   s == 0 ? "" : ",", er.stage,
                   static_cast<unsigned long long>(er.samples), er.energy_pj,
                   er.per_image_pj);
    }
    std::fprintf(out, "\n      ],\n      \"exit_table\": [");
    for (std::size_t s = 0; s < r.exit_energy_pj.size(); ++s) {
      std::fprintf(out, "%s\n        {\"stage\": %zu, \"cum_pj\": %.17g, "
                   "\"exits\": %llu}",
                   s == 0 ? "" : ",", s, r.exit_energy_pj[s],
                   static_cast<unsigned long long>(r.exit_counts[s]));
    }
    std::fprintf(out, "\n      ]},\n");
    std::ostringstream perf_os;
    cdl::obs::write_perf_json(perf_os, r.perf);
    std::fprintf(out,
                 "     \"perf\": {\"attempted\": %s, \"reason\": \"%s\", "
                 "\"reading\": %s}}%s\n",
                 r.perf_attempted ? "true" : "false",
                 cdl::obs::json_escape(r.perf_reason).c_str(),
                 perf_os.str().c_str(), i + 1 < batch_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("[bench] throughput numbers written to %s\n", out_path.c_str());
  return 0;
}
