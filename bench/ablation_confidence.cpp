// Ablation: confidence policies for the activation module. The paper uses
// the per-label confidence threshold rule; margin and entropy policies are
// natural alternatives. Each policy is swept over its threshold and the
// accuracy-vs-#OPS frontier is reported.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Ablation: activation-module confidence policies (MNIST_3C)", config,
      data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  const double base_ops = static_cast<double>(
      trained.net.baseline_forward_ops().total_compute());

  cdl::TextTable table(
      {"policy", "threshold", "normalized #OPS", "accuracy", "FC exit"});
  for (const cdl::ConfidencePolicy policy :
       {cdl::ConfidencePolicy::kMaxProbability, cdl::ConfidencePolicy::kMargin,
        cdl::ConfidencePolicy::kEntropy}) {
    trained.net.set_policy(policy);
    for (float threshold : {0.3F, 0.5F, 0.7F}) {
      trained.net.set_delta(threshold);
      const cdl::Evaluation eval =
          cdl::evaluate_cdl(trained.net, data.test, energy);
      table.add_row({cdl::to_string(policy), cdl::fmt(threshold, 2),
                     cdl::fmt(eval.avg_ops() / base_ops, 3),
                     cdl::fmt_percent(eval.accuracy()),
                     cdl::fmt_percent(
                         eval.exit_fraction(trained.net.num_stages()))});
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: all policies trade #OPS against accuracy; "
              "the paper's per-label threshold rule is competitive without "
              "extra normalization hardware\n");
  return 0;
}
