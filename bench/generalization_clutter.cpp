// Generalization experiment (extension): the paper's introduction motivates
// CDL with "recognizing a person against a plain backdrop vs in a crowd".
// This harness re-runs the MNIST_3C pipeline on progressively cluttered
// inputs (distractor strokes behind the digit): clutter should push more
// inputs to the deeper stages — shrinking but not eliminating the savings —
// while accuracy degrades gracefully.
#include <cstdio>

#include "bench_common.h"
#include "cdl/cdl_trainer.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  std::printf("=== Generalization: background clutter (MNIST_3C) ===\n");
  std::printf("workload: synthetic MNIST with distractor strokes, "
              "%zu train / %zu test per clutter level, seed %llu\n\n",
              config.train_n, config.test_n,
              static_cast<unsigned long long>(config.seed));

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();

  cdl::TextTable table({"clutter", "baseline acc", "CDLN acc",
                        "OPS improvement", "FC exit"});
  for (float clutter : {0.0F, 0.3F, 0.6F, 1.0F}) {
    cdl::SyntheticMnistConfig gen_config;
    gen_config.seed = config.seed;
    gen_config.clutter = clutter;
    const cdl::SyntheticMnist gen(gen_config);
    const cdl::Dataset train = gen.generate(config.train_n, 0);
    const cdl::Dataset test = gen.generate(config.test_n, 1ULL << 32);

    // Train per clutter level (the model must see the distribution it is
    // evaluated on, like the paper's train/test protocol).
    cdl::Rng rng(config.seed);
    cdl::Network baseline = arch.make_baseline();
    baseline.init(rng);
    cdl::train_baseline(baseline, train, cdl::BaselineTrainConfig{}, rng);
    cdl::ConditionalNetwork net(std::move(baseline), arch.input_shape);
    for (std::size_t prefix : arch.default_stages) {
      net.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
    }
    cdl::CdlTrainConfig cfg;
    cfg.prune_by_gain = false;
    cdl::train_cdl(net, train, cfg, rng);
    net.set_delta(0.5F);

    const cdl::Evaluation base = cdl::evaluate_baseline(net, test, energy);
    const cdl::Evaluation cond = cdl::evaluate_cdl(net, test, energy);
    table.add_row({cdl::fmt(clutter, 1), cdl::fmt_percent(base.accuracy()),
                   cdl::fmt_percent(cond.accuracy()),
                   cdl::fmt(base.avg_ops() / cond.avg_ops(), 2) + "x",
                   cdl::fmt_percent(cond.exit_fraction(net.num_stages()))});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: clutter raises the fraction of inputs that "
              "need deep layers and lowers the savings, but conditional "
              "execution keeps paying — the paper's crowd-vs-backdrop story\n");
  return 0;
}
