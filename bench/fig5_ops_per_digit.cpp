// Fig. 5: normalized improvement in average operations per input (baseline
// OPS / CDLN OPS) for every digit, for both CDLNs.
//
// Paper reference: MNIST_2C 1.46x-1.99x (avg 1.73x); MNIST_3C 1.50x-2.32x
// (avg 1.91x); maximum benefit on digit 1, minimum on digit 5.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner("Fig. 5: normalized OPS improvement per digit",
                           config, data);

  const cdl::EnergyModel energy;
  cdl::ThreadPool* pool = cdl::bench::bench_pool(config);
  cdl::TextTable table({"digit", "MNIST_2C", "MNIST_3C"});
  std::vector<std::vector<double>> ratios(2);

  std::vector<cdl::Evaluation> evals;
  std::vector<double> base_ops;
  for (const cdl::CdlArchitecture& arch : cdl::paper_architectures()) {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    cdl::bench::select_operating_delta(trained.net, data);
    base_ops.push_back(static_cast<double>(
        trained.net.baseline_forward_ops().total_compute()));
    evals.push_back(cdl::evaluate_cdl(trained.net, data.test, energy, pool));
  }

  for (std::size_t digit = 0; digit < 10; ++digit) {
    std::vector<std::string> row{std::to_string(digit)};
    for (std::size_t a = 0; a < evals.size(); ++a) {
      const double ratio = base_ops[a] / evals[a].per_class[digit].avg_ops();
      ratios[a].push_back(ratio);
      row.push_back(cdl::fmt(ratio, 2) + "x");
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg_row{"average"};
  for (const auto& r : ratios) {
    double sum = 0.0;
    for (double v : r) sum += v;
    avg_row.push_back(cdl::fmt(sum / static_cast<double>(r.size()), 2) + "x");
  }
  table.add_row(std::move(avg_row));

  std::printf("%s", table.to_string().c_str());
  cdl::bench::maybe_export_csv("fig5_ops_per_digit", table);
  std::printf("\npaper: MNIST_2C avg 1.73x (1.46-1.99); MNIST_3C avg 1.91x "
              "(1.50-2.32); best digit 1, worst digit 5\n");
  return 0;
}
