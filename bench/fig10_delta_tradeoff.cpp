// Fig. 10: efficiency/accuracy tradeoff of MNIST_3C as the confidence
// threshold delta sweeps. Low delta passes everything to FC (high #OPS);
// raising delta cuts #OPS and initially *raises* accuracy; past the optimum
// accuracy degrades while #OPS keeps falling.
//
// Paper reference: accuracy 96.12 % (delta 0.4) -> 99.02 % (delta 0.5, the
// optimum) with normalized #OPS 1.1 -> 0.51; larger delta degrades accuracy
// with little further #OPS reduction.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Fig. 10: efficiency vs accuracy across confidence level delta (MNIST_3C)",
      config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  const double base_ops = static_cast<double>(
      trained.net.baseline_forward_ops().total_compute());

  cdl::TextTable table({"delta", "normalized #OPS", "accuracy", "FC exit"});
  double best_acc = 0.0;
  double best_delta = 0.0;
  for (float delta :
       {0.10F, 0.20F, 0.30F, 0.40F, 0.50F, 0.60F, 0.70F, 0.80F, 0.90F, 0.95F}) {
    trained.net.set_delta(delta);
    const cdl::Evaluation eval =
        cdl::evaluate_cdl(trained.net, data.test, energy);
    if (eval.accuracy() > best_acc) {
      best_acc = eval.accuracy();
      best_delta = delta;
    }
    table.add_row({cdl::fmt(delta, 2), cdl::fmt(eval.avg_ops() / base_ops, 3),
                   cdl::fmt_percent(eval.accuracy()),
                   cdl::fmt_percent(eval.exit_fraction(trained.net.num_stages()))});
  }
  std::printf("%s", table.to_string().c_str());
  cdl::bench::maybe_export_csv("fig10_delta_tradeoff", table);
  std::printf("\nbest accuracy %.2f %% at delta %.2f\n", 100.0 * best_acc,
              best_delta);
  std::printf("paper: accuracy peaks (99.02 %%) at delta 0.5 with #OPS 0.51; "
              "higher delta trades accuracy for diminishing #OPS gains\n");
  return 0;
}
