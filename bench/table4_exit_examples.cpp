// Table IV: example images of the least difficult digit (1) and the most
// difficult digit (5) classified correctly at each output stage of MNIST_3C
// (O1, O2, FC), rendered as ASCII art — visual evidence that easy instances
// exit early and hard ones travel deeper.
#include <cstdio>
#include <optional>

#include "bench_common.h"
#include "eval/ascii_art.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Table IV: digits 1 and 5 classified at each stage (MNIST_3C)", config,
      data);

  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  cdl::bench::select_operating_delta(trained.net, data);
  const std::size_t n_exits = trained.net.num_stages() + 1;

  for (std::size_t digit : {std::size_t{1}, std::size_t{5}}) {
    // First correctly-classified test image of this digit per exit stage.
    std::vector<std::optional<cdl::Tensor>> example(n_exits);
    for (std::size_t i = 0; i < data.test.size(); ++i) {
      if (data.test.label(i) != digit) continue;
      const cdl::ClassificationResult result =
          trained.net.classify(data.test.image(i));
      if (result.label != digit) continue;
      if (!example[result.exit_stage]) example[result.exit_stage] = data.test.image(i);
    }

    std::vector<cdl::Tensor> images;
    std::vector<std::string> captions;
    for (std::size_t s = 0; s < n_exits; ++s) {
      if (example[s]) {
        images.push_back(*example[s]);
        captions.push_back(trained.net.stage_name(s));
      } else {
        captions.push_back(trained.net.stage_name(s) + " (none)");
        images.emplace_back(data.test.image_shape());  // blank placeholder
      }
    }
    std::printf("digit %zu:\n%s\n", digit,
                cdl::render_ascii_row(images, captions).c_str());
  }
  std::printf("paper: progressively harder-looking instances of each digit "
              "are classified at O1, O2 and FC respectively\n");
  return 0;
}
