// Ablation: fixed-point weight precision. The paper's energy numbers come
// from an RTL implementation, where datapaths are fixed-point; this harness
// quantizes the trained CDLN's weights to b bits and measures how accuracy
// and the early-exit distribution hold up — the empirical basis for sizing
// a hardware datapath.
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "nn/quantize.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Ablation: fixed-point weight precision (MNIST_3C)", config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();

  cdl::TextTable table({"weight precision", "accuracy", "normalized #OPS",
                        "FC exit", "max quant error"});

  double base_ops = 0.0;
  for (const unsigned bits : {32U, 10U, 8U, 6U, 4U, 3U}) {
    // Fresh trained model each row: quantization mutates weights in place.
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    trained.net.set_delta(0.5F);
    base_ops = static_cast<double>(
        trained.net.baseline_forward_ops().total_compute());

    double max_err = 0.0;
    if (bits < 32) {
      max_err = cdl::fake_quantize_cdln(trained.net, bits).max_abs_error;
    }
    const cdl::Evaluation eval =
        cdl::evaluate_cdl(trained.net, data.test, energy);
    table.add_row({bits == 32 ? "float32 (reference)"
                              : std::to_string(bits) + "-bit",
                   cdl::fmt_percent(eval.accuracy()),
                   cdl::fmt(eval.avg_ops() / base_ops, 3),
                   cdl::fmt_percent(eval.exit_fraction(trained.net.num_stages())),
                   cdl::fmt(max_err, 4)});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: accuracy flat down to ~8 bits (hardware "
              "fixed-point is safe), degrading sharply below ~4 bits\n");
  return 0;
}
