// Ablation: quantized inference. Two complementary views:
//
//  1. Simulated weight precision (the original sweep): fake-quantize the
//     trained CDLN's weights to b bits and measure accuracy / exit drift —
//     the empirical basis for sizing a hardware datapath.
//  2. The real int8 path: calibrate activation ranges on the training split,
//     flip every stage to StagePrecision::kInt8, and run the actual
//     byte-GEMM cascade. Cross-checks the simulation's predictions against
//     what the shipped kernels produce, including per-stage exit-profile
//     drift and per-sample prediction agreement.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cdl/quantized_cascade.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "nn/qgemm.h"
#include "nn/quantize.h"

namespace {

/// Per-sample run of a cascade configuration: predictions, exit stages, and
/// the derived summary stats the cross-check compares.
struct PathEval {
  std::vector<std::size_t> labels;
  std::vector<std::size_t> exits;
  double accuracy = 0.0;
  std::vector<double> exit_frac;
};

PathEval run_path(const cdl::ConditionalNetwork& net,
                  const cdl::Dataset& test) {
  PathEval pe;
  pe.labels.reserve(test.size());
  pe.exits.reserve(test.size());
  pe.exit_frac.assign(net.num_stages() + 1, 0.0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const cdl::ClassificationResult r = net.classify(test.image(i));
    pe.labels.push_back(r.label);
    pe.exits.push_back(r.exit_stage);
    pe.exit_frac[r.exit_stage] += 1.0;
    if (r.label == test.label(i)) ++correct;
  }
  const double n = static_cast<double>(test.size());
  pe.accuracy = static_cast<double>(correct) / n;
  for (double& f : pe.exit_frac) f /= n;
  return pe;
}

double agreement(const std::vector<std::size_t>& a,
                 const std::vector<std::size_t>& b) {
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(a.size());
}

double max_exit_drift(const PathEval& a, const PathEval& b) {
  double drift = 0.0;
  for (std::size_t s = 0; s < a.exit_frac.size(); ++s) {
    drift = std::max(drift, std::abs(a.exit_frac[s] - b.exit_frac[s]));
  }
  return drift;
}

}  // namespace

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Ablation: quantized inference (MNIST_3C)", config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();

  cdl::TextTable table({"weight precision", "accuracy", "normalized #OPS",
                        "FC exit", "max quant error"});

  double base_ops = 0.0;
  for (const unsigned bits : {32U, 10U, 8U, 6U, 4U, 3U}) {
    // Fresh trained model each row: quantization mutates weights in place.
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    trained.net.set_delta(0.5F);
    base_ops = static_cast<double>(
        trained.net.baseline_forward_ops().total_compute());

    double max_err = 0.0;
    if (bits < 32) {
      max_err = cdl::fake_quantize_cdln(trained.net, bits).max_abs_error;
    }
    const cdl::Evaluation eval =
        cdl::evaluate_cdl(trained.net, data.test, energy);
    table.add_row({bits == 32 ? "float32 (reference)"
                              : std::to_string(bits) + "-bit",
                   cdl::fmt_percent(eval.accuracy()),
                   cdl::fmt(eval.avg_ops() / base_ops, 3),
                   cdl::fmt_percent(eval.exit_fraction(trained.net.num_stages())),
                   cdl::fmt(max_err, 4)});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: accuracy flat down to ~8 bits (hardware "
              "fixed-point is safe), degrading sharply below ~4 bits\n");

  // -------------------------------------------------------------------------
  // Real int8 path vs the 8-bit simulation.
  // -------------------------------------------------------------------------
  std::printf("\nreal int8 cascade (gemm tier %s):\n",
              cdl::to_string(cdl::qgemm_tier()));

  auto real = cdl::bench::trained_cdln(arch, arch.default_stages, data.train,
                                       config);
  real.net.set_delta(0.5F);
  const std::size_t calib_n = std::min<std::size_t>(512, data.train.size());
  real.net.set_quantization(cdl::collect_quant_calibration(
      real.net.baseline(), real.net.input_shape(), data.train.images(),
      calib_n));

  const PathEval fp32 = run_path(real.net, data.test);
  real.net.set_cascade_precision(cdl::StagePrecision::kInt8);
  const PathEval int8 = run_path(real.net, data.test);

  // 8-bit weight simulation on an independent copy of the same weights.
  auto sim = cdl::bench::trained_cdln(arch, arch.default_stages, data.train,
                                      config);
  sim.net.set_delta(0.5F);
  (void)cdl::fake_quantize_cdln(sim.net, 8);
  const PathEval sim8 = run_path(sim.net, data.test);

  cdl::TextTable cross({"path", "accuracy", "FC exit", "label agreement "
                        "vs fp32", "max exit drift vs fp32"});
  const auto row = [&](const char* name, const PathEval& pe) {
    cross.add_row({name, cdl::fmt_percent(pe.accuracy),
                   cdl::fmt_percent(pe.exit_frac.back()),
                   cdl::fmt_percent(agreement(pe.labels, fp32.labels)),
                   cdl::fmt_percent(max_exit_drift(pe, fp32))});
  };
  row("float32 (reference)", fp32);
  row("int8 (real kernels)", int8);
  row("8-bit (simulated weights)", sim8);
  std::printf("%s", cross.to_string().c_str());
  std::printf("\nint8-vs-simulated label agreement %s (activation "
              "quantization adds error the weight-only simulation misses; "
              "both must stay within a point of float32)\n",
              cdl::fmt_percent(agreement(int8.labels, sim8.labels)).c_str());

  const double acc_drop = fp32.accuracy - int8.accuracy;
  std::printf("int8 accuracy drop vs fp32: %.2f pp (target <= 0.5 pp)\n",
              100.0 * acc_drop);
  return 0;
}
