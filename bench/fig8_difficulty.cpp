// Fig. 8: normalized energy benefit of MNIST_3C per digit, sorted from the
// least to the most difficult digit, with the fraction of instances that
// activate the final FC layer.
//
// Paper reference: digit 1 is the least difficult (FC activated for ~1 % of
// its instances, deeper layers off for ~99 %), digit 5 the most difficult
// (FC for ~6 %); even the hardest digit retains ~1.5x energy benefit.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Fig. 8: energy benefit vs input difficulty (MNIST_3C)", config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  auto trained =
      cdl::bench::trained_cdln(arch, arch.default_stages, data.train, config);
  cdl::bench::select_operating_delta(trained.net, data);

  const cdl::Evaluation base =
      cdl::evaluate_baseline(trained.net, data.test, energy);
  const cdl::Evaluation eval = cdl::evaluate_cdl(trained.net, data.test, energy);
  const std::size_t fc_stage = trained.net.num_stages();

  // Sort digits by decreasing energy benefit = increasing difficulty.
  std::vector<std::size_t> digits(10);
  std::iota(digits.begin(), digits.end(), std::size_t{0});
  const auto benefit = [&](std::size_t d) {
    return base.per_class[d].avg_energy_pj() / eval.per_class[d].avg_energy_pj();
  };
  std::sort(digits.begin(), digits.end(),
            [&](std::size_t a, std::size_t b) { return benefit(a) > benefit(b); });

  cdl::TextTable table({"digit (easy -> hard)", "energy benefit",
                        "FC activated for", "early-exit fraction"});
  for (std::size_t d : digits) {
    const cdl::ClassStats& cls = eval.per_class[d];
    const double fc_frac = cls.total == 0
                               ? 0.0
                               : static_cast<double>(cls.exit_counts[fc_stage]) /
                                     static_cast<double>(cls.total);
    table.add_row({std::to_string(d), cdl::fmt(benefit(d), 2) + "x",
                   cdl::fmt_percent(fc_frac), cdl::fmt_percent(1.0 - fc_frac)});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nhardest digit still benefits: %.2fx (paper: >= 1.5x)\n",
              benefit(digits.back()));
  std::printf("paper: digit 1 easiest (FC ~1 %%), digit 5 hardest (FC ~6 %%)\n");
  return 0;
}
