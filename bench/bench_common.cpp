#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "eval/csv.h"
#include "nn/serialize.h"

namespace cdl::bench {

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
                      : fallback;
}

std::string stages_tag(const std::vector<std::size_t>& stages) {
  std::string tag;
  for (std::size_t s : stages) tag += std::to_string(s) + "_";
  return tag;
}

/// Rebuilds the architecture's baseline, training it or loading cached
/// weights. Baseline weights depend only on (arch, data, seed).
Network cached_baseline(const CdlArchitecture& arch, const Dataset& train,
                        const BenchConfig& config) {
  namespace fs = std::filesystem;
  fs::create_directories(config.cache_dir);
  const std::string path = config.cache_dir + "/" + arch.name + "_base_n" +
                           std::to_string(train.size()) + "_s" +
                           std::to_string(config.seed) + ".cdlw";

  Network net = arch.make_baseline();
  Rng rng(config.seed);
  net.init(rng);
  if (fs::exists(path)) {
    load_network(path, net);
    return net;
  }
  std::printf("[bench] training %s baseline (%zu samples)...\n",
              arch.name.c_str(), train.size());
  train_baseline(net, train, BaselineTrainConfig{}, rng);
  save_network(path, net);
  return net;
}

}  // namespace

BenchConfig bench_config() {
  BenchConfig config;
  config.train_n = env_size("CDL_TRAIN_N", config.train_n);
  config.test_n = env_size("CDL_TEST_N", config.test_n);
  config.val_n = env_size("CDL_VAL_N", config.val_n);
  config.seed = env_size("CDL_SEED", config.seed);
  config.threads = env_size("CDL_THREADS", config.threads);
  if (const char* dir = std::getenv("CDL_CACHE_DIR")) config.cache_dir = dir;
  return config;
}

ThreadPool* bench_pool(const BenchConfig& config) {
  if (config.threads <= 1) return nullptr;
  static ThreadPool pool(config.threads);
  return &pool;
}

MnistPair bench_data(const BenchConfig& config) {
  return load_mnist_or_synthetic(config.train_n, config.test_n, config.seed,
                                 config.val_n);
}

TrainedCdln trained_cdln(const CdlArchitecture& arch,
                         const std::vector<std::size_t>& candidate_stages,
                         const Dataset& train, const BenchConfig& config,
                         bool prune, LcTrainingRule rule) {
  namespace fs = std::filesystem;
  fs::create_directories(config.cache_dir);
  const std::string key = config.cache_dir + "/" + arch.name + "_cdln_" +
                          stages_tag(candidate_stages) +
                          (prune ? "p1" : "p0") + "_" + to_string(rule) +
                          "_n" + std::to_string(train.size()) + "_s" +
                          std::to_string(config.seed);
  const std::string weights_path = key + ".cdlw";
  const std::string meta_path = key + ".meta";

  Rng rng(config.seed + 1);

  if (fs::exists(weights_path) && fs::exists(meta_path)) {
    // Meta records which candidates Algorithm 1 admitted plus the report.
    std::ifstream meta(meta_path);
    std::string line;
    std::vector<std::size_t> admitted;
    CdlTrainReport report;
    while (std::getline(meta, line)) {
      std::istringstream is(line);
      std::string kind;
      is >> kind;
      if (kind == "admitted") {
        std::size_t prefix = 0;
        while (is >> prefix) admitted.push_back(prefix);
      } else if (kind == "stage") {
        StageTrainReport s;
        int adm = 0;
        is >> s.stage_name >> s.prefix_layers >> adm >> s.gain >> s.reached >>
            s.classified >> s.final_loss;
        s.admitted = adm != 0;
        report.stages.push_back(std::move(s));
      } else if (kind == "fc_fraction") {
        is >> report.fc_fraction;
      }
    }
    ConditionalNetwork net(cached_baseline(arch, train, config),
                           arch.input_shape);
    for (std::size_t prefix : admitted) {
      net.attach_classifier(prefix, rule, rng);
    }
    net.load(weights_path);
    return TrainedCdln{std::move(net), std::move(report), true};
  }

  ConditionalNetwork net(cached_baseline(arch, train, config),
                         arch.input_shape);
  for (std::size_t prefix : candidate_stages) {
    net.attach_classifier(prefix, rule, rng);
  }
  CdlTrainConfig cfg;
  cfg.prune_by_gain = prune;
  std::printf("[bench] training %s linear classifiers (stages: %s)...\n",
              arch.name.c_str(), stages_tag(candidate_stages).c_str());
  CdlTrainReport report = train_cdl(net, train, cfg, rng);

  net.save(weights_path);
  std::ofstream meta(meta_path);
  meta << "admitted";
  for (std::size_t s = 0; s < net.num_stages(); ++s) {
    meta << ' ' << net.stage_prefix(s);
  }
  meta << '\n';
  for (const StageTrainReport& s : report.stages) {
    meta << "stage " << s.stage_name << ' ' << s.prefix_layers << ' '
         << (s.admitted ? 1 : 0) << ' ' << s.gain << ' ' << s.reached << ' '
         << s.classified << ' ' << s.final_loss << '\n';
  }
  meta << "fc_fraction " << report.fc_fraction << '\n';
  return TrainedCdln{std::move(net), std::move(report), false};
}

void print_banner(const std::string& title, const BenchConfig& config,
                  const MnistPair& data) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("workload: %s MNIST, %zu train / %zu val / %zu test, seed %llu, "
              "%zu thread(s)\n\n",
              data.synthetic ? "synthetic" : "real", data.train.size(),
              data.validation.size(), data.test.size(),
              static_cast<unsigned long long>(config.seed), config.threads);
}

void maybe_export_csv(const std::string& name, const TextTable& table) {
  const char* dir = std::getenv("CDL_CSV_DIR");
  if (dir == nullptr) return;
  std::filesystem::create_directories(dir);
  const std::string path = std::string(dir) + "/" + name + ".csv";
  csv_from_table(table).write(path);
  std::printf("[bench] table exported to %s\n", path.c_str());
}

float select_operating_delta(ConditionalNetwork& net, const MnistPair& data) {
  const DeltaSelection selection = select_delta(net, data.validation);
  std::printf("[bench] delta selected on validation: %.2f "
              "(val accuracy %.2f %%)\n",
              static_cast<double>(selection.best.delta),
              100.0 * selection.best.accuracy);
  return selection.best.delta;
}

}  // namespace cdl::bench
