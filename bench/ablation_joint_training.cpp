// Ablation: sequential vs joint training of the cascade (extension).
//
// The paper trains the baseline first and then fits each stage classifier on
// frozen features (Algorithm 1). The natural evolution — what BranchyNet
// later adopted — is to train everything *jointly*: each stage's loss
// gradient flows into the shared convolutional trunk. This harness compares
// the two at matched epochs and validation-selected delta.
#include <cstdio>

#include "bench_common.h"
#include "cdl/cdl_trainer.h"
#include "cdl/delta_selection.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Ablation: sequential (paper) vs joint training (MNIST_3C)", config,
      data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();
  cdl::TextTable table({"training", "baseline acc", "CDLN acc", "delta",
                        "normalized #OPS", "FC exit"});

  // --- sequential: Algorithm 1 on a pre-trained baseline (cached) -----------
  {
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    const float delta = cdl::bench::select_operating_delta(trained.net, data);
    const cdl::Evaluation base =
        cdl::evaluate_baseline(trained.net, data.test, energy);
    const cdl::Evaluation eval =
        cdl::evaluate_cdl(trained.net, data.test, energy);
    const double base_ops = static_cast<double>(
        trained.net.baseline_forward_ops().total_compute());
    table.add_row({"sequential (paper)", cdl::fmt_percent(base.accuracy()),
                   cdl::fmt_percent(eval.accuracy()), cdl::fmt(delta, 2),
                   cdl::fmt(eval.avg_ops() / base_ops, 3),
                   cdl::fmt_percent(eval.exit_fraction(trained.net.num_stages()))});
  }

  // --- joint: all losses through the shared trunk, from scratch -------------
  {
    cdl::Rng rng(config.seed);
    cdl::Network base_net = arch.make_baseline();
    base_net.init(rng);
    cdl::ConditionalNetwork net(std::move(base_net), arch.input_shape);
    for (std::size_t prefix : arch.default_stages) {
      net.attach_classifier(prefix, cdl::LcTrainingRule::kSoftmaxXent, rng);
    }
    std::printf("[bench] joint training (%zu epochs)...\n",
                cdl::JointTrainConfig{}.epochs);
    cdl::train_cdl_joint(net, data.train, cdl::JointTrainConfig{}, rng);
    const cdl::DeltaSelection sel = cdl::select_delta(net, data.validation);

    const cdl::Evaluation base = cdl::evaluate_baseline(net, data.test, energy);
    const cdl::Evaluation eval = cdl::evaluate_cdl(net, data.test, energy);
    const double base_ops =
        static_cast<double>(net.baseline_forward_ops().total_compute());
    table.add_row({"joint (extension)", cdl::fmt_percent(base.accuracy()),
                   cdl::fmt_percent(eval.accuracy()),
                   cdl::fmt(sel.best.delta, 2),
                   cdl::fmt(eval.avg_ops() / base_ops, 3),
                   cdl::fmt_percent(eval.exit_fraction(net.num_stages()))});
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: joint training acts as deep supervision — "
              "the auxiliary stage losses improve the *baseline* itself and "
              "lift CDLN accuracy by ~1 pp over sequential training at a "
              "small ops cost (softmax stages exit a little less eagerly). "
              "This is the direction BranchyNet later took; the paper's "
              "sequential recipe retains the advantage of leaving an "
              "already-deployed baseline untouched\n");
  return 0;
}
