// Generalization experiment (extension): a 20-class problem mixing the ten
// digits with the ten letters. Stresses what the paper never tests — more
// output classes than MNIST — touching every class-count-dependent piece:
// wider linear classifiers, the exactly-one-label-above-delta rule over 20
// probabilities, and the per-class evaluation plumbing.
#include <cstdio>

#include "bench_common.h"
#include "cdl/cdl_trainer.h"
#include "cdl/delta_selection.h"
#include "data/synthetic_letters.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool2d.h"

namespace {
cdl::SyntheticLettersConfig letters_config(std::uint64_t seed) {
  cdl::SyntheticLettersConfig config;
  config.seed = seed;
  return config;
}
}  // namespace


namespace {

/// MNIST_3C with a 20-way output layer.
cdl::Network make_baseline20() {
  cdl::Network net;
  net.emplace<cdl::Conv2D>(1, 3, 3, cdl::ConvAlgo::kIm2col);
  net.emplace<cdl::Sigmoid>();
  net.emplace<cdl::Pool2D>(2);
  net.emplace<cdl::Conv2D>(3, 6, 4, cdl::ConvAlgo::kIm2col);
  net.emplace<cdl::Sigmoid>();
  net.emplace<cdl::Pool2D>(2);
  net.emplace<cdl::Conv2D>(6, 9, 3, cdl::ConvAlgo::kIm2col);
  net.emplace<cdl::Sigmoid>();
  net.emplace<cdl::Pool2D>(1);
  net.emplace<cdl::Dense>(9 * 3 * 3, 20);
  return net;
}

/// Digits keep labels 0-9; letters are shifted to labels 10-19.
cdl::Dataset mixed_split(std::size_t count, std::uint64_t index_base,
                         std::uint64_t seed) {
  const cdl::SyntheticMnist digits(cdl::SyntheticMnistConfig{.seed = seed});
  const cdl::SyntheticLetters letters(
      letters_config(seed));
  cdl::Dataset digit_half = digits.generate(count / 2, index_base);
  cdl::Dataset letter_half = letters.generate(count - count / 2, index_base);
  cdl::Dataset out;
  for (std::size_t i = 0; i < digit_half.size(); ++i) {
    out.add(digit_half.image(i), digit_half.label(i));
  }
  for (std::size_t i = 0; i < letter_half.size(); ++i) {
    out.add(letter_half.image(i), letter_half.label(i) + 10);
  }
  cdl::Rng rng(seed + 55);
  out.shuffle(rng);
  return out;
}

}  // namespace

int main() {
  const auto config = cdl::bench::bench_config();
  std::printf("=== Generalization: 20-class mix (digits + letters) ===\n");
  std::printf("workload: %zu train / %zu val / %zu test, seed %llu\n\n",
              config.train_n, config.val_n, config.test_n,
              static_cast<unsigned long long>(config.seed));

  const cdl::Dataset train = mixed_split(config.train_n, 0, config.seed);
  const cdl::Dataset val = mixed_split(config.val_n, 1ULL << 33, config.seed);
  const cdl::Dataset test = mixed_split(config.test_n, 1ULL << 32, config.seed);

  cdl::Rng rng(config.seed);
  cdl::Network baseline = make_baseline20();
  baseline.init(rng);
  std::printf("[bench] training 20-class baseline...\n");
  cdl::train_baseline(baseline, train, cdl::BaselineTrainConfig{}, rng);

  cdl::ConditionalNetwork net(std::move(baseline), cdl::Shape{1, 28, 28});
  for (std::size_t prefix : {3U, 6U}) {
    net.attach_classifier(prefix, cdl::LcTrainingRule::kLms, rng);
  }
  cdl::CdlTrainConfig cfg;
  cfg.prune_by_gain = false;
  cdl::train_cdl(net, train, cfg, rng);
  const cdl::DeltaSelection sel = cdl::select_delta(net, val);
  std::printf("[bench] delta selected on validation: %.2f\n\n",
              static_cast<double>(sel.best.delta));

  const cdl::EnergyModel energy;
  const cdl::Evaluation base = cdl::evaluate_baseline(net, test, energy);
  const cdl::Evaluation cond = cdl::evaluate_cdl(net, test, energy);

  cdl::TextTable table({"metric", "baseline DLN", "CDLN"});
  table.add_row({"accuracy (20 classes)", cdl::fmt_percent(base.accuracy()),
                 cdl::fmt_percent(cond.accuracy())});
  table.add_row({"avg ops/input", cdl::fmt(base.avg_ops(), 0),
                 cdl::fmt(cond.avg_ops(), 0)});
  table.add_row({"OPS improvement", "1.00x",
                 cdl::fmt(base.avg_ops() / cond.avg_ops(), 2) + "x"});
  std::printf("%s", table.to_string().c_str());

  std::printf("\nexit distribution:");
  for (std::size_t s = 0; s <= net.num_stages(); ++s) {
    std::printf("  %s %.1f %%", net.stage_name(s).c_str(),
                100.0 * cond.exit_fraction(s));
  }
  std::printf("\n\nexpected shape: the same conditional savings carry to a "
              "problem with twice MNIST's class count; digits and letters "
              "remain separable because the confusable mass (e.g. digit 1 "
              "vs letter L) routes to the deeper stages\n");
  return 0;
}
