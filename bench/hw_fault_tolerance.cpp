// Hardware fault tolerance (extension): flips bits in the stored weights at
// increasing bit-error rates — the failure mode of low-voltage SRAM — and
// measures how the CDLN degrades relative to the unconditional baseline.
// Interesting question: do early exits mask faults (stage classifiers are
// retrained-from-features, redundant paths) or amplify them (a corrupted
// stage confidently misclassifies and deeper, healthy layers never run)?
#include <cstdio>

#include "bench_common.h"
#include "energy/energy_model.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "hw/fault_injection.h"

int main() {
  const auto config = cdl::bench::bench_config();
  const cdl::MnistPair data = cdl::bench::bench_data(config);
  cdl::bench::print_banner(
      "Hardware fault tolerance: weight bit-flips vs accuracy (MNIST_3C)",
      config, data);

  const cdl::EnergyModel energy;
  const cdl::CdlArchitecture arch = cdl::mnist_3c();

  cdl::TextTable table({"bit-error rate", "bits flipped", "baseline acc",
                        "CDLN acc", "FC exit"});
  for (const double ber : {0.0, 1e-6, 1e-5, 1e-4, 1e-3}) {
    // Fresh weights per row (faults accumulate otherwise).
    auto trained = cdl::bench::trained_cdln(arch, arch.default_stages,
                                            data.train, config);
    trained.net.set_delta(0.5F);

    cdl::Rng fault_rng(config.seed + 99);
    cdl::FaultConfig faults;
    faults.bit_error_rate = ber;
    const cdl::FaultReport report =
        cdl::inject_faults(trained.net, faults, fault_rng);

    const cdl::Evaluation base =
        cdl::evaluate_baseline(trained.net, data.test, energy);
    const cdl::Evaluation cond =
        cdl::evaluate_cdl(trained.net, data.test, energy);
    char ber_label[32];
    std::snprintf(ber_label, sizeof(ber_label), "%.0e", ber);
    table.add_row({ber_label, std::to_string(report.bits_flipped),
                   cdl::fmt_percent(base.accuracy()),
                   cdl::fmt_percent(cond.accuracy()),
                   cdl::fmt_percent(cond.exit_fraction(trained.net.num_stages()))});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nexpected shape: negligible impact below ~1e-5 BER; at high "
              "BER the CDLN degrades *faster* than the baseline — the "
              "stage classifiers hold most of the parameters, so corrupted "
              "confidences both misroute inputs (FC-exit share explodes) "
              "and emit confidently-wrong early labels. A hardware "
              "implementation should protect LC weight SRAM first\n");
  return 0;
}
