#!/bin/sh
# Runs every benchmark harness in a stable order (paper tables/figures first,
# then ablations, baselines, hardware studies and micro-kernels). Pass a
# build directory as $1 (default: build).
set -eu

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (build first: cmake -B build -G Ninja && cmake --build build)" >&2
  exit 1
fi

ORDER="
table1_2_architectures
table3_accuracy
table4_exit_examples
fig5_ops_per_digit
fig6_energy
fig7_accuracy_vs_stages
fig8_difficulty
fig9_ops_vs_stages
fig10_delta_tradeoff
alg1_gain_admission
ablation_confidence
ablation_lc_training
ablation_stage_delta
ablation_joint_training
ablation_quantization
ablation_calibration
ablation_feature_sharing
baseline_scalable_effort
hw_latency
hw_systolic
hw_fault_tolerance
hw_voltage_scaling
generalization_clutter
generalization_letters
generalization_mixed20
micro_kernels
"

for name in $ORDER; do
  bin="$BENCH_DIR/$name"
  if [ -x "$bin" ]; then
    "$bin"
    echo
  else
    echo "warning: $bin missing, skipped" >&2
  fi
done
