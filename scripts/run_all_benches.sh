#!/bin/sh
# Runs every benchmark harness in a stable order (paper tables/figures first,
# then ablations, baselines, hardware studies and micro-kernels). Pass a
# build directory as $1 (default: build). `--threads N` sets the inference
# thread count for every harness (exported as CDL_THREADS) and is forwarded
# to the throughput harness, which writes BENCH_throughput.json to the repo
# root.
set -eu

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
ROOT_DIR=$(dirname -- "$SCRIPT_DIR")

BUILD_DIR="build"
THREADS="${CDL_THREADS:-1}"
while [ $# -gt 0 ]; do
  case "$1" in
    --threads)
      THREADS="$2"
      shift 2
      ;;
    --threads=*)
      THREADS="${1#--threads=}"
      shift
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done

BENCH_DIR="$BUILD_DIR/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (build first: cmake -B build -G Ninja && cmake --build build)" >&2
  exit 1
fi

CDL_THREADS="$THREADS"
export CDL_THREADS

ORDER="
table1_2_architectures
table3_accuracy
table4_exit_examples
fig5_ops_per_digit
fig6_energy
fig7_accuracy_vs_stages
fig8_difficulty
fig9_ops_vs_stages
fig10_delta_tradeoff
alg1_gain_admission
ablation_confidence
ablation_lc_training
ablation_stage_delta
ablation_joint_training
ablation_quantization
ablation_calibration
ablation_feature_sharing
baseline_scalable_effort
hw_latency
hw_systolic
hw_fault_tolerance
hw_voltage_scaling
generalization_clutter
generalization_letters
generalization_mixed20
micro_kernels
"

for name in $ORDER; do
  bin="$BENCH_DIR/$name"
  if [ -x "$bin" ]; then
    "$bin"
    echo
  else
    echo "warning: $bin missing, skipped" >&2
  fi
done

# Throughput harness last: it re-measures the kernels and batch inference and
# records the numbers next to the sources for provenance.
if [ -x "$BENCH_DIR/throughput" ]; then
  "$BENCH_DIR/throughput" --threads "$THREADS" \
    --out "$ROOT_DIR/BENCH_throughput.json"
else
  echo "warning: $BENCH_DIR/throughput missing, skipped" >&2
fi
