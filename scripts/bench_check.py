#!/usr/bin/env python3
"""Compare a fresh BENCH_throughput.json against the committed baseline.

Fails (exit 1) when the fresh run regresses by more than --threshold
(default 15 %) on either of the two headline metrics:

  * packed single-thread GEMM GFLOP/s
  * per-network batch inference images/sec (parallel)

Runs whose workloads are not comparable (different seed, gemm_size or
image count) fail immediately rather than producing a meaningless diff --
the throughput harness pins its seed via --seed exactly so that this
comparison is apples-to-apples.

Improvements are reported but never fail the check. Stdlib only.

With --determinism-only the baseline is not read at all: the check passes
iff the fresh JSON is well-formed and every network's serial and threaded
results are bit-identical. That is the mode CI uses -- hosted runners have
different hardware from the machine that produced the committed baseline,
so absolute images/sec are not comparable there, but the determinism
guarantee must hold everywhere.

Usage:
    python3 scripts/bench_check.py --fresh build/BENCH_throughput.json \
        [--baseline BENCH_throughput.json] [--threshold 0.15] \
        [--determinism-only]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot load {path}: {e}")


def gemm_gflops(doc, kernel):
    for row in doc.get("gemm", []):
        if row.get("kernel") == kernel:
            return float(row["gflops"])
    sys.exit(f"error: no '{kernel}' row in gemm section")


def batch_rows(doc):
    rows = {}
    for row in doc.get("batch_inference", []):
        rows[row["network"]] = row
    if not rows:
        sys.exit("error: empty batch_inference section")
    return rows


def check_workload_match(baseline, fresh):
    """Same seed / gemm_size / batch composition, else the diff is noise."""
    mismatches = []
    for key in ("gemm_size", "seed"):
        b, f = baseline.get(key), fresh.get(key)
        # Older baselines predate the "seed" field; skip absent keys.
        if b is not None and f is not None and b != f:
            mismatches.append(f"{key}: baseline={b} fresh={f}")
    b_rows, f_rows = batch_rows(baseline), batch_rows(fresh)
    for net in sorted(set(b_rows) & set(f_rows)):
        bi, fi = b_rows[net].get("images"), f_rows[net].get("images")
        if bi != fi:
            mismatches.append(f"{net} images: baseline={bi} fresh={fi}")
    if mismatches:
        for m in mismatches:
            print(f"workload mismatch -- {m}", file=sys.stderr)
        sys.exit("error: runs are not comparable (did CDL_TEST_N or --seed "
                 "change?); re-run both sides with the same workload")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", required=True,
                    help="freshly measured BENCH_throughput.json")
    ap.add_argument("--baseline", default="BENCH_throughput.json",
                    help="committed baseline JSON (default: %(default)s)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated fractional regression "
                         "(default: %(default)s)")
    ap.add_argument("--determinism-only", action="store_true",
                    help="skip the baseline comparison; only verify the "
                         "fresh run's serial/threaded bit-identity")
    args = ap.parse_args()

    fresh = load(args.fresh)
    failures = []

    if args.determinism_only:
        for net, row in sorted(batch_rows(fresh).items()):
            identical = row.get("results_identical", False)
            print(f"{net:42s} results_identical={identical}")
            if not identical:
                failures.append(f"{net} results_identical")
        if failures:
            sys.exit(f"error: determinism guarantee broken in: "
                     f"{', '.join(failures)}")
        print("bench determinism check passed")
        return

    baseline = load(args.baseline)
    check_workload_match(baseline, fresh)

    def compare(label, base_val, fresh_val):
        ratio = fresh_val / base_val if base_val > 0 else float("inf")
        delta_pct = 100.0 * (ratio - 1.0)
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(label)
        print(f"{label:42s} baseline {base_val:12.2f}  "
              f"fresh {fresh_val:12.2f}  {delta_pct:+7.2f} %  {status}")

    compare("packed GEMM GFLOP/s",
            gemm_gflops(baseline, "packed"), gemm_gflops(fresh, "packed"))

    b_rows, f_rows = batch_rows(baseline), batch_rows(fresh)
    for net in sorted(set(b_rows) & set(f_rows)):
        compare(f"{net} parallel images/sec",
                float(b_rows[net]["parallel_images_per_sec"]),
                float(f_rows[net]["parallel_images_per_sec"]))

    for net, row in sorted(f_rows.items()):
        if not row.get("results_identical", False):
            failures.append(f"{net} results_identical")
            print(f"{net}: serial/parallel results differ -- determinism "
                  f"guarantee broken", file=sys.stderr)

    if failures:
        sys.exit(f"error: bench regression beyond {args.threshold:.0%} "
                 f"tolerance in: {', '.join(failures)}")
    print(f"bench check passed (tolerance {args.threshold:.0%})")


if __name__ == "__main__":
    main()
