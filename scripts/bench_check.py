#!/usr/bin/env python3
"""Validate and compare CDL benchmark / run-report JSON artifacts.

Two modes:

**Throughput mode** (default): compare a fresh BENCH_throughput.json against
the committed baseline. Fails (exit 1) when the fresh run regresses by more
than --tolerance (default 15 %) on either headline metric:

  * packed single-thread GEMM GFLOP/s
  * per-network batch inference images/sec (parallel), per precision row
    (fp32 and, when present, int8)

Both modes also validate the int8 schema additions when present (qgemm_tier,
the qgemm kernel table, int8_vs_fp32_gemm_speedup) and enforce that every
int8 batch row's accuracy stays within 0.5 pp of its fp32 twin. The
"activation" section, when present, must keep each kernel's measured
max_abs_error inside the bounds advertised in src/nn/act_kernels.h, and the
"direct_conv" section's speedups must reproduce from their own timings. In
compare mode, runs recorded with >= 2 effective threads additionally assert
parallel speedup >= 0.98 on every batch row.

Runs whose workloads are not comparable (different seed, gemm_size or image
count) fail immediately rather than producing a meaningless diff -- the
throughput harness pins its seed via --seed exactly so that this comparison
is apples-to-apples. Improvements are reported but never fail the check.

With --determinism-only the baseline is not read at all: the check passes iff
the fresh JSON is well-formed, every network's serial and threaded results
are bit-identical, and (when the attribution section is present) the serial
and parallel attributed OPS totals agree exactly. That is the mode CI uses --
hosted runners have different hardware from the machine that produced the
committed baseline, so absolute images/sec are not comparable there, but the
determinism guarantees must hold everywhere.

When the fresh JSON carries a "serving" section (written by bench/serving),
both throughput modes validate it: per-row request accounting must balance
(completed + rejected + expired == submitted -- the harness drains on
shutdown), latency percentiles must be ordered (p50 <= p95 <= p99), and
every row must report identical_to_offline=true -- the serving path is
required to be bit-identical to direct batch inference.

**Report mode** (--validate-report FILE): validate a cdl-run-report/1 JSON
produced by `cdl_eval --report` / `cdl_train --report`. Checks the schema,
that the per-layer attribution rows sum bit-exactly (OPS) to the whole-run
total, that attributed time is within --tolerance of the measured wall time,
and that perf fields degrade to null (never garbage) when hardware counters
were unavailable.

**Serve-report mode** (--validate-serving FILE): validate a
cdl-serve-report/1 JSON produced by `cdl_serve --report`. Checks the schema,
that per-model request accounting balances (submitted = accepted + rejected,
accepted = completed + expired + shutdown), that the latency percentiles are
ordered, that the per-phase latency means (queue / batch / compute) sum to
the end-to-end mean, that exit counts balance against completions, and that
the drift block respects its bounds.

**Telemetry mode** (--validate-telemetry FILE): validate a
cdl-serve-telemetry/1 JSONL stream produced by `cdl_serve --telemetry-out`.
Every line must parse, the header must lead, timestamps must be monotonic,
per-model counters may only increase across samples, exit counts must sum to
completions, and drift scores must stay in bounds. May be combined with
--validate-serving to check both artifacts of one run.

**Train-report mode** (--validate-train-report FILE): validate a
cdl-train-report/1 JSON produced by `cdl_train --train-report`. Checks the
schema, the baseline loss curve (one record per epoch with per-parameter
gradient/weight statistics), the per-stage LC curves, and -- the load-bearing
invariant -- that every Algorithm-1 admission record's gain reproduces
    G_i = (gamma_base - gamma_i) * Cl_i - gamma_i * (I_i - Cl_i)
from its own recorded inputs. With --train-log LOG the companion JSONL event
stream (cdl-train-events/1) is validated against the report too: every line
parses, the header/terminator events bracket the run, admission events
recompute, and the streamed curves match the report's.

Stdlib only.

Usage:
    python3 scripts/bench_check.py --fresh build/BENCH_throughput.json \
        [--baseline BENCH_throughput.json] [--tolerance 0.15] \
        [--determinism-only]
    python3 scripts/bench_check.py --validate-report report.json \
        [--tolerance 0.5]
    python3 scripts/bench_check.py --validate-train-report train.json \
        [--train-log train.jsonl]
"""

import argparse
import json
import math
import sys

RUN_REPORT_SCHEMA = "cdl-run-report/1"
SERVE_REPORT_SCHEMA = "cdl-serve-report/1"
TRAIN_REPORT_SCHEMA = "cdl-train-report/1"
TRAIN_EVENTS_SCHEMA = "cdl-train-events/1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e.msg} at line "
                 f"{e.lineno} column {e.colno}")


def fail(msg):
    sys.exit(f"error: {msg}")


def require(doc, key, types, where):
    """Presence + type check with a readable error."""
    if key not in doc:
        fail(f"{where}: missing required field '{key}'")
    if not isinstance(doc[key], types):
        names = (types if isinstance(types, tuple) else (types,))
        fail(f"{where}: field '{key}' should be "
             f"{'/'.join(t.__name__ for t in names)}, got "
             f"{type(doc[key]).__name__} ({doc[key]!r})")
    return doc[key]


def gemm_gflops(doc, kernel):
    for row in doc.get("gemm", []):
        if row.get("kernel") == kernel:
            return float(row["gflops"])
    fail(f"no '{kernel}' row in gemm section")


def batch_rows(doc):
    """Rows keyed by network/precision. Pre-int8 baselines carry no
    'precision' field; their rows key as fp32."""
    rows = {}
    for row in doc.get("batch_inference", []):
        rows[row["network"] + "/" + row.get("precision", "fp32")] = row
    if not rows:
        fail("empty batch_inference section")
    return rows


def validate_qgemm_section(doc, path):
    """Schema of the int8 GEMM section (absent in pre-int8 baselines)."""
    if "qgemm" not in doc:
        return
    require(doc, "qgemm_tier", str, path)
    rows = require(doc, "qgemm", list, path)
    for i, row in enumerate(rows):
        where = f"{path}.qgemm[{i}]"
        require(row, "kernel", str, where)
        require(row, "gops", (int, float), where)
        require(row, "ms_per_call", (int, float), where)
    require(doc, "int8_vs_fp32_gemm_speedup", (int, float), path)


"""Hard error bounds for the activation approximation rows, mirroring
kSigmoidMaxAbsError / kTanhMaxAbsError in src/nn/act_kernels.h (relu is
exact)."""
ACTIVATION_ERROR_BOUNDS = {"sigmoid": 4.0e-7, "tanh": 1.0e-6, "relu": 0.0}


def validate_activation_section(doc, path):
    """Schema + error bounds of the activation kernel section, when present."""
    if "activation" not in doc:
        return
    section = require(doc, "activation", dict, path)
    where = f"{path}.activation"
    require(section, "tier", str, where)
    rows = require(section, "rows", list, where)
    if not rows:
        fail(f"{where}: empty rows")
    for i, row in enumerate(rows):
        row_where = f"{where}.rows[{i}]"
        kernel = require(row, "kernel", str, row_where)
        if require(row, "melem_per_sec", (int, float), row_where) <= 0:
            fail(f"{row_where}: melem_per_sec must be positive")
        err = require(row, "max_abs_error", (int, float), row_where)
        bound = ACTIVATION_ERROR_BOUNDS.get(kernel)
        if bound is None:
            fail(f"{row_where}: unknown activation kernel '{kernel}'")
        if err > bound:
            fail(f"{row_where}: {kernel} max_abs_error {err} exceeds the "
                 f"advertised bound {bound}")


def validate_direct_conv_section(doc, path):
    """Schema of the direct-conv-vs-im2col section, when present. The harness
    verifies integer equality of the two routes before writing the row, so
    this check only needs the timings to be sane."""
    if "direct_conv" not in doc:
        return
    section = require(doc, "direct_conv", dict, path)
    where = f"{path}.direct_conv"
    require(section, "tier", str, where)
    rows = require(section, "rows", list, where)
    if not rows:
        fail(f"{where}: empty rows")
    for i, row in enumerate(rows):
        row_where = f"{where}.rows[{i}]"
        require(row, "shape", str, row_where)
        direct = require(row, "direct_ns", (int, float), row_where)
        im2col = require(row, "im2col_gemm_ns", (int, float), row_where)
        speedup = require(row, "speedup", (int, float), row_where)
        if direct <= 0 or im2col <= 0:
            fail(f"{row_where}: timings must be positive "
                 f"(direct_ns={direct}, im2col_gemm_ns={im2col})")
        if not math.isclose(speedup, im2col / direct, rel_tol=0.01):
            fail(f"{row_where}: speedup {speedup} does not reproduce from "
                 f"im2col_gemm_ns / direct_ns = {im2col / direct:.3f}")
        routed = row.get("routed")
        if routed is not None and routed not in ("direct", "im2col+gemm"):
            fail(f"{row_where}: routed must be 'direct' or 'im2col+gemm', "
                 f"got {routed!r}")


def check_batch_energy(energy, where):
    """Energy-balance invariants of a batch row's energy block (written by
    bench/throughput from the EnergyMeter fold). Both are *exact* equalities:
    the C++ side sums doubles in stage order and exports them at %.17g (full
    round-trip precision), so re-summing here in the same order must
    reproduce the totals bit-for-bit."""
    total = float(require(energy, "total_pj", (int, float), where))
    weighted = float(require(energy, "exit_weighted_pj_per_image",
                             (int, float), where))
    stages = require(energy, "stages", list, where)
    acc = 0.0
    for i, stage in enumerate(stages):
        s_where = f"{where}.stages[{i}]"
        require(stage, "stage", int, s_where)
        if require(stage, "samples", int, s_where) < 0:
            fail(f"{s_where}: negative sample count")
        e = float(require(stage, "energy_pj", (int, float), s_where))
        if e < 0 or float(require(stage, "per_image_pj", (int, float),
                                  s_where)) < 0:
            fail(f"{s_where}: negative energy")
        acc += e
    if acc != total:
        fail(f"{where}: per-stage energies sum to {acc!r} but total_pj is "
             f"{total!r} -- energy balance broken")

    table = require(energy, "exit_table", list, where)
    if not table:
        fail(f"{where}: empty exit_table")
    exits_total = 0
    prev_cum = 0.0
    for s, entry in enumerate(table):
        e_where = f"{where}.exit_table[{s}]"
        require(entry, "stage", int, e_where)
        cum = float(require(entry, "cum_pj", (int, float), e_where))
        if cum < prev_cum:
            fail(f"{e_where}: cumulative exit energy decreased "
                 f"({prev_cum} -> {cum})")
        prev_cum = cum
        count = require(entry, "exits", int, e_where)
        if count < 0:
            fail(f"{e_where}: negative exit count")
        exits_total += count
    if exits_total > 0:
        # The fig6_energy weighting, in the same FP order as the C++ side:
        # sum of exit_fraction(s) * cumulative(s) over stages in index order.
        recomputed = 0.0
        for entry in table:
            recomputed += (entry["exits"] / exits_total) * \
                float(entry["cum_pj"])
        if recomputed != weighted:
            fail(f"{where}: exit-weighted energy {weighted!r} does not "
                 f"reproduce from the exit table ({recomputed!r}) -- "
                 f"offline/live energy accounting diverged")


def check_parallel_speedup(doc, path):
    """With >= 2 effective worker threads, the parallel batch path must not
    be slower than serial (the pool clamps oversubscription, so a recorded
    thread count >= 2 means the threads really ran concurrently). 0.98
    tolerates timing jitter; anything lower is a real scheduling problem."""
    if doc.get("threads", 0) < 2:
        return
    for net, row in sorted(batch_rows(doc).items()):
        if "speedup" not in row:
            continue
        speedup = float(row["speedup"])
        if speedup < 0.98:
            fail(f"{path}:{net}: parallel speedup {speedup:.3f} < 0.98 at "
                 f"{doc['threads']} threads -- parallel path slower than "
                 f"serial")


def check_int8_accuracy(doc, path):
    """Every int8 batch row must stay within 0.5 pp of its fp32 twin."""
    rows = batch_rows(doc)
    for key, row in sorted(rows.items()):
        if row.get("precision") != "int8":
            continue
        fp32 = rows.get(row["network"] + "/fp32")
        if fp32 is None or "accuracy" not in row or "accuracy" not in fp32:
            continue
        drop = float(fp32["accuracy"]) - float(row["accuracy"])
        if drop > 0.005 + 1e-9:
            fail(f"{path}:{row['network']}: int8 accuracy drops "
                 f"{100.0 * drop:.2f} pp vs fp32 (limit 0.5 pp)")


# --- serving section / serve-report validation --------------------------------

SERVING_ROW_COUNTS = ("submitted", "completed", "rejected", "expired",
                      "slo_miss")
SERVING_ROW_NUMBERS = ("offered_rate_ips", "sustained_ips", "mean_batch",
                       "latency_ms_p50", "latency_ms_p95", "latency_ms_p99")


def check_percentile_order(row, where):
    p50 = float(row["latency_ms_p50"])
    p95 = float(row["latency_ms_p95"])
    p99 = float(row["latency_ms_p99"])
    if not p50 <= p95 <= p99:
        fail(f"{where}: latency percentiles out of order "
             f"(p50={p50}, p95={p95}, p99={p99})")


def check_phase_sum(queue_ms, batch_ms, compute_ms, mean_ms, where,
                    abs_tol=2e-3):
    """The engine derives the three phases from the latency's own clock
    stamps, so their means must sum to the end-to-end mean (tolerance covers
    JSON rounding only)."""
    for name, value in (("queue", queue_ms), ("batch", batch_ms),
                        ("compute", compute_ms)):
        if value < 0:
            fail(f"{where}: phase '{name}' mean is negative ({value})")
    total = queue_ms + batch_ms + compute_ms
    if not math.isclose(total, mean_ms, rel_tol=1e-4, abs_tol=abs_tol):
        fail(f"{where}: phase decomposition broken -- queue {queue_ms} + "
             f"batch {batch_ms} + compute {compute_ms} = {total} != "
             f"latency mean {mean_ms}")


def check_drift_block(drift, where):
    windows = require(drift, "windows", int, where)
    events = require(drift, "events", int, where)
    score = require(drift, "score", (int, float), where)
    max_score = require(drift, "max_score", (int, float), where)
    first = require(drift, "first_drift_window", int, where)
    if windows < 0 or events < 0:
        fail(f"{where}: negative drift counters")
    if events > windows:
        fail(f"{where}: drift events {events} exceed scored windows "
             f"{windows}")
    # Scores are chi-square distances (>= 0) once a window scored; the
    # sentinel -1 means no window completed yet.
    for name, value in (("score", score), ("max_score", max_score)):
        if value < 0 and value != -1:
            fail(f"{where}: drift {name} {value} outside [0, inf) and not "
                 f"the -1 sentinel")
    if windows == 0 and (score != -1 or max_score != -1):
        fail(f"{where}: no scored windows but drift score is {score}")
    if score > max_score:
        fail(f"{where}: latest drift score {score} exceeds max_score "
             f"{max_score}")
    if events > 0 and first < 0:
        fail(f"{where}: {events} drift events but first_drift_window is "
             f"{first}")
    if events == 0 and first != -1:
        fail(f"{where}: no drift events but first_drift_window is {first}")


def check_exits(exits, completed, where):
    if not isinstance(exits, list):
        fail(f"{where}: exits should be a list")
    total = 0
    for i, count in enumerate(exits):
        if not isinstance(count, int) or count < 0:
            fail(f"{where}: exits[{i}] should be a non-negative int, got "
                 f"{count!r}")
        total += count
    if total != completed:
        fail(f"{where}: exit counts sum to {total} but {completed} requests "
             f"completed")


def validate_serving_section(doc, path):
    """Schema + invariants of the bench/serving section, when present."""
    if "serving" not in doc:
        return False
    serving = require(doc, "serving", dict, path)
    where = f"{path}.serving"
    for key in ("images", "workers", "queue_capacity", "max_batch",
                "max_delay_us", "seed"):
        require(serving, key, int, where)
    rows = require(serving, "rows", list, where)
    if not rows:
        fail(f"{where}: empty rows")
    for i, row in enumerate(rows):
        row_where = f"{where}.rows[{i}]"
        require(row, "network", str, row_where)
        require(row, "precision", str, row_where)
        for key in SERVING_ROW_COUNTS:
            if require(row, key, int, row_where) < 0:
                fail(f"{row_where}: '{key}' is negative")
        for key in SERVING_ROW_NUMBERS:
            require(row, key, (int, float), row_where)
        # The harness drains on shutdown, so every submitted request ends
        # completed, rejected (queue full) or expired (deadline).
        accounted = row["completed"] + row["rejected"] + row["expired"]
        if accounted != row["submitted"]:
            fail(f"{row_where}: request accounting broken -- completed "
                 f"{row['completed']} + rejected {row['rejected']} + expired "
                 f"{row['expired']} = {accounted} != submitted "
                 f"{row['submitted']}")
        check_percentile_order(row, row_where)
        # Phase breakdown fields (absent in pre-phase baselines).
        if "phase_ms_queue_mean" in row:
            check_phase_sum(
                float(require(row, "phase_ms_queue_mean", (int, float),
                              row_where)),
                float(require(row, "phase_ms_batch_mean", (int, float),
                              row_where)),
                float(require(row, "phase_ms_compute_mean", (int, float),
                              row_where)),
                float(require(row, "latency_ms_mean", (int, float),
                              row_where)),
                row_where)
        if not require(row, "identical_to_offline", bool, row_where):
            fail(f"{row_where}: served results are not bit-identical to "
                 f"offline batch inference -- serving determinism broken")
        # Energy fields (absent in pre-energy baselines).
        if "energy_pj_mean" in row:
            mean = float(require(row, "energy_pj_mean", (int, float),
                                 row_where))
            total = float(require(row, "energy_pj_total", (int, float),
                                  row_where))
            mj = float(require(row, "mj_per_image", (int, float), row_where))
            if mean < 0 or total < 0:
                fail(f"{row_where}: negative served energy")
            if row["completed"] > 0 and mean > 0 and total < mean:
                fail(f"{row_where}: energy total {total} below the per-"
                     f"request mean {mean}")
            if not math.isclose(mj, mean * 1e-9, rel_tol=1e-4,
                                abs_tol=1e-12):
                fail(f"{row_where}: mj_per_image {mj} does not reproduce "
                     f"from energy_pj_mean * 1e-9 = {mean * 1e-9}")
    # The per-network fp32-vs-int8 served energy summary, when present.
    if "energy" in serving:
        pairs = require(serving, "energy", list, where)
        for i, pair in enumerate(pairs):
            p_where = f"{where}.energy[{i}]"
            require(pair, "network", str, p_where)
            fp32 = float(require(pair, "fp32_mj_per_image", (int, float),
                                 p_where))
            int8 = float(require(pair, "int8_mj_per_image", (int, float),
                                 p_where))
            ratio = float(require(pair, "int8_vs_fp32", (int, float),
                                  p_where))
            if fp32 < 0 or int8 < 0:
                fail(f"{p_where}: negative mJ/image")
            if fp32 > 0 and not math.isclose(ratio, int8 / fp32,
                                             rel_tol=1e-3, abs_tol=1e-4):
                fail(f"{p_where}: int8_vs_fp32 {ratio} does not reproduce "
                     f"from {int8} / {fp32}")
            if fp32 > 0 and int8 > 0 and int8 >= fp32:
                fail(f"{p_where}: int8 serving energy {int8} mJ/image is "
                     f"not below fp32 {fp32} -- the int8 datapath benefit "
                     f"disappeared")
    return True


def check_report_energy_block(e, where):
    """Per-model energy block of a cdl-serve-report/1."""
    for key in ("pj_p50", "pj_p95", "pj_p99", "pj_mean", "pj_max",
                "pj_total", "mj_per_image", "joules_total"):
        require(e, key, (int, float), where)
    p50, p95, p99 = float(e["pj_p50"]), float(e["pj_p95"]), float(e["pj_p99"])
    mean, pmax = float(e["pj_mean"]), float(e["pj_max"])
    total = float(e["pj_total"])
    if not 0.0 <= p50 <= p95 <= p99:
        fail(f"{where}: energy percentiles out of order "
             f"(p50={p50}, p95={p95}, p99={p99})")
    if p99 > pmax or mean > pmax:
        fail(f"{where}: p99 {p99} / mean {mean} exceed max {pmax}")
    if total < 0:
        fail(f"{where}: negative cumulative energy ({total})")
    if not math.isclose(float(e["mj_per_image"]), mean * 1e-9,
                        rel_tol=1e-4, abs_tol=1e-12):
        fail(f"{where}: mj_per_image does not reproduce from pj_mean")
    if not math.isclose(float(e["joules_total"]), total * 1e-12,
                        rel_tol=1e-4, abs_tol=1e-15):
        fail(f"{where}: joules_total does not reproduce from pj_total")


def check_energy_budget_block(budget, where):
    """The watchdog block (serve report and telemetry samples share it)."""
    require(budget, "enabled", bool, where)
    if float(require(budget, "budget_mj_per_s", (int, float), where)) < 0:
        fail(f"{where}: negative budget")
    windows = require(budget, "windows", int, where)
    breaches = require(budget, "breaches", int, where)
    rate = float(require(budget, "rate_mj_per_s", (int, float), where))
    max_rate = float(require(budget, "max_rate_mj_per_s", (int, float),
                             where))
    first = require(budget, "first_breach_window", int, where)
    if windows < 0 or breaches < 0:
        fail(f"{where}: negative window counters")
    if breaches > windows:
        fail(f"{where}: breaches {breaches} exceed scored windows {windows}")
    for name, value in (("rate_mj_per_s", rate),
                        ("max_rate_mj_per_s", max_rate)):
        if value < 0 and value != -1:
            fail(f"{where}: {name} {value} is negative and not the -1 "
                 f"sentinel")
    if windows == 0 and (rate != -1 or max_rate != -1):
        fail(f"{where}: no scored windows but a rate is reported")
    if rate > max_rate:
        fail(f"{where}: latest rate {rate} exceeds max rate {max_rate}")
    if breaches > 0 and first < 0:
        fail(f"{where}: {breaches} breach(es) but first_breach_window is "
             f"{first}")
    if breaches == 0 and first != -1:
        fail(f"{where}: no breaches but first_breach_window is {first}")
    if float(require(budget, "total_energy_pj", (int, float), where)) < 0:
        fail(f"{where}: negative total energy")


def validate_serve_report(path):
    doc = load(path)
    where = path
    schema = require(doc, "schema", str, where)
    if schema != SERVE_REPORT_SCHEMA:
        fail(f"{where}: schema is '{schema}', expected "
             f"'{SERVE_REPORT_SCHEMA}'")
    require(doc, "tool", str, where)
    for key in ("images", "workers", "queue_capacity", "max_batch",
                "max_delay_us", "scored"):
        require(doc, key, int, where)
    for key in ("wall_s", "sustained_ips", "accuracy"):
        require(doc, key, (int, float), where)
    models = require(doc, "models", list, where)
    if not models:
        fail(f"{where}: empty models list")
    for i, row in enumerate(models):
        row_where = f"{where}.models[{i}]"
        require(row, "name", str, row_where)
        for key in ("submitted", "accepted", "completed", "rejected",
                    "expired", "shutdown", "slo_miss", "batches"):
            if require(row, key, int, row_where) < 0:
                fail(f"{row_where}: '{key}' is negative")
        if row["accepted"] + row["rejected"] != row["submitted"]:
            fail(f"{row_where}: accepted {row['accepted']} + rejected "
                 f"{row['rejected']} != submitted {row['submitted']}")
        if row["completed"] + row["expired"] + row["shutdown"] \
                != row["accepted"]:
            fail(f"{row_where}: completed {row['completed']} + expired "
                 f"{row['expired']} + shutdown {row['shutdown']} != "
                 f"accepted {row['accepted']}")
        require(row, "mean_batch", (int, float), row_where)
        check_percentile_order(row, row_where)
        for key in ("latency_ms_mean", "latency_ms_max"):
            require(row, key, (int, float), row_where)
        phase = require(row, "phase_ms", dict, row_where)
        phase_where = f"{row_where}.phase_ms"
        for key in ("queue_p50", "queue_p95", "queue_p99", "queue_mean",
                    "batch_p50", "batch_p95", "batch_p99", "batch_mean",
                    "compute_p50", "compute_p95", "compute_p99",
                    "compute_mean"):
            require(phase, key, (int, float), phase_where)
        if row["completed"] > 0:
            check_phase_sum(float(phase["queue_mean"]),
                            float(phase["batch_mean"]),
                            float(phase["compute_mean"]),
                            float(row["latency_ms_mean"]), phase_where)
        check_exits(require(row, "exits", list, row_where), row["completed"],
                    f"{row_where}.exits")
        check_drift_block(require(row, "drift", dict, row_where),
                          f"{row_where}.drift")
        # Energy attribution block (absent in pre-energy reports).
        if "energy" in row:
            check_report_energy_block(require(row, "energy", dict, row_where),
                                      f"{row_where}.energy")
    if "energy_budget" in doc:
        check_energy_budget_block(
            require(doc, "energy_budget", dict, where),
            f"{where}.energy_budget")
    print(f"{path}: valid {SERVE_REPORT_SCHEMA} ({doc['images']} images, "
          f"{len(models)} model(s), accounting balanced, percentiles "
          f"ordered, phase decomposition exact, drift block sane, energy "
          f"blocks sane)")


# --- serve-telemetry (JSONL) validation ---------------------------------------

SERVE_TELEMETRY_SCHEMA = "cdl-serve-telemetry/1"
TELEMETRY_COUNTER_KEYS = ("submitted", "accepted", "completed", "rejected",
                          "expired", "slo_miss", "batches")


def validate_telemetry(path):
    """Validates a cdl-serve-telemetry/1 JSONL stream: every line parses, the
    header leads, timestamps are monotonic, per-model counters only ever
    increase (counter semantics), gauges stay in range, exit counts balance
    against completions, and drift scores respect their bounds."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not lines:
        fail(f"{path}: empty telemetry stream")

    events = []
    for i, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"{path}:{i + 1}: not valid JSON ({e.msg})")
        if not isinstance(events[-1], dict):
            fail(f"{path}:{i + 1}: every line must be a JSON object")
        schema = events[-1].get("schema")
        if schema != SERVE_TELEMETRY_SCHEMA:
            fail(f"{path}:{i + 1}: schema is {schema!r}, expected "
                 f"'{SERVE_TELEMETRY_SCHEMA}'")

    header = events[0]
    if header.get("event") != "start":
        fail(f"{path}: first event is {header.get('event')!r}, expected "
             f"'start' (rotated files restart with a fresh header)")
    for key in ("t_ns", "interval_ns", "rotate_bytes"):
        require(header, key, int, f"{path}:1")
    declared = require(header, "models", list, f"{path}:1")

    samples = 0
    last_t = header["t_ns"]
    last_counters = {}  # model name -> {counter: value}
    last_energy_total = {}  # model name -> cumulative pJ
    for i, event in enumerate(events[1:], start=2):
        where = f"{path}:{i}"
        kind = event.get("event")
        if kind != "sample":
            fail(f"{where}: unexpected event {kind!r} after the header")
        t = require(event, "t_ns", int, where)
        if t < last_t:
            fail(f"{where}: t_ns went backwards ({t} < {last_t}) -- "
                 f"timestamps must be monotonic")
        last_t = t
        for key in ("queue_depth", "in_flight"):
            if require(event, key, int, where) < 0:
                fail(f"{where}: gauge '{key}' is negative")
        models = require(event, "models", list, where)
        if len(models) > len(declared):
            fail(f"{where}: sample reports {len(models)} models but the "
                 f"header declared {len(declared)}")
        for j, row in enumerate(models):
            row_where = f"{where}.models[{j}]"
            name = require(row, "model", str, row_where)
            for key in TELEMETRY_COUNTER_KEYS:
                if require(row, key, int, row_where) < 0:
                    fail(f"{row_where}: '{key}' is negative")
            if row["accepted"] + row["rejected"] != row["submitted"]:
                fail(f"{row_where}: accepted {row['accepted']} + rejected "
                     f"{row['rejected']} != submitted {row['submitted']}")
            if row["completed"] + row["expired"] > row["accepted"]:
                fail(f"{row_where}: completed {row['completed']} + expired "
                     f"{row['expired']} exceed accepted {row['accepted']}")
            prev = last_counters.get(name)
            if prev is not None:
                for key in TELEMETRY_COUNTER_KEYS:
                    if row[key] < prev[key]:
                        fail(f"{row_where}: counter '{key}' decreased "
                             f"({prev[key]} -> {row[key]}) -- counters must "
                             f"be monotonic")
            last_counters[name] = {k: row[k] for k in TELEMETRY_COUNTER_KEYS}
            phase = require(row, "phase_ms", dict, row_where)
            if row["completed"] > 0:
                check_phase_sum(float(phase["queue_mean"]),
                                float(phase["batch_mean"]),
                                float(phase["compute_mean"]),
                                float(require(row, "latency_ms", dict,
                                              row_where)["mean"]),
                                f"{row_where}.phase_ms", abs_tol=1e-6)
            check_exits(require(row, "exits", list, row_where),
                        row["completed"], f"{row_where}.exits")
            check_drift_block(require(row, "drift", dict, row_where),
                              f"{row_where}.drift")
            # Per-interval energy (absent in pre-energy streams): the
            # cumulative total is a counter, percentiles stay ordered.
            if "energy_pj" in row:
                e = require(row, "energy_pj", dict, row_where)
                e_where = f"{row_where}.energy_pj"
                for key in ("p50", "p95", "p99", "mean", "max", "total"):
                    require(e, key, (int, float), e_where)
                if not 0.0 <= float(e["p50"]) <= float(e["p95"]) \
                        <= float(e["p99"]) <= float(e["max"]):
                    fail(f"{e_where}: energy percentiles out of order")
                total = float(e["total"])
                if total < last_energy_total.get(name, 0.0):
                    fail(f"{e_where}: cumulative energy decreased "
                         f"({last_energy_total[name]} -> {total}) -- energy "
                         f"totals must be monotonic")
                last_energy_total[name] = total
        if "energy_budget" in event:
            check_energy_budget_block(
                require(event, "energy_budget", dict, where),
                f"{where}.energy_budget")
        samples += 1

    if samples == 0:
        fail(f"{path}: header only -- no samples were written")
    print(f"{path}: valid {SERVE_TELEMETRY_SCHEMA} ({samples} sample(s), "
          f"{len(declared)} model(s), timestamps monotonic, counters "
          f"monotonic, exits balanced, drift scores in bounds)")


# --- attribution / perf schema (shared by bench rows and run reports) --------

LAYER_ROW_KEYS = ("stage", "layer", "name", "span", "samples", "ops",
                  "time_ns")
PERF_VALUE_KEYS = ("cycles", "instructions", "cache_references",
                   "cache_misses", "branch_misses")


def check_layer_rows(rows, where):
    total_ops = 0
    total_time = 0
    for i, row in enumerate(rows):
        row_where = f"{where}[{i}]"
        for key in LAYER_ROW_KEYS:
            types = str if key == "name" else int
            require(row, key, types, row_where)
        for key in ("span", "samples", "ops", "time_ns"):
            if row[key] < 0:
                fail(f"{row_where}: '{key}' is negative ({row[key]})")
        total_ops += row["ops"]
        total_time += row["time_ns"]
    return total_ops, total_time


def check_parallel_for(pf, where):
    for key in ("invocations", "items", "time_ns"):
        require(pf, key, int, where)


def check_perf_reading(reading, where):
    available = require(reading, "available", bool, where)
    require(reading, "wall_ns", int, where)
    for key in PERF_VALUE_KEYS:
        if key not in reading:
            fail(f"{where}: missing counter field '{key}'")
        value = reading[key]
        if value is not None and not isinstance(value, int):
            fail(f"{where}: counter '{key}' should be int or null, got "
                 f"{type(value).__name__}")
        if not available and value is not None:
            fail(f"{where}: counters unavailable but '{key}' is not null "
                 f"({value}) -- degraded readings must be null")


def check_attribution(attr, where):
    """One attributed pass (bench JSON); returns its exact OPS total."""
    require(attr, "time_ns", int, where)
    declared_ops = require(attr, "ops", int, where)
    check_parallel_for(require(attr, "parallel_for", dict, where),
                       f"{where}.parallel_for")
    rows = require(attr, "rows", list, where)
    row_ops, _ = check_layer_rows(rows, f"{where}.rows")
    if row_ops != declared_ops:
        fail(f"{where}: rows sum to {row_ops} OPS but 'ops' says "
             f"{declared_ops}")
    return declared_ops


def validate_throughput_schema(doc, path):
    """Validates the optional attribution/perf sections of each batch row and
    the serial-vs-parallel attributed-OPS invariant. Returns the list of
    networks that carried an attribution section."""
    attributed = []
    for net, row in sorted(batch_rows(doc).items()):
        where = f"{path}:{net}"
        if "attribution" in row:
            attr = require(row, "attribution", dict, where)
            serial_ops = check_attribution(
                require(attr, "serial", dict, f"{where}.attribution"),
                f"{where}.attribution.serial")
            parallel_ops = check_attribution(
                require(attr, "parallel", dict, f"{where}.attribution"),
                f"{where}.attribution.parallel")
            if serial_ops != parallel_ops:
                fail(f"{where}: attributed OPS differ serial vs parallel "
                     f"({serial_ops} vs {parallel_ops}) -- attribution "
                     f"determinism broken")
            attributed.append(net)
        if "perf" in row:
            perf = require(row, "perf", dict, where)
            require(perf, "attempted", bool, f"{where}.perf")
            check_perf_reading(require(perf, "reading", dict, f"{where}.perf"),
                               f"{where}.perf.reading")
        if "energy" in row:
            check_batch_energy(require(row, "energy", dict, where),
                               f"{where}.energy")
    return attributed


# --- run-report validation ----------------------------------------------------

def validate_report(path, tolerance):
    doc = load(path)
    where = path
    schema = require(doc, "schema", str, where)
    if schema != RUN_REPORT_SCHEMA:
        fail(f"{where}: schema is '{schema}', expected '{RUN_REPORT_SCHEMA}'")
    require(doc, "tool", str, where)
    require(doc, "network", str, where)
    for key in ("threads", "samples", "seed", "total_time_ns", "total_ops",
                "attributed_ops", "attributed_time_ns"):
        require(doc, key, int, where)

    rows = require(doc, "layer_profile", list, where)
    row_ops, row_time = check_layer_rows(rows, f"{where}.layer_profile")
    if row_ops != doc["attributed_ops"]:
        fail(f"{where}: layer_profile rows sum to {row_ops} OPS but "
             f"attributed_ops says {doc['attributed_ops']}")
    if row_time != doc["attributed_time_ns"]:
        fail(f"{where}: layer_profile rows sum to {row_time} ns but "
             f"attributed_time_ns says {doc['attributed_time_ns']}")

    # The load-bearing invariant: attribution reproduces the exit-accounted
    # whole-run OPS bit-exactly, for any thread count.
    if doc["attributed_ops"] != doc["total_ops"]:
        fail(f"{where}: attributed_ops {doc['attributed_ops']} != total_ops "
             f"{doc['total_ops']} -- per-layer attribution is broken")

    # Time is measured around the region, attribution sits inside it, so the
    # sums only agree approximately.
    total_ns = doc["total_time_ns"]
    if total_ns > 0:
        drift = abs(doc["attributed_time_ns"] - total_ns) / total_ns
        if drift > tolerance:
            fail(f"{where}: attributed_time_ns {doc['attributed_time_ns']} "
                 f"is {drift:.1%} away from total_time_ns {total_ns} "
                 f"(tolerance {tolerance:.0%})")

    check_parallel_for(require(doc, "parallel_for", dict, where),
                       f"{where}.parallel_for")

    perf = require(doc, "perf", dict, where)
    require(perf, "attempted", bool, f"{where}.perf")
    require(perf, "reason", str, f"{where}.perf")
    check_perf_reading(require(perf, "reading", dict, f"{where}.perf"),
                       f"{where}.perf.reading")

    exit_profile = doc.get("exit_profile")
    if exit_profile is not None:
        if not isinstance(exit_profile, list):
            fail(f"{where}: exit_profile should be a list or null")
        exits = 0
        for i, stage in enumerate(exit_profile):
            stage_where = f"{where}.exit_profile[{i}]"
            require(stage, "stage", str, stage_where)
            exits += require(stage, "exits", int, stage_where)
            require(stage, "accuracy", (int, float), stage_where)
            require(stage, "exit_fraction", (int, float), stage_where)
        if exits != doc["samples"]:
            fail(f"{where}: exit_profile exits sum to {exits} but the run "
                 f"classified {doc['samples']} samples")

    metrics = doc.get("metrics")
    if metrics is not None and not isinstance(metrics, dict):
        fail(f"{where}: metrics should be an object or null")

    print(f"{path}: valid {RUN_REPORT_SCHEMA} ({doc['tool']}, "
          f"{doc['samples']} samples, {len(rows)} attribution rows, "
          f"ops exact, time within {tolerance:.0%})")


# --- train-report validation --------------------------------------------------

PARAM_STAT_KEYS = ("grad_l2", "grad_max", "update_l2", "update_max",
                   "weight_l2", "weight_max")
ADMISSION_KEYS = ("stage", "prefix_layers", "gamma_base", "gamma_i",
                  "reached", "classified", "gain", "epsilon", "train_delta",
                  "admitted")


def check_param_stats(params, where):
    for i, p in enumerate(params):
        p_where = f"{where}.params[{i}]"
        require(p, "layer", int, p_where)
        require(p, "name", str, p_where)
        require(p, "param", str, p_where)
        for key in PARAM_STAT_KEYS:
            # null encodes a non-finite statistic (JSON has no NaN).
            if key not in p:
                fail(f"{p_where}: missing statistic '{key}'")
            if p[key] is not None and not isinstance(p[key], (int, float)):
                fail(f"{p_where}: '{key}' should be a number or null, got "
                     f"{type(p[key]).__name__}")


def check_admission(adm, where):
    """Recompute Algorithm 1's gain from the record's own inputs."""
    for key in ADMISSION_KEYS:
        types = {"stage": str, "admitted": bool,
                 "prefix_layers": int, "reached": int,
                 "classified": int}.get(key, (int, float))
        require(adm, key, types, where)
    reached, classified = adm["reached"], adm["classified"]
    if classified > reached:
        fail(f"{where}: classified {classified} exceeds reached {reached}")
    expected = ((adm["gamma_base"] - adm["gamma_i"]) * classified
                - adm["gamma_i"] * (reached - classified))
    if not math.isclose(adm["gain"], expected, rel_tol=1e-12, abs_tol=1e-6):
        fail(f"{where}: recorded gain {adm['gain']} != recomputed "
             f"(gamma_base - gamma_i)*Cl_i - gamma_i*(I_i - Cl_i) = "
             f"{expected}")


def check_lc_epochs(epochs, where):
    for i, rec in enumerate(epochs):
        e_where = f"{where}[{i}]"
        require(rec, "epoch", int, e_where)
        for key in ("loss", "lr"):
            if rec.get(key) is not None and \
                    not isinstance(rec.get(key), (int, float)):
                fail(f"{e_where}: '{key}' should be a number or null")
        if rec["epoch"] != i + 1:
            fail(f"{e_where}: epoch numbering broken "
                 f"(got {rec['epoch']}, expected {i + 1})")


def validate_train_report(path, log_path):
    doc = load(path)
    where = path
    schema = require(doc, "schema", str, where)
    if schema != TRAIN_REPORT_SCHEMA:
        fail(f"{where}: schema is '{schema}', expected "
             f"'{TRAIN_REPORT_SCHEMA}'")
    for key in ("tool", "arch", "rule", "git"):
        require(doc, key, str, where)
    for key in ("seed", "train_n", "val_n", "epochs", "lc_epochs",
                "batch_size"):
        require(doc, key, int, where)
    require(doc, "prune", bool, where)

    non_finite = doc.get("non_finite")
    diverged = non_finite is not None
    if diverged:
        nf_where = f"{where}.non_finite"
        for key in ("phase", "stage", "layer", "param", "stat", "value"):
            require(non_finite, key, str, nf_where)
        for key in ("epoch", "step"):
            require(non_finite, key, int, nf_where)

    baseline = require(doc, "baseline", dict, where)
    epochs = require(baseline, "epochs", list, f"{where}.baseline")
    for i, rec in enumerate(epochs):
        e_where = f"{where}.baseline.epochs[{i}]"
        require(rec, "epoch", int, e_where)
        require(rec, "wall_ns", int, e_where)
        for key in ("loss", "accuracy", "lr"):
            if rec.get(key) is not None and \
                    not isinstance(rec.get(key), (int, float)):
                fail(f"{e_where}: '{key}' should be a number or null")
        if rec["epoch"] != i + 1:
            fail(f"{e_where}: epoch numbering broken "
                 f"(got {rec['epoch']}, expected {i + 1})")
        check_param_stats(require(rec, "params", list, e_where), e_where)
    if not diverged and len(epochs) != doc["epochs"]:
        fail(f"{where}: baseline curve has {len(epochs)} records but the "
             f"run declared {doc['epochs']} epochs (and did not diverge)")

    stages = require(doc, "stages", list, where)
    admissions = {}
    for i, stage in enumerate(stages):
        s_where = f"{where}.stages[{i}]"
        name = require(stage, "stage", str, s_where)
        require(stage, "prefix_layers", int, s_where)
        check_lc_epochs(require(stage, "epochs", list, s_where),
                        f"{s_where}.epochs")
        adm = stage.get("admission")
        if adm is not None:
            check_admission(adm, f"{s_where}.admission")
            admissions[name] = adm

    fc = doc.get("fc_fraction")
    if not isinstance(fc, (int, float)) or not 0.0 <= fc <= 1.0:
        fail(f"{where}: fc_fraction should be a number in [0, 1], got {fc!r}")

    sel = doc.get("delta_selection")
    if sel is not None:
        for key in ("delta", "accuracy"):
            require(sel, key, (int, float), f"{where}.delta_selection")

    metrics = doc.get("metrics")
    if metrics is not None and not isinstance(metrics, dict):
        fail(f"{where}: metrics should be an object or null")

    if log_path:
        validate_train_log(log_path, doc, admissions)

    status = "diverged run, partial curves" if diverged else "complete"
    print(f"{path}: valid {TRAIN_REPORT_SCHEMA} ({doc['tool']}, "
          f"{len(epochs)} baseline epochs, {len(stages)} stage(s), "
          f"{len(admissions)} admission record(s) recomputed exactly, "
          f"{status})")


def validate_train_log(path, report, report_admissions):
    """Validates the JSONL event stream against its companion report."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not lines:
        fail(f"{path}: empty train log")

    events = []
    for i, line in enumerate(lines):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"{path}:{i + 1}: not valid JSON ({e.msg})")
        if not isinstance(events[-1], dict):
            fail(f"{path}:{i + 1}: every event must be a JSON object")

    header = events[0]
    if header.get("event") != "run_start":
        fail(f"{path}: first event is '{header.get('event')}', expected "
             f"'run_start'")
    schema = require(header, "schema", str, f"{path}:1")
    if schema != TRAIN_EVENTS_SCHEMA:
        fail(f"{path}: events schema is '{schema}', expected "
             f"'{TRAIN_EVENTS_SCHEMA}'")
    for key in ("seed", "train_n", "epochs", "lc_epochs"):
        if header.get(key) != report.get(key):
            fail(f"{path}: run_start '{key}' = {header.get(key)!r} "
                 f"disagrees with the report's {report.get(key)!r}")

    diverged = any(e.get("event") == "non_finite" for e in events)
    last = events[-1].get("event")
    if diverged:
        if last == "run_end":
            fail(f"{path}: log carries both a non_finite abort and a "
                 f"run_end -- a diverged run must not end cleanly")
    elif last != "run_end":
        fail(f"{path}: last event is '{last}', expected 'run_end' "
             f"(truncated log?)")

    epoch_events = [e for e in events if e.get("event") == "epoch"]
    if len(epoch_events) != len(report["baseline"]["epochs"]):
        fail(f"{path}: {len(epoch_events)} epoch events but the report's "
             f"baseline curve has {len(report['baseline']['epochs'])}")
    for stream, rec in zip(epoch_events, report["baseline"]["epochs"]):
        if stream.get("loss") != rec.get("loss"):
            fail(f"{path}: epoch {rec['epoch']} loss {stream.get('loss')!r} "
                 f"disagrees with the report's {rec.get('loss')!r}")

    log_admissions = [e for e in events if e.get("event") == "admission"]
    for i, adm in enumerate(log_admissions):
        check_admission(adm, f"{path}:admission[{i}]")
        ref = report_admissions.get(adm.get("stage"))
        if ref is not None and adm["gain"] != ref["gain"]:
            fail(f"{path}: admission gain for {adm['stage']} "
                 f"({adm['gain']}) disagrees with the report's "
                 f"({ref['gain']})")

    print(f"{path}: valid {TRAIN_EVENTS_SCHEMA} ({len(events)} events, "
          f"{len(epoch_events)} epoch records, {len(log_admissions)} "
          f"admission event(s) recomputed exactly)")


# --- throughput comparison ----------------------------------------------------

def check_workload_match(baseline, fresh):
    """Same seed / gemm_size / batch composition, else the diff is noise."""
    mismatches = []
    for key in ("gemm_size", "seed"):
        b, f = baseline.get(key), fresh.get(key)
        # Older baselines predate the "seed" field; skip absent keys.
        if b is not None and f is not None and b != f:
            mismatches.append(f"{key}: baseline={b} fresh={f}")
    b_rows, f_rows = batch_rows(baseline), batch_rows(fresh)
    for net in sorted(set(b_rows) & set(f_rows)):
        bi, fi = b_rows[net].get("images"), f_rows[net].get("images")
        if bi != fi:
            mismatches.append(f"{net} images: baseline={bi} fresh={fi}")
    if mismatches:
        for m in mismatches:
            print(f"workload mismatch -- {m}", file=sys.stderr)
        fail("runs are not comparable (did CDL_TEST_N or --seed change?); "
             "re-run both sides with the same workload")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh",
                    help="freshly measured BENCH_throughput.json")
    ap.add_argument("--baseline", default="BENCH_throughput.json",
                    help="committed baseline JSON (default: %(default)s)")
    ap.add_argument("--tolerance", "--threshold", type=float, default=0.15,
                    dest="tolerance",
                    help="max tolerated fractional regression / time "
                         "attribution drift (default: %(default)s; "
                         "--threshold is accepted as an alias)")
    ap.add_argument("--determinism-only", action="store_true",
                    help="skip the baseline comparison; only verify the "
                         "fresh run's serial/threaded bit-identity and "
                         "attribution invariants")
    ap.add_argument("--validate-report", metavar="FILE",
                    help="validate a cdl-run-report/1 JSON instead of "
                         "comparing throughput runs")
    ap.add_argument("--validate-serving", metavar="FILE",
                    help="validate a cdl-serve-report/1 JSON produced by "
                         "cdl_serve --report")
    ap.add_argument("--validate-telemetry", metavar="FILE",
                    help="validate a cdl-serve-telemetry/1 JSONL stream "
                         "produced by cdl_serve --telemetry-out")
    ap.add_argument("--validate-train-report", metavar="FILE",
                    help="validate a cdl-train-report/1 JSON (schema + "
                         "Algorithm-1 gain recomputation)")
    ap.add_argument("--train-log", metavar="FILE",
                    help="with --validate-train-report: also validate the "
                         "companion cdl-train-events/1 JSONL stream against "
                         "the report")
    args = ap.parse_args()

    if args.train_log and not args.validate_train_report:
        ap.error("--train-log requires --validate-train-report")
    if args.validate_train_report:
        validate_train_report(args.validate_train_report, args.train_log)
        return
    if args.validate_serving:
        validate_serve_report(args.validate_serving)
        if args.validate_telemetry:
            validate_telemetry(args.validate_telemetry)
        return
    if args.validate_telemetry:
        validate_telemetry(args.validate_telemetry)
        return
    if args.validate_report:
        validate_report(args.validate_report, args.tolerance)
        return
    if not args.fresh:
        ap.error("--fresh is required (or use --validate-report FILE)")

    fresh = load(args.fresh)
    failures = []

    attributed = validate_throughput_schema(fresh, args.fresh)
    if attributed:
        print(f"attribution sections valid (serial == parallel OPS) for: "
              f"{', '.join(attributed)}")
    validate_qgemm_section(fresh, args.fresh)
    validate_activation_section(fresh, args.fresh)
    validate_direct_conv_section(fresh, args.fresh)
    check_int8_accuracy(fresh, args.fresh)
    if validate_serving_section(fresh, args.fresh):
        print(f"serving section valid "
              f"({len(fresh['serving']['rows'])} row(s), accounting "
              f"balanced, bit-identical to offline)")

    if args.determinism_only:
        for net, row in sorted(batch_rows(fresh).items()):
            identical = row.get("results_identical", False)
            print(f"{net:42s} results_identical={identical}")
            if not identical:
                failures.append(f"{net} results_identical")
        if failures:
            fail(f"determinism guarantee broken in: {', '.join(failures)}")
        print("bench determinism check passed")
        return

    baseline = load(args.baseline)
    check_workload_match(baseline, fresh)
    check_parallel_speedup(fresh, args.fresh)

    def compare(label, base_val, fresh_val):
        ratio = fresh_val / base_val if base_val > 0 else float("inf")
        delta_pct = 100.0 * (ratio - 1.0)
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append(label)
        print(f"{label:42s} baseline {base_val:12.2f}  "
              f"fresh {fresh_val:12.2f}  {delta_pct:+7.2f} %  {status}")

    compare("packed GEMM GFLOP/s",
            gemm_gflops(baseline, "packed"), gemm_gflops(fresh, "packed"))

    b_rows, f_rows = batch_rows(baseline), batch_rows(fresh)
    for net in sorted(set(b_rows) & set(f_rows)):
        compare(f"{net} parallel images/sec",
                float(b_rows[net]["parallel_images_per_sec"]),
                float(f_rows[net]["parallel_images_per_sec"]))

    for net, row in sorted(f_rows.items()):
        if not row.get("results_identical", False):
            failures.append(f"{net} results_identical")
            print(f"{net}: serial/parallel results differ -- determinism "
                  f"guarantee broken", file=sys.stderr)

    if failures:
        fail(f"bench regression beyond {args.tolerance:.0%} "
             f"tolerance in: {', '.join(failures)}")
    print(f"bench check passed (tolerance {args.tolerance:.0%})")


if __name__ == "__main__":
    main()
