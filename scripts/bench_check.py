#!/usr/bin/env python3
"""Validate and compare CDL benchmark / run-report JSON artifacts.

Two modes:

**Throughput mode** (default): compare a fresh BENCH_throughput.json against
the committed baseline. Fails (exit 1) when the fresh run regresses by more
than --tolerance (default 15 %) on either headline metric:

  * packed single-thread GEMM GFLOP/s
  * per-network batch inference images/sec (parallel)

Runs whose workloads are not comparable (different seed, gemm_size or image
count) fail immediately rather than producing a meaningless diff -- the
throughput harness pins its seed via --seed exactly so that this comparison
is apples-to-apples. Improvements are reported but never fail the check.

With --determinism-only the baseline is not read at all: the check passes iff
the fresh JSON is well-formed, every network's serial and threaded results
are bit-identical, and (when the attribution section is present) the serial
and parallel attributed OPS totals agree exactly. That is the mode CI uses --
hosted runners have different hardware from the machine that produced the
committed baseline, so absolute images/sec are not comparable there, but the
determinism guarantees must hold everywhere.

**Report mode** (--validate-report FILE): validate a cdl-run-report/1 JSON
produced by `cdl_eval --report` / `cdl_train --report`. Checks the schema,
that the per-layer attribution rows sum bit-exactly (OPS) to the whole-run
total, that attributed time is within --tolerance of the measured wall time,
and that perf fields degrade to null (never garbage) when hardware counters
were unavailable.

Stdlib only.

Usage:
    python3 scripts/bench_check.py --fresh build/BENCH_throughput.json \
        [--baseline BENCH_throughput.json] [--tolerance 0.15] \
        [--determinism-only]
    python3 scripts/bench_check.py --validate-report report.json \
        [--tolerance 0.5]
"""

import argparse
import json
import sys

RUN_REPORT_SCHEMA = "cdl-run-report/1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e.msg} at line "
                 f"{e.lineno} column {e.colno}")


def fail(msg):
    sys.exit(f"error: {msg}")


def require(doc, key, types, where):
    """Presence + type check with a readable error."""
    if key not in doc:
        fail(f"{where}: missing required field '{key}'")
    if not isinstance(doc[key], types):
        names = (types if isinstance(types, tuple) else (types,))
        fail(f"{where}: field '{key}' should be "
             f"{'/'.join(t.__name__ for t in names)}, got "
             f"{type(doc[key]).__name__} ({doc[key]!r})")
    return doc[key]


def gemm_gflops(doc, kernel):
    for row in doc.get("gemm", []):
        if row.get("kernel") == kernel:
            return float(row["gflops"])
    fail(f"no '{kernel}' row in gemm section")


def batch_rows(doc):
    rows = {}
    for row in doc.get("batch_inference", []):
        rows[row["network"]] = row
    if not rows:
        fail("empty batch_inference section")
    return rows


# --- attribution / perf schema (shared by bench rows and run reports) --------

LAYER_ROW_KEYS = ("stage", "layer", "name", "span", "samples", "ops",
                  "time_ns")
PERF_VALUE_KEYS = ("cycles", "instructions", "cache_references",
                   "cache_misses", "branch_misses")


def check_layer_rows(rows, where):
    total_ops = 0
    total_time = 0
    for i, row in enumerate(rows):
        row_where = f"{where}[{i}]"
        for key in LAYER_ROW_KEYS:
            types = str if key == "name" else int
            require(row, key, types, row_where)
        for key in ("span", "samples", "ops", "time_ns"):
            if row[key] < 0:
                fail(f"{row_where}: '{key}' is negative ({row[key]})")
        total_ops += row["ops"]
        total_time += row["time_ns"]
    return total_ops, total_time


def check_parallel_for(pf, where):
    for key in ("invocations", "items", "time_ns"):
        require(pf, key, int, where)


def check_perf_reading(reading, where):
    available = require(reading, "available", bool, where)
    require(reading, "wall_ns", int, where)
    for key in PERF_VALUE_KEYS:
        if key not in reading:
            fail(f"{where}: missing counter field '{key}'")
        value = reading[key]
        if value is not None and not isinstance(value, int):
            fail(f"{where}: counter '{key}' should be int or null, got "
                 f"{type(value).__name__}")
        if not available and value is not None:
            fail(f"{where}: counters unavailable but '{key}' is not null "
                 f"({value}) -- degraded readings must be null")


def check_attribution(attr, where):
    """One attributed pass (bench JSON); returns its exact OPS total."""
    require(attr, "time_ns", int, where)
    declared_ops = require(attr, "ops", int, where)
    check_parallel_for(require(attr, "parallel_for", dict, where),
                       f"{where}.parallel_for")
    rows = require(attr, "rows", list, where)
    row_ops, _ = check_layer_rows(rows, f"{where}.rows")
    if row_ops != declared_ops:
        fail(f"{where}: rows sum to {row_ops} OPS but 'ops' says "
             f"{declared_ops}")
    return declared_ops


def validate_throughput_schema(doc, path):
    """Validates the optional attribution/perf sections of each batch row and
    the serial-vs-parallel attributed-OPS invariant. Returns the list of
    networks that carried an attribution section."""
    attributed = []
    for net, row in sorted(batch_rows(doc).items()):
        where = f"{path}:{net}"
        if "attribution" in row:
            attr = require(row, "attribution", dict, where)
            serial_ops = check_attribution(
                require(attr, "serial", dict, f"{where}.attribution"),
                f"{where}.attribution.serial")
            parallel_ops = check_attribution(
                require(attr, "parallel", dict, f"{where}.attribution"),
                f"{where}.attribution.parallel")
            if serial_ops != parallel_ops:
                fail(f"{where}: attributed OPS differ serial vs parallel "
                     f"({serial_ops} vs {parallel_ops}) -- attribution "
                     f"determinism broken")
            attributed.append(net)
        if "perf" in row:
            perf = require(row, "perf", dict, where)
            require(perf, "attempted", bool, f"{where}.perf")
            check_perf_reading(require(perf, "reading", dict, f"{where}.perf"),
                               f"{where}.perf.reading")
    return attributed


# --- run-report validation ----------------------------------------------------

def validate_report(path, tolerance):
    doc = load(path)
    where = path
    schema = require(doc, "schema", str, where)
    if schema != RUN_REPORT_SCHEMA:
        fail(f"{where}: schema is '{schema}', expected '{RUN_REPORT_SCHEMA}'")
    require(doc, "tool", str, where)
    require(doc, "network", str, where)
    for key in ("threads", "samples", "seed", "total_time_ns", "total_ops",
                "attributed_ops", "attributed_time_ns"):
        require(doc, key, int, where)

    rows = require(doc, "layer_profile", list, where)
    row_ops, row_time = check_layer_rows(rows, f"{where}.layer_profile")
    if row_ops != doc["attributed_ops"]:
        fail(f"{where}: layer_profile rows sum to {row_ops} OPS but "
             f"attributed_ops says {doc['attributed_ops']}")
    if row_time != doc["attributed_time_ns"]:
        fail(f"{where}: layer_profile rows sum to {row_time} ns but "
             f"attributed_time_ns says {doc['attributed_time_ns']}")

    # The load-bearing invariant: attribution reproduces the exit-accounted
    # whole-run OPS bit-exactly, for any thread count.
    if doc["attributed_ops"] != doc["total_ops"]:
        fail(f"{where}: attributed_ops {doc['attributed_ops']} != total_ops "
             f"{doc['total_ops']} -- per-layer attribution is broken")

    # Time is measured around the region, attribution sits inside it, so the
    # sums only agree approximately.
    total_ns = doc["total_time_ns"]
    if total_ns > 0:
        drift = abs(doc["attributed_time_ns"] - total_ns) / total_ns
        if drift > tolerance:
            fail(f"{where}: attributed_time_ns {doc['attributed_time_ns']} "
                 f"is {drift:.1%} away from total_time_ns {total_ns} "
                 f"(tolerance {tolerance:.0%})")

    check_parallel_for(require(doc, "parallel_for", dict, where),
                       f"{where}.parallel_for")

    perf = require(doc, "perf", dict, where)
    require(perf, "attempted", bool, f"{where}.perf")
    require(perf, "reason", str, f"{where}.perf")
    check_perf_reading(require(perf, "reading", dict, f"{where}.perf"),
                       f"{where}.perf.reading")

    exit_profile = doc.get("exit_profile")
    if exit_profile is not None:
        if not isinstance(exit_profile, list):
            fail(f"{where}: exit_profile should be a list or null")
        exits = 0
        for i, stage in enumerate(exit_profile):
            stage_where = f"{where}.exit_profile[{i}]"
            require(stage, "stage", str, stage_where)
            exits += require(stage, "exits", int, stage_where)
            require(stage, "accuracy", (int, float), stage_where)
            require(stage, "exit_fraction", (int, float), stage_where)
        if exits != doc["samples"]:
            fail(f"{where}: exit_profile exits sum to {exits} but the run "
                 f"classified {doc['samples']} samples")

    metrics = doc.get("metrics")
    if metrics is not None and not isinstance(metrics, dict):
        fail(f"{where}: metrics should be an object or null")

    print(f"{path}: valid {RUN_REPORT_SCHEMA} ({doc['tool']}, "
          f"{doc['samples']} samples, {len(rows)} attribution rows, "
          f"ops exact, time within {tolerance:.0%})")


# --- throughput comparison ----------------------------------------------------

def check_workload_match(baseline, fresh):
    """Same seed / gemm_size / batch composition, else the diff is noise."""
    mismatches = []
    for key in ("gemm_size", "seed"):
        b, f = baseline.get(key), fresh.get(key)
        # Older baselines predate the "seed" field; skip absent keys.
        if b is not None and f is not None and b != f:
            mismatches.append(f"{key}: baseline={b} fresh={f}")
    b_rows, f_rows = batch_rows(baseline), batch_rows(fresh)
    for net in sorted(set(b_rows) & set(f_rows)):
        bi, fi = b_rows[net].get("images"), f_rows[net].get("images")
        if bi != fi:
            mismatches.append(f"{net} images: baseline={bi} fresh={fi}")
    if mismatches:
        for m in mismatches:
            print(f"workload mismatch -- {m}", file=sys.stderr)
        fail("runs are not comparable (did CDL_TEST_N or --seed change?); "
             "re-run both sides with the same workload")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh",
                    help="freshly measured BENCH_throughput.json")
    ap.add_argument("--baseline", default="BENCH_throughput.json",
                    help="committed baseline JSON (default: %(default)s)")
    ap.add_argument("--tolerance", "--threshold", type=float, default=0.15,
                    dest="tolerance",
                    help="max tolerated fractional regression / time "
                         "attribution drift (default: %(default)s; "
                         "--threshold is accepted as an alias)")
    ap.add_argument("--determinism-only", action="store_true",
                    help="skip the baseline comparison; only verify the "
                         "fresh run's serial/threaded bit-identity and "
                         "attribution invariants")
    ap.add_argument("--validate-report", metavar="FILE",
                    help="validate a cdl-run-report/1 JSON instead of "
                         "comparing throughput runs")
    args = ap.parse_args()

    if args.validate_report:
        validate_report(args.validate_report, args.tolerance)
        return
    if not args.fresh:
        ap.error("--fresh is required (or use --validate-report FILE)")

    fresh = load(args.fresh)
    failures = []

    attributed = validate_throughput_schema(fresh, args.fresh)
    if attributed:
        print(f"attribution sections valid (serial == parallel OPS) for: "
              f"{', '.join(attributed)}")

    if args.determinism_only:
        for net, row in sorted(batch_rows(fresh).items()):
            identical = row.get("results_identical", False)
            print(f"{net:42s} results_identical={identical}")
            if not identical:
                failures.append(f"{net} results_identical")
        if failures:
            fail(f"determinism guarantee broken in: {', '.join(failures)}")
        print("bench determinism check passed")
        return

    baseline = load(args.baseline)
    check_workload_match(baseline, fresh)

    def compare(label, base_val, fresh_val):
        ratio = fresh_val / base_val if base_val > 0 else float("inf")
        delta_pct = 100.0 * (ratio - 1.0)
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append(label)
        print(f"{label:42s} baseline {base_val:12.2f}  "
              f"fresh {fresh_val:12.2f}  {delta_pct:+7.2f} %  {status}")

    compare("packed GEMM GFLOP/s",
            gemm_gflops(baseline, "packed"), gemm_gflops(fresh, "packed"))

    b_rows, f_rows = batch_rows(baseline), batch_rows(fresh)
    for net in sorted(set(b_rows) & set(f_rows)):
        compare(f"{net} parallel images/sec",
                float(b_rows[net]["parallel_images_per_sec"]),
                float(f_rows[net]["parallel_images_per_sec"]))

    for net, row in sorted(f_rows.items()):
        if not row.get("results_identical", False):
            failures.append(f"{net} results_identical")
            print(f"{net}: serial/parallel results differ -- determinism "
                  f"guarantee broken", file=sys.stderr)

    if failures:
        fail(f"bench regression beyond {args.tolerance:.0%} "
             f"tolerance in: {', '.join(failures)}")
    print(f"bench check passed (tolerance {args.tolerance:.0%})")


if __name__ == "__main__":
    main()
