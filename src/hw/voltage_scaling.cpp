#include "hw/voltage_scaling.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cdl {

VoltageScalingModel::VoltageScalingModel(EnergyCosts nominal_costs,
                                         VoltageScalingConfig config)
    : nominal_(nominal_costs), config_(config) {
  if (config.nominal_v <= 0.0 || config.min_logic_v <= 0.0 ||
      config.min_logic_v > config.nominal_v) {
    throw std::invalid_argument(
        "VoltageScalingModel: need 0 < min_logic_v <= nominal_v");
  }
  if (config.ber_at_nominal < 0.0 || config.ber_at_nominal > 1.0) {
    throw std::invalid_argument("VoltageScalingModel: bad nominal BER");
  }
}

EnergyCosts VoltageScalingModel::costs_at(double v) const {
  if (v < config_.min_logic_v || v > config_.nominal_v) {
    throw std::invalid_argument(
        "VoltageScalingModel: voltage outside [min_logic_v, nominal_v]");
  }
  const double scale = (v / config_.nominal_v) * (v / config_.nominal_v);
  EnergyCosts c = nominal_;
  c.mac_pj *= scale;
  c.add_pj *= scale;
  c.compare_pj *= scale;
  c.activation_pj *= scale;
  c.divide_pj *= scale;
  c.mem_read_pj *= scale;
  c.mem_write_pj *= scale;
  return c;
}

EnergyModel VoltageScalingModel::model_at(double v) const {
  return EnergyModel(costs_at(v));
}

double VoltageScalingModel::bit_error_rate_at(double v) const {
  if (v <= 0.0) return 1.0;
  const double ber = config_.ber_at_nominal *
                     std::exp(config_.ber_exp_slope * (config_.nominal_v - v));
  return std::clamp(ber, 0.0, 1.0);
}

}  // namespace cdl
