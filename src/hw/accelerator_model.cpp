#include "hw/accelerator_model.h"

#include <stdexcept>

namespace cdl {

namespace {
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

AcceleratorModel::AcceleratorModel(AcceleratorConfig config) : config_(config) {
  if (config.num_macs == 0 || config.num_alus == 0 || config.num_sfus == 0 ||
      config.bytes_per_cycle == 0) {
    throw std::invalid_argument("AcceleratorModel: unit counts must be positive");
  }
  if (config.frequency_mhz <= 0.0) {
    throw std::invalid_argument("AcceleratorModel: frequency must be positive");
  }
}

LatencyEstimate AcceleratorModel::latency(const OpCount& ops) const {
  LatencyEstimate est;
  // Arithmetic: MACs on the MAC array; adds/compares/divides on the ALUs
  // (divides cost several ALU cycles); activations on the SFUs.
  constexpr std::uint64_t kDivideCycles = 8;
  constexpr std::uint64_t kActivationCycles = 2;  // piecewise-linear LUT
  est.compute_cycles =
      ceil_div(ops.macs, config_.num_macs) +
      ceil_div(ops.adds + ops.compares + kDivideCycles * ops.divides,
               config_.num_alus) +
      ceil_div(kActivationCycles * ops.activations, config_.num_sfus);
  // Memory: every tracked 32-bit access streams through the SRAM port.
  est.memory_cycles =
      ceil_div(4 * (ops.mem_reads + ops.mem_writes), config_.bytes_per_cycle);
  est.cycles = std::max(est.compute_cycles, est.memory_cycles);
  est.microseconds = static_cast<double>(est.cycles) / config_.frequency_mhz;
  return est;
}

LatencyEstimate AcceleratorModel::latency(const NetworkProfile& profile) const {
  LatencyEstimate total;
  for (const LayerProfile& layer : profile.layers) {
    const LatencyEstimate l = latency(layer.ops);
    total.compute_cycles += l.compute_cycles;
    total.memory_cycles += l.memory_cycles;
    total.cycles += l.cycles;
  }
  total.microseconds = static_cast<double>(total.cycles) / config_.frequency_mhz;
  return total;
}

LatencyEstimate AcceleratorModel::exit_latency(const ConditionalNetwork& net,
                                               std::size_t stage) const {
  return latency(net.exit_ops(stage));
}

}  // namespace cdl
