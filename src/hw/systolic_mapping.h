// SystolicMapper: tile-level mapping of network layers onto an
// output-stationary R x C systolic MAC array (the datapath style of
// SPINDLE-class deep-learning engines the paper cites).
//
// Convolutions map output channels onto rows and output pixels onto
// columns; each tile performs the full K*K*IC reduction plus array
// fill/drain. Dense layers at batch 1 occupy a single column — the classic
// utilization cliff this model makes visible. Pooling/activation layers run
// on a scalar/vector side unit at one element per cycle.
#pragma once

#include <string>
#include <vector>

#include "cdl/conditional_network.h"
#include "nn/network.h"

namespace cdl {

struct SystolicConfig {
  std::size_t rows = 8;   ///< PE rows (output channels per tile)
  std::size_t cols = 8;   ///< PE columns (output pixels per tile)
  /// SIMD width of the side vector unit running pooling/activations.
  std::size_t vector_lanes = 8;
  double frequency_mhz = 500.0;
};

struct LayerMapping {
  std::string layer;
  std::uint64_t tiles = 0;
  std::uint64_t cycles = 0;
  std::uint64_t macs = 0;
  /// MACs issued / (cycles * rows * cols); 0 for non-MAC layers.
  double utilization = 0.0;
};

struct MappingReport {
  std::vector<LayerMapping> layers;
  std::uint64_t total_cycles = 0;
  double microseconds = 0.0;
  /// MAC-weighted mean utilization over MAC layers.
  double mac_utilization = 0.0;
};

class SystolicMapper {
 public:
  explicit SystolicMapper(SystolicConfig config = {});

  /// Maps every layer of `net` for the given input shape.
  [[nodiscard]] MappingReport map_network(const Network& net,
                                          const Shape& input_shape) const;

  /// Cycles to exit a CDLN at `stage` (baseline prefix + linear classifiers
  /// encountered, each mapped as a dense layer).
  [[nodiscard]] std::uint64_t exit_cycles(const ConditionalNetwork& net,
                                          std::size_t stage) const;

  [[nodiscard]] const SystolicConfig& config() const { return config_; }

 private:
  [[nodiscard]] LayerMapping map_matmul(const std::string& name,
                                        std::uint64_t out_rows,
                                        std::uint64_t out_cols,
                                        std::uint64_t reduction) const;

  SystolicConfig config_;
};

}  // namespace cdl
