#include "hw/systolic_mapping.h"

#include <stdexcept>

#include "nn/conv2d.h"
#include "nn/dense.h"

namespace cdl {

namespace {
std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

SystolicMapper::SystolicMapper(SystolicConfig config) : config_(config) {
  if (config.rows == 0 || config.cols == 0 || config.vector_lanes == 0) {
    throw std::invalid_argument("SystolicMapper: array dims must be positive");
  }
  if (config.frequency_mhz <= 0.0) {
    throw std::invalid_argument("SystolicMapper: frequency must be positive");
  }
}

LayerMapping SystolicMapper::map_matmul(const std::string& name,
                                        std::uint64_t out_rows,
                                        std::uint64_t out_cols,
                                        std::uint64_t reduction) const {
  LayerMapping m;
  m.layer = name;
  m.tiles = ceil_div(out_rows, config_.rows) * ceil_div(out_cols, config_.cols);
  // Output-stationary tile: stream the reduction through the array, then
  // fill/drain skews of rows+cols cycles.
  const std::uint64_t tile_cycles =
      reduction + config_.rows + config_.cols;
  m.cycles = m.tiles * tile_cycles;
  m.macs = out_rows * out_cols * reduction;
  m.utilization =
      static_cast<double>(m.macs) /
      (static_cast<double>(m.cycles) *
       static_cast<double>(config_.rows * config_.cols));
  return m;
}

MappingReport SystolicMapper::map_network(const Network& net,
                                          const Shape& input_shape) const {
  MappingReport report;
  Shape s = input_shape;
  double mac_cycle_area = 0.0;  // cycles*PEs spent on MAC layers
  std::uint64_t total_macs = 0;

  for (std::size_t i = 0; i < net.size(); ++i) {
    const Layer& layer = net.layer(i);
    const Shape out = layer.output_shape(s);
    LayerMapping m;
    if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
      m = map_matmul(conv->name(), out[0], out[1] * out[2],
                     conv->in_channels() * conv->kernel() * conv->kernel());
    } else if (const auto* dense = dynamic_cast<const Dense*>(&layer)) {
      // Batch-1 inference: a single output column.
      m = map_matmul(dense->name(), dense->out_features(), 1,
                     dense->in_features());
    } else {
      // Elementwise / pooling layers run on the side vector unit.
      m.layer = layer.name();
      m.tiles = 1;
      m.cycles = ceil_div(out.numel(), config_.vector_lanes);
      m.macs = 0;
      m.utilization = 0.0;
    }
    report.total_cycles += m.cycles;
    if (m.macs > 0) {
      mac_cycle_area += static_cast<double>(m.cycles) *
                        static_cast<double>(config_.rows * config_.cols);
      total_macs += m.macs;
    }
    report.layers.push_back(std::move(m));
    s = out;
  }
  report.microseconds =
      static_cast<double>(report.total_cycles) / config_.frequency_mhz;
  report.mac_utilization =
      mac_cycle_area > 0.0 ? static_cast<double>(total_macs) / mac_cycle_area
                           : 0.0;
  return report;
}

std::uint64_t SystolicMapper::exit_cycles(const ConditionalNetwork& net,
                                          std::size_t stage) const {
  const std::size_t last_prefix = stage == net.num_stages()
                                      ? net.baseline().size()
                                      : net.stage_prefix(stage);
  // Baseline layers up to the exit boundary.
  MappingReport base = map_network(net.baseline(), net.input_shape());
  std::uint64_t cycles = 0;
  for (std::size_t i = 0; i < last_prefix; ++i) {
    cycles += base.layers[i].cycles;
  }
  // Linear classifiers evaluated on the way (including the exit stage's own).
  for (std::size_t s = 0; s < net.num_stages() && net.stage_prefix(s) <= last_prefix;
       ++s) {
    if (stage < net.num_stages() && s > stage) break;
    const LinearClassifier& lc = net.classifier(s);
    cycles += map_matmul("lc", lc.num_classes(), 1, lc.in_features()).cycles;
  }
  return cycles;
}

}  // namespace cdl
