// AcceleratorModel: roofline-style latency model of a small MAC-array
// accelerator executing the CDLN layer by layer.
//
// The paper's hardware context (45 nm RTL classifiers; SPINDLE-class deep
// learning engines [10]) motivates a latency companion to the energy model:
// each layer's cycle count is the maximum of its compute time on `num_macs`
// parallel MAC units and its SRAM streaming time at `bytes_per_cycle` —
// the classic roofline bound. Conditional execution then shortens average
// latency exactly as it shortens average ops.
#pragma once

#include "cdl/conditional_network.h"
#include "energy/op_profile.h"
#include "nn/opcount.h"

namespace cdl {

struct AcceleratorConfig {
  std::size_t num_macs = 16;        ///< parallel MAC units
  std::size_t num_alus = 4;         ///< units for adds/compares/divides
  std::size_t num_sfus = 2;         ///< special-function units (activations)
  std::size_t bytes_per_cycle = 16; ///< SRAM bandwidth (bytes/cycle)
  double frequency_mhz = 500.0;     ///< clock, for cycle -> time conversion

  /// A modest 45 nm embedded accelerator operating point.
  [[nodiscard]] static AcceleratorConfig embedded_45nm() { return {}; }
};

struct LatencyEstimate {
  std::uint64_t compute_cycles = 0;  ///< bound by arithmetic units
  std::uint64_t memory_cycles = 0;   ///< bound by SRAM bandwidth
  std::uint64_t cycles = 0;          ///< max of the two (roofline)
  double microseconds = 0.0;
  /// True when the layer/run is limited by memory bandwidth.
  [[nodiscard]] bool memory_bound() const {
    return memory_cycles > compute_cycles;
  }
};

class AcceleratorModel {
 public:
  explicit AcceleratorModel(AcceleratorConfig config = {});

  /// Roofline latency of one operation bundle.
  [[nodiscard]] LatencyEstimate latency(const OpCount& ops) const;

  /// Latency of a full network profile (sum of per-layer rooflines — layers
  /// execute back to back, each individually bounded).
  [[nodiscard]] LatencyEstimate latency(const NetworkProfile& profile) const;

  /// Latency of exiting a CDLN at the given stage (num_stages() = FC exit).
  [[nodiscard]] LatencyEstimate exit_latency(const ConditionalNetwork& net,
                                             std::size_t stage) const;

  [[nodiscard]] const AcceleratorConfig& config() const { return config_; }

 private:
  AcceleratorConfig config_;
};

}  // namespace cdl
