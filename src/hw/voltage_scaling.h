// Voltage scaling model: ties the energy model to the fault model.
//
// Conditional execution is one energy lever; supply-voltage scaling is the
// other classic one, and they interact: dynamic energy falls quadratically
// with V, but SRAM cells start flipping as V approaches Vmin, which corrupts
// exactly the weights the CDLN's decisions depend on. This model lets the
// voltage-scaling bench sweep V and find the minimum-energy operating point
// at an accuracy constraint.
#pragma once

#include "energy/energy_model.h"

namespace cdl {

struct VoltageScalingConfig {
  double nominal_v = 1.0;    ///< V at which EnergyCosts are specified
  double min_logic_v = 0.5;  ///< below this the datapath itself fails
  /// SRAM bit-error model: BER(V) = ber_at_nominal * exp(slope * (nominal - V)).
  /// Defaults give ~1e-9 at nominal rising to ~1e-4 around 0.6 V, the shape
  /// reported for 45 nm-class 6T SRAM.
  double ber_at_nominal = 1e-9;
  double ber_exp_slope = 28.0;
};

class VoltageScalingModel {
 public:
  explicit VoltageScalingModel(EnergyCosts nominal_costs = EnergyCosts::cmos_45nm(),
                               VoltageScalingConfig config = {});

  /// Energy costs at supply voltage `v`: every per-op cost scales by
  /// (v / nominal)^2 (dynamic energy). Throws below min_logic_v.
  [[nodiscard]] EnergyCosts costs_at(double v) const;

  /// Convenience: a full EnergyModel at voltage `v`.
  [[nodiscard]] EnergyModel model_at(double v) const;

  /// SRAM bit-error rate at voltage `v` (clamped to [0, 1]).
  [[nodiscard]] double bit_error_rate_at(double v) const;

  [[nodiscard]] const VoltageScalingConfig& config() const { return config_; }

 private:
  EnergyCosts nominal_;
  VoltageScalingConfig config_;
};

}  // namespace cdl
