#include "hw/fault_injection.h"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace cdl {

FaultReport inject_faults(Tensor& t, const FaultConfig& config, Rng& rng) {
  if (config.bit_error_rate < 0.0 || config.bit_error_rate > 1.0) {
    throw std::invalid_argument("inject_faults: bit_error_rate must be in [0,1]");
  }
  if (config.mantissa_bits_only > 23) {
    throw std::invalid_argument("inject_faults: mantissa_bits_only must be <= 23");
  }
  const unsigned bits_per_word =
      config.mantissa_bits_only == 0 ? 32U : config.mantissa_bits_only;

  FaultReport report;
  for (float& v : t.values()) {
    report.bits_examined += bits_per_word;
    // With small BER, sampling the number of flips per word bit-by-bit is
    // fine at these tensor sizes and keeps the code obvious.
    std::uint32_t word = std::bit_cast<std::uint32_t>(v);
    bool flipped = false;
    for (unsigned b = 0; b < bits_per_word; ++b) {
      if (rng.uniform(0.0F, 1.0F) <
          static_cast<float>(config.bit_error_rate)) {
        word ^= (1U << b);
        ++report.bits_flipped;
        flipped = true;
      }
    }
    if (flipped) {
      float result = std::bit_cast<float>(word);
      if (!std::isfinite(result)) result = 0.0F;  // datapath flush-to-zero
      v = result;
    }
  }
  return report;
}

FaultReport inject_faults(std::span<Tensor* const> params,
                          const FaultConfig& config, Rng& rng) {
  FaultReport total;
  for (Tensor* t : params) {
    const FaultReport r = inject_faults(*t, config, rng);
    total.bits_examined += r.bits_examined;
    total.bits_flipped += r.bits_flipped;
  }
  return total;
}

FaultReport inject_faults(Network& net, const FaultConfig& config, Rng& rng) {
  const std::vector<Tensor*> params = net.parameters();
  return inject_faults(params, config, rng);
}

FaultReport inject_faults(ConditionalNetwork& net, const FaultConfig& config,
                          Rng& rng) {
  std::vector<Tensor*> params = net.baseline().parameters();
  for (std::size_t s = 0; s < net.num_stages(); ++s) {
    for (Tensor* p : net.classifier(s).parameters()) params.push_back(p);
  }
  return inject_faults(params, config, rng);
}

}  // namespace cdl
