// Weight-memory fault injection.
//
// Hardware classifiers of the paper's kind hold weights in on-chip SRAM;
// low-voltage operation (a common energy-saving companion to conditional
// execution) makes those cells bit-flip. This module flips random mantissa/
// exponent/sign bits of stored float32 weights at a given bit-error rate so
// benches can measure how gracefully the CDLN degrades and whether early
// exits mask or amplify faults.
#pragma once

#include <cstdint>
#include <span>

#include "cdl/conditional_network.h"
#include "core/rng.h"
#include "core/tensor.h"
#include "nn/network.h"

namespace cdl {

struct FaultConfig {
  /// Probability that any given bit of any weight is flipped.
  double bit_error_rate = 1e-5;
  /// Restrict flips to the low `mantissa_bits_only` mantissa bits (0 = any
  /// of the 32 bits, including exponent and sign — far more destructive).
  unsigned mantissa_bits_only = 0;
};

struct FaultReport {
  std::uint64_t bits_examined = 0;
  std::uint64_t bits_flipped = 0;
};

/// Flips bits in one tensor according to the config. NaN/Inf results are
/// squashed to 0 (a real datapath would flush or saturate them).
FaultReport inject_faults(Tensor& t, const FaultConfig& config, Rng& rng);

/// Injects into a whole parameter set / network / CDLN.
FaultReport inject_faults(std::span<Tensor* const> params,
                          const FaultConfig& config, Rng& rng);
FaultReport inject_faults(Network& net, const FaultConfig& config, Rng& rng);
FaultReport inject_faults(ConditionalNetwork& net, const FaultConfig& config,
                          Rng& rng);

}  // namespace cdl
