#include "energy/energy_model.h"

#include <stdexcept>

namespace cdl {

EnergyCosts EnergyCosts::cmos_45nm_int8() {
  EnergyCosts costs;
  costs.mac_pj = 0.23;  // 8-bit multiply (0.2) + 8-bit add (0.03)
  costs.mem_read_pj = 1.25;   // byte operands: 5 pJ / 4 per 32-bit word
  costs.mem_write_pj = 1.375;
  return costs;
}

EnergyCosts EnergyCosts::compute_only() {
  EnergyCosts costs;
  costs.mem_read_pj = 0.0;
  costs.mem_write_pj = 0.0;
  return costs;
}

EnergyModel::EnergyModel(EnergyCosts costs) : costs_(costs) {
  const double all[] = {costs.mac_pj,     costs.add_pj,      costs.compare_pj,
                        costs.activation_pj, costs.divide_pj, costs.mem_read_pj,
                        costs.mem_write_pj};
  for (double c : all) {
    if (c < 0.0) throw std::invalid_argument("EnergyModel: negative cost");
  }
}

double EnergyModel::energy_pj(const OpCount& ops) const {
  return static_cast<double>(ops.macs) * costs_.mac_pj +
         static_cast<double>(ops.adds) * costs_.add_pj +
         static_cast<double>(ops.compares) * costs_.compare_pj +
         static_cast<double>(ops.activations) * costs_.activation_pj +
         static_cast<double>(ops.divides) * costs_.divide_pj +
         static_cast<double>(ops.mem_reads) * costs_.mem_read_pj +
         static_cast<double>(ops.mem_writes) * costs_.mem_write_pj;
}

}  // namespace cdl
