// Textual energy/op reports used by benches and the energy_report example.
#pragma once

#include <string>

#include "energy/op_profile.h"

namespace cdl {

/// Formats a per-layer table: layer, output shape, MACs, total ops, energy.
[[nodiscard]] std::string format_profile(const NetworkProfile& profile,
                                         const std::string& title);

/// "12.3 nJ" / "4.6 pJ" style human-readable energy.
[[nodiscard]] std::string format_energy(double pj);

}  // namespace cdl
