#include "energy/op_profile.h"

namespace cdl {

NetworkProfile profile_network(const Network& net, const Shape& input_shape,
                               const EnergyModel& model) {
  NetworkProfile profile;
  Shape s = input_shape;
  for (std::size_t i = 0; i < net.size(); ++i) {
    LayerProfile layer;
    layer.name = net.layer(i).name();
    layer.ops = net.layer(i).forward_ops(s);
    s = net.layer(i).output_shape(s);
    layer.output_shape = s;
    layer.energy_pj = model.energy_pj(layer.ops);
    profile.total_ops += layer.ops;
    profile.total_energy_pj += layer.energy_pj;
    profile.layers.push_back(std::move(layer));
  }
  return profile;
}

NetworkProfile profile_cdln(const ConditionalNetwork& net,
                            const EnergyModel& model) {
  NetworkProfile profile =
      profile_network(net.baseline(), net.input_shape(), model);

  // Insert classifier entries after their attach points, deepest first so
  // earlier insertion indices stay valid.
  for (std::size_t s = net.num_stages(); s-- > 0;) {
    LayerProfile lc;
    lc.name = net.stage_name(s) + " (linear classifier)";
    lc.ops = net.classifier(s).forward_ops();
    lc.output_shape = Shape{net.classifier(s).num_classes()};
    lc.energy_pj = model.energy_pj(lc.ops);
    profile.total_ops += lc.ops;
    profile.total_energy_pj += lc.energy_pj;
    profile.layers.insert(
        profile.layers.begin() + static_cast<std::ptrdiff_t>(net.stage_prefix(s)),
        std::move(lc));
  }
  return profile;
}

}  // namespace cdl
