#include "energy/report.h"

#include <cstdio>

#include "eval/table.h"

namespace cdl {

std::string format_energy(double pj) {
  char buf[64];
  if (pj >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f uJ", pj / 1e6);
  } else if (pj >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f nJ", pj / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f pJ", pj);
  }
  return buf;
}

std::string format_profile(const NetworkProfile& profile,
                           const std::string& title) {
  TextTable table({"layer", "output", "MACs", "total ops", "energy"});
  for (const LayerProfile& layer : profile.layers) {
    table.add_row({layer.name, layer.output_shape.to_string(),
                   std::to_string(layer.ops.macs),
                   std::to_string(layer.ops.total_compute()),
                   format_energy(layer.energy_pj)});
  }
  table.add_row({"TOTAL", "", std::to_string(profile.total_ops.macs),
                 std::to_string(profile.total_ops.total_compute()),
                 format_energy(profile.total_energy_pj)});
  return title + "\n" + table.to_string();
}

}  // namespace cdl
