// Per-layer operation/energy profiling of networks and CDLNs.
#pragma once

#include <string>
#include <vector>

#include "cdl/conditional_network.h"
#include "energy/energy_model.h"
#include "nn/network.h"

namespace cdl {

struct LayerProfile {
  std::string name;
  Shape output_shape;
  OpCount ops;
  double energy_pj = 0.0;
};

struct NetworkProfile {
  std::vector<LayerProfile> layers;
  OpCount total_ops;
  double total_energy_pj = 0.0;
};

/// Profiles every baseline layer of `net` for the given input shape.
[[nodiscard]] NetworkProfile profile_network(const Network& net,
                                             const Shape& input_shape,
                                             const EnergyModel& model);

/// Profiles a CDLN: baseline layers plus one entry per linear classifier
/// ("O1", "O2", ...) inserted at its attach point.
[[nodiscard]] NetworkProfile profile_cdln(const ConditionalNetwork& net,
                                          const EnergyModel& model);

}  // namespace cdl
