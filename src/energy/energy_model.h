// EnergyModel: op-level energy accounting.
//
// Substitution for the paper's Synopsys DC / Power Compiler flow on IBM 45 nm
// SOI (DESIGN.md §4): each operation class is charged a fixed per-op energy.
// Defaults follow published 45 nm per-operation numbers (Horowitz, "Computing's
// energy problem", ISSCC 2014): a 32-bit float multiply ≈ 3.7 pJ, float add
// ≈ 0.9 pJ, and a small-SRAM 32-bit access ≈ 5 pJ. Only *relative* energies
// matter for the paper's normalized results, which this model preserves.
#pragma once

#include "nn/opcount.h"

namespace cdl {

struct EnergyCosts {
  double mac_pj = 4.6;         ///< multiply (3.7) + add (0.9)
  double add_pj = 0.9;
  double compare_pj = 0.5;
  double activation_pj = 2.0;  ///< piecewise/LUT nonlinearity evaluation
  double divide_pj = 7.0;
  double mem_read_pj = 5.0;    ///< 32-bit word from local SRAM
  double mem_write_pj = 5.5;

  /// The default 45 nm CMOS profile described above.
  [[nodiscard]] static EnergyCosts cmos_45nm() { return {}; }

  /// 45 nm profile for int8 stages. Same Horowitz ISSCC 2014 source: an
  /// 8-bit integer multiply ≈ 0.2 pJ and 8-bit add ≈ 0.03 pJ (vs 3.7 + 0.9
  /// for fp32), so a MAC ≈ 0.23 pJ — the ~20x datapath advantage int8
  /// inference accelerators exploit. Elementwise adds/compares stay on
  /// 32-bit accumulators (0.9 / 0.5 pJ), activations are still evaluated in
  /// float after dequantization, and memory traffic moves byte-sized
  /// operands, which we charge at a quarter of the 32-bit SRAM word energy.
  [[nodiscard]] static EnergyCosts cmos_45nm_int8();

  /// Compute-only profile (memory free): isolates datapath energy, used by
  /// the energy-model tests and the ablation bench.
  [[nodiscard]] static EnergyCosts compute_only();
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyCosts costs = EnergyCosts::cmos_45nm());

  /// Total energy of an operation bundle, in picojoules.
  [[nodiscard]] double energy_pj(const OpCount& ops) const;

  [[nodiscard]] const EnergyCosts& costs() const { return costs_; }

 private:
  EnergyCosts costs_;
};

}  // namespace cdl
