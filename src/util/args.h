// ArgParser: minimal --flag/--key value command-line parser for the tools/
// binaries. No external dependencies; unknown arguments are an error so
// typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace cdl {

class ArgParser {
 public:
  /// Declares an option with a default; shown by help(). Call before parse().
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& description);
  /// Declares a boolean flag (present -> true).
  void add_flag(const std::string& name, const std::string& description);

  /// Parses argv; throws std::invalid_argument on unknown or malformed
  /// arguments. `--help` sets help_requested().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::size_t get_size(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string help(const std::string& program) const;

 private:
  struct Option {
    std::string value;
    std::string default_value;
    std::string description;
  };
  std::map<std::string, Option> options_;
  std::set<std::string> flags_declared_;
  std::set<std::string> flags_set_;
  std::map<std::string, std::string> flag_descriptions_;
  bool help_requested_ = false;
};

}  // namespace cdl
