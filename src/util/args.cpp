#include "util/args.h"

#include <stdexcept>

namespace cdl {

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& description) {
  options_[name] = Option{default_value, default_value, description};
}

void ArgParser::add_flag(const std::string& name,
                         const std::string& description) {
  flags_declared_.insert(name);
  flag_descriptions_[name] = description;
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    if (flags_declared_.contains(name)) {
      if (has_inline) {
        throw std::invalid_argument("flag --" + name + " takes no value");
      }
      flags_set_.insert(name);
      continue;
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown argument: --" + name);
    }
    if (has_inline) {
      it->second.value = inline_value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("missing value for --" + name);
      }
      it->second.value = argv[++i];
    }
  }
}

std::string ArgParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::invalid_argument("undeclared option: --" + name);
  }
  return it->second.value;
}

std::size_t ArgParser::get_size(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const unsigned long long parsed = std::stoull(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("--" + name + ": not an integer: " + v);
  }
  return static_cast<std::size_t>(parsed);
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double parsed = std::stod(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("--" + name + ": not a number: " + v);
  }
  return parsed;
}

bool ArgParser::get_flag(const std::string& name) const {
  if (!flags_declared_.contains(name)) {
    throw std::invalid_argument("undeclared flag: --" + name);
  }
  return flags_set_.contains(name);
}

std::string ArgParser::help(const std::string& program) const {
  std::string out = "usage: " + program + " [options]\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    out += "  --" + name + " <value>   " + opt.description + " (default: " +
           opt.default_value + ")\n";
  }
  for (const std::string& name : flags_declared_) {
    out += "  --" + name + "   " + flag_descriptions_.at(name) + "\n";
  }
  out += "  --help   show this message\n";
  return out;
}

}  // namespace cdl
