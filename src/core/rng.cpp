#include "core/rng.h"

#include <stdexcept>

namespace cdl {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  return dist(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be positive");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

bool Rng::coin(float p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

}  // namespace cdl
