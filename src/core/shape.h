// Shape: lightweight dimension descriptor for tensors.
//
// A Shape is an ordered list of extents (row-major, outermost first). It is a
// value type with no invariant beyond "every extent is positive", which is
// checked on construction.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cdl {

class Shape {
 public:
  Shape() = default;

  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) { validate(); }

  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  /// Number of dimensions (0 for the empty shape).
  [[nodiscard]] std::size_t rank() const { return dims_.size(); }

  /// Extent of dimension `i`; throws std::out_of_range on bad index.
  [[nodiscard]] std::size_t dim(std::size_t i) const { return dims_.at(i); }

  [[nodiscard]] std::size_t operator[](std::size_t i) const { return dims_.at(i); }

  /// Total number of elements (1 for the empty shape, matching a scalar).
  [[nodiscard]] std::size_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), std::size_t{1},
                           std::multiplies<>());
  }

  [[nodiscard]] const std::vector<std::size_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const = default;

  [[nodiscard]] std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i != 0) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void validate() const {
    for (std::size_t d : dims_) {
      if (d == 0) throw std::invalid_argument("Shape: zero extent in " + to_string());
    }
  }

  std::vector<std::size_t> dims_;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.to_string();
}

}  // namespace cdl
