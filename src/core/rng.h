// Rng: deterministic random source shared by data generation and weight init.
//
// Every stochastic component in the library takes an Rng& so experiments are
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

namespace cdl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) : engine_(seed) {}

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Standard normal scaled by `stddev` around `mean`.
  float normal(float mean = 0.0F, float stddev = 1.0F);

  /// Uniform integer in [0, n) — n must be positive.
  std::size_t index(std::size_t n);

  /// Bernoulli trial with probability p of true.
  bool coin(float p);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cdl
