#include "core/workspace.h"

#include <stdexcept>

namespace cdl {

BufferRef WorkspacePlanner::reserve_persistent(std::size_t floats) {
  BufferRef ref;
  ref.offset = persistent_top_;
  ref.floats = floats;
  ref.persistent = true;
  ref.valid = true;
  persistent_top_ += align_floats(floats);
  return ref;
}

void WorkspacePlanner::begin_frame() {
  if (frame_open_) {
    throw std::logic_error("WorkspacePlanner: frame already open");
  }
  frame_open_ = true;
  frame_top_ = 0;
}

BufferRef WorkspacePlanner::reserve(std::size_t floats) {
  if (!frame_open_) {
    throw std::logic_error("WorkspacePlanner: reserve outside a frame");
  }
  BufferRef ref;
  ref.offset = frame_top_;
  ref.floats = floats;
  ref.persistent = false;
  ref.valid = true;
  frame_top_ += align_floats(floats);
  return ref;
}

void WorkspacePlanner::end_frame() {
  if (!frame_open_) {
    throw std::logic_error("WorkspacePlanner: end_frame without begin_frame");
  }
  frame_open_ = false;
  if (frame_top_ > frame_max_) frame_max_ = frame_top_;
  frame_top_ = 0;
}

void Workspace::allocate(const WorkspacePlanner& plan) {
  if (plan.frame_open()) {
    throw std::logic_error("Workspace::allocate: plan has an open frame");
  }
  persistent_floats_ = plan.persistent_floats();
  capacity_ = plan.capacity_floats();
  if (storage_.size() < capacity_) storage_.resize(capacity_);
}

float* Workspace::data(const BufferRef& ref) {
  if (!ref.valid) throw std::logic_error("Workspace::data: invalid BufferRef");
  const std::size_t base = ref.persistent ? 0 : persistent_floats_;
  if (base + ref.offset + ref.floats > capacity_) {
    throw std::out_of_range("Workspace::data: buffer outside arena");
  }
  return storage_.data() + base + ref.offset;
}

}  // namespace cdl
