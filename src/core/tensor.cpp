#include "core/tensor.h"

#include <algorithm>
#include <stdexcept>

namespace cdl {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_.numel() != data_.size()) {
    throw std::invalid_argument("Tensor: shape " + shape_.to_string() +
                                " incompatible with data size " +
                                std::to_string(data_.size()));
  }
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  return Tensor(std::move(new_shape), data_);
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  if (shape_ != rhs.shape_) {
    throw std::invalid_argument("Tensor+=: shape mismatch " +
                                shape_.to_string() + " vs " +
                                rhs.shape_.to_string());
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  if (shape_ != rhs.shape_) {
    throw std::invalid_argument("Tensor-=: shape mismatch " +
                                shape_.to_string() + " vs " +
                                rhs.shape_.to_string());
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

float Tensor::sum() const {
  float acc = 0.0F;
  for (float v : data_) acc += v;
  return acc;
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("Tensor::min on empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("Tensor::max on empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax() const {
  if (data_.empty()) throw std::logic_error("Tensor::argmax on empty tensor");
  return static_cast<std::size_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

}  // namespace cdl
