#include "core/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/layer_profile.h"
#include "obs/trace.h"

namespace cdl {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t hw = std::thread::hardware_concurrency();
  if (threads == 0) {
    threads = std::max<std::size_t>(1, hw);
  } else if (hw > 0) {
    // Cap at the hardware thread count: the pool is a fork/join pool whose
    // workers all run the whole job, so oversubscribing cores only adds
    // context-switch and barrier contention (measured as parallel speedups
    // below 1.0 on machines with fewer cores than the requested size).
    // hw == 0 means "unknown" — keep the caller's request in that case.
    threads = std::min(threads, hw);
  }
  size_ = threads;
  if (size_ <= 1) return;  // inline mode: no OS threads
  workers_.reserve(size_);
  for (std::size_t w = 0; w < size_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk(
    std::size_t worker, std::size_t range_begin, std::size_t range_end) const {
  const std::size_t total = range_end - range_begin;
  const std::size_t base = total / size_;
  const std::size_t extra = total % size_;
  // Workers [0, extra) take base+1 items, the rest take base.
  const std::size_t begin = range_begin + worker * base +
                            std::min(worker, extra);
  const std::size_t len = base + (worker < extra ? 1 : 0);
  return {begin, begin + len};
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const ChunkFn& fn) {
  if (begin >= end) return;
  if (size_ <= 1) {
    fn(0, begin, end);
    return;
  }
  CDL_TRACE_SPAN(span, "parallel_for", static_cast<std::int32_t>(end - begin));
  const bool profiling = obs::LayerProfiler::enabled();
  const std::uint64_t prof_t0 = profiling ? obs::now_ns() : 0;
  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    pending_ = size_;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  if (profiling) {
    // Dispatch + work + join barrier, as seen by the submitting thread: the
    // fork/join floor the attribution profiler reports per run.
    obs::LayerProfiler::instance().record_parallel_for(end - begin,
                                                       obs::now_ns() - prof_t0);
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(std::size_t worker) {
#ifndef CDL_TRACE_DISABLED
  // Name the worker's trace buffer up front; the ring itself is allocated
  // lazily on the first recorded event, so this is cheap when tracing is off.
  obs::Tracer::instance().set_thread_name("cdl-worker-" +
                                          std::to_string(worker));
#endif
  std::uint64_t seen = 0;
  for (;;) {
    const ChunkFn* job = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      begin = job_begin_;
      end = job_end_;
    }
    const auto [c0, c1] = chunk(worker, begin, end);
    std::exception_ptr error;
    if (c0 < c1) {
      CDL_TRACE_SPAN(span, "chunk", static_cast<std::int32_t>(worker));
      try {
        (*job)(worker, c0, c1);
      } catch (...) {
        error = std::current_exception();
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace cdl
