// Tensor: dense row-major float tensor used throughout the library.
//
// Deliberately small: the networks in this project are LeNet-scale, so the
// tensor type favours clarity and bounds-safety (in debug) over generality.
// Storage is always owned (std::vector<float>); copies are deep.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "core/shape.h"

namespace cdl {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_.numel(), 0.0F) {}

  /// Allocates and fills with `value`.
  Tensor(Shape shape, float value)
      : shape_(std::move(shape)), data_(shape_.numel(), value) {}

  /// Adopts existing data; throws if sizes disagree.
  Tensor(Shape shape, std::vector<float> data);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::span<float> values() { return data_; }
  [[nodiscard]] std::span<const float> values() const { return data_; }
  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  // --- flat element access -------------------------------------------------
  float& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  // --- multi-dimensional access (rank asserted in debug builds) ------------
  float& at(std::size_t i0) { return (*this)[offset(i0)]; }
  float at(std::size_t i0) const { return (*this)[offset(i0)]; }

  float& at(std::size_t i0, std::size_t i1) { return (*this)[offset(i0, i1)]; }
  float at(std::size_t i0, std::size_t i1) const { return (*this)[offset(i0, i1)]; }

  float& at(std::size_t i0, std::size_t i1, std::size_t i2) {
    return (*this)[offset(i0, i1, i2)];
  }
  float at(std::size_t i0, std::size_t i1, std::size_t i2) const {
    return (*this)[offset(i0, i1, i2)];
  }

  float& at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) {
    return (*this)[offset(i0, i1, i2, i3)];
  }
  float at(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const {
    return (*this)[offset(i0, i1, i2, i3)];
  }

  // --- whole-tensor helpers -------------------------------------------------
  void fill(float value);
  void zero() { fill(0.0F); }

  /// Re-shapes in place to `shape`, reusing the existing allocation when it
  /// is large enough (element values are unspecified afterwards). This is
  /// what scratch buffers use to avoid per-call allocation.
  void resize(Shape shape) {
    shape_ = std::move(shape);
    data_.resize(shape_.numel());
  }

  /// Reinterprets the data with a new shape of identical numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Elementwise in-place operations; shapes must match exactly.
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float scalar);

  [[nodiscard]] float sum() const;
  [[nodiscard]] float min() const;
  [[nodiscard]] float max() const;
  /// Index of the maximum element (first on ties); tensor must be non-empty.
  [[nodiscard]] std::size_t argmax() const;

  bool operator==(const Tensor& other) const = default;

 private:
  std::size_t offset(std::size_t i0) const {
    assert(shape_.rank() == 1);
    return i0;
  }
  std::size_t offset(std::size_t i0, std::size_t i1) const {
    assert(shape_.rank() == 2);
    return i0 * shape_[1] + i1;
  }
  std::size_t offset(std::size_t i0, std::size_t i1, std::size_t i2) const {
    assert(shape_.rank() == 3);
    return (i0 * shape_[1] + i1) * shape_[2] + i2;
  }
  std::size_t offset(std::size_t i0, std::size_t i1, std::size_t i2,
                     std::size_t i3) const {
    assert(shape_.rank() == 4);
    return ((i0 * shape_[1] + i1) * shape_[2] + i2) * shape_[3] + i3;
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace cdl
