// ThreadPool: fixed-size worker pool with a deterministic static parallel_for.
//
// The pool exists for batched inference: a batch of independent samples is
// split into contiguous chunks, one per worker, and every chunk is processed
// by exactly one thread. Chunk boundaries depend only on (range, worker
// count), never on scheduling, so any per-index output written into
// pre-sized slots is bit-identical across runs and across thread counts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace cdl {

class ThreadPool {
 public:
  /// Worker body for one chunk: fn(worker_index, chunk_begin, chunk_end).
  using ChunkFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1). Requests above the hardware thread count are clamped to
  /// it (oversubscribing a fork/join pool only adds contention); size()
  /// reports the effective count. A pool of size 1 spawns no OS threads at
  /// all: every parallel_for runs inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Runs `fn` over [begin, end) split into size() contiguous chunks of
  /// near-equal length (first `total % size()` chunks get one extra item);
  /// worker w receives chunk w. Blocks until every chunk finished. The
  /// first exception thrown by any chunk is rethrown here; the pool stays
  /// usable afterwards. Concurrent calls from different threads are
  /// serialized. Empty ranges return immediately.
  void parallel_for(std::size_t begin, std::size_t end, const ChunkFn& fn);

  /// Chunk [begin, end) assigned to `worker` for a range of `total` items
  /// starting at `range_begin` (exposed for tests and cost models).
  [[nodiscard]] std::pair<std::size_t, std::size_t> chunk(
      std::size_t worker, std::size_t range_begin, std::size_t range_end) const;

 private:
  void worker_loop(std::size_t worker);

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::mutex submit_mutex_;  ///< serializes parallel_for callers

  // Job state, guarded by mutex_. `generation` bumps once per parallel_for;
  // each worker runs its chunk of the current job exactly once.
  const ChunkFn* job_ = nullptr;
  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace cdl
