// Workspace: a planned bump arena for allocation-free hot paths.
//
// A WorkspacePlanner is walked once over the work a hot loop will do (e.g.
// every stage of a conditional network at the worst-case batch size) and
// records every scratch buffer the loop needs. Buffers reserved inside a
// *frame* share storage with other frames — frames model phases that run
// one after another, so the arena only needs the largest frame — while
// *persistent* buffers (state that survives across frames, such as the
// activations carried from stage to stage) get private storage. allocate()
// then performs the single heap allocation; afterwards data() hands out
// stable slices and the steady state never touches the allocator again.
#pragma once

#include <cstddef>
#include <vector>

namespace cdl {

/// Reservations are rounded up to this many floats (64 bytes), so distinct
/// buffers never share a cache line.
inline constexpr std::size_t kWorkspaceAlignFloats = 16;

[[nodiscard]] constexpr std::size_t align_floats(std::size_t floats) {
  return (floats + kWorkspaceAlignFloats - 1) / kWorkspaceAlignFloats *
         kWorkspaceAlignFloats;
}

/// Handle to a planned buffer; resolved to a pointer by Workspace::data().
/// Value-semantic and trivially copyable so plans can be stored in tables.
struct BufferRef {
  std::size_t offset = 0;  ///< float offset within its region
  std::size_t floats = 0;  ///< usable size (the un-rounded request)
  bool persistent = false;
  bool valid = false;
};

class WorkspacePlanner {
 public:
  /// Reserves storage that lives for the whole run (never reused by frames).
  BufferRef reserve_persistent(std::size_t floats);

  /// Opens a frame: buffers reserved until end_frame() coexist with each
  /// other but reuse the same storage as every other frame.
  void begin_frame();
  /// Reserves scratch inside the open frame; throws std::logic_error when no
  /// frame is open.
  BufferRef reserve(std::size_t floats);
  void end_frame();

  [[nodiscard]] std::size_t persistent_floats() const {
    return persistent_top_;
  }
  /// Largest closed frame (the shared frame region's size).
  [[nodiscard]] std::size_t frame_floats() const { return frame_max_; }
  [[nodiscard]] std::size_t capacity_floats() const {
    return persistent_top_ + frame_max_;
  }
  [[nodiscard]] bool frame_open() const { return frame_open_; }

 private:
  std::size_t persistent_top_ = 0;
  std::size_t frame_top_ = 0;
  std::size_t frame_max_ = 0;
  bool frame_open_ = false;
};

class Workspace {
 public:
  /// Sizes the arena for `plan` (one heap allocation, reused when the
  /// existing capacity suffices). Throws std::logic_error if a frame is
  /// still open.
  void allocate(const WorkspacePlanner& plan);

  [[nodiscard]] bool allocated() const { return !storage_.empty() || capacity_ == 0; }
  [[nodiscard]] std::size_t capacity_floats() const { return capacity_; }

  /// Pointer for a buffer reserved on the plan this workspace was allocated
  /// for. Frame buffers from different frames may alias by design.
  [[nodiscard]] float* data(const BufferRef& ref);

 private:
  std::vector<float> storage_;
  std::size_t persistent_floats_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace cdl
