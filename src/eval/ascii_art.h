// ASCII rendering of image tensors — used to reproduce the paper's Table IV
// (example digits classified at each CDLN stage) in a terminal.
#pragma once

#include <string>
#include <vector>

#include "core/tensor.h"

namespace cdl {

/// Renders a (1, H, W) tensor as H lines of W glyphs from a density ramp.
[[nodiscard]] std::string render_ascii(const Tensor& image);

/// Renders several images side by side with `gap` spaces between them,
/// each column titled by the corresponding caption.
[[nodiscard]] std::string render_ascii_row(const std::vector<Tensor>& images,
                                           const std::vector<std::string>& captions,
                                           std::size_t gap = 4);

}  // namespace cdl
