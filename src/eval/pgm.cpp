#include "eval/pgm.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace cdl {

void save_pgm(const std::string& path, const Tensor& image) {
  if (image.shape().rank() != 3 || image.shape()[0] != 1) {
    throw std::invalid_argument("save_pgm: expected (1, H, W) tensor, got " +
                                image.shape().to_string());
  }
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_pgm: cannot open " + path);

  const std::size_t h = image.shape()[1];
  const std::size_t w = image.shape()[2];
  os << "P5\n" << w << " " << h << "\n255\n";
  std::vector<unsigned char> row(w);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const float v = std::clamp(image.at(0, y, x), 0.0F, 1.0F);
      row[x] = static_cast<unsigned char>(v * 255.0F + 0.5F);
    }
    os.write(reinterpret_cast<const char*>(row.data()),
             static_cast<std::streamsize>(row.size()));
  }
  if (!os) throw std::runtime_error("save_pgm: write failure on " + path);
}

Tensor load_pgm(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_pgm: cannot open " + path);

  std::string magic;
  is >> magic;
  if (magic != "P5") throw std::runtime_error("load_pgm: not a binary PGM");
  std::size_t w = 0;
  std::size_t h = 0;
  unsigned maxval = 0;
  is >> w >> h >> maxval;
  if (!is || w == 0 || h == 0 || maxval == 0 || maxval > 255) {
    throw std::runtime_error("load_pgm: bad header in " + path);
  }
  is.get();  // single whitespace after maxval

  Tensor image(Shape{1, h, w});
  std::vector<unsigned char> row(w);
  for (std::size_t y = 0; y < h; ++y) {
    is.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size()));
    if (!is) throw std::runtime_error("load_pgm: truncated data in " + path);
    for (std::size_t x = 0; x < w; ++x) {
      image.at(0, y, x) =
          static_cast<float>(row[x]) / static_cast<float>(maxval);
    }
  }
  return image;
}

}  // namespace cdl
