#include "eval/table.h"

#include <cstdio>
#include <stdexcept>

namespace cdl {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width " +
                                std::to_string(row.size()) + " != header " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  const auto rule = [&]() {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };

  std::string out = rule() + render_row(header_) + rule();
  for (const auto& row : rows_) out += render_row(row);
  return out + rule();
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_percent(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %%", precision, ratio * 100.0);
  return buf;
}

}  // namespace cdl
