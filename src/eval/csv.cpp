#include "eval/csv.h"

#include <fstream>
#include <stdexcept>

#include "eval/table.h"

namespace cdl {

CsvWriter csv_from_table(const TextTable& table) {
  CsvWriter csv(table.header());
  for (const auto& row : table.row_data()) csv.add_row(row);
  return csv;
}

namespace {
std::string escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  return out + "\"";
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("CsvWriter: empty header");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width " +
                                std::to_string(row.size()) + " != header " +
                                std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  const auto render = [](const std::vector<std::string>& fields) {
    std::string line;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) line += ',';
      line += escape(fields[i]);
    }
    return line + "\n";
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("CsvWriter: cannot open " + path);
  os << to_string();
  if (!os) throw std::runtime_error("CsvWriter: write failure on " + path);
}

}  // namespace cdl
