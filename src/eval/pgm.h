// Minimal PGM (portable graymap) writer/reader so rendered digits and stage
// feature maps can be inspected outside the terminal.
#pragma once

#include <string>

#include "core/tensor.h"

namespace cdl {

/// Writes a (1, H, W) tensor as binary PGM (P5). Values are clamped to
/// [0, 1] and scaled to 0-255.
void save_pgm(const std::string& path, const Tensor& image);

/// Reads a binary PGM into a (1, H, W) tensor scaled to [0, 1].
[[nodiscard]] Tensor load_pgm(const std::string& path);

}  // namespace cdl
