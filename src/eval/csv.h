// CSV export for evaluation artifacts — lets bench output feed plotting
// scripts without parsing ASCII tables.
#pragma once

#include <string>
#include <vector>

namespace cdl {

class TextTable;

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Row width must match the header width.
  void add_row(std::vector<std::string> row);

  /// RFC-4180 style: fields containing commas, quotes or newlines are
  /// quoted, embedded quotes doubled.
  [[nodiscard]] std::string to_string() const;

  /// Writes to a file (throws on I/O failure).
  void write(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Converts a rendered report table into CSV form.
[[nodiscard]] CsvWriter csv_from_table(const TextTable& table);

}  // namespace cdl
