// Evaluation of baseline networks and CDLNs over a dataset: accuracy, average
// operations and energy per input, exit-stage distributions, and per-class
// breakdowns — the quantities behind every table and figure in the paper.
#pragma once

#include <vector>

#include "cdl/conditional_network.h"
#include "data/dataset.h"
#include "energy/energy_model.h"
#include "obs/exit_profile.h"

namespace cdl {

class ThreadPool;

struct ClassStats {
  std::size_t total = 0;
  std::size_t correct = 0;
  double sum_ops = 0.0;
  double sum_energy_pj = 0.0;
  std::vector<std::size_t> exit_counts;  ///< per exit stage (last = FC)

  [[nodiscard]] double accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
  }
  [[nodiscard]] double avg_ops() const {
    return total == 0 ? 0.0 : sum_ops / static_cast<double>(total);
  }
  [[nodiscard]] double avg_energy_pj() const {
    return total == 0 ? 0.0 : sum_energy_pj / static_cast<double>(total);
  }
};

struct Evaluation {
  std::size_t total = 0;
  std::size_t correct = 0;
  double sum_ops = 0.0;
  double sum_energy_pj = 0.0;
  std::vector<std::size_t> exit_counts;   ///< per exit stage (last = FC)
  std::vector<std::size_t> exit_correct;  ///< correct decisions per stage
  std::vector<ClassStats> per_class;
  /// Observability view of the same run: per-stage exits, correctness, OPS
  /// and confidence-at-exit histograms. Filled by the same serial loop that
  /// fills the aggregates above, so profile.exit_counts() == exit_counts and
  /// profile.sum_ops() == sum_ops bit-exactly, for any thread count.
  obs::ExitProfile profile;

  [[nodiscard]] double accuracy() const {
    return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
  }
  [[nodiscard]] double avg_ops() const {
    return total == 0 ? 0.0 : sum_ops / static_cast<double>(total);
  }
  [[nodiscard]] double avg_energy_pj() const {
    return total == 0 ? 0.0 : sum_energy_pj / static_cast<double>(total);
  }
  /// Fraction of inputs whose classification used the given exit stage.
  [[nodiscard]] double exit_fraction(std::size_t stage) const;

  /// Accuracy among the inputs that exited at the given stage (0 when the
  /// stage decided nothing). The paper's Fig. 7 discussion tracks the FC
  /// stage's complement of this ("fraction misclassified by the final
  /// layer").
  [[nodiscard]] double stage_accuracy(std::size_t stage) const;

  /// Fraction of ALL inputs that exited at `stage` with a wrong label.
  [[nodiscard]] double stage_error_share(std::size_t stage) const;
};

/// Runs Algorithm 2 on every sample (conditional execution). When `pool` is
/// non-null the samples are classified in parallel; per-sample results and
/// every aggregate (accuracy, exit counts, summed ops/energy) are identical
/// to the serial evaluation, because aggregation always happens serially in
/// sample order over the deterministic per-sample results.
[[nodiscard]] Evaluation evaluate_cdl(const ConditionalNetwork& net,
                                      const Dataset& data,
                                      const EnergyModel& model,
                                      ThreadPool* pool = nullptr);

/// Runs the unconditional baseline on every sample.
[[nodiscard]] Evaluation evaluate_baseline(const ConditionalNetwork& net,
                                           const Dataset& data,
                                           const EnergyModel& model,
                                           ThreadPool* pool = nullptr);

}  // namespace cdl
