#include "eval/metrics.h"

#include <stdexcept>

#include "core/thread_pool.h"
#include "obs/trace.h"

namespace cdl {

double Evaluation::exit_fraction(std::size_t stage) const {
  if (stage >= exit_counts.size()) {
    throw std::out_of_range("Evaluation::exit_fraction: stage " +
                            std::to_string(stage));
  }
  return total == 0 ? 0.0
                    : static_cast<double>(exit_counts[stage]) /
                          static_cast<double>(total);
}

double Evaluation::stage_accuracy(std::size_t stage) const {
  if (stage >= exit_counts.size()) {
    throw std::out_of_range("Evaluation::stage_accuracy: stage " +
                            std::to_string(stage));
  }
  return exit_counts[stage] == 0
             ? 0.0
             : static_cast<double>(exit_correct[stage]) /
                   static_cast<double>(exit_counts[stage]);
}

double Evaluation::stage_error_share(std::size_t stage) const {
  if (stage >= exit_counts.size()) {
    throw std::out_of_range("Evaluation::stage_error_share: stage " +
                            std::to_string(stage));
  }
  return total == 0
             ? 0.0
             : static_cast<double>(exit_counts[stage] - exit_correct[stage]) /
                   static_cast<double>(total);
}

namespace {

Evaluation prepare_eval(const ConditionalNetwork& net, const Dataset& data) {
  const std::size_t n_stages = net.num_stages() + 1;  // + final FC stage
  Evaluation eval;
  eval.exit_counts.assign(n_stages, 0);
  eval.exit_correct.assign(n_stages, 0);
  eval.per_class.assign(data.num_classes(), ClassStats{});
  for (ClassStats& c : eval.per_class) c.exit_counts.assign(n_stages, 0);
  std::vector<std::string> stage_names;
  stage_names.reserve(n_stages);
  for (std::size_t s = 0; s < n_stages; ++s) {
    stage_names.push_back(net.stage_name(s));
  }
  eval.profile = obs::ExitProfile(std::move(stage_names));
  return eval;
}

// Aggregation is always serial in sample order, so sums are identical for
// every thread count and for the batched vs per-image classify paths.
void aggregate(Evaluation& eval, const Dataset& data, const EnergyModel& model,
               const std::vector<ClassificationResult>& results) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    const ClassificationResult& result = results[i];
    const std::size_t truth = data.label(i);
    const double ops = static_cast<double>(result.ops.total_compute());
    const double energy = model.energy_pj(result.ops);
    const bool ok = result.label == truth;

    ++eval.total;
    eval.correct += ok ? 1 : 0;
    eval.sum_ops += ops;
    eval.sum_energy_pj += energy;
    ++eval.exit_counts[result.exit_stage];
    if (ok) ++eval.exit_correct[result.exit_stage];
    eval.profile.record(result.exit_stage,
                        static_cast<double>(result.confidence), ops, ok,
                        energy);

    ClassStats& cls = eval.per_class[truth];
    ++cls.total;
    cls.correct += ok ? 1 : 0;
    cls.sum_ops += ops;
    cls.sum_energy_pj += energy;
    ++cls.exit_counts[result.exit_stage];
  }
}

}  // namespace

Evaluation evaluate_cdl(const ConditionalNetwork& net, const Dataset& data,
                        const EnergyModel& model, ThreadPool* pool) {
  if (data.empty()) throw std::invalid_argument("evaluate: empty dataset");
  CDL_TRACE_SPAN(span, "evaluate", static_cast<std::int32_t>(data.size()));
  Evaluation eval = prepare_eval(net, data);

  // Stage-major batched inference: bit-identical to per-image classify(),
  // but one packed GEMM per (stage, tile) instead of per image.
  std::vector<ClassificationResult> results;
  BatchWorkspace ws;
  net.classify_batch_into(data.images(), results, ws, pool);

  aggregate(eval, data, model, results);
  return eval;
}

Evaluation evaluate_baseline(const ConditionalNetwork& net, const Dataset& data,
                             const EnergyModel& model, ThreadPool* pool) {
  if (data.empty()) throw std::invalid_argument("evaluate: empty dataset");
  CDL_TRACE_SPAN(span, "evaluate", static_cast<std::int32_t>(data.size()));
  Evaluation eval = prepare_eval(net, data);

  // Per-sample results are independent and deterministic, so classification
  // may run in parallel; aggregation stays serial in sample order.
  std::vector<ClassificationResult> results(data.size());
  const auto classify_chunk = [&](std::size_t, std::size_t chunk_begin,
                                  std::size_t chunk_end) {
    for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
      results[i] = net.classify_baseline(data.image(i));
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(0, data.size(), classify_chunk);
  } else {
    classify_chunk(0, 0, data.size());
  }

  aggregate(eval, data, model, results);
  return eval;
}

}  // namespace cdl
