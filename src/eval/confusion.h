// ConfusionMatrix: per-class prediction counts with derived metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace cdl {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void record(std::size_t truth, std::size_t predicted);

  [[nodiscard]] std::size_t num_classes() const { return n_; }
  [[nodiscard]] std::size_t count(std::size_t truth, std::size_t predicted) const;
  [[nodiscard]] std::size_t total() const { return total_; }

  [[nodiscard]] double accuracy() const;
  /// Of samples predicted as `c`, fraction actually `c` (0 if none predicted).
  [[nodiscard]] double precision(std::size_t c) const;
  /// Of samples truly `c`, fraction predicted `c` (0 if none present).
  [[nodiscard]] double recall(std::size_t c) const;

  [[nodiscard]] std::string to_string() const;

 private:
  void check_class(std::size_t c) const;

  std::size_t n_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  ///< row = truth, col = predicted
};

}  // namespace cdl
