#include "eval/confusion.h"

#include <stdexcept>

#include "eval/table.h"

namespace cdl {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), counts_(num_classes * num_classes, 0) {
  if (num_classes == 0) {
    throw std::invalid_argument("ConfusionMatrix: need at least one class");
  }
}

void ConfusionMatrix::check_class(std::size_t c) const {
  if (c >= n_) {
    throw std::out_of_range("ConfusionMatrix: class " + std::to_string(c) +
                            " of " + std::to_string(n_));
  }
}

void ConfusionMatrix::record(std::size_t truth, std::size_t predicted) {
  check_class(truth);
  check_class(predicted);
  ++counts_[truth * n_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t predicted) const {
  check_class(truth);
  check_class(predicted);
  return counts_[truth * n_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t c = 0; c < n_; ++c) diag += counts_[c * n_ + c];
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t c) const {
  check_class(c);
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < n_; ++t) predicted += counts_[t * n_ + c];
  return predicted == 0 ? 0.0
                        : static_cast<double>(counts_[c * n_ + c]) /
                              static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t c) const {
  check_class(c);
  std::size_t truth = 0;
  for (std::size_t p = 0; p < n_; ++p) truth += counts_[c * n_ + p];
  return truth == 0 ? 0.0
                    : static_cast<double>(counts_[c * n_ + c]) /
                          static_cast<double>(truth);
}

std::string ConfusionMatrix::to_string() const {
  std::vector<std::string> header{"truth\\pred"};
  for (std::size_t c = 0; c < n_; ++c) header.push_back(std::to_string(c));
  header.emplace_back("recall");
  TextTable table(std::move(header));

  for (std::size_t t = 0; t < n_; ++t) {
    std::vector<std::string> row{std::to_string(t)};
    for (std::size_t p = 0; p < n_; ++p) {
      row.push_back(std::to_string(count(t, p)));
    }
    row.push_back(fmt_percent(recall(t)));
    table.add_row(std::move(row));
  }
  return table.to_string();
}

}  // namespace cdl
