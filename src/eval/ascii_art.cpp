#include "eval/ascii_art.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cdl {

namespace {
// Density ramp from blank to solid.
constexpr std::string_view kRamp = " .:-=+*#%@";

char glyph_for(float v) {
  const float clamped = std::clamp(v, 0.0F, 1.0F);
  const auto idx = static_cast<std::size_t>(clamped * (kRamp.size() - 1) + 0.5F);
  return kRamp[idx];
}

void check_image(const Tensor& image) {
  if (image.shape().rank() != 3 || image.shape()[0] != 1) {
    throw std::invalid_argument("render_ascii: expected (1, H, W) tensor, got " +
                                image.shape().to_string());
  }
}
}  // namespace

std::string render_ascii(const Tensor& image) {
  check_image(image);
  const std::size_t h = image.shape()[1];
  const std::size_t w = image.shape()[2];
  std::string out;
  out.reserve(h * (w + 1));
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) out += glyph_for(image.at(0, y, x));
    out += '\n';
  }
  return out;
}

std::string render_ascii_row(const std::vector<Tensor>& images,
                             const std::vector<std::string>& captions,
                             std::size_t gap) {
  if (images.empty()) return "";
  if (captions.size() != images.size()) {
    throw std::invalid_argument("render_ascii_row: captions/images mismatch");
  }
  std::size_t height = 0;
  for (const Tensor& img : images) {
    check_image(img);
    height = std::max(height, img.shape()[1]);
  }

  const std::string spacer(gap, ' ');
  std::string out;
  // Caption line, padded to each image's width.
  for (std::size_t i = 0; i < images.size(); ++i) {
    const std::size_t w = images[i].shape()[2];
    std::string cap = captions[i].substr(0, w);
    cap += std::string(w - cap.size(), ' ');
    out += cap + (i + 1 < images.size() ? spacer : "");
  }
  out += '\n';

  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t i = 0; i < images.size(); ++i) {
      const std::size_t h = images[i].shape()[1];
      const std::size_t w = images[i].shape()[2];
      if (y < h) {
        for (std::size_t x = 0; x < w; ++x) {
          out += glyph_for(images[i].at(0, y, x));
        }
      } else {
        out += std::string(w, ' ');
      }
      if (i + 1 < images.size()) out += spacer;
    }
    out += '\n';
  }
  return out;
}

}  // namespace cdl
