// TextTable: minimal aligned ASCII table renderer for bench/report output.
#pragma once

#include <string>
#include <vector>

namespace cdl {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Row width must match the header width.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("%.3f" etc.).
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// "97.55 %" style percentage from a ratio in [0,1].
[[nodiscard]] std::string fmt_percent(double ratio, int precision = 2);

}  // namespace cdl
