// ExitProfile: per-exit-stage accounting for a cascade run — exit counts,
// correctness, OPS actually spent, and the confidence distribution at each
// exit. This is the quantity behind the paper's Fig. 5/9 per-stage numbers
// and the statistic threshold-tuning methods consume.
//
// record() is the only mutator and aggregation is serial in sample order, so
// a profile built next to an Evaluation is bit-exactly consistent with its
// accuracy/OPS aggregates for any thread count.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace cdl::obs {

class Registry;

struct StageExit {
  std::string name;             ///< "O1".."On", "FC"
  std::size_t exits = 0;        ///< inputs that terminated here
  std::size_t correct = 0;      ///< of those, correctly labeled
  double sum_ops = 0.0;         ///< cumulative OPS spent by those inputs
  double sum_energy_pj = 0.0;   ///< cumulative modeled energy of those inputs
  Histogram confidence{0.0, 1.0, 20};  ///< confidence at the exit decision

  [[nodiscard]] double accuracy() const {
    return exits == 0 ? 0.0
                      : static_cast<double>(correct) / static_cast<double>(exits);
  }
  [[nodiscard]] double avg_ops() const {
    return exits == 0 ? 0.0 : sum_ops / static_cast<double>(exits);
  }
  /// Modeled pJ per image exiting here (src/energy pricing of exit_ops).
  [[nodiscard]] double avg_energy_pj() const {
    return exits == 0 ? 0.0 : sum_energy_pj / static_cast<double>(exits);
  }

  friend bool operator==(const StageExit&, const StageExit&) = default;
};

class ExitProfile {
 public:
  ExitProfile() = default;
  /// One slot per stage name, in cascade order (last = final/FC stage).
  explicit ExitProfile(std::vector<std::string> stage_names);

  /// `energy_pj` is the input's modeled energy (0.0 when the caller does not
  /// price energy); aggregation stays serial in sample order either way.
  void record(std::size_t stage, double confidence, double ops, bool correct,
              double energy_pj = 0.0);

  [[nodiscard]] std::size_t num_stages() const { return stages_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double sum_ops() const { return sum_ops_; }
  [[nodiscard]] double sum_energy_pj() const { return sum_energy_pj_; }
  /// A stage's exit-weighted share of the profile's total energy.
  [[nodiscard]] double energy_share(std::size_t stage) const;
  [[nodiscard]] const StageExit& stage(std::size_t i) const;

  /// Per-stage exit counts in stage order (for consistency checks against
  /// Evaluation::exit_counts).
  [[nodiscard]] std::vector<std::size_t> exit_counts() const;
  [[nodiscard]] double exit_fraction(std::size_t stage) const;

  /// Fraction of all inputs that *entered* `stage` (survived every earlier
  /// exit): 1.0 at stage 0, decreasing along the cascade. This is the
  /// surviving-batch fraction the stage-major batched path processes.
  [[nodiscard]] double entering_fraction(std::size_t stage) const;
  /// Fraction of all inputs still alive *after* `stage`'s exit decision:
  /// entering_fraction(stage) - exit_fraction(stage); 0.0 at the last stage.
  [[nodiscard]] double surviving_fraction(std::size_t stage) const;

  /// Human-readable per-stage table; first line starts with "exit profile".
  [[nodiscard]] std::string summary() const;
  /// stage,exits,share,correct,accuracy,avg_ops,conf_mean,conf_p50,conf_p95,
  /// entering,surviving,avg_energy_pj,energy_share
  void write_csv(std::ostream& os) const;

  /// Exports the profile into `registry` as `<prefix>_...` families: per-stage
  /// exit/correct/ops counters, accuracy and cascade-fraction gauges, and the
  /// confidence histograms, each sample labeled {stage="<name>"} — the shape
  /// `cdl_eval --metrics-out` exposes in OpenMetrics text. Re-exporting into
  /// the same registry accumulates counters and merges histograms.
  void export_to_registry(Registry& registry,
                          const std::string& prefix = "cdl") const;

  friend bool operator==(const ExitProfile&, const ExitProfile&) = default;

 private:
  std::vector<StageExit> stages_;
  std::size_t total_ = 0;
  double sum_ops_ = 0.0;
  double sum_energy_pj_ = 0.0;
};

}  // namespace cdl::obs
