#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cdl::obs {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (bins == 0) {
    throw std::invalid_argument("Histogram: need at least one bin");
  }
  if (!(lo < hi)) {
    throw std::invalid_argument("Histogram: lo must be < hi");
  }
  bins_.assign(bins, 0);
}

void Histogram::record(double value, std::uint64_t weight) {
  if (std::isnan(value)) {
    nan_ += weight;
    return;
  }
  count_ += weight;
  sum_ += value * static_cast<double>(weight);
  if (value < lo_) {
    underflow_ += weight;
  } else if (value > hi_) {
    overflow_ += weight;
  } else {
    // value == hi_ folds into the last bin.
    auto bin = static_cast<std::size_t>((value - lo_) / width_);
    bin = std::min(bin, bins_.size() - 1);
    bins_[bin] += weight;
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.bins_.size() != bins_.size()) {
    throw std::invalid_argument("Histogram::merge: layout mismatch");
  }
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  nan_ += other.nan_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= bins_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  if (i >= bins_.size()) throw std::out_of_range("Histogram::bin_hi");
  return i + 1 == bins_.size() ? hi_ : lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Histogram::quantile: q outside [0, 1]");
  }
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return lo_;  // mass below range reported at lo
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto in_bin = static_cast<double>(bins_[i]);
    if (cum + in_bin >= target && in_bin > 0) {
      return bin_lo(i) + (bin_hi(i) - bin_lo(i)) * (target - cum) / in_bin;
    }
    cum += in_bin;
  }
  return hi_;  // remaining mass is overflow, reported at hi
}

std::string Histogram::to_string() const {
  std::string out;
  char line[96];
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    std::snprintf(line, sizeof line, "[%.3f, %.3f%c %llu\n", bin_lo(i),
                  bin_hi(i), i + 1 == bins_.size() ? ']' : ')',
                  static_cast<unsigned long long>(bins_[i]));
    out += line;
  }
  std::snprintf(line, sizeof line,
                "underflow %llu, overflow %llu, nan %llu, mean %.4f\n",
                static_cast<unsigned long long>(underflow_),
                static_cast<unsigned long long>(overflow_),
                static_cast<unsigned long long>(nan_), mean());
  out += line;
  return out;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("percentile: q outside [0, 1]");
  }
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto below = static_cast<std::size_t>(rank);
  const std::size_t above = std::min(below + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(below);
  return values[below] + (values[above] - values[below]) * frac;
}

}  // namespace cdl::obs
