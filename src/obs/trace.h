// Tracing: low-overhead span/instant event capture for the inference stack.
//
// Each thread owns a fixed-capacity ring of events that only it writes, so
// recording is wait-free; the registry mutex is taken only on a thread's
// first event and by whole-trace operations (collect / clear / export).
// Disabled tracing costs one relaxed atomic load per span site, and the
// CDL_TRACE_DISABLED compile definition (CMake option CDL_TRACE=OFF) removes
// the hooks entirely.
//
// Event names must be string literals (static storage); a per-event integer
// id carries dynamic context such as the cascade stage index. Exporters:
// Chrome trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev),
// CSV, and an aggregated human-readable summary.
//
// collect() and the exporters read the per-thread rings without locking the
// writers: call them only when no traced work is in flight (e.g. after a
// parallel_for returned, which establishes the necessary happens-before).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cdl::obs {

/// Nanoseconds on the steady clock since an anchor fixed at first use.
[[nodiscard]] std::uint64_t now_ns();

enum class EventKind : std::uint8_t { kSpan, kInstant };

struct TraceEvent {
  const char* name = "";       ///< string literal; never owned
  std::uint64_t start_ns = 0;  ///< see now_ns()
  std::uint64_t dur_ns = 0;    ///< 0 for instants
  std::int32_t id = -1;        ///< dynamic payload (stage/worker index), -1 = none
  EventKind kind = EventKind::kSpan;
};

/// Single-writer fixed-capacity ring; overwrites the oldest event when full.
/// Storage is allocated lazily on the first push, so idle threads cost a few
/// words even with large capacities.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEvent& event);
  void clear() { next_ = 0; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity()).
  [[nodiscard]] std::size_t size() const;
  /// Events ever pushed, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const { return next_; }
  /// Held events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> events_;
  std::size_t capacity_;
  std::uint64_t next_ = 0;
};

/// Process-wide trace sink. `CDL_TRACE=1` in the environment enables tracing
/// at startup; `CDL_TRACE_RING=<n>` overrides the default per-thread ring
/// capacity (65536 events).
class Tracer {
 public:
  static Tracer& instance();

  [[nodiscard]] static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t ring_capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  /// Applies to rings of threads that record their first event afterwards.
  void set_ring_capacity(std::size_t events);

  /// Pushes to the calling thread's ring regardless of enabled(); span/
  /// instant helpers do the enabled() check so the hot path skips this call.
  void record(const TraceEvent& event);

  /// Names the calling thread in exports ("cdl-worker-0", ...).
  void set_thread_name(const std::string& name);

  /// Drops all held events; forgets threads that have exited.
  void clear();

  struct TaggedEvent {
    TraceEvent event;
    std::uint32_t tid = 0;
    std::string thread_name;  ///< empty when the thread was never named
  };
  /// Every held event across all threads, sorted by start time.
  [[nodiscard]] std::vector<TaggedEvent> collect() const;

  /// Events lost to ring overwrites since the last clear().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace_event JSON ("traceEvents" array of X/i/M records).
  void write_chrome_trace(std::ostream& os) const;
  /// One row per event: thread,tid,kind,name,id,start_ns,dur_ns.
  void write_csv(std::ostream& os) const;
  /// Spans aggregated by name (+id where set): count, total and mean ms.
  [[nodiscard]] std::string summary() const;

 private:
  Tracer();

  struct ThreadTrace {
    ThreadTrace(std::size_t capacity, std::uint32_t thread_id)
        : ring(capacity), tid(thread_id) {}
    TraceRing ring;
    std::uint32_t tid;
    std::string name;
  };

  ThreadTrace& local();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_;
  std::atomic<std::uint32_t> next_tid_{0};
  mutable std::mutex mutex_;  ///< guards threads_
  std::vector<std::shared_ptr<ThreadTrace>> threads_;
};

/// RAII span: samples the clock on construction and records on destruction,
/// both skipped entirely while tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int32_t id = -1) {
    if (Tracer::enabled()) {
      name_ = name;
      id_ = id;
      start_ = now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceEvent event;
      event.name = name_;
      event.start_ns = start_;
      event.dur_ns = now_ns() - start_;
      event.id = id_;
      Tracer::instance().record(event);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Updates the id payload before the span closes (e.g. the exit stage
  /// becomes known mid-span).
  void set_id(std::int32_t id) {
    if (name_ != nullptr) id_ = id;
  }

 private:
  const char* name_ = nullptr;
  std::int32_t id_ = -1;
  std::uint64_t start_ = 0;
};

inline void trace_instant(const char* name, std::int32_t id = -1) {
  if (!Tracer::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.start_ns = now_ns();
  event.id = id;
  event.kind = EventKind::kInstant;
  Tracer::instance().record(event);
}

}  // namespace cdl::obs

#ifndef CDL_TRACE_DISABLED
#define CDL_TRACE_SPAN(var, name, id) ::cdl::obs::TraceSpan var((name), (id))
#define CDL_TRACE_INSTANT(name, id) ::cdl::obs::trace_instant((name), (id))
#else
#define CDL_TRACE_SPAN(var, name, id) ((void)0)
#define CDL_TRACE_INSTANT(name, id) ((void)0)
#endif
