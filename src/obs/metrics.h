// Typed metrics for the observability layer: fixed-bin histograms with
// deterministic bin-interpolated quantiles (confidence-at-exit, per-stage
// distributions) and an exact percentile helper for latency samples.
//
// Everything here is plain value types aggregated serially, so results are
// bit-identical for any thread count when the recording order is fixed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cdl::obs {

/// Uniform-width histogram over [lo, hi) with explicit underflow/overflow
/// counters. Values equal to `hi` land in the last bin (confidence 1.0 is
/// common and meaningful); NaN is counted separately and excluded from
/// mean/quantiles.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void record(double value) { record(value, 1); }
  void record(double value, std::uint64_t weight);

  /// Adds another histogram's counts; layouts must match exactly.
  void merge(const Histogram& other);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t num_bins() const { return bins_.size(); }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return bins_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Recorded non-NaN values (includes under/overflow).
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t nan_count() const { return nan_; }

  /// Exact mean of recorded non-NaN values (0 when empty).
  [[nodiscard]] double mean() const;

  /// Exact sum of recorded non-NaN values (exposition's `_sum` sample).
  [[nodiscard]] double sum() const { return sum_; }

  /// Bin-interpolated quantile, q in [0, 1]; underflow contributes at lo,
  /// overflow at hi. Returns 0 when empty. Deterministic.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t nan_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Exact percentile of a sample set, q in [0, 1], linear interpolation
/// between order statistics (the common "linear" / type-7 definition).
/// Throws std::invalid_argument on an empty set or q outside [0, 1].
[[nodiscard]] double percentile(std::vector<double> values, double q);

}  // namespace cdl::obs
