#include "obs/train_telemetry.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace cdl::obs {

namespace {

/// JSON-safe number rendering: registry's canonical render_value for finite
/// values (integers without a decimal point, round-trip %.17g otherwise),
/// null for NaN/Inf — JSON has no spelling for those.
std::string json_num(double value) {
  if (!std::isfinite(value)) return "null";
  return render_value(value);
}

std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

const char* json_bool(bool b) { return b ? "true" : "false"; }

void append_admission_fields(std::ostream& os, const AdmissionRecord& a) {
  os << "\"stage\": " << json_str(a.stage)
     << ", \"prefix_layers\": " << a.prefix_layers
     << ", \"gamma_base\": " << json_num(a.gamma_base)
     << ", \"gamma_i\": " << json_num(a.gamma_i)
     << ", \"reached\": " << a.reached
     << ", \"classified\": " << a.classified
     << ", \"gain\": " << json_num(a.gain)
     << ", \"epsilon\": " << json_num(a.epsilon)
     << ", \"train_delta\": " << json_num(a.train_delta)
     << ", \"admitted\": " << json_bool(a.admitted);
}

}  // namespace

TrainTelemetry::TrainTelemetry(TrainTelemetryConfig config)
    : config_(config) {}

void TrainTelemetry::set_param_info(std::vector<Network::ParamInfo> info) {
  param_info_ = std::move(info);
}

void TrainTelemetry::write_event(const std::string& line) {
  if (log_ == nullptr) return;
  *log_ << line << '\n';
  if (!*log_) {
    throw std::runtime_error("TrainTelemetry: write failure on event log");
  }
}

std::uint64_t TrainTelemetry::elapsed_ns() {
  if (!config_.wall_time) return 0;
  const std::uint64_t now = now_ns();
  const std::uint64_t elapsed = last_mark_ns_ == 0 ? 0 : now - last_mark_ns_;
  last_mark_ns_ = now;
  return elapsed;
}

void TrainTelemetry::run_start(const TrainRunInfo& info) {
  info_ = info;
  last_mark_ns_ = config_.wall_time ? now_ns() : 0;
  std::ostringstream os;
  os << "{\"schema\": " << json_str(kTrainEventsSchema)
     << ", \"event\": \"run_start\""
     << ", \"tool\": " << json_str(info.tool)
     << ", \"arch\": " << json_str(info.arch)
     << ", \"rule\": " << json_str(info.rule)
     << ", \"git\": " << json_str(info.git)
     << ", \"seed\": " << info.seed
     << ", \"train_n\": " << info.train_n
     << ", \"val_n\": " << info.val_n
     << ", \"epochs\": " << info.epochs
     << ", \"lc_epochs\": " << info.lc_epochs
     << ", \"batch_size\": " << info.batch_size
     << ", \"log_every_batches\": " << config_.log_every_batches
     << ", \"prune\": " << json_bool(info.prune) << "}";
  write_event(os.str());
}

void TrainTelemetry::run_end() {
  std::ostringstream os;
  os << "{\"event\": \"run_end\""
     << ", \"baseline_final_loss\": " << json_num(final_baseline_loss_)
     << ", \"fc_fraction\": " << json_num(fc_fraction_)
     << ", \"stages\": " << stages_.size()
     << ", \"diverged\": " << json_bool(non_finite_.has_value()) << "}";
  write_event(os.str());
}

bool TrainTelemetry::batch_due(std::size_t step) const {
  return config_.log_every_batches != 0 &&
         step % config_.log_every_batches == 0;
}

void TrainTelemetry::arm_stats() {
  pending_.clear();
  armed_ = true;
}

void TrainTelemetry::on_param_step(const ParamStepStats& stats) {
  if (!armed_) return;
  TrainParamStat row;
  row.stats = stats;
  if (stats.param < param_info_.size()) {
    const Network::ParamInfo& info = param_info_[stats.param];
    row.layer = info.layer;
    row.layer_name = info.layer_name;
    row.param_name = info.param_name;
  } else {
    row.layer = stats.param;
    row.layer_name = "p" + std::to_string(stats.param);
    row.param_name = "p" + std::to_string(stats.param);
  }
  pending_.push_back(std::move(row));
}

void TrainTelemetry::write_param_stats(
    std::ostream& os, const std::vector<TrainParamStat>& params) const {
  os << "[";
  for (std::size_t i = 0; i < params.size(); ++i) {
    const TrainParamStat& p = params[i];
    if (i != 0) os << ", ";
    os << "{\"layer\": " << p.layer
       << ", \"name\": " << json_str(p.layer_name)
       << ", \"param\": " << json_str(p.param_name)
       << ", \"grad_l2\": " << json_num(p.stats.grad_l2)
       << ", \"grad_max\": " << json_num(p.stats.grad_max_abs)
       << ", \"update_l2\": " << json_num(p.stats.update_l2)
       << ", \"update_max\": " << json_num(p.stats.update_max_abs)
       << ", \"weight_l2\": " << json_num(p.stats.weight_l2)
       << ", \"weight_max\": " << json_num(p.stats.weight_max_abs) << "}";
  }
  os << "]";
}

void TrainTelemetry::record_batch(std::size_t epoch, std::size_t step,
                                  std::size_t samples_seen, double mean_loss,
                                  double lr) {
  armed_ = false;  // consumed; pending_ stays for the epoch record
  if (log_ == nullptr) return;
  std::ostringstream os;
  os << "{\"event\": \"batch\", \"phase\": \"baseline\""
     << ", \"epoch\": " << epoch
     << ", \"step\": " << step
     << ", \"samples_seen\": " << samples_seen
     << ", \"loss\": " << json_num(mean_loss)
     << ", \"lr\": " << json_num(lr)
     << ", \"params\": ";
  write_param_stats(os, pending_);
  os << "}";
  write_event(os.str());
}

void TrainTelemetry::record_epoch(std::size_t epoch, std::size_t total_epochs,
                                  double loss, double accuracy, double lr) {
  armed_ = false;
  TrainEpochRecord record;
  record.epoch = epoch;
  record.loss = loss;
  record.accuracy = accuracy;
  record.lr = lr;
  record.wall_ns = elapsed_ns();
  record.params = pending_;
  std::ostringstream os;
  os << "{\"event\": \"epoch\", \"phase\": \"baseline\""
     << ", \"epoch\": " << epoch
     << ", \"epochs\": " << total_epochs
     << ", \"loss\": " << json_num(loss)
     << ", \"accuracy\": " << json_num(accuracy)
     << ", \"lr\": " << json_num(lr)
     << ", \"wall_ns\": " << record.wall_ns
     << ", \"params\": ";
  write_param_stats(os, record.params);
  os << "}";
  write_event(os.str());
  final_baseline_loss_ = loss;
  baseline_epochs_.push_back(std::move(record));
}

TrainStageRecord& TrainTelemetry::stage_record(const std::string& stage,
                                               std::size_t prefix_layers) {
  for (TrainStageRecord& s : stages_) {
    if (s.stage == stage) return s;
  }
  TrainStageRecord record;
  record.stage = stage;
  record.prefix_layers = prefix_layers;
  stages_.push_back(std::move(record));
  return stages_.back();
}

void TrainTelemetry::record_lc_epoch(const std::string& stage,
                                     std::size_t prefix_layers,
                                     std::size_t epoch,
                                     std::size_t total_epochs, double loss,
                                     double lr, std::size_t reached,
                                     double weight_l2, double weight_max_abs) {
  LcEpochRecord record;
  record.epoch = epoch;
  record.loss = loss;
  record.lr = lr;
  record.weight_l2 = weight_l2;
  record.weight_max_abs = weight_max_abs;
  stage_record(stage, prefix_layers).epochs.push_back(record);
  std::ostringstream os;
  os << "{\"event\": \"lc_epoch\", \"stage\": " << json_str(stage)
     << ", \"prefix_layers\": " << prefix_layers
     << ", \"epoch\": " << epoch
     << ", \"epochs\": " << total_epochs
     << ", \"loss\": " << json_num(loss)
     << ", \"lr\": " << json_num(lr)
     << ", \"reached\": " << reached
     << ", \"weight_l2\": " << json_num(weight_l2)
     << ", \"weight_max\": " << json_num(weight_max_abs) << "}";
  write_event(os.str());
}

void TrainTelemetry::record_admission(const AdmissionRecord& record) {
  stage_record(record.stage, record.prefix_layers).admission = record;
  std::ostringstream os;
  os << "{\"event\": \"admission\", ";
  append_admission_fields(os, record);
  os << "}";
  write_event(os.str());
}

void TrainTelemetry::record_non_finite(const NonFiniteRecord& record) {
  non_finite_ = record;
  std::ostringstream os;
  os << "{\"event\": \"non_finite\", \"phase\": " << json_str(record.phase)
     << ", \"stage\": " << json_str(record.stage)
     << ", \"epoch\": " << record.epoch
     << ", \"step\": " << record.step
     << ", \"layer\": " << json_str(record.layer_name)
     << ", \"param\": " << json_str(record.param_name)
     << ", \"stat\": " << json_str(record.stat)
     << ", \"value\": " << json_str(record.value) << "}";
  write_event(os.str());
}

void TrainTelemetry::set_delta_selection(double delta, double accuracy) {
  delta_selection_ = std::make_pair(delta, accuracy);
}

void TrainTelemetry::export_to_registry(Registry& registry) const {
  registry.counter("cdl_train_epochs", "Baseline training epochs run")
      .inc(static_cast<double>(baseline_epochs_.size()));
  registry
      .counter("cdl_train_samples",
               "Training samples consumed by the baseline loop")
      .inc(static_cast<double>(info_.train_n * baseline_epochs_.size()));
  registry
      .gauge("cdl_train_final_loss", "Mean loss of the last baseline epoch")
      .set(final_baseline_loss_);
  if (!baseline_epochs_.empty()) {
    registry
        .gauge("cdl_train_accuracy",
               "Training accuracy over the last baseline epoch")
        .set(baseline_epochs_.back().accuracy);
  }
  registry
      .gauge("cdl_train_fc_fraction",
             "Fraction of training instances reaching the final FC stage")
      .set(fc_fraction_);
  registry
      .counter("cdl_train_non_finite",
               "Non-finite-loss aborts recorded during training")
      .inc(non_finite_.has_value() ? 1.0 : 0.0);
  for (const TrainStageRecord& s : stages_) {
    const Labels labels = {{"stage", s.stage}};
    if (!s.epochs.empty()) {
      registry
          .gauge("cdl_train_lc_final_loss",
                 "Mean LC loss of the stage's last training epoch", labels)
          .set(s.epochs.back().loss);
    }
    if (s.admission.has_value()) {
      const AdmissionRecord& a = *s.admission;
      registry
          .gauge("cdl_train_stage_admitted",
                 "Algorithm-1 verdict (1 = admitted, 0 = rejected)", labels)
          .set(a.admitted ? 1.0 : 0.0);
      registry
          .gauge("cdl_train_stage_gain",
                 "Algorithm-1 gain G_i in operation units", labels)
          .set(a.gain);
      registry
          .counter("cdl_train_stage_reached",
                   "Instances reaching the stage during training (I_i)",
                   labels)
          .inc(static_cast<double>(a.reached));
      registry
          .counter("cdl_train_stage_classified",
                   "Instances terminating at the stage at the training "
                   "delta (Cl_i)",
                   labels)
          .inc(static_cast<double>(a.classified));
    }
  }
}

void TrainTelemetry::write_report(std::ostream& os,
                                  const Registry* registry) const {
  os << "{\n";
  os << "  \"schema\": " << json_str(kTrainReportSchema) << ",\n";
  os << "  \"tool\": " << json_str(info_.tool) << ",\n";
  os << "  \"arch\": " << json_str(info_.arch) << ",\n";
  os << "  \"rule\": " << json_str(info_.rule) << ",\n";
  os << "  \"git\": " << json_str(info_.git) << ",\n";
  os << "  \"seed\": " << info_.seed << ",\n";
  os << "  \"train_n\": " << info_.train_n << ",\n";
  os << "  \"val_n\": " << info_.val_n << ",\n";
  os << "  \"epochs\": " << info_.epochs << ",\n";
  os << "  \"lc_epochs\": " << info_.lc_epochs << ",\n";
  os << "  \"batch_size\": " << info_.batch_size << ",\n";
  os << "  \"prune\": " << json_bool(info_.prune) << ",\n";

  os << "  \"baseline\": {\n    \"final_loss\": "
     << json_num(final_baseline_loss_) << ",\n    \"epochs\": [\n";
  for (std::size_t i = 0; i < baseline_epochs_.size(); ++i) {
    const TrainEpochRecord& e = baseline_epochs_[i];
    os << "      {\"epoch\": " << e.epoch
       << ", \"loss\": " << json_num(e.loss)
       << ", \"accuracy\": " << json_num(e.accuracy)
       << ", \"lr\": " << json_num(e.lr)
       << ", \"wall_ns\": " << e.wall_ns
       << ", \"params\": ";
    write_param_stats(os, e.params);
    os << "}" << (i + 1 < baseline_epochs_.size() ? ",\n" : "\n");
  }
  if (baseline_epochs_.empty()) os << "\n";
  os << "    ]\n  },\n";

  os << "  \"stages\": [\n";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const TrainStageRecord& s = stages_[i];
    os << "    {\"stage\": " << json_str(s.stage)
       << ", \"prefix_layers\": " << s.prefix_layers << ",\n     \"epochs\": [";
    for (std::size_t k = 0; k < s.epochs.size(); ++k) {
      if (k != 0) os << ", ";
      os << "{\"epoch\": " << s.epochs[k].epoch
         << ", \"loss\": " << json_num(s.epochs[k].loss)
         << ", \"lr\": " << json_num(s.epochs[k].lr)
         << ", \"weight_l2\": " << json_num(s.epochs[k].weight_l2)
         << ", \"weight_max\": " << json_num(s.epochs[k].weight_max_abs)
         << "}";
    }
    os << "],\n     \"admission\": ";
    if (s.admission.has_value()) {
      os << "{";
      append_admission_fields(os, *s.admission);
      os << "}";
    } else {
      os << "null";
    }
    os << "}" << (i + 1 < stages_.size() ? ",\n" : "\n");
  }
  if (stages_.empty()) os << "\n";
  os << "  ],\n";

  os << "  \"fc_fraction\": " << json_num(fc_fraction_) << ",\n";

  os << "  \"delta_selection\": ";
  if (delta_selection_.has_value()) {
    os << "{\"delta\": " << json_num(delta_selection_->first)
       << ", \"accuracy\": " << json_num(delta_selection_->second) << "}";
  } else {
    os << "null";
  }
  os << ",\n";

  os << "  \"non_finite\": ";
  if (non_finite_.has_value()) {
    const NonFiniteRecord& n = *non_finite_;
    os << "{\"phase\": " << json_str(n.phase)
       << ", \"stage\": " << json_str(n.stage)
       << ", \"epoch\": " << n.epoch
       << ", \"step\": " << n.step
       << ", \"layer\": " << json_str(n.layer_name)
       << ", \"param\": " << json_str(n.param_name)
       << ", \"stat\": " << json_str(n.stat)
       << ", \"value\": " << json_str(n.value) << "}";
  } else {
    os << "null";
  }
  os << ",\n";

  os << "  \"metrics\": ";
  if (registry != nullptr) {
    registry->write_json(os);
  } else {
    os << "null";
  }
  os << "\n}\n";
}

std::string TrainTelemetry::report_json(const Registry* registry) const {
  std::ostringstream os;
  write_report(os, registry);
  return os.str();
}

}  // namespace cdl::obs
