// TrainTelemetry: the training-side counterpart of RunReport.
//
// Inference observability (trace rings, exit profiles, layer attribution)
// answers "what did the cascade do"; this layer answers "why does the
// cascade look the way it does" — it records baseline backprop progress
// (loss, accuracy, learning rate, per-parameter gradient/weight/update
// statistics), every stage classifier's LMS training curve, and each
// Algorithm-1 admission decision with the inputs of the gain formula
//   G_i = (γ_base − γ_i)·Cl_i − γ_i·(I_i − Cl_i)
// so a rejected stage can be audited from the log alone.
//
// Two export surfaces:
//   * a streamed JSONL event log, schema "cdl-train-events/1": one run_start
//     header line, per-epoch records (and per-N-batch records when
//     log_every_batches != 0), lc_epoch / admission / non_finite events, one
//     run_end line;
//   * a final "cdl-train-report/1" JSON document mirroring run_report: loss
//     curves, per-stage LC curves, the admission table, non-finite-loss
//     diagnostics and an embedded Registry snapshot.
//
// Determinism contract (the same one the rest of src/obs/ follows): with the
// default config both surfaces are byte-identical across repeated runs with
// the same seed and across thread counts — training aggregates serially in
// sample order, statistics accumulate serially in element order, and numbers
// render via the registry's canonical render_value. Wall-clock fields are
// emitted as 0 unless TrainTelemetryConfig::wall_time opts into real timing
// (which trades the byte-determinism guarantee for timings).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "nn/network.h"
#include "nn/optimizer.h"

namespace cdl::obs {

class Registry;

inline constexpr const char* kTrainEventsSchema = "cdl-train-events/1";
inline constexpr const char* kTrainReportSchema = "cdl-train-report/1";

struct TrainTelemetryConfig {
  /// Emit one "batch" event every N optimizer steps (0 = epoch records only).
  std::size_t log_every_batches = 0;
  /// Stamp epoch/batch events and the report with real wall-clock durations.
  /// Off by default: the logs' contract is byte-determinism across runs.
  bool wall_time = false;
};

/// Fields of the run_start header line / report preamble.
struct TrainRunInfo {
  std::string tool;        ///< emitting binary ("cdl_train", tests, ...)
  std::string arch;        ///< architecture label ("MNIST_3C", ...)
  std::string rule;        ///< stage-classifier rule ("lms"/"softmax_xent")
  std::string git;         ///< build provenance (git describe), may be empty
  std::uint64_t seed = 0;
  std::size_t train_n = 0;
  std::size_t val_n = 0;
  std::size_t epochs = 0;     ///< baseline epochs
  std::size_t lc_epochs = 0;  ///< stage-classifier epochs
  std::size_t batch_size = 1;
  bool prune = false;  ///< Algorithm-1 gain admission enabled
};

/// One parameter tensor's statistics, resolved to its owning layer.
struct TrainParamStat {
  std::size_t layer = 0;
  std::string layer_name;
  std::string param_name;
  ParamStepStats stats;
};

/// One baseline epoch: the loss curve entry embedded in the report.
struct TrainEpochRecord {
  std::size_t epoch = 0;  ///< 1-based
  double loss = 0.0;      ///< mean per-sample loss over the epoch
  double accuracy = 0.0;  ///< running train accuracy (argmax of the logits)
  double lr = 0.0;        ///< learning rate the epoch ran at
  std::uint64_t wall_ns = 0;
  std::vector<TrainParamStat> params;  ///< stats of the epoch's last step
};

/// One stage-classifier epoch (Algorithm 1 steps 4-7).
struct LcEpochRecord {
  std::size_t epoch = 0;  ///< 1-based
  double loss = 0.0;      ///< mean LC loss over the instances that reached it
  double lr = 0.0;
  double weight_l2 = 0.0;       ///< classifier |[W;b]|_2 after the epoch
  double weight_max_abs = 0.0;  ///< classifier max|w| after the epoch
};

/// One Algorithm-1 admission decision with every input of the gain formula.
struct AdmissionRecord {
  std::string stage;            ///< candidate name ("O1", "O2", ...)
  std::size_t prefix_layers = 0;
  double gamma_base = 0.0;      ///< γ_base: full baseline OPS
  double gamma_i = 0.0;         ///< γ_i: cumulative OPS of exiting here
  std::size_t reached = 0;      ///< I_i
  std::size_t classified = 0;   ///< Cl_i at the training δ
  double gain = 0.0;            ///< G_i as computed by the trainer
  double epsilon = 0.0;         ///< admission bar ε
  double train_delta = 0.0;     ///< δ used to measure Cl_i
  bool admitted = false;
};

/// Diagnostic attached to a non-finite-loss abort.
struct NonFiniteRecord {
  std::string phase;       ///< "baseline" or "lc"
  std::string stage;       ///< LC stage name, empty in the baseline phase
  std::size_t epoch = 0;   ///< 1-based
  std::size_t step = 0;    ///< optimizer step / sample index within the epoch
  std::string layer_name;  ///< first offending tensor's layer ("loss" if none)
  std::string param_name;
  std::string stat;        ///< offending statistic ("weight", "gradient", "loss")
  std::string value;       ///< rendered offending value ("nan", "inf", ...)
};

/// Per-stage block of the final report: LC curve + admission verdict.
struct TrainStageRecord {
  std::string stage;
  std::size_t prefix_layers = 0;
  std::vector<LcEpochRecord> epochs;
  std::optional<AdmissionRecord> admission;
};

class TrainTelemetry final : public GradStatsSink {
 public:
  explicit TrainTelemetry(TrainTelemetryConfig config = {});

  /// Streams JSONL events to `os` (not owned; may be null for report-only
  /// collection). Attach before run_start() so the header is first in file.
  void set_log(std::ostream* os) { log_ = os; }

  /// Labels for resolving ParamStepStats::param to layer/parameter names.
  void set_param_info(std::vector<Network::ParamInfo> info);

  // --- run lifecycle --------------------------------------------------------
  void run_start(const TrainRunInfo& info);
  void run_end();

  // --- baseline training ----------------------------------------------------
  /// True when optimizer step `step` (1-based within the epoch) is due for a
  /// batch event. The trainer arms stats for due steps and the epoch's last.
  [[nodiscard]] bool batch_due(std::size_t step) const;
  /// Arms stat collection for the next optimizer step (GradStatsSink gate).
  void arm_stats();
  /// Emits a "batch" event for the step that just ran (consumes armed stats
  /// into the event; the buffer is retained for the epoch record).
  void record_batch(std::size_t epoch, std::size_t step,
                    std::size_t samples_seen, double mean_loss, double lr);
  /// Emits an "epoch" event carrying the last armed step's parameter stats
  /// and appends the epoch to the report's baseline loss curve.
  void record_epoch(std::size_t epoch, std::size_t total_epochs, double loss,
                    double accuracy, double lr);

  // --- Algorithm 1 ----------------------------------------------------------
  void record_lc_epoch(const std::string& stage, std::size_t prefix_layers,
                       std::size_t epoch, std::size_t total_epochs,
                       double loss, double lr, std::size_t reached,
                       double weight_l2, double weight_max_abs);
  void record_admission(const AdmissionRecord& record);

  /// Records the diagnostic and emits a "non_finite" event. The trainer
  /// throws TrainingDiverged right after; the streamed line survives the
  /// unwind even when no report is ever written.
  void record_non_finite(const NonFiniteRecord& record);

  // --- post-training annotations (report only) ------------------------------
  void set_fc_fraction(double fraction) { fc_fraction_ = fraction; }
  void set_delta_selection(double delta, double accuracy);
  void set_final_baseline_loss(double loss) { final_baseline_loss_ = loss; }

  // --- GradStatsSink --------------------------------------------------------
  void on_param_step(const ParamStepStats& stats) override;
  [[nodiscard]] bool wants_stats() const override { return armed_; }

  // --- export ---------------------------------------------------------------
  /// Publishes the collected aggregates as cdl_train_* registry families
  /// (epoch/sample totals, final losses, per-stage admission verdicts/gains).
  void export_to_registry(Registry& registry) const;

  /// Writes the full "cdl-train-report/1" JSON document. `registry` is
  /// embedded under "metrics" when non-null (typically after
  /// export_to_registry on it).
  void write_report(std::ostream& os, const Registry* registry) const;
  [[nodiscard]] std::string report_json(const Registry* registry) const;

  // Collected state, exposed read-only for tests and tools.
  [[nodiscard]] const TrainRunInfo& run_info() const { return info_; }
  [[nodiscard]] const std::vector<TrainEpochRecord>& baseline_epochs() const {
    return baseline_epochs_;
  }
  [[nodiscard]] const std::vector<TrainStageRecord>& stages() const {
    return stages_;
  }
  [[nodiscard]] const std::optional<NonFiniteRecord>& non_finite() const {
    return non_finite_;
  }
  [[nodiscard]] const TrainTelemetryConfig& config() const { return config_; }

 private:
  TrainStageRecord& stage_record(const std::string& stage,
                                 std::size_t prefix_layers);
  void write_event(const std::string& line);
  [[nodiscard]] std::uint64_t elapsed_ns();
  void write_param_stats(std::ostream& os,
                         const std::vector<TrainParamStat>& params) const;

  TrainTelemetryConfig config_;
  std::ostream* log_ = nullptr;
  TrainRunInfo info_;
  std::vector<Network::ParamInfo> param_info_;

  bool armed_ = false;
  std::vector<TrainParamStat> pending_;  ///< stats of the last armed step

  std::vector<TrainEpochRecord> baseline_epochs_;
  std::vector<TrainStageRecord> stages_;
  std::optional<NonFiniteRecord> non_finite_;
  double fc_fraction_ = 0.0;
  double final_baseline_loss_ = 0.0;
  std::optional<std::pair<double, double>> delta_selection_;
  std::uint64_t last_mark_ns_ = 0;  ///< wall-time anchor (wall_time only)
};

}  // namespace cdl::obs
