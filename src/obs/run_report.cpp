#include "obs/run_report.h"

#include <cstdio>
#include <sstream>

namespace cdl::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::uint64_t RunReport::attributed_ops() const {
  std::uint64_t total = 0;
  for (const auto& row : layers) total += row.ops;
  return total;
}

std::uint64_t RunReport::attributed_time_ns() const {
  std::uint64_t total = 0;
  for (const auto& row : layers) total += row.time_ns;
  return total;
}

namespace {

void write_layer_row(std::ostream& os, const LayerProfileRow& row) {
  os << "    {\"stage\": " << row.stage << ", \"layer\": " << row.layer
     << ", \"name\": \"" << json_escape(row.name) << "\", \"span\": "
     << row.span << ", \"calls\": " << row.calls << ", \"samples\": "
     << row.samples << ", \"ops\": " << row.ops << ", \"time_ns\": "
     << row.time_ns;
  char gops[48];
  std::snprintf(gops, sizeof gops, ", \"gops\": %.4f}", row.gops());
  os << gops;
}

void write_exit_profile(std::ostream& os, const ExitProfile& profile) {
  os << "[\n";
  for (std::size_t s = 0; s < profile.num_stages(); ++s) {
    const StageExit& st = profile.stage(s);
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"stage\": \"%s\", \"exits\": %zu, \"correct\": %zu, "
                  "\"accuracy\": %.6f, \"avg_ops\": %.1f, "
                  "\"exit_fraction\": %.6f, \"entering_fraction\": %.6f, "
                  "\"surviving_fraction\": %.6f}",
                  json_escape(st.name).c_str(), st.exits, st.correct,
                  st.accuracy(), st.avg_ops(), profile.exit_fraction(s),
                  profile.entering_fraction(s), profile.surviving_fraction(s));
    os << line << (s + 1 < profile.num_stages() ? ",\n" : "\n");
  }
  os << "  ]";
}

}  // namespace

void RunReport::write_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": \"" << kRunReportSchema << "\",\n";
  os << "  \"tool\": \"" << json_escape(tool) << "\",\n";
  os << "  \"network\": \"" << json_escape(network) << "\",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"samples\": " << samples << ",\n";
  os << "  \"seed\": " << seed << ",\n";
  os << "  \"total_time_ns\": " << total_time_ns << ",\n";
  os << "  \"total_ops\": " << total_ops << ",\n";
  os << "  \"attributed_ops\": " << attributed_ops() << ",\n";
  os << "  \"attributed_time_ns\": " << attributed_time_ns() << ",\n";

  os << "  \"layer_profile\": [\n";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    write_layer_row(os, layers[i]);
    os << (i + 1 < layers.size() ? ",\n" : "\n");
  }
  if (layers.empty()) os << "\n";
  os << "  ],\n";

  os << "  \"parallel_for\": {\"invocations\": " << parallel_for.invocations
     << ", \"items\": " << parallel_for.items << ", \"time_ns\": "
     << parallel_for.time_ns << "},\n";

  os << "  \"perf\": {\"attempted\": " << (perf_attempted ? "true" : "false")
     << ", \"reason\": \"" << json_escape(perf_reason) << "\", \"reading\": ";
  write_perf_json(os, perf);
  os << "},\n";

  os << "  \"exit_profile\": ";
  if (exit_profile.has_value()) {
    write_exit_profile(os, *exit_profile);
  } else {
    os << "null";
  }
  os << ",\n";

  os << "  \"metrics\": ";
  if (registry != nullptr) {
    registry->write_json(os);
  } else {
    os << "null";
  }
  os << "\n}\n";
}

std::string RunReport::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace cdl::obs
