// LayerProfiler: per-layer x per-cascade-stage attribution of time, OPS and
// achieved throughput for the inference stack.
//
// Recording follows the tracer's pattern: each thread owns a private
// accumulation table it alone writes, registered once under a mutex, and a
// disabled profiler costs one relaxed atomic load per instrumented site.
// snapshot() merges the per-thread tables by (stage, layer, name) — uint64
// addition commutes, so the merged counts are deterministic for any thread
// count — and returns rows sorted in cascade order.
//
// The cascade stage a measurement belongs to travels as a thread-local set
// by StageScope (ConditionalNetwork's batch and per-image drivers open one
// per stage); work outside any scope lands on kNoStage. OPS are recorded
// from the layers' own OpCount models (integer, per-sample), so summing the
// snapshot's ops column reproduces the run's total OPS bit-exactly — the
// invariant cdl_eval's run report and test_layer_profile assert.
//
// snapshot() reads other threads' tables without locking the writers: call
// it only when no profiled work is in flight (e.g. after classify_batch
// returned, which establishes the necessary happens-before).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "nn/opcount.h"

namespace cdl::obs {

/// Stage value for work that runs outside any cascade stage (plain Network
/// batches, baseline evaluation).
inline constexpr std::int32_t kNoStage = -1;

/// Layer value for stage-level costs that belong to no baseline layer (the
/// stage's linear classifier + exit gate, the final softmax/argmax).
inline constexpr std::int32_t kStageLevel = -1;

struct LayerProfileRow {
  std::int32_t stage = kNoStage;  ///< cascade stage, kNoStage outside
  std::int32_t layer = kStageLevel;  ///< first baseline layer of the step
  std::string name;               ///< layer name, "a+b+c" for fused steps
  std::uint64_t span = 1;         ///< baseline layers covered by the row
  std::uint64_t calls = 0;        ///< instrumented executions
  std::uint64_t samples = 0;      ///< rows (images) processed
  std::uint64_t ops = 0;          ///< total_compute of op_count, exact
  /// Full per-category op bundle across all recorded samples — the quantity
  /// the energy meter prices per precision (obs/energy_meter.h).
  OpCount op_count;
  std::uint64_t time_ns = 0;

  /// Achieved giga-ops per second (OPS counts one MAC as two operations, so
  /// for GEMM-dominated layers this is the usual GFLOP/s figure).
  [[nodiscard]] double gops() const {
    return time_ns == 0 ? 0.0
                        : static_cast<double>(ops) /
                              static_cast<double>(time_ns);
  }
};

class LayerProfiler {
 public:
  static LayerProfiler& instance();

  [[nodiscard]] static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Accumulates one instrumented execution into the calling thread's table.
  /// `ops` is the execution's full op bundle (already scaled by `samples`);
  /// the snapshot keeps the categories so energy pricing stays exact. Works
  /// regardless of enabled(); instrumentation sites do the enabled() check
  /// so the disabled hot path never reaches this call.
  void record(std::int32_t stage, std::int32_t layer, const std::string& name,
              std::uint64_t span, std::uint64_t samples, const OpCount& ops,
              std::uint64_t time_ns);

  /// Fork/join accounting: one ThreadPool::parallel_for dispatch of `items`
  /// taking `time_ns` on the calling thread (barrier included).
  void record_parallel_for(std::uint64_t items, std::uint64_t time_ns);

  /// Drops all accumulated rows; forgets threads that have exited.
  void clear();

  /// Merged rows sorted by (stage, layer, name); stage-level rows (layer ==
  /// kStageLevel) sort after their stage's baseline layers.
  [[nodiscard]] std::vector<LayerProfileRow> snapshot() const;

  struct ParallelForStats {
    std::uint64_t invocations = 0;
    std::uint64_t items = 0;
    std::uint64_t time_ns = 0;
  };
  [[nodiscard]] ParallelForStats parallel_for_stats() const;

  /// Cascade stage the calling thread is currently attributing to.
  [[nodiscard]] static std::int32_t current_stage();

  /// RAII thread-local stage context; nests (restores the previous stage).
  class StageScope {
   public:
    explicit StageScope(std::int32_t stage);
    ~StageScope();
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

   private:
    std::int32_t previous_;
  };

 private:
  LayerProfiler() = default;

  // Keyed by (stage, sort-mapped layer, name); kStageLevel maps to
  // INT32_MAX so a stage's classifier/gate row follows its layer rows.
  using Key = std::tuple<std::int32_t, std::int32_t, std::string>;
  struct Cell {
    std::uint64_t span = 1;
    std::uint64_t calls = 0;
    std::uint64_t samples = 0;
    OpCount ops;
    std::uint64_t time_ns = 0;
  };
  struct ThreadState {
    std::map<Key, Cell> cells;
    ParallelForStats parallel_for;
  };

  ThreadState& local();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;  ///< guards threads_
  std::vector<std::shared_ptr<ThreadState>> threads_;
};

}  // namespace cdl::obs
