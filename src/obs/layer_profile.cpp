#include "obs/layer_profile.h"

#include <climits>

namespace cdl::obs {

namespace {

thread_local std::int32_t tls_current_stage = kNoStage;

/// kStageLevel sorts after every real layer index of its stage.
std::int32_t sort_layer(std::int32_t layer) {
  return layer == kStageLevel ? INT32_MAX : layer;
}

}  // namespace

LayerProfiler& LayerProfiler::instance() {
  static LayerProfiler profiler;
  return profiler;
}

LayerProfiler::ThreadState& LayerProfiler::local() {
  thread_local std::shared_ptr<ThreadState> tls;
  if (!tls) {
    tls = std::make_shared<ThreadState>();
    const std::lock_guard<std::mutex> lock(mutex_);
    threads_.push_back(tls);
  }
  return *tls;
}

void LayerProfiler::record(std::int32_t stage, std::int32_t layer,
                           const std::string& name, std::uint64_t span,
                           std::uint64_t samples, const OpCount& ops,
                           std::uint64_t time_ns) {
  Cell& cell = local().cells[Key{stage, sort_layer(layer), name}];
  cell.span = span;
  ++cell.calls;
  cell.samples += samples;
  cell.ops += ops;
  cell.time_ns += time_ns;
}

void LayerProfiler::record_parallel_for(std::uint64_t items,
                                        std::uint64_t time_ns) {
  ParallelForStats& stats = local().parallel_for;
  ++stats.invocations;
  stats.items += items;
  stats.time_ns += time_ns;
}

void LayerProfiler::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = threads_.begin();
  while (it != threads_.end()) {
    if (it->use_count() == 1) {
      it = threads_.erase(it);  // owning thread exited; forget its table
    } else {
      (*it)->cells.clear();
      (*it)->parallel_for = ParallelForStats{};
      ++it;
    }
  }
}

std::vector<LayerProfileRow> LayerProfiler::snapshot() const {
  std::map<Key, Cell> merged;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& t : threads_) {
      for (const auto& [key, cell] : t->cells) {
        Cell& m = merged[key];
        m.span = cell.span;
        m.calls += cell.calls;
        m.samples += cell.samples;
        m.ops += cell.ops;
        m.time_ns += cell.time_ns;
      }
    }
  }
  std::vector<LayerProfileRow> rows;
  rows.reserve(merged.size());
  for (const auto& [key, cell] : merged) {
    LayerProfileRow row;
    row.stage = std::get<0>(key);
    row.layer =
        std::get<1>(key) == INT32_MAX ? kStageLevel : std::get<1>(key);
    row.name = std::get<2>(key);
    row.span = cell.span;
    row.calls = cell.calls;
    row.samples = cell.samples;
    row.op_count = cell.ops;
    row.ops = cell.ops.total_compute();
    row.time_ns = cell.time_ns;
    rows.push_back(std::move(row));
  }
  return rows;
}

LayerProfiler::ParallelForStats LayerProfiler::parallel_for_stats() const {
  ParallelForStats total;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& t : threads_) {
    total.invocations += t->parallel_for.invocations;
    total.items += t->parallel_for.items;
    total.time_ns += t->parallel_for.time_ns;
  }
  return total;
}

std::int32_t LayerProfiler::current_stage() { return tls_current_stage; }

LayerProfiler::StageScope::StageScope(std::int32_t stage)
    : previous_(tls_current_stage) {
  tls_current_stage = stage;
}

LayerProfiler::StageScope::~StageScope() { tls_current_stage = previous_; }

}  // namespace cdl::obs
