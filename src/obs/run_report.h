// RunReport: the single JSON document a tool emits for one measured run —
// schema "cdl-run-report/1".
//
// It combines the four observability sources into one file so downstream
// tooling (scripts/bench_check.py --validate-report, dashboards) needs no
// joins: whole-run totals, the LayerProfiler's per-layer x per-stage
// attribution rows, fork/join statistics, the hardware perf reading (degraded
// to nulls when perf_event_open is unavailable), the exit profile, and a
// Registry snapshot.
//
// The report's load-bearing invariant: `attributed_ops` (the sum of the layer
// rows) equals `total_ops` (computed from exit counts x per-exit OpCounts)
// bit-exactly for any thread count, while `attributed_time_ns` only
// approximates `total_time_ns` (instrumentation sits inside the timed
// region). bench_check.py validates both, the former exactly and the latter
// within --tolerance.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/exit_profile.h"
#include "obs/layer_profile.h"
#include "obs/perf_counters.h"
#include "obs/registry.h"

namespace cdl::obs {

inline constexpr const char* kRunReportSchema = "cdl-run-report/1";

struct RunReport {
  std::string tool;        ///< emitting binary ("cdl_eval", "cdl_train", ...)
  std::string network;     ///< architecture / model file label
  std::uint64_t threads = 1;
  std::uint64_t samples = 0;
  std::uint64_t seed = 0;
  std::uint64_t total_time_ns = 0;  ///< wall time of the measured region
  std::uint64_t total_ops = 0;      ///< exact whole-run OPS (exit accounting)

  std::vector<LayerProfileRow> layers;          ///< LayerProfiler::snapshot()
  LayerProfiler::ParallelForStats parallel_for; ///< fork/join accounting

  bool perf_attempted = false;  ///< --perf was requested
  std::string perf_reason;      ///< PerfGroup::unavailable_reason()
  PerfReading perf;             ///< degraded (nulls) when unavailable

  std::optional<ExitProfile> exit_profile;  ///< cascade runs only

  /// Registry snapshot embedded under "metrics"; not owned, may be null.
  const Registry* registry = nullptr;

  /// Sum of `layers[i].ops` — exact, compare against total_ops.
  [[nodiscard]] std::uint64_t attributed_ops() const;
  /// Sum of `layers[i].time_ns` — approximate, compare within tolerance.
  [[nodiscard]] std::uint64_t attributed_time_ns() const;

  /// Writes the full "cdl-run-report/1" JSON object (newline-terminated).
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars) for the
/// report writers. Exposed for the tools' hand-written JSON sections.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace cdl::obs
