#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace cdl::obs {

namespace {

/// Minimal JSON string escaping for names we control (literals, thread names).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

std::string span_key(const TraceEvent& e) {
  std::string key = e.name;
  if (e.id >= 0) {
    key += '#';
    key += std::to_string(e.id);
  }
  return key;
}

}  // namespace

std::uint64_t now_ns() {
  static const auto anchor = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

void TraceRing::push(const TraceEvent& event) {
  if (events_.empty()) events_.resize(capacity_);  // lazy first-push alloc
  events_[static_cast<std::size_t>(next_ % capacity_)] = event;
  ++next_;
}

std::size_t TraceRing::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(next_, capacity_));
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t held = size();
  out.reserve(held);
  const std::uint64_t first = next_ - held;
  for (std::uint64_t i = first; i < next_; ++i) {
    out.push_back(events_[static_cast<std::size_t>(i % capacity_)]);
  }
  return out;
}

Tracer::Tracer() : capacity_(65536) {
  if (const char* env = std::getenv("CDL_TRACE_RING")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) capacity_.store(static_cast<std::size_t>(v));
  }
  if (const char* env = std::getenv("CDL_TRACE")) {
    const std::string s(env);
    if (s == "1" || s == "on" || s == "true") enabled_.store(true);
  }
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_ring_capacity(std::size_t events) {
  capacity_.store(std::max<std::size_t>(1, events),
                  std::memory_order_relaxed);
}

Tracer::ThreadTrace& Tracer::local() {
  thread_local std::shared_ptr<ThreadTrace> tls;
  if (!tls) {
    tls = std::make_shared<ThreadTrace>(ring_capacity(),
                                        next_tid_.fetch_add(1));
    const std::lock_guard<std::mutex> lock(mutex_);
    threads_.push_back(tls);
  }
  return *tls;
}

void Tracer::record(const TraceEvent& event) { local().ring.push(event); }

void Tracer::set_thread_name(const std::string& name) {
  ThreadTrace& t = local();
  const std::lock_guard<std::mutex> lock(mutex_);
  t.name = name;
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = threads_.begin();
  while (it != threads_.end()) {
    if (it->use_count() == 1) {
      it = threads_.erase(it);  // owning thread exited; forget its ring
    } else {
      (*it)->ring.clear();
      ++it;
    }
  }
}

std::vector<Tracer::TaggedEvent> Tracer::collect() const {
  std::vector<TaggedEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& t : threads_) {
      for (const TraceEvent& e : t->ring.snapshot()) {
        out.push_back(TaggedEvent{e, t->tid, t->name});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TaggedEvent& a, const TaggedEvent& b) {
                     return a.event.start_ns < b.event.start_ns;
                   });
  return out;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t lost = 0;
  for (const auto& t : threads_) {
    lost += t->ring.recorded() - t->ring.size();
  }
  return lost;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TaggedEvent> events = collect();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& t : threads_) {
      if (t->name.empty()) continue;
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << t->tid << ",\"args\":{\"name\":\"" << json_escape(t->name)
         << "\"}}";
    }
  }
  char buf[64];
  for (const TaggedEvent& te : events) {
    const TraceEvent& e = te.event;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"pid\":1,\"tid\":"
       << te.tid << ",\"ts\":";
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(e.start_ns) / 1e3);
    os << buf;
    if (e.kind == EventKind::kSpan) {
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(e.dur_ns) / 1e3);
      os << ",\"ph\":\"X\",\"dur\":" << buf;
    } else {
      os << ",\"ph\":\"i\",\"s\":\"t\"";
    }
    if (e.id >= 0) os << ",\"args\":{\"id\":" << e.id << "}";
    os << '}';
  }
  os << "]}\n";
}

void Tracer::write_csv(std::ostream& os) const {
  os << "thread,tid,kind,name,id,start_ns,dur_ns\n";
  for (const TaggedEvent& te : collect()) {
    const TraceEvent& e = te.event;
    os << te.thread_name << ',' << te.tid << ','
       << (e.kind == EventKind::kSpan ? "span" : "instant") << ',' << e.name
       << ',' << e.id << ',' << e.start_ns << ',' << e.dur_ns << '\n';
  }
}

std::string Tracer::summary() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    bool instant = false;
  };
  std::map<std::string, Agg> by_name;  // ordered -> deterministic output
  for (const TaggedEvent& te : collect()) {
    Agg& a = by_name[span_key(te.event)];
    ++a.count;
    a.total_ns += te.event.dur_ns;
    a.instant = te.event.kind == EventKind::kInstant;
  }
  std::string out = "obs summary:\n";
  char line[160];
  for (const auto& [name, a] : by_name) {
    if (a.instant) {
      std::snprintf(line, sizeof line, "  %-20s %8llu events\n", name.c_str(),
                    static_cast<unsigned long long>(a.count));
    } else {
      const double total_ms = static_cast<double>(a.total_ns) / 1e6;
      std::snprintf(line, sizeof line,
                    "  %-20s %8llu spans, total %10.3f ms, mean %8.4f ms\n",
                    name.c_str(), static_cast<unsigned long long>(a.count),
                    total_ms,
                    total_ms / static_cast<double>(a.count));
    }
    out += line;
  }
  const std::uint64_t lost = dropped();
  if (lost > 0) {
    std::snprintf(line, sizeof line,
                  "  (%llu events overwritten; raise CDL_TRACE_RING)\n",
                  static_cast<unsigned long long>(lost));
    out += line;
  }
  return out;
}

}  // namespace cdl::obs
