#include "obs/energy_meter.h"

#include <map>
#include <stdexcept>

namespace cdl::obs {

EnergyMeter::EnergyMeter(EnergyCosts fp32, EnergyCosts int8)
    : fp32_(fp32), int8_(int8) {}

bool EnergyMeter::is_int8_row(const std::string& name) {
  static constexpr char kSuffix[] = "[int8]";
  static constexpr std::size_t kLen = sizeof(kSuffix) - 1;
  return name.size() >= kLen &&
         name.compare(name.size() - kLen, kLen, kSuffix) == 0;
}

double EnergyMeter::energy_pj(const OpCount& ops, bool int8) const {
  return int8 ? int8_.energy_pj(ops) : fp32_.energy_pj(ops);
}

std::vector<StageEnergyRow> EnergyMeter::attribute(
    const std::vector<LayerProfileRow>& rows) const {
  struct Merged {
    std::uint64_t samples = 0;
    OpCount fp32;
    OpCount int8;
    OpCount fp32_per_image;
    OpCount int8_per_image;
  };
  std::map<std::int32_t, Merged> stages;
  for (const LayerProfileRow& row : rows) {
    Merged& m = stages[row.stage];
    if (row.samples > m.samples) m.samples = row.samples;
    // Rows accumulate `samples` identical per-sample bundles, so dividing
    // by the sample count recovers the per-image bundle exactly (integer
    // division of exact multiples).
    OpCount per_image = row.op_count;
    if (row.samples > 1) per_image /= row.samples;
    if (is_int8_row(row.name)) {
      m.int8 += row.op_count;
      m.int8_per_image += per_image;
    } else {
      m.fp32 += row.op_count;
      m.fp32_per_image += per_image;
    }
  }
  std::vector<StageEnergyRow> out;
  out.reserve(stages.size());
  for (const auto& [stage, m] : stages) {
    StageEnergyRow row;
    row.stage = stage;
    row.samples = m.samples;
    row.fp32_ops = m.fp32;
    row.int8_ops = m.int8;
    // fp32 part first, int8 part second — the same order exit_energy_table
    // uses, so the per-image figures agree bit-exactly with the table's
    // increments.
    row.energy_pj = fp32_.energy_pj(m.fp32) + int8_.energy_pj(m.int8);
    row.per_image_pj =
        fp32_.energy_pj(m.fp32_per_image) + int8_.energy_pj(m.int8_per_image);
    out.push_back(row);
  }
  return out;
}

double EnergyMeter::total_pj(const std::vector<StageEnergyRow>& stages) const {
  double total = 0.0;
  for (const StageEnergyRow& s : stages) total += s.energy_pj;
  return total;
}

std::vector<double> EnergyMeter::exit_energy_table(
    const std::vector<PrecisionOps>& stages) const {
  std::vector<double> table;
  table.reserve(stages.size());
  // Running sum in cascade order — fig6_energy's fp32_cum/int8_cum loops do
  // exactly this, and adding a priced empty bundle contributes an exact 0.0,
  // so a pure-fp32 (or pure-int8) mix reproduces those sums bit-identically.
  double run = 0.0;
  for (const PrecisionOps& s : stages) {
    run += fp32_.energy_pj(s.fp32) + int8_.energy_pj(s.int8);
    table.push_back(run);
  }
  return table;
}

double EnergyMeter::exit_weighted_pj(
    const std::vector<double>& exit_energy,
    const std::vector<std::uint64_t>& exit_counts) {
  if (exit_energy.size() != exit_counts.size()) {
    throw std::invalid_argument(
        "EnergyMeter::exit_weighted_pj: table/counts size mismatch");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : exit_counts) total += c;
  if (total == 0) return 0.0;
  double avg = 0.0;
  for (std::size_t s = 0; s < exit_energy.size(); ++s) {
    // exit_fraction(s) * cumulative(s), the fig6_energy weighting order.
    avg += static_cast<double>(exit_counts[s]) / static_cast<double>(total) *
           exit_energy[s];
  }
  return avg;
}

}  // namespace cdl::obs
