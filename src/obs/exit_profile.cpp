#include "obs/exit_profile.h"

#include <cstdio>
#include <stdexcept>

#include "obs/registry.h"

namespace cdl::obs {

ExitProfile::ExitProfile(std::vector<std::string> stage_names) {
  if (stage_names.empty()) {
    throw std::invalid_argument("ExitProfile: need at least one stage");
  }
  stages_.reserve(stage_names.size());
  for (std::string& name : stage_names) {
    StageExit s;
    s.name = std::move(name);
    stages_.push_back(std::move(s));
  }
}

void ExitProfile::record(std::size_t stage, double confidence, double ops,
                         bool correct, double energy_pj) {
  if (stage >= stages_.size()) {
    throw std::out_of_range("ExitProfile::record: stage " +
                            std::to_string(stage) + " of " +
                            std::to_string(stages_.size()));
  }
  StageExit& s = stages_[stage];
  ++s.exits;
  s.correct += correct ? 1 : 0;
  s.sum_ops += ops;
  s.sum_energy_pj += energy_pj;
  s.confidence.record(confidence);
  ++total_;
  sum_ops_ += ops;
  sum_energy_pj_ += energy_pj;
}

const StageExit& ExitProfile::stage(std::size_t i) const {
  if (i >= stages_.size()) throw std::out_of_range("ExitProfile::stage");
  return stages_[i];
}

std::vector<std::size_t> ExitProfile::exit_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(stages_.size());
  for (const StageExit& s : stages_) counts.push_back(s.exits);
  return counts;
}

double ExitProfile::exit_fraction(std::size_t stage) const {
  if (stage >= stages_.size()) {
    throw std::out_of_range("ExitProfile::exit_fraction");
  }
  return total_ == 0 ? 0.0
                     : static_cast<double>(stages_[stage].exits) /
                           static_cast<double>(total_);
}

double ExitProfile::entering_fraction(std::size_t stage) const {
  if (stage >= stages_.size()) {
    throw std::out_of_range("ExitProfile::entering_fraction");
  }
  if (total_ == 0) return 0.0;
  std::size_t exited_before = 0;
  for (std::size_t i = 0; i < stage; ++i) exited_before += stages_[i].exits;
  return static_cast<double>(total_ - exited_before) /
         static_cast<double>(total_);
}

double ExitProfile::surviving_fraction(std::size_t stage) const {
  return entering_fraction(stage) - exit_fraction(stage);
}

double ExitProfile::energy_share(std::size_t stage) const {
  if (stage >= stages_.size()) {
    throw std::out_of_range("ExitProfile::energy_share");
  }
  return sum_energy_pj_ == 0.0 ? 0.0
                               : stages_[stage].sum_energy_pj / sum_energy_pj_;
}

std::string ExitProfile::summary() const {
  char line[256];
  std::snprintf(line, sizeof line,
                "exit profile (%zu inputs, avg %.0f OPS, avg %.0f pJ):\n",
                total_,
                total_ == 0 ? 0.0 : sum_ops_ / static_cast<double>(total_),
                total_ == 0 ? 0.0
                            : sum_energy_pj_ / static_cast<double>(total_));
  std::string out = line;
  out += "  stage      exits    share  entering  surviving  stage-acc"
         "     avg OPS      avg pJ  e-share  conf-mean   conf-p50   conf-p95\n";
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageExit& s = stages_[i];
    std::snprintf(line, sizeof line,
                  "  %-6s %9zu  %6.1f %%  %6.1f %%   %6.1f %%  %8.1f %%"
                  "  %10.0f  %10.0f  %5.1f %%  %9.3f  %9.3f  %9.3f\n",
                  s.name.c_str(), s.exits, 100.0 * exit_fraction(i),
                  100.0 * entering_fraction(i), 100.0 * surviving_fraction(i),
                  100.0 * s.accuracy(), s.avg_ops(), s.avg_energy_pj(),
                  100.0 * energy_share(i), s.confidence.mean(),
                  s.confidence.quantile(0.5), s.confidence.quantile(0.95));
    out += line;
  }
  return out;
}

void ExitProfile::write_csv(std::ostream& os) const {
  os << "stage,exits,share,correct,accuracy,avg_ops,conf_mean,conf_p50,"
        "conf_p95,entering,surviving,avg_energy_pj,energy_share\n";
  char line[288];
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageExit& s = stages_[i];
    std::snprintf(line, sizeof line,
                  "%s,%zu,%.6f,%zu,%.6f,%.3f,%.6f,%.6f,%.6f,%.6f,%.6f,"
                  "%.3f,%.6f\n",
                  s.name.c_str(), s.exits, exit_fraction(i), s.correct,
                  s.accuracy(), s.avg_ops(), s.confidence.mean(),
                  s.confidence.quantile(0.5), s.confidence.quantile(0.95),
                  entering_fraction(i), surviving_fraction(i),
                  s.avg_energy_pj(), energy_share(i));
    os << line;
  }
}

void ExitProfile::export_to_registry(Registry& registry,
                                     const std::string& prefix) const {
  registry
      .counter(prefix + "_samples", "Inputs classified by the cascade")
      .inc(static_cast<double>(total_));
  registry
      .counter(prefix + "_ops", "Total OPS spent across all inputs")
      .inc(sum_ops_);
  registry
      .counter(prefix + "_energy_pj",
               "Total modeled energy (pJ) across all inputs")
      .inc(sum_energy_pj_);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const StageExit& s = stages_[i];
    const Labels labels = {{"stage", s.name}};
    registry
        .counter(prefix + "_stage_exits",
                 "Inputs that terminated at this stage", labels)
        .inc(static_cast<double>(s.exits));
    registry
        .counter(prefix + "_stage_correct",
                 "Correctly labeled inputs that terminated at this stage",
                 labels)
        .inc(static_cast<double>(s.correct));
    registry
        .counter(prefix + "_stage_ops",
                 "OPS spent by inputs that terminated at this stage", labels)
        .inc(s.sum_ops);
    registry
        .counter(prefix + "_stage_energy_pj",
                 "Modeled energy (pJ) of inputs that terminated at this stage",
                 labels)
        .inc(s.sum_energy_pj);
    registry
        .gauge(prefix + "_stage_energy_fraction",
               "This stage's exit-weighted share of total modeled energy",
               labels)
        .set(energy_share(i));
    registry
        .gauge(prefix + "_stage_accuracy",
               "Accuracy over inputs that terminated at this stage", labels)
        .set(s.accuracy());
    registry
        .gauge(prefix + "_stage_exit_fraction",
               "Fraction of all inputs that terminated at this stage", labels)
        .set(exit_fraction(i));
    registry
        .gauge(prefix + "_stage_entering_fraction",
               "Fraction of all inputs that entered this stage", labels)
        .set(entering_fraction(i));
    registry
        .gauge(prefix + "_stage_surviving_fraction",
               "Fraction of all inputs still alive after this stage's exit",
               labels)
        .set(surviving_fraction(i));
    registry
        .histogram(prefix + "_stage_confidence",
                   "Gate confidence at the exit decision",
                   s.confidence.lo(), s.confidence.hi(),
                   s.confidence.num_bins(), labels)
        .merge(s.confidence);
  }
}

}  // namespace cdl::obs
