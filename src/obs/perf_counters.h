// Hardware performance counters via perf_event_open, with a graceful
// wall-clock-only fallback.
//
// A PerfGroup opens the five counters the attribution profiler cares about
// (cycles, instructions, cache-references, cache-misses, branch-misses) as
// plain per-thread userspace events. Opening can fail for many legitimate
// reasons — containers and CI runners usually deny the syscall
// (kernel.perf_event_paranoid, seccomp), some VMs virtualize no PMU, and
// non-Linux platforms lack the syscall entirely — so failure is never an
// error: available() turns false, readings keep their wall-clock field, and
// every hardware field degrades to "invalid" (exported as JSON null).
//
// Counters may also be individually unsupported (e.g. cache events on some
// PMUs): each PerfValue carries its own validity. When the kernel multiplexes
// the group, time_running < time_enabled and multiplex_ratio() reports the
// scheduled fraction; values are reported raw (unscaled) so they stay exact.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace cdl::obs {

/// One hardware counter value; invalid when the event could not be opened or
/// never got PMU time.
struct PerfValue {
  bool valid = false;
  std::uint64_t value = 0;
};

struct PerfReading {
  bool available = false;      ///< at least one hardware counter read
  std::uint64_t wall_ns = 0;   ///< steady-clock span; always measured
  std::uint64_t time_enabled_ns = 0;  ///< max over counters (0 if none)
  std::uint64_t time_running_ns = 0;
  PerfValue cycles;
  PerfValue instructions;
  PerfValue cache_references;
  PerfValue cache_misses;
  PerfValue branch_misses;

  /// Instructions per cycle; 0 when either counter is invalid or zero.
  [[nodiscard]] double ipc() const;
  /// Cache miss rate (misses / references); 0 when unavailable.
  [[nodiscard]] double cache_miss_rate() const;
  /// time_running / time_enabled (1.0 when the group was never multiplexed
  /// or no counter opened).
  [[nodiscard]] double multiplex_ratio() const;

  /// Single human-readable line ("perf: 1.23e9 cycles, ipc 2.10, ..." or
  /// "perf: hardware counters unavailable (<reason>), wall 12.3 ms").
  [[nodiscard]] std::string summary(const std::string& reason = "") const;
};

/// Scoped ownership of the five-event group. Never throws on counter
/// unavailability; copy is disabled because the fds are owned.
class PerfGroup {
 public:
  static constexpr int kNumEvents = 5;

  PerfGroup();
  ~PerfGroup();
  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  /// True when at least one hardware event opened.
  [[nodiscard]] bool available() const { return available_; }
  /// Why no hardware event opened ("" while available()). Mentions
  /// kernel.perf_event_paranoid on permission errors.
  [[nodiscard]] const std::string& unavailable_reason() const {
    return reason_;
  }

  /// Resets and enables every opened counter and anchors the wall clock.
  void start();
  /// Disables the counters and returns the deltas since start(). Without a
  /// prior start() the reading is wall-only zeros.
  PerfReading stop();

 private:
  int fds_[kNumEvents];
  bool available_ = false;
  std::string reason_;
  std::uint64_t wall_start_ = 0;
  bool started_ = false;
};

/// JSON object for a reading: hardware fields are numbers when valid, null
/// otherwise; wall_ns is always a number. `{"available": false, ...}` is the
/// degraded container/CI shape the run-report schema promises.
void write_perf_json(std::ostream& os, const PerfReading& reading);

}  // namespace cdl::obs
