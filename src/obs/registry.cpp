#include "obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace cdl::obs {

namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string escape_json(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// JSON value for a possibly non-finite double.
std::string json_value(double value) {
  if (!std::isfinite(value)) return "null";
  return render_value(value);
}

/// Merges extra labels into a rendered label set: `base` is the canonical
/// rendering (may be ""), `extra` a single pre-escaped k="v" item.
std::string labels_with(const std::string& base, const std::string& extra) {
  if (base.empty()) return "{" + extra + "}";
  std::string out = base;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

}  // namespace

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

void Counter::inc(double delta) {
  if (!(delta >= 0.0) || !std::isfinite(delta)) {
    throw std::invalid_argument("Counter::inc: delta must be finite and >= 0");
  }
  value_ += delta;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (!valid_metric_name(sorted[i].first)) {
      throw std::invalid_argument("Registry: invalid label name '" +
                                  sorted[i].first + "'");
    }
    if (i != 0) out += ',';
    out += sorted[i].first + "=\"" + escape_label_value(sorted[i].second) + '"';
  }
  out += '}';
  return out;
}

std::string render_value(double value) {
  char buf[40];
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else {
    // %.17g round-trips every finite double; non-finite renders as the
    // OpenMetrics spellings nan/+Inf/-Inf via explicit checks.
    if (std::isnan(value)) return "NaN";
    if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  return buf;
}

Registry::Metric& Registry::sample(const std::string& name,
                                   const std::string& help,
                                   const Labels& labels, MetricType type) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("Registry: invalid metric name '" + name + "'");
  }
  const std::string key = render_labels(labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    throw std::invalid_argument("Registry: metric '" + name +
                                "' already registered as " +
                                to_string(family.type));
  }
  auto [sit, sample_inserted] = family.samples.try_emplace(key);
  if (sample_inserted) {
    sit->second = std::make_unique<Metric>();
    sit->second->type = type;
  }
  return *sit->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
  return sample(name, help, labels, MetricType::kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  return sample(name, help, labels, MetricType::kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               double lo, double hi, std::size_t bins,
                               const Labels& labels) {
  Metric& m = sample(name, help, labels, MetricType::kHistogram);
  if (!m.hist) {
    m.hist = std::make_unique<Histogram>(lo, hi, bins);
  } else if (m.hist->lo() != lo || m.hist->hi() != hi ||
             m.hist->num_bins() != bins) {
    throw std::invalid_argument("Registry: histogram '" + name +
                                "' already registered with a different layout");
  }
  return *m.hist;
}

std::size_t Registry::num_families() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return families_.size();
}

std::size_t Registry::num_samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, family] : families_) n += family.samples.size();
  return n;
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  families_.clear();
}

void Registry::write_openmetrics(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      os << "# HELP " << name << ' ' << family.help << '\n';
    }
    os << "# TYPE " << name << ' ' << to_string(family.type) << '\n';
    for (const auto& [labels, metric] : family.samples) {
      switch (family.type) {
        case MetricType::kCounter:
          os << name << "_total" << labels << ' '
             << render_value(metric->counter.value()) << '\n';
          break;
        case MetricType::kGauge:
          os << name << labels << ' ' << render_value(metric->gauge.value())
             << '\n';
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *metric->hist;
          // Cumulative buckets; values below `lo` are <= every bound, so the
          // underflow mass seeds the running total, and the +Inf bucket adds
          // the overflow mass.
          std::uint64_t cum = h.underflow();
          for (std::size_t b = 0; b < h.num_bins(); ++b) {
            cum += h.bins()[b];
            os << name << "_bucket"
               << labels_with(labels,
                              "le=\"" + render_value(h.bin_hi(b)) + '"')
               << ' ' << cum << '\n';
          }
          os << name << "_bucket" << labels_with(labels, "le=\"+Inf\"") << ' '
             << h.count() << '\n';
          os << name << "_count" << labels << ' ' << h.count() << '\n';
          os << name << "_sum" << labels << ' ' << render_value(h.sum())
             << '\n';
          os << name << "_underflow" << labels << ' ' << h.underflow() << '\n';
          os << name << "_overflow" << labels << ' ' << h.overflow() << '\n';
          os << name << "_nan" << labels << ' ' << h.nan_count() << '\n';
          break;
        }
      }
    }
  }
  os << "# EOF\n";
}

std::string Registry::openmetrics() const {
  std::ostringstream os;
  write_openmetrics(os);
  return os.str();
}

void Registry::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "{";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) os << ",";
    first_family = false;
    os << "\n  \"" << escape_json(name) << "\": {\"type\": \""
       << to_string(family.type) << "\", \"help\": \""
       << escape_json(family.help) << "\", \"samples\": [";
    bool first_sample = true;
    for (const auto& [labels, metric] : family.samples) {
      if (!first_sample) os << ",";
      first_sample = false;
      os << "\n    {\"labels\": \"" << escape_json(labels) << "\", ";
      switch (family.type) {
        case MetricType::kCounter:
          os << "\"value\": " << json_value(metric->counter.value());
          break;
        case MetricType::kGauge:
          os << "\"value\": " << json_value(metric->gauge.value());
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *metric->hist;
          os << "\"lo\": " << render_value(h.lo())
             << ", \"hi\": " << render_value(h.hi()) << ", \"bins\": [";
          for (std::size_t b = 0; b < h.num_bins(); ++b) {
            os << (b == 0 ? "" : ", ") << h.bins()[b];
          }
          os << "], \"count\": " << h.count() << ", \"sum\": "
             << json_value(h.sum()) << ", \"underflow\": " << h.underflow()
             << ", \"overflow\": " << h.overflow() << ", \"nan\": "
             << h.nan_count();
          break;
        }
      }
      os << "}";
    }
    os << (first_sample ? "]}" : "\n  ]}");
  }
  os << (first_family ? "}" : "\n}");
}

std::string Registry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace cdl::obs
